// Figure 10 — per-country / per-AS outage monitoring (§6.2.4).
//
// The full distributed pipeline: per-collector BGPCorsaro+RT instances ->
// Kafka-like cluster -> completeness sync server -> per-country and
// per-AS consumers with change-point detection. Paper shape reproduced:
// a flat per-country series with deep ~3 h notches once per shutdown,
// mirrored by the five ISPs' per-AS series; every scripted shutdown
// raises an alarm.
#include "bench/bench_util.hpp"
#include "corsaro/corsaro.hpp"
#include "mq/consumers.hpp"

using namespace bgps;

int main() {
  std::printf("=== Figure 10: country-wide outages (IQ) ===\n");
  auto scenario =
      sim::BuildCountryOutageScenario("/tmp/bgpstream-bench-fig10", 14);
  std::printf("%zu scheduled ~3h shutdowns of %zu ISPs\n\n",
              scenario.outage_windows.size(), scenario.isps.size());

  broker::Broker broker(scenario.driver->archive_root(),
                        bench::HistoricalBrokerOptions());
  mq::Cluster cluster;
  const Timestamp bin = 900;

  std::vector<std::string> names;
  for (const auto& c : scenario.driver->collectors())
    names.push_back(c.config().name);

  std::vector<std::unique_ptr<core::BrokerDataInterface>> dis;
  std::vector<std::unique_ptr<core::BgpStream>> streams;
  std::vector<std::unique_ptr<corsaro::BgpCorsaro>> engines;
  for (const auto& name : names) {
    auto di = std::make_unique<core::BrokerDataInterface>(&broker);
    auto stream = std::make_unique<core::BgpStream>();
    (void)stream->AddFilter("collector", name);
    stream->SetInterval(scenario.start, scenario.end);
    stream->SetDataInterface(di.get());
    if (!stream->Start().ok()) return 1;
    auto engine = std::make_unique<corsaro::BgpCorsaro>(stream.get(), bin);
    auto rt = std::make_unique<corsaro::RoutingTables>();
    mq::PublishRtToCluster(*rt, cluster, name);
    engine->AddPlugin(std::move(rt));
    dis.push_back(std::move(di));
    streams.push_back(std::move(stream));
    engines.push_back(std::move(engine));
  }

  mq::CompletenessSyncServer sync(&cluster, "ready",
                                  {names.begin(), names.end()});
  const sim::Topology& topo = scenario.driver->topology();
  mq::GlobalViewConsumer::Options copt;
  copt.median_window = 24;
  copt.drop_fraction = 0.7;
  mq::GlobalViewConsumer consumer(
      &cluster, names, "ready",
      [&topo](bgp::Asn asn) {
        return topo.has_node(asn) ? topo.node(asn).country : "??";
      },
      copt);

  bool progress = true;
  while (progress) {
    progress = false;
    for (auto& e : engines) progress |= e->Step(5000);
    sync.Poll();
    consumer.Poll();
  }
  sync.Poll();
  consumer.Poll();

  // Per-country series summary: baseline, during-outage minimum.
  std::map<std::string, std::vector<mq::VisibilityRow>> by_key;
  for (const auto& row : consumer.country_rows())
    by_key[row.key].push_back(row);
  std::printf("%-8s %10s %14s\n", "key", "baseline", "outage min");
  auto series_stats = [&](const std::string& key, size_t* base, size_t* omin) {
    *base = 0;
    *omin = SIZE_MAX;
    for (const auto& row : by_key[key]) {
      bool in_outage = false;
      for (auto [a, b] : scenario.outage_windows) {
        if (row.bin_start >= a && row.bin_start < b) in_outage = true;
      }
      if (in_outage) {
        *omin = std::min(*omin, row.visible_prefixes);
      } else {
        *base = std::max(*base, row.visible_prefixes);
      }
    }
    if (*omin == SIZE_MAX) *omin = 0;
  };
  size_t iq_base = 0, iq_min = 0;
  series_stats(scenario.country, &iq_base, &iq_min);
  std::printf("%-8s %10zu %14zu\n", scenario.country.c_str(), iq_base, iq_min);

  // Per-AS series for the five ISPs (the stacked lines of Fig. 10).
  std::map<std::string, std::vector<mq::VisibilityRow>> as_series;
  for (const auto& row : consumer.as_rows()) as_series[row.key].push_back(row);
  by_key = std::move(as_series);
  for (bgp::Asn isp : scenario.isps) {
    std::string key = "AS" + std::to_string(isp);
    size_t base = 0, omin = 0;
    series_stats(key, &base, &omin);
    std::printf("%-8s %10zu %14zu\n", key.c_str(), base, omin);
  }

  // Alarms per scripted window.
  size_t windows_alarmed = 0;
  for (auto [a, b] : scenario.outage_windows) {
    bool hit = false;
    for (const auto& alarm : consumer.alarms()) {
      if (alarm.key == scenario.country && alarm.bin_start >= a &&
          alarm.bin_start < b)
        hit = true;
    }
    windows_alarmed += hit;
  }
  std::printf("\nshutdown windows raising a country alarm: %zu/%zu\n",
              windows_alarmed, scenario.outage_windows.size());
  std::printf("country visibility dropped %zu -> %zu during shutdowns "
              "(paper: ~350 -> ~50 prefixes for Iraq)\n", iq_base, iq_min);
  return (windows_alarmed == scenario.outage_windows.size() &&
          iq_min < iq_base / 2)
             ? 0
             : 1;
}
