// Figure 3 / §3.3.4 — sorted-stream generation.
//
// Claims reproduced:
//  (1) the merged stream interleaves RIB and Updates dumps from collectors
//      with different cadences into a time-sorted record stream;
//  (2) the cost of sorting is negligible compared to reading the records;
//  (3) the disjoint-subset grouping keeps the number of simultaneously
//      open files well below the total file count (ablation: one global
//      heap opens everything at once).
#include <chrono>
#include <filesystem>

#include "bench/bench_util.hpp"
#include "core/merge.hpp"

using namespace bgps;

int main() {
  std::printf("=== Figure 3 / Section 3.3.4: sorted stream generation ===\n");

  // One simulated day: RIS-style (5-min updates, 8-h RIBs) + RouteViews-
  // style (15-min updates, 2-h RIBs), three collectors total.
  const std::string root = "/tmp/bgpstream-bench-fig3";
  sim::StandardSimOptions options;
  options.topo.num_tier1 = 5;
  options.topo.num_transit = 16;
  options.topo.num_stub = 60;
  options.rv_collectors = 2;
  options.ris_collectors = 1;
  options.vps_per_collector = 5;
  options.publish_delay = 0;
  std::filesystem::remove_all(root);
  auto driver = sim::MakeStandardSim(options, root);
  Timestamp start = TimestampFromYmdHms(2016, 3, 1, 0, 0, 0);
  Timestamp end = start + 86400;
  driver->AddFlapNoise(start, end, 200.0);
  if (!driver->Run(start, end).ok()) return 1;

  broker::Broker broker(root, bench::HistoricalBrokerOptions());
  const auto& files = broker.index().files();
  std::printf("archive: %zu dump files over 24h from 3 collectors\n",
              files.size());

  // --- (a) raw read: every file sequentially, no sorting ---
  auto t0 = std::chrono::steady_clock::now();
  size_t raw_records = 0;
  for (const auto& f : files) {
    core::DumpReader reader(f);
    while (reader.Next()) ++raw_records;
  }
  double raw_time = bench::SecondsSince(t0);

  // --- (b) full stream with subset grouping (the BGPStream path) ---
  core::BrokerDataInterface di(&broker);
  core::BgpStream stream;
  stream.SetInterval(start, end);
  stream.SetDataInterface(&di);
  if (!stream.Start().ok()) return 1;
  t0 = std::chrono::steady_clock::now();
  size_t sorted_records = 0, inversions = 0;
  Timestamp last = 0;
  size_t subsets_before = 0;
  while (auto rec = stream.NextRecord()) {
    if (stream.subsets_merged() != subsets_before) {
      subsets_before = stream.subsets_merged();
      last = 0;
    }
    if (rec->timestamp < last) ++inversions;
    last = rec->timestamp;
    ++sorted_records;
  }
  double sorted_time = bench::SecondsSince(t0);

  // --- (c) ablation: one global multi-way merge over ALL files ---
  t0 = std::chrono::steady_clock::now();
  core::MultiWayMerge global(files);
  size_t global_records = 0;
  Timestamp glast = 0;
  size_t ginversions = 0;
  while (auto rec = global.Next()) {
    if (rec->timestamp < glast) ++ginversions;
    glast = rec->timestamp;
    ++global_records;
  }
  double global_time = bench::SecondsSince(t0);

  auto subsets = core::GroupOverlapping(files);
  size_t max_subset = 0;
  for (const auto& s : subsets) max_subset = std::max(max_subset, s.size());

  std::printf("\n%-42s %12s %10s\n", "configuration", "records", "seconds");
  std::printf("%-42s %12zu %10.3f\n", "raw read (no sorting)", raw_records,
              raw_time);
  std::printf("%-42s %12zu %10.3f\n", "BGPStream merge (grouped subsets)",
              sorted_records, sorted_time);
  std::printf("%-42s %12zu %10.3f\n", "ablation: single global heap",
              global_records, global_time);
  std::printf("\nsubset grouping: %zu files -> %zu subsets, largest %zu "
              "(max open files in stream: %zu)\n",
              files.size(), subsets.size(), max_subset,
              stream.max_open_files());
  std::printf("timestamp inversions: grouped=%zu global=%zu (0 = sorted)\n",
              inversions, ginversions);
  double overhead = raw_time > 0 ? (sorted_time - raw_time) / raw_time * 100
                                 : 0;
  std::printf("sorting overhead vs raw read: %+.1f%% (paper: negligible)\n",
              overhead);
  return inversions == 0 ? 0 : 1;
}
