// Figure 4 — data-plane reachability of black-holed destinations
// during vs after RTBH (§4.3).
//
// Paper shape (4a, end host): after RTBH ~83% of destinations reached by
// >=95% of traceroutes; during RTBH ~77% reached by <5% and ~73% never;
// ~13% partially reachable (20-80%) — multihomed victims with a
// non-blackholing provider. (4b, origin AS): most destinations show low
// origin-AS reachability during RTBH and full reachability after.
#include "bench/bench_util.hpp"

using namespace bgps;

int main() {
  std::printf("=== Figure 4: RTBH reachability (during vs after) ===\n");
  auto scenario =
      sim::BuildRtbhScenario("/tmp/bgpstream-bench-fig4", 60, 60);
  std::printf("%zu RTBH events, %d probes each\n\n", scenario.events.size(),
              60);

  struct Fractions {
    std::vector<double> during, after;
  };
  Fractions host, origin;
  for (const auto& ev : scenario.events) {
    size_t n = ev.probes.size();
    if (n == 0) continue;
    size_t dh = 0, da = 0, oh = 0, oa = 0;
    for (const auto& p : ev.probes) {
      dh += p.during_reached_host;
      da += p.after_reached_host;
      oh += p.during_reached_origin;
      oa += p.after_reached_origin;
    }
    host.during.push_back(double(dh) / double(n));
    host.after.push_back(double(da) / double(n));
    origin.during.push_back(double(oh) / double(n));
    origin.after.push_back(double(oa) / double(n));
  }

  auto bucket_row = [](const std::vector<double>& v, double lo, double hi) {
    size_t c = 0;
    for (double x : v) {
      if (x >= lo && x < hi) ++c;
    }
    return v.empty() ? 0.0 : 100.0 * double(c) / double(v.size());
  };
  auto print_table = [&](const char* title, const Fractions& f) {
    std::printf("--- %s ---\n", title);
    std::printf("%-28s %10s %10s\n", "reachability bucket", "during %",
                "after %");
    struct Bucket {
      const char* name;
      double lo, hi;
    };
    for (const Bucket& b :
         {Bucket{"never reached [0%]", 0.0, 1e-9},
          Bucket{"<5% of traceroutes", 1e-9, 0.05},
          Bucket{"5-20%", 0.05, 0.20}, Bucket{"20-80% (partial)", 0.20, 0.80},
          Bucket{"80-95%", 0.80, 0.95},
          Bucket{">=95% (full)", 0.95, 1.01}}) {
      std::printf("%-28s %10.1f %10.1f\n", b.name,
                  bucket_row(f.during, b.lo, b.hi),
                  bucket_row(f.after, b.lo, b.hi));
    }
    std::printf("\n");
  };

  print_table("Fig. 4a: fraction of traceroutes reaching the DESTINATION",
              host);
  print_table("Fig. 4b: fraction reaching the ORIGIN AS", origin);

  // Headline comparison numbers.
  double full_after =
      bucket_row(host.after, 0.95, 1.01) + bucket_row(host.after, 0.80, 0.95);
  double dead_during =
      bucket_row(host.during, 0.0, 0.05);
  std::printf("destinations >=80%% reachable after RTBH: %.0f%% "
              "(paper: 83%% at >=95%%)\n", full_after);
  std::printf("destinations <5%% reachable during RTBH:  %.0f%% "
              "(paper: 77%%)\n", dead_during);
  std::printf("partial (20-80%%) during RTBH [4a]:        %.0f%% "
              "(paper: 13%%, multihomed victims)\n",
              bucket_row(host.during, 0.20, 0.80));
  return (dead_during > full_after * 0.3) ? 0 : 1;
}
