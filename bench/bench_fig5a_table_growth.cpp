// Figure 5a — growth of the IPv4 routing table in VPs over time (§5).
//
// Paper observations reproduced: (i) partial-feed VPs are numerous and
// skew the distribution (only 710/2296 VPs within 20 percentage points of
// the max); (ii) the per-VP table size grows over the years; (iii) RIB
// dumps are taken on the 15th of the month because midnight-on-the-1st
// dumps are occasionally missing upstream.
#include <map>

#include "analysis/stats.hpp"
#include "bench/bench_util.hpp"

using namespace bgps;

int main() {
  std::printf("=== Figure 5a: IPv4 routing table growth per VP ===\n");
  auto archive = bench::GetFig5Archive();
  broker::Broker broker(archive.root, bench::HistoricalBrokerOptions());
  core::BrokerDataInterface di(&broker);

  std::printf("%-8s %6s %8s %8s %8s %10s\n", "date", "#VPs", "min", "median",
              "max", "full-feed");
  size_t rows = 0;
  double last_full_fraction = 0;
  size_t last_vps = 0, first_vps = 0;
  size_t last_max = 0, first_max = 0;

  for (size_t mi = 0; mi < archive.snapshot_times.size(); mi += 12) {
    Timestamp snapshot = archive.snapshot_times[mi];
    core::BgpStream stream;
    (void)stream.AddFilter("type", "ribs");
    (void)stream.AddFilter("ipversion", "4");
    stream.SetInterval(snapshot - 600, snapshot + 1200);
    core::BrokerDataInterface fresh(&broker);
    stream.SetDataInterface(&fresh);
    if (!stream.Start().ok()) return 1;

    // VP -> unique IPv4 prefixes in its Adj-RIB-out.
    std::map<std::pair<std::string, bgp::Asn>, std::set<Prefix>> tables;
    while (auto rec = stream.NextRecord()) {
      for (const auto& elem : stream.Elems(*rec)) {
        if (elem.type != core::ElemType::RibEntry) continue;
        tables[{rec->collector, elem.peer_asn}].insert(elem.prefix);
      }
    }
    if (tables.empty()) continue;
    std::vector<size_t> sizes;
    for (const auto& [vp, prefixes] : tables) sizes.push_back(prefixes.size());
    size_t max = analysis::Max(sizes);
    size_t full = 0;
    for (size_t s : sizes) {
      if (double(s) >= 0.8 * double(max)) ++full;  // within 20 pp of max
    }
    CivilTime c = CivilFromTimestamp(snapshot);
    std::printf("%04d-%02d  %6zu %8zu %8.0f %8zu %7zu/%zu\n", c.year, c.month,
                sizes.size(), *std::min_element(sizes.begin(), sizes.end()),
                analysis::Median(sizes), max, full, sizes.size());
    ++rows;
    last_full_fraction = double(full) / double(sizes.size());
    if (first_vps == 0) {
      first_vps = sizes.size();
      first_max = max;
    }
    last_vps = sizes.size();
    last_max = max;
  }

  std::printf("\ntable growth: max Adj-RIB-out %zu -> %zu prefixes; VPs %zu "
              "-> %zu\n", first_max, last_max, first_vps, last_vps);
  std::printf("full-feed fraction at the end: %.0f%% (paper: 710/2296 = 31%% "
              "-- partial feeds skew the distribution)\n",
              100 * last_full_fraction);
  return (rows > 0 && last_max > first_max && last_full_fraction < 1.0) ? 0 : 1;
}
