// Figure 5b — unique MOAS sets over time, overall vs per-collector (§5).
//
// Paper observations reproduced: slow growth of observable MOAS sets over
// the years, and the overall aggregation always significantly exceeding
// the best single collector (more collectors => better MOAS view).
#include <map>

#include "bench/bench_util.hpp"

using namespace bgps;

int main() {
  std::printf("=== Figure 5b: MOAS sets over time ===\n");
  auto archive = bench::GetFig5Archive();
  broker::Broker broker(archive.root, bench::HistoricalBrokerOptions());

  std::printf("%-8s %10s %16s\n", "date", "overall", "best collector");
  size_t rows = 0, overall_beats_best = 0;
  size_t first_overall = 0, last_overall = 0;

  for (size_t mi = 0; mi < archive.snapshot_times.size(); mi += 12) {
    Timestamp snapshot = archive.snapshot_times[mi];
    core::BrokerDataInterface di(&broker);
    core::BgpStream stream;
    (void)stream.AddFilter("type", "ribs");
    (void)stream.AddFilter("ipversion", "4");
    stream.SetInterval(snapshot - 600, snapshot + 1200);
    stream.SetDataInterface(&di);
    if (!stream.Start().ok()) return 1;

    // prefix -> set of origin ASes, per collector and overall.
    std::map<std::string, std::map<Prefix, std::set<bgp::Asn>>> per_collector;
    std::map<Prefix, std::set<bgp::Asn>> overall;
    while (auto rec = stream.NextRecord()) {
      for (const auto& elem : stream.Elems(*rec)) {
        if (elem.type != core::ElemType::RibEntry) continue;
        auto origin = elem.as_path.origin_asn();
        if (!origin) continue;
        per_collector[rec->collector][elem.prefix].insert(*origin);
        overall[elem.prefix].insert(*origin);
      }
    }
    // MOAS sets: unique origin-sets of size >= 2.
    auto count_moas = [](const std::map<Prefix, std::set<bgp::Asn>>& view) {
      std::set<std::set<bgp::Asn>> sets;
      for (const auto& [prefix, origins] : view) {
        if (origins.size() >= 2) sets.insert(origins);
      }
      return sets.size();
    };
    size_t overall_count = count_moas(overall);
    size_t best = 0;
    for (const auto& [collector, view] : per_collector)
      best = std::max(best, count_moas(view));
    CivilTime c = CivilFromTimestamp(snapshot);
    std::printf("%04d-%02d  %10zu %16zu\n", c.year, c.month, overall_count,
                best);
    ++rows;
    if (overall_count >= best) ++overall_beats_best;
    if (first_overall == 0) first_overall = overall_count;
    last_overall = overall_count;
  }

  std::printf("\nMOAS sets grew %zu -> %zu; overall >= best single collector "
              "in %zu/%zu snapshots (paper: always significantly larger)\n",
              first_overall, last_overall, overall_beats_best, rows);
  return (rows > 0 && last_overall > first_overall) ? 0 : 1;
}
