// Figure 5c — number of ASNs and fraction of transit ASNs, IPv4 vs IPv6
// over time (§5).
//
// Paper observations reproduced: (i) IPv4 AS count grows nearly linearly
// while the transit fraction stays constant; (ii) IPv6 transit fraction
// starts high (transit-led adoption), decays as the edge joins, then
// flattens; (iii) the final IPv6 transit fraction exceeds IPv4's.
#include <set>

#include "bench/bench_util.hpp"

using namespace bgps;

int main() {
  std::printf("=== Figure 5c: transit ASNs, IPv4 vs IPv6 ===\n");
  auto archive = bench::GetFig5Archive();
  broker::Broker broker(archive.root, bench::HistoricalBrokerOptions());

  std::printf("%-8s %8s %8s %9s %9s\n", "date", "v4 ASNs", "v6 ASNs",
              "v4 tr.%", "v6 tr.%");
  std::vector<double> v4_fracs, v6_fracs;
  size_t first_v4 = 0, last_v4 = 0;

  for (size_t mi = 0; mi < archive.snapshot_times.size(); mi += 12) {
    Timestamp snapshot = archive.snapshot_times[mi];
    core::BrokerDataInterface di(&broker);
    core::BgpStream stream;
    (void)stream.AddFilter("type", "ribs");
    stream.SetInterval(snapshot - 600, snapshot + 1200);
    stream.SetDataInterface(&di);
    if (!stream.Start().ok()) return 1;

    std::set<bgp::Asn> v4_all, v4_transit, v6_all, v6_transit;
    while (auto rec = stream.NextRecord()) {
      for (const auto& elem : stream.Elems(*rec)) {
        if (elem.type != core::ElemType::RibEntry) continue;
        auto& all = elem.prefix.family() == IpFamily::V4 ? v4_all : v6_all;
        auto& transit =
            elem.prefix.family() == IpFamily::V4 ? v4_transit : v6_transit;
        std::vector<bgp::Asn> hops;
        for (bgp::Asn a : elem.as_path.hops()) {
          if (hops.empty() || hops.back() != a) hops.push_back(a);
        }
        for (size_t i = 0; i < hops.size(); ++i) {
          all.insert(hops[i]);
          // Transit AS: appears in the *middle* of an AS path.
          if (i > 0 && i + 1 < hops.size()) transit.insert(hops[i]);
        }
      }
    }
    double v4f = v4_all.empty()
                     ? 0
                     : 100.0 * double(v4_transit.size()) / double(v4_all.size());
    double v6f = v6_all.empty()
                     ? 0
                     : 100.0 * double(v6_transit.size()) / double(v6_all.size());
    CivilTime c = CivilFromTimestamp(snapshot);
    std::printf("%04d-%02d  %8zu %8zu %9.1f %9.1f\n", c.year, c.month,
                v4_all.size(), v6_all.size(), v4f, v6f);
    v4_fracs.push_back(v4f);
    if (!v6_all.empty()) v6_fracs.push_back(v6f);
    if (first_v4 == 0) first_v4 = v4_all.size();
    last_v4 = v4_all.size();
  }

  // Shape checks.
  bool v4_flat = true;
  for (double f : v4_fracs) {
    if (std::abs(f - v4_fracs.back()) > 12) v4_flat = false;
  }
  bool v6_decays = v6_fracs.size() >= 3 &&
                   v6_fracs.front() > v6_fracs.back() + 5;
  bool v6_above_v4 = !v6_fracs.empty() && v6_fracs.back() > v4_fracs.back();
  std::printf("\nIPv4 ASNs %zu -> %zu (growing); transit fraction ~flat: %s "
              "(paper: constant)\n", first_v4, last_v4,
              v4_flat ? "yes" : "no");
  std::printf("IPv6 transit fraction decays from %.0f%% to %.0f%%: %s "
              "(paper: decay then flattening)\n",
              v6_fracs.empty() ? 0 : v6_fracs.front(),
              v6_fracs.empty() ? 0 : v6_fracs.back(),
              v6_decays ? "yes" : "no");
  std::printf("final IPv6 transit %% > IPv4: %s (paper: 21%% vs 16%%)\n",
              v6_above_v4 ? "yes" : "no");
  return (v6_decays && v6_above_v4) ? 0 : 1;
}
