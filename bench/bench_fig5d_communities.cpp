// Figure 5d — BGP community diversity as observed by VPs (§5).
//
// Paper observations reproduced: (i) not every VP observes communities
// (some ASes strip them before exporting); (ii) the number of distinct
// community AS-identifiers varies strongly across VPs; (iii) aggregating
// per collector / per project observes a richer community set than any
// single VP, guiding collector choice for community-based studies.
#include <map>
#include <set>

#include "bench/bench_util.hpp"

using namespace bgps;

int main() {
  std::printf("=== Figure 5d: community diversity per VP ===\n");
  auto archive = bench::GetFig5Archive();
  broker::Broker broker(archive.root, bench::HistoricalBrokerOptions());
  Timestamp snapshot = archive.snapshot_times.back();  // "January 2016"

  core::BrokerDataInterface di(&broker);
  core::BgpStream stream;
  (void)stream.AddFilter("type", "ribs");
  (void)stream.AddFilter("ipversion", "4");
  stream.SetInterval(snapshot - 600, snapshot + 1200);
  stream.SetDataInterface(&di);
  if (!stream.Start().ok()) return 1;

  struct VpStats {
    std::string project;
    std::set<uint16_t> community_ases;  // two most-significant bytes
  };
  std::map<std::pair<std::string, bgp::Asn>, VpStats> vps;
  std::map<std::string, std::set<uint16_t>> per_collector;
  std::map<std::string, std::set<uint16_t>> per_project;
  size_t vp_elems = 0;

  while (auto rec = stream.NextRecord()) {
    for (const auto& elem : stream.Elems(*rec)) {
      if (elem.type != core::ElemType::RibEntry) continue;
      ++vp_elems;
      auto& stats = vps[{rec->collector, elem.peer_asn}];
      stats.project = rec->project;
      for (const auto& c : elem.communities) {
        stats.community_ases.insert(c.asn());
        per_collector[rec->collector].insert(c.asn());
        per_project[rec->project].insert(c.asn());
      }
    }
  }

  std::printf("%-14s %8s %22s\n", "collector", "peer AS", "#community-ASes");
  size_t best_vp_count = 0;
  for (const auto& [key, stats] : vps) {
    std::printf("%-14s %8u %22zu\n", key.first.c_str(), key.second,
                stats.community_ases.size());
    best_vp_count = std::max(best_vp_count, stats.community_ases.size());
  }
  // Community-poor VPs: speakers in the vicinity strip communities, so
  // these VPs see almost none (the paper's "we observe communities only
  // through ~83% of the VPs" effect; our origins always tag their own
  // routes, so the floor here is 1 rather than 0).
  size_t poor = 0;
  for (const auto& [key, stats] : vps) {
    if (stats.community_ases.size() * 10 < best_vp_count) ++poor;
  }
  std::printf("\ncommunity-poor VPs (<10%% of the best VP's diversity): "
              "%zu/%zu (paper: ~17%% of VPs observe none)\n",
              poor, vps.size());

  std::printf("\naggregates (grey circles):\n");
  size_t best_vp = 0;
  for (const auto& [key, stats] : vps)
    best_vp = std::max(best_vp, stats.community_ases.size());
  size_t best_coll = 0;
  for (const auto& [name, set] : per_collector) {
    std::printf("  collector %-14s %6zu community-ASes\n", name.c_str(),
                set.size());
    best_coll = std::max(best_coll, set.size());
  }
  for (const auto& [name, set] : per_project) {
    std::printf("  project   %-14s %6zu community-ASes\n", name.c_str(),
                set.size());
  }
  std::printf("\nbest single VP %zu vs best collector %zu (aggregation "
              "observes more, as in the paper's Fig. 5d)\n",
              best_vp, best_coll);
  return (poor > 0 && best_coll >= best_vp) ? 0 : 1;
}
