// Figure 6 — GARR (AS137) hijack detection with the pfxmonitor plugin
// (§6.1).
//
// Paper shape reproduced: the green line (#unique prefixes) oscillates
// mildly around the announced count; the blue line (#unique origin ASNs)
// sits at 1 and spikes to 2 for ~1 hour during each hijack event; the
// scripted events are all recovered from the plugin output alone.
#include "bench/bench_util.hpp"
#include "corsaro/corsaro.hpp"
#include "corsaro/pfxmonitor.hpp"

using namespace bgps;

int main() {
  std::printf("=== Figure 6: GARR hijack via pfxmonitor ===\n");
  auto scenario = sim::BuildGarrScenario("/tmp/bgpstream-bench-fig6", 9);
  std::printf("victim AS%u (%zu prefixes), attacker AS%u, %zu scripted "
              "hijack windows, 5-min bins\n\n",
              scenario.victim, scenario.victim_prefixes.size(),
              scenario.attacker, scenario.hijack_windows.size());

  broker::Broker broker(scenario.driver->archive_root(),
                        bench::HistoricalBrokerOptions());
  core::BrokerDataInterface di(&broker);
  core::BgpStream stream;
  stream.SetInterval(scenario.start, scenario.end);
  stream.SetDataInterface(&di);
  if (!stream.Start().ok()) return 1;

  corsaro::BgpCorsaro engine(&stream, 300);
  auto monitor =
      std::make_unique<corsaro::PfxMonitor>(scenario.victim_prefixes);
  corsaro::PfxMonitor* pm = monitor.get();
  engine.AddPlugin(std::move(monitor));
  engine.Run();

  // Recover events: maximal runs of bins with >1 origin.
  struct Detection {
    Timestamp start, end;
  };
  std::vector<Detection> detections;
  size_t min_pfx = SIZE_MAX, max_pfx = 0;
  for (const auto& row : pm->rows()) {
    min_pfx = std::min(min_pfx, row.unique_prefixes);
    max_pfx = std::max(max_pfx, row.unique_prefixes);
    if (row.unique_origins > 1) {
      if (!detections.empty() &&
          detections.back().end == row.bin_start) {
        detections.back().end = row.bin_start + 300;
      } else {
        detections.push_back({row.bin_start, row.bin_start + 300});
      }
    }
  }

  std::printf("%-44s %-44s\n", "scripted hijack window", "detected");
  size_t matched = 0;
  for (auto [t0, t1] : scenario.hijack_windows) {
    const Detection* hit = nullptr;
    for (const auto& d : detections) {
      if (d.start < t1 && d.end > t0) hit = &d;
    }
    std::string win = FormatTimestamp(t0) + " .. " + FormatTimestamp(t1);
    if (hit) {
      ++matched;
      std::string det =
          FormatTimestamp(hit->start) + " .. " + FormatTimestamp(hit->end);
      std::printf("%-44s %-44s\n", win.c_str(), det.c_str());
    } else {
      std::printf("%-44s %-44s\n", win.c_str(), "MISSED");
    }
  }
  std::printf("\nprefix series (green line): oscillates %zu..%zu around %zu "
              "announced\n", min_pfx, max_pfx,
              scenario.victim_prefixes.size());
  std::printf("origin spikes (blue line): %zu detected runs, %zu/%zu "
              "scripted events matched (paper found 4 events incl. 3 "
              "unreported ones)\n", detections.size(), matched,
              scenario.hijack_windows.size());
  return (matched == scenario.hijack_windows.size() &&
          detections.size() == scenario.hijack_windows.size())
             ? 0
             : 1;
}
