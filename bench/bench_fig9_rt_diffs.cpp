// Figure 9 — RT diffs vs BGP elems for route-views2-style data (§6.2.2).
//
// Paper shape reproduced: average diff cells per bin are several times
// fewer than update elems at 1-minute bins (~3x) and the reduction factor
// grows with the bin size (~13x at 1 hour); maxima show diffs absorbing
// update bursts (prefix flapping).
#include <filesystem>

#include "analysis/stats.hpp"
#include "bench/bench_util.hpp"
#include "corsaro/corsaro.hpp"
#include "corsaro/rt.hpp"
#include "mq/serialize.hpp"

using namespace bgps;

int main() {
  std::printf("=== Figure 9: RT diff cells vs BGP elems ===\n");

  // A few days of one RouteViews-style collector with heavy churn
  // (including flapping, which the diff mechanism should absorb).
  const std::string root = "/tmp/bgpstream-bench-fig9";
  sim::StandardSimOptions options;
  options.topo.num_tier1 = 5;
  options.topo.num_transit = 14;
  options.topo.num_stub = 60;
  options.rv_collectors = 1;
  options.ris_collectors = 0;
  options.vps_per_collector = 6;
  options.publish_delay = 0;
  std::filesystem::remove_all(root);
  auto driver = sim::MakeStandardSim(options, root);
  Timestamp start = TimestampFromYmdHms(2016, 3, 1, 0, 0, 0);
  Timestamp end = start + 4 * 86400;
  driver->AddFlapNoise(start, end, 300.0, 45);  // short flaps: redundancy
  if (!driver->Run(start, end).ok()) return 1;

  broker::Broker broker(root, bench::HistoricalBrokerOptions());

  std::printf("\n%-10s %12s %12s %12s %12s %10s\n", "bin (min)", "avg elems",
              "avg diffs", "max elems", "max diffs", "avg ratio");
  double ratio_1min = 0, ratio_60min = 0;
  for (Timestamp bin_min : {1, 5, 10, 15, 20, 30, 45, 60}) {
    core::BrokerDataInterface di(&broker);
    core::BgpStream stream;
    (void)stream.AddFilter("type", "updates");
    stream.SetInterval(start, end);
    stream.SetDataInterface(&di);
    if (!stream.Start().ok()) return 1;
    corsaro::BgpCorsaro engine(&stream, bin_min * 60);
    auto rt = std::make_unique<corsaro::RoutingTables>();
    corsaro::RoutingTables* rtp = rt.get();
    engine.AddPlugin(std::move(rt));
    engine.Run();

    std::vector<size_t> elems, diffs;
    for (const auto& s : rtp->bin_stats()) {
      elems.push_back(s.elems);
      diffs.push_back(s.diff_cells);
    }
    double avg_elems = analysis::Mean(elems);
    double avg_diffs = analysis::Mean(diffs);
    double ratio = avg_diffs > 0 ? avg_elems / avg_diffs : 0;
    std::printf("%-10lld %12.1f %12.1f %12zu %12zu %9.1fx\n",
                (long long)bin_min, avg_elems, avg_diffs,
                analysis::Max(elems), analysis::Max(diffs), ratio);
    if (bin_min == 1) ratio_1min = ratio;
    if (bin_min == 60) ratio_60min = ratio;
  }

  std::printf("\nreduction factor grows with bin size: %.1fx @1min -> %.1fx "
              "@60min (paper: ~3x -> ~13x)\n", ratio_1min, ratio_60min);

  // --- Ablation (§6.2.2 design choice): publish diffs vs full tables ---
  // Serialized bytes a consumer must ingest per 15-minute bin when the RT
  // plugin publishes per-bin diffs versus full per-VP snapshots.
  {
    core::BrokerDataInterface di(&broker);
    core::BgpStream stream;
    (void)stream.AddFilter("type", "updates");
    stream.SetInterval(start, start + 86400);  // one day is enough
    stream.SetDataInterface(&di);
    if (!stream.Start().ok()) return 1;
    corsaro::BgpCorsaro engine(&stream, 900);
    corsaro::RoutingTables::Options ropt;
    ropt.snapshot_every_bins = 1;  // a snapshot each bin, for comparison
    auto rt = std::make_unique<corsaro::RoutingTables>(ropt);
    size_t diff_bytes = 0, snapshot_bytes = 0, bins = 0;
    rt->set_diff_callback([&](Timestamp bin,
                              const std::vector<corsaro::DiffCell>& diffs) {
      mq::RtDiffMessage msg{"rv", bin, diffs};
      diff_bytes += mq::EncodeDiffMessage(msg).size();
      ++bins;
    });
    rt->set_snapshot_callback(
        [&](Timestamp bin, const corsaro::VpKey& vp,
            const std::map<Prefix, corsaro::RtCell>& table) {
          mq::RtSnapshotMessage msg{"rv", bin, vp, table};
          snapshot_bytes += mq::EncodeSnapshotMessage(msg).size();
        });
    engine.AddPlugin(std::move(rt));
    engine.Run();
    if (bins > 0 && diff_bytes > 0) {
      std::printf("\nablation (15-min bins, 1 day): consumer ingest per bin\n"
                  "  diffs:          %8.1f KiB/bin\n"
                  "  full snapshots: %8.1f KiB/bin  (%.0fx more)\n",
                  double(diff_bytes) / double(bins) / 1024.0,
                  double(snapshot_bytes) / double(bins) / 1024.0,
                  double(snapshot_bytes) / double(diff_bytes));
    }
  }
  return (ratio_1min > 1.0 && ratio_60min > ratio_1min) ? 0 : 1;
}
