// Live ingestion tier latency/throughput: BMP frame ingest -> MRT
// spool, exabgp line ingest, the full ingest -> published micro-dump ->
// decoded record path, and the accelerated-replay merge loop. The live
// requirement (§3.1) is that the ingest side outpaces what a busy
// session delivers, and that the ingest -> record hand-off stays in the
// milliseconds — these counters feed bench_diff.py like every other
// bench JSON.
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <filesystem>
#include <string>

#include "bmp/bmp.hpp"
#include "core/clock.hpp"
#include "core/stream.hpp"
#include "exabgp/exabgp.hpp"
#include "pool/live_source.hpp"
#include "sim/corpus.hpp"
#include "sim/replay.hpp"

using namespace bgps;

namespace {

namespace fs = std::filesystem;

std::string BenchDir(const std::string& leaf) {
  return (fs::temp_directory_path() /
          ("bgpstream-bench-live-" + std::to_string(::getpid())) / leaf)
      .string();
}

bmp::BmpMessage MakeFrame(int prefixes, Timestamp ts) {
  bmp::RouteMonitoring rm;
  rm.peer.peer_address = IpAddress::V4(10, 0, 0, 1);
  rm.peer.peer_asn = 65001;
  rm.peer.peer_bgp_id = 65001;
  rm.peer.timestamp = ts;
  rm.update.attrs.as_path = bgp::AsPath::Sequence({65001, 3356, 2914, 15169});
  rm.update.attrs.next_hop = IpAddress::V4(10, 0, 0, 1);
  for (int i = 0; i < prefixes; ++i)
    rm.update.announced.push_back(
        Prefix(IpAddress::V4(uint32_t(10 + i) << 24), 16));
  return bmp::BmpMessage{rm};
}

std::unique_ptr<pool::LiveSource> MakeSource(const std::string& leaf,
                                             size_t flush_records) {
  pool::LiveSource::Options opt;
  opt.spool_dir = BenchDir(leaf);
  opt.flush_records = flush_records;
  auto source = pool::LiveSource::Create(std::move(opt));
  if (!source.ok()) std::abort();
  return std::move(*source);
}

// BMP wire -> decode -> MRT encode -> spooled record, the per-frame hot
// path of a live session (micro-dump writes amortized over the flush).
void BM_LiveBmpFrameIngest(benchmark::State& state) {
  Bytes frame = bmp::Encode(MakeFrame(int(state.range(0)), 1451606400));
  auto source = MakeSource("bmp-ingest", 4096);
  for (auto _ : state) {
    Status st = source->IngestBmp(frame);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  (void)source->Close();
  state.SetItemsProcessed(int64_t(state.iterations()));
  state.SetBytesProcessed(int64_t(state.iterations()) *
                          int64_t(frame.size()));
  fs::remove_all(BenchDir("bmp-ingest"));
}
BENCHMARK(BM_LiveBmpFrameIngest)->Arg(1)->Arg(8)->Arg(64);

// exabgp JSON line -> parse -> MRT encode -> spooled record.
void BM_LiveExaBgpLineIngest(benchmark::State& state) {
  auto mrt_msg = bmp::ToMrt(MakeFrame(int(state.range(0)), 1451606400), 64512);
  auto exa = exabgp::FromMrt(*mrt_msg);
  std::string line = exabgp::EncodeLine(*exa);
  auto source = MakeSource("exabgp-ingest", 4096);
  for (auto _ : state) {
    Status st = source->IngestExaBgpLine(line);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  (void)source->Close();
  state.SetItemsProcessed(int64_t(state.iterations()));
  state.SetBytesProcessed(int64_t(state.iterations()) *
                          int64_t(line.size()));
  fs::remove_all(BenchDir("exabgp-ingest"));
}
BENCHMARK(BM_LiveExaBgpLineIngest)->Arg(1)->Arg(8);

// The whole tier end to end: a 64-frame session ingested, flushed,
// published through LiveFeedInterface and drained as decoded records —
// the latency a live consumer experiences from socket bytes to elems.
void BM_LiveIngestToRecordEndToEnd(benchmark::State& state) {
  std::vector<Bytes> frames;
  for (int i = 0; i < 64; ++i)
    frames.push_back(bmp::Encode(MakeFrame(4, 1451606400 + i)));
  size_t records = 0;
  for (auto _ : state) {
    auto source = MakeSource("e2e", 16);
    for (const auto& f : frames)
      if (!source->IngestBmp(f).ok())
        state.SkipWithError("ingest failed");
    (void)source->Close();
    core::BgpStream stream;
    stream.SetLive(0);
    stream.SetDataInterface(source->feed());
    if (!stream.Start().ok()) state.SkipWithError("stream failed");
    while (auto rec = stream.NextRecord()) {
      benchmark::DoNotOptimize(stream.Elems(*rec));
      ++records;
    }
  }
  state.SetItemsProcessed(int64_t(records));
  fs::remove_all(BenchDir("e2e"));
}
BENCHMARK(BM_LiveIngestToRecordEndToEnd)->Unit(benchmark::kMillisecond);

// Accelerated-replay merge loop over a generated archive: k-way merge +
// MRT decode + BMP re-encode per record, virtual clock (no wall sleeps).
void BM_ReplayArchiveMerge(benchmark::State& state) {
  static const std::string* corpus_root = [] {
    auto* root = new std::string(BenchDir("replay-corpus"));
    sim::CorpusOptions opt;
    opt.scenario = "baseline";
    opt.rv_collectors = 1;
    opt.ris_collectors = 0;
    opt.vps_per_collector = 3;
    opt.duration = 600;
    opt.seed = 11;
    if (!sim::GenerateCorpus(opt, *root).ok()) std::abort();
    return root;
  }();
  size_t replayed = 0;
  for (auto _ : state) {
    core::AcceleratedClock clock(1.0, [](std::chrono::microseconds) {});
    sim::ReplayOptions opt;
    opt.archive_root = *corpus_root;
    opt.format = sim::ReplayFormat::Bmp;
    opt.clock = &clock;
    auto stats = sim::ReplayArchive(opt, [](Timestamp, const Bytes& payload) {
      benchmark::DoNotOptimize(payload.data());
      return OkStatus();
    });
    if (!stats.ok()) state.SkipWithError(stats.status().ToString().c_str());
    replayed += stats->records_replayed;
  }
  state.SetItemsProcessed(int64_t(replayed));
  state.SetLabel("records/iter=" +
                 std::to_string(state.iterations()
                                    ? replayed / size_t(state.iterations())
                                    : 0));
}
BENCHMARK(BM_ReplayArchiveMerge)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
