// Section 6.2.1 — RT plugin accuracy: shadow-vs-main mismatch probability.
//
// Paper numbers: over 12 months and 31 collectors, the probability that a
// reconstructed cell disagrees with the next RIB dump is ~1e-8 for RIPE
// RIS and ~1e-5 for RouteViews, with mismatches "usually caused by
// unresponsive VPs for which we do not have state messages". We model
// that root cause with a per-message loss probability that is orders of
// magnitude higher for the RouteViews-style collector; the reproduced
// shape is RIS error ~0 and RouteViews error orders of magnitude larger.
#include <filesystem>

#include "bench/bench_util.hpp"
#include "corsaro/corsaro.hpp"
#include "corsaro/rt.hpp"

using namespace bgps;

int main() {
  std::printf("=== Section 6.2.1: RT accuracy (RIS vs RouteViews) ===\n");

  const std::string root = "/tmp/bgpstream-bench-rtacc";
  std::filesystem::remove_all(root);

  sim::TopologyConfig topo_cfg;
  topo_cfg.num_tier1 = 5;
  topo_cfg.num_transit = 14;
  topo_cfg.num_stub = 60;
  topo_cfg.seed = 621;
  sim::SimDriver driver(sim::Topology::Generate(topo_cfg), root, 621);

  // Same VP pool, two collection styles. Frequent RIBs so the comparison
  // runs many times.
  auto vps = sim::PickVps(driver.topology(), 6, 0.2, 77);
  {
    sim::CollectorConfig cfg;
    cfg.project = "ris";
    cfg.name = "rrc00";
    cfg.rib_period = 2 * 3600;
    cfg.update_period = 5 * 60;
    cfg.state_messages = true;
    cfg.publish_delay = 0;
    cfg.update_loss_probability = 0.0;  // RIS: effectively lossless
    cfg.vps = vps;
    driver.AddCollector(cfg);
  }
  {
    sim::CollectorConfig cfg;
    cfg.project = "routeviews";
    cfg.name = "route-views2";
    cfg.rib_period = 2 * 3600;
    cfg.update_period = 15 * 60;
    cfg.state_messages = false;
    cfg.publish_delay = 0;
    cfg.update_loss_probability = 2e-3;  // unresponsive-VP losses
    cfg.vps = vps;
    driver.AddCollector(cfg);
  }
  driver.world().AnnounceAll();

  Timestamp start = TimestampFromYmdHms(2016, 1, 1, 0, 0, 0);
  Timestamp end = start + 2 * 86400;
  driver.AddFlapNoise(start, end, 240.0, 90);
  if (!driver.Run(start, end).ok()) return 1;

  broker::Broker broker(root, bench::HistoricalBrokerOptions());

  std::printf("\n%-14s %14s %12s %16s\n", "collector", "compared", "mismatch",
              "error prob.");
  double ris_err = -1, rv_err = -1;
  for (const std::string collector : {"rrc00", "route-views2"}) {
    core::BrokerDataInterface di(&broker);
    core::BgpStream stream;
    (void)stream.AddFilter("collector", collector);
    stream.SetInterval(start, end);
    stream.SetDataInterface(&di);
    if (!stream.Start().ok()) return 1;
    corsaro::BgpCorsaro engine(&stream, 300);
    auto rt = std::make_unique<corsaro::RoutingTables>();
    corsaro::RoutingTables* rtp = rt.get();
    engine.AddPlugin(std::move(rt));
    engine.Run();
    double err = rtp->rib_compared_prefixes() == 0
                     ? 0
                     : double(rtp->rib_mismatches()) /
                           double(rtp->rib_compared_prefixes());
    std::printf("%-14s %14zu %12zu %16.2e\n", collector.c_str(),
                rtp->rib_compared_prefixes(), rtp->rib_mismatches(), err);
    if (collector == "rrc00") ris_err = err;
    else rv_err = err;
  }

  std::printf("\nRIS error ~0 and RouteViews orders of magnitude larger "
              "(paper: 1e-8 vs 1e-5): %s\n",
              (ris_err < 1e-6 && rv_err > 10 * std::max(ris_err, 1e-9))
                  ? "reproduced"
                  : "NOT reproduced");
  return (ris_err < 1e-6 && rv_err > ris_err) ? 0 : 1;
}
