// Sharded RoutingTables at global-table scale (google-benchmark).
//
// BM_Fig5aMillionPrefixRib — the fig-5a workload at its real size: a
// synthetic >= 1M-prefix RIB dump seeds every VP's table through the full
// stream -> decode -> RT pipeline, then churn windows and a closing RIB
// drive the compare/merge path. BM_Fig9ShardedDiffs — the fig-9 shape:
// per-bin diff emission over the same corpus, diff cells consumed by a
// callback. Both run at 1/2/4 shards on a shared Executor; output is
// identical at every shard count (pinned by rt_mega_stress_test), so the
// counters here measure cost, not behavior:
//   records/s          pipeline record throughput (items/sec)
//   elems/s            update + RIB elems applied per second
//   shard_elems_min/max per-shard applied-elem spread (balance)
//   diff_cells         cells emitted across all bins (Fig9 bench)
//
// The corpus is built lazily once per machine (EnsureSyntheticRib) under
// the same root the stress test uses; BGPS_BENCH_RIB_PREFIXES overrides
// the prefix count (CI uses a small value, the full 1M is the default).
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>

#include "broker/broker.hpp"
#include "core/executor.hpp"
#include "core/stream.hpp"
#include "corsaro/corsaro.hpp"
#include "corsaro/rt.hpp"
#include "sim/corpus.hpp"

namespace {

using namespace bgps;
using namespace bgps::corsaro;

size_t RibPrefixes() {
  if (const char* env = std::getenv("BGPS_BENCH_RIB_PREFIXES")) {
    size_t n = std::strtoull(env, nullptr, 10);
    if (n > 0) return n;
  }
  return 1'000'000;
}

sim::SyntheticRibOptions CorpusOptions() {
  sim::SyntheticRibOptions options;  // defaults: 1M prefixes, 4 VPs
  options.prefixes = RibPrefixes();
  return options;
}

// Default-sized corpus shares the stress test's cache; overridden sizes
// get their own directory so the markers never fight.
std::string CorpusRoot() {
  size_t n = RibPrefixes();
  auto base = std::filesystem::temp_directory_path();
  if (n == 1'000'000) return (base / "bgps_mega_rib_corpus").string();
  return (base / ("bgps_mega_rib_corpus_" + std::to_string(n))).string();
}

const sim::SyntheticRibStats& Corpus() {
  static const sim::SyntheticRibStats stats = [] {
    auto r = sim::EnsureSyntheticRib(CorpusOptions(), CorpusRoot());
    if (!r.ok()) {
      std::fprintf(stderr, "corpus generation failed: %s\n",
                   r.status().ToString().c_str());
      std::exit(1);
    }
    return *r;
  }();
  return stats;
}

struct RunTotals {
  size_t records = 0;
  size_t elems_applied = 0;
  size_t diff_cells = 0;
  size_t shard_elems_min = 0;
  size_t shard_elems_max = 0;
};

RunTotals RunPipeline(size_t shards, core::Executor* executor,
                      bool consume_diffs) {
  const auto& corpus = Corpus();
  broker::Broker::Options bopt;
  bopt.clock = [] { return Timestamp(4102444800); };
  broker::Broker broker(CorpusRoot(), bopt);
  core::BrokerDataInterface di(&broker);

  core::BgpStream stream;
  stream.SetInterval(corpus.start, corpus.end);
  stream.SetDataInterface(&di);
  if (!stream.Start().ok()) {
    std::fprintf(stderr, "stream failed to start\n");
    std::exit(1);
  }

  BgpCorsaro engine(&stream, 900);
  RoutingTables::Options opt;
  opt.shards = shards;
  opt.executor = shards > 1 ? executor : nullptr;
  auto rt = std::make_unique<RoutingTables>(opt);
  RoutingTables* rtp = rt.get();
  RunTotals totals;
  if (consume_diffs) {
    rtp->set_diff_callback(
        [&totals](Timestamp, const std::vector<DiffCell>& diffs) {
          for (const auto& d : diffs) benchmark::DoNotOptimize(d.cell);
          totals.diff_cells += diffs.size();
        });
  }
  engine.AddPlugin(std::move(rt));
  totals.records = engine.Run();

  auto stats = rtp->shard_stats();
  totals.shard_elems_min = SIZE_MAX;
  for (const auto& s : stats) {
    totals.elems_applied += s.applied_elems;
    totals.shard_elems_min = std::min(totals.shard_elems_min, s.applied_elems);
    totals.shard_elems_max = std::max(totals.shard_elems_max, s.applied_elems);
  }
  return totals;
}

void ReportCommon(benchmark::State& state, const RunTotals& totals,
                  size_t iterations) {
  state.SetItemsProcessed(int64_t(totals.records) * iterations);
  state.counters["records/s"] = benchmark::Counter(
      double(totals.records) * iterations, benchmark::Counter::kIsRate);
  state.counters["elems/s"] = benchmark::Counter(
      double(totals.elems_applied) * iterations, benchmark::Counter::kIsRate);
  state.counters["shard_elems_min"] = double(totals.shard_elems_min);
  state.counters["shard_elems_max"] = double(totals.shard_elems_max);
  state.counters["shards"] = double(state.range(0));
}

void BM_Fig5aMillionPrefixRib(benchmark::State& state) {
  size_t shards = size_t(state.range(0));
  core::Executor executor({.threads = 4});
  RunTotals totals;
  for (auto _ : state) {
    totals = RunPipeline(shards, &executor, /*consume_diffs=*/false);
  }
  ReportCommon(state, totals, state.iterations());
  state.counters["rib_prefixes"] = double(RibPrefixes());
}
BENCHMARK(BM_Fig5aMillionPrefixRib)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

void BM_Fig9ShardedDiffs(benchmark::State& state) {
  size_t shards = size_t(state.range(0));
  core::Executor executor({.threads = 4});
  RunTotals totals;
  for (auto _ : state) {
    totals = RunPipeline(shards, &executor, /*consume_diffs=*/true);
  }
  ReportCommon(state, totals, state.iterations());
  state.counters["diff_cells"] = double(totals.diff_cells);
}
BENCHMARK(BM_Fig9ShardedDiffs)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
