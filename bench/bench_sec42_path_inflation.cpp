// Section 4.2 — AS-path inflation (Listing 1).
//
// Paper result: comparing BGP path lengths against shortest paths on the
// observed AS graph, >30% of <VP, origin> pairs are inflated by 1 to 11
// hops. Our synthetic topology is smaller and flatter, so the expected
// shape is: a substantial fraction inflated (tens of percent), a
// geometric-ish histogram of extra hops, max extra well above 1.
#include <map>

#include "analysis/graph.hpp"
#include "analysis/mapreduce.hpp"
#include "bench/bench_util.hpp"

using namespace bgps;

int main() {
  std::printf("=== Section 4.2: AS path inflation ===\n");
  auto archive = bench::GetFig5Archive();
  Timestamp snapshot = archive.snapshot_times.back();

  broker::Broker broker(archive.root, bench::HistoricalBrokerOptions());

  // Spark-style partitioning (§5): one stream per collector, mapped on a
  // thread pool, reduced into one graph + one path-length table.
  std::vector<std::string> collectors;
  for (const auto& [name, _] : archive.collectors) collectors.push_back(name);

  struct PartResult {
    std::vector<std::pair<uint32_t, uint32_t>> edges;
    std::map<std::pair<uint32_t, uint32_t>, size_t> lens;
  };
  auto map_fn = [&](const std::string& collector) {
    PartResult out;
    broker::Broker local(archive.root, bench::HistoricalBrokerOptions());
    core::BrokerDataInterface di(&local);
    core::BgpStream stream;
    (void)stream.AddFilter("type", "ribs");
    (void)stream.AddFilter("collector", collector);
    stream.SetInterval(snapshot - 600, snapshot + 1200);
    stream.SetDataInterface(&di);
    if (!stream.Start().ok()) return out;
    while (auto rec = stream.NextRecord()) {
      for (const auto& elem : stream.Elems(*rec)) {
        if (elem.type != core::ElemType::RibEntry) continue;
        std::vector<uint32_t> hops;
        for (uint32_t asn : elem.as_path.hops()) {
          if (hops.empty() || hops.back() != asn) hops.push_back(asn);
        }
        if (hops.size() <= 1 || hops.front() != elem.peer_asn) continue;
        for (size_t i = 0; i + 1 < hops.size(); ++i)
          out.edges.emplace_back(hops[i], hops[i + 1]);
        auto key = std::make_pair(hops.front(), hops.back());
        auto it = out.lens.find(key);
        if (it == out.lens.end() || hops.size() < it->second)
          out.lens[key] = hops.size();
      }
    }
    return out;
  };
  // Executor-tenant backend: the partition tasks share one pool (and its
  // deficit scheduler) instead of spawning private threads per analysis.
  core::Executor executor({.threads = 4});
  auto parts = analysis::RunPartitioned(collectors, map_fn, &executor);

  analysis::AsGraph graph;
  std::map<std::pair<uint32_t, uint32_t>, size_t> bgp_lens;
  for (const auto& part : parts) {
    for (auto [a, b] : part.edges) graph.AddEdge(a, b);
    for (const auto& [key, len] : part.lens) {
      auto it = bgp_lens.find(key);
      if (it == bgp_lens.end() || len < it->second) bgp_lens[key] = len;
    }
  }

  size_t pairs = 0, inflated = 0, max_extra = 0;
  std::map<size_t, size_t> histogram;
  uint32_t cur_monitor = 0;
  std::unordered_map<uint32_t, uint32_t> dist;
  for (const auto& [key, bgp_len] : bgp_lens) {
    auto [monitor, origin] = key;
    if (monitor != cur_monitor) {
      dist = graph.Distances(monitor);
      cur_monitor = monitor;
    }
    auto it = dist.find(origin);
    if (it == dist.end()) continue;
    size_t shortest = it->second + 1;
    ++pairs;
    if (bgp_len > shortest) {
      ++inflated;
      ++histogram[bgp_len - shortest];
      max_extra = std::max(max_extra, bgp_len - shortest);
    }
  }

  std::printf("AS graph: %zu nodes, %zu edges; %zu <VP,origin> pairs\n",
              graph.node_count(), graph.edge_count(), pairs);
  std::printf("inflated: %zu pairs (%.1f%%), extra hops 1..%zu\n", inflated,
              pairs ? 100.0 * double(inflated) / double(pairs) : 0, max_extra);
  std::printf("(paper: >30%% inflated, 1..11 extra hops on year-2015 data)\n");
  std::printf("%-12s %10s\n", "extra hops", "pairs");
  for (const auto& [extra, count] : histogram)
    std::printf("+%-11zu %10zu\n", extra, count);
  return (pairs > 0 && inflated > 0) ? 0 : 1;
}
