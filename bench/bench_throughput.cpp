// §3.1 live-mode requirement — processing must outpace data generation.
//
// google-benchmark micro-benchmarks of every stage on the hot path:
// MRT framing+decode, BGP UPDATE encode/decode, elem extraction, filter
// evaluation, patricia lookups, multi-way merge. A modern laptop core
// sustains far more records/s than RouteViews+RIS generate (~hundreds/s),
// which is the headroom the paper's live applications rely on.
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <random>
#include <thread>

#include "core/elem.hpp"
#include "core/filter.hpp"
#include "core/stream.hpp"
#include "mrt/encode.hpp"
#include "mrt/file.hpp"
#include "mrt/mrt.hpp"
#include "pool/record_fanout.hpp"
#include "pool/stream_pool.hpp"
#include "sim/corpus.hpp"
#include "util/patricia.hpp"

using namespace bgps;

namespace {

mrt::Bgp4mpMessage MakeUpdateMsg(int prefixes) {
  mrt::Bgp4mpMessage m;
  m.peer_asn = 65001;
  m.local_asn = 64512;
  m.peer_address = IpAddress::V4(10, 0, 0, 1);
  m.local_address = IpAddress::V4(192, 0, 2, 1);
  m.update.attrs.as_path = bgp::AsPath::Sequence({65001, 3356, 2914, 15169});
  m.update.attrs.next_hop = IpAddress::V4(10, 0, 0, 1);
  m.update.attrs.communities = {bgp::Community(3356, 100),
                                bgp::Community(65535, 666)};
  for (int i = 0; i < prefixes; ++i) {
    m.update.announced.push_back(
        Prefix(IpAddress::V4(uint32_t(10 + i) << 24), 16));
  }
  return m;
}

void BM_MrtDecodeUpdate(benchmark::State& state) {
  Bytes wire = mrt::EncodeBgp4mpUpdate(1458000000,
                                       MakeUpdateMsg(int(state.range(0))));
  for (auto _ : state) {
    BufReader r(wire);
    auto raw = mrt::DecodeRawRecord(r);
    auto msg = mrt::DecodeRecord(*raw);
    benchmark::DoNotOptimize(msg);
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
  state.SetBytesProcessed(int64_t(state.iterations()) * int64_t(wire.size()));
}
BENCHMARK(BM_MrtDecodeUpdate)->Arg(1)->Arg(8)->Arg(64);

void BM_MrtEncodeUpdate(benchmark::State& state) {
  auto msg = MakeUpdateMsg(int(state.range(0)));
  for (auto _ : state) {
    Bytes wire = mrt::EncodeBgp4mpUpdate(1458000000, msg);
    benchmark::DoNotOptimize(wire);
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_MrtEncodeUpdate)->Arg(1)->Arg(64);

void BM_ElemExtraction(benchmark::State& state) {
  core::Record rec;
  rec.dump_type = core::DumpType::Updates;
  rec.msg.timestamp = 1458000000;
  rec.msg.body = MakeUpdateMsg(int(state.range(0)));
  size_t elems = 0;
  for (auto _ : state) {
    auto out = core::ExtractElems(rec);
    elems += out.size();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(int64_t(elems));
}
BENCHMARK(BM_ElemExtraction)->Arg(1)->Arg(8)->Arg(64);

void BM_FilterMatch(benchmark::State& state) {
  core::FilterSet filters;
  (void)filters.AddOption("prefix", "more 10.0.0.0/8");
  (void)filters.AddOption("community", "*:666");
  (void)filters.AddOption("elemtype", "announcements");
  core::Record rec;
  rec.dump_type = core::DumpType::Updates;
  rec.msg.body = MakeUpdateMsg(8);
  auto elems = core::ExtractElems(rec);
  size_t matched = 0;
  for (auto _ : state) {
    for (const auto& e : elems) matched += filters.MatchesElem(e);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(elems.size()));
  benchmark::DoNotOptimize(matched);
}
BENCHMARK(BM_FilterMatch);

void BM_PatriciaLongestMatch(benchmark::State& state) {
  PatriciaTrie<int> trie(IpFamily::V4);
  std::mt19937 rng(7);
  for (int i = 0; i < int(state.range(0)); ++i) {
    trie.insert(Prefix(IpAddress::V4(rng()), 8 + int(rng() % 17)), i);
  }
  std::vector<IpAddress> queries;
  for (int i = 0; i < 1024; ++i) queries.push_back(IpAddress::V4(rng()));
  size_t q = 0, hits = 0;
  for (auto _ : state) {
    hits += trie.longest_match(queries[q++ & 1023]).has_value();
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
  benchmark::DoNotOptimize(hits);
}
BENCHMARK(BM_PatriciaLongestMatch)->Arg(1000)->Arg(100000);

void BM_AsPathToString(benchmark::State& state) {
  bgp::AsPath path = bgp::AsPath::Sequence({65001, 3356, 2914, 1299, 15169});
  for (auto _ : state) {
    std::string s = path.ToString();
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_AsPathToString);

void BM_RibRecordDecode(benchmark::State& state) {
  mrt::RibPrefix rib;
  rib.prefix = Prefix(IpAddress::V4(10, 0, 0, 0), 8);
  for (int i = 0; i < int(state.range(0)); ++i) {
    mrt::RibEntry e;
    e.peer_index = uint16_t(i);
    e.originated_time = 1458000000;
    e.attrs.as_path =
        bgp::AsPath::Sequence({bgp::Asn(65000 + i), 3356, 15169});
    e.attrs.next_hop = IpAddress::V4(10, 0, 0, 1);
    rib.entries.push_back(std::move(e));
  }
  Bytes wire = mrt::EncodeRibPrefix(1458000000, rib, IpFamily::V4);
  for (auto _ : state) {
    BufReader r(wire);
    auto raw = mrt::DecodeRawRecord(r);
    auto msg = mrt::DecodeRecord(*raw);
    benchmark::DoNotOptimize(msg);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * state.range(0));
}
BENCHMARK(BM_RibRecordDecode)->Arg(4)->Arg(32)->Arg(256);

// --- End-to-end stream: the three-stage asynchronous pipeline --------------
//
// A multi-file merge workload: 8 overlapping-subsets of 4 updates files
// each, served one subset per DataBatch. Two latency knobs emulate the
// paper's deployment, where dump files stream over HTTP from the
// RouteViews / RIS archives and the broker answers windowed meta-data
// queries: range(0) = per-file open latency (µs), range(1) = per-batch
// broker round-trip latency (µs). These are exactly the stalls the
// asynchronous pipeline (paper §3.1/§3.3.2/§3.3.4) exists to hide:
//   BM_StreamSync               everything inline on the consumer thread
//   BM_StreamPrefetch           decode-ahead within a batch (PR 1 path)
//   BM_StreamCrossBatchExtract  + eager next-batch fetch + worker-side
//                               elem extraction
//   BM_StreamFullPipeline       + chunked decode (bounded buffers)
// At 0/0 latency the set measures pure CPU overhead of the handoffs.
// Every variant consumes records *and elems*, and reports records/sec
// alongside wall time.

constexpr int kBenchSubsets = 8;
constexpr int kBenchFilesPerSubset = 4;
constexpr int kBenchRecordsPerFile = 250;

std::string& ThroughputArchiveDir() {
  // PID-keyed so concurrent bench processes don't truncate each other's
  // input files mid-decode; removed at exit like the other benches'
  // temp trees.
  static std::string dir =
      (std::filesystem::temp_directory_path() /
       ("bgps-bench-throughput-" + std::to_string(::getpid()))).string();
  return dir;
}

const std::vector<broker::DumpFileMeta>& GetThroughputArchive() {
  static const std::vector<broker::DumpFileMeta>* files = [] {
    namespace fs = std::filesystem;
    auto* out = new std::vector<broker::DumpFileMeta>();
    fs::path dir = ThroughputArchiveDir();
    fs::create_directories(dir);
    std::atexit([] {
      std::error_code ec;
      std::filesystem::remove_all(ThroughputArchiveDir(), ec);
    });
    for (int s = 0; s < kBenchSubsets; ++s) {
      Timestamp base = 1458000000 + Timestamp(s) * 10000;
      for (int f = 0; f < kBenchFilesPerSubset; ++f) {
        broker::DumpFileMeta meta;
        meta.project = "bench";
        meta.collector = "c" + std::to_string(f);
        meta.type = broker::DumpType::Updates;
        meta.start = base + f;  // offset starts; all overlap within subset
        meta.duration = 900;
        meta.path = (dir / (std::to_string(s) + "_" + std::to_string(f) +
                            ".mrt")).string();
        // Always regenerate: a stale file from an older bench revision
        // (or a crashed half-written run) would silently skew the
        // sync-vs-prefetch comparison.
        mrt::MrtFileWriter w;
        if (!w.Open(meta.path).ok()) std::abort();
        for (int i = 0; i < kBenchRecordsPerFile; ++i) {
          Timestamp ts = meta.start + Timestamp(i) * 3;
          (void)w.Write(mrt::EncodeBgp4mpUpdate(ts, MakeUpdateMsg(4)));
        }
        (void)w.Close();
        out->push_back(std::move(meta));
      }
    }
    return out;
  }();
  return *files;
}

// Serves the archive `files_per_batch` files at a time (mirroring the
// broker's windowed responses), sleeping `batch_latency` per call to
// emulate the HTTP round-trip.
class BatchedDataInterface : public core::DataInterface {
 public:
  BatchedDataInterface(std::vector<broker::DumpFileMeta> files,
                       size_t files_per_batch,
                       std::chrono::microseconds batch_latency)
      : files_(std::move(files)),
        files_per_batch_(files_per_batch),
        batch_latency_(batch_latency) {}

  core::DataBatch NextBatch(const core::FilterSet&) override {
    if (batch_latency_.count() > 0) {
      std::this_thread::sleep_for(batch_latency_);
    }
    core::DataBatch batch;
    if (next_ >= files_.size()) {
      batch.end_of_stream = true;
      return batch;
    }
    size_t n = std::min(files_per_batch_, files_.size() - next_);
    batch.files.assign(files_.begin() + long(next_),
                       files_.begin() + long(next_ + n));
    next_ += n;
    return batch;
  }

 private:
  std::vector<broker::DumpFileMeta> files_;
  size_t files_per_batch_;
  std::chrono::microseconds batch_latency_;
  size_t next_ = 0;
};

void RunStreamBench(benchmark::State& state,
                    const core::BgpStream::Options& base_options) {
  const auto& files = GetThroughputArchive();
  auto open_latency = std::chrono::microseconds(state.range(0));
  auto batch_latency = std::chrono::microseconds(state.range(1));
  size_t records = 0, elems = 0;
  auto wall_start = std::chrono::steady_clock::now();
  for (auto _ : state) {
    BatchedDataInterface di(files, kBenchFilesPerSubset, batch_latency);
    core::BgpStream::Options opt = base_options;
    if (open_latency.count() > 0) {
      opt.file_open_hook = [open_latency](const broker::DumpFileMeta&) {
        std::this_thread::sleep_for(open_latency);
      };
    }
    core::BgpStream stream(std::move(opt));
    stream.SetInterval(0, 4102444800);
    stream.SetDataInterface(&di);
    if (!stream.Start().ok()) std::abort();
    while (auto rec = stream.NextRecord()) {
      records += 1;
      for (const auto& e : stream.Elems(*rec)) {
        elems += 1;
        benchmark::DoNotOptimize(e.time);
      }
      benchmark::DoNotOptimize(rec->timestamp);
    }
  }
  double wall_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall_start)
                            .count();
  state.SetItemsProcessed(int64_t(records));
  // items_per_second is CPU-time based; for a latency-hiding pipeline the
  // interesting rate is against wall clock.
  state.counters["records_per_sec_wall"] =
      wall_seconds > 0 ? double(records) / wall_seconds : 0.0;
  state.counters["records_per_run"] =
      double(records) / double(state.iterations());
  state.counters["elems_per_run"] =
      double(elems) / double(state.iterations());
}

void BM_StreamSync(benchmark::State& state) {
  RunStreamBench(state, {});
}

void BM_StreamPrefetch(benchmark::State& state) {
  core::BgpStream::Options opt;
  opt.prefetch_subsets = 3;
  opt.decode_threads = 4;
  RunStreamBench(state, opt);
}

void BM_StreamCrossBatchExtract(benchmark::State& state) {
  core::BgpStream::Options opt;
  opt.prefetch_subsets = 3;
  opt.decode_threads = 4;
  opt.prefetch_batches = true;
  opt.extract_elems_in_workers = true;
  RunStreamBench(state, opt);
}

void BM_StreamFullPipeline(benchmark::State& state) {
  core::BgpStream::Options opt;
  opt.prefetch_subsets = 3;
  opt.decode_threads = 4;
  opt.prefetch_batches = true;
  opt.extract_elems_in_workers = true;
  opt.max_records_in_flight = 512;  // per-subset cap: 128 per file × 4 files
  RunStreamBench(state, opt);
}

#define BGPS_STREAM_BENCH(fn)                                        \
  BENCHMARK(fn)->Args({0, 0})->Args({2000, 5000})->Unit(            \
      benchmark::kMillisecond)

BGPS_STREAM_BENCH(BM_StreamSync);
BGPS_STREAM_BENCH(BM_StreamPrefetch);
BGPS_STREAM_BENCH(BM_StreamCrossBatchExtract);
BGPS_STREAM_BENCH(BM_StreamFullPipeline);

// --- Simulator-generated corpus through the full pipeline ------------------
//
// The synthetic archives above repeat one hand-built record shape; the
// scenario engine's corpus has the realistic mix — RIB dumps + updates
// dumps across two collectors, MOAS/hijack bursts, session resets, a
// long-tail AS-path distribution — which exercises the decode hot path
// (AS-path cache, SmallVec spills, per-type dispatch) the way a real
// RouteViews/RIS window does. Built lazily once per process, same seed
// every run, so results are comparable across revisions.

std::string& GeneratedCorpusDir() {
  static std::string dir =
      (std::filesystem::temp_directory_path() /
       ("bgps-bench-corpus-" + std::to_string(::getpid()))).string();
  return dir;
}

const std::vector<broker::DumpFileMeta>& GetGeneratedCorpus() {
  static const std::vector<broker::DumpFileMeta>* files = [] {
    auto* out = new std::vector<broker::DumpFileMeta>();
    std::atexit([] {
      std::error_code ec;
      std::filesystem::remove_all(GeneratedCorpusDir(), ec);
    });
    sim::CorpusOptions options;
    options.scenario = "mixed";
    options.duration = 3600;
    options.flaps_per_hour = 1500;
    options.seed = 12;
    if (!sim::GenerateCorpus(options, GeneratedCorpusDir()).ok())
      std::abort();
    broker::ArchiveIndex index(GeneratedCorpusDir());
    if (!index.Rescan().ok()) std::abort();
    *out = index.files();
    return out;
  }();
  return *files;
}

void BM_StreamGeneratedCorpus(benchmark::State& state) {
  const auto& files = GetGeneratedCorpus();
  auto open_latency = std::chrono::microseconds(state.range(0));
  auto batch_latency = std::chrono::microseconds(state.range(1));
  size_t records = 0, elems = 0;
  auto wall_start = std::chrono::steady_clock::now();
  for (auto _ : state) {
    BatchedDataInterface di(files, 8, batch_latency);
    core::BgpStream::Options opt;
    opt.prefetch_subsets = 3;
    opt.decode_threads = 4;
    opt.prefetch_batches = true;
    opt.extract_elems_in_workers = true;
    opt.max_records_in_flight = 512;
    if (open_latency.count() > 0) {
      opt.file_open_hook = [open_latency](const broker::DumpFileMeta&) {
        std::this_thread::sleep_for(open_latency);
      };
    }
    core::BgpStream stream(std::move(opt));
    stream.SetInterval(0, 4102444800);
    stream.SetDataInterface(&di);
    if (!stream.Start().ok()) std::abort();
    while (auto rec = stream.NextRecord()) {
      records += 1;
      for (const auto& e : stream.Elems(*rec)) {
        elems += 1;
        benchmark::DoNotOptimize(e.time);
      }
      benchmark::DoNotOptimize(rec->timestamp);
    }
  }
  double wall_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall_start)
                            .count();
  state.SetItemsProcessed(int64_t(records));
  state.counters["records_per_sec_wall"] =
      wall_seconds > 0 ? double(records) / wall_seconds : 0.0;
  state.counters["records_per_run"] =
      double(records) / double(state.iterations());
  state.counters["elems_per_run"] =
      double(elems) / double(state.iterations());
}
BGPS_STREAM_BENCH(BM_StreamGeneratedCorpus);

// --- Multi-tenant: shared StreamPool vs private per-stream pipelines ------
//
// Four concurrent streams, each consuming a disjoint quarter of the
// archive (2 subsets / 8 files) on its own consumer thread, with the
// same open/batch latency emulation as the single-stream pair:
//   BM_MultiTenantPrivatePools  4 streams × (1 decode thread + a
//                               private 128-record chunked budget) —
//                               the pre-runtime-layer shape, 4 threads
//                               and 4 budgets total.
//   BM_MultiTenantSharedPool    one StreamPool: 4 shared Executor
//                               workers + one 512-record MemoryGovernor
//                               budget across all tenants.
// Counters: wall-clock records/s and the peak number of records
// buffered (governor watermark for the pool; summed per-stream
// watermarks for the private shape — an *upper bound* that the
// governor turns into a hard guarantee).

constexpr int kTenantCount = 4;

std::vector<broker::DumpFileMeta> TenantSlice(int tenant) {
  const auto& files = GetThroughputArchive();
  size_t per_tenant = files.size() / kTenantCount;
  return {files.begin() + long(size_t(tenant) * per_tenant),
          files.begin() + long(size_t(tenant + 1) * per_tenant)};
}

void RunMultiTenantBench(benchmark::State& state, bool shared_pool) {
  auto open_latency = std::chrono::microseconds(state.range(0));
  auto batch_latency = std::chrono::microseconds(state.range(1));
  size_t records = 0;
  size_t peak_buffered = 0;
  auto wall_start = std::chrono::steady_clock::now();
  for (auto _ : state) {
    std::unique_ptr<StreamPool> pool;
    if (shared_pool) {
      auto created =
          StreamPool::Create({.threads = 4, .record_budget = 512});
      if (!created.ok()) std::abort();
      pool = std::move(*created);
    }
    std::atomic<size_t> run_records{0};
    std::atomic<size_t> private_peak{0};
    std::vector<std::thread> consumers;
    for (int t = 0; t < kTenantCount; ++t) {
      consumers.emplace_back([&, t] {
        BatchedDataInterface di(TenantSlice(t), kBenchFilesPerSubset,
                                batch_latency);
        core::BgpStream::Options opt;
        opt.prefetch_subsets = 3;
        opt.extract_elems_in_workers = true;
        if (!shared_pool) {
          opt.decode_threads = 1;
          opt.max_records_in_flight = 512 / kTenantCount;
        }
        if (open_latency.count() > 0) {
          opt.file_open_hook = [open_latency](const broker::DumpFileMeta&) {
            std::this_thread::sleep_for(open_latency);
          };
        }
        std::unique_ptr<core::BgpStream> stream =
            pool ? pool->CreateStream(std::move(opt))
                 : std::make_unique<core::BgpStream>(std::move(opt));
        stream->SetInterval(0, 4102444800);
        stream->SetDataInterface(&di);
        if (!stream->Start().ok()) std::abort();
        size_t mine = 0;
        while (auto rec = stream->NextRecord()) {
          ++mine;
          for (const auto& e : stream->Elems(*rec)) {
            benchmark::DoNotOptimize(e.time);
          }
        }
        run_records += mine;
        private_peak += stream->max_records_buffered();
      });
    }
    for (auto& c : consumers) c.join();
    records += run_records.load();
    peak_buffered = std::max(
        peak_buffered,
        pool ? pool->max_records_in_use() : private_peak.load());
  }
  double wall_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall_start)
                            .count();
  state.SetItemsProcessed(int64_t(records));
  state.counters["records_per_sec_wall"] =
      wall_seconds > 0 ? double(records) / wall_seconds : 0.0;
  state.counters["peak_records_buffered"] = double(peak_buffered);
}

void BM_MultiTenantPrivatePools(benchmark::State& state) {
  RunMultiTenantBench(state, /*shared_pool=*/false);
}

void BM_MultiTenantSharedPool(benchmark::State& state) {
  RunMultiTenantBench(state, /*shared_pool=*/true);
}

BGPS_STREAM_BENCH(BM_MultiTenantPrivatePools);
BGPS_STREAM_BENCH(BM_MultiTenantSharedPool);

// --- Weighted tenant scheduling: live monitor vs batch backfills ----------
//
// The §3.3 framing: a live monitor must never wait behind batch
// backfills. Tenant 0 plays the live consumer, tenants 1–3 are
// backfills, all sharing one 2-worker pool (scarce workers make the
// dispatcher the bottleneck, which is exactly what weights arbitrate):
//   BM_MultiTenantEqualWeights   every tenant weight 1 (PR-3 dispatch)
//   BM_MultiTenantWeightedLive   tenant 0 weight 4
// Counters: the live tenant's own completion wall time (the number the
// weights exist to improve), the slowest tenant's, and an
// order-independent fingerprint of the pool's total output — identical
// between the variants, proving weights change *when* work runs, not
// *what* is emitted.

uint64_t RecordFingerprint(const core::Record& rec) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a over identity fields
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(uint64_t(rec.timestamp));
  for (char c : rec.collector) mix(uint8_t(c));
  mix(uint64_t(rec.dump_type));
  return h;
}

void RunWeightedTenantBench(benchmark::State& state, size_t live_weight) {
  auto open_latency = std::chrono::microseconds(state.range(0));
  auto batch_latency = std::chrono::microseconds(state.range(1));
  size_t records = 0;
  double live_ms_total = 0, slowest_ms_total = 0;
  uint64_t checksum = 0;
  auto wall_start = std::chrono::steady_clock::now();
  for (auto _ : state) {
    auto created = StreamPool::Create({.threads = 2, .record_budget = 512});
    if (!created.ok()) std::abort();
    std::unique_ptr<StreamPool> pool = std::move(*created);
    std::atomic<size_t> run_records{0};
    std::atomic<uint64_t> run_checksum{0};
    std::vector<double> tenant_ms(kTenantCount);
    std::vector<std::thread> consumers;
    for (int t = 0; t < kTenantCount; ++t) {
      consumers.emplace_back([&, t] {
        BatchedDataInterface di(TenantSlice(t), kBenchFilesPerSubset,
                                batch_latency);
        core::BgpStream::Options opt;
        opt.prefetch_subsets = 3;
        opt.extract_elems_in_workers = true;
        if (open_latency.count() > 0) {
          opt.file_open_hook = [open_latency](const broker::DumpFileMeta&) {
            std::this_thread::sleep_for(open_latency);
          };
        }
        StreamPool::TenantOptions topt;
        topt.weight = t == 0 ? live_weight : 1;
        topt.name = t == 0 ? "live" : "backfill-" + std::to_string(t);
        std::unique_ptr<core::BgpStream> stream =
            pool->CreateStream(std::move(opt), std::move(topt));
        stream->SetInterval(0, 4102444800);
        stream->SetDataInterface(&di);
        if (!stream->Start().ok()) std::abort();
        auto t0 = std::chrono::steady_clock::now();
        size_t mine = 0;
        uint64_t fp = 0;  // XOR: order-independent across tenants
        while (auto rec = stream->NextRecord()) {
          ++mine;
          fp ^= RecordFingerprint(*rec);
          for (const auto& e : stream->Elems(*rec)) {
            benchmark::DoNotOptimize(e.time);
          }
        }
        tenant_ms[size_t(t)] = std::chrono::duration<double, std::milli>(
                                   std::chrono::steady_clock::now() - t0)
                                   .count();
        run_records += mine;
        run_checksum ^= fp;
      });
    }
    for (auto& c : consumers) c.join();
    records += run_records.load();
    checksum = run_checksum.load();  // same every iteration by construction
    live_ms_total += tenant_ms[0];
    slowest_ms_total += *std::max_element(tenant_ms.begin(), tenant_ms.end());
  }
  double wall_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall_start)
                            .count();
  double iters = double(state.iterations());
  state.SetItemsProcessed(int64_t(records));
  state.counters["records_per_sec_wall"] =
      wall_seconds > 0 ? double(records) / wall_seconds : 0.0;
  state.counters["live_tenant_wall_ms"] = live_ms_total / iters;
  state.counters["slowest_tenant_wall_ms"] = slowest_ms_total / iters;
  // Exactly representable in a double (48 bits); equal between the
  // equal-weight and weighted variants ⇔ identical total pool output.
  state.counters["output_fingerprint"] =
      double(checksum & ((uint64_t(1) << 48) - 1));
}

void BM_MultiTenantEqualWeights(benchmark::State& state) {
  RunWeightedTenantBench(state, /*live_weight=*/1);
}

void BM_MultiTenantWeightedLive(benchmark::State& state) {
  RunWeightedTenantBench(state, /*live_weight=*/4);
}

BGPS_STREAM_BENCH(BM_MultiTenantEqualWeights);
BGPS_STREAM_BENCH(BM_MultiTenantWeightedLive);

// --- Deadline-class dispatch: per-record latency of live tenants ----------
//
// Seven same-weight (weight-8) "live" monitors + one weight-1 backfill
// share a scarce 2-worker pool with a tight record budget (frequent
// urgent refills — the scheduling interaction deadlines exist to
// arbitrate). Weighted round-robin alone serves a blocked live
// consumer's refill only when the cursor reaches its queue, i.e. after
// up to a full rotation of other tenants' multi-task visits; with the
// tenants in one deadline class, each class claim takes the
// earliest-enqueued head (urgent stamps first), so a live consumer's
// wait tracks enqueue order:
//   BM_MultiTenantWeightedOnlyLive  weight-8 live tenants, no deadlines
//   BM_MultiTenantDeadlineLive      same weights, deadline class on
// Counters: p95/p50 of the live tenants' per-NextRecord wall latency
// (the number deadline dispatch improves), p50/p99 of the wait a
// blocked live consumer saw before its file open dispatched (the
// number the open/burst task split improves), plus the same
// order-independent output fingerprint — identical between variants.

void RunDeadlineTenantBench(benchmark::State& state, bool deadline) {
  // 7 live tenants + 1 backfill, each over one 4-file subset (an
  // eighth of the archive): a long dispatch rotation is exactly where
  // cursor order and enqueue order diverge.
  constexpr int kDeadlineTenants = 8;
  constexpr int kLiveTenants = 7;
  auto open_latency = std::chrono::microseconds(state.range(0));
  auto batch_latency = std::chrono::microseconds(state.range(1));
  size_t records = 0;
  uint64_t checksum = 0;
  std::mutex lat_mu;
  std::vector<double> live_pop_ms;   // all live tenants, all iterations
  std::vector<double> open_wait_ms;  // live-blocked wait until a file open ran
  auto wall_start = std::chrono::steady_clock::now();
  for (auto _ : state) {
    // A deliberately tight budget: a handful of buffered records per
    // file keeps every live consumer on the urgent-refill path, so pop
    // latency is dominated by dispatch order — the variable under test.
    auto created = StreamPool::Create({.threads = 2, .record_budget = 64});
    if (!created.ok()) std::abort();
    std::unique_ptr<StreamPool> pool = std::move(*created);
    std::atomic<size_t> run_records{0};
    std::atomic<uint64_t> run_checksum{0};
    std::vector<std::thread> consumers;
    for (int t = 0; t < kDeadlineTenants; ++t) {
      consumers.emplace_back([&, t] {
        bool live = t < kLiveTenants;
        const auto& files = GetThroughputArchive();
        size_t per_tenant = files.size() / kDeadlineTenants;
        std::vector<broker::DumpFileMeta> slice(
            files.begin() + long(size_t(t) * per_tenant),
            files.begin() + long(size_t(t + 1) * per_tenant));
        BatchedDataInterface di(std::move(slice), kBenchFilesPerSubset,
                                batch_latency);
        core::BgpStream::Options opt;
        opt.prefetch_subsets = 2;
        opt.extract_elems_in_workers = true;
        // While this consumer is blocked in NextRecord, holds the pop's
        // start tick (steady-clock ticks since epoch); 0 otherwise. The
        // open hook reads it to measure how long a blocked live consumer
        // waited before its file open finally dispatched — the
        // head-of-line number the open/burst task split shrinks.
        auto pop_start = std::make_shared<std::atomic<int64_t>>(0);
        opt.file_open_hook = [&lat_mu, &open_wait_ms, live, pop_start,
                              open_latency](const broker::DumpFileMeta&) {
          if (live) {
            int64_t t0 = pop_start->load(std::memory_order_acquire);
            if (t0 != 0) {
              int64_t now =
                  std::chrono::steady_clock::now().time_since_epoch().count();
              double ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::duration(now - t0))
                              .count();
              std::lock_guard<std::mutex> lock(lat_mu);
              open_wait_ms.push_back(ms);
            }
          }
          if (open_latency.count() > 0) {
            std::this_thread::sleep_for(open_latency);
          }
        };
        StreamPool::TenantOptions topt;
        topt.weight = live ? 8 : 1;
        topt.deadline = live && deadline;
        topt.name = live ? "live-" + std::to_string(t)
                         : "backfill-" + std::to_string(t);
        std::unique_ptr<core::BgpStream> stream =
            pool->CreateStream(std::move(opt), std::move(topt));
        stream->SetInterval(0, 4102444800);
        stream->SetDataInterface(&di);
        if (!stream->Start().ok()) std::abort();
        size_t mine = 0;
        uint64_t fp = 0;  // XOR: order-independent across tenants
        std::vector<double> my_pops;
        while (true) {
          auto t0 = std::chrono::steady_clock::now();
          pop_start->store(t0.time_since_epoch().count(),
                           std::memory_order_release);
          auto rec = stream->NextRecord();
          pop_start->store(0, std::memory_order_release);
          if (!rec) break;
          if (live) {
            my_pops.push_back(std::chrono::duration<double, std::milli>(
                                  std::chrono::steady_clock::now() - t0)
                                  .count());
          }
          ++mine;
          fp ^= RecordFingerprint(*rec);
          for (const auto& e : stream->Elems(*rec)) {
            benchmark::DoNotOptimize(e.time);
          }
        }
        run_records += mine;
        run_checksum ^= fp;
        if (live) {
          std::lock_guard<std::mutex> lock(lat_mu);
          live_pop_ms.insert(live_pop_ms.end(), my_pops.begin(),
                             my_pops.end());
        }
      });
    }
    for (auto& c : consumers) c.join();
    records += run_records.load();
    checksum = run_checksum.load();  // same every iteration by construction
  }
  double wall_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall_start)
                            .count();
  state.SetItemsProcessed(int64_t(records));
  state.counters["records_per_sec_wall"] =
      wall_seconds > 0 ? double(records) / wall_seconds : 0.0;
  auto pct = [](std::vector<double>& v, double p) {
    if (v.empty()) return 0.0;
    std::sort(v.begin(), v.end());
    size_t idx = std::min(v.size() - 1, size_t(p * double(v.size())));
    return v[idx];
  };
  state.counters["live_pop_p50_ms"] = pct(live_pop_ms, 0.50);
  state.counters["live_pop_p95_ms"] = pct(live_pop_ms, 0.95);
  state.counters["live_pop_p99_ms"] = pct(live_pop_ms, 0.99);
  // Opens that ran while a live consumer was blocked on them: the wait
  // from pop start to open dispatch. With deadline classes + the
  // open-only task split, a queued open no longer sits behind a rival
  // tenant's whole decode burst, so the tail shrinks.
  state.counters["open_wait_p50_ms"] = pct(open_wait_ms, 0.50);
  state.counters["open_wait_p99_ms"] = pct(open_wait_ms, 0.99);
  state.counters["output_fingerprint"] =
      double(checksum & ((uint64_t(1) << 48) - 1));
}

void BM_MultiTenantWeightedOnlyLive(benchmark::State& state) {
  RunDeadlineTenantBench(state, /*deadline=*/false);
}

void BM_MultiTenantDeadlineLive(benchmark::State& state) {
  RunDeadlineTenantBench(state, /*deadline=*/true);
}

BGPS_STREAM_BENCH(BM_MultiTenantWeightedOnlyLive);
BGPS_STREAM_BENCH(BM_MultiTenantDeadlineLive);

#undef BGPS_STREAM_BENCH

// --- Record-plane fan-out: decode once, serve N subscribers ----------------
//
// One RecordPublisher drains the synthetic archive into an in-memory
// cluster; N concurrent RecordSubscribers each re-materialize the full
// stream (records + elems). The `decodes_per_run` counter pins the
// tier's whole point: it stays equal to the archive's file count at
// N=1, 4, and 16 — subscribers cost socket/queue work, never MRT
// decode. items/s counts records *delivered* (published × N).
void BM_FanOut1PublisherNSubscribers(benchmark::State& state) {
  const size_t n_subs = size_t(state.range(0));
  const auto& files = GetThroughputArchive();
  size_t file_opens = 0, delivered = 0;
  for (auto _ : state) {
    mq::Cluster cluster;
    BatchedDataInterface di(files, files.size(),
                            std::chrono::microseconds(0));
    core::BgpStream::Options opt;
    opt.file_open_hook = [&file_opens](const broker::DumpFileMeta&) {
      ++file_opens;
    };
    core::BgpStream stream(std::move(opt));
    stream.SetInterval(0, 4102444800);
    stream.SetDataInterface(&di);
    if (!stream.Start().ok()) std::abort();

    pool::RecordPublisher::Options popt;
    popt.cluster = &cluster;
    pool::RecordPublisher publisher(popt);
    auto stats = publisher.Run(stream);
    if (!stats.ok()) std::abort();

    std::atomic<size_t> drained{0};
    std::vector<std::thread> subs;
    subs.reserve(n_subs);
    for (size_t s = 0; s < n_subs; ++s) {
      subs.emplace_back([&] {
        pool::RecordSubscriber::Options sopt;
        sopt.cluster = &cluster;
        sopt.filters.interval = {0, 4102444800};
        pool::RecordSubscriber sub(sopt);
        if (!sub.Start().ok()) std::abort();
        size_t local = 0;
        while (auto rec = sub.NextRecord()) {
          for (const auto& e : sub.Elems(*rec)) {
            benchmark::DoNotOptimize(e.time);
          }
          ++local;
        }
        drained += local;
      });
    }
    for (auto& t : subs) t.join();
    delivered += drained.load();
  }
  state.SetItemsProcessed(int64_t(delivered));
  state.counters["decodes_per_run"] =
      double(file_opens) / double(state.iterations());
  state.counters["records_delivered_per_run"] =
      double(delivered) / double(state.iterations());
}

BENCHMARK(BM_FanOut1PublisherNSubscribers)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
