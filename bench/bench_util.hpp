// Shared helpers for the figure benches.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>

#include "broker/broker.hpp"
#include "core/stream.hpp"
#include "sim/presets.hpp"

namespace bgps::bench {

inline double SecondsSince(
    std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Historical-mode broker over an archive (everything already published).
inline broker::Broker::Options HistoricalBrokerOptions() {
  broker::Broker::Options opt;
  opt.clock = [] { return Timestamp(4102444800); };  // year 2100
  return opt;
}

// The shared Figure-5 longitudinal archive (built once, reused by the
// four fig5 benches).
inline sim::LongitudinalArchive GetFig5Archive() {
  sim::LongitudinalOptions options;
  options.months = 15 * 12;
  options.collectors = 4;
  options.vps_per_collector = 6;
  options.reuse_existing = true;
  return sim::BuildLongitudinalArchive("/tmp/bgpstream-bench-fig5", options);
}

inline int YearOf(Timestamp ts) { return CivilFromTimestamp(ts).year; }

}  // namespace bgps::bench
