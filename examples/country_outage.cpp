// Global monitoring pipeline (paper §6.2, Fig. 7 + Fig. 10): per-collector
// BGPCorsaro instances run the routing-tables plugin, publish diffs to a
// Kafka-like cluster, a sync server aligns the collectors, and the
// per-country / per-AS consumers detect the recurring country-wide
// shutdowns.
//
// Run:  ./examples/country_outage [archive-dir]
#include <cstdio>

#include "corsaro/corsaro.hpp"
#include "mq/consumers.hpp"
#include "sim/presets.hpp"

using namespace bgps;

int main(int argc, char** argv) {
  std::string root = argc > 1 ? argv[1] : "/tmp/bgpstream-outage";

  sim::CountryOutageScenario scenario =
      sim::BuildCountryOutageScenario(root, 10);
  std::printf("country %s, ISPs:", scenario.country.c_str());
  for (auto asn : scenario.isps) std::printf(" AS%u", asn);
  std::printf("; %zu scheduled shutdowns\n\n", scenario.outage_windows.size());

  broker::Broker::Options bopt;
  bopt.clock = [] { return Timestamp(4102444800); };
  broker::Broker broker(root, bopt);

  mq::Cluster cluster;
  const Timestamp bin = 900;  // 15-minute bins

  // One BGPCorsaro+RT instance per collector (Fig. 7: one per collector
  // to spread the computation), publishing into the cluster.
  std::vector<std::string> collector_names;
  std::vector<std::unique_ptr<core::BrokerDataInterface>> interfaces;
  std::vector<std::unique_ptr<core::BgpStream>> streams;
  std::vector<std::unique_ptr<corsaro::BgpCorsaro>> engines;
  for (const auto& c : scenario.driver->collectors()) {
    collector_names.push_back(c.config().name);
  }
  std::vector<corsaro::RoutingTables*> rts;
  for (const auto& name : collector_names) {
    auto di = std::make_unique<core::BrokerDataInterface>(&broker);
    auto stream = std::make_unique<core::BgpStream>();
    (void)stream->AddFilter("collector", name);
    stream->SetInterval(scenario.start, scenario.end);
    stream->SetDataInterface(di.get());
    if (!stream->Start().ok()) return 1;
    auto engine = std::make_unique<corsaro::BgpCorsaro>(stream.get(), bin);
    corsaro::RoutingTables::Options ropt;
    ropt.snapshot_every_bins = 96;
    auto rt = std::make_unique<corsaro::RoutingTables>(ropt);
    mq::PublishRtToCluster(*rt, cluster, name);
    rts.push_back(rt.get());
    engine->AddPlugin(std::move(rt));
    interfaces.push_back(std::move(di));
    streams.push_back(std::move(stream));
    engines.push_back(std::move(engine));
  }

  // IODA-style sync: completeness over latency.
  mq::CompletenessSyncServer sync(
      &cluster, "ready",
      std::set<std::string>(collector_names.begin(), collector_names.end()));

  // Geolocation: origin AS -> country from the simulated registry.
  const sim::Topology& topo = scenario.driver->topology();
  mq::GeoFn geo = [&topo](bgp::Asn asn) -> std::string {
    return topo.has_node(asn) ? topo.node(asn).country : "??";
  };
  mq::GlobalViewConsumer::Options copt;
  copt.median_window = 16;
  copt.drop_fraction = 0.6;
  mq::GlobalViewConsumer consumer(&cluster, collector_names, "ready", geo,
                                  copt);

  // Drive everything incrementally (in production these are separate
  // processes; in-process the loop interleaves them).
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto& engine : engines) {
      if (engine->Step(2000)) progress = true;
    }
    sync.Poll();
    consumer.Poll();
  }
  sync.Poll();
  consumer.Poll();

  // Print the per-country series for the affected country.
  std::printf("%-22s %18s\n", "bin (UTC)",
              ("visible " + scenario.country + " prefixes").c_str());
  size_t printed = 0;
  for (const auto& row : consumer.country_rows()) {
    if (row.key != scenario.country) continue;
    if (row.bin_start % (4 * 3600) == 0) {  // decimate for readability
      std::printf("%-22s %18zu\n", FormatTimestamp(row.bin_start).c_str(),
                  row.visible_prefixes);
      ++printed;
    }
  }

  size_t alarms = 0;
  for (const auto& a : consumer.alarms()) {
    if (a.key == scenario.country) {
      if (alarms < 5) {
        std::printf("ALARM %s: %s dropped to %zu (baseline %.0f)\n",
                    FormatTimestamp(a.bin_start).c_str(), a.key.c_str(),
                    a.value, a.baseline);
      }
      ++alarms;
    }
  }
  std::printf("\n%zu country-level outage alarms (expected: one per "
              "shutdown window, %zu windows)\n",
              alarms, scenario.outage_windows.size());
  return alarms > 0 ? 0 : 1;
}
