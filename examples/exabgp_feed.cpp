// ExaBGP JSON ingestion (paper §7 future work: "support for more data
// formats (e.g., JSON exports from ExaBGP)").
//
// Synthesizes an ExaBGP-style JSON feed (the per-line export a router
// running ExaBGP would produce), transcodes it to MRT, and consumes it
// through the standard BGPStream pipeline — including an AS-path pattern
// filter, showing that a non-MRT source needs no special handling
// downstream of the transcoder.
//
// Run:  ./examples/exabgp_feed [work-dir]
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/stream.hpp"
#include "exabgp/exabgp.hpp"
#include "reader/ascii.hpp"

using namespace bgps;

int main(int argc, char** argv) {
  std::string dir = argc > 1 ? argv[1] : "/tmp/bgpstream-exabgp";
  std::filesystem::create_directories(dir);
  std::string json_path = dir + "/feed.json";
  std::string mrt_path = dir + "/feed.mrt";

  // --- 1. Synthesize an ExaBGP session feed. ---
  const Timestamp t0 = TimestampFromYmdHms(2016, 6, 1, 0, 0, 0);
  {
    std::ofstream out(json_path);
    exabgp::ExaBgpMessage up;
    up.kind = exabgp::ExaBgpMessage::Kind::State;
    up.time = t0;
    up.peer_address = IpAddress::V4(10, 0, 0, 9);
    up.local_address = IpAddress::V4(192, 0, 2, 1);
    up.peer_asn = 65009;
    up.local_asn = 64512;
    up.state = bgp::FsmState::Established;
    out << exabgp::EncodeLine(up) << "\n";

    // A handful of announcements with different transit paths.
    struct Row {
      const char* prefix;
      std::vector<bgp::Asn> path;
    };
    for (const Row& row : std::initializer_list<Row>{
             {"198.18.0.0/15", {65009, 3356, 15169}},
             {"198.51.100.0/24", {65009, 174, 2914, 64501}},
             {"203.0.113.0/24", {65009, 3356, 64502}},
             {"192.0.2.0/24", {65009, 1299, 64503}}}) {
      exabgp::ExaBgpMessage msg;
      msg.kind = exabgp::ExaBgpMessage::Kind::Update;
      msg.time = t0 + 10;
      msg.peer_address = IpAddress::V4(10, 0, 0, 9);
      msg.local_address = IpAddress::V4(192, 0, 2, 1);
      msg.peer_asn = 65009;
      msg.local_asn = 64512;
      msg.update.attrs.as_path = bgp::AsPath::Sequence(row.path);
      msg.update.attrs.next_hop = msg.peer_address;
      msg.update.attrs.communities = {bgp::Community(3356, 100)};
      msg.update.announced = {*Prefix::Parse(row.prefix)};
      out << exabgp::EncodeLine(msg) << "\n";
    }
    // One withdrawal and one malformed line (the transcoder skips it).
    exabgp::ExaBgpMessage wd;
    wd.kind = exabgp::ExaBgpMessage::Kind::Update;
    wd.time = t0 + 20;
    wd.peer_address = IpAddress::V4(10, 0, 0, 9);
    wd.peer_asn = 65009;
    wd.local_asn = 64512;
    wd.update.withdrawn = {*Prefix::Parse("192.0.2.0/24")};
    out << exabgp::EncodeLine(wd) << "\n";
    out << "{\"broken\": \n";
  }

  // --- 2. Transcode JSON lines -> MRT. ---
  auto stats = exabgp::TranscodeExaBgpToMrt(json_path, mrt_path);
  if (!stats.ok()) {
    std::fprintf(stderr, "transcode failed: %s\n",
                 stats.status().ToString().c_str());
    return 1;
  }
  std::printf("transcoded %zu ExaBGP messages (%zu malformed skipped)\n",
              stats->converted, stats->skipped);

  // --- 3. Consume through the standard pipeline with an aspath filter. ---
  core::SingleFileInterface sfi(mrt_path, core::DumpType::Updates, "exabgp",
                                "router1");
  core::BgpStream stream;
  (void)stream.AddFilter("aspath", "% 3356 %");  // only paths through 3356
  stream.SetInterval(t0, t0 + 3600);
  stream.SetDataInterface(&sfi);
  if (!stream.Start().ok()) return 1;

  size_t printed = 0;
  while (auto rec = stream.NextRecord()) {
    for (const auto& elem : stream.Elems(*rec)) {
      std::printf("%s\n",
                  reader::FormatElem(*rec, elem, reader::OutputFormat::BgpReader)
                      .c_str());
      ++printed;
    }
  }
  std::printf("--\n%zu elems matched 'aspath %% 3356 %%' out of %zu "
              "transcoded messages\n", printed, stats->converted);
  return printed == 2 ? 0 : 1;  // exactly the two paths through AS3356
}
