// Hijack monitoring with BGPCorsaro's pfxmonitor plugin (paper §6.1,
// Fig. 6): watch the IP space of one origin AS and plot the number of
// unique prefixes and unique origin ASNs per 5-minute bin. Origin-count
// spikes reveal same-prefix hijacks (the GARR / TehnoGrup events).
//
// Run:  ./examples/hijack_monitor [archive-dir]
#include <cstdio>

#include "corsaro/corsaro.hpp"
#include "corsaro/pfxmonitor.hpp"
#include "sim/presets.hpp"

using namespace bgps;

int main(int argc, char** argv) {
  std::string root = argc > 1 ? argv[1] : "/tmp/bgpstream-hijack";

  // Two simulated days with two ~1h hijack windows.
  sim::GarrScenario scenario = sim::BuildGarrScenario(root, 2);
  std::printf("victim AS%u announces %zu prefixes; AS%u hijacks %zu of them\n",
              scenario.victim, scenario.victim_prefixes.size(),
              scenario.attacker, scenario.hijacked.size());
  for (auto [t0, t1] : scenario.hijack_windows) {
    std::printf("  hijack window: %s .. %s\n", FormatTimestamp(t0).c_str(),
                FormatTimestamp(t1).c_str());
  }

  broker::Broker::Options bopt;
  bopt.clock = [] { return Timestamp(4102444800); };
  broker::Broker broker(root, bopt);
  core::BrokerDataInterface di(&broker);

  core::BgpStream stream;
  stream.SetInterval(scenario.start, scenario.end);
  stream.SetDataInterface(&di);
  if (!stream.Start().ok()) return 1;

  corsaro::BgpCorsaro engine(&stream, 300);  // 5-minute bins, like Fig. 6
  auto monitor = std::make_unique<corsaro::PfxMonitor>(
      scenario.victim_prefixes);
  corsaro::PfxMonitor* pm = monitor.get();
  engine.AddPlugin(std::move(monitor));
  engine.Run();

  std::printf("\n%-22s %10s %10s\n", "bin (UTC)", "#prefixes", "#origins");
  size_t spikes = 0;
  for (const auto& row : pm->rows()) {
    bool spike = row.unique_origins > 1;
    if (spike) ++spikes;
    // Print a decimated series plus every spike bin.
    if (spike || row.bin_start % 3600 == 0) {
      std::printf("%-22s %10zu %10zu%s\n",
                  FormatTimestamp(row.bin_start).c_str(), row.unique_prefixes,
                  row.unique_origins, spike ? "   << HIJACK" : "");
    }
  }
  std::printf("\n%zu bins with multiple origins (hijack windows cover ~12 "
              "five-minute bins each)\n", spikes);
  return 0;
}
