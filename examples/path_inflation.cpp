// AS-path inflation (paper §4.2, Listing 1) in C++.
//
// Reads the RIB dumps of one snapshot from all collectors, records the
// minimum BGP path length per <VP, origin> pair, builds the undirected
// AS graph from the observed adjacencies, and compares against BFS
// shortest paths — how much do routing policies inflate paths?
//
// Run:  ./examples/path_inflation [archive-dir]
#include <cstdio>
#include <map>

#include "analysis/graph.hpp"
#include "core/stream.hpp"
#include "sim/presets.hpp"

using namespace bgps;

int main(int argc, char** argv) {
  std::string root = argc > 1 ? argv[1] : "/tmp/bgpstream-inflation";

  // One monthly snapshot from a grown longitudinal archive.
  sim::LongitudinalOptions lopt;
  lopt.months = 3;
  lopt.collectors = 4;
  lopt.vps_per_collector = 6;
  auto archive = sim::BuildLongitudinalArchive(root, lopt);
  Timestamp snapshot = archive.snapshot_times.back();

  broker::Broker::Options bopt;
  bopt.clock = [] { return Timestamp(4102444800); };
  broker::Broker broker(root, bopt);
  core::BrokerDataInterface di(&broker);

  core::BgpStream stream;
  (void)stream.AddFilter("type", "ribs");
  stream.SetInterval(snapshot - 600, snapshot + 1200);
  stream.SetDataInterface(&di);
  if (!stream.Start().ok()) return 1;

  // bgp_lens[monitor][origin] = min observed AS-path length (in hops).
  std::map<uint32_t, std::map<uint32_t, size_t>> bgp_lens;
  analysis::AsGraph graph;

  while (auto rec = stream.NextRecord()) {
    for (const auto& elem : stream.Elems(*rec)) {
      if (elem.type != core::ElemType::RibEntry) continue;
      // Deduplicate AS-path prepending, like Listing 1's groupby.
      std::vector<uint32_t> hops;
      for (uint32_t asn : elem.as_path.hops()) {
        if (hops.empty() || hops.back() != asn) hops.push_back(asn);
      }
      // Sanitization: ignore local routes and paths not starting at the VP.
      if (hops.size() <= 1 || hops.front() != elem.peer_asn) continue;
      uint32_t monitor = hops.front();
      uint32_t origin = hops.back();
      for (size_t i = 0; i + 1 < hops.size(); ++i)
        graph.AddEdge(hops[i], hops[i + 1]);
      auto& best = bgp_lens[monitor][origin];
      if (best == 0 || hops.size() < best) best = hops.size();
    }
  }

  // Compare against BFS shortest paths.
  size_t pairs = 0, inflated = 0, max_extra = 0;
  std::map<size_t, size_t> extra_histogram;
  for (const auto& [monitor, origins] : bgp_lens) {
    auto dist = graph.Distances(monitor);
    for (const auto& [origin, bgp_len] : origins) {
      auto it = dist.find(origin);
      if (it == dist.end()) continue;
      size_t shortest = it->second + 1;  // node count, like nx.shortest_path
      ++pairs;
      if (bgp_len > shortest) {
        ++inflated;
        size_t extra = bgp_len - shortest;
        ++extra_histogram[extra];
        max_extra = std::max(max_extra, extra);
      }
    }
  }

  std::printf("AS graph: %zu nodes, %zu edges\n", graph.node_count(),
              graph.edge_count());
  std::printf("<VP, origin> pairs compared: %zu\n", pairs);
  std::printf("inflated pairs: %zu (%.1f%%)   max extra hops: %zu\n", inflated,
              pairs ? 100.0 * double(inflated) / double(pairs) : 0.0,
              max_extra);
  std::printf("extra-hop histogram:\n");
  for (const auto& [extra, count] : extra_histogram) {
    std::printf("  +%zu hops: %zu pairs\n", extra, count);
  }
  return 0;
}
