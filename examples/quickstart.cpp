// Quickstart: configure a stream, read records, decompose into elems.
//
// Mirrors the paper's §3.3.1 usage pattern: a configuration phase (meta
// filters + time interval) followed by an iteration phase. Since this
// repository ships its own Internet, the example first generates a small
// archive (the stand-in for RouteViews/RIPE RIS), then consumes it
// through the Broker exactly like a real deployment would.
//
// Run:  ./examples/quickstart [archive-dir]
#include <cstdio>
#include <filesystem>
#include <iostream>

#include "core/stream.hpp"
#include "reader/ascii.hpp"
#include "sim/scenario.hpp"

using namespace bgps;

int main(int argc, char** argv) {
  std::string root = argc > 1 ? argv[1] : "/tmp/bgpstream-quickstart";

  // --- 1. Generate 30 minutes of BGP data (the simulated Internet). ---
  sim::StandardSimOptions options;
  options.topo.num_tier1 = 4;
  options.topo.num_transit = 10;
  options.topo.num_stub = 30;
  options.rv_collectors = 1;
  options.ris_collectors = 1;
  options.vps_per_collector = 4;
  options.publish_delay = 0;
  std::filesystem::remove_all(root);
  auto driver = sim::MakeStandardSim(options, root);

  Timestamp start = TimestampFromYmdHms(2016, 5, 12, 0, 0, 0);
  Timestamp end = start + 1800;
  driver->AddFlapNoise(start, end, 120.0);
  if (Status st = driver->Run(start, end); !st.ok()) {
    std::cerr << "simulation failed: " << st.ToString() << "\n";
    return 1;
  }

  // --- 2. Configure and open the stream. ---
  broker::Broker::Options bopt;
  bopt.clock = [] { return Timestamp(4102444800); };  // historical mode
  broker::Broker broker(root, bopt);
  core::BrokerDataInterface data_interface(&broker);

  core::BgpStream stream;
  // Request updates from every collector of both projects; restricting is
  // one AddFilter call away, e.g. stream.AddFilter("collector", "rrc00").
  (void)stream.AddFilter("type", "updates");
  stream.SetInterval(start, end);
  stream.SetDataInterface(&data_interface);
  if (Status st = stream.Start(); !st.ok()) {
    std::cerr << "stream failed: " << st.ToString() << "\n";
    return 1;
  }

  // --- 3. Iterate: records -> elems -> bgpdump-style lines. ---
  size_t printed = 0;
  while (auto record = stream.NextRecord()) {
    for (const auto& elem : stream.Elems(*record)) {
      std::cout << reader::FormatElem(*record, elem,
                                      reader::OutputFormat::BgpReader)
                << "\n";
      if (++printed >= 25) break;
    }
    if (printed >= 25) break;
  }

  std::printf("--\nquickstart: printed %zu elems from %zu records (archive %s)\n",
              printed, stream.records_emitted(), root.c_str());
  return 0;
}
