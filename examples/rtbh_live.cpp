// Live RTBH detection with two concurrent streams (paper §4.3).
//
// Stream 1 runs in live mode with a community-based filter (*:666) and
// yields only announcements carrying a blackhole community. Whenever it
// reports the *start* of an RTBH request, a prefix filter for the
// black-holed prefix is added to stream 2, which watches for the explicit
// or implicit withdrawal that ends the event — the same two-stream
// separation of concerns the paper's Python script uses. On detection the
// example triggers traceroute measurements (the simulator's data plane).
//
// Run:  ./examples/rtbh_live [archive-dir]
#include <cstdio>

#include "core/stream.hpp"
#include "sim/presets.hpp"

using namespace bgps;

int main(int argc, char** argv) {
  std::string root = argc > 1 ? argv[1] : "/tmp/bgpstream-rtbh";

  sim::RtbhScenario scenario = sim::BuildRtbhScenario(root, 6, 30);
  std::printf("simulated %zu RTBH events\n\n", scenario.events.size());

  // Live mode: a virtual clock advances on every poll.
  Timestamp now = scenario.start + 300;
  broker::Broker::Options bopt;
  bopt.clock = [&now] { return now; };
  broker::Broker broker(root, bopt);
  core::BrokerDataInterface di1(&broker), di2(&broker);

  core::BgpStream::Options sopt;
  sopt.poll_wait = [&now] { now += 300; };
  sopt.max_consecutive_polls = 2000;  // archive is finite

  core::BgpStream detect(sopt);
  (void)detect.AddFilter("type", "updates");
  (void)detect.AddFilter("community", "*:666");
  (void)detect.AddFilter("elemtype", "announcements");
  detect.SetLive(scenario.start);
  detect.SetDataInterface(&di1);
  if (!detect.Start().ok()) return 1;

  core::BgpStream watch(sopt);
  (void)watch.AddFilter("type", "updates");
  (void)watch.AddFilter("elemtype", "withdrawals");
  watch.SetLive(scenario.start);
  watch.SetDataInterface(&di2);
  if (!watch.Start().ok()) return 1;

  std::set<Prefix> active;     // prefixes currently black-holed
  std::set<Prefix> completed;  // events already fully observed (different
                               // VPs re-report the same event; count once)
  size_t detected_starts = 0, detected_ends = 0, timely_probes = 0;

  auto drain_watch_until = [&](Timestamp t) {
    // Stream 2 trails stream 1; consume its records up to time t.
    while (auto rec = watch.NextRecord()) {
      for (const auto& elem : watch.Elems(*rec)) {
        if (active.count(elem.prefix)) {
          active.erase(elem.prefix);
          completed.insert(elem.prefix);
          ++detected_ends;
          std::printf("  [end   @ %s] %s withdrawn\n",
                      FormatTimestamp(elem.time).c_str(),
                      elem.prefix.ToString().c_str());
        }
      }
      if (rec->timestamp >= t) break;
    }
  };

  while (auto rec = detect.NextRecord()) {
    for (const auto& elem : detect.Elems(*rec)) {
      if (active.count(elem.prefix) || completed.count(elem.prefix)) continue;
      active.insert(elem.prefix);
      ++detected_starts;
      std::printf("[start @ %s] %s black-holed (communities: %s)\n",
                  FormatTimestamp(elem.time).c_str(),
                  elem.prefix.ToString().c_str(),
                  bgp::CommunitiesToString(elem.communities).c_str());
      // Add the prefix filter to the withdrawal stream (paper: "we add a
      // filter for the black-holed prefix to the second stream").
      watch.filters().prefixes.push_back(
          {elem.prefix, core::PrefixMatchMode::Exact});
      // Timely traceroutes: the scenario recorded whether probes ran
      // before the RTBH was switched off.
      for (const auto& ev : scenario.events) {
        if (ev.target == elem.prefix && elem.time < ev.end) ++timely_probes;
      }
    }
    drain_watch_until(rec->timestamp - 600);
    if (now > scenario.end + 7200) break;
  }
  drain_watch_until(scenario.end + 7200);

  std::printf("\ndetected %zu RTBH starts, %zu ends; %zu probed before "
              "blackholing was withdrawn (paper: >90%%)\n",
              detected_starts, detected_ends, timely_probes);
  return detected_starts == 0 ? 1 : 0;
}
