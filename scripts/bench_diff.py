#!/usr/bin/env python3
"""Compare two trees of google-benchmark JSON results and flag regressions.

Usage:
    bench_diff.py BASELINE_DIR CURRENT_DIR [--threshold 0.15]
                  [--fail-on-regress]

Result files are matched by basename anywhere under each directory (CI
artifacts nest them one level deep). For every benchmark present in
both, the wall-time (`real_time`) delta is reported as a markdown table
suitable for $GITHUB_STEP_SUMMARY; benchmarks slower than the threshold
additionally emit `::warning::` annotations. Exits 0 unless
--fail-on-regress is given and a regression was found, so the job
annotates rather than gates by default (single-run CI timings are
noisy).
"""

import argparse
import json
import pathlib
import sys

TIME_UNIT_NS = {"ns": 1, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_benchmarks(path):
    """{benchmark name -> real_time in ns} from one result file."""
    with open(path) as f:
        data = json.load(f)
    out = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        scale = TIME_UNIT_NS.get(b.get("time_unit", "ns"), 1)
        out[b["name"]] = b["real_time"] * scale
    return out


def find_results(root):
    """{basename -> path} of every .json under root (first wins)."""
    out = {}
    for p in sorted(pathlib.Path(root).rglob("*.json")):
        out.setdefault(p.name, p)
    return out


def fmt_ns(ns):
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= scale:
            return f"{ns / scale:.2f} {unit}"
    return f"{ns:.0f} ns"


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="relative wall-time slowdown that counts as a "
                         "regression (default 0.15 = +15%%)")
    ap.add_argument("--fail-on-regress", action="store_true")
    args = ap.parse_args()

    base_files = find_results(args.baseline)
    curr_files = find_results(args.current)
    if not base_files:
        print("### Benchmark diff\n")
        print("No baseline results found — first run, or the previous "
              "artifact expired. Nothing to compare.")
        return 0
    common = sorted(set(base_files) & set(curr_files))
    if not common:
        print("### Benchmark diff\n")
        print("Baseline and current runs share no result files.")
        return 0

    regressions = []
    print("### Benchmark diff (wall time vs previous run)\n")
    print("| Benchmark | Baseline | Current | Delta |")
    print("|---|---:|---:|---:|")
    for name in common:
        base = load_benchmarks(base_files[name])
        curr = load_benchmarks(curr_files[name])
        for bench in sorted(set(base) & set(curr)):
            b, c = base[bench], curr[bench]
            if b <= 0:
                continue
            delta = (c - b) / b
            mark = ""
            if delta > args.threshold:
                mark = " ⚠️"
                regressions.append((bench, delta))
            print(f"| `{bench}` | {fmt_ns(b)} | {fmt_ns(c)} "
                  f"| {delta:+.1%}{mark} |")
    print()
    if regressions:
        print(f"**{len(regressions)} benchmark(s) regressed more than "
              f"{args.threshold:.0%}.**")
        for bench, delta in regressions:
            # GitHub annotation, shown on the workflow run page.
            print(f"::warning title=Benchmark regression::{bench} is "
                  f"{delta:+.1%} slower than the previous run",
                  file=sys.stderr)
    else:
        print(f"No benchmark regressed more than {args.threshold:.0%}.")
    return 1 if (regressions and args.fail_on_regress) else 0


if __name__ == "__main__":
    sys.exit(main())
