#!/usr/bin/env python3
"""Compare benchmark JSON results against a rolling baseline window.

Usage:
    bench_diff.py BASELINE_DIR CURRENT_DIR [--threshold 0.15]
                  [--fail-on-regress]

BASELINE_DIR may hold results from *several* previous main-branch runs
(CI downloads the last N artifacts into per-run subdirectories); every
file with the same basename contributes one sample, and the baseline
value per benchmark is the **median across those runs** — single CI
runs are far too noisy to diff against directly. CURRENT_DIR holds this
run's results, matched by basename anywhere under the directory.

For every benchmark present in both, the wall-time (`real_time`) delta
vs the rolling median is reported as a markdown table suitable for
$GITHUB_STEP_SUMMARY; benchmarks slower than the threshold additionally
emit `::warning::` annotations. Benchmarks (or result files) present on
only one side are *skipped with a note* — renames and newly added
benches must not crash the diff or silently vanish. Exits 0 unless
--fail-on-regress is given and a regression was found, so the job
annotates rather than gates by default.
"""

import argparse
import json
import pathlib
import statistics
import sys

TIME_UNIT_NS = {"ns": 1, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_benchmarks(path):
    """{benchmark name -> real_time in ns} from one result file."""
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError):
        return None  # unreadable/corrupt sample: the caller notes it
    out = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        name = b.get("name")
        time = b.get("real_time")
        if name is None or not isinstance(time, (int, float)):
            continue  # malformed entry: skip rather than crash
        scale = TIME_UNIT_NS.get(b.get("time_unit", "ns"), 1)
        out[name] = time * scale
    return out


def find_results(root):
    """{basename -> [paths]} of every .json under root, all samples."""
    out = {}
    for p in sorted(pathlib.Path(root).rglob("*.json")):
        out.setdefault(p.name, []).append(p)
    return out


def fmt_ns(ns):
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= scale:
            return f"{ns / scale:.2f} {unit}"
    return f"{ns:.0f} ns"


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="relative wall-time slowdown vs the rolling "
                         "median that counts as a regression "
                         "(default 0.15 = +15%%)")
    ap.add_argument("--fail-on-regress", action="store_true")
    args = ap.parse_args()

    base_files = find_results(args.baseline)
    curr_files = find_results(args.current)
    if not base_files:
        print("### Benchmark diff\n")
        print("No baseline results found — first run, or every previous "
              "artifact expired. Nothing to compare.")
        return 0

    notes = []
    for name in sorted(set(curr_files) - set(base_files)):
        notes.append(f"`{name}`: new result file, no baseline — skipped.")
    for name in sorted(set(base_files) - set(curr_files)):
        notes.append(f"`{name}`: baseline-only result file (removed or "
                     "renamed bench binary?) — skipped.")

    common = sorted(set(base_files) & set(curr_files))
    regressions = []
    rows = []
    for name in common:
        # Rolling median per benchmark across every baseline run that
        # has it (an old run predating a new benchmark simply
        # contributes no sample for it).
        samples = {}
        usable_runs = 0
        for path in base_files[name]:
            loaded = load_benchmarks(path)
            if loaded is None:
                notes.append(f"`{path}`: unreadable baseline sample — "
                             "skipped.")
                continue
            usable_runs += 1
            for bench, t in loaded.items():
                samples.setdefault(bench, []).append(t)
        if len(curr_files[name]) > 1:
            extras = ", ".join(str(p) for p in curr_files[name][1:])
            notes.append(f"`{name}`: {len(curr_files[name])} current files "
                         f"share this basename; comparing the first, "
                         f"ignoring {extras}.")
        curr = load_benchmarks(curr_files[name][0])
        if curr is None:
            notes.append(f"`{curr_files[name][0]}`: unreadable current "
                         "results — skipped.")
            continue
        if usable_runs == 0:
            notes.append(f"`{name}`: no usable baseline sample — skipped.")
            continue

        for bench in sorted(set(curr) - set(samples)):
            notes.append(f"`{bench}`: new benchmark, no baseline sample "
                         "— skipped.")
        for bench in sorted(set(samples) - set(curr)):
            notes.append(f"`{bench}`: baseline-only benchmark (removed or "
                         "renamed?) — skipped.")
        for bench in sorted(set(samples) & set(curr)):
            base = statistics.median(samples[bench])
            c = curr[bench]
            if base <= 0:
                notes.append(f"`{bench}`: non-positive baseline median "
                             "— skipped.")
                continue
            delta = (c - base) / base
            mark = ""
            if delta > args.threshold:
                mark = " ⚠️"
                regressions.append((bench, delta))
            rows.append(f"| `{bench}` | {fmt_ns(base)} ({len(samples[bench])}"
                        f" runs) | {fmt_ns(c)} | {delta:+.1%}{mark} |")

    print("### Benchmark diff (wall time vs rolling baseline median)\n")
    if rows:
        print("| Benchmark | Baseline median | Current | Delta |")
        print("|---|---:|---:|---:|")
        for row in rows:
            print(row)
        print()
    else:
        print("Baseline and current runs share no comparable benchmarks.\n")
    if notes:
        print("**Skipped (with reasons):**\n")
        for note in notes:
            print(f"- {note}")
        print()
    if regressions:
        print(f"**{len(regressions)} benchmark(s) regressed more than "
              f"{args.threshold:.0%} vs the rolling median.**")
        for bench, delta in regressions:
            # GitHub annotation, shown on the workflow run page.
            print(f"::warning title=Benchmark regression::{bench} is "
                  f"{delta:+.1%} slower than the rolling baseline median",
                  file=sys.stderr)
    elif rows:
        print(f"No benchmark regressed more than {args.threshold:.0%}.")
    return 1 if (regressions and args.fail_on_regress) else 0


if __name__ == "__main__":
    sys.exit(main())
