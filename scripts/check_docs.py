#!/usr/bin/env python3
"""Docs consistency checks, run by the CI `docs` job.

1. Intra-repo markdown links: every relative link target in the repo's
   markdown files (README.md, docs/*.md, ROADMAP.md, ...) must exist.
   External (http/https/mailto) links and pure #anchors are skipped;
   a `path#anchor` link is checked for `path` only.
2. bgpreader pool flags: every `--pool-*` flag mentioned in the docs
   must appear in the tool's usage text (tools/bgpreader.cpp), so the
   operator guide can never drift ahead of (or behind) the CLI.
3. Built-binary help drift: for each CLI tool (bgpreader = argv[1] /
   $BGPREADER / build*/bgpreader, bgpsim = argv[2] / $BGPSIM /
   build*/bgpsim, bgpfanout = argv[3] / $BGPFANOUT /
   build*/bgpfanout), run `<tool> --help` and diff its output against the
   usage raw-string in the tool's source. Check 2 reads the *source*,
   so a stale binary (or a build that somehow diverges from the tree)
   would otherwise pass silently; each leg is skipped with a notice
   when no binary exists (e.g. docs-only CI).

Exit code 0 = clean; 1 = problems (each printed as its own line).
"""

import difflib
import os
import re
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

MARKDOWN_FILES = sorted(
    p
    for p in (
        list(REPO.glob("*.md")) + list((REPO / "docs").glob("*.md"))
    )
    if ".claude" not in p.parts
)

# [text](target) — excluding images' src handled identically; ignore
# targets with a scheme and bare anchors.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
POOL_FLAG_RE = re.compile(r"--pool-[a-z][a-z-]*")


def check_links() -> list[str]:
    problems = []
    for md in MARKDOWN_FILES:
        for m in LINK_RE.finditer(md.read_text(encoding="utf-8")):
            target = m.group(1)
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # URL scheme
                continue
            if target.startswith("#"):  # same-file anchor
                continue
            path = target.split("#", 1)[0]
            resolved = (md.parent / path).resolve()
            if not resolved.exists():
                problems.append(
                    f"{md.relative_to(REPO)}: broken link -> {target}"
                )
    return problems


def check_pool_flags() -> list[str]:
    # Only the Usage() help text counts — a flag merely parsed (or
    # mentioned in an error message) but missing from --help must not
    # whitelist doc references.
    source = (REPO / "tools" / "bgpreader.cpp").read_text(encoding="utf-8")
    m = re.search(r'R"\((.*?)\)"', source, re.DOTALL)
    if not m:
        return ["tools/bgpreader.cpp: usage raw-string literal not found"]
    known = set(POOL_FLAG_RE.findall(m.group(1)))
    problems = []
    for md in MARKDOWN_FILES:
        # ROADMAP/CHANGES may legitimately propose flags that do not
        # exist yet; the user-facing docs may not.
        if md.name in ("ROADMAP.md", "CHANGES.md", "ISSUE.md"):
            continue
        for flag in sorted(set(POOL_FLAG_RE.findall(md.read_text()))):
            if flag not in known:
                problems.append(
                    f"{md.relative_to(REPO)}: flag {flag} not in "
                    "bgpreader usage text"
                )
    return problems


# (tool name, source file, argv position, env var). Each tool's Usage()
# must be a single raw-string written to stderr.
TOOLS = [
    ("bgpreader", "tools/bgpreader.cpp", 1, "BGPREADER"),
    ("bgpsim", "tools/bgpsim.cpp", 2, "BGPSIM"),
    ("bgpfanout", "tools/bgpfanout.cpp", 3, "BGPFANOUT"),
    ("bgplive", "tools/bgplive.cpp", 4, "BGPLIVE"),
]


def find_tool(name: str, argv_pos: int, env_var: str) -> Path | None:
    if len(sys.argv) > argv_pos:
        return Path(sys.argv[argv_pos])
    env = os.environ.get(env_var)
    if env:
        return Path(env)
    candidates = sorted(REPO.glob(f"build*/{name}"))
    return candidates[0] if candidates else None


def check_help_text() -> list[str]:
    problems = []
    for name, source_rel, argv_pos, env_var in TOOLS:
        binary = find_tool(name, argv_pos, env_var)
        if binary is None or not binary.exists():
            print(f"check_help_text: no built {name} found, skipping "
                  f"(pass a path, set ${env_var}, or build into build*/)")
            continue
        source = (REPO / source_rel).read_text(encoding="utf-8")
        m = re.search(r'R"\((.*?)\)"', source, re.DOTALL)
        if not m:
            problems.append(f"{source_rel}: usage raw-string literal not found")
            continue
        expected = m.group(1)
        try:
            proc = subprocess.run(
                [str(binary), "--help"], capture_output=True, text=True,
                timeout=60,
            )
        except OSError as e:
            problems.append(f"{binary}: failed to run --help: {e}")
            continue
        if proc.returncode != 0:
            problems.append(f"{binary}: --help exited {proc.returncode}")
            continue
        got = proc.stderr  # Usage() writes to stderr
        if got == expected:
            continue
        diff = difflib.unified_diff(
            expected.splitlines(), got.splitlines(),
            fromfile=f"{source_rel} (usage raw-string)",
            tofile=f"{binary} --help", lineterm="",
        )
        problems.append(f"{binary}: --help output drifted from the source "
                        "usage text (stale build?)")
        problems.extend(diff)
    return problems


def main() -> int:
    problems = check_links() + check_pool_flags() + check_help_text()
    for p in problems:
        print(p)
    if problems:
        print(f"{len(problems)} docs problem(s)")
        return 1
    print(
        f"docs OK: {len(MARKDOWN_FILES)} markdown files, links, "
        "bgpreader --pool-* flags and tool --help text consistent"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
