#!/usr/bin/env python3
"""CLI contract check for bgpreader --pool-stats-file.

The flag exists so a scraper never has to pick JSON out of interleaved
diagnostics: the stats file must contain *only* well-formed one-object-
per-line JSON snapshots (executor / governor / tenants sections
present), while stderr keeps carrying the human-readable diagnostics
and no JSON at all.

Usage: check_stats_file.py /path/to/bgpreader
"""

import json
import os
import subprocess
import sys
import tempfile


def main() -> int:
    if len(sys.argv) != 2:
        print("usage: check_stats_file.py /path/to/bgpreader", file=sys.stderr)
        return 2
    bgpreader = sys.argv[1]
    fd, path = tempfile.mkstemp(prefix="bgps_stats_", suffix=".jsonl")
    os.close(fd)
    errors = []
    try:
        proc = subprocess.run(
            [
                bgpreader,
                "-f",
                os.devnull,
                "--pool-threads",
                "2",
                "--pool-stats-interval",
                "0.05",
                "--pool-stats-file",
                path,
            ],
            capture_output=True,
            text=True,
            timeout=120,
        )
        if proc.returncode != 0:
            errors.append(
                f"bgpreader exited {proc.returncode}; stderr: {proc.stderr!r}"
            )
        if "elems from" not in proc.stderr:
            errors.append(
                "stderr lost the closing diagnostics line "
                f"('... elems from ... records'): {proc.stderr!r}"
            )
        if "{" in proc.stderr:
            errors.append(
                "stderr carries JSON although --pool-stats-file redirected "
                f"the snapshots: {proc.stderr!r}"
            )
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
        if not lines:
            errors.append("stats file is empty (the final snapshot is missing)")
        for i, line in enumerate(lines):
            try:
                snap = json.loads(line)
            except json.JSONDecodeError as e:
                errors.append(f"stats file line {i + 1} is not JSON ({e}): "
                              f"{line!r}")
                continue
            if not isinstance(snap, dict):
                errors.append(f"stats file line {i + 1} is not an object")
                continue
            for key in ("executor", "governor", "tenants"):
                if key not in snap:
                    errors.append(
                        f"stats file line {i + 1} lacks the '{key}' section"
                    )
    finally:
        os.unlink(path)

    for e in errors:
        print(f"check_stats_file: {e}", file=sys.stderr)
    if not errors:
        print(f"check_stats_file: OK ({len(lines)} snapshot(s), "
              "stderr clean)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
