// Simple undirected AS graph + BFS shortest paths — the NetworkX stand-in
// for the AS-path-inflation analysis (paper §4.2, Listing 1).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace bgps::analysis {

class AsGraph {
 public:
  void AddEdge(uint32_t a, uint32_t b) {
    if (a == b) return;  // simple graph: no loops
    adj_[a].insert(b);
    adj_[b].insert(a);
  }

  size_t node_count() const { return adj_.size(); }
  size_t edge_count() const {
    size_t half = 0;
    for (const auto& [_, nbrs] : adj_) half += nbrs.size();
    return half / 2;
  }
  bool has_node(uint32_t a) const { return adj_.count(a) != 0; }

  // BFS hop distances from `src` to every reachable node (number of edges;
  // Listing 1 compares len(nx.shortest_path) which counts *nodes*, i.e.
  // hops + 1 — callers adjust).
  std::unordered_map<uint32_t, uint32_t> Distances(uint32_t src) const {
    std::unordered_map<uint32_t, uint32_t> dist;
    if (!has_node(src)) return dist;
    std::queue<uint32_t> queue;
    dist[src] = 0;
    queue.push(src);
    while (!queue.empty()) {
      uint32_t u = queue.front();
      queue.pop();
      auto it = adj_.find(u);
      if (it == adj_.end()) continue;
      for (uint32_t v : it->second) {
        if (dist.count(v)) continue;
        dist[v] = dist[u] + 1;
        queue.push(v);
      }
    }
    return dist;
  }

 private:
  std::unordered_map<uint32_t, std::unordered_set<uint32_t>> adj_;
};

}  // namespace bgps::analysis
