// Partitioned map/reduce runner — the Spark stand-in for §5.
//
// The paper's longitudinal analyses split the data "by time range and BGP
// collector", map a PyBGPStream routine over each partition, and reduce
// per VP / per collector / overall. RunPartitioned reproduces that shape
// on a thread pool: each partition opens its own BGPStream (one stream
// per partition, like one task per RDD slice) and the caller reduces the
// returned per-partition values.
//
// Two backends:
//   * raw threads (the original shape) — spawns up to `workers` private
//     std::threads;
//   * an injected core::Executor — partitions become tasks of one tenant
//     on the shared pool, so an analysis and the decode stages it drives
//     share one set of workers instead of oversubscribing the host.
#pragma once

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "core/executor.hpp"

namespace bgps::analysis {

// Applies `fn(partition)` to every element of `partitions`, running up to
// `workers` threads (0 = hardware concurrency). Results keep partition
// order. `Fn` must be callable concurrently on distinct partitions.
template <typename Partition, typename Fn>
auto RunPartitioned(const std::vector<Partition>& partitions, Fn&& fn,
                    unsigned workers = 0)
    -> std::vector<decltype(fn(partitions.front()))> {
  using Result = decltype(fn(partitions.front()));
  std::vector<Result> results(partitions.size());
  if (partitions.empty()) return results;
  if (workers == 0) workers = std::thread::hardware_concurrency();
  if (workers == 0) workers = 4;
  workers = std::min<unsigned>(workers, unsigned(partitions.size()));

  std::atomic<size_t> next{0};
  auto worker = [&] {
    while (true) {
      size_t i = next.fetch_add(1);
      if (i >= partitions.size()) return;
      results[i] = fn(partitions[i]);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) threads.emplace_back(worker);
  for (auto& t : threads) t.join();
  return results;
}

// Executor-backed variant: one task per partition on a fresh tenant of
// `executor`, deficit-scheduled against every other tenant (a decode
// stream's prefetch tasks, other analyses). Tasks of one tenant may run
// concurrently on different workers — exactly what independent
// partitions want. Blocks until every partition completed; results keep
// partition order. Falls back to the thread backend when `executor` is
// null or was built with zero threads (it could never run the tasks).
template <typename Partition, typename Fn>
auto RunPartitioned(const std::vector<Partition>& partitions, Fn&& fn,
                    core::Executor* executor)
    -> std::vector<decltype(fn(partitions.front()))> {
  using Result = decltype(fn(partitions.front()));
  if (executor == nullptr || executor->threads() == 0)
    return RunPartitioned(partitions, std::forward<Fn>(fn), unsigned(0));
  std::vector<Result> results(partitions.size());
  if (partitions.empty()) return results;

  auto tenant = executor->CreateTenant();
  std::mutex mu;
  std::condition_variable done_cv;
  size_t done = 0;
  for (size_t i = 0; i < partitions.size(); ++i) {
    tenant->Submit([&, i] {
      results[i] = fn(partitions[i]);
      {
        std::lock_guard<std::mutex> lock(mu);
        ++done;
      }
      done_cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  done_cv.wait(lock, [&] { return done == partitions.size(); });
  return results;
}

}  // namespace bgps::analysis
