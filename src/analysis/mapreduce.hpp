// Partitioned map/reduce runner — the Spark stand-in for §5.
//
// The paper's longitudinal analyses split the data "by time range and BGP
// collector", map a PyBGPStream routine over each partition, and reduce
// per VP / per collector / overall. RunPartitioned reproduces that shape
// on a thread pool: each partition opens its own BGPStream (one stream
// per partition, like one task per RDD slice) and the caller reduces the
// returned per-partition values.
#pragma once

#include <atomic>
#include <thread>
#include <vector>

namespace bgps::analysis {

// Applies `fn(partition)` to every element of `partitions`, running up to
// `workers` threads (0 = hardware concurrency). Results keep partition
// order. `Fn` must be callable concurrently on distinct partitions.
template <typename Partition, typename Fn>
auto RunPartitioned(const std::vector<Partition>& partitions, Fn&& fn,
                    unsigned workers = 0)
    -> std::vector<decltype(fn(partitions.front()))> {
  using Result = decltype(fn(partitions.front()));
  std::vector<Result> results(partitions.size());
  if (partitions.empty()) return results;
  if (workers == 0) workers = std::thread::hardware_concurrency();
  if (workers == 0) workers = 4;
  workers = std::min<unsigned>(workers, unsigned(partitions.size()));

  std::atomic<size_t> next{0};
  auto worker = [&] {
    while (true) {
      size_t i = next.fetch_add(1);
      if (i >= partitions.size()) return;
      results[i] = fn(partitions[i]);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) threads.emplace_back(worker);
  for (auto& t : threads) t.join();
  return results;
}

}  // namespace bgps::analysis
