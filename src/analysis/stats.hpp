// Small statistics helpers used by the figure benches.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

namespace bgps::analysis {

template <typename T>
double Mean(const std::vector<T>& v) {
  if (v.empty()) return 0;
  double sum = 0;
  for (const T& x : v) sum += double(x);
  return sum / double(v.size());
}

template <typename T>
T Max(const std::vector<T>& v) {
  if (v.empty()) return T{};
  return *std::max_element(v.begin(), v.end());
}

template <typename T>
double Quantile(std::vector<T> v, double q) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  double idx = q * double(v.size() - 1);
  size_t lo = size_t(idx);
  size_t hi = std::min(lo + 1, v.size() - 1);
  double frac = idx - double(lo);
  return double(v[lo]) * (1 - frac) + double(v[hi]) * frac;
}

template <typename T>
double Median(const std::vector<T>& v) {
  return Quantile(v, 0.5);
}

}  // namespace bgps::analysis
