#include "bgp/aspath.hpp"

#include <algorithm>
#include <charconv>

#include "util/strings.hpp"

namespace bgps::bgp {

AsPath AsPath::Sequence(std::vector<Asn> asns) {
  AsPath p;
  if (!asns.empty()) {
    AsPathSegment seg{SegmentType::AsSequence, {}};
    seg.asns.reserve(asns.size());
    for (Asn a : asns) seg.asns.push_back(a);
    p.segments_.push_back(std::move(seg));
  }
  return p;
}

namespace {
Result<Asn> ParseAsn(const std::string& tok) {
  Asn v = 0;
  auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
  if (ec != std::errc() || p != tok.data() + tok.size())
    return InvalidArgument("bad ASN: " + tok);
  return v;
}
}  // namespace

Result<AsPath> AsPath::Parse(const std::string& text) {
  AsPath path;
  for (const auto& tok : SplitSkipEmpty(text, ' ')) {
    if (tok.front() == '{') {
      if (tok.back() != '}') return InvalidArgument("unterminated set: " + tok);
      AsPathSegment seg{SegmentType::AsSet, {}};
      for (const auto& m : SplitSkipEmpty(tok.substr(1, tok.size() - 2), ',')) {
        BGPS_ASSIGN_OR_RETURN(Asn a, ParseAsn(m));
        seg.asns.push_back(a);
      }
      if (seg.asns.empty()) return InvalidArgument("empty AS set");
      path.segments_.push_back(std::move(seg));
    } else {
      BGPS_ASSIGN_OR_RETURN(Asn a, ParseAsn(tok));
      // Coalesce consecutive plain hops into one AS_SEQUENCE.
      if (!path.segments_.empty() &&
          path.segments_.back().type == SegmentType::AsSequence) {
        path.segments_.back().asns.push_back(a);
      } else {
        path.segments_.push_back({SegmentType::AsSequence, {a}});
      }
    }
  }
  return path;
}

void AsPath::prepend(Asn asn) {
  if (segments_.empty() || segments_.front().type != SegmentType::AsSequence) {
    segments_.insert(segments_.begin(), {SegmentType::AsSequence, {asn}});
  } else {
    auto& seq = segments_.front().asns;
    seq.insert(seq.begin(), asn);
  }
}

size_t AsPath::length() const {
  size_t len = 0;
  for (const auto& seg : segments_) {
    len += seg.type == SegmentType::AsSequence ? seg.asns.size() : 1;
  }
  return len;
}

std::vector<Asn> AsPath::hops() const {
  std::vector<Asn> out;
  for (const auto& seg : segments_) {
    out.insert(out.end(), seg.asns.begin(), seg.asns.end());
  }
  return out;
}

std::optional<Asn> AsPath::first_asn() const {
  if (segments_.empty() || segments_.front().asns.empty()) return std::nullopt;
  return segments_.front().asns.front();
}

std::optional<Asn> AsPath::origin_asn() const {
  if (segments_.empty() || segments_.back().asns.empty()) return std::nullopt;
  const auto& last = segments_.back();
  if (last.type == SegmentType::AsSequence) return last.asns.back();
  return *std::min_element(last.asns.begin(), last.asns.end());
}

std::vector<Asn> AsPath::origin_set() const {
  if (segments_.empty()) return {};
  const auto& last = segments_.back();
  if (last.type == SegmentType::AsSequence) {
    if (last.asns.empty()) return {};
    return {last.asns.back()};
  }
  return {last.asns.begin(), last.asns.end()};
}

bool AsPath::contains(Asn asn) const {
  for (const auto& seg : segments_) {
    if (std::find(seg.asns.begin(), seg.asns.end(), asn) != seg.asns.end())
      return true;
  }
  return false;
}

std::string AsPath::ToString() const {
  std::string out;
  for (const auto& seg : segments_) {
    if (seg.type == SegmentType::AsSequence) {
      for (Asn a : seg.asns) {
        if (!out.empty()) out += ' ';
        out += std::to_string(a);
      }
    } else {
      if (!out.empty()) out += ' ';
      out += '{';
      for (size_t i = 0; i < seg.asns.size(); ++i) {
        if (i) out += ',';
        out += std::to_string(seg.asns[i]);
      }
      out += '}';
    }
  }
  return out;
}

}  // namespace bgps::bgp
