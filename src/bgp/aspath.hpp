// AS path representation (RFC 4271 §4.3, path attribute type 2).
//
// The paper's Table 1 requires "all information present in the underlying
// BGP message ... including AS_SET and AS_SEQUENCE segments", plus
// convenience iteration over segments and bgpdump-compatible string
// rendering ("1 2 {3,4} 5").
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/result.hpp"
#include "util/smallvec.hpp"

namespace bgps::bgp {

using Asn = uint32_t;

enum class SegmentType : uint8_t { AsSet = 1, AsSequence = 2 };

// Inline capacities sized from real tables: observed AS paths are ~4
// hops on average and almost always a single AS_SEQUENCE (RFC 4271
// route selection penalizes long paths), so a typical decoded path costs
// zero heap allocations.
using AsnVec = SmallVec<Asn, 8>;

struct AsPathSegment {
  SegmentType type = SegmentType::AsSequence;
  AsnVec asns;

  bool operator==(const AsPathSegment&) const = default;
};

using SegmentVec = SmallVec<AsPathSegment, 2>;

class AsPath {
 public:
  AsPath() = default;
  explicit AsPath(std::vector<AsPathSegment> segments) {
    for (auto& seg : segments) segments_.push_back(std::move(seg));
  }

  // Builds a pure AS_SEQUENCE path (the common case).
  static AsPath Sequence(std::vector<Asn> asns);

  // Parses the bgpdump textual form: space-separated hops where a set is
  // rendered "{a,b,c}". Inverse of ToString().
  static Result<AsPath> Parse(const std::string& text);

  const SegmentVec& segments() const { return segments_; }
  bool empty() const { return segments_.empty(); }

  void append_segment(AsPathSegment seg) { segments_.push_back(std::move(seg)); }
  // Prepends `asn` to the leading AS_SEQUENCE (creating one if needed) —
  // what a router does when exporting a route (RFC 4271 §5.1.2).
  void prepend(Asn asn);

  // Path length per RFC 4271 route selection: each AS_SEQUENCE member
  // counts 1, each AS_SET counts 1 in total.
  size_t length() const;

  // Hops in order, with each AS_SET contributing each member once. This is
  // the "split the AS path" view used by the Listing 1 analysis.
  std::vector<Asn> hops() const;

  // First ASN of the path (the VP's neighbor view) and the origin (last).
  std::optional<Asn> first_asn() const;
  // Origin AS: last element. For a trailing AS_SET the paper's analyses use
  // the set members; we return the full set via origin_set() and the
  // smallest member here for determinism.
  std::optional<Asn> origin_asn() const;
  std::vector<Asn> origin_set() const;

  // True if `asn` appears anywhere in the path.
  bool contains(Asn asn) const;

  // bgpdump format: "701 3356 {7018,209} 65001".
  std::string ToString() const;

  bool operator==(const AsPath&) const = default;

 private:
  SegmentVec segments_;
};

}  // namespace bgps::bgp
