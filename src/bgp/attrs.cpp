#include "bgp/attrs.hpp"

namespace bgps::bgp {
namespace {

// Attribute flag bits (RFC 4271 §4.3).
constexpr uint8_t kFlagOptional = 0x80;
constexpr uint8_t kFlagTransitive = 0x40;
constexpr uint8_t kFlagExtLen = 0x10;

void WriteAttrHeader(BufWriter& w, uint8_t flags, AttrType type, size_t len) {
  if (len > 0xFF) flags |= kFlagExtLen;
  w.u8(flags);
  w.u8(uint8_t(type));
  if (flags & kFlagExtLen) {
    w.u16(uint16_t(len));
  } else {
    w.u8(uint8_t(len));
  }
}

void WriteAttr(BufWriter& w, uint8_t flags, AttrType type, const Bytes& body) {
  WriteAttrHeader(w, flags, type, body.size());
  w.bytes(body);
}

Bytes EncodeAsPathBody(const AsPath& path, AsnEncoding enc) {
  BufWriter w;
  for (const auto& seg : path.segments()) {
    w.u8(uint8_t(seg.type));
    w.u8(uint8_t(seg.asns.size()));
    for (Asn a : seg.asns) {
      if (enc == AsnEncoding::FourByte) {
        w.u32(a);
      } else {
        // 2-byte encoding: ASNs above 16 bits become AS_TRANS (23456),
        // per RFC 6793 §4.2.
        w.u16(a > 0xFFFF ? uint16_t(23456) : uint16_t(a));
      }
    }
  }
  return w.take();
}

Result<AsPath> DecodeAsPathBody(BufReader r, AsnEncoding enc) {
  AsPath path;
  while (!r.empty()) {
    BGPS_ASSIGN_OR_RETURN(uint8_t type, r.u8());
    if (type != uint8_t(SegmentType::AsSet) &&
        type != uint8_t(SegmentType::AsSequence))
      return CorruptError("bad AS path segment type " + std::to_string(type));
    BGPS_ASSIGN_OR_RETURN(uint8_t count, r.u8());
    AsPathSegment seg{SegmentType(type), {}};
    seg.asns.reserve(count);
    for (int i = 0; i < count; ++i) {
      if (enc == AsnEncoding::FourByte) {
        BGPS_ASSIGN_OR_RETURN(uint32_t a, r.u32());
        seg.asns.push_back(a);
      } else {
        BGPS_ASSIGN_OR_RETURN(uint16_t a, r.u16());
        seg.asns.push_back(a);
      }
    }
    path.append_segment(std::move(seg));
  }
  return path;
}

void WriteIpBytes(BufWriter& w, const IpAddress& a) {
  w.bytes(std::span<const uint8_t>(a.bytes().data(), size_t(a.width()) / 8));
}

Result<IpAddress> ReadIpBytes(BufReader& r, IpFamily family) {
  if (family == IpFamily::V4) {
    BGPS_ASSIGN_OR_RETURN(uint32_t v, r.u32());
    return IpAddress::V4(v);
  }
  BGPS_ASSIGN_OR_RETURN(Bytes b, r.bytes(16));
  std::array<uint8_t, 16> arr{};
  std::copy(b.begin(), b.end(), arr.begin());
  return IpAddress::V6(arr);
}

}  // namespace

void EncodeNlriPrefix(BufWriter& w, const Prefix& p) {
  w.u8(uint8_t(p.length()));
  size_t nbytes = (size_t(p.length()) + 7) / 8;
  w.bytes(std::span<const uint8_t>(p.address().bytes().data(), nbytes));
}

Result<Prefix> DecodeNlriPrefix(BufReader& r, IpFamily family) {
  BGPS_ASSIGN_OR_RETURN(uint8_t len, r.u8());
  const int maxlen = family == IpFamily::V4 ? 32 : 128;
  if (len > maxlen) return CorruptError("NLRI length " + std::to_string(len));
  size_t nbytes = (size_t(len) + 7) / 8;
  // view, not bytes: NLRI runs decode once per prefix on the hot path,
  // and the copied-out form would be the last per-record allocation.
  BGPS_ASSIGN_OR_RETURN(auto b, r.view(nbytes));
  std::array<uint8_t, 16> arr{};
  std::copy(b.begin(), b.end(), arr.begin());
  IpAddress addr = family == IpFamily::V4
                       ? IpAddress::V4(arr[0], arr[1], arr[2], arr[3])
                       : IpAddress::V6(arr);
  return Prefix(addr, len);
}

Bytes EncodePathAttributes(const PathAttributes& attrs, AsnEncoding enc) {
  BufWriter w;

  {  // ORIGIN — well-known mandatory.
    BufWriter b;
    b.u8(uint8_t(attrs.origin));
    WriteAttr(w, kFlagTransitive, AttrType::Origin, b.take());
  }
  {  // AS_PATH — well-known mandatory.
    WriteAttr(w, kFlagTransitive, AttrType::AsPath,
              EncodeAsPathBody(attrs.as_path, enc));
  }
  if (attrs.next_hop) {
    BufWriter b;
    b.u32(attrs.next_hop->v4());
    WriteAttr(w, kFlagTransitive, AttrType::NextHop, b.take());
  }
  if (attrs.med) {
    BufWriter b;
    b.u32(*attrs.med);
    WriteAttr(w, kFlagOptional, AttrType::Med, b.take());
  }
  if (attrs.local_pref) {
    BufWriter b;
    b.u32(*attrs.local_pref);
    WriteAttr(w, kFlagTransitive, AttrType::LocalPref, b.take());
  }
  if (attrs.atomic_aggregate) {
    WriteAttr(w, kFlagTransitive, AttrType::AtomicAggregate, {});
  }
  if (attrs.aggregator) {
    BufWriter b;
    if (enc == AsnEncoding::FourByte) {
      b.u32(attrs.aggregator->asn);
    } else {
      b.u16(attrs.aggregator->asn > 0xFFFF ? uint16_t(23456)
                                           : uint16_t(attrs.aggregator->asn));
    }
    b.u32(attrs.aggregator->address.v4());
    WriteAttr(w, kFlagOptional | kFlagTransitive, AttrType::Aggregator,
              b.take());
  }
  if (!attrs.communities.empty()) {
    BufWriter b;
    for (Community c : attrs.communities) b.u32(c.raw());
    WriteAttr(w, kFlagOptional | kFlagTransitive, AttrType::Communities,
              b.take());
  }
  if (attrs.mp_reach) {
    BufWriter b;
    b.u16(attrs.mp_reach->afi);
    b.u8(attrs.mp_reach->safi);
    b.u8(uint8_t(attrs.mp_reach->next_hop.width() / 8));
    WriteIpBytes(b, attrs.mp_reach->next_hop);
    b.u8(0);  // reserved / SNPA count
    for (const auto& p : attrs.mp_reach->nlri) EncodeNlriPrefix(b, p);
    WriteAttr(w, kFlagOptional, AttrType::MpReachNlri, b.take());
  }
  if (attrs.mp_unreach) {
    BufWriter b;
    b.u16(attrs.mp_unreach->afi);
    b.u8(attrs.mp_unreach->safi);
    for (const auto& p : attrs.mp_unreach->withdrawn) EncodeNlriPrefix(b, p);
    WriteAttr(w, kFlagOptional, AttrType::MpUnreachNlri, b.take());
  }
  return w.take();
}

Result<PathAttributes> DecodePathAttributes(BufReader& r, size_t len,
                                            AsnEncoding enc,
                                            AttrDecodeCtx* ctx) {
  BGPS_ASSIGN_OR_RETURN(BufReader block, r.sub(len));
  PathAttributes attrs;
  while (!block.empty()) {
    BGPS_ASSIGN_OR_RETURN(uint8_t flags, block.u8());
    BGPS_ASSIGN_OR_RETURN(uint8_t type, block.u8());
    size_t alen;
    if (flags & kFlagExtLen) {
      BGPS_ASSIGN_OR_RETURN(uint16_t l, block.u16());
      alen = l;
    } else {
      BGPS_ASSIGN_OR_RETURN(uint8_t l, block.u8());
      alen = l;
    }
    // view + reader instead of sub(): the AS_PATH intern cache keys on
    // the raw attribute bytes.
    BGPS_ASSIGN_OR_RETURN(auto body_bytes, block.view(alen));
    BufReader body(body_bytes);
    switch (AttrType(type)) {
      case AttrType::Origin: {
        BGPS_ASSIGN_OR_RETURN(uint8_t o, body.u8());
        if (o > 2) return CorruptError("bad ORIGIN " + std::to_string(o));
        attrs.origin = Origin(o);
        break;
      }
      case AttrType::AsPath: {
        AsPathCache* cache = ctx ? ctx->aspath_cache : nullptr;
        if (cache) {
          std::string_view key(reinterpret_cast<const char*>(body_bytes.data()),
                               body_bytes.size());
          if (const AsPath* hit = cache->Find(key, enc)) {
            attrs.as_path = *hit;
          } else {
            BGPS_ASSIGN_OR_RETURN(AsPath p, DecodeAsPathBody(body, enc));
            attrs.as_path = *cache->Insert(key, enc, std::move(p));
          }
        } else {
          BGPS_ASSIGN_OR_RETURN(attrs.as_path, DecodeAsPathBody(body, enc));
        }
        break;
      }
      case AttrType::NextHop: {
        BGPS_ASSIGN_OR_RETURN(uint32_t v, body.u32());
        attrs.next_hop = IpAddress::V4(v);
        break;
      }
      case AttrType::Med: {
        BGPS_ASSIGN_OR_RETURN(uint32_t v, body.u32());
        attrs.med = v;
        break;
      }
      case AttrType::LocalPref: {
        BGPS_ASSIGN_OR_RETURN(uint32_t v, body.u32());
        attrs.local_pref = v;
        break;
      }
      case AttrType::AtomicAggregate:
        attrs.atomic_aggregate = true;
        break;
      case AttrType::Aggregator: {
        Aggregator agg;
        if (enc == AsnEncoding::FourByte) {
          BGPS_ASSIGN_OR_RETURN(agg.asn, body.u32());
        } else {
          BGPS_ASSIGN_OR_RETURN(uint16_t a, body.u16());
          agg.asn = a;
        }
        BGPS_ASSIGN_OR_RETURN(uint32_t ip, body.u32());
        agg.address = IpAddress::V4(ip);
        attrs.aggregator = agg;
        break;
      }
      case AttrType::Communities: {
        while (!body.empty()) {
          BGPS_ASSIGN_OR_RETURN(uint32_t raw, body.u32());
          attrs.communities.push_back(Community(raw));
        }
        break;
      }
      case AttrType::MpReachNlri: {
        MpReach mp;
        BGPS_ASSIGN_OR_RETURN(mp.afi, body.u16());
        BGPS_ASSIGN_OR_RETURN(mp.safi, body.u8());
        BGPS_ASSIGN_OR_RETURN(uint8_t nhlen, body.u8());
        if (nhlen == 4) {
          BGPS_ASSIGN_OR_RETURN(mp.next_hop, ReadIpBytes(body, IpFamily::V4));
        } else if (nhlen == 16 || nhlen == 32) {
          BGPS_ASSIGN_OR_RETURN(mp.next_hop, ReadIpBytes(body, IpFamily::V6));
          // A 32-byte next hop carries global + link-local; skip link-local.
          if (nhlen == 32) BGPS_RETURN_IF_ERROR(body.skip(16));
        } else {
          return CorruptError("bad MP next-hop length " + std::to_string(nhlen));
        }
        BGPS_RETURN_IF_ERROR(body.skip(1));  // reserved
        IpFamily fam = mp.afi == kAfiIpv4 ? IpFamily::V4 : IpFamily::V6;
        while (!body.empty()) {
          BGPS_ASSIGN_OR_RETURN(Prefix p, DecodeNlriPrefix(body, fam));
          mp.nlri.push_back(p);
        }
        attrs.mp_reach = std::move(mp);
        break;
      }
      case AttrType::MpUnreachNlri: {
        MpUnreach mp;
        BGPS_ASSIGN_OR_RETURN(mp.afi, body.u16());
        BGPS_ASSIGN_OR_RETURN(mp.safi, body.u8());
        IpFamily fam = mp.afi == kAfiIpv4 ? IpFamily::V4 : IpFamily::V6;
        while (!body.empty()) {
          BGPS_ASSIGN_OR_RETURN(Prefix p, DecodeNlriPrefix(body, fam));
          mp.withdrawn.push_back(p);
        }
        attrs.mp_unreach = std::move(mp);
        break;
      }
      default:
        // Unknown attribute: tolerated and skipped (BGP is extensible; the
        // paper notes not all attributes are exposed yet).
        break;
    }
  }
  return attrs;
}

}  // namespace bgps::bgp
