// BGP path attributes (RFC 4271 §4.3, RFC 4760 for MP_REACH/MP_UNREACH).
//
// Wire encode/decode of the attribute block shared by UPDATE messages
// (BGP4MP records) and TABLE_DUMP_V2 RIB entries. AS paths support both
// 2-byte and 4-byte ASN encodings (MESSAGE vs MESSAGE_AS4 subtypes and
// TABLE_DUMP_V2, which is always 4-byte — RFC 6396 §4.3.4).
#pragma once

#include <optional>

#include "bgp/aspath.hpp"
#include "bgp/community.hpp"
#include "bgp/types.hpp"
#include "util/bytes.hpp"
#include "util/ip.hpp"

namespace bgps::bgp {

struct Aggregator {
  Asn asn = 0;
  IpAddress address;
  bool operator==(const Aggregator&) const = default;
};

// Multiprotocol reachable NLRI (RFC 4760 §3): carries IPv6 routes.
struct MpReach {
  uint16_t afi = kAfiIpv6;
  uint8_t safi = kSafiUnicast;
  IpAddress next_hop;
  std::vector<Prefix> nlri;
  bool operator==(const MpReach&) const = default;
};

// Multiprotocol unreachable NLRI (RFC 4760 §4): IPv6 withdrawals.
struct MpUnreach {
  uint16_t afi = kAfiIpv6;
  uint8_t safi = kSafiUnicast;
  std::vector<Prefix> withdrawn;
  bool operator==(const MpUnreach&) const = default;
};

struct PathAttributes {
  Origin origin = Origin::Igp;
  AsPath as_path;
  std::optional<IpAddress> next_hop;  // IPv4 NEXT_HOP attribute
  std::optional<uint32_t> med;
  std::optional<uint32_t> local_pref;
  bool atomic_aggregate = false;
  std::optional<Aggregator> aggregator;
  Communities communities;
  std::optional<MpReach> mp_reach;
  std::optional<MpUnreach> mp_unreach;

  bool operator==(const PathAttributes&) const = default;
};

// ASN width used on the wire for AS_PATH / AGGREGATOR.
enum class AsnEncoding { TwoByte, FourByte };

// Encodes the attribute block *without* the leading total-length u16
// (callers differ: UPDATE uses u16, TABLE_DUMP_V2 RIB entries use u16 too
// but at a different position).
Bytes EncodePathAttributes(const PathAttributes& attrs, AsnEncoding enc);

// Decodes `len` bytes of attributes from `r`.
Result<PathAttributes> DecodePathAttributes(BufReader& r, size_t len,
                                            AsnEncoding enc);

// NLRI prefix encoding (RFC 4271 §4.3): length octet + minimal bytes.
void EncodeNlriPrefix(BufWriter& w, const Prefix& p);
Result<Prefix> DecodeNlriPrefix(BufReader& r, IpFamily family);

}  // namespace bgps::bgp
