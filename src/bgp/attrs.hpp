// BGP path attributes (RFC 4271 §4.3, RFC 4760 for MP_REACH/MP_UNREACH).
//
// Wire encode/decode of the attribute block shared by UPDATE messages
// (BGP4MP records) and TABLE_DUMP_V2 RIB entries. AS paths support both
// 2-byte and 4-byte ASN encodings (MESSAGE vs MESSAGE_AS4 subtypes and
// TABLE_DUMP_V2, which is always 4-byte — RFC 6396 §4.3.4).
#pragma once

#include <optional>
#include <string_view>
#include <unordered_map>

#include "bgp/aspath.hpp"
#include "bgp/community.hpp"
#include "bgp/types.hpp"
#include "util/arena.hpp"
#include "util/bytes.hpp"
#include "util/ip.hpp"
#include "util/smallvec.hpp"

namespace bgps::bgp {

// Inline capacity 4: updates announce/withdraw a few prefixes at a time
// (RIB entries exactly one), so NLRI runs decode without heap traffic.
using PrefixVec = SmallVec<Prefix, 4>;

struct Aggregator {
  Asn asn = 0;
  IpAddress address;
  bool operator==(const Aggregator&) const = default;
};

// Multiprotocol reachable NLRI (RFC 4760 §3): carries IPv6 routes.
struct MpReach {
  uint16_t afi = kAfiIpv6;
  uint8_t safi = kSafiUnicast;
  IpAddress next_hop;
  PrefixVec nlri;
  bool operator==(const MpReach&) const = default;
};

// Multiprotocol unreachable NLRI (RFC 4760 §4): IPv6 withdrawals.
struct MpUnreach {
  uint16_t afi = kAfiIpv6;
  uint8_t safi = kSafiUnicast;
  PrefixVec withdrawn;
  bool operator==(const MpUnreach&) const = default;
};

struct PathAttributes {
  Origin origin = Origin::Igp;
  AsPath as_path;
  std::optional<IpAddress> next_hop;  // IPv4 NEXT_HOP attribute
  std::optional<uint32_t> med;
  std::optional<uint32_t> local_pref;
  bool atomic_aggregate = false;
  std::optional<Aggregator> aggregator;
  Communities communities;
  std::optional<MpReach> mp_reach;
  std::optional<MpUnreach> mp_unreach;

  bool operator==(const PathAttributes&) const = default;
};

// ASN width used on the wire for AS_PATH / AGGREGATOR.
enum class AsnEncoding { TwoByte, FourByte };

// Per-dump AS-path intern cache (decode hot path): RIB dumps repeat the
// same AS_PATH attribute bytes across thousands of entries, and update
// bursts repeat them across prefixes, so each distinct raw attribute
// body is decoded once and later occurrences copy the cached result —
// an allocation-free copy for paths within AsnVec/SegmentVec inline
// capacity. Keys are raw wire bytes interned into the owning Arena; the
// cache and arena die together with the dump that owns them (see
// core/arena.hpp for the lifetime rules). Not thread-safe: owned by the
// single task decoding one dump file.
class AsPathCache {
 public:
  explicit AsPathCache(Arena* arena) : arena_(arena) {}

  const AsPath* Find(std::string_view raw, AsnEncoding enc) const {
    const auto& m = enc == AsnEncoding::FourByte ? four_ : two_;
    auto it = m.find(raw);
    if (it == m.end()) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    return &it->second;
  }

  const AsPath* Insert(std::string_view raw, AsnEncoding enc, AsPath path) {
    auto& m = enc == AsnEncoding::FourByte ? four_ : two_;
    auto [it, inserted] = m.emplace(arena_->Intern(raw), std::move(path));
    (void)inserted;
    return &it->second;
  }

  size_t hits() const { return hits_; }
  size_t misses() const { return misses_; }

 private:
  Arena* arena_;
  mutable size_t hits_ = 0;
  mutable size_t misses_ = 0;
  // Two maps, not one keyed on (bytes, enc): the same bytes decode
  // differently under each ASN width, and a composite key would need a
  // copy per lookup.
  std::unordered_map<std::string_view, AsPath> two_;
  std::unordered_map<std::string_view, AsPath> four_;
};

// Optional per-dump decode context, threaded from the dump layer
// (core::DumpReader) through mrt::DecodeRecord into the attribute
// decoder. Null members disable the corresponding optimization.
struct AttrDecodeCtx {
  AsPathCache* aspath_cache = nullptr;
};

// Encodes the attribute block *without* the leading total-length u16
// (callers differ: UPDATE uses u16, TABLE_DUMP_V2 RIB entries use u16 too
// but at a different position).
Bytes EncodePathAttributes(const PathAttributes& attrs, AsnEncoding enc);

// Decodes `len` bytes of attributes from `r`. `ctx`, when given, enables
// the per-dump AS-path intern cache.
Result<PathAttributes> DecodePathAttributes(BufReader& r, size_t len,
                                            AsnEncoding enc,
                                            AttrDecodeCtx* ctx = nullptr);

// NLRI prefix encoding (RFC 4271 §4.3): length octet + minimal bytes.
void EncodeNlriPrefix(BufWriter& w, const Prefix& p);
Result<Prefix> DecodeNlriPrefix(BufReader& r, IpFamily family);

}  // namespace bgps::bgp
