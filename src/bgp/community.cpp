#include "bgp/community.hpp"

#include <charconv>

namespace bgps::bgp {
namespace {
Result<uint16_t> ParseU16(const std::string& tok) {
  uint32_t v = 0;
  auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
  if (ec != std::errc() || p != tok.data() + tok.size() || v > 0xFFFF)
    return InvalidArgument("bad community part: " + tok);
  return uint16_t(v);
}
}  // namespace

Result<Community> Community::Parse(const std::string& text) {
  size_t colon = text.find(':');
  if (colon == std::string::npos)
    return InvalidArgument("community missing ':': " + text);
  BGPS_ASSIGN_OR_RETURN(uint16_t asn, ParseU16(text.substr(0, colon)));
  BGPS_ASSIGN_OR_RETURN(uint16_t val, ParseU16(text.substr(colon + 1)));
  return Community(asn, val);
}

std::string CommunitiesToString(const Communities& cs) {
  std::string out;
  for (size_t i = 0; i < cs.size(); ++i) {
    if (i) out += ' ';
    out += cs[i].ToString();
  }
  return out;
}

Result<CommunityMatcher> CommunityMatcher::Parse(const std::string& pattern) {
  size_t colon = pattern.find(':');
  if (colon == std::string::npos)
    return InvalidArgument("community pattern missing ':': " + pattern);
  CommunityMatcher m;
  std::string asn = pattern.substr(0, colon);
  std::string val = pattern.substr(colon + 1);
  if (asn != "*") {
    BGPS_ASSIGN_OR_RETURN(m.asn_, ParseU16(asn));
    m.match_asn_ = true;
  }
  if (val != "*") {
    BGPS_ASSIGN_OR_RETURN(m.value_, ParseU16(val));
    m.match_value_ = true;
  }
  return m;
}

}  // namespace bgps::bgp
