// BGP standard communities (RFC 1997): 32-bit values rendered "asn:value".
//
// Communities drive the RTBH case study (§4.3) and the community-diversity
// analysis (Fig. 5d), which extracts "the two most-significant bytes of
// the community value" as the AS identifier.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.hpp"
#include "util/smallvec.hpp"

namespace bgps::bgp {

class Community {
 public:
  Community() = default;
  explicit Community(uint32_t raw) : raw_(raw) {}
  Community(uint16_t asn, uint16_t value)
      : raw_((uint32_t(asn) << 16) | value) {}

  // Parses "asn:value".
  static Result<Community> Parse(const std::string& text);

  uint32_t raw() const { return raw_; }
  uint16_t asn() const { return uint16_t(raw_ >> 16); }
  uint16_t value() const { return uint16_t(raw_); }

  std::string ToString() const {
    return std::to_string(asn()) + ":" + std::to_string(value());
  }

  auto operator<=>(const Community&) const = default;

 private:
  uint32_t raw_ = 0;
};

// Inline capacity 8: real updates carry a handful of communities, so the
// list lives inside the attribute block with no heap allocation.
using Communities = SmallVec<Community, 8>;

std::string CommunitiesToString(const Communities& cs);

// Community match pattern with wildcards: "65000:*", "*:666", "65000:666".
// Used by the BGPStream community filter (RTBH case study applies
// "community-based filters" in live mode).
class CommunityMatcher {
 public:
  static Result<CommunityMatcher> Parse(const std::string& pattern);

  bool matches(Community c) const {
    return (!match_asn_ || c.asn() == asn_) &&
           (!match_value_ || c.value() == value_);
  }
  bool matches_any(const Communities& cs) const {
    for (Community c : cs) {
      if (matches(c)) return true;
    }
    return false;
  }

 private:
  bool match_asn_ = false;
  bool match_value_ = false;
  uint16_t asn_ = 0;
  uint16_t value_ = 0;
};

}  // namespace bgps::bgp
