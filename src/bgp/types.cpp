#include "bgp/types.hpp"

namespace bgps::bgp {

const char* FsmStateName(FsmState s) {
  switch (s) {
    case FsmState::Unknown: return "UNKNOWN";
    case FsmState::Idle: return "IDLE";
    case FsmState::Connect: return "CONNECT";
    case FsmState::Active: return "ACTIVE";
    case FsmState::OpenSent: return "OPENSENT";
    case FsmState::OpenConfirm: return "OPENCONFIRM";
    case FsmState::Established: return "ESTABLISHED";
  }
  return "UNKNOWN";
}

const char* OriginName(Origin o) {
  switch (o) {
    case Origin::Igp: return "IGP";
    case Origin::Egp: return "EGP";
    case Origin::Incomplete: return "INCOMPLETE";
  }
  return "INCOMPLETE";
}

}  // namespace bgps::bgp
