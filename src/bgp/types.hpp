// Shared BGP enumerations (RFC 4271).
#pragma once

#include <cstdint>

namespace bgps::bgp {

// BGP finite state machine states (RFC 4271 §8.2.2), as dumped by RIPE RIS
// collectors in BGP4MP_STATE_CHANGE records. Numeric values match the MRT
// encoding (RFC 6396 §4.4.1).
enum class FsmState : uint16_t {
  Unknown = 0,
  Idle = 1,
  Connect = 2,
  Active = 3,
  OpenSent = 4,
  OpenConfirm = 5,
  Established = 6,
};

const char* FsmStateName(FsmState s);

// ORIGIN path attribute values (RFC 4271 §5.1.1).
enum class Origin : uint8_t { Igp = 0, Egp = 1, Incomplete = 2 };

const char* OriginName(Origin o);

// Path attribute type codes we implement.
enum class AttrType : uint8_t {
  Origin = 1,
  AsPath = 2,
  NextHop = 3,
  Med = 4,
  LocalPref = 5,
  AtomicAggregate = 6,
  Aggregator = 7,
  Communities = 8,
  MpReachNlri = 14,
  MpUnreachNlri = 15,
};

// BGP message types (RFC 4271 §4.1).
enum class MessageType : uint8_t {
  Open = 1,
  Update = 2,
  Notification = 3,
  Keepalive = 4,
};

// Address family identifiers (shared by MRT and MP_REACH).
inline constexpr uint16_t kAfiIpv4 = 1;
inline constexpr uint16_t kAfiIpv6 = 2;
inline constexpr uint8_t kSafiUnicast = 1;

}  // namespace bgps::bgp
