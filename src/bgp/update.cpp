#include "bgp/update.hpp"

namespace bgps::bgp {

Bytes EncodeUpdate(const UpdateMessage& update, AsnEncoding enc) {
  BufWriter w;
  for (int i = 0; i < 16; ++i) w.u8(0xFF);  // marker (RFC 4271 §4.1)
  size_t len_at = w.size();
  w.u16(0);  // patched below
  w.u8(uint8_t(MessageType::Update));

  BufWriter wd;
  for (const auto& p : update.withdrawn) EncodeNlriPrefix(wd, p);
  Bytes wd_bytes = wd.take();
  w.u16(uint16_t(wd_bytes.size()));
  w.bytes(wd_bytes);

  Bytes attr_bytes;
  // A pure-withdrawal UPDATE may omit path attributes entirely.
  bool has_attrs = !update.announced.empty() || update.attrs.mp_reach ||
                   update.attrs.mp_unreach ||
                   !(update.attrs == PathAttributes{});
  if (has_attrs) attr_bytes = EncodePathAttributes(update.attrs, enc);
  w.u16(uint16_t(attr_bytes.size()));
  w.bytes(attr_bytes);

  for (const auto& p : update.announced) EncodeNlriPrefix(w, p);

  w.patch_u16(len_at, uint16_t(w.size()));
  return w.take();
}

Result<std::pair<MessageType, size_t>> DecodeBgpHeader(BufReader& r) {
  BGPS_ASSIGN_OR_RETURN(auto marker, r.view(16));
  for (uint8_t b : marker) {
    if (b != 0xFF) return CorruptError("bad BGP marker");
  }
  BGPS_ASSIGN_OR_RETURN(uint16_t len, r.u16());
  BGPS_ASSIGN_OR_RETURN(uint8_t type, r.u8());
  if (len < kBgpHeaderSize || len > kBgpMaxMessageSize)
    return CorruptError("bad BGP length " + std::to_string(len));
  if (type < 1 || type > 4)
    return CorruptError("bad BGP type " + std::to_string(type));
  return std::make_pair(MessageType(type), size_t(len) - kBgpHeaderSize);
}

Result<UpdateMessage> DecodeUpdate(BufReader& r, AsnEncoding enc,
                                   AttrDecodeCtx* ctx) {
  BGPS_ASSIGN_OR_RETURN(auto header, DecodeBgpHeader(r));
  auto [type, body_len] = header;
  if (type != MessageType::Update) return CorruptError("not an UPDATE");
  BGPS_ASSIGN_OR_RETURN(BufReader body, r.sub(body_len));

  UpdateMessage update;
  BGPS_ASSIGN_OR_RETURN(uint16_t wd_len, body.u16());
  BGPS_ASSIGN_OR_RETURN(BufReader wd, body.sub(wd_len));
  while (!wd.empty()) {
    BGPS_ASSIGN_OR_RETURN(Prefix p, DecodeNlriPrefix(wd, IpFamily::V4));
    update.withdrawn.push_back(p);
  }

  BGPS_ASSIGN_OR_RETURN(uint16_t attr_len, body.u16());
  if (attr_len > 0) {
    BGPS_ASSIGN_OR_RETURN(update.attrs,
                          DecodePathAttributes(body, attr_len, enc, ctx));
  }

  while (!body.empty()) {
    BGPS_ASSIGN_OR_RETURN(Prefix p, DecodeNlriPrefix(body, IpFamily::V4));
    update.announced.push_back(p);
  }
  return update;
}

}  // namespace bgps::bgp
