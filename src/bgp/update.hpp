// BGP UPDATE message encode/decode (RFC 4271 §4.3).
//
// A full BGP message: 16-byte marker, u16 length, u8 type, body. UPDATE
// bodies carry withdrawn IPv4 routes, path attributes (which may embed
// IPv6 reach/unreach via MP attributes) and announced IPv4 NLRI.
#pragma once

#include "bgp/attrs.hpp"

namespace bgps::bgp {

inline constexpr size_t kBgpHeaderSize = 19;
inline constexpr size_t kBgpMaxMessageSize = 4096;

struct UpdateMessage {
  PrefixVec withdrawn;                // IPv4 withdrawals
  PathAttributes attrs;               // may be empty for pure withdrawals
  PrefixVec announced;                // IPv4 NLRI

  bool operator==(const UpdateMessage&) const = default;
};

// Encodes a complete BGP message (header + body).
Bytes EncodeUpdate(const UpdateMessage& update, AsnEncoding enc);

// Decodes a complete BGP message; requires type == UPDATE. `ctx`, when
// given, is forwarded to the attribute decoder (AS-path intern cache).
Result<UpdateMessage> DecodeUpdate(BufReader& r, AsnEncoding enc,
                                   AttrDecodeCtx* ctx = nullptr);

// Reads and validates a BGP header, returning (type, body length).
Result<std::pair<MessageType, size_t>> DecodeBgpHeader(BufReader& r);

}  // namespace bgps::bgp
