#include "bmp/bmp.hpp"

#include <fstream>

#include "mrt/encode.hpp"
#include "mrt/file.hpp"

namespace bgps::bmp {
namespace {

constexpr uint8_t kPeerFlagV6 = 0x80;

void WritePeerHeader(BufWriter& w, const PeerHeader& ph) {
  w.u8(ph.peer_type);
  w.u8(ph.peer_address.is_v6() ? kPeerFlagV6 : 0);
  w.u64(0);  // peer distinguisher (global instance)
  if (ph.peer_address.is_v6()) {
    w.bytes(std::span<const uint8_t>(ph.peer_address.bytes().data(), 16));
  } else {
    for (int i = 0; i < 12; ++i) w.u8(0);
    w.u32(ph.peer_address.v4());
  }
  w.u32(ph.peer_asn);
  w.u32(ph.peer_bgp_id);
  w.u32(uint32_t(ph.timestamp));
  w.u32(ph.microseconds);
}

Result<PeerHeader> ReadPeerHeader(BufReader& r) {
  PeerHeader ph;
  BGPS_ASSIGN_OR_RETURN(ph.peer_type, r.u8());
  BGPS_ASSIGN_OR_RETURN(uint8_t flags, r.u8());
  BGPS_RETURN_IF_ERROR(r.skip(8));  // distinguisher
  BGPS_ASSIGN_OR_RETURN(Bytes addr, r.bytes(16));
  if (flags & kPeerFlagV6) {
    std::array<uint8_t, 16> b{};
    std::copy(addr.begin(), addr.end(), b.begin());
    ph.peer_address = IpAddress::V6(b);
  } else {
    ph.peer_address = IpAddress::V4(addr[12], addr[13], addr[14], addr[15]);
  }
  BGPS_ASSIGN_OR_RETURN(ph.peer_asn, r.u32());
  BGPS_ASSIGN_OR_RETURN(ph.peer_bgp_id, r.u32());
  BGPS_ASSIGN_OR_RETURN(uint32_t sec, r.u32());
  ph.timestamp = sec;
  BGPS_ASSIGN_OR_RETURN(ph.microseconds, r.u32());
  return ph;
}

// Minimal BGP OPEN (RFC 4271 §4.2): enough for the Peer Up PDUs.
Bytes EncodeOpen(bgp::Asn asn) {
  BufWriter w;
  for (int i = 0; i < 16; ++i) w.u8(0xFF);
  size_t len_at = w.size();
  w.u16(0);
  w.u8(uint8_t(bgp::MessageType::Open));
  w.u8(4);  // BGP version
  w.u16(asn > 0xFFFF ? uint16_t(23456) : uint16_t(asn));  // AS_TRANS
  w.u16(180);  // hold time
  w.u32(asn);  // BGP identifier (reuse ASN, deterministic)
  // Four-octet-AS capability (RFC 6793): one optional parameter of
  // type 2 (capability) carrying code 65 — without it a 4-byte ASN is
  // unrecoverable from the AS_TRANS placeholder above.
  w.u8(8);   // optional parameters length
  w.u8(2);   // param type: capability
  w.u8(6);   // param length
  w.u8(65);  // capability: 4-octet AS number
  w.u8(4);   // capability length
  w.u32(asn);
  w.patch_u16(len_at, uint16_t(w.size()));
  return w.take();
}

Result<bgp::Asn> DecodeOpenAsn(BufReader& r) {
  BGPS_ASSIGN_OR_RETURN(auto hdr, bgp::DecodeBgpHeader(r));
  auto [type, body_len] = hdr;
  if (type != bgp::MessageType::Open) return CorruptError("not an OPEN");
  BGPS_ASSIGN_OR_RETURN(BufReader body, r.sub(body_len));
  BGPS_RETURN_IF_ERROR(body.skip(1));  // version
  BGPS_ASSIGN_OR_RETURN(uint16_t asn, body.u16());
  BGPS_RETURN_IF_ERROR(body.skip(6));  // hold time + BGP identifier
  // Scan the optional parameters for the 4-octet-AS capability
  // (RFC 6793, code 65): the 2-byte field holds only AS_TRANS for ASNs
  // above 0xFFFF. Absent or malformed parameters fall back to the
  // 2-byte field — a router that never negotiated AS4 sends none.
  BGPS_ASSIGN_OR_RETURN(uint8_t params_len, body.u8());
  if (auto params = body.sub(params_len); params.ok()) {
    while (params->remaining() >= 2) {
      uint8_t param_type = *params->u8();
      uint8_t param_len = *params->u8();
      auto caps = params->sub(param_len);
      if (!caps.ok()) break;
      if (param_type != 2) continue;  // not a capability parameter
      while (caps->remaining() >= 2) {
        uint8_t code = *caps->u8();
        uint8_t cap_len = *caps->u8();
        auto value = caps->sub(cap_len);
        if (!value.ok()) break;
        if (code == 65 && cap_len == 4) return bgp::Asn(*value->u32());
      }
    }
  }
  return bgp::Asn(asn);
}

void WriteInfoTlv(BufWriter& w, uint16_t type, const std::string& value) {
  if (value.empty()) return;
  w.u16(type);
  w.u16(uint16_t(value.size()));
  w.str(value);
}

Bytes Frame(MessageType type, const Bytes& body) {
  BufWriter w;
  w.u8(kBmpVersion);
  w.u32(uint32_t(kCommonHeaderSize + body.size()));
  w.u8(uint8_t(type));
  w.bytes(body);
  return w.take();
}

}  // namespace

Bytes Encode(const BmpMessage& msg) {
  BufWriter body;
  MessageType type;
  if (msg.is_route_monitoring()) {
    const auto& rm = std::get<RouteMonitoring>(msg.body);
    type = MessageType::RouteMonitoring;
    WritePeerHeader(body, rm.peer);
    body.bytes(bgp::EncodeUpdate(rm.update, bgp::AsnEncoding::FourByte));
  } else if (msg.is_peer_down()) {
    const auto& pd = std::get<PeerDown>(msg.body);
    type = MessageType::PeerDown;
    WritePeerHeader(body, pd.peer);
    body.u8(uint8_t(pd.reason));
  } else if (msg.is_peer_up()) {
    const auto& pu = std::get<PeerUp>(msg.body);
    type = MessageType::PeerUp;
    WritePeerHeader(body, pu.peer);
    if (pu.local_address.is_v6()) {
      body.bytes(std::span<const uint8_t>(pu.local_address.bytes().data(), 16));
    } else {
      for (int i = 0; i < 12; ++i) body.u8(0);
      body.u32(pu.local_address.v4());
    }
    body.u16(pu.local_port);
    body.u16(pu.remote_port);
    body.bytes(EncodeOpen(pu.local_asn));     // sent OPEN
    body.bytes(EncodeOpen(pu.peer.peer_asn)); // received OPEN
  } else {
    const auto& info = std::get<InfoTlvs>(msg.body);
    type = info.type;
    WriteInfoTlv(body, 2, info.sys_name);
    WriteInfoTlv(body, 1, info.sys_descr);
  }
  return Frame(type, body.data());
}

namespace {

// Body decode of one well-framed message; `body` spans exactly the
// frame's payload. Short reads here mean the frame *claimed* more
// content than it carries — the caller maps them to Corrupt.
Result<BmpMessage> DecodeBody(uint8_t type, BufReader& body) {
  BmpMessage msg;
  switch (MessageType(type)) {
    case MessageType::RouteMonitoring: {
      RouteMonitoring rm;
      BGPS_ASSIGN_OR_RETURN(rm.peer, ReadPeerHeader(body));
      BGPS_ASSIGN_OR_RETURN(rm.update,
                            bgp::DecodeUpdate(body, bgp::AsnEncoding::FourByte));
      msg.body = std::move(rm);
      return msg;
    }
    case MessageType::PeerDown: {
      PeerDown pd;
      BGPS_ASSIGN_OR_RETURN(pd.peer, ReadPeerHeader(body));
      BGPS_ASSIGN_OR_RETURN(uint8_t reason, body.u8());
      if (reason < 1 || reason > 4)
        return CorruptError("bad peer-down reason");
      pd.reason = PeerDownReason(reason);
      msg.body = pd;
      return msg;
    }
    case MessageType::PeerUp: {
      PeerUp pu;
      BGPS_ASSIGN_OR_RETURN(pu.peer, ReadPeerHeader(body));
      BGPS_ASSIGN_OR_RETURN(Bytes local, body.bytes(16));
      if (pu.peer.peer_address.is_v6()) {
        std::array<uint8_t, 16> b{};
        std::copy(local.begin(), local.end(), b.begin());
        pu.local_address = IpAddress::V6(b);
      } else {
        pu.local_address = IpAddress::V4(local[12], local[13], local[14],
                                         local[15]);
      }
      BGPS_ASSIGN_OR_RETURN(pu.local_port, body.u16());
      BGPS_ASSIGN_OR_RETURN(pu.remote_port, body.u16());
      BGPS_ASSIGN_OR_RETURN(pu.local_asn, DecodeOpenAsn(body));
      msg.body = pu;
      return msg;
    }
    case MessageType::Initiation:
    case MessageType::Termination: {
      InfoTlvs info;
      info.type = MessageType(type);
      while (!body.empty()) {
        BGPS_ASSIGN_OR_RETURN(uint16_t tlv_type, body.u16());
        BGPS_ASSIGN_OR_RETURN(uint16_t tlv_len, body.u16());
        BGPS_ASSIGN_OR_RETURN(std::string value, body.str(tlv_len));
        if (tlv_type == 1) info.sys_descr = std::move(value);
        else if (tlv_type == 2) info.sys_name = std::move(value);
      }
      msg.body = std::move(info);
      return msg;
    }
    case MessageType::StatisticsReport:
      return UnsupportedError("BMP statistics report");
  }
  return UnsupportedError("BMP type " + std::to_string(type));
}

}  // namespace

Result<BmpMessage> Decode(BufReader& r) {
  if (r.empty()) return EndOfStream();
  // Peek the common header without consuming: a partial frame must
  // leave the reader byte-for-byte where it was, so a socket framer can
  // retry once more data arrives.
  if (r.remaining() < kCommonHeaderSize)
    return OutOfRange("incomplete BMP common header");
  BufReader peek = r;
  BGPS_ASSIGN_OR_RETURN(uint8_t version, peek.u8());
  if (version != kBmpVersion)
    return CorruptError("BMP version " + std::to_string(version));
  BGPS_ASSIGN_OR_RETURN(uint32_t length, peek.u32());
  if (length < kCommonHeaderSize) return CorruptError("BMP length too small");
  if (length > kMaxBmpFrameSize)
    return CorruptError("implausible BMP length " + std::to_string(length));
  if (r.remaining() < length)
    return OutOfRange("incomplete BMP frame");

  // The whole frame is present: commit to consuming exactly `length`
  // bytes so body errors leave the reader aligned on the next frame.
  BGPS_RETURN_IF_ERROR(r.skip(5));  // version + length (peeked above)
  BGPS_ASSIGN_OR_RETURN(uint8_t type, r.u8());
  BGPS_ASSIGN_OR_RETURN(BufReader body, r.sub(length - kCommonHeaderSize));

  auto msg = DecodeBody(type, body);
  if (!msg.ok() && msg.status().code() == StatusCode::OutOfRange)
    return CorruptError("truncated BMP body: " + msg.status().message());
  return msg;
}

std::optional<mrt::MrtMessage> ToMrt(const BmpMessage& msg,
                                     bgp::Asn local_asn_hint) {
  mrt::MrtMessage out;
  if (msg.is_route_monitoring()) {
    const auto& rm = std::get<RouteMonitoring>(msg.body);
    out.timestamp = rm.peer.timestamp;
    out.microseconds = rm.peer.microseconds;
    mrt::Bgp4mpMessage m;
    m.peer_asn = rm.peer.peer_asn;
    m.local_asn = local_asn_hint;
    m.peer_address = rm.peer.peer_address;
    m.local_address = rm.peer.peer_address.is_v6()
                          ? *IpAddress::Parse("::1")
                          : IpAddress::V4(127, 0, 0, 1);
    m.message_type = bgp::MessageType::Update;
    m.update = rm.update;
    out.body = std::move(m);
    return out;
  }
  if (msg.is_peer_down() || msg.is_peer_up()) {
    const PeerHeader& ph = msg.is_peer_up()
                               ? std::get<PeerUp>(msg.body).peer
                               : std::get<PeerDown>(msg.body).peer;
    out.timestamp = ph.timestamp;
    mrt::Bgp4mpStateChange sc;
    sc.peer_asn = ph.peer_asn;
    sc.local_asn = msg.is_peer_up() ? std::get<PeerUp>(msg.body).local_asn
                                    : local_asn_hint;
    sc.peer_address = ph.peer_address;
    sc.local_address = ph.peer_address.is_v6() ? *IpAddress::Parse("::1")
                                               : IpAddress::V4(127, 0, 0, 1);
    if (msg.is_peer_up()) {
      sc.old_state = bgp::FsmState::OpenConfirm;
      sc.new_state = bgp::FsmState::Established;
    } else {
      sc.old_state = bgp::FsmState::Established;
      sc.new_state = bgp::FsmState::Idle;
    }
    out.body = sc;
    return out;
  }
  return std::nullopt;  // Initiation / Termination
}

std::optional<BmpMessage> FromMrt(const mrt::MrtMessage& msg) {
  BmpMessage out;
  if (msg.is_message()) {
    const auto& m = std::get<mrt::Bgp4mpMessage>(msg.body);
    if (m.message_type != bgp::MessageType::Update) return std::nullopt;
    RouteMonitoring rm;
    rm.peer.peer_address = m.peer_address;
    rm.peer.peer_asn = m.peer_asn;
    // Deterministic identifier: reuse the ASN, like EncodeOpen does.
    rm.peer.peer_bgp_id = uint32_t(m.peer_asn);
    rm.peer.timestamp = msg.timestamp;
    rm.peer.microseconds = msg.microseconds;
    rm.update = m.update;
    out.body = std::move(rm);
    return out;
  }
  if (msg.is_state_change()) {
    const auto& sc = std::get<mrt::Bgp4mpStateChange>(msg.body);
    PeerHeader ph;
    ph.peer_address = sc.peer_address;
    ph.peer_asn = sc.peer_asn;
    ph.peer_bgp_id = uint32_t(sc.peer_asn);
    ph.timestamp = msg.timestamp;
    ph.microseconds = msg.microseconds;
    if (sc.new_state == bgp::FsmState::Established) {
      PeerUp pu;
      pu.peer = ph;
      pu.local_address = sc.local_address;
      pu.local_asn = sc.local_asn;
      out.body = pu;
    } else {
      PeerDown pd;
      pd.peer = ph;
      pd.reason = PeerDownReason::RemoteNoNotification;
      out.body = pd;
    }
    return out;
  }
  return std::nullopt;  // RIB / PEER_INDEX_TABLE
}

Result<TranscodeStats> TranscodeBmpToMrt(const std::string& bmp_path,
                                         const std::string& mrt_path) {
  std::ifstream in(bmp_path, std::ios::binary);
  if (!in.is_open()) return IoError("cannot open " + bmp_path);
  Bytes blob((std::istreambuf_iterator<char>(in)),
             std::istreambuf_iterator<char>());
  BufReader r(blob);

  mrt::MrtFileWriter writer;
  BGPS_RETURN_IF_ERROR(writer.Open(mrt_path));
  TranscodeStats stats;
  bgp::Asn local_asn = 0;
  while (true) {
    auto msg = Decode(r);
    if (!msg.ok()) {
      if (msg.status().code() == StatusCode::EndOfStream) break;
      if (msg.status().code() == StatusCode::Unsupported) {
        ++stats.skipped;
        continue;
      }
      return msg.status();
    }
    if (msg->is_peer_up())
      local_asn = std::get<PeerUp>(msg->body).local_asn;
    auto mrt_msg = ToMrt(*msg, local_asn);
    if (!mrt_msg) {
      ++stats.skipped;
      continue;
    }
    if (mrt_msg->is_message()) {
      BGPS_RETURN_IF_ERROR(writer.Write(mrt::EncodeBgp4mpUpdate(
          mrt_msg->timestamp, std::get<mrt::Bgp4mpMessage>(mrt_msg->body))));
    } else {
      BGPS_RETURN_IF_ERROR(writer.Write(mrt::EncodeBgp4mpStateChange(
          mrt_msg->timestamp,
          std::get<mrt::Bgp4mpStateChange>(mrt_msg->body))));
    }
    ++stats.converted;
  }
  BGPS_RETURN_IF_ERROR(writer.Close());
  return stats;
}

}  // namespace bgps::bmp
