// BGP Monitoring Protocol (BMP, RFC 7854) — the second data format the
// paper announces as future work (§7: "adding native support for OpenBMP
// will enable processing of streams sourced directly from BGP routers";
// §2 describes BMP as the router-side alternative to route collectors).
//
// Implements the message types an OpenBMP feed carries for route
// monitoring:
//   0 Route Monitoring   (per-peer header + BGP UPDATE PDU)
//   2 Peer Down          (reason code, optional NOTIFICATION data)
//   3 Peer Up            (local address/ports + OPEN PDUs)
//   4 Initiation         (information TLVs: sysName, sysDescr)
//   5 Termination        (information TLVs)
// plus a transcoder to MRT so BMP streams flow through the standard
// pipeline (Route Monitoring -> BGP4MP MESSAGE_AS4, Peer Up/Down ->
// STATE_CHANGE_AS4), mirroring how the real BGPStream ingests OpenBMP.
#pragma once

#include <variant>

#include "mrt/mrt.hpp"

namespace bgps::bmp {

inline constexpr uint8_t kBmpVersion = 3;
inline constexpr size_t kCommonHeaderSize = 6;
// Framing sanity cap. The largest legitimate frame is a Peer Up carrying
// two maximum-size BGP PDUs (~8 KiB with headers); anything claiming a
// megabyte is wire garbage, and a live framer must treat it as Corrupt
// rather than buffer forever waiting for the "rest" of the frame.
inline constexpr uint32_t kMaxBmpFrameSize = 1u << 20;

enum class MessageType : uint8_t {
  RouteMonitoring = 0,
  StatisticsReport = 1,
  PeerDown = 2,
  PeerUp = 3,
  Initiation = 4,
  Termination = 5,
};

// Per-peer header (RFC 7854 §4.2), present in types 0-3.
struct PeerHeader {
  uint8_t peer_type = 0;  // 0 = Global Instance Peer
  IpAddress peer_address;
  bgp::Asn peer_asn = 0;
  uint32_t peer_bgp_id = 0;
  Timestamp timestamp = 0;
  uint32_t microseconds = 0;
};

struct RouteMonitoring {
  PeerHeader peer;
  bgp::UpdateMessage update;
};

// Peer Down reason codes (RFC 7854 §4.9).
enum class PeerDownReason : uint8_t {
  LocalNotification = 1,
  LocalNoNotification = 2,
  RemoteNotification = 3,
  RemoteNoNotification = 4,
};

struct PeerDown {
  PeerHeader peer;
  PeerDownReason reason = PeerDownReason::RemoteNoNotification;
};

struct PeerUp {
  PeerHeader peer;
  IpAddress local_address;
  uint16_t local_port = 179;
  uint16_t remote_port = 179;
  bgp::Asn local_asn = 0;  // carried in the sent OPEN
};

// Initiation/Termination information TLVs (RFC 7854 §4.3/4.5).
struct InfoTlvs {
  MessageType type = MessageType::Initiation;
  std::string sys_name;
  std::string sys_descr;
};

using BmpBody = std::variant<RouteMonitoring, PeerDown, PeerUp, InfoTlvs>;

struct BmpMessage {
  BmpBody body;

  bool is_route_monitoring() const {
    return std::holds_alternative<RouteMonitoring>(body);
  }
  bool is_peer_down() const { return std::holds_alternative<PeerDown>(body); }
  bool is_peer_up() const { return std::holds_alternative<PeerUp>(body); }
  bool is_info() const { return std::holds_alternative<InfoTlvs>(body); }
};

// --- codec ---

Bytes Encode(const BmpMessage& msg);
// Frames and decodes one message from `r` (a stream may concatenate
// many). Contract, designed for a live socket framer:
//   * EndOfStream on a clean end (empty reader) — nothing consumed;
//   * OutOfRange when the reader holds only part of a frame — nothing
//     consumed, so the caller can wait for more bytes and retry with
//     the same prefix;
//   * Corrupt on framing errors (bad version, implausible length) —
//     nothing consumed; the frame boundary is lost, so a byte-stream
//     caller must drop the connection (there is no resync marker);
//   * Corrupt/Unsupported on body errors inside a well-framed message —
//     the whole frame is consumed and the reader stays aligned on the
//     next frame boundary, so decoding can continue.
Result<BmpMessage> Decode(BufReader& r);

// --- MRT bridge ---

// Converts to the MRT model; Initiation/Termination have no MRT
// equivalent and return nullopt.
std::optional<mrt::MrtMessage> ToMrt(const BmpMessage& msg,
                                     bgp::Asn local_asn_hint = 0);

// The reverse bridge, for replaying archived MRT as a live BMP session:
// BGP4MP updates become Route Monitoring, state changes become Peer Up
// (new_state == Established) or Peer Down. RIB/PEER_INDEX records and
// non-UPDATE messages have no BMP equivalent and return nullopt. Lossy
// where BMP is (FSM states collapse to up/down); round-tripping the
// *produced frames* through Decode + ToMrt is exact, which is what the
// live-path conformance tests pin.
std::optional<BmpMessage> FromMrt(const mrt::MrtMessage& msg);

// Transcodes a file of concatenated BMP messages into an MRT dump file.
struct TranscodeStats {
  size_t converted = 0;
  size_t skipped = 0;  // info TLVs and unsupported types
};
Result<TranscodeStats> TranscodeBmpToMrt(const std::string& bmp_path,
                                         const std::string& mrt_path);

}  // namespace bgps::bmp
