#include "broker/archive.hpp"

#include <algorithm>
#include <charconv>
#include <filesystem>

#include "util/strings.hpp"

namespace fs = std::filesystem;

namespace bgps::broker {

const char* DumpTypeName(DumpType t) {
  return t == DumpType::Rib ? "ribs" : "updates";
}

std::string ArchiveFileName(Timestamp start, Timestamp duration,
                            Timestamp publish_delay) {
  return std::to_string(start) + "." + std::to_string(duration) + "." +
         std::to_string(publish_delay) + ".mrt";
}

std::string ArchiveRelPath(const std::string& project,
                           const std::string& collector, DumpType type,
                           Timestamp start, Timestamp duration,
                           Timestamp publish_delay) {
  return project + "/" + collector + "/" + DumpTypeName(type) + "/" +
         ArchiveFileName(start, duration, publish_delay);
}

bool ParseArchiveFileName(const std::string& name, Timestamp* start,
                          Timestamp* duration, Timestamp* publish_delay) {
  auto parts = SplitString(name, '.');
  if (parts.size() != 4 || parts[3] != "mrt") return false;
  auto parse = [](const std::string& s, Timestamp* out) {
    int64_t v = 0;
    auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
    if (ec != std::errc() || p != s.data() + s.size()) return false;
    *out = v;
    return true;
  };
  return parse(parts[0], start) && parse(parts[1], duration) &&
         parse(parts[2], publish_delay);
}

Status ArchiveIndex::Rescan() {
  files_.clear();
  std::error_code ec;
  if (!fs::exists(root_, ec)) return NotFoundError("archive root " + root_);

  for (const auto& proj_entry : fs::directory_iterator(root_, ec)) {
    if (!proj_entry.is_directory()) continue;
    std::string project = proj_entry.path().filename().string();
    for (const auto& coll_entry :
         fs::directory_iterator(proj_entry.path(), ec)) {
      if (!coll_entry.is_directory()) continue;
      std::string collector = coll_entry.path().filename().string();
      for (DumpType type : {DumpType::Rib, DumpType::Updates}) {
        fs::path dir = coll_entry.path() / DumpTypeName(type);
        if (!fs::exists(dir, ec)) continue;
        for (const auto& f : fs::directory_iterator(dir, ec)) {
          if (!f.is_regular_file()) continue;
          DumpFileMeta meta;
          if (!ParseArchiveFileName(f.path().filename().string(), &meta.start,
                                    &meta.duration, &meta.publish_time))
            continue;  // foreign file; the real scraper skips those too
          // Filename stores the delay; convert to absolute publish time.
          meta.publish_time += meta.start + meta.duration;
          meta.project = project;
          meta.collector = collector;
          meta.type = type;
          meta.path = f.path().string();
          files_.push_back(std::move(meta));
        }
      }
    }
  }
  std::sort(files_.begin(), files_.end());
  return OkStatus();
}

std::vector<std::string> ArchiveIndex::projects() const {
  std::vector<std::string> out;
  for (const auto& f : files_) {
    if (std::find(out.begin(), out.end(), f.project) == out.end())
      out.push_back(f.project);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> ArchiveIndex::collectors(
    const std::string& project) const {
  std::vector<std::string> out;
  for (const auto& f : files_) {
    if (f.project != project) continue;
    if (std::find(out.begin(), out.end(), f.collector) == out.end())
      out.push_back(f.collector);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace bgps::broker
