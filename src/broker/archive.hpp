// On-disk dump archive: the stand-in for the RouteViews / RIPE RIS
// public repositories.
//
// Layout (mirrors the projects' per-collector trees):
//   <root>/<project>/<collector>/ribs/<start>.<duration>.<pubdelay>.mrt
//   <root>/<project>/<collector>/updates/<start>.<duration>.<pubdelay>.mrt
//
// Filenames carry the dump's nominal interval [start, start+duration) and
// the publication delay (seconds after interval end until the file appears
// on the "website") — the paper measured 99% of updates dumps available
// within 20 minutes of dump start; the simulator reproduces that with
// per-file delays.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "util/result.hpp"
#include "util/time.hpp"

namespace bgps::broker {

enum class DumpType { Rib, Updates };

const char* DumpTypeName(DumpType t);  // "ribs" / "updates"

struct DumpFileMeta {
  std::string project;
  std::string collector;
  DumpType type = DumpType::Updates;
  Timestamp start = 0;      // nominal interval start
  Timestamp duration = 0;   // nominal interval length (seconds)
  Timestamp publish_time = 0;  // when the file becomes visible
  std::string path;         // absolute path to the MRT file

  Timestamp end() const { return start + duration; }

  // Stable ordering: by time, then provenance (deterministic streams).
  auto key() const { return std::tie(start, project, collector, type, path); }
  bool operator<(const DumpFileMeta& o) const { return key() < o.key(); }
  bool operator==(const DumpFileMeta& o) const { return key() == o.key(); }
};

// Composes the canonical archive-relative path for a dump file.
std::string ArchiveFileName(Timestamp start, Timestamp duration,
                            Timestamp publish_delay);
std::string ArchiveRelPath(const std::string& project,
                           const std::string& collector, DumpType type,
                           Timestamp start, Timestamp duration,
                           Timestamp publish_delay);

// Parses "<start>.<duration>.<pubdelay>.mrt"; returns false on mismatch.
bool ParseArchiveFileName(const std::string& name, Timestamp* start,
                          Timestamp* duration, Timestamp* publish_delay);

// In-memory index over an archive root. The real Broker keeps this in SQL
// and re-scrapes continuously; Rescan() plays that role (live mode re-scans
// to discover newly published files).
class ArchiveIndex {
 public:
  explicit ArchiveIndex(std::string root) : root_(std::move(root)) {}

  const std::string& root() const { return root_; }

  // Walks the directory tree and (re)builds the index.
  Status Rescan();

  // All files, sorted by (start, project, collector, type).
  const std::vector<DumpFileMeta>& files() const { return files_; }

  std::vector<std::string> projects() const;
  std::vector<std::string> collectors(const std::string& project) const;

 private:
  std::string root_;
  std::vector<DumpFileMeta> files_;
};

}  // namespace bgps::broker
