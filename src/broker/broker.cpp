#include "broker/broker.hpp"

#include <algorithm>
#include <chrono>

#include "util/strings.hpp"

namespace bgps::broker {

Timestamp WallClock() {
  return std::chrono::duration_cast<std::chrono::seconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

Broker::Broker(std::string archive_root, Options options)
    : index_(std::move(archive_root)), options_(std::move(options)) {
  if (!options_.clock) options_.clock = WallClock;
  (void)index_.Rescan();
}

bool Broker::Matches(const BrokerQuery& q, const DumpFileMeta& f) const {
  if (!q.projects.empty() &&
      std::find(q.projects.begin(), q.projects.end(), f.project) ==
          q.projects.end())
    return false;
  if (!q.collectors.empty() &&
      std::find(q.collectors.begin(), q.collectors.end(), f.collector) ==
          q.collectors.end())
    return false;
  if (!q.types.empty() &&
      std::find(q.types.begin(), q.types.end(), f.type) == q.types.end())
    return false;
  return q.interval.overlaps(f.start, f.end());
}

std::string Broker::Rewrite(const std::string& path) {
  if (options_.mirrors.empty()) return path;
  // Round-robin across mirrors: swap the archive root for a mirror root.
  const std::string& mirror = options_.mirrors[mirror_rr_++ %
                                               options_.mirrors.size()];
  if (StartsWith(path, index_.root()))
    return mirror + path.substr(index_.root().size());
  return path;
}

BrokerResponse Broker::Query(const BrokerQuery& query, Timestamp cursor) {
  ++queries_served_;
  BrokerResponse resp;
  const Timestamp now = options_.clock();
  const bool live = query.interval.live();
  const bool first = cursor <= query.interval.start;
  if (first) cursor = query.interval.start;

  const Timestamp window_end = cursor + options_.window;

  // In-window candidates. The first response also admits files starting
  // before the cursor (a covering RIB dump).
  std::vector<const DumpFileMeta*> candidates;
  bool saw_future_file = false;  // matching data beyond this window
  for (const auto& f : index_.files()) {
    if (!Matches(query, f)) continue;
    bool in_window =
        first ? f.start < window_end
              : (f.start >= cursor && f.start < window_end);
    if (!in_window) {
      if (f.start >= window_end) saw_future_file = true;
      continue;
    }
    candidates.push_back(&f);
  }

  if (!live) {
    for (const auto* f : candidates) resp.files.push_back(*f);
    for (auto& f : resp.files) f.path = Rewrite(f.path);
    std::sort(resp.files.begin(), resp.files.end());
    resp.next_cursor = window_end;
    if (resp.files.empty() && !saw_future_file &&
        window_end >= query.interval.end) {
      resp.exhausted = true;
    }
    return resp;
  }

  // Live mode: dumps publish out of order across collectors (a RIB that
  // takes hours to appear must not block the 5-minute updates dumps of
  // the other collectors). Each (collector, type) track keeps its own
  // publication frontier: files behind the track's earliest unpublished
  // file are served; later ones wait. Because the cursor can move back to
  // the earliest frontier, clients deduplicate served files by path.
  std::map<std::tuple<std::string, std::string, DumpType>, Timestamp>
      frontier;
  for (const auto* f : candidates) {
    if (f->publish_time <= now) continue;
    auto key = std::make_tuple(f->project, f->collector, f->type);
    auto it = frontier.find(key);
    if (it == frontier.end() || f->start < it->second) frontier[key] = f->start;
  }
  std::optional<Timestamp> min_frontier;
  for (const auto& [key, start] : frontier) {
    if (!min_frontier || start < *min_frontier) min_frontier = start;
  }

  for (const auto* f : candidates) {
    if (f->publish_time > now) continue;
    auto key = std::make_tuple(f->project, f->collector, f->type);
    auto it = frontier.find(key);
    if (it != frontier.end() && f->start >= it->second) continue;
    resp.files.push_back(*f);
  }
  for (auto& f : resp.files) f.path = Rewrite(f.path);
  std::sort(resp.files.begin(), resp.files.end());

  if (!resp.files.empty()) {
    resp.next_cursor = min_frontier ? std::min(window_end, *min_frontier)
                                    : window_end;
    return resp;
  }
  if (min_frontier) {
    // Data exists in this window but is not published yet: poll, then
    // retry from the frontier.
    resp.retry_later = true;
    resp.next_cursor = std::min(cursor, *min_frontier);
    return resp;
  }
  if (saw_future_file) {
    // Window empty but newer data exists: advance.
    resp.next_cursor = window_end;
    return resp;
  }
  // Nothing at all yet: poll and retry the same window.
  resp.retry_later = true;
  resp.next_cursor = cursor;
  return resp;
}

}  // namespace bgps::broker
