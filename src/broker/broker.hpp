// BGPStream Broker — the meta-data provider (paper §3.2).
//
// The real Broker is a web service backed by SQL that continuously scrapes
// RouteViews / RIPE RIS, answers windowed queries ("which dump files match
// projects/collectors/types and overlap this interval?") and supports live
// processing by letting clients poll for files published after their last
// query. This in-process implementation preserves that contract:
//
//  * response windowing / overload protection — at most `window` seconds of
//    data (default 2 h, like the real broker) per response;
//  * load balancing — round-robin over mirror roots when rewriting paths;
//  * live support — files are visible only once their publish_time has
//    passed the broker clock (wall or virtual), and Rescan() discovers
//    newly written files like the scraper does;
//  * client-pull — the library alternates Query() and dump reads
//    (paper §3.3.2), so no input buffering is needed.
#pragma once

#include <functional>
#include <optional>

#include "broker/archive.hpp"

namespace bgps::broker {

struct BrokerQuery {
  std::vector<std::string> projects;    // empty = all
  std::vector<std::string> collectors;  // empty = all
  std::vector<DumpType> types;          // empty = both
  TimeInterval interval;                // end == kLiveEnd for live mode
};

struct BrokerResponse {
  std::vector<DumpFileMeta> files;  // sorted by (start, project, collector)
  // Cursor to pass to the next Query() call.
  Timestamp next_cursor = 0;
  // True if no further data can ever match (historical stream exhausted).
  bool exhausted = false;
  // Live only: true when the client should poll again later (data may still
  // be produced but nothing new is published yet).
  bool retry_later = false;
};

// Injectable clock so the simulator and tests can run virtual time.
using Clock = std::function<Timestamp()>;
Timestamp WallClock();

struct BrokerOptions {
  Timestamp window = 2 * 3600;  // max seconds of data per response
  Clock clock;                  // defaults to wall clock
  std::vector<std::string> mirrors;  // alternative roots (load balancing)
};

class Broker {
 public:
  using Options = BrokerOptions;

  explicit Broker(std::string archive_root, Options options = {});

  // Re-scrapes the archive (live mode calls this before each poll).
  Status Rescan() { return index_.Rescan(); }

  const ArchiveIndex& index() const { return index_; }

  // Returns dump files matching `query` whose interval overlaps
  // [cursor, cursor + window), where cursor starts at query.interval.start
  // (use response.next_cursor for follow-ups). RIB dumps that *start*
  // before the cursor but overlap the query interval are included in the
  // first response so a stream can bootstrap from the covering RIB.
  BrokerResponse Query(const BrokerQuery& query, Timestamp cursor);

  size_t queries_served() const { return queries_served_; }

 private:
  bool Matches(const BrokerQuery& q, const DumpFileMeta& f) const;
  std::string Rewrite(const std::string& path);

  ArchiveIndex index_;
  Options options_;
  size_t queries_served_ = 0;
  size_t mirror_rr_ = 0;
};

}  // namespace bgps::broker
