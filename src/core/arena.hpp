// core::Arena — the per-dump bump arena of the decode hot path.
//
// The allocator itself lives in util (src/util/arena.hpp) so the bgp and
// mrt layers below core can use it for attribute interning; this header
// re-exports it under the core namespace where the dump/prefetch layer
// that owns arena lifetimes (DumpReader, DecodedDump, ChunkedFile) lives.
//
// Lifetime rule: everything an Arena hands out dies with the arena. The
// decode path ties one arena to each DumpReader (whole-file and chunked
// decode both construct one per dump file), and nothing allocated from it
// escapes into emitted Records — records are self-contained values, so
// public iteration semantics are unchanged. See ARCHITECTURE.md
// ("Arena + zero-copy decode").
#pragma once

#include "util/arena.hpp"

namespace bgps::core {

using bgps::Arena;
using bgps::InternedString;

}  // namespace bgps::core
