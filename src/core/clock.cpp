#include "core/clock.hpp"

#include <thread>

namespace bgps::core {

AcceleratedClock::AcceleratedClock(double speedup, SleepFn sleep)
    : speedup_(speedup > 0 ? speedup : 1.0),
      sleep_(std::move(sleep)),
      wall0_(std::chrono::steady_clock::now()) {}

int64_t AcceleratedClock::NowMicros() {
  std::lock_guard<std::mutex> lock(mu_);
  auto wall_us = std::chrono::duration_cast<std::chrono::microseconds>(
                     std::chrono::steady_clock::now() - wall0_)
                     .count();
  int64_t derived = virtual0_ + int64_t(double(wall_us) * speedup_);
  return derived > virtual_now_ ? derived : virtual_now_;
}

void AcceleratedClock::SleepUntilMicros(int64_t t) {
  std::chrono::steady_clock::time_point wall_target;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (t <= virtual_now_) return;
    virtual_now_ = t;
    wall_target = wall0_ + std::chrono::microseconds(int64_t(
                               double(t - virtual0_) / speedup_));
  }
  if (sleep_) {
    auto now = std::chrono::steady_clock::now();
    auto owed = wall_target > now
                    ? std::chrono::duration_cast<std::chrono::microseconds>(
                          wall_target - now)
                    : std::chrono::microseconds(0);
    sleep_(owed);
    return;
  }
  std::this_thread::sleep_until(wall_target);
}

void AcceleratedClock::Anchor(int64_t t) {
  std::lock_guard<std::mutex> lock(mu_);
  wall0_ = std::chrono::steady_clock::now();
  virtual0_ = t;
  if (t > virtual_now_) virtual_now_ = t;
}

}  // namespace bgps::core
