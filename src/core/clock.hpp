// Replay clocks for the live ingestion tier.
//
// A live source replays archived or simulated data as if it were
// arriving from a BMP/exabgp session. Pacing runs against a ReplayClock
// in *virtual microseconds* (MRT timestamps scaled by 1e6), so the same
// replay driver serves three regimes:
//   * AcceleratedClock(1.0)   — real-time replay (virtual == wall);
//   * AcceleratedClock(N)     — N× wall speed (a 2 h corpus in 2 h / N);
//   * AcceleratedClock(N, fake_sleep) or ManualClock — deterministic
//     tests: pacing arithmetic runs, wall time does not, and the emitted
//     record sequence must be identical at any speed-up.
//
// The speed-up lives in the clock, not the replay driver, so every
// consumer of SleepUntilMicros is speed-up-agnostic by construction.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>

namespace bgps::core {

class ReplayClock {
 public:
  virtual ~ReplayClock() = default;

  // Current virtual time, in microseconds. Monotone.
  virtual int64_t NowMicros() = 0;

  // Blocks (by the clock's own policy) until virtual time reaches `t`;
  // a target at or before NowMicros() returns immediately. Virtual time
  // never moves backwards.
  virtual void SleepUntilMicros(int64_t t) = 0;

  // Re-anchors virtual time to `t` at the current wall instant —
  // called once by a replay driver with the first record's timestamp,
  // so a corpus that starts in 2016 does not "sleep" fifty years.
  virtual void Anchor(int64_t t) = 0;
};

// Wall-clock-backed virtual time running `speedup`× faster than wall
// time. The wall schedule is absolute (anchor + delta/speedup via
// sleep_until), so per-record sleep overshoot does not accumulate:
// record k's arrival error is bounded by one scheduler quantum
// regardless of how many records preceded it.
//
// `sleep` overrides the wall-sleep operation (the duration still owed
// when the sleep is issued; never negative). Tests inject a no-op or an
// accumulator to run the pacing arithmetic deterministically without
// consuming wall time; the default performs a real
// std::this_thread::sleep_until against the absolute schedule.
class AcceleratedClock : public ReplayClock {
 public:
  using SleepFn = std::function<void(std::chrono::microseconds)>;

  explicit AcceleratedClock(double speedup = 1.0, SleepFn sleep = {});

  int64_t NowMicros() override;
  void SleepUntilMicros(int64_t t) override;
  void Anchor(int64_t t) override;

  double speedup() const { return speedup_; }

 private:
  const double speedup_;
  const SleepFn sleep_;  // empty = real absolute-schedule sleep
  mutable std::mutex mu_;
  std::chrono::steady_clock::time_point wall0_;
  int64_t virtual0_ = 0;
  // High-watermark of slept-to targets: with an injected sleeper wall
  // time does not advance, so NowMicros() reports max(anchor-derived
  // time, last target) to stay monotone in both regimes.
  int64_t virtual_now_ = 0;
};

// Fully deterministic test clock: SleepUntilMicros just advances the
// virtual now (no wall time passes, ever), Advance() moves it manually.
// Thread-safe; virtual time is monotone.
class ManualClock : public ReplayClock {
 public:
  explicit ManualClock(int64_t start_micros = 0) : now_(start_micros) {}

  int64_t NowMicros() override { return now_.load(std::memory_order_acquire); }
  void SleepUntilMicros(int64_t t) override { AdvanceTo(t); }
  void Anchor(int64_t t) override { AdvanceTo(t); }
  void Advance(int64_t micros) {
    AdvanceTo(now_.load(std::memory_order_acquire) + micros);
  }

 private:
  void AdvanceTo(int64_t t) {
    int64_t cur = now_.load(std::memory_order_acquire);
    while (t > cur &&
           !now_.compare_exchange_weak(cur, t, std::memory_order_acq_rel)) {
    }
  }

  std::atomic<int64_t> now_;
};

}  // namespace bgps::core
