#include "core/data_interface.hpp"

#include <charconv>
#include <fstream>

#include "util/strings.hpp"

namespace bgps::core {

DataBatch BrokerDataInterface::NextBatch(const FilterSet& filters) {
  broker::BrokerQuery query;
  query.projects = filters.projects;
  query.collectors = filters.collectors;
  query.types = filters.dump_types;
  query.interval = filters.interval;

  DataBatch batch;
  // Walk windows until one yields files, ends the stream, or asks for a
  // poll — each Query is one lightweight HTTP round-trip in the real
  // system, so looping over empty windows here mirrors its behaviour.
  Timestamp cursor = cursor_.value_or(filters.interval.start);
  while (true) {
    broker::BrokerResponse resp = broker_->Query(query, cursor);
    cursor = resp.next_cursor;
    if (!resp.files.empty()) {
      // Live mode can legitimately re-offer files behind a publication
      // frontier (see Broker::Query); serve each dump exactly once.
      std::vector<broker::DumpFileMeta> fresh;
      for (auto& f : resp.files) {
        if (served_.insert(f.path).second) fresh.push_back(std::move(f));
      }
      if (!fresh.empty()) {
        batch.files = std::move(fresh);
        break;
      }
      if (filters.interval.live()) {
        // Everything on offer was already served: wait for new data.
        batch.retry_later = true;
        break;
      }
      continue;
    }
    if (resp.retry_later) {
      batch.retry_later = true;
      break;
    }
    if (resp.exhausted) {
      batch.end_of_stream = true;
      break;
    }
  }
  cursor_ = cursor;
  return batch;
}

SingleFileInterface::SingleFileInterface(std::string path, DumpType type,
                                         std::string project,
                                         std::string collector) {
  meta_.path = std::move(path);
  meta_.type = type;
  meta_.project = std::move(project);
  meta_.collector = std::move(collector);
  meta_.start = 0;
  meta_.duration = 0;
}

DataBatch SingleFileInterface::NextBatch(const FilterSet& filters) {
  DataBatch batch;
  if (consumed_) {
    batch.end_of_stream = true;
    return batch;
  }
  consumed_ = true;
  if (filters.MatchesMeta(meta_.project, meta_.collector, meta_.type)) {
    batch.files.push_back(meta_);
  } else {
    batch.end_of_stream = true;
  }
  return batch;
}

CsvFileInterface::CsvFileInterface(const std::string& csv_path) {
  std::ifstream in(csv_path);
  if (!in.is_open()) {
    status_ = IoError("cannot open CSV index " + csv_path);
    return;
  }
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    auto cols = SplitString(line, ',');
    if (cols.size() != 6) continue;
    broker::DumpFileMeta meta;
    meta.project = cols[0];
    meta.collector = cols[1];
    if (cols[2] == "ribs") meta.type = DumpType::Rib;
    else if (cols[2] == "updates") meta.type = DumpType::Updates;
    else continue;
    auto parse_ts = [](const std::string& s, Timestamp* out) {
      int64_t v = 0;
      auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
      if (ec != std::errc() || p != s.data() + s.size()) return false;
      *out = v;
      return true;
    };
    if (!parse_ts(cols[3], &meta.start) || !parse_ts(cols[4], &meta.duration))
      continue;
    meta.path = cols[5];
    files_.push_back(std::move(meta));
  }
  std::sort(files_.begin(), files_.end());
}

DataBatch CsvFileInterface::NextBatch(const FilterSet& filters) {
  DataBatch batch;
  // Serve all matching files in one batch: CSV indexes are small local
  // collections, windowing adds nothing.
  while (next_ < files_.size()) {
    const auto& f = files_[next_++];
    if (!filters.MatchesMeta(f.project, f.collector, f.type)) continue;
    if (!filters.interval.overlaps(f.start, f.end())) continue;
    batch.files.push_back(f);
  }
  if (batch.files.empty()) batch.end_of_stream = true;
  return batch;
}

void LiveFeedInterface::Push(broker::DumpFileMeta meta) {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return;
  queue_.push_back(std::move(meta));
  ++published_;
}

void LiveFeedInterface::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
}

bool LiveFeedInterface::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

size_t LiveFeedInterface::published() const {
  std::lock_guard<std::mutex> lock(mu_);
  return published_;
}

DataBatch LiveFeedInterface::NextBatch(const FilterSet&) {
  DataBatch batch;
  std::lock_guard<std::mutex> lock(mu_);
  if (!queue_.empty()) {
    batch.files.push_back(std::move(queue_.front()));
    queue_.pop_front();
    return batch;
  }
  if (closed_) {
    batch.end_of_stream = true;
  } else {
    batch.retry_later = true;
  }
  return batch;
}

}  // namespace bgps::core
