// Data interfaces (paper §3.2): how the stream learns which dump files to
// read. The Broker interface is primary; Single-file and CSV cover local
// analysis. (The real release also ships an SQLite interface; CSV covers
// the same "local index" use case here — see DESIGN.md.)
#pragma once

#include <deque>
#include <mutex>
#include <unordered_set>

#include "broker/broker.hpp"
#include "core/filter.hpp"

namespace bgps::core {

// One batch of dump files to merge, pulled on demand (client-pull model,
// §3.3.2: data is only retrieved when the user is ready to process it).
struct DataBatch {
  std::vector<broker::DumpFileMeta> files;
  bool end_of_stream = false;  // no further batches will ever come
  bool retry_later = false;    // live mode: poll again after a delay
};

class DataInterface {
 public:
  virtual ~DataInterface() = default;

  // Applies meta filters + interval and returns the next batch.
  virtual DataBatch NextBatch(const FilterSet& filters) = 0;

  // Live-mode hook invoked before a retry poll (re-scan the archive).
  virtual void Refresh() {}
};

// Primary interface: windowed queries against a Broker (paper §3.2).
class BrokerDataInterface : public DataInterface {
 public:
  explicit BrokerDataInterface(broker::Broker* broker) : broker_(broker) {}

  DataBatch NextBatch(const FilterSet& filters) override;
  void Refresh() override { (void)broker_->Rescan(); }

 private:
  broker::Broker* broker_;
  std::optional<Timestamp> cursor_;
  std::unordered_set<std::string> served_;  // dump paths already returned
};

// Single local file, with explicit provenance annotations.
class SingleFileInterface : public DataInterface {
 public:
  SingleFileInterface(std::string path, DumpType type,
                      std::string project = "singlefile",
                      std::string collector = "singlefile");

  DataBatch NextBatch(const FilterSet& filters) override;

 private:
  broker::DumpFileMeta meta_;
  bool consumed_ = false;
};

// CSV index of local files. Line format:
//   project,collector,type(ribs|updates),start,duration,path
class CsvFileInterface : public DataInterface {
 public:
  // Parse errors are reported once via status(); malformed lines are
  // skipped.
  explicit CsvFileInterface(const std::string& csv_path);

  Status status() const { return status_; }
  DataBatch NextBatch(const FilterSet& filters) override;

 private:
  std::vector<broker::DumpFileMeta> files_;
  size_t next_ = 0;
  Status status_;
};

// Live feed: a thread-safe FIFO of dump files published by an in-process
// ingestion source (pool::LiveSource spools decoded live traffic into
// micro-dumps and Push()es each one here) and consumed by a live-mode
// BgpStream. Serves exactly ONE file per NextBatch, so the stream merges
// publications strictly in publication order — the emitted record
// sequence is the ingestion sequence, deterministically, with no
// cross-file timestamp reordering between micro-dumps. While the feed is
// open and drained, batches carry retry_later (the stream's live poll
// loop); after Close() the drained feed reports end_of_stream. Meta
// filters are the publisher's concern (a live session is already one
// project/collector); record-level filters still apply downstream.
class LiveFeedInterface : public DataInterface {
 public:
  // Publishes one dump file to the consumer. Push after Close is a
  // programming error and is dropped (the stream may already have ended).
  void Push(broker::DumpFileMeta meta);

  // No further Push() will come; the stream ends once the queue drains.
  // Idempotent.
  void Close();

  bool closed() const;
  size_t published() const;  // files pushed so far (stats/tests)

  DataBatch NextBatch(const FilterSet& filters) override;

 private:
  mutable std::mutex mu_;
  std::deque<broker::DumpFileMeta> queue_;
  bool closed_ = false;
  size_t published_ = 0;
};

}  // namespace bgps::core
