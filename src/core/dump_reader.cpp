#include "core/dump_reader.hpp"

namespace bgps::core {

DumpReader::DumpReader(broker::DumpFileMeta meta) : meta_(std::move(meta)) {
  // Intern once per dump: every record then stamps provenance with a
  // pointer copy instead of a per-record string copy.
  project_ = meta_.project;
  collector_ = meta_.collector;
  Status st = reader_.Open(meta_.path);
  if (!st.ok()) open_failed_ = true;
}

DumpReader::DumpReader(broker::DumpFileMeta meta, const Checkpoint& resume)
    : meta_(std::move(meta)) {
  project_ = meta_.project;
  collector_ = meta_.collector;
  // Precondition: resume.valid (see the header). The sole caller —
  // FillChunked's reclaim resume — branches to the plain constructor
  // plus Skip() itself for checkpoints with no byte position.
  // O(1): land directly on the checkpointed frame. The records in
  // front of it are never read again.
  Status st = reader_.Open(meta_.path, resume.byte_offset);
  if (!st.ok()) {
    if (resume.index > 0) {
      // The dump vanished mid-stream (archive rotation): end silently,
      // matching the Skip-fallback path (skipped < consumed ⇒
      // exhausted) instead of injecting a CorruptedDump record into a
      // sequence whose open already succeeded once.
      done_ = true;
    } else {
      open_failed_ = true;  // nothing consumed yet: behave like a fresh open
    }
  }
  peer_index_ = resume.peer_index;
  produced_ = resume.index;
  started_ = resume.index > 0;
}

Record DumpReader::MakeRecord() const {
  Record rec;
  rec.project = project_;
  rec.collector = collector_;
  rec.dump_type = meta_.type;
  rec.dump_time = meta_.start;
  rec.timestamp = meta_.start;
  return rec;
}

std::optional<Record> DumpReader::Produce() {
  // Capture the record's resume point before framing moves the file
  // position: its byte offset, index, and the peer-index table in
  // effect before it (re-producing a PEER_INDEX_TABLE record from its
  // own checkpoint simply re-ingests the same table).
  lookahead_cp_ = {/*valid=*/!open_failed_, reader_.offset(), produced_,
                   peer_index_};
  if (open_failed_) {
    if (emitted_open_failure_) return std::nullopt;
    emitted_open_failure_ = true;
    ++produced_;
    Record rec = MakeRecord();
    rec.status = RecordStatus::CorruptedDump;
    return rec;
  }
  auto raw = reader_.Next();
  if (!raw.ok()) {
    if (raw.status().code() == StatusCode::EndOfStream) return std::nullopt;
    // Framing broke: emit one CorruptedDump record; reader will then report
    // EndOfStream (no resync possible in MRT).
    ++produced_;
    Record rec = MakeRecord();
    rec.status = RecordStatus::CorruptedDump;
    return rec;
  }

  ++produced_;
  Record rec = MakeRecord();
  rec.timestamp = raw->timestamp;
  auto msg = mrt::DecodeRecord(*raw, &decode_ctx_);
  if (!msg.ok()) {
    rec.status = msg.status().code() == StatusCode::Unsupported
                     ? RecordStatus::Unsupported
                     : RecordStatus::CorruptedRecord;
    return rec;
  }
  rec.msg = std::move(*msg);
  if (rec.msg.is_peer_index()) {
    peer_index_ = std::make_shared<mrt::PeerIndexTable>(
        std::get<mrt::PeerIndexTable>(rec.msg.body));
  }
  rec.peer_index = peer_index_;
  return rec;
}

std::optional<Timestamp> DumpReader::PeekTimestamp() {
  if (done_) return std::nullopt;
  if (!lookahead_) {
    lookahead_ = Produce();
    if (!lookahead_) {
      done_ = true;
      return std::nullopt;
    }
  }
  return lookahead_->timestamp;
}

size_t DumpReader::Skip(size_t n) {
  size_t skipped = 0;
  while (skipped < n && !done_) {
    if (lookahead_) {
      lookahead_.reset();
      started_ = true;
      ++skipped;
      continue;
    }
    // Mirror Produce()'s record cadence without the BGP decode.
    if (open_failed_) {
      if (emitted_open_failure_) {
        done_ = true;
        break;
      }
      emitted_open_failure_ = true;  // the single CorruptedDump record
      started_ = true;
      ++produced_;
      ++skipped;
      continue;
    }
    auto raw = reader_.Next();
    if (!raw.ok()) {
      if (raw.status().code() == StatusCode::EndOfStream) {
        done_ = true;
        break;
      }
      started_ = true;  // the one CorruptedDump record framing yields
      ++produced_;
      ++skipped;
      continue;
    }
    if (raw->type == uint16_t(mrt::MrtType::TableDumpV2) &&
        raw->subtype == uint16_t(mrt::TableDumpV2Subtype::PeerIndexTable)) {
      // RIB records after the skip still need the table to decompose.
      auto msg = mrt::DecodeRecord(*raw);
      if (msg.ok() && msg->is_peer_index()) {
        peer_index_ = std::make_shared<mrt::PeerIndexTable>(
            std::get<mrt::PeerIndexTable>(msg->body));
      }
    }
    started_ = true;
    ++produced_;
    ++skipped;
  }
  return skipped;
}

std::optional<Record> DumpReader::Next() {
  if (done_) return std::nullopt;
  if (!lookahead_) {
    lookahead_ = Produce();
    if (!lookahead_) {
      done_ = true;
      return std::nullopt;
    }
  }
  Record out = std::move(*lookahead_);
  last_cp_ = lookahead_cp_;  // before Produce overwrites it
  lookahead_ = Produce();
  if (!started_) {
    out.position = DumpPosition::Start;
    started_ = true;
  }
  if (!lookahead_) {
    done_ = true;
    // A single-record dump is both Start and End; End wins so users can
    // still collate RIB dumps (the RT plugin keys on End to commit).
    out.position = DumpPosition::End;
  }
  return out;
}

void AttachPrefetchedElems(Record& rec, const DumpDecodeOptions& opt,
                           ElemArena* arena) {
  if (!opt.extract_elems) return;
  // Records the record-level filters will drop never reach Elems();
  // don't pay for their decomposition.
  if (opt.filters != nullptr && !opt.filters->MatchesRecord(rec)) return;
  std::vector<Elem> elems = arena ? arena->NewVector() : std::vector<Elem>();
  ExtractElemsInto(rec, elems);
  // Note the pre-filter count: that is what NewVector's reserve must
  // cover, since extraction happens before the elem filters prune.
  if (arena) arena->Note(elems.size());
  if (opt.filters != nullptr) opt.filters->FilterElemsInPlace(elems);
  rec.prefetched_elems = std::move(elems);
}

DecodedDump DecodeDumpFile(const broker::DumpFileMeta& meta,
                           const DumpDecodeOptions& opt) {
  if (opt.file_open_hook) opt.file_open_hook(meta);
  DecodedDump out;
  out.meta = meta;
  DumpReader reader(meta);
  ElemArena arena;
  while (auto rec = reader.Next()) {
    AttachPrefetchedElems(*rec, opt, &arena);
    out.records.push_back(std::move(*rec));
  }
  return out;
}

DecodedDump DecodeDumpFile(const broker::DumpFileMeta& meta,
                           const FileOpenHook& hook) {
  DumpDecodeOptions opt;
  opt.file_open_hook = hook;
  return DecodeDumpFile(meta, opt);
}

}  // namespace bgps::core
