// DumpReader: streams annotated Records out of one dump file.
//
// Responsibilities (paper §3.3.3):
//  * track the PEER_INDEX_TABLE of a TABLE_DUMP_V2 file so RIB records can
//    be decomposed into per-VP elems;
//  * mark the first/last record of the dump (DumpPosition) via one-record
//    lookahead;
//  * convert framing/decoding failures into Corrupted*/Unsupported records
//    instead of errors.
#pragma once

#include <functional>
#include <memory>

#include "core/arena.hpp"
#include "core/filter.hpp"
#include "core/record.hpp"
#include "mrt/file.hpp"

namespace bgps::core {

// Invoked (on the decoding thread) just before a dump file is opened.
// Observability hook for stats/logging; the throughput bench also uses it
// to emulate remote-archive fetch latency, and tests use it to watch the
// prefetch stage work ahead of the consumer.
using FileOpenHook = std::function<void(const broker::DumpFileMeta&)>;

class DumpReader {
 public:
  // An O(1) resume point: everything needed to reconstruct a reader
  // positioned exactly before a given record — without re-reading (or
  // re-Skip()ping) the records in front of it. Captured per record via
  // last_checkpoint(); consumed by the resuming constructor below.
  // Idle-tenant reclaim stores the checkpoint of the first dropped
  // record so resume seeks instead of re-framing the consumed prefix.
  struct Checkpoint {
    // False when the record had no byte position (the synthesized
    // open-failure record); resume then falls back to Skip().
    bool valid = false;
    uint64_t byte_offset = 0;  // frame position of the record
    size_t index = 0;          // 0-based record index in the dump
    // Peer index table in effect *before* the record (RIB dumps); the
    // table is immutable once built, so sharing it is free.
    std::shared_ptr<const mrt::PeerIndexTable> peer_index;
  };

  // `meta` identifies the dump; opening failures yield a single
  // CorruptedDump record (the paper marks a record not-valid "when the BGP
  // dump file cannot be opened").
  explicit DumpReader(broker::DumpFileMeta meta);

  // Resumes at `resume` — precondition: `resume.valid` (callers handle
  // invalid checkpoints with the plain constructor + Skip()). Seeks
  // straight to the checkpointed frame, restores the peer-index table,
  // and continues producing record `resume.index` onward — the exact
  // sequence the original reader would have produced, Start/End
  // positions included.
  DumpReader(broker::DumpFileMeta meta, const Checkpoint& resume);

  const broker::DumpFileMeta& meta() const { return meta_; }

  // Timestamp of the next record without consuming it; nullopt at end.
  std::optional<Timestamp> PeekTimestamp();

  // Next record, or nullopt when the dump is exhausted.
  std::optional<Record> Next();

  // Skips the next `n` records without decoding their BGP payloads —
  // the resume path of idle-tenant reclaim, where the consumer already
  // saw them. Each raw framing unit counts as one record, exactly
  // Next()'s cadence (including the CorruptedDump / CorruptedRecord /
  // Unsupported and open-failure records), and PEER_INDEX_TABLE
  // records are still ingested so RIB decomposition after the skip
  // sees its table. Returns how many were skipped; < n means the dump
  // ended early.
  size_t Skip(size_t n);

  // Resume point of the record most recently returned by Next():
  // feeding it to the resuming constructor yields a reader that
  // re-produces that record and everything after it. Meaningless before
  // the first Next().
  const Checkpoint& last_checkpoint() const { return last_cp_; }

  // Raw frames read from the file so far — the resume path's read
  // accounting: a seek-resumed reader frames only what it produces,
  // a Skip-resumed one re-frames the whole consumed prefix.
  size_t frames_read() const { return reader_.records_read(); }

  // Peer index table seen in this file (RIB dumps), for elem extraction.
  const mrt::PeerIndexTable* peer_index() const { return peer_index_.get(); }

  // Per-dump AS-path intern cache stats (tests/benches: hit rate shows
  // how much path decode work the arena pipeline elides).
  const bgp::AsPathCache& aspath_cache() const { return aspath_cache_; }

 private:
  // Produces the next record from the file, ignoring lookahead.
  std::optional<Record> Produce();
  Record MakeRecord() const;

  broker::DumpFileMeta meta_;
  mrt::MrtFileReader reader_;
  // Decode arena, the AS-path intern cache it backs, and the interned
  // provenance strings — all per dump, all freed together when the
  // reader (and therefore the dump) is done. Records never point into
  // the arena; they carry self-contained values (see core/arena.hpp).
  Arena arena_;
  bgp::AsPathCache aspath_cache_{&arena_};
  bgp::AttrDecodeCtx decode_ctx_{&aspath_cache_};
  InternedString project_;
  InternedString collector_;
  std::shared_ptr<const mrt::PeerIndexTable> peer_index_;
  std::optional<Record> lookahead_;
  Checkpoint lookahead_cp_;  // resume point of the lookahead record
  Checkpoint last_cp_;       // resume point of the last Next() record
  size_t produced_ = 0;      // records produced from the file so far
                             // (= the next record's 0-based index)
  bool started_ = false;
  bool done_ = false;
  bool open_failed_ = false;
  bool emitted_open_failure_ = false;
};

// One dump file fully decoded into memory: the output unit of the
// asynchronous prefetching decode stage. Records are in file order
// (timestamp-monotonic within a well-formed dump).
struct DecodedDump {
  broker::DumpFileMeta meta;
  std::vector<Record> records;
};

// How records are produced on a decoding thread — shared by the
// whole-file (DecodeDumpFile) and chunked (PrefetchDecoder) paths.
struct DumpDecodeOptions {
  // Invoked just before the dump file is opened.
  FileOpenHook file_open_hook;
  // Pre-extract elems on the decoding thread and stash them in
  // Record::prefetched_elems, so the consumer's Elems() call is a move.
  bool extract_elems = false;
  // Stream filters consulted during worker-side extraction (may be null
  // = keep all elems): records the record-level filters will discard
  // are skipped entirely, and the elem-level filters are applied to the
  // rest. Must outlive the decode and must not be mutated while
  // decoding runs; BgpStream guarantees both (filters are frozen at
  // Start()).
  const FilterSet* filters = nullptr;
};

// Flat elem arena for worker-side extraction: one per decode task (a
// whole-file decode or a chunked per-file stream). It primes each
// record's `prefetched_elems` vector with a capacity predicted from the
// decode-time elem counts seen so far in the same dump, so worker
// threads do one exact-size allocation per record instead of a
// growth-doubling sequence — cutting allocator traffic on the shared
// Executor. Not thread-safe: owned by the single task decoding a file.
class ElemArena {
 public:
  // An empty vector whose capacity is primed to the running mean elem
  // count (rounded up) of the records observed so far.
  std::vector<Elem> NewVector() {
    std::vector<Elem> v;
    if (records_ > 0) v.reserve((elems_ + records_ - 1) / records_);
    return v;
  }

  // Records the extraction (pre-filter) elem count of a filled vector —
  // the size the next reserve has to cover.
  void Note(size_t elems) {
    elems_ += elems;
    ++records_;
  }

 private:
  size_t elems_ = 0;
  size_t records_ = 0;
};

// Runs worker-side elem extraction + filtering on one record in place,
// per `opt`. No-op unless opt.extract_elems. `arena`, when given,
// primes and observes the per-record vector capacity.
void AttachPrefetchedElems(Record& rec, const DumpDecodeOptions& opt,
                           ElemArena* arena = nullptr);

// Opens and fully decodes `meta` (calling opt.file_open_hook first, if
// set). Produces exactly the record sequence a DumpReader would stream,
// including the Corrupted*/Unsupported records and Start/End positions.
DecodedDump DecodeDumpFile(const broker::DumpFileMeta& meta,
                           const DumpDecodeOptions& opt = {});

// Back-compat convenience overload (hook only).
DecodedDump DecodeDumpFile(const broker::DumpFileMeta& meta,
                           const FileOpenHook& hook);

}  // namespace bgps::core
