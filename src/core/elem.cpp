#include "core/elem.hpp"

#include "core/record.hpp"

namespace bgps::core {

const char* ElemTypeName(ElemType t) {
  switch (t) {
    case ElemType::RibEntry: return "R";
    case ElemType::Announcement: return "A";
    case ElemType::Withdrawal: return "W";
    case ElemType::PeerState: return "S";
  }
  return "?";
}

std::vector<Elem> ExtractElems(const Record& record) {
  std::vector<Elem> out;
  ExtractElemsInto(record, out);
  return out;
}

void ExtractElemsInto(const Record& record, std::vector<Elem>& out) {
  if (record.status != RecordStatus::Valid) return;
  const mrt::PeerIndexTable* peer_index = record.peer_index.get();

  if (record.msg.is_rib()) {
    const auto& rib = std::get<mrt::RibPrefix>(record.msg.body);
    if (peer_index == nullptr) return;  // PIT lost: cannot attribute VPs
    for (const auto& entry : rib.entries) {
      if (entry.peer_index >= peer_index->peers.size()) continue;
      const auto& peer = peer_index->peers[entry.peer_index];
      Elem e;
      e.type = ElemType::RibEntry;
      e.time = record.msg.timestamp;
      e.peer_address = peer.address;
      e.peer_asn = peer.asn;
      e.prefix = rib.prefix;
      e.as_path = entry.attrs.as_path;
      e.communities = entry.attrs.communities;
      if (entry.attrs.mp_reach) {
        e.next_hop = entry.attrs.mp_reach->next_hop;
      } else if (entry.attrs.next_hop) {
        e.next_hop = *entry.attrs.next_hop;
      }
      out.push_back(std::move(e));
    }
    return;
  }

  if (record.msg.is_message()) {
    const auto& msg = std::get<mrt::Bgp4mpMessage>(record.msg.body);
    if (msg.message_type != bgp::MessageType::Update) return;
    const auto& upd = msg.update;

    Elem base;
    base.time = record.msg.timestamp;
    base.peer_address = msg.peer_address;
    base.peer_asn = msg.peer_asn;

    // Withdrawals: plain IPv4 + MP_UNREACH.
    for (const auto& p : upd.withdrawn) {
      Elem e = base;
      e.type = ElemType::Withdrawal;
      e.prefix = p;
      out.push_back(std::move(e));
    }
    if (upd.attrs.mp_unreach) {
      for (const auto& p : upd.attrs.mp_unreach->withdrawn) {
        Elem e = base;
        e.type = ElemType::Withdrawal;
        e.prefix = p;
        out.push_back(std::move(e));
      }
    }

    // Announcements: plain IPv4 NLRI + MP_REACH, sharing the same path.
    base.type = ElemType::Announcement;
    base.as_path = upd.attrs.as_path;
    base.communities = upd.attrs.communities;
    for (const auto& p : upd.announced) {
      Elem e = base;
      e.prefix = p;
      if (upd.attrs.next_hop) e.next_hop = *upd.attrs.next_hop;
      out.push_back(std::move(e));
    }
    if (upd.attrs.mp_reach) {
      for (const auto& p : upd.attrs.mp_reach->nlri) {
        Elem e = base;
        e.prefix = p;
        e.next_hop = upd.attrs.mp_reach->next_hop;
        out.push_back(std::move(e));
      }
    }
    return;
  }

  if (record.msg.is_state_change()) {
    const auto& sc = std::get<mrt::Bgp4mpStateChange>(record.msg.body);
    Elem e;
    e.type = ElemType::PeerState;
    e.time = record.msg.timestamp;
    e.peer_address = sc.peer_address;
    e.peer_asn = sc.peer_asn;
    e.old_state = sc.old_state;
    e.new_state = sc.new_state;
    out.push_back(std::move(e));
    return;
  }

  // PeerIndexTable records carry no routing elements.
}

}  // namespace bgps::core
