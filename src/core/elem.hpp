// BGPStream elem (paper Table 1): the per-VP, per-prefix unit of
// information extracted from a record.
//
// An MRT record groups elements of the same type across VPs or prefixes
// (RIB records: one prefix, many VPs; update records: one VP, many
// prefixes sharing a path). ExtractElems() performs the decomposition of
// §3.3.3.
#pragma once

#include <vector>

#include "bgp/aspath.hpp"
#include "bgp/community.hpp"
#include "bgp/types.hpp"
#include "util/ip.hpp"
#include "util/time.hpp"

namespace bgps::core {

struct Record;  // core/record.hpp (which includes this header, not vice versa)

enum class ElemType : uint8_t {
  RibEntry,      // route from a RIB dump
  Announcement,
  Withdrawal,
  PeerState,     // FSM state message (RIPE RIS VPs)
};

const char* ElemTypeName(ElemType t);  // single-letter bgpdump code

struct Elem {
  ElemType type = ElemType::Announcement;
  Timestamp time = 0;             // timestamp of the MRT record
  IpAddress peer_address;         // IP address of the VP
  bgp::Asn peer_asn = 0;          // AS number of the VP
  // Conditionally populated (Table 1 footnote):
  Prefix prefix;                  // R, A, W
  IpAddress next_hop;             // R, A
  bgp::AsPath as_path;            // R, A
  bgp::Communities communities;   // R, A
  bgp::FsmState old_state = bgp::FsmState::Unknown;  // S
  bgp::FsmState new_state = bgp::FsmState::Unknown;  // S

  bool has_prefix() const {
    return type != ElemType::PeerState;
  }
};

// Decomposes a record into elems (uses record.peer_index to resolve RIB
// peer references). Invalid records produce no elems.
std::vector<Elem> ExtractElems(const Record& record);

// Appends the record's elems to `out` without clearing it. Lets decode
// workers extract into capacity-primed vectors (see ElemArena in
// core/dump_reader.hpp) instead of growing a fresh one per record.
void ExtractElemsInto(const Record& record, std::vector<Elem>& out);

}  // namespace bgps::core
