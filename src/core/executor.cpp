#include "core/executor.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <limits>
#include <mutex>
#include <unordered_map>

namespace bgps::core {

namespace {
// Enqueue stamps order deadline-class dispatch. Urgent submissions take
// the low band so every urgent task sorts ahead of every normal one;
// within a band, earlier submissions sort first.
constexpr uint64_t kNormalBand = uint64_t(1) << 63;

// Reclaim marks age at most once per this interval, however many
// contention signals arrive in it — so N waiters parking at once (or
// several hooks fanning one event out) cannot collapse a tenant's
// idle_rounds patience window. Matches the governor's re-signal
// cadence: under stall, patience ≈ idle_rounds × this interval. A
// clock *read* only — the executor still never wakes on a timer.
constexpr std::chrono::milliseconds kReclaimAgeStep{10};
}  // namespace

// One tenant's strictly-FIFO queue. Guarded by SharedState::mu except
// the atomics, which NoteActivity writes lock-free from consumer
// threads.
struct Executor::Tenant::Queue {
  struct Task {
    std::function<void()> fn;
    uint64_t seq = 0;  // enqueue stamp (see kNormalBand)
  };

  std::deque<Task> tasks;
  size_t running = 0;  // tasks claimed by workers, not yet finished
  bool closed = false;
  std::condition_variable idle_cv;  // Tenant dtor waits for running == 0

  // Deficit-weighted round-robin: a visit of the dispatch cursor lets
  // the tenant drain up to `weight` tasks. `credit` is the remainder of
  // the current visit; it is only nonzero while the cursor is parked on
  // this queue.
  size_t weight = 1;
  size_t credit = 0;
  // Member of the deadline class of `weight`: visits claim the
  // earliest-stamped head across the class, not this queue's own head.
  bool deadline = false;

  size_t tasks_run = 0;  // per-tenant completion counter (stats)

  // Idle-reclaim policy (SetIdleReclaim). `last_activity` is the round
  // of the last NoteActivity; `reclaim_fired` keeps the callback from
  // re-firing until activity re-arms it.
  size_t idle_rounds = 0;  // 0 = no policy
  std::function<void()> reclaim_cb;
  std::atomic<size_t> last_activity{0};
  std::atomic<bool> reclaim_fired{false};
  // Monotonic NoteActivity counter — unlike last_activity (a round
  // stamp, frozen while the pool stalls) this distinguishes "popped
  // between two contention signals" from "paused", which is what the
  // waiter-driven mark/confirm reclaim keys on.
  std::atomic<uint64_t> activity_seq{0};
  // Mark/confirm state for RequestReclaimTick (guarded by mu): a first
  // signal snapshots activity_seq; each later signal that still finds
  // the snapshot unchanged ages the mark by one. The tenant only
  // becomes reclaimable once the mark's age reaches idle_rounds — the
  // contention re-signals stand in for dispatch rounds while the pool
  // is stalled, so the configured patience is honored in both clock
  // domains. Any activity resets the mark.
  bool reclaim_marked = false;
  uint64_t reclaim_mark_seq = 0;
  size_t reclaim_mark_age = 0;
};

// Shared between the Executor facade, the workers, and every Tenant —
// shared_ptr-owned so tenants stay valid no matter destruction order.
struct Executor::Tenant::SharedState {
  mutable std::mutex mu;
  std::condition_variable work_cv;  // workers: a task may be claimable
  std::vector<std::shared_ptr<Queue>> queues;  // registered tenants
  // Deadline tenants, keyed by weight (= class). Maintained by
  // CreateTenant / SetWeight / ~Tenant so a deadline claim scans only
  // its own class members — O(class) — instead of rescanning every
  // registered queue under the dispatch lock (O(tenants), which made
  // each claim of a small live class pay for every backfill tenant in
  // the process).
  std::unordered_map<size_t, std::vector<std::shared_ptr<Queue>>>
      deadline_classes;
  size_t rr = 0;  // round-robin cursor into `queues`
  uint64_t next_seq = 1;  // enqueue-stamp counter (both bands)
  size_t tasks_run = 0;
  size_t reclaim_policies = 0;  // queues with an idle-reclaim policy
  std::atomic<size_t> rounds{0};  // completed dispatch-cursor rotations
  // Last time a reclaim pass aged the marks (rate limit, see
  // kReclaimAgeStep).
  std::chrono::steady_clock::time_point last_reclaim_age_step{};
  bool stopping = false;

  // Caller holds mu.
  void AddToClassLocked(const std::shared_ptr<Queue>& q) {
    deadline_classes[q->weight].push_back(q);
  }

  // Caller holds mu.
  void RemoveFromClassLocked(const std::shared_ptr<Queue>& q) {
    auto it = deadline_classes.find(q->weight);
    if (it == deadline_classes.end()) return;
    auto& members = it->second;
    members.erase(std::remove(members.begin(), members.end(), q),
                  members.end());
    if (members.empty()) deadline_classes.erase(it);
  }

  // The waiter-driven reclaim trigger's mark/confirm pass (see the
  // header comment on Executor::RequestReclaimTick). Caller holds mu;
  // due callbacks are appended for the caller to invoke with the lock
  // released. Returns whether a tenant fired.
  bool ProcessReclaimTickLocked(std::vector<std::function<void()>>& due) {
    if (reclaim_policies == 0) return false;  // nothing to mark or fire
    // Age at most once per kReclaimAgeStep, no matter how many signals
    // a contention burst (several waiters parking at once, fanned-out
    // hooks) delivers: patience must mean wall-bounded intervals of
    // sustained contention, not a signal count an Acquire storm can
    // inflate.
    auto now = std::chrono::steady_clock::now();
    bool age_step = now - last_reclaim_age_step >= kReclaimAgeStep;
    if (age_step) last_reclaim_age_step = now;
    std::shared_ptr<Queue> pick;
    size_t pick_deadline = std::numeric_limits<size_t>::max();
    for (const auto& q : queues) {
      if (q->closed || q->idle_rounds == 0 || !q->reclaim_cb) continue;
      if (q->reclaim_fired.load(std::memory_order_relaxed)) continue;
      size_t seq = q->activity_seq.load(std::memory_order_relaxed);
      if (!q->reclaim_marked || q->reclaim_mark_seq != seq) {
        // Unmarked, or active since the mark: (re)mark — the
        // inactivity window restarts from this signal.
        q->reclaim_marked = true;
        q->reclaim_mark_seq = seq;
        q->reclaim_mark_age = 0;
        continue;
      }
      if (age_step) ++q->reclaim_mark_age;
      if (q->reclaim_mark_age < q->idle_rounds) continue;  // patience not met
      size_t deadline =
          q->last_activity.load(std::memory_order_relaxed) + q->idle_rounds;
      if (deadline < pick_deadline) {
        pick_deadline = deadline;
        pick = q;
      }
    }
    if (!pick) return false;
    pick->reclaim_fired.store(true, std::memory_order_relaxed);
    pick->reclaim_marked = false;
    due.push_back(pick->reclaim_cb);
    return true;
  }

  // Runs a mark/confirm pass inline on the signaling thread
  // (Executor::RequestReclaimTick). Inline — not deferred to an idle
  // worker — because the signal's whole purpose is to free budget for
  // a *blocked* Acquire: when every worker is itself parked in such an
  // Acquire (a reclaimed file's floor re-acquisition), there is no
  // idle worker left to defer to, and the waiter's own re-signal must
  // be able to peel the stalest tenant loose.
  void RequestReclaimTick() {
    std::vector<std::function<void()>> due;
    {
      std::lock_guard<std::mutex> lock(mu);
      ProcessReclaimTickLocked(due);
    }
    // Callbacks take their owners' locks: invoke with mu released.
    for (auto& cb : due) cb();
  }
};

Executor::Executor(Options options)
    : threads_(options.threads),
      state_(std::make_shared<Tenant::SharedState>()) {
  workers_.reserve(threads_);
  for (size_t i = 0; i < threads_; ++i) {
    workers_.emplace_back([st = state_] { WorkerLoop(st); });
  }
}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    state_->stopping = true;
  }
  state_->work_cv.notify_all();
  for (auto& w : workers_) w.join();
}

void Executor::WorkerLoop(const std::shared_ptr<Tenant::SharedState>& st) {
  // Due reclaim callbacks are collected under the lock and invoked with
  // it released (they take the callback owner's locks).
  std::vector<std::function<void()>> due_reclaims;
  auto collect_due_reclaims = [&st, &due_reclaims] {
    if (st->reclaim_policies == 0) return;  // keep the hot path scan-free
    size_t now = st->rounds.load(std::memory_order_relaxed);
    for (auto& q : st->queues) {
      if (q->closed || q->idle_rounds == 0 || !q->reclaim_cb) continue;
      if (q->reclaim_fired.load(std::memory_order_relaxed)) continue;
      size_t last = q->last_activity.load(std::memory_order_relaxed);
      if (now >= last && now - last >= q->idle_rounds) {
        q->reclaim_fired.store(true, std::memory_order_relaxed);
        due_reclaims.push_back(q->reclaim_cb);
      }
    }
  };

  // Invokes the collected callbacks with the lock released (they take
  // the callback owners' locks), then clears the batch.
  auto run_due_reclaims_unlocked = [&due_reclaims] {
    for (auto& cb : due_reclaims) cb();
    due_reclaims.clear();
  };
  auto drain_due_reclaims = [&](std::unique_lock<std::mutex>& lk) {
    if (due_reclaims.empty()) return;
    lk.unlock();
    run_due_reclaims_unlocked();
    lk.lock();
  };

  std::unique_lock<std::mutex> lock(st->mu);
  while (true) {
    if (st->stopping) return;
    // Deficit-weighted round-robin from the cursor: a tenant with tasks
    // anchors a visit draining up to `weight` of them (the cursor parks
    // on it until the visit's credit or work runs out), then the cursor
    // moves on. Empty queues are skipped and their visit ends. Deadline
    // anchors widen each claim to the earliest-stamped head across
    // every same-weight deadline queue.
    std::shared_ptr<Tenant::Queue> claimed;
    size_t n = st->queues.size();
    bool wrapped = false;
    for (size_t i = 0; i < n; ++i) {
      size_t idx = (st->rr + i) % n;
      auto& q = st->queues[idx];
      if (q->tasks.empty()) {
        q->credit = 0;  // skipped: any in-progress visit is over
        continue;
      }
      if (st->rr + i >= n) wrapped = true;  // the scan passed the end
      if (q->credit == 0) {
        q->credit = std::max<size_t>(1, q->weight);  // a new visit begins
      }
      // This claim's pool of candidate tasks: the anchor's own queue,
      // or — for a deadline anchor — its whole weight class, drained
      // earliest-deadline-first.
      std::shared_ptr<Tenant::Queue> pick = q;
      size_t pool_tasks = q->tasks.size();
      if (q->deadline) {
        // O(class): the per-weight registry lists exactly the class's
        // members — the claim no longer rescans every registered queue
        // under the dispatch lock.
        pool_tasks = 0;
        auto cls = st->deadline_classes.find(q->weight);
        if (cls != st->deadline_classes.end()) {
          for (const auto& c : cls->second) {
            if (c->tasks.empty()) continue;
            pool_tasks += c->tasks.size();
            if (c->tasks.front().seq < pick->tasks.front().seq) pick = c;
          }
        }
      }
      claimed = pick;
      --q->credit;
      if (q->credit > 0 && pool_tasks > 1) {
        st->rr = idx;  // park: the visit continues with the next claim
      } else {
        q->credit = 0;
        st->rr = (idx + 1) % n;
        if (idx + 1 == n) wrapped = true;  // advanced past the end
      }
      break;
    }
    if (wrapped) {
      st->rounds.fetch_add(1, std::memory_order_relaxed);
      collect_due_reclaims();
    }
    if (!claimed) {
      if (!due_reclaims.empty()) {
        drain_due_reclaims(lock);
        continue;
      }
      st->work_cv.wait(lock);
      continue;
    }
    std::function<void()> task = std::move(claimed->tasks.front().fn);
    claimed->tasks.pop_front();
    ++claimed->running;
    lock.unlock();
    run_due_reclaims_unlocked();
    task();
    lock.lock();
    --claimed->running;
    ++st->tasks_run;
    ++claimed->tasks_run;
    if (claimed->closed && claimed->running == 0) {
      claimed->idle_cv.notify_all();
    }
  }
}

std::unique_ptr<Executor::Tenant> Executor::CreateTenant(
    TenantOptions options) {
  auto queue = std::make_shared<Tenant::Queue>();
  queue->weight = std::max<size_t>(1, options.weight);
  queue->deadline = options.deadline;
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    queue->last_activity.store(
        state_->rounds.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    state_->queues.push_back(queue);
    if (queue->deadline) state_->AddToClassLocked(queue);
  }
  return std::unique_ptr<Tenant>(new Tenant(state_, std::move(queue)));
}

Executor::Tenant::~Tenant() {
  std::unique_lock<std::mutex> lock(state_->mu);
  queue_->closed = true;
  queue_->tasks.clear();
  if (queue_->deadline) state_->RemoveFromClassLocked(queue_);
  if (queue_->idle_rounds > 0) {
    queue_->idle_rounds = 0;
    queue_->reclaim_cb = nullptr;
    --state_->reclaim_policies;
  }
  queue_->idle_cv.wait(lock, [this] { return queue_->running == 0; });
  auto& qs = state_->queues;
  qs.erase(std::remove(qs.begin(), qs.end(), queue_), qs.end());
  if (state_->rr >= qs.size()) state_->rr = 0;
}

void Executor::Tenant::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (queue_->closed) return;
    queue_->tasks.push_back(
        {std::move(task), kNormalBand | state_->next_seq++});
  }
  state_->work_cv.notify_one();
}

void Executor::Tenant::SubmitUrgent(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (queue_->closed) return;
    // Behind earlier urgent tasks, ahead of every normal one — FIFO
    // within the band, so the queue front is always the tenant's
    // oldest urgent stamp (what deadline-class EDF compares).
    auto it = std::find_if(
        queue_->tasks.begin(), queue_->tasks.end(),
        [](const Queue::Task& t) { return (t.seq & kNormalBand) != 0; });
    queue_->tasks.insert(it, {std::move(task), state_->next_seq++});
  }
  state_->work_cv.notify_one();
}

void Executor::Tenant::SetWeight(size_t weight) {
  std::lock_guard<std::mutex> lock(state_->mu);
  size_t clamped = std::max<size_t>(1, weight);
  if (clamped == queue_->weight) return;
  // A deadline tenant changes class with its weight: keep the per-class
  // registry in lockstep so dispatch claims stay O(class).
  if (queue_->deadline) state_->RemoveFromClassLocked(queue_);
  queue_->weight = clamped;
  if (queue_->deadline) state_->AddToClassLocked(queue_);
}

size_t Executor::Tenant::weight() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return queue_->weight;
}

bool Executor::Tenant::deadline() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return queue_->deadline;
}


void Executor::Tenant::SetIdleReclaim(size_t idle_rounds,
                                      std::function<void()> callback) {
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    bool had = queue_->idle_rounds > 0;
    bool has = idle_rounds > 0 && callback != nullptr;
    queue_->idle_rounds = has ? idle_rounds : 0;
    queue_->reclaim_cb = has ? std::move(callback) : nullptr;
    queue_->last_activity.store(
        state_->rounds.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    queue_->reclaim_fired.store(false, std::memory_order_relaxed);
    queue_->reclaim_marked = false;
    if (has && !had) ++state_->reclaim_policies;
    if (!has && had) --state_->reclaim_policies;
  }
}

void Executor::Tenant::NoteActivity() {
  queue_->last_activity.store(
      state_->rounds.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  queue_->activity_seq.fetch_add(1, std::memory_order_relaxed);
  queue_->reclaim_fired.store(false, std::memory_order_relaxed);
}

size_t Executor::Tenant::queued() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return queue_->tasks.size();
}

size_t Executor::Tenant::tasks_run() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return queue_->tasks_run;
}

size_t Executor::tasks_run() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->tasks_run;
}

size_t Executor::tenants() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->queues.size();
}

size_t Executor::dispatch_rounds() const {
  return state_->rounds.load(std::memory_order_relaxed);
}

void Executor::RequestReclaimTick() { state_->RequestReclaimTick(); }

}  // namespace bgps::core
