#include "core/executor.hpp"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>

namespace bgps::core {

// One tenant's strictly-FIFO queue. Guarded by SharedState::mu.
struct Executor::Tenant::Queue {
  std::deque<std::function<void()>> tasks;
  size_t running = 0;  // tasks claimed by workers, not yet finished
  bool closed = false;
  std::condition_variable idle_cv;  // Tenant dtor waits for running == 0
};

// Shared between the Executor facade, the workers, and every Tenant —
// shared_ptr-owned so tenants stay valid no matter destruction order.
struct Executor::Tenant::SharedState {
  mutable std::mutex mu;
  std::condition_variable work_cv;  // workers: a task may be claimable
  std::vector<std::shared_ptr<Queue>> queues;  // registered tenants
  size_t rr = 0;  // round-robin cursor into `queues`
  size_t tasks_run = 0;
  bool stopping = false;
};

Executor::Executor(Options options)
    : threads_(options.threads),
      state_(std::make_shared<Tenant::SharedState>()) {
  workers_.reserve(threads_);
  for (size_t i = 0; i < threads_; ++i) {
    workers_.emplace_back([st = state_] { WorkerLoop(st); });
  }
}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    state_->stopping = true;
  }
  state_->work_cv.notify_all();
  for (auto& w : workers_) w.join();
}

void Executor::WorkerLoop(const std::shared_ptr<Tenant::SharedState>& st) {
  std::unique_lock<std::mutex> lock(st->mu);
  while (true) {
    if (st->stopping) return;
    // One task per tenant visit, scanning round-robin from the cursor:
    // a tenant with a deep queue advances one task per full rotation,
    // exactly like every other tenant.
    std::shared_ptr<Tenant::Queue> claimed;
    size_t n = st->queues.size();
    for (size_t i = 0; i < n; ++i) {
      auto& q = st->queues[(st->rr + i) % n];
      if (!q->tasks.empty()) {
        claimed = q;
        st->rr = (st->rr + i + 1) % n;
        break;
      }
    }
    if (!claimed) {
      st->work_cv.wait(lock);
      continue;
    }
    std::function<void()> task = std::move(claimed->tasks.front());
    claimed->tasks.pop_front();
    ++claimed->running;
    lock.unlock();
    task();
    lock.lock();
    --claimed->running;
    ++st->tasks_run;
    if (claimed->closed && claimed->running == 0) {
      claimed->idle_cv.notify_all();
    }
  }
}

std::unique_ptr<Executor::Tenant> Executor::CreateTenant() {
  auto queue = std::make_shared<Tenant::Queue>();
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    state_->queues.push_back(queue);
  }
  return std::unique_ptr<Tenant>(new Tenant(state_, std::move(queue)));
}

Executor::Tenant::~Tenant() {
  std::unique_lock<std::mutex> lock(state_->mu);
  queue_->closed = true;
  queue_->tasks.clear();
  queue_->idle_cv.wait(lock, [this] { return queue_->running == 0; });
  auto& qs = state_->queues;
  qs.erase(std::remove(qs.begin(), qs.end(), queue_), qs.end());
  if (state_->rr >= qs.size()) state_->rr = 0;
}

void Executor::Tenant::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (queue_->closed) return;
    queue_->tasks.push_back(std::move(task));
  }
  state_->work_cv.notify_one();
}

void Executor::Tenant::SubmitUrgent(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (queue_->closed) return;
    queue_->tasks.push_front(std::move(task));
  }
  state_->work_cv.notify_one();
}

size_t Executor::Tenant::queued() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return queue_->tasks.size();
}

size_t Executor::tasks_run() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->tasks_run;
}

size_t Executor::tenants() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->queues.size();
}

}  // namespace bgps::core
