#include "core/executor.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>

namespace bgps::core {

namespace {
// How often an otherwise-idle worker ticks the round clock so
// idle-reclaim still fires when the whole pool is stalled (e.g. every
// consumer paused with full buffers). Only used while at least one
// reclaim policy is registered.
constexpr std::chrono::milliseconds kIdleRoundTick{20};
}  // namespace

// One tenant's strictly-FIFO queue. Guarded by SharedState::mu except
// the atomics, which NoteActivity writes lock-free from consumer
// threads.
struct Executor::Tenant::Queue {
  std::deque<std::function<void()>> tasks;
  size_t running = 0;  // tasks claimed by workers, not yet finished
  bool closed = false;
  std::condition_variable idle_cv;  // Tenant dtor waits for running == 0

  // Deficit-weighted round-robin: a visit of the dispatch cursor lets
  // the tenant drain up to `weight` tasks. `credit` is the remainder of
  // the current visit; it is only nonzero while the cursor is parked on
  // this queue.
  size_t weight = 1;
  size_t credit = 0;

  size_t tasks_run = 0;  // per-tenant completion counter (stats)

  // Idle-reclaim policy (SetIdleReclaim). `last_activity` is the round
  // of the last NoteActivity; `reclaim_fired` keeps the callback from
  // re-firing until activity re-arms it.
  size_t idle_rounds = 0;  // 0 = no policy
  std::function<void()> reclaim_cb;
  std::atomic<size_t> last_activity{0};
  std::atomic<bool> reclaim_fired{false};
};

// Shared between the Executor facade, the workers, and every Tenant —
// shared_ptr-owned so tenants stay valid no matter destruction order.
struct Executor::Tenant::SharedState {
  mutable std::mutex mu;
  std::condition_variable work_cv;  // workers: a task may be claimable
  std::vector<std::shared_ptr<Queue>> queues;  // registered tenants
  size_t rr = 0;  // round-robin cursor into `queues`
  size_t tasks_run = 0;
  size_t reclaim_policies = 0;  // queues with an idle-reclaim policy
  std::atomic<size_t> rounds{0};  // completed dispatch-cursor rotations
  // Last idle round tick: N idle workers wake every kIdleRoundTick,
  // but only one of them may advance the clock per interval, so the
  // idle tick rate is independent of the thread count.
  std::chrono::steady_clock::time_point last_idle_tick{};
  bool stopping = false;
};

Executor::Executor(Options options)
    : threads_(options.threads),
      state_(std::make_shared<Tenant::SharedState>()) {
  workers_.reserve(threads_);
  for (size_t i = 0; i < threads_; ++i) {
    workers_.emplace_back([st = state_] { WorkerLoop(st); });
  }
}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    state_->stopping = true;
  }
  state_->work_cv.notify_all();
  for (auto& w : workers_) w.join();
}

void Executor::WorkerLoop(const std::shared_ptr<Tenant::SharedState>& st) {
  // Due reclaim callbacks are collected under the lock and invoked with
  // it released (they take the callback owner's locks).
  std::vector<std::function<void()>> due_reclaims;
  auto collect_due_reclaims = [&st, &due_reclaims] {
    if (st->reclaim_policies == 0) return;  // keep the hot path scan-free
    size_t now = st->rounds.load(std::memory_order_relaxed);
    for (auto& q : st->queues) {
      if (q->closed || q->idle_rounds == 0 || !q->reclaim_cb) continue;
      if (q->reclaim_fired.load(std::memory_order_relaxed)) continue;
      size_t last = q->last_activity.load(std::memory_order_relaxed);
      if (now >= last && now - last >= q->idle_rounds) {
        q->reclaim_fired.store(true, std::memory_order_relaxed);
        due_reclaims.push_back(q->reclaim_cb);
      }
    }
  };

  // Invokes the collected callbacks with the lock released (they take
  // the callback owners' locks), then clears the batch.
  auto run_due_reclaims_unlocked = [&due_reclaims] {
    for (auto& cb : due_reclaims) cb();
    due_reclaims.clear();
  };
  auto drain_due_reclaims = [&](std::unique_lock<std::mutex>& lk) {
    if (due_reclaims.empty()) return;
    lk.unlock();
    run_due_reclaims_unlocked();
    lk.lock();
  };
  // True while some policy is armed and could still come due — the only
  // state the idle round tick exists for. Once every policy has fired,
  // workers fall back to an untimed wait (no periodic wakeups in an
  // idle process); NoteActivity re-arms and pokes work_cv.
  auto any_armed_reclaim = [&st] {
    for (const auto& q : st->queues) {
      if (!q->closed && q->idle_rounds > 0 && q->reclaim_cb &&
          !q->reclaim_fired.load(std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  };

  std::unique_lock<std::mutex> lock(st->mu);
  while (true) {
    if (st->stopping) return;
    // Deficit-weighted round-robin from the cursor: a tenant with tasks
    // drains up to `weight` of them per visit (the cursor parks on it
    // until the visit's credit or queue is exhausted), then the cursor
    // moves on. Empty queues are skipped and their visit ends.
    std::shared_ptr<Tenant::Queue> claimed;
    size_t n = st->queues.size();
    bool wrapped = false;
    for (size_t i = 0; i < n; ++i) {
      size_t idx = (st->rr + i) % n;
      auto& q = st->queues[idx];
      if (q->tasks.empty()) {
        q->credit = 0;  // skipped: any in-progress visit is over
        continue;
      }
      if (st->rr + i >= n) wrapped = true;  // the scan passed the end
      if (q->credit == 0) {
        q->credit = std::max<size_t>(1, q->weight);  // a new visit begins
      }
      claimed = q;
      --q->credit;
      if (q->credit > 0 && q->tasks.size() > 1) {
        st->rr = idx;  // park: the visit continues with the next claim
      } else {
        q->credit = 0;
        st->rr = (idx + 1) % n;
        if (idx + 1 == n) wrapped = true;  // advanced past the end
      }
      break;
    }
    if (wrapped) {
      st->rounds.fetch_add(1, std::memory_order_relaxed);
      collect_due_reclaims();
    }
    if (!claimed) {
      if (!due_reclaims.empty()) {
        drain_due_reclaims(lock);
        continue;
      }
      if (st->reclaim_policies > 0 && any_armed_reclaim()) {
        // Tick the round clock while idle so a fully-stalled pool
        // (every consumer paused on full buffers) still reclaims. Only
        // the first worker to wake in each interval advances the clock
        // — otherwise the tick rate would scale with the thread count
        // and idle_reclaim_rounds would mean different wall times on
        // different pools.
        if (st->work_cv.wait_for(lock, kIdleRoundTick) ==
            std::cv_status::timeout) {
          auto now = std::chrono::steady_clock::now();
          if (now - st->last_idle_tick >= kIdleRoundTick) {
            st->last_idle_tick = now;
            st->rounds.fetch_add(1, std::memory_order_relaxed);
            collect_due_reclaims();
            drain_due_reclaims(lock);
          }
        }
      } else {
        st->work_cv.wait(lock);
      }
      continue;
    }
    std::function<void()> task = std::move(claimed->tasks.front());
    claimed->tasks.pop_front();
    ++claimed->running;
    lock.unlock();
    run_due_reclaims_unlocked();
    task();
    lock.lock();
    --claimed->running;
    ++st->tasks_run;
    ++claimed->tasks_run;
    if (claimed->closed && claimed->running == 0) {
      claimed->idle_cv.notify_all();
    }
  }
}

std::unique_ptr<Executor::Tenant> Executor::CreateTenant(
    TenantOptions options) {
  auto queue = std::make_shared<Tenant::Queue>();
  queue->weight = std::max<size_t>(1, options.weight);
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    queue->last_activity.store(
        state_->rounds.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    state_->queues.push_back(queue);
  }
  return std::unique_ptr<Tenant>(new Tenant(state_, std::move(queue)));
}

Executor::Tenant::~Tenant() {
  std::unique_lock<std::mutex> lock(state_->mu);
  queue_->closed = true;
  queue_->tasks.clear();
  if (queue_->idle_rounds > 0) {
    queue_->idle_rounds = 0;
    queue_->reclaim_cb = nullptr;
    --state_->reclaim_policies;
  }
  queue_->idle_cv.wait(lock, [this] { return queue_->running == 0; });
  auto& qs = state_->queues;
  qs.erase(std::remove(qs.begin(), qs.end(), queue_), qs.end());
  if (state_->rr >= qs.size()) state_->rr = 0;
}

void Executor::Tenant::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (queue_->closed) return;
    queue_->tasks.push_back(std::move(task));
  }
  state_->work_cv.notify_one();
}

void Executor::Tenant::SubmitUrgent(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (queue_->closed) return;
    queue_->tasks.push_front(std::move(task));
  }
  state_->work_cv.notify_one();
}

void Executor::Tenant::SetWeight(size_t weight) {
  std::lock_guard<std::mutex> lock(state_->mu);
  queue_->weight = std::max<size_t>(1, weight);
}

size_t Executor::Tenant::weight() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return queue_->weight;
}

void Executor::Tenant::SetIdleReclaim(size_t idle_rounds,
                                      std::function<void()> callback) {
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    bool had = queue_->idle_rounds > 0;
    bool has = idle_rounds > 0 && callback != nullptr;
    queue_->idle_rounds = has ? idle_rounds : 0;
    queue_->reclaim_cb = has ? std::move(callback) : nullptr;
    queue_->last_activity.store(
        state_->rounds.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    queue_->reclaim_fired.store(false, std::memory_order_relaxed);
    if (has && !had) ++state_->reclaim_policies;
    if (!has && had) --state_->reclaim_policies;
  }
  // Wake waiting workers so they switch to the timed idle tick.
  state_->work_cv.notify_all();
}

void Executor::Tenant::NoteActivity() {
  queue_->last_activity.store(
      state_->rounds.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  if (queue_->reclaim_fired.exchange(false, std::memory_order_relaxed)) {
    // Re-armed after a fire: idle workers may have dropped to an
    // untimed wait; wake one so the round tick resumes.
    state_->work_cv.notify_one();
  }
}

size_t Executor::Tenant::queued() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return queue_->tasks.size();
}

size_t Executor::Tenant::tasks_run() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return queue_->tasks_run;
}

size_t Executor::tasks_run() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->tasks_run;
}

size_t Executor::tenants() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->queues.size();
}

size_t Executor::dispatch_rounds() const {
  return state_->rounds.load(std::memory_order_relaxed);
}

}  // namespace bgps::core
