// Process-wide decode executor (runtime layer).
//
// The paper positions BGPStream as a framework many concurrent consumers
// run on top of: monitoring plugins, timely analyses, live dashboards.
// Before this layer existed every BgpStream spun up a private worker
// pool, so N tenants meant N× threads regardless of how many cores the
// host actually has. Executor is the process-shareable replacement: one
// fixed pool of workers serving any number of *tenants*, each with its
// own strictly-FIFO submission queue.
//
// Scheduling is deliberately work-stealing-free: workers dispatch
// round-robin across tenant queues in deficit-weighted fashion — each
// *visit* of the rotating cursor lets a tenant drain up to `weight`
// tasks before the cursor moves on, so a weight-4 live monitor drains
// ~4 tasks for every task of a weight-1 backfill, while a heavy tenant
// (a stream decoding a ~500-file RIB window) still cannot starve a
// light one entirely (every tenant is visited every rotation). Weight
// changes take effect at the tenant's next visit. Within a tenant,
// tasks run in submission order — the property the prefetch stage's
// ordering guarantee is built on. SubmitUrgent jumps a task ahead of
// its tenant's normal submissions — FIFO among urgent ones (used for
// refills the consumer is blocked on); it never jumps ahead of other
// tenants.
//
// Deadline classes: tenants created with TenantOptions::deadline form
// one class per weight value. Every task carries an enqueue stamp
// (urgent submissions stamp ahead of all normal ones); when the cursor
// visits a deadline tenant, each claim of that visit takes the
// earliest-stamped head across every same-weight deadline tenant
// instead of the anchor's own head. Per-tenant FIFO is untouched
// (claims always pop a queue's front), so output sequences are
// identical — earliest-deadline-first only changes *when* each live
// tenant's next task runs, bounding a blocked live consumer's wait by
// the number of older same-class tasks instead of the cursor distance.
// Class members are kept in a per-weight registry (maintained by
// CreateTenant / SetWeight / Tenant destruction), so each claim scans
// only its own class — O(class members) under the dispatch lock, not
// O(all registered tenants).
//
// Idle-tenant reclaim support: a tenant may register a reclaim policy
// (SetIdleReclaim) — when NoteActivity has not been called for
// `idle_rounds` dispatch rounds, the executor invokes the callback once
// (outside its own lock) so the owner can shed buffered state. Rounds
// advance as the dispatch cursor completes rotations, so a busy pool
// crosses thresholds in proportion to the work it dispatches. A
// fully-stalled pool has no idle timer: reclaim there is waiter-driven
// — RequestReclaimTick() (fired by a MemoryGovernor contention hook
// while an Acquire is blocked) marks armed tenants and, once a
// tenant shows no activity across ~idle_rounds consecutive signals,
// fires the *stalest* such tenant — one per signal, the signals
// standing in for dispatch rounds. The pass runs inline on the
// signaling thread (not deferred to an idle worker), so it works even
// when every worker is itself blocked in an Acquire. Reclaim latency
// therefore scales with budget contention, not wall-clock, and a
// tenant that is actively draining is never reclaimed by contention.
//
// Lifecycle: tenants may come and go freely (streams attach on Start,
// detach on destruction). Destroying a Tenant discards its queued tasks
// and blocks until its running ones finish. Destroying the Executor
// joins the workers after their current task; tenants may outlive the
// Executor (their queues simply never drain).
#pragma once

#include <functional>
#include <memory>
#include <thread>
#include <vector>

namespace bgps::core {

class Executor {
 public:
  struct Options {
    // Worker threads. 0 constructs an executor that runs nothing —
    // useful only as a validation target (BgpStream::Start rejects it).
    size_t threads = 2;
  };

  // Per-tenant scheduling parameters (see CreateTenant).
  struct TenantOptions {
    // Tasks this tenant may drain per dispatch visit, relative to other
    // tenants (deficit-weighted round-robin). Clamped to >= 1.
    size_t weight = 1;
    // Joins the deadline class of this tenant's weight: visits to any
    // class member claim the earliest-enqueued head across the whole
    // class (earliest-deadline-first) instead of the visited queue's
    // own head. For live tenants whose latency should track enqueue
    // order, not cursor position. Fixed at creation.
    bool deadline = false;
  };

  explicit Executor(Options options);
  // Joins the workers after their current task; still-queued tasks are
  // discarded. Tenants may outlive the Executor.
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  // One tenant = one strictly-FIFO submission queue, scheduled
  // deficit-weighted round-robin against all other tenants. Obtained
  // from CreateTenant.
  class Tenant {
   public:
    // Discards still-queued tasks and blocks until this tenant's
    // running tasks finish; then detaches from the executor.
    ~Tenant();

    Tenant(const Tenant&) = delete;
    Tenant& operator=(const Tenant&) = delete;

    // Enqueues at the back of this tenant's queue. Never blocks.
    void Submit(std::function<void()> task);
    // Enqueues ahead of every normally-submitted task of this tenant,
    // behind its earlier urgent ones (FIFO within the urgent band).
    // For work the consumer is blocked on (chunked-buffer refills).
    // Does not preempt other tenants.
    void SubmitUrgent(std::function<void()> task);

    // Updates the scheduling weight (clamped to >= 1). Takes effect at
    // the tenant's next dispatch visit. For a deadline tenant this also
    // moves it to the new weight's deadline class. Thread-safe.
    void SetWeight(size_t weight);
    size_t weight() const;
    // Whether this tenant dispatches earliest-deadline-first within its
    // weight class (fixed at CreateTenant).
    bool deadline() const;


    // Registers the idle-reclaim policy: when NoteActivity has not been
    // called for `idle_rounds` dispatch rounds, `callback` is invoked
    // once from a worker thread (with no executor lock held). The
    // policy re-arms on the next NoteActivity. idle_rounds == 0 or a
    // null callback clears the policy.
    void SetIdleReclaim(size_t idle_rounds, std::function<void()> callback);
    // Marks the tenant live (typically: its consumer drained a record),
    // resetting the idle clock and re-arming a fired reclaim policy.
    // Lock-free; safe from any thread.
    void NoteActivity();

    // Tasks queued but not yet claimed by a worker.
    size_t queued() const;
    // Tasks completed for this tenant (stats).
    size_t tasks_run() const;

   private:
    friend class Executor;
    struct Queue;
    struct SharedState;
    Tenant(std::shared_ptr<SharedState> state, std::shared_ptr<Queue> queue)
        : state_(std::move(state)), queue_(std::move(queue)) {}

    std::shared_ptr<SharedState> state_;
    std::shared_ptr<Queue> queue_;
  };

  // Registers a new tenant queue. Thread-safe. (Two overloads instead
  // of a `= {}` default argument: TenantOptions' member initializers
  // are not parsed yet at this point of the enclosing class.)
  std::unique_ptr<Tenant> CreateTenant(TenantOptions options);
  std::unique_ptr<Tenant> CreateTenant() {
    return CreateTenant(TenantOptions{});
  }

  size_t threads() const { return threads_; }
  // Tasks completed so far, across all tenants (stats for tests).
  size_t tasks_run() const;
  // Currently registered tenants (stats for tests).
  size_t tenants() const;
  // Completed rotations of the dispatch cursor over the tenant set —
  // the clock idle-reclaim thresholds are measured in. Advances only
  // with dispatched work.
  size_t dispatch_rounds() const;

  // The waiter-driven reclaim trigger, mark/confirm. A processed
  // signal *marks* each armed tenant by snapshotting its NoteActivity
  // counter; every later signal that finds the counter unchanged ages
  // the mark by one, and once a mark's age reaches the tenant's
  // idle_rounds the tenant may fire — the stalest eligible one (min
  // last-activity + idle_rounds), exactly one per signal. Contention
  // signals thus stand in for dispatch rounds while the pool is
  // stalled: the configured patience is honored in both clock domains.
  // An actively-draining tenant — however slow — resets its mark on
  // every pop and is never reclaimed by contention; a paused one
  // yields after ~idle_rounds signals; a lone stale signal (contention
  // long gone) can only mark, never fire. The round clock is
  // untouched. No-op while every policy is unarmed or fired.
  // Wired by bgps::StreamPool to MemoryGovernor::AddContentionHook,
  // whose blocked Acquires re-signal on a short interval — so a
  // starving waiter always delivers the confirming signal, and keeps
  // peeling off next-stalest tenants until it is granted. The pass
  // (and any due reclaim callback) runs inline on the calling thread
  // with no executor lock held across the callbacks — never deferred
  // to a worker, because a pool whose workers are all parked in
  // governor Acquires (a reclaimed file re-acquiring its floor) has no
  // idle worker to defer to, and the blocked waiter's own re-signal
  // must still be able to free budget. Callers must therefore hold no
  // lock that a reclaim callback (PrefetchDecoder::ReclaimIdle) takes.
  // Thread-safe; never blocks on work.
  void RequestReclaimTick();

 private:
  static void WorkerLoop(const std::shared_ptr<Tenant::SharedState>& st);

  size_t threads_;
  std::shared_ptr<Tenant::SharedState> state_;
  std::vector<std::thread> workers_;
};

}  // namespace bgps::core
