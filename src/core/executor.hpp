// Process-wide decode executor (runtime layer).
//
// The paper positions BGPStream as a framework many concurrent consumers
// run on top of: monitoring plugins, timely analyses, live dashboards.
// Before this layer existed every BgpStream spun up a private worker
// pool, so N tenants meant N× threads regardless of how many cores the
// host actually has. Executor is the process-shareable replacement: one
// fixed pool of workers serving any number of *tenants*, each with its
// own strictly-FIFO submission queue.
//
// Scheduling is deliberately work-stealing-free: workers dispatch
// round-robin across tenant queues, taking one task per visit, so a
// heavy tenant (a stream decoding a ~500-file RIB window) cannot starve
// a light one (a live monitor decoding one updates file a minute).
// Within a tenant, tasks run in submission order — the property the
// prefetch stage's ordering guarantee is built on. SubmitUrgent jumps a
// task to the front of its own queue (used for refills the consumer is
// blocked on); it never jumps ahead of other tenants.
//
// Lifecycle: tenants may come and go freely (streams attach on Start,
// detach on destruction). Destroying a Tenant discards its queued tasks
// and blocks until its running ones finish. Destroying the Executor
// joins the workers after their current task; tenants may outlive the
// Executor (their queues simply never drain).
#pragma once

#include <functional>
#include <memory>
#include <thread>
#include <vector>

namespace bgps::core {

class Executor {
 public:
  struct Options {
    // Worker threads. 0 constructs an executor that runs nothing —
    // useful only as a validation target (BgpStream::Start rejects it).
    size_t threads = 2;
  };

  explicit Executor(Options options);
  // Joins the workers after their current task; still-queued tasks are
  // discarded. Tenants may outlive the Executor.
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  // One tenant = one strictly-FIFO submission queue, scheduled
  // round-robin against all other tenants. Obtained from CreateTenant.
  class Tenant {
   public:
    // Discards still-queued tasks and blocks until this tenant's
    // running tasks finish; then detaches from the executor.
    ~Tenant();

    Tenant(const Tenant&) = delete;
    Tenant& operator=(const Tenant&) = delete;

    // Enqueues at the back of this tenant's queue. Never blocks.
    void Submit(std::function<void()> task);
    // Enqueues at the *front* of this tenant's queue: the next task a
    // worker takes from this tenant. For work the consumer is blocked
    // on (chunked-buffer refills). Does not preempt other tenants.
    void SubmitUrgent(std::function<void()> task);

    // Tasks queued but not yet claimed by a worker.
    size_t queued() const;

   private:
    friend class Executor;
    struct Queue;
    struct SharedState;
    Tenant(std::shared_ptr<SharedState> state, std::shared_ptr<Queue> queue)
        : state_(std::move(state)), queue_(std::move(queue)) {}

    std::shared_ptr<SharedState> state_;
    std::shared_ptr<Queue> queue_;
  };

  // Registers a new tenant queue. Thread-safe.
  std::unique_ptr<Tenant> CreateTenant();

  size_t threads() const { return threads_; }
  // Tasks completed so far, across all tenants (stats for tests).
  size_t tasks_run() const;
  // Currently registered tenants (stats for tests).
  size_t tenants() const;

 private:
  static void WorkerLoop(const std::shared_ptr<Tenant::SharedState>& st);

  size_t threads_;
  std::shared_ptr<Tenant::SharedState> state_;
  std::vector<std::thread> workers_;
};

}  // namespace bgps::core
