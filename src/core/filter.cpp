#include "core/filter.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/strings.hpp"

namespace bgps::core {

bool PrefixFilter::matches(const Prefix& p) const {
  switch (mode) {
    case PrefixMatchMode::Exact: return p == prefix;
    case PrefixMatchMode::MoreSpecific: return prefix.contains(p);
    case PrefixMatchMode::LessSpecific: return p.contains(prefix);
    case PrefixMatchMode::Any: return prefix.overlaps(p);
  }
  return false;
}

Result<AsPathPattern> AsPathPattern::Parse(const std::string& pattern) {
  AsPathPattern out;
  out.text_ = pattern;
  auto tokens = SplitSkipEmpty(pattern, ' ');
  if (tokens.empty()) return InvalidArgument("empty aspath pattern");
  // '^' may be fused to the first token ("^65001") or stand alone.
  if (tokens.front() == "^") {
    out.anchor_start_ = true;
    tokens.erase(tokens.begin());
  } else if (tokens.front().front() == '^') {
    out.anchor_start_ = true;
    tokens.front().erase(0, 1);
  }
  if (!tokens.empty() && tokens.back() == "$") {
    out.anchor_end_ = true;
    tokens.pop_back();
  } else if (!tokens.empty() && tokens.back().back() == '$') {
    out.anchor_end_ = true;
    tokens.back().pop_back();
  }
  if (tokens.empty()) return InvalidArgument("aspath pattern has no tokens");
  for (const auto& tok : tokens) {
    Token t;
    if (tok == "*") {
      t.kind = Token::Kind::AnyOne;
    } else if (tok == "%") {
      t.kind = Token::Kind::AnyRun;
    } else {
      char* end = nullptr;
      unsigned long v = std::strtoul(tok.c_str(), &end, 10);
      if (end != tok.c_str() + tok.size() || tok.empty())
        return InvalidArgument("bad aspath token: " + tok);
      t.kind = Token::Kind::Asn;
      t.asn = bgp::Asn(v);
    }
    out.tokens_.push_back(t);
  }
  return out;
}

bool AsPathPattern::MatchFrom(const std::vector<bgp::Asn>& hops, size_t hop,
                              size_t token) const {
  if (token == tokens_.size()) {
    return anchor_end_ ? hop == hops.size() : true;
  }
  const Token& t = tokens_[token];
  switch (t.kind) {
    case Token::Kind::Asn:
      return hop < hops.size() && hops[hop] == t.asn &&
             MatchFrom(hops, hop + 1, token + 1);
    case Token::Kind::AnyOne:
      return hop < hops.size() && MatchFrom(hops, hop + 1, token + 1);
    case Token::Kind::AnyRun:
      for (size_t next = hop; next <= hops.size(); ++next) {
        if (MatchFrom(hops, next, token + 1)) return true;
      }
      return false;
  }
  return false;
}

bool AsPathPattern::matches(const bgp::AsPath& path) const {
  std::vector<bgp::Asn> hops = path.hops();
  if (anchor_start_) return MatchFrom(hops, 0, 0);
  for (size_t start = 0; start <= hops.size(); ++start) {
    if (MatchFrom(hops, start, 0)) return true;
  }
  return false;
}

Status FilterSet::AddOption(const std::string& key, const std::string& value) {
  if (key == "project") {
    projects.push_back(value);
    return OkStatus();
  }
  if (key == "collector") {
    collectors.push_back(value);
    return OkStatus();
  }
  if (key == "type") {
    if (value == "ribs") dump_types.push_back(DumpType::Rib);
    else if (value == "updates") dump_types.push_back(DumpType::Updates);
    else return InvalidArgument("unknown dump type: " + value);
    return OkStatus();
  }
  if (key == "prefix") {
    auto parts = SplitSkipEmpty(value, ' ');
    PrefixFilter f;
    std::string pfx_text;
    if (parts.size() == 2) {
      if (parts[0] == "exact") f.mode = PrefixMatchMode::Exact;
      else if (parts[0] == "more") f.mode = PrefixMatchMode::MoreSpecific;
      else if (parts[0] == "less") f.mode = PrefixMatchMode::LessSpecific;
      else if (parts[0] == "any") f.mode = PrefixMatchMode::Any;
      else return InvalidArgument("unknown prefix mode: " + parts[0]);
      pfx_text = parts[1];
    } else if (parts.size() == 1) {
      pfx_text = parts[0];
    } else {
      return InvalidArgument("bad prefix filter: " + value);
    }
    BGPS_ASSIGN_OR_RETURN(f.prefix, Prefix::Parse(pfx_text));
    prefixes.push_back(f);
    return OkStatus();
  }
  if (key == "community") {
    BGPS_ASSIGN_OR_RETURN(auto m, bgp::CommunityMatcher::Parse(value));
    communities.push_back(m);
    return OkStatus();
  }
  if (key == "peer") {
    peer_asns.push_back(bgp::Asn(std::stoul(value)));
    return OkStatus();
  }
  if (key == "path") {
    path_asns.push_back(bgp::Asn(std::stoul(value)));
    return OkStatus();
  }
  if (key == "aspath") {
    BGPS_ASSIGN_OR_RETURN(auto pattern, AsPathPattern::Parse(value));
    aspath_patterns.push_back(std::move(pattern));
    return OkStatus();
  }
  if (key == "elemtype") {
    if (value == "ribs") elem_types.push_back(ElemType::RibEntry);
    else if (value == "announcements") elem_types.push_back(ElemType::Announcement);
    else if (value == "withdrawals") elem_types.push_back(ElemType::Withdrawal);
    else if (value == "peerstates") elem_types.push_back(ElemType::PeerState);
    else return InvalidArgument("unknown elem type: " + value);
    return OkStatus();
  }
  if (key == "interval") {
    // "start,end" in unix seconds — the option form of SetInterval, so
    // remote subscription protocols can carry the time window through
    // the same key/value channel as every other filter.
    auto comma = value.find(',');
    if (comma == std::string::npos)
      return InvalidArgument("interval needs start,end: " + value);
    const std::string a = value.substr(0, comma);
    const std::string b = value.substr(comma + 1);
    char* end = nullptr;
    long long start_s = std::strtoll(a.c_str(), &end, 10);
    if (a.empty() || *end != '\0')
      return InvalidArgument("bad interval start: " + value);
    long long end_s = std::strtoll(b.c_str(), &end, 10);
    if (b.empty() || *end != '\0')
      return InvalidArgument("bad interval end: " + value);
    interval = {Timestamp(start_s), Timestamp(end_s)};
    return OkStatus();
  }
  if (key == "ipversion") {
    if (value == "4") ip_version = IpFamily::V4;
    else if (value == "6") ip_version = IpFamily::V6;
    else return InvalidArgument("bad ipversion: " + value);
    return OkStatus();
  }
  return InvalidArgument("unknown filter key: " + key);
}

bool FilterSet::MatchesMeta(const std::string& project,
                            const std::string& collector,
                            DumpType type) const {
  if (!projects.empty() &&
      std::find(projects.begin(), projects.end(), project) == projects.end())
    return false;
  if (!collectors.empty() &&
      std::find(collectors.begin(), collectors.end(), collector) ==
          collectors.end())
    return false;
  if (!dump_types.empty() &&
      std::find(dump_types.begin(), dump_types.end(), type) ==
          dump_types.end())
    return false;
  return true;
}

bool FilterSet::MatchesRecord(const Record& record) const {
  if (!MatchesMeta(record.project, record.collector, record.dump_type))
    return false;
  // RIB dumps overlapping the interval start are admitted in full so a
  // stream can bootstrap state from them; update records must lie inside.
  if (record.dump_type == DumpType::Rib) return true;
  return interval.contains(record.timestamp) ||
         record.status != RecordStatus::Valid;
}

std::vector<Elem> FilterSet::FilterElems(std::vector<Elem> elems) const {
  FilterElemsInPlace(elems);
  return elems;
}

void FilterSet::FilterElemsInPlace(std::vector<Elem>& elems) const {
  if (!HasElemFilters()) return;
  elems.erase(std::remove_if(elems.begin(), elems.end(),
                             [this](const Elem& e) { return !MatchesElem(e); }),
              elems.end());
}

bool FilterSet::MatchesElem(const Elem& elem) const {
  if (!elem_types.empty() &&
      std::find(elem_types.begin(), elem_types.end(), elem.type) ==
          elem_types.end())
    return false;
  if (!peer_asns.empty() &&
      std::find(peer_asns.begin(), peer_asns.end(), elem.peer_asn) ==
          peer_asns.end())
    return false;
  if (ip_version && elem.has_prefix() && elem.prefix.family() != *ip_version)
    return false;
  if (!prefixes.empty()) {
    if (!elem.has_prefix()) return false;
    bool any = false;
    for (const auto& f : prefixes) {
      if (f.matches(elem.prefix)) {
        any = true;
        break;
      }
    }
    if (!any) return false;
  }
  if (!communities.empty()) {
    bool any = false;
    for (const auto& m : communities) {
      if (m.matches_any(elem.communities)) {
        any = true;
        break;
      }
    }
    if (!any) return false;
  }
  if (!path_asns.empty()) {
    bool any = false;
    for (bgp::Asn a : path_asns) {
      if (elem.as_path.contains(a)) {
        any = true;
        break;
      }
    }
    if (!any) return false;
  }
  if (!aspath_patterns.empty()) {
    bool any = false;
    for (const auto& pattern : aspath_patterns) {
      if (pattern.matches(elem.as_path)) {
        any = true;
        break;
      }
    }
    if (!any) return false;
  }
  return true;
}

}  // namespace bgps::core
