// Stream filters (paper §3.3.1 and the BGPReader filter options of §4.1).
//
// Meta-data filters (project, collector, dump type, interval) select dump
// files at the broker; data filters (prefix, community, peer ASN, elem
// type, path ASN, IP version) select individual elems.
#pragma once

#include "bgp/community.hpp"
#include "core/elem.hpp"
#include "core/record.hpp"

namespace bgps::core {

// How a prefix filter matches an elem's prefix, mirroring BGPStream's
// bgpreader options (-k exact/-k more-specific/...).
enum class PrefixMatchMode : uint8_t {
  Exact,         // elem prefix == filter prefix
  MoreSpecific,  // elem prefix equal to or contained in filter prefix
  LessSpecific,  // elem prefix equal to or containing filter prefix
  Any,           // either direction of overlap
};

struct PrefixFilter {
  Prefix prefix;
  PrefixMatchMode mode = PrefixMatchMode::MoreSpecific;

  bool matches(const Prefix& p) const;
};

// AS-path pattern, the analog of BGPStream's aspath regexp filter.
// Patterns are space-separated tokens over the path's hop sequence:
//   <asn>  matches exactly that hop       '*' matches any single hop
//   '%'    matches any (possibly empty) run of hops
//   '^' as the first token anchors at the first hop, '$' as the last
//   token anchors at the origin; unanchored patterns match anywhere.
// Examples: "^65001 %"  (paths learned from peer 65001),
//           "% 3356 %"  (paths through AS3356),
//           "% 15169$"  (paths originated by AS15169).
class AsPathPattern {
 public:
  static Result<AsPathPattern> Parse(const std::string& pattern);

  bool matches(const bgp::AsPath& path) const;

  const std::string& text() const { return text_; }

 private:
  struct Token {
    enum class Kind { Asn, AnyOne, AnyRun };
    Kind kind = Kind::Asn;
    bgp::Asn asn = 0;
  };

  bool MatchFrom(const std::vector<bgp::Asn>& hops, size_t hop,
                 size_t token) const;

  std::string text_;
  std::vector<Token> tokens_;
  bool anchor_start_ = false;
  bool anchor_end_ = false;
};

class FilterSet {
 public:
  // --- meta-data filters ---
  std::vector<std::string> projects;
  std::vector<std::string> collectors;
  std::vector<DumpType> dump_types;
  TimeInterval interval{0, kLiveEnd};

  // --- data (elem-level) filters ---
  std::vector<PrefixFilter> prefixes;
  std::vector<bgp::CommunityMatcher> communities;
  std::vector<bgp::Asn> peer_asns;
  std::vector<ElemType> elem_types;
  std::vector<bgp::Asn> path_asns;  // elem AS path must contain one of these
  std::vector<AsPathPattern> aspath_patterns;
  std::optional<IpFamily> ip_version;

  // Parses one "key value" option, bgpreader-style. Keys:
  //   project, collector, type (ribs|updates), prefix ([exact|more|less|any]
  //   <pfx>), community (<asn|*>:<value|*>), peer <asn>, elemtype
  //   (ribs|announcements|withdrawals|peerstates), path <asn>,
  //   aspath <pattern> (see AsPathPattern), ipversion (4|6),
  //   interval (<start>,<end> unix seconds)
  Status AddOption(const std::string& key, const std::string& value);

  // True if a dump file with this provenance can contribute to the stream.
  bool MatchesMeta(const std::string& project, const std::string& collector,
                   DumpType type) const;

  // Record-level check (provenance + record timestamp inside interval).
  bool MatchesRecord(const Record& record) const;

  // Elem-level check (all data filters).
  bool MatchesElem(const Elem& elem) const;

  // Keeps the elems passing MatchesElem (everything if no elem-level
  // filter is configured). The single filtering implementation shared
  // by inline extraction (BgpStream::Elems) and worker-side extraction
  // (AttachPrefetchedElems) — the pipeline equivalence guarantee
  // depends on both using exactly this.
  std::vector<Elem> FilterElems(std::vector<Elem> elems) const;

  // In-place variant (same predicate): erases the elems failing
  // MatchesElem without allocating a second vector — the decode workers
  // filter arena-primed vectors with this.
  void FilterElemsInPlace(std::vector<Elem>& elems) const;

  // True if any elem-level filter is configured (lets hot paths skip
  // extraction when only meta filters are set).
  bool HasElemFilters() const {
    return !prefixes.empty() || !communities.empty() || !peer_asns.empty() ||
           !elem_types.empty() || !path_asns.empty() ||
           !aspath_patterns.empty() || ip_version.has_value();
  }
};

}  // namespace bgps::core
