#include "core/governor.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <string>

#include "core/executor.hpp"

namespace bgps::core {

namespace {
// While an Acquire stays blocked and contention hooks exist, the hooks
// re-fire on this interval: the second (and later) signals of the
// executor's mark/confirm reclaim. The cost is borne entirely by the
// blocked waiter — an uncontended or idle process never wakes.
constexpr std::chrono::milliseconds kContentionResignal{10};
}  // namespace

void MemoryGovernor::GrantLocked() {
  if (!health_.ok()) return;  // poisoned: nobody is granted anything
  while (!waiters_.empty() && in_use_ + waiters_.front()->n <= capacity_) {
    Waiter* w = waiters_.front();
    waiters_.pop_front();
    in_use_ += w->n;
    max_in_use_ = std::max(max_in_use_, in_use_);
    w->granted = true;
    w->cv.notify_one();
  }
}

Status MemoryGovernor::Acquire(size_t n) {
  if (n == 0) return OkStatus();  // zero demand: unconditional no-op grant
  std::unique_lock<std::mutex> lock(mu_);
  if (!health_.ok()) return health_;
  if (n > capacity_) {
    return InvalidArgument("MemoryGovernor: demand of " + std::to_string(n) +
                           " records exceeds the budget of " +
                           std::to_string(capacity_));
  }
  Waiter w;
  w.n = n;
  waiters_.push_back(&w);
  GrantLocked();
  // A parked demand signals the contention hooks (the waiter-driven
  // reclaim trigger) — immediately on parking, then again on a short
  // interval for as long as it stays blocked (the executor's
  // mark/confirm reclaim needs several signals to fire a tenant).
  // Hooks run with the lock released; the waiter is already queued, so
  // its FIFO position — and any grant racing the hooks — is preserved,
  // and the loop re-checks after every release of the lock.
  while (!w.granted && health_.ok()) {
    if (contention_hooks_.empty()) {
      // Untimed while no hooks exist — a plain governor never polls.
      // AddContentionHook pokes parked waiters, so a hook registered
      // *after* this demand parked still switches it to the signalling
      // branch.
      w.cv.wait(lock, [&] {
        return w.granted || !health_.ok() || !contention_hooks_.empty();
      });
      continue;
    }
    lock.unlock();
    FireContentionHooks();
    lock.lock();
    if (w.granted || !health_.ok()) break;
    w.cv.wait_for(lock, kContentionResignal,
                  [&] { return w.granted || !health_.ok(); });
  }
  if (w.granted) return OkStatus();
  // Poisoned while waiting: withdraw the demand before unwinding (the
  // Waiter lives on this stack frame).
  waiters_.erase(std::remove(waiters_.begin(), waiters_.end(), &w),
                 waiters_.end());
  return health_;
}

bool MemoryGovernor::TryAcquire(size_t n) {
  if (n == 0) return true;  // zero demand: unconditional no-op grant
  std::lock_guard<std::mutex> lock(mu_);
  if (!health_.ok()) return false;
  if (!waiters_.empty() || in_use_ + n > capacity_) return false;
  in_use_ += n;
  max_in_use_ = std::max(max_in_use_, in_use_);
  return true;
}

void MemoryGovernor::Release(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!health_.ok()) return;  // ledger already poisoned; keep the evidence
  if (n > in_use_) {
    // Double-release accounting bug in a caller. Clamping would quietly
    // inflate the budget for every tenant; poison the ledger instead so
    // the bug surfaces through BgpStream::status().
    health_ = InvalidArgument(
        "MemoryGovernor: released " + std::to_string(n) +
        " slots but only " + std::to_string(in_use_) +
        " are leased (double release)");
    for (Waiter* w : waiters_) w->cv.notify_one();
    return;
  }
  in_use_ -= n;
  GrantLocked();
  // Deliberately no contention-hook firing here: a still-starving
  // waiter re-signals itself on kContentionResignal (see Acquire), so a
  // Release-side signal would buy < one interval of latency while
  // charging every consumer pop an executor wakeup on the hot path —
  // and would let pop bursts age reclaim marks arbitrarily fast.
}

uint64_t MemoryGovernor::AddContentionHook(std::function<bool()> hook) {
  if (!hook) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  contention_hooks_.emplace_back(next_hook_id_++, std::move(hook));
  // Waiters parked while no hook existed sleep untimed; wake them so
  // they start signalling the new hook.
  for (Waiter* w : waiters_) w->cv.notify_one();
  return contention_hooks_.back().first;
}

void MemoryGovernor::RemoveContentionHook(uint64_t id) {
  if (id == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto& v = contention_hooks_;
  v.erase(std::remove_if(v.begin(), v.end(),
                         [id](const auto& entry) { return entry.first == id; }),
          v.end());
}

void MemoryGovernor::FireContentionHooks() {
  std::vector<std::pair<uint64_t, std::function<bool()>>> hooks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    hooks = contention_hooks_;
  }
  std::vector<uint64_t> dead;
  for (const auto& [id, hook] : hooks) {
    if (!hook()) dead.push_back(id);
  }
  if (dead.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto& v = contention_hooks_;
  v.erase(std::remove_if(v.begin(), v.end(),
                         [&dead](const auto& entry) {
                           return std::find(dead.begin(), dead.end(),
                                            entry.first) != dead.end();
                         }),
          v.end());
}

Status MemoryGovernor::health() const {
  std::lock_guard<std::mutex> lock(mu_);
  return health_;
}

size_t MemoryGovernor::in_use() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_use_;
}

size_t MemoryGovernor::max_in_use() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_in_use_;
}

size_t MemoryGovernor::waiting() const {
  std::lock_guard<std::mutex> lock(mu_);
  return waiters_.size();
}

MemoryGovernor::Stats MemoryGovernor::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {capacity_, in_use_, max_in_use_, waiters_.size()};
}

size_t MemoryGovernor::contention_hook_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return contention_hooks_.size();
}

namespace {

using TickKey = std::pair<const MemoryGovernor*, const Executor*>;

struct TickRegistryState {
  std::mutex mu;
  // Weak so the map never extends an entry's life: the Shares do.
  std::map<TickKey, std::weak_ptr<void>> entries;
};

// Leaked on purpose: entry destructors may run during static teardown
// of arbitrary translation units and must find the registry alive.
TickRegistryState& TickRegistry() {
  static auto* state = new TickRegistryState();
  return *state;
}

// The refcounted payload behind a Share. Destruction (last Share
// dropped) unhooks the governor and clears the registry slot.
struct TickEntry {
  std::weak_ptr<MemoryGovernor> governor;
  uint64_t hook_id = 0;
  TickKey key;

  ~TickEntry() {
    {
      auto& reg = TickRegistry();
      std::lock_guard<std::mutex> lock(reg.mu);
      auto it = reg.entries.find(key);
      // Erase only our own (now expired) slot: a concurrent Acquire may
      // already have replaced it with a fresh entry for the same pair.
      if (it != reg.entries.end() && it->second.expired())
        reg.entries.erase(it);
    }
    if (auto gov = governor.lock(); gov && hook_id != 0)
      gov->RemoveContentionHook(hook_id);
  }
};

}  // namespace

ReclaimTickRegistry::Share ReclaimTickRegistry::Acquire(
    const std::shared_ptr<MemoryGovernor>& governor,
    const std::shared_ptr<Executor>& executor) {
  if (!governor || !executor) return nullptr;
  auto& reg = TickRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  TickKey key{governor.get(), executor.get()};
  auto it = reg.entries.find(key);
  if (it != reg.entries.end()) {
    if (auto live = it->second.lock()) return live;
  }
  auto entry = std::make_shared<TickEntry>();
  entry->governor = governor;
  entry->key = key;
  // Aliveness is keyed to the entry (the pair's pooled interest), not
  // to any single caller: the hook survives stream churn as long as
  // one Share holds it and self-prunes once the last drops.
  entry->hook_id = governor->AddContentionHook(
      [we = std::weak_ptr<TickEntry>(entry),
       ex = std::weak_ptr<Executor>(executor)] {
        if (we.expired()) return false;
        auto e = ex.lock();
        if (e) e->RequestReclaimTick();
        return e != nullptr;
      });
  reg.entries[key] = entry;
  return entry;
}

}  // namespace bgps::core
