#include "core/governor.hpp"

#include <algorithm>
#include <string>

namespace bgps::core {

void MemoryGovernor::GrantLocked() {
  if (!health_.ok()) return;  // poisoned: nobody is granted anything
  while (!waiters_.empty() && in_use_ + waiters_.front()->n <= capacity_) {
    Waiter* w = waiters_.front();
    waiters_.pop_front();
    in_use_ += w->n;
    max_in_use_ = std::max(max_in_use_, in_use_);
    w->granted = true;
    w->cv.notify_one();
  }
}

Status MemoryGovernor::Acquire(size_t n) {
  if (n == 0) return OkStatus();  // zero demand: unconditional no-op grant
  std::unique_lock<std::mutex> lock(mu_);
  if (!health_.ok()) return health_;
  if (n > capacity_) {
    return InvalidArgument("MemoryGovernor: demand of " + std::to_string(n) +
                           " records exceeds the budget of " +
                           std::to_string(capacity_));
  }
  Waiter w;
  w.n = n;
  waiters_.push_back(&w);
  GrantLocked();
  w.cv.wait(lock, [&] { return w.granted || !health_.ok(); });
  if (w.granted) return OkStatus();
  // Poisoned while waiting: withdraw the demand before unwinding (the
  // Waiter lives on this stack frame).
  waiters_.erase(std::remove(waiters_.begin(), waiters_.end(), &w),
                 waiters_.end());
  return health_;
}

bool MemoryGovernor::TryAcquire(size_t n) {
  if (n == 0) return true;  // zero demand: unconditional no-op grant
  std::lock_guard<std::mutex> lock(mu_);
  if (!health_.ok()) return false;
  if (!waiters_.empty() || in_use_ + n > capacity_) return false;
  in_use_ += n;
  max_in_use_ = std::max(max_in_use_, in_use_);
  return true;
}

void MemoryGovernor::Release(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!health_.ok()) return;  // ledger already poisoned; keep the evidence
  if (n > in_use_) {
    // Double-release accounting bug in a caller. Clamping would quietly
    // inflate the budget for every tenant; poison the ledger instead so
    // the bug surfaces through BgpStream::status().
    health_ = InvalidArgument(
        "MemoryGovernor: released " + std::to_string(n) +
        " slots but only " + std::to_string(in_use_) +
        " are leased (double release)");
    for (Waiter* w : waiters_) w->cv.notify_one();
    return;
  }
  in_use_ -= n;
  GrantLocked();
}

Status MemoryGovernor::health() const {
  std::lock_guard<std::mutex> lock(mu_);
  return health_;
}

size_t MemoryGovernor::in_use() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_use_;
}

size_t MemoryGovernor::max_in_use() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_in_use_;
}

size_t MemoryGovernor::waiting() const {
  std::lock_guard<std::mutex> lock(mu_);
  return waiters_.size();
}

MemoryGovernor::Stats MemoryGovernor::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {capacity_, in_use_, max_in_use_, waiters_.size()};
}

}  // namespace bgps::core
