#include "core/governor.hpp"

#include <algorithm>
#include <string>

namespace bgps::core {

void MemoryGovernor::GrantLocked() {
  while (!waiters_.empty() && in_use_ + waiters_.front()->n <= capacity_) {
    Waiter* w = waiters_.front();
    waiters_.pop_front();
    in_use_ += w->n;
    max_in_use_ = std::max(max_in_use_, in_use_);
    w->granted = true;
    w->cv.notify_one();
  }
}

Status MemoryGovernor::Acquire(size_t n) {
  std::unique_lock<std::mutex> lock(mu_);
  if (n > capacity_) {
    return InvalidArgument("MemoryGovernor: demand of " + std::to_string(n) +
                           " records exceeds the budget of " +
                           std::to_string(capacity_));
  }
  Waiter w;
  w.n = n;
  waiters_.push_back(&w);
  GrantLocked();
  w.cv.wait(lock, [&w] { return w.granted; });
  return OkStatus();
}

bool MemoryGovernor::TryAcquire(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!waiters_.empty() || in_use_ + n > capacity_) return false;
  in_use_ += n;
  max_in_use_ = std::max(max_in_use_, in_use_);
  return true;
}

void MemoryGovernor::Release(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  in_use_ -= std::min(n, in_use_);
  GrantLocked();
}

size_t MemoryGovernor::in_use() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_use_;
}

size_t MemoryGovernor::max_in_use() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_in_use_;
}

size_t MemoryGovernor::waiting() const {
  std::lock_guard<std::mutex> lock(mu_);
  return waiters_.size();
}

}  // namespace bgps::core
