// Global record-budget ledger (runtime layer).
//
// Chunked decode bounds how many records sit in RAM, but the PR-2
// implementation split one per-stream bound evenly across a subset's
// files — each stream (and each in-flight subset) budgeted for its own
// worst case, so N tenants meant N× worst-case memory. MemoryGovernor
// replaces the even split with demand-driven leases against one hard
// process-wide cap: a slot is charged when a record is buffered and
// released when the consumer drains it, wherever in the process that
// happens.
//
// Fairness: blocked Acquire() demands are served strictly FIFO — a
// large demand (the floor reservation for a ~500-file RIB subset)
// cannot be starved by a stream of small ones, because later demands
// (and TryAcquire) never barge past the head of the queue.
//
// Accounting discipline: releasing more slots than are currently
// leased is a double-release bug in the caller, not a condition to
// paper over — it would silently inflate the budget for everyone. The
// first over-release *poisons* the ledger: the exact diagnostic is
// latched (health()), every blocked Acquire wakes with it, and all
// further acquires fail, so the bug surfaces at BgpStream::status()
// instead of as unbounded memory growth.
//
// Zero-demand grants: Acquire(0) and TryAcquire(0) are unconditional
// no-ops — a zero-record MRT file must never block behind a full
// budget or a waiter queue.
//
// Deadlock discipline (how the decode pipeline uses this):
//  * Floor slots — one per file of a subset, acquired *before* the
//    subset is submitted for decode — guarantee every file can always
//    buffer at least one record, which is exactly what MultiWayMerge
//    needs to assemble its heap. The acquire happens on the consumer
//    thread, either opportunistically (TryAcquire, to work ahead) or
//    blocking (Acquire, only when the stream holds no undrained
//    buffers, so the capacity it waits for is always releasable by
//    other tenants).
//  * Extra slots — records beyond a file's first — are only ever taken
//    with TryAcquire from worker tasks, so steady-state decode never
//    blocks the shared Executor.
//  * The one worker-side blocking Acquire is the floor re-acquire when
//    a fully-reclaimed file resumes (idle reclaim returns *all* of a
//    parked tenant's slots, floors included, so a reclaimed-and-never-
//    resumed tenant pins nothing). That Acquire(1) queues FIFO behind
//    earlier demands, and it cannot deadlock even with every worker
//    blocked in it: a blocked demand's contention re-signals run
//    reclaim mark/confirm passes inline on the signaling thread
//    (Executor::RequestReclaimTick), so budget parked on other idle
//    tenants is peeled loose without needing a free worker.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "util/result.hpp"

namespace bgps::core {

class Executor;

class MemoryGovernor {
 public:
  // Lock-consistent stats snapshot (one mutex acquisition).
  struct Stats {
    size_t capacity = 0;
    size_t in_use = 0;
    size_t max_in_use = 0;
    size_t waiting = 0;
  };

  // `capacity` is the hard cap on slots (buffered records) simultaneously
  // leased across every stream and subset sharing this governor.
  explicit MemoryGovernor(size_t capacity) : capacity_(capacity) {}

  MemoryGovernor(const MemoryGovernor&) = delete;
  MemoryGovernor& operator=(const MemoryGovernor&) = delete;

  size_t capacity() const { return capacity_; }

  // Blocks until `n` slots are granted. Demands are served strictly in
  // arrival order (fair FIFO wakeup, no barging). n == 0 is granted
  // unconditionally, without queueing. Error (and no grant) if n
  // exceeds the capacity outright — it could never be satisfied — or
  // if the ledger is poisoned (see health()).
  Status Acquire(size_t n);

  // Non-blocking: grants only when `n` slots are free AND no earlier
  // Acquire() demand is waiting (no barging past the queue). n == 0 is
  // granted unconditionally. False on a poisoned ledger.
  bool TryAcquire(size_t n);

  // Returns `n` slots to the pool and wakes eligible waiters in order.
  // Releasing more than is leased poisons the ledger (see health()).
  void Release(size_t n);

  // Registers a contention hook, invoked (with the governor lock
  // released) while a blocked Acquire() demand exists that the current
  // capacity cannot grant: once when the demand parks, then on a short
  // re-signal interval for as long as it stays blocked. This is the
  // waiter-driven reclaim trigger's signal — StreamPool and any
  // PrefetchDecoder with a reclaim policy wire it to
  // Executor::RequestReclaimTick(), whose mark/confirm protocol fires
  // a tenant only after ~idle_rounds uncontested aging intervals (so
  // the re-signals stand in for dispatch rounds while the pool is
  // stalled, and a lone transient signal can never reclaim anything).
  // The re-signal cost is borne entirely by the blocked waiter; an
  // uncontended process never wakes. A hook returns whether it is
  // still alive; returning false removes it (capture weak_ptrs to
  // anything shorter-lived than the governor and expire with them).
  // Not fired by TryAcquire denials or Releases: opportunistic probes
  // and routine pops are not distress. Returns a handle for
  // RemoveContentionHook (0 for a null hook).
  uint64_t AddContentionHook(std::function<bool()> hook);

  // Deregisters a hook by its AddContentionHook handle. Owners whose
  // governor may never contend (so the self-prune on fire never runs)
  // call this from their destructor to keep the hook list bounded
  // under stream churn; a copy of the hook already being fired may
  // still run once more, so hooks must stay safely callable (weak_ptr
  // captures) regardless.
  void RemoveContentionHook(uint64_t id);

  // OK while the ledger is consistent; after an over-release it carries
  // the exact double-release diagnostic, permanently.
  Status health() const;

  // Currently registered contention hooks (proves hook dedup in tests).
  size_t contention_hook_count() const;

  // Slots currently leased.
  size_t in_use() const;
  // High watermark of in_use() — proves the hard cap in tests.
  size_t max_in_use() const;
  // Blocked Acquire() demands (stats for tests).
  size_t waiting() const;
  Stats snapshot() const;

 private:
  struct Waiter {
    size_t n;
    bool granted = false;
    std::condition_variable cv;
  };

  // Grants queued demands head-of-line-first while capacity allows.
  // Caller holds mu_.
  void GrantLocked();

  // Fires the registered hooks and prunes the ones that report
  // themselves dead. Must be called with mu_ NOT held (hooks take the
  // executor's lock).
  void FireContentionHooks();

  const size_t capacity_;
  mutable std::mutex mu_;
  std::deque<Waiter*> waiters_;  // FIFO; entries live on Acquire stacks
  std::vector<std::pair<uint64_t, std::function<bool()>>> contention_hooks_;
  uint64_t next_hook_id_ = 1;
  size_t in_use_ = 0;
  size_t max_in_use_ = 0;
  Status health_;  // latched by the first over-release
};

// Deduplicates the waiter-driven reclaim trigger: every component that
// wants "contention on governor G should tick reclaim on executor E"
// used to register its own contention hook, so K decoders sharing one
// executor fired K redundant RequestReclaimTick calls per re-signal and
// grew the governor's hook list K-wide. The registry keys one shared
// hook on the (governor, executor) pair; callers hold a Share, and the
// hook is registered on the first Acquire and deregistered when the
// last Share for the pair drops. The hook itself is the same as before:
// weak-captured, fires Executor::RequestReclaimTick(), self-prunes once
// the executor (or the last Share) is gone.
class ReclaimTickRegistry {
 public:
  // Opaque refcount on the pair's shared hook. reset() (or destruction)
  // drops this holder's interest; the underlying hook is removed when
  // the last holder lets go.
  using Share = std::shared_ptr<void>;

  // Registers (or joins) the shared contention hook tying `governor`
  // contention to `executor` reclaim ticks. Null inputs yield an empty
  // Share and register nothing.
  static Share Acquire(const std::shared_ptr<MemoryGovernor>& governor,
                       const std::shared_ptr<Executor>& executor);
};

}  // namespace bgps::core
