#include "core/merge.hpp"

#include <algorithm>

namespace bgps::core {

std::vector<std::vector<broker::DumpFileMeta>> GroupOverlapping(
    std::vector<broker::DumpFileMeta> files) {
  std::sort(files.begin(), files.end());  // by start time first
  std::vector<std::vector<broker::DumpFileMeta>> subsets;

  // The paper's algorithm: (1) seed a subset with the oldest remaining
  // file; (2) recursively add files overlapping any file in the subset;
  // (3) remove them. With files sorted by start, a single left-to-right
  // sweep tracking the subset's max end implements the recursion: a file
  // overlaps the subset iff its start is before that max end.
  size_t i = 0;
  while (i < files.size()) {
    std::vector<broker::DumpFileMeta> subset;
    subset.push_back(files[i]);
    Timestamp max_end = files[i].end();
    size_t j = i + 1;
    while (j < files.size() && files[j].start < max_end) {
      subset.push_back(files[j]);
      max_end = std::max(max_end, files[j].end());
      ++j;
    }
    subsets.push_back(std::move(subset));
    i = j;
  }
  return subsets;
}

namespace {

// Streams records straight out of a DumpReader (decode on this thread).
class StreamingSource : public RecordSource {
 public:
  explicit StreamingSource(const broker::DumpFileMeta& meta) : reader_(meta) {}
  const broker::DumpFileMeta& meta() const override { return reader_.meta(); }
  std::optional<Timestamp> PeekTimestamp() override {
    return reader_.PeekTimestamp();
  }
  std::optional<Record> Next() override { return reader_.Next(); }

 private:
  DumpReader reader_;
};

// Walks an in-memory batch decoded ahead of time by the prefetch stage.
class DecodedSource : public RecordSource {
 public:
  explicit DecodedSource(DecodedDump dump) : dump_(std::move(dump)) {}
  const broker::DumpFileMeta& meta() const override { return dump_.meta; }
  std::optional<Timestamp> PeekTimestamp() override {
    if (next_ >= dump_.records.size()) return std::nullopt;
    return dump_.records[next_].timestamp;
  }
  std::optional<Record> Next() override {
    if (next_ >= dump_.records.size()) return std::nullopt;
    return std::move(dump_.records[next_++]);
  }

 private:
  DecodedDump dump_;
  size_t next_ = 0;
};

}  // namespace

std::unique_ptr<RecordSource> MakeDecodedSource(DecodedDump dump) {
  return std::make_unique<DecodedSource>(std::move(dump));
}

MultiWayMerge::MultiWayMerge(const std::vector<broker::DumpFileMeta>& files,
                             const FileOpenHook& hook) {
  sources_.reserve(files.size());
  for (const auto& f : files) {
    if (hook) hook(f);
    sources_.push_back(std::make_unique<StreamingSource>(f));
    Push(sources_.size() - 1);
  }
}

MultiWayMerge::MultiWayMerge(std::vector<DecodedDump> dumps) {
  sources_.reserve(dumps.size());
  for (auto& d : dumps) {
    sources_.push_back(std::make_unique<DecodedSource>(std::move(d)));
    Push(sources_.size() - 1);
  }
}

MultiWayMerge::MultiWayMerge(
    std::vector<std::unique_ptr<RecordSource>> sources)
    : sources_(std::move(sources)) {
  for (size_t i = 0; i < sources_.size(); ++i) Push(i);
}

void MultiWayMerge::Push(size_t idx) {
  if (auto ts = sources_[idx]->PeekTimestamp()) {
    int rank = sources_[idx]->meta().type == broker::DumpType::Rib ? 1 : 0;
    heap_.push(HeapItem{*ts, rank, idx});
  }
}

std::optional<Record> MultiWayMerge::Next() {
  if (heap_.empty()) return std::nullopt;
  HeapItem top = heap_.top();
  heap_.pop();
  std::optional<Record> rec = sources_[top.source_idx]->Next();
  Push(top.source_idx);
  return rec;
}

}  // namespace bgps::core
