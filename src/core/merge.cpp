#include "core/merge.hpp"

#include <algorithm>

namespace bgps::core {

std::vector<std::vector<broker::DumpFileMeta>> GroupOverlapping(
    std::vector<broker::DumpFileMeta> files) {
  std::sort(files.begin(), files.end());  // by start time first
  std::vector<std::vector<broker::DumpFileMeta>> subsets;

  // The paper's algorithm: (1) seed a subset with the oldest remaining
  // file; (2) recursively add files overlapping any file in the subset;
  // (3) remove them. With files sorted by start, a single left-to-right
  // sweep tracking the subset's max end implements the recursion: a file
  // overlaps the subset iff its start is before that max end.
  size_t i = 0;
  while (i < files.size()) {
    std::vector<broker::DumpFileMeta> subset;
    subset.push_back(files[i]);
    Timestamp max_end = files[i].end();
    size_t j = i + 1;
    while (j < files.size() && files[j].start < max_end) {
      subset.push_back(files[j]);
      max_end = std::max(max_end, files[j].end());
      ++j;
    }
    subsets.push_back(std::move(subset));
    i = j;
  }
  return subsets;
}

MultiWayMerge::MultiWayMerge(const std::vector<broker::DumpFileMeta>& files) {
  readers_.reserve(files.size());
  for (const auto& f : files) {
    readers_.push_back(std::make_unique<DumpReader>(f));
    Push(readers_.size() - 1);
  }
}

void MultiWayMerge::Push(size_t idx) {
  if (auto ts = readers_[idx]->PeekTimestamp()) {
    int rank = readers_[idx]->meta().type == broker::DumpType::Rib ? 1 : 0;
    heap_.push(HeapItem{*ts, rank, idx});
  }
}

std::optional<Record> MultiWayMerge::Next() {
  if (heap_.empty()) return std::nullopt;
  HeapItem top = heap_.top();
  heap_.pop();
  std::optional<Record> rec = readers_[top.reader_idx]->Next();
  Push(top.reader_idx);
  return rec;
}

}  // namespace bgps::core
