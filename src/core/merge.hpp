// Sorted-stream generation (paper §3.3.4).
//
// Collectors write records with monotonically increasing timestamps within
// a file, but a stream mixing collectors / dump types needs record-level
// sorting. libBGPStream performs a multi-way merge over the files of a
// broker response, after breaking the file set into disjoint subsets of
// overlapping time intervals so each heap stays small (the paper reports
// dump-file sets of up to ~500 files collapsing to subsets of ~150).
#pragma once

#include <queue>

#include "core/dump_reader.hpp"

namespace bgps::core {

// Partitions `files` into disjoint subsets such that files with
// overlapping [start, end) intervals share a subset, using the paper's
// iterative algorithm: seed with the oldest file, recursively add
// overlapping files, remove, repeat. Subsets come back ordered by their
// earliest start, each internally sorted.
std::vector<std::vector<broker::DumpFileMeta>> GroupOverlapping(
    std::vector<broker::DumpFileMeta> files);

// Multi-way merge over one subset: opens all files simultaneously and
// repeatedly extracts the oldest record (Figure 3).
class MultiWayMerge {
 public:
  explicit MultiWayMerge(const std::vector<broker::DumpFileMeta>& files);

  // Next record in timestamp order; nullopt when all files are drained.
  std::optional<Record> Next();

  size_t open_files() const { return readers_.size(); }

 private:
  struct HeapItem {
    Timestamp ts;
    // Tie-break at equal timestamps: updates before RIB records. A RIB
    // dump snapshots state *including* same-instant updates, so consumers
    // must see those updates first to stay consistent.
    int type_rank;  // 0 = updates, 1 = rib
    size_t reader_idx;
    bool operator>(const HeapItem& o) const {
      return std::tie(ts, type_rank, reader_idx) >
             std::tie(o.ts, o.type_rank, o.reader_idx);
    }
  };

  void Push(size_t idx);

  std::vector<std::unique_ptr<DumpReader>> readers_;
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap_;
};

}  // namespace bgps::core
