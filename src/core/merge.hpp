// Sorted-stream generation (paper §3.3.4).
//
// Collectors write records with monotonically increasing timestamps within
// a file, but a stream mixing collectors / dump types needs record-level
// sorting. libBGPStream performs a multi-way merge over the files of a
// broker response, after breaking the file set into disjoint subsets of
// overlapping time intervals so each heap stays small (the paper reports
// dump-file sets of up to ~500 files collapsing to subsets of ~150).
#pragma once

#include <queue>

#include "core/dump_reader.hpp"

namespace bgps::core {

// Partitions `files` into disjoint subsets such that files with
// overlapping [start, end) intervals share a subset, using the paper's
// iterative algorithm: seed with the oldest file, recursively add
// overlapping files, remove, repeat. Subsets come back ordered by their
// earliest start, each internally sorted.
std::vector<std::vector<broker::DumpFileMeta>> GroupOverlapping(
    std::vector<broker::DumpFileMeta> files);

// A per-file record cursor the merge pulls from: either a streaming
// DumpReader (synchronous path) or an in-memory DecodedDump produced by
// the prefetching decode stage. Both yield the identical record sequence.
class RecordSource {
 public:
  virtual ~RecordSource() = default;
  virtual const broker::DumpFileMeta& meta() const = 0;
  virtual std::optional<Timestamp> PeekTimestamp() = 0;
  virtual std::optional<Record> Next() = 0;
};

// Wraps a fully-materialized DecodedDump as a RecordSource (the whole-file
// output of the prefetch stage).
std::unique_ptr<RecordSource> MakeDecodedSource(DecodedDump dump);

// Multi-way merge over one subset: opens all files simultaneously and
// repeatedly extracts the oldest record (Figure 3).
class MultiWayMerge {
 public:
  // Streaming path: opens a DumpReader per file (invoking `hook`, if set,
  // before each open) and decodes on the consumer thread.
  explicit MultiWayMerge(const std::vector<broker::DumpFileMeta>& files,
                         const FileOpenHook& hook = nullptr);

  // Prefetched path: merges batches already decoded by worker threads.
  explicit MultiWayMerge(std::vector<DecodedDump> dumps);

  // Generic path: merges any record sources (the prefetch stage hands
  // back DecodedSources or live chunked sources in submitted-file order,
  // so tie-breaks match the streaming path). May block in PeekTimestamp
  // until each source has its first record available.
  explicit MultiWayMerge(std::vector<std::unique_ptr<RecordSource>> sources);

  // Next record in timestamp order; nullopt when all files are drained.
  std::optional<Record> Next();

  size_t open_files() const { return sources_.size(); }

 private:
  struct HeapItem {
    Timestamp ts;
    // Tie-break at equal timestamps: updates before RIB records. A RIB
    // dump snapshots state *including* same-instant updates, so consumers
    // must see those updates first to stay consistent.
    int type_rank;  // 0 = updates, 1 = rib
    size_t source_idx;
    bool operator>(const HeapItem& o) const {
      return std::tie(ts, type_rank, source_idx) >
             std::tie(o.ts, o.type_rank, o.source_idx);
    }
  };

  void Push(size_t idx);

  std::vector<std::unique_ptr<RecordSource>> sources_;
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap_;
};

}  // namespace bgps::core
