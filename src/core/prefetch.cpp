#include "core/prefetch.hpp"

#include <algorithm>

namespace bgps::core {

// Drains one ChunkedFile's bounded buffer as a RecordSource. The workers
// refill the buffer (via State::active) while the consumer merges.
class PrefetchDecoder::ChunkedSource : public RecordSource {
 public:
  ChunkedSource(std::shared_ptr<State> st, std::shared_ptr<ChunkedFile> cf)
      : st_(std::move(st)), cf_(std::move(cf)) {}

  ~ChunkedSource() override {
    std::lock_guard<std::mutex> lock(st_->mu);
    cf_->abandoned = true;
    st_->buffered -= cf_->buffer.size();
    cf_->buffer.clear();
    if (!cf_->claimed) {
      // No worker holds the reader; a claimed one cleans up on unclaim.
      cf_->reader.reset();
      cf_->done = true;
    }
    st_->work_cv.notify_all();
  }

  const broker::DumpFileMeta& meta() const override { return cf_->meta; }

  std::optional<Timestamp> PeekTimestamp() override {
    std::unique_lock<std::mutex> lock(st_->mu);
    st_->chunk_cv.wait(lock,
                       [&] { return !cf_->buffer.empty() || cf_->done; });
    if (cf_->buffer.empty()) return std::nullopt;
    return cf_->buffer.front().timestamp;
  }

  std::optional<Record> Next() override {
    std::unique_lock<std::mutex> lock(st_->mu);
    st_->chunk_cv.wait(lock,
                       [&] { return !cf_->buffer.empty() || cf_->done; });
    if (cf_->buffer.empty()) return std::nullopt;
    Record rec = std::move(cf_->buffer.front());
    cf_->buffer.pop_front();
    --st_->buffered;
    // A slot freed: the file is claimable again.
    st_->work_cv.notify_all();
    return rec;
  }

 private:
  std::shared_ptr<State> st_;
  std::shared_ptr<ChunkedFile> cf_;
};

PrefetchDecoder::PrefetchDecoder(Options options)
    : options_(std::move(options)), state_(std::make_shared<State>()) {
  state_->decode = options_.decode;
  size_t n = std::max<size_t>(1, options_.threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([st = state_] { WorkerLoop(st); });
  }
}

PrefetchDecoder::~PrefetchDecoder() {
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    state_->stopping = true;
  }
  state_->work_cv.notify_all();
  for (auto& w : workers_) w.join();
  // Truncate still-undone chunked files so sources that outlive the
  // decoder drain their buffers and then end instead of hanging.
  std::lock_guard<std::mutex> lock(state_->mu);
  for (auto& job : state_->jobs) {
    for (auto& cf : job->chunks) cf->done = true;
  }
  for (auto& subset : state_->active) {
    for (auto& cf : subset) cf->done = true;
  }
  state_->chunk_cv.notify_all();
}

void PrefetchDecoder::Submit(std::vector<broker::DumpFileMeta> subset) {
  auto job = std::make_shared<Job>();
  if (options_.max_records_in_flight > 0) {
    job->chunked = true;
    size_t cap = std::max<size_t>(
        1, options_.max_records_in_flight / std::max<size_t>(1, subset.size()));
    job->chunks.reserve(subset.size());
    for (auto& f : subset) {
      auto cf = std::make_shared<ChunkedFile>();
      cf->meta = std::move(f);
      cf->capacity = cap;
      job->chunks.push_back(std::move(cf));
    }
  } else {
    job->dumps.resize(subset.size());
    job->files = std::move(subset);
  }
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    PruneActiveLocked(*state_);
    state_->jobs.push_back(std::move(job));
  }
  state_->work_cv.notify_all();
}

std::vector<DecodedDump> PrefetchDecoder::WaitNext() {
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->done_cv.wait(lock, [this] {
    return !state_->jobs.empty() && !state_->jobs.front()->chunked &&
           state_->jobs.front()->decoded == state_->jobs.front()->files.size();
  });
  auto job = state_->jobs.front();
  state_->jobs.pop_front();
  return std::move(job->dumps);
}

std::vector<std::unique_ptr<RecordSource>>
PrefetchDecoder::WaitNextSources() {
  std::unique_lock<std::mutex> lock(state_->mu);
  if (state_->jobs.empty()) return {};
  auto job = state_->jobs.front();
  std::vector<std::unique_ptr<RecordSource>> out;
  if (job->chunked) {
    state_->jobs.pop_front();
    state_->active.push_back(job->chunks);
    PruneActiveLocked(*state_);
    out.reserve(job->chunks.size());
    for (auto& cf : job->chunks) {
      out.push_back(std::make_unique<ChunkedSource>(state_, cf));
    }
    return out;
  }
  state_->done_cv.wait(
      lock, [&] { return job->decoded == job->files.size(); });
  state_->jobs.pop_front();
  out.reserve(job->dumps.size());
  for (auto& d : job->dumps) out.push_back(MakeDecodedSource(std::move(d)));
  return out;
}

size_t PrefetchDecoder::outstanding() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->jobs.size();
}

size_t PrefetchDecoder::in_flight() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  size_t n = state_->jobs.size();
  for (const auto& subset : state_->active) {
    if (SubsetLive(subset)) ++n;
  }
  return n;
}

size_t PrefetchDecoder::files_decoded() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->files_decoded;
}

size_t PrefetchDecoder::max_buffered_records() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->max_buffered;
}

bool PrefetchDecoder::SubsetLive(
    const std::vector<std::shared_ptr<ChunkedFile>>& subset) {
  // Buffered records count even after EOF: the prefetch_subsets memory
  // bound must not admit an extra subset while buffers are still full.
  for (const auto& cf : subset) {
    if (!cf->done || !cf->buffer.empty()) return true;
  }
  return false;
}

void PrefetchDecoder::PruneActiveLocked(State& st) {
  // Front-only pruning keeps consumption order simple.
  while (!st.active.empty() && !SubsetLive(st.active.front())) {
    st.active.pop_front();
  }
}

void PrefetchDecoder::FillChunked(const std::shared_ptr<State>& st,
                                  ChunkedFile& cf,
                                  std::unique_lock<std::mutex>& lock) {
  if (!cf.reader) {
    broker::DumpFileMeta meta = cf.meta;
    lock.unlock();
    if (st->decode.file_open_hook) st->decode.file_open_hook(meta);
    auto reader = std::make_unique<DumpReader>(std::move(meta));
    lock.lock();
    cf.reader = std::move(reader);
  }
  while (!st->stopping && !cf.abandoned && cf.buffer.size() < cf.capacity) {
    lock.unlock();
    std::optional<Record> rec = cf.reader->Next();
    if (rec) AttachPrefetchedElems(*rec, st->decode);
    lock.lock();
    if (!rec) {
      cf.done = true;
      cf.reader.reset();  // release the file handle; nothing left to read
      ++st->files_decoded;
      break;
    }
    if (cf.abandoned) break;  // consumer is gone: drop the record
    cf.buffer.push_back(std::move(*rec));
    ++st->buffered;
    st->max_buffered = std::max(st->max_buffered, st->buffered);
    // Wake a consumer blocked on this file's first record right away
    // instead of making it wait for a full buffer.
    if (cf.buffer.size() == 1) st->chunk_cv.notify_all();
  }
  if (cf.abandoned) {
    cf.reader.reset();
    cf.done = true;
  }
  cf.claimed = false;
  st->chunk_cv.notify_all();
}

void PrefetchDecoder::WorkerLoop(const std::shared_ptr<State>& st) {
  std::unique_lock<std::mutex> lock(st->mu);
  while (true) {
    // Shutdown drops still-unclaimed work: the consumer is gone, so only
    // decodes already in flight are worth finishing.
    if (st->stopping) return;

    // 1. Top up chunked buffers the consumer is actively merging — it
    //    may be blocked on them right now.
    ChunkedFile* fill = nullptr;
    auto fillable = [](const ChunkedFile& cf) {
      return !cf.claimed && !cf.done && !cf.abandoned &&
             cf.buffer.size() < cf.capacity;
    };
    for (auto& subset : st->active) {
      for (auto& cf : subset) {
        if (fillable(*cf)) {
          fill = cf.get();
          break;
        }
      }
      if (fill) break;
    }
    // 2. Then work ahead on queued subsets, oldest first.
    std::shared_ptr<Job> job;
    size_t idx = 0;
    if (!fill) {
      for (auto& j : st->jobs) {
        if (j->chunked) {
          for (auto& cf : j->chunks) {
            if (fillable(*cf)) {
              fill = cf.get();
              break;
            }
          }
        } else if (j->next_file < j->files.size()) {
          job = j;
          idx = job->next_file++;
        }
        if (fill || job) break;
      }
    }
    if (fill) {
      fill->claimed = true;
      FillChunked(st, *fill, lock);
      continue;
    }
    if (job) {
      lock.unlock();
      DecodedDump dump = DecodeDumpFile(job->files[idx], st->decode);
      lock.lock();
      job->dumps[idx] = std::move(dump);
      ++job->decoded;
      ++st->files_decoded;
      if (job->decoded == job->files.size()) st->done_cv.notify_all();
      continue;
    }
    st->work_cv.wait(lock);
  }
}

}  // namespace bgps::core
