#include "core/prefetch.hpp"

#include <algorithm>

namespace bgps::core {

// Drains one ChunkedFile's bounded buffer as a RecordSource. The decode
// tasks refill the buffer (via State::active) while the consumer merges.
class PrefetchDecoder::ChunkedSource : public RecordSource {
 public:
  ChunkedSource(std::shared_ptr<State> st, std::shared_ptr<ChunkedFile> cf)
      : st_(std::move(st)), cf_(std::move(cf)) {}

  ~ChunkedSource() override {
    std::lock_guard<std::mutex> lock(st_->mu);
    cf_->abandoned = true;
    st_->buffered -= cf_->buffer.size();
    cf_->buffer.clear();
    cf_->buffer_cps.clear();
    ReleaseSlotsLocked(*st_, *cf_);
    if (!cf_->claimed) {
      // No task holds the reader; a claimed one cleans up on unclaim.
      cf_->reader.reset();
      cf_->done = true;
    }
  }

  const broker::DumpFileMeta& meta() const override { return cf_->meta; }

  std::optional<Timestamp> PeekTimestamp() override {
    std::unique_lock<std::mutex> lock(st_->mu);
    WaitForRecordLocked(lock);
    if (cf_->buffer.empty()) return std::nullopt;
    return cf_->buffer.front().timestamp;
  }

  std::optional<Record> Next() override {
    std::unique_lock<std::mutex> lock(st_->mu);
    WaitForRecordLocked(lock);
    if (cf_->buffer.empty()) return std::nullopt;
    Record rec = std::move(cf_->buffer.front());
    cf_->buffer.pop_front();
    cf_->buffer_cps.pop_front();
    --st_->buffered;
    ++cf_->consumed;
    // The consumer is draining: reset the tenant's idle-reclaim clock.
    if (st_->tenant != nullptr) st_->tenant->NoteActivity();
    // Return the drained slot(s) to the global budget (keeping the
    // file's floor until it completes). Top the buffer back up once it
    // is half drained — urgent, since the merge heap will come back
    // for this file — rather than queueing a task per pop.
    ReleaseSlotsLocked(*st_, *cf_);
    if (cf_->buffer.size() * 2 <= cf_->capacity) {
      ScheduleFill(st_, cf_, /*urgent=*/true);
    }
    return rec;
  }

 private:
  // Blocks until the file has a buffered record or has truly ended,
  // (re)scheduling a fill whenever none is queued or running — the
  // normal pop path schedules refills, but after an idle reclaim (or a
  // reclaim racing this very wait) the buffer is empty with no task in
  // flight, and this urgent submit is what re-decodes it.
  void WaitForRecordLocked(std::unique_lock<std::mutex>& lock) {
    while (cf_->buffer.empty() && !cf_->done) {
      if (!cf_->claimed) ScheduleFill(st_, cf_, /*urgent=*/true);
      st_->chunk_cv.wait(lock);
    }
  }

  std::shared_ptr<State> st_;
  std::shared_ptr<ChunkedFile> cf_;
};

void PrefetchDecoder::ScheduleFill(const std::shared_ptr<State>& st,
                                   const std::shared_ptr<ChunkedFile>& cf,
                                   bool urgent) {
  if (st->stopping || st->tenant == nullptr) return;
  if (cf->claimed || cf->done || cf->abandoned) return;
  cf->claimed = true;
  // The task remembers its band: when an open-only leg re-submits the
  // decode burst (see FillChunked), the continuation stays in the band
  // the fill was scheduled in.
  auto task = [st, cf, urgent] { FillChunked(st, cf, urgent); };
  if (urgent) {
    st->tenant->SubmitUrgent(std::move(task));
  } else {
    st->tenant->Submit(std::move(task));
  }
}

PrefetchDecoder::PrefetchDecoder(Options options)
    : options_(std::move(options)), state_(std::make_shared<State>()) {
  state_->decode = options_.decode;
  state_->governor = options_.governor;
  executor_ = options_.executor;
  if (!executor_) {
    Executor::Options eopt;
    eopt.threads = std::max<size_t>(1, options_.threads);
    executor_ = std::make_shared<Executor>(eopt);
  }
  tenant_ = executor_->CreateTenant(
      {.weight = std::max<size_t>(1, options_.tenant_weight),
       .deadline = options_.tenant_deadline});
  state_->tenant = tenant_.get();
  if (options_.idle_reclaim_rounds > 0 && options_.max_records_in_flight > 0) {
    // Invoked by a worker with no executor lock held; takes State::mu.
    tenant_->SetIdleReclaim(options_.idle_reclaim_rounds,
                            [st = state_] { ReclaimIdle(st); });
    if (options_.governor) {
      // Wire the waiter-driven reclaim trigger, so the executor+governor
      // embedding works without a StreamPool. The registry pools the
      // hook per (governor, executor) pair: K decoders on one shared
      // executor hold K Shares of ONE hook, so a contention re-signal
      // fires one RequestReclaimTick instead of K redundant ones and
      // the governor's hook list stays flat under stream churn.
      tick_share_ = ReclaimTickRegistry::Acquire(options_.governor, executor_);
    }
  }
}

PrefetchDecoder::~PrefetchDecoder() {
  // Drop our share of the pooled contention hook eagerly: on a
  // never-contended governor the self-prune-on-fire would otherwise
  // never run. The hook itself is removed only when the last decoder
  // sharing the (governor, executor) pair lets go. (A fire already in
  // flight may still call its copy once; the weak captures make that a
  // no-op.)
  tick_share_.reset();
  {
    // Stop fill loops early and stop refill scheduling; queued tasks
    // are discarded by the tenant below, running ones finish.
    std::lock_guard<std::mutex> lock(state_->mu);
    state_->stopping = true;
    state_->tenant = nullptr;
  }
  tenant_.reset();
  // Truncate still-undone chunked files so sources that outlive the
  // decoder drain their buffers and then end instead of hanging, and
  // hand every governor slot back to the global budget.
  std::lock_guard<std::mutex> lock(state_->mu);
  auto truncate = [this](ChunkedFile& cf) {
    cf.done = true;
    if (state_->governor && cf.slots > 0) {
      state_->governor->Release(cf.slots);
      cf.slots = 0;
    }
  };
  for (auto& job : state_->jobs) {
    for (auto& cf : job->chunks) truncate(*cf);
  }
  for (auto& subset : state_->active) {
    for (auto& cf : subset) truncate(*cf);
  }
  state_->chunk_cv.notify_all();
}

void PrefetchDecoder::Submit(std::vector<broker::DumpFileMeta> subset) {
  auto job = std::make_shared<Job>();
  if (options_.max_records_in_flight > 0) {
    job->chunked = true;
    size_t cap = std::max<size_t>(
        1, options_.max_records_in_flight / std::max<size_t>(1, subset.size()));
    job->chunks.reserve(subset.size());
    for (auto& f : subset) {
      auto cf = std::make_shared<ChunkedFile>();
      cf->meta = std::move(f);
      cf->capacity = cap;
      // The caller acquired one floor slot per file (see Options::
      // governor contract); the decoder owns them from here on.
      if (options_.governor) cf->slots = 1;
      job->chunks.push_back(std::move(cf));
    }
  } else {
    job->dumps.resize(subset.size());
    job->files = std::move(subset);
  }
  std::lock_guard<std::mutex> lock(state_->mu);
  PruneActiveLocked(*state_);
  state_->jobs.push_back(job);
  if (job->chunked) {
    for (auto& cf : job->chunks) ScheduleFill(state_, cf, /*urgent=*/false);
    return;
  }
  for (size_t idx = 0; idx < job->files.size(); ++idx) {
    if (state_->tenant == nullptr) break;
    state_->tenant->Submit([st = state_, job, idx] {
      DecodedDump dump = DecodeDumpFile(job->files[idx], st->decode);
      std::lock_guard<std::mutex> lock(st->mu);
      job->dumps[idx] = std::move(dump);
      ++job->decoded;
      ++st->files_decoded;
      if (job->decoded == job->files.size()) st->done_cv.notify_all();
    });
  }
}

std::vector<DecodedDump> PrefetchDecoder::WaitNext() {
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->done_cv.wait(lock, [this] {
    return !state_->jobs.empty() && !state_->jobs.front()->chunked &&
           state_->jobs.front()->decoded == state_->jobs.front()->files.size();
  });
  auto job = state_->jobs.front();
  state_->jobs.pop_front();
  return std::move(job->dumps);
}

std::vector<std::unique_ptr<RecordSource>>
PrefetchDecoder::WaitNextSources() {
  std::unique_lock<std::mutex> lock(state_->mu);
  if (state_->jobs.empty()) return {};
  auto job = state_->jobs.front();
  std::vector<std::unique_ptr<RecordSource>> out;
  if (job->chunked) {
    state_->jobs.pop_front();
    state_->active.push_back(job->chunks);
    PruneActiveLocked(*state_);
    out.reserve(job->chunks.size());
    for (auto& cf : job->chunks) {
      out.push_back(std::make_unique<ChunkedSource>(state_, cf));
    }
    return out;
  }
  state_->done_cv.wait(
      lock, [&] { return job->decoded == job->files.size(); });
  state_->jobs.pop_front();
  out.reserve(job->dumps.size());
  for (auto& d : job->dumps) out.push_back(MakeDecodedSource(std::move(d)));
  return out;
}

size_t PrefetchDecoder::outstanding() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->jobs.size();
}

size_t PrefetchDecoder::in_flight() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  size_t n = state_->jobs.size();
  for (const auto& subset : state_->active) {
    if (SubsetLive(subset)) ++n;
  }
  return n;
}

size_t PrefetchDecoder::files_decoded() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->files_decoded;
}

size_t PrefetchDecoder::max_buffered_records() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->max_buffered;
}

size_t PrefetchDecoder::buffered_records() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->buffered;
}

size_t PrefetchDecoder::reclaims() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->reclaims;
}

size_t PrefetchDecoder::seek_resumes() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->seek_resumes;
}

size_t PrefetchDecoder::skip_resumes() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->skip_resumes;
}

size_t PrefetchDecoder::queued_tasks() const {
  return tenant_ ? tenant_->queued() : 0;
}

size_t PrefetchDecoder::tenant_tasks_run() const {
  return tenant_ ? tenant_->tasks_run() : 0;
}

bool PrefetchDecoder::SubsetLive(
    const std::vector<std::shared_ptr<ChunkedFile>>& subset) {
  // Buffered records count even after EOF: the prefetch_subsets memory
  // bound must not admit an extra subset while buffers are still full.
  for (const auto& cf : subset) {
    if (!cf->done || !cf->buffer.empty()) return true;
  }
  return false;
}

void PrefetchDecoder::PruneActiveLocked(State& st) {
  // Front-only pruning keeps consumption order simple.
  while (!st.active.empty() && !SubsetLive(st.active.front())) {
    st.active.pop_front();
  }
}

void PrefetchDecoder::ReclaimIdle(const std::shared_ptr<State>& st) {
  std::lock_guard<std::mutex> lock(st->mu);
  if (st->stopping) return;
  // Files with a fill task queued/running are left alone (the task
  // holds the reader with the lock released, and may buffer more
  // records right after this pass). The executor's reclaim policy is
  // one-shot until the consumer's next NoteActivity, so when any such
  // file is skipped we reset the idle clock ourselves — another pass
  // fires idle_reclaim_rounds later and catches it, instead of the
  // tenant pinning those buffers until the consumer resumes.
  bool skipped_busy = false;
  auto reclaim_subset =
      [&](const std::vector<std::shared_ptr<ChunkedFile>>& subset) {
        for (const auto& cf : subset) {
          if (cf->abandoned) continue;
          if (cf->claimed) {
            skipped_busy = true;
            continue;
          }
          // Quiescent = no fill task in flight and records parked in
          // the buffer.
          if (cf->buffer.empty()) continue;
          // The front buffered record is exactly where resume must
          // restart: remember its checkpoint so the refill seeks there
          // in O(1) instead of re-framing `consumed` records.
          cf->resume_cp = cf->buffer_cps.front();
          st->buffered -= cf->buffer.size();
          cf->buffer.clear();
          cf->buffer_cps.clear();
          cf->reader.reset();  // position is lost; resume_cp restores it
          if (cf->done) {
            // The records still owed to the consumer must be re-decoded,
            // so the file is no longer "decoded".
            cf->done = false;
            if (st->files_decoded > 0) --st->files_decoded;
          }
          cf->reclaimed = true;
          ++st->reclaims;
          // Full release: the floor slot goes back to the budget too.
          // Keeping it (the pre-fix behavior) leaked one slot per file
          // of every reclaimed-and-never-resumed tenant — a dead
          // stream's floors stayed leased forever, silently shrinking
          // the shared budget. The resume fill re-acquires its floor
          // through the governor's fair FIFO Acquire instead (see
          // FillChunked), which can never be starved and whose blocked
          // wait runs reclaim passes inline.
          ReleaseSlotsLocked(*st, *cf);
          if (st->governor && cf->slots > 0) {
            st->governor->Release(cf->slots);
            cf->slots = 0;
          }
        }
      };
  for (const auto& job : st->jobs) {
    if (job->chunked) reclaim_subset(job->chunks);
  }
  for (const auto& subset : st->active) reclaim_subset(subset);
  // No explicit retry is needed for the skipped files: the contention
  // that fired this pass keeps re-signalling while it stays blocked
  // (and a busy pool's round clock keeps advancing), so the next pass
  // catches them once their fills unclaim.
  if (skipped_busy && st->tenant != nullptr) st->tenant->NoteActivity();
}

void PrefetchDecoder::ReleaseSlotsLocked(State& st, ChunkedFile& cf) {
  if (!st.governor || cf.slots == 0) return;
  // A completed-and-drained (or abandoned) file needs nothing; a live
  // one needs one slot per buffered record (plus one for a record the
  // fill task is decoding right now) and its floor.
  size_t target;
  if (cf.abandoned || (cf.done && cf.buffer.empty())) {
    target = 0;
  } else {
    target = std::max<size_t>(cf.done ? 0 : 1, cf.buffer.size() + cf.decoding);
  }
  if (cf.slots > target) {
    st.governor->Release(cf.slots - target);
    cf.slots = target;
  }
}

void PrefetchDecoder::FillChunked(const std::shared_ptr<State>& st,
                                  const std::shared_ptr<ChunkedFile>& cfp,
                                  bool urgent) {
  ChunkedFile& cf = *cfp;
  std::unique_lock<std::mutex> lock(st->mu);
  bool opened = false;
  if (!cf.reader && !cf.done && !cf.abandoned && !st->stopping) {
    opened = true;
    broker::DumpFileMeta meta = cf.meta;
    bool resuming = cf.reclaimed;
    DumpReader::Checkpoint resume_cp = cf.resume_cp;
    size_t skip = resuming ? cf.consumed : 0;
    // A full-release reclaim returned this file's floor slot to the
    // global budget (slots == 0 happens no other way: fresh files own
    // their floor from Submit). Re-acquire it through the governor's
    // fair FIFO Acquire before re-opening — the demand queues behind
    // earlier blocked demands instead of barging via TryAcquire, and
    // while it waits its contention re-signals run reclaim passes
    // inline (see Executor::RequestReclaimTick), so budget parked on
    // other idle tenants is peeled loose even when every worker is
    // blocked here.
    bool need_floor = st->governor != nullptr && cf.slots == 0;
    lock.unlock();
    bool floor_acquired = false;
    if (need_floor) floor_acquired = st->governor->Acquire(1).ok();
    std::unique_ptr<DumpReader> reader;
    bool exhausted = false;
    if (need_floor && !floor_acquired) {
      // A 1-slot demand only fails on a poisoned ledger (double-release
      // accounting bug): end the file like a shutdown truncation; the
      // stream surfaces the latched governor health as its status.
      exhausted = false;
    } else {
      if (st->decode.file_open_hook) st->decode.file_open_hook(meta);
      if (resuming && resume_cp.valid) {
        // Resuming after an idle reclaim: seek straight to the first
        // dropped record's checkpoint — O(1), the consumed prefix is
        // never read again.
        reader = std::make_unique<DumpReader>(std::move(meta), resume_cp);
      } else {
        // Fresh file, or a reclaimed record with no byte position (the
        // synthesized open-failure record): re-open from the start and
        // Skip() the records the consumer already drained. Skip counts
        // raw framing units without re-decoding the BGP payloads;
        // < skip ⇔ the file shrank.
        reader = std::make_unique<DumpReader>(std::move(meta));
        exhausted = reader->Skip(skip) < skip;
      }
    }
    lock.lock();
    cf.reclaimed = false;
    if (floor_acquired) ++cf.slots;  // recorded under the lock it is read
    if (need_floor && !floor_acquired) {
      cf.done = true;  // poisoned governor: truncate, never hang
    } else {
      if (resuming) {
        ++(resume_cp.valid ? st->seek_resumes : st->skip_resumes);
      }
      if (exhausted) {
        cf.done = true;
        ++st->files_decoded;
      } else {
        cf.reader = std::move(reader);
      }
    }
  }
  // Deadline-class head-of-line fix: the open above (archive-latency
  // bound — in the paper's deployment an HTTP fetch) and the decode
  // burst below (CPU bound, up to `capacity` records) used to run as
  // one task, so every same-class tenant's queued open waited behind
  // whole bursts p99-style. Hand the burst back to the scheduler as
  // its own task in the same band instead: the worker is released
  // after the open, and EDF claims interleave other tenants' opens
  // ahead of this file's burst. cf stays claimed — the continuation
  // task is the claim's next leg, so no duplicate fill can schedule.
  if (opened && !st->stopping && !cf.abandoned && !cf.done &&
      st->tenant != nullptr) {
    auto task = [st, cfp, urgent] { FillChunked(st, cfp, urgent); };
    if (urgent) {
      st->tenant->SubmitUrgent(std::move(task));
    } else {
      st->tenant->Submit(std::move(task));
    }
    return;
  }
  while (!st->stopping && !cf.abandoned && !cf.done &&
         cf.buffer.size() < cf.capacity) {
    // Lease a slot for the next record *before* decoding it. The first
    // record rides on the file's floor slot; extras are opportunistic
    // (TryAcquire never blocks the shared Executor) — when the global
    // budget is spent, stop filling; consumer pops re-schedule us.
    if (st->governor && cf.buffer.size() + 1 > cf.slots) {
      if (!st->governor->TryAcquire(1)) break;
      ++cf.slots;
    }
    cf.decoding = 1;  // the lease above covers the record decoded next
    lock.unlock();
    std::optional<Record> rec = cf.reader->Next();
    if (rec) AttachPrefetchedElems(*rec, st->decode, &cf.arena);
    lock.lock();
    // Holding the lock through the push below: no pop can interleave
    // between clearing the in-flight mark and the slot becoming a
    // buffered record's.
    cf.decoding = 0;
    if (!rec) {
      cf.done = true;
      cf.reader.reset();  // release the file handle; nothing left to read
      ++st->files_decoded;
      break;
    }
    if (cf.abandoned) break;  // consumer is gone: drop the record
    cf.buffer.push_back(std::move(*rec));
    cf.buffer_cps.push_back(cf.reader->last_checkpoint());
    ++st->buffered;
    st->max_buffered = std::max(st->max_buffered, st->buffered);
    // Wake a consumer blocked on this file's first record right away
    // instead of making it wait for a full buffer.
    if (cf.buffer.size() == 1) st->chunk_cv.notify_all();
  }
  if (cf.abandoned) {
    cf.reader.reset();
    cf.done = true;
  }
  // Hand back any slot leased for a record that never materialized
  // (EOF, denied push, shutdown) — and everything, once dead.
  ReleaseSlotsLocked(*st, cf);
  cf.claimed = false;
  st->chunk_cv.notify_all();
}

}  // namespace bgps::core
