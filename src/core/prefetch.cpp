#include "core/prefetch.hpp"

#include <algorithm>

namespace bgps::core {

PrefetchDecoder::PrefetchDecoder(Options options)
    : options_(std::move(options)) {
  size_t n = std::max<size_t>(1, options_.threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

PrefetchDecoder::~PrefetchDecoder() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void PrefetchDecoder::Submit(std::vector<broker::DumpFileMeta> subset) {
  auto job = std::make_shared<Job>();
  job->dumps.resize(subset.size());
  job->files = std::move(subset);
  {
    std::lock_guard<std::mutex> lock(mu_);
    jobs_.push_back(std::move(job));
  }
  work_cv_.notify_all();
}

std::vector<DecodedDump> PrefetchDecoder::WaitNext() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] {
    return !jobs_.empty() && jobs_.front()->decoded == jobs_.front()->files.size();
  });
  auto job = jobs_.front();
  jobs_.pop_front();
  return std::move(job->dumps);
}

size_t PrefetchDecoder::outstanding() const {
  std::lock_guard<std::mutex> lock(mu_);
  return jobs_.size();
}

size_t PrefetchDecoder::files_decoded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return files_decoded_;
}

void PrefetchDecoder::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    // Shutdown drops still-unclaimed work: the consumer is gone, so only
    // decodes already in flight are worth finishing.
    if (stopping_) return;
    // Claim the earliest unclaimed file across queued jobs (front first:
    // the consumer is waiting on the oldest subset).
    std::shared_ptr<Job> job;
    size_t idx = 0;
    for (auto& j : jobs_) {
      if (j->next_file < j->files.size()) {
        job = j;
        idx = job->next_file++;
        break;
      }
    }
    if (!job) {
      work_cv_.wait(lock);
      continue;
    }
    lock.unlock();
    DecodedDump dump = DecodeDumpFile(job->files[idx], options_.file_open_hook);
    lock.lock();
    job->dumps[idx] = std::move(dump);
    ++job->decoded;
    ++files_decoded_;
    if (job->decoded == job->files.size()) done_cv_.notify_all();
  }
}

}  // namespace bgps::core
