// Asynchronous prefetching decode stage (paper §3.1).
//
// The central live-mode requirement is that processing outpaces data
// generation. The synchronous stream interleaves file open + MRT decode
// with merge/filter/elem extraction on one thread, so every millisecond
// of retrieval latency (in the paper's deployment the dumps stream over
// HTTP from the RouteViews / RIPE RIS archives) stalls the consumer.
//
// PrefetchDecoder moves open+decode onto a small worker pool that runs
// ahead of the consumer: while the application merges overlapping-subset
// N, workers are already opening and decoding the files of subsets
// N+1..N+depth into in-memory record batches (DecodedDump), handed back
// through an order-preserving queue. BgpStream bounds how many subsets
// are in flight (Options::prefetch_subsets), which bounds memory.
//
// Ordering guarantee: WaitNext() returns subsets in Submit() order, and
// within a subset the DecodedDump vector preserves the submitted file
// order, so a MultiWayMerge built from it breaks ties exactly like the
// synchronous path and the two paths emit identical record sequences.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

#include "core/dump_reader.hpp"

namespace bgps::core {

class PrefetchDecoder {
 public:
  struct Options {
    size_t threads = 2;       // decode workers (clamped to >= 1)
    FileOpenHook file_open_hook;  // runs on the worker thread per file
  };

  explicit PrefetchDecoder(Options options);
  // Abandons still-unclaimed queued files (the consumer is gone), lets
  // in-flight decodes finish, and joins the pool.
  ~PrefetchDecoder();

  PrefetchDecoder(const PrefetchDecoder&) = delete;
  PrefetchDecoder& operator=(const PrefetchDecoder&) = delete;

  // Enqueues one overlapping-subset for decoding. Never blocks; the
  // caller (BgpStream) bounds the number of subsets in flight.
  void Submit(std::vector<broker::DumpFileMeta> subset);

  // Blocks until the oldest submitted subset is fully decoded and
  // returns it (FIFO: results come back in Submit order regardless of
  // which worker finished first). Precondition: outstanding() > 0.
  std::vector<DecodedDump> WaitNext();

  // Subsets submitted but not yet returned by WaitNext().
  size_t outstanding() const;

  // Dump files decoded so far (stats for tests/benches).
  size_t files_decoded() const;

 private:
  struct Job {
    std::vector<broker::DumpFileMeta> files;
    std::vector<DecodedDump> dumps;  // slot per file, filled by workers
    size_t next_file = 0;            // next index to claim
    size_t decoded = 0;              // slots filled
  };

  void WorkerLoop();

  Options options_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // workers: "a file may be claimable"
  std::condition_variable done_cv_;  // consumer: "front job may be done"
  std::deque<std::shared_ptr<Job>> jobs_;  // submission order
  size_t files_decoded_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace bgps::core
