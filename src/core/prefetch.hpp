// Asynchronous prefetching decode stage (paper §3.1).
//
// The central live-mode requirement is that processing outpaces data
// generation. The synchronous stream interleaves file open + MRT decode
// with merge/filter/elem extraction on one thread, so every millisecond
// of retrieval latency (in the paper's deployment the dumps stream over
// HTTP from the RouteViews / RIPE RIS archives) stalls the consumer.
//
// PrefetchDecoder schedules open+decode as tasks on a core::Executor
// that run ahead of the consumer: while the application merges
// overlapping-subset N, decode tasks are already opening and decoding
// the files of subsets N+1..N+depth, handed back through an
// order-preserving queue. BgpStream bounds how many subsets are in
// flight (Options::prefetch_subsets), which bounds memory.
//
// The decoder is one *tenant* of its Executor. By default it creates a
// private Executor (Options::threads workers) and behaves exactly like
// a dedicated pool; inject a shared Executor (Options::executor, via
// bgps::StreamPool) and many concurrent streams decode on one
// process-wide pool, each with a FIFO queue dispatched round-robin so a
// heavy stream cannot starve the others.
//
// Two decode modes (Options::max_records_in_flight):
//  * whole-file (0, default): each file is fully materialized into a
//    DecodedDump before the subset is handed to the consumer. Lowest
//    synchronization cost; memory is O(records per subset).
//  * chunked (> 0): each file streams through a bounded per-file record
//    buffer that decode tasks keep topped up while the consumer merges,
//    so a ~500-file RIB subset (paper §3.3.4) never holds more than
//    max_records_in_flight records in RAM per in-flight subset.
//
// Chunked buffering can additionally be governed by a process-wide
// MemoryGovernor (Options::governor): each buffered record then leases
// one slot from the global budget — a floor slot per file (acquired by
// the caller before Submit, ownership passes to the decoder) plus
// demand-driven extras the fill tasks TryAcquire (never blocking the
// shared Executor). Slots release as the consumer drains.
//
// The decode tasks can also pre-extract (and elem-filter) elems into
// Record::prefetched_elems (Options::decode.extract_elems), moving the
// §3.3.3 decomposition off the consumer thread too.
//
// Idle-tenant reclaim (Options::idle_reclaim_rounds): a paused consumer
// would otherwise park its chunked buffers — and their governor leases
// — indefinitely, shrinking the shared budget for every other tenant.
// With a reclaim threshold set, once the consumer has not drained a
// record for that many executor dispatch rounds, the decoder drops all
// buffered-but-undrained chunked records, releases *every* governor
// lease they held — extras and the per-file floor slots alike, so a
// reclaimed tenant that never resumes drains its governor footprint to
// zero — and stores the DumpReader::Checkpoint of the first dropped
// record. When the consumer resumes, the next fill task — scheduled via
// SubmitUrgent because the consumer is blocked on it — first re-acquires
// the file's floor through the governor's fair FIFO Acquire (the blocked
// demand's contention re-signals run reclaim passes inline, so budget
// parked on other idle tenants is freed even when every worker is
// blocked in such an Acquire), then reconstructs the reader straight at
// that checkpoint (an O(1) seek; only records the checkpoint cannot
// cover, e.g. an open-failure file, fall back to the O(consumed)
// re-open + Skip path), so the emitted sequence is identical to a
// never-reclaimed run without re-reading the consumed prefix of a
// large dump.
//
// Ordering guarantee: WaitNextSources() returns subsets in Submit()
// order, and within a subset sources preserve the submitted file order,
// so a MultiWayMerge built from them breaks ties exactly like the
// synchronous path and all paths emit identical record sequences.
#pragma once

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>

#include "core/executor.hpp"
#include "core/governor.hpp"
#include "core/merge.hpp"

namespace bgps::core {

class PrefetchDecoder {
 public:
  struct Options {
    // Private-executor size (clamped to >= 1). Ignored when a shared
    // executor is injected below.
    size_t threads = 2;
    // Shared process-wide decode pool (see bgps::StreamPool). Null =
    // create a private Executor with `threads` workers.
    std::shared_ptr<Executor> executor;
    // Global record-budget ledger for chunked buffers. Null = only the
    // per-subset split below bounds memory. Contract: when set, the
    // caller must Acquire(subset.size()) floor slots before each
    // chunked Submit; the decoder takes ownership and releases them.
    std::shared_ptr<MemoryGovernor> governor;
    DumpDecodeOptions decode;  // open hook + worker-side elem extraction
    // Chunked decode: cap on records buffered in RAM per in-flight
    // subset, split evenly across its files (floor of one record per
    // file). 0 = whole-file materialization.
    size_t max_records_in_flight = 0;
    // Scheduling weight of this decoder's tenant queue: tasks drained
    // per dispatch visit relative to other tenants (clamped to >= 1).
    size_t tenant_weight = 1;
    // Join the executor's deadline class for this weight: decode tasks
    // drain earliest-enqueued-first across every same-weight deadline
    // tenant, so a live consumer's wait tracks enqueue order instead of
    // cursor position. See Executor::TenantOptions::deadline.
    bool tenant_deadline = false;
    // Idle-tenant reclaim: when the consumer has not drained a record
    // for this many executor dispatch rounds, drop the chunked buffers
    // (keeping one governor floor slot per file) and re-decode on
    // resume. 0 = never reclaim. Chunked mode only.
    size_t idle_reclaim_rounds = 0;
  };

  explicit PrefetchDecoder(Options options);
  // Abandons still-unclaimed queued files (the consumer is gone), lets
  // in-flight decodes finish, and releases the decoder's tenant queue
  // (and any governor slots it still holds). Chunked sources that
  // outlive the decoder keep serving their buffered records, then end
  // (truncated) — BgpStream never lets that happen.
  ~PrefetchDecoder();

  PrefetchDecoder(const PrefetchDecoder&) = delete;
  PrefetchDecoder& operator=(const PrefetchDecoder&) = delete;

  // Enqueues one overlapping-subset for decoding. Never blocks; the
  // caller (BgpStream) bounds the number of subsets in flight.
  void Submit(std::vector<broker::DumpFileMeta> subset);

  // Blocks until the oldest submitted subset is fully decoded and
  // returns it (FIFO: results come back in Submit order regardless of
  // which task finished first). Whole-file mode only. Precondition:
  // outstanding() > 0.
  std::vector<DecodedDump> WaitNext();

  // Mode-independent hand-off: record sources for the oldest submitted
  // subset, in file order. Whole-file mode blocks until the subset is
  // fully decoded; chunked mode returns immediately with live sources
  // the decode tasks keep filling (their Peek/Next block until a record
  // or end-of-file). Precondition: outstanding() > 0.
  std::vector<std::unique_ptr<RecordSource>> WaitNextSources();

  // Subsets submitted but not yet returned by WaitNext*().
  size_t outstanding() const;

  // Subsets still holding decode resources: queued ones plus (chunked
  // mode) handed-out subsets whose files are not fully drained yet.
  // BgpStream bounds this by Options::prefetch_subsets.
  size_t in_flight() const;

  // Dump files decoded so far (stats for tests/benches).
  size_t files_decoded() const;

  // High watermark of records simultaneously buffered by chunked decode
  // (0 in whole-file mode). Proves the memory bound in tests.
  size_t max_buffered_records() const;

  // Records currently sitting in chunked buffers (0 in whole-file
  // mode). Stats for StreamPool introspection.
  size_t buffered_records() const;

  // Chunked files whose undrained buffers were dropped by idle-tenant
  // reclaim so far (each is re-decoded on resume).
  size_t reclaims() const;

  // Reclaimed files resumed by seeking straight to the stored
  // checkpoint (O(1) — no re-read of the consumed prefix).
  size_t seek_resumes() const;

  // Reclaimed files resumed by the fallback re-open + Skip(consumed)
  // path (only files whose records carry no byte position, e.g. an
  // open-failure record). The large-file resume test pins this at 0.
  size_t skip_resumes() const;

  // Decode tasks queued on this decoder's tenant but not yet claimed.
  size_t queued_tasks() const;

  // Decode tasks completed for this decoder's tenant.
  size_t tenant_tasks_run() const;

 private:
  // One file streaming through a bounded buffer (chunked mode). All
  // fields are guarded by State::mu except reader and arena *while
  // claimed*, which the claiming task uses with the lock released.
  struct ChunkedFile {
    broker::DumpFileMeta meta;
    size_t capacity = 1;
    std::deque<Record> buffer;
    // Resume point of each buffered record, in lockstep with `buffer`:
    // the front entry is where a reclaim's resume must restart.
    std::deque<DumpReader::Checkpoint> buffer_cps;
    std::unique_ptr<DumpReader> reader;  // created by the first filler
    ElemArena arena;         // primes prefetched_elems reserves
    size_t slots = 0;        // governor slots held (floor + extras)
    // 1 while the fill task decodes a record with the lock released and
    // a slot already leased for it; keeps concurrent consumer pops from
    // releasing that in-flight lease (ReleaseSlotsLocked counts it).
    size_t decoding = 0;
    // Records the consumer has popped from this file so far (the
    // Skip-fallback resume count; also an invariant check on resume_cp).
    size_t consumed = 0;
    // Where the reclaimed buffer's first record lives, for the O(1)
    // seek resume (valid ⇔ the record had a byte position).
    DumpReader::Checkpoint resume_cp;
    bool claimed = false;    // a fill task is queued or running
    bool done = false;       // reader exhausted (or truncated at shutdown)
    bool abandoned = false;  // the consumer dropped the source
    // Idle reclaim dropped this file's buffer; the next fill must
    // reconstruct the reader at resume_cp (or re-open + Skip) first.
    bool reclaimed = false;
  };

  struct Job {
    bool chunked = false;
    // Whole-file mode:
    std::vector<broker::DumpFileMeta> files;
    std::vector<DecodedDump> dumps;  // slot per file, filled by tasks
    size_t decoded = 0;              // slots filled
    // Chunked mode:
    std::vector<std::shared_ptr<ChunkedFile>> chunks;
  };

  // Shared between the facade, the decode tasks, and any ChunkedSources
  // still held by a MultiWayMerge — shared_ptr-owned so sources stay
  // valid no matter the destruction order.
  struct State {
    DumpDecodeOptions decode;
    std::shared_ptr<MemoryGovernor> governor;
    mutable std::mutex mu;
    std::condition_variable done_cv;   // consumer: front whole-file job done
    std::condition_variable chunk_cv;  // consumer: chunked records/EOF ready
    // Refill scheduling target; nulled (under mu) before the decoder
    // destroys it, so late refill requests are safely dropped.
    Executor::Tenant* tenant = nullptr;
    std::deque<std::shared_ptr<Job>> jobs;  // submission order, not handed out
    // Chunked subsets handed to the consumer but still being filled.
    std::deque<std::vector<std::shared_ptr<ChunkedFile>>> active;
    size_t files_decoded = 0;
    size_t buffered = 0;      // records currently in chunked buffers
    size_t max_buffered = 0;  // high watermark of `buffered`
    size_t reclaims = 0;      // chunked files reclaimed while idle
    size_t seek_resumes = 0;  // reclaim resumes via checkpoint seek
    size_t skip_resumes = 0;  // reclaim resumes via re-open + Skip
    bool stopping = false;
  };

  class ChunkedSource;

  // Fills `cf` (claimed by the running task) until full/EOF/denied-
  // lease/abandoned/stop. Runs as an Executor task. When the file is
  // not open yet, the task only performs the open (plus any reclaim
  // resume seek and floor re-acquisition) and re-submits the decode
  // burst as a separate task in the same band (`urgent`), so queued
  // opens of other deadline-class tenants never wait behind a whole
  // decode burst.
  static void FillChunked(const std::shared_ptr<State>& st,
                          const std::shared_ptr<ChunkedFile>& cf,
                          bool urgent);
  // Queues a fill task for `cf` on the decoder's tenant if it can make
  // progress and none is queued or running. Caller holds State::mu.
  // `urgent` puts the task at the front of the tenant queue (the
  // consumer may be blocked on this very file).
  static void ScheduleFill(const std::shared_ptr<State>& st,
                           const std::shared_ptr<ChunkedFile>& cf,
                           bool urgent);
  // Releases cf's governor slots down to what its buffer still needs.
  // Caller holds State::mu.
  static void ReleaseSlotsLocked(State& st, ChunkedFile& cf);
  // True while a handed-out subset still holds decode resources (any
  // file not yet decoded AND drained). in_flight() counts live subsets
  // toward the prefetch_subsets bound; PruneActiveLocked drops dead
  // ones — both must use this one predicate.
  static bool SubsetLive(const std::vector<std::shared_ptr<ChunkedFile>>& s);
  // Drops handed-out subsets whose files are all drained or abandoned.
  static void PruneActiveLocked(State& st);
  // Idle-tenant reclaim pass (invoked by the Executor with no executor
  // lock held): drops every quiescent chunked file's buffered records,
  // releases every governor lease they held — extras and floor slots
  // alike — and marks the files for skip-ahead re-decode on resume
  // (which re-acquires its floor via the governor's FIFO Acquire).
  static void ReclaimIdle(const std::shared_ptr<State>& st);

  Options options_;
  std::shared_ptr<State> state_;
  // Share of the (governor, executor) pair's pooled contention hook
  // (see ReclaimTickRegistry); dropped eagerly in the destructor.
  ReclaimTickRegistry::Share tick_share_;
  // Private pool when no shared executor was injected. Declared before
  // tenant_ so the tenant detaches first (members destruct in reverse).
  std::shared_ptr<Executor> executor_;
  std::unique_ptr<Executor::Tenant> tenant_;
};

}  // namespace bgps::core
