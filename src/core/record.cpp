#include "core/record.hpp"

namespace bgps::core {

const char* RecordStatusName(RecordStatus s) {
  switch (s) {
    case RecordStatus::Valid: return "valid";
    case RecordStatus::CorruptedDump: return "corrupted-dump";
    case RecordStatus::CorruptedRecord: return "corrupted-record";
    case RecordStatus::Unsupported: return "unsupported";
  }
  return "unknown";
}

const char* DumpPositionName(DumpPosition p) {
  switch (p) {
    case DumpPosition::Start: return "start";
    case DumpPosition::Middle: return "middle";
    case DumpPosition::End: return "end";
  }
  return "unknown";
}

}  // namespace bgps::core
