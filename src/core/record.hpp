// BGPStream record: a de-serialized MRT record plus provenance annotations
// and an error flag (paper §3.3.3).
#pragma once

#include <memory>
#include <optional>

#include "broker/archive.hpp"
#include "core/arena.hpp"
#include "core/elem.hpp"
#include "mrt/mrt.hpp"

namespace bgps::core {

using broker::DumpType;

enum class RecordStatus : uint8_t {
  Valid,           // body decoded
  CorruptedDump,   // the dump file could not be opened / framing broke
  CorruptedRecord, // this record's body is malformed
  Unsupported,     // valid framing, unimplemented type/subtype
};

const char* RecordStatusName(RecordStatus s);

// Marks records that begin or end a dump file so users can collate the
// records of a single RIB dump (paper §3.3.3).
enum class DumpPosition : uint8_t { Start, Middle, End };

const char* DumpPositionName(DumpPosition p);

struct Record {
  // Provenance annotations. Interned: each distinct project/collector
  // name is stored once per process, so stamping (and copying) them per
  // record is a pointer copy, never a heap allocation. They convert
  // implicitly to const std::string&.
  InternedString project;
  InternedString collector;
  DumpType dump_type = DumpType::Updates;
  Timestamp dump_time = 0;  // nominal start of the originating dump file

  RecordStatus status = RecordStatus::Valid;
  DumpPosition position = DumpPosition::Middle;

  // Timestamp of the MRT record (header value even for corrupt bodies;
  // dump_time when framing broke before a header was read).
  Timestamp timestamp = 0;

  // Decoded body; meaningful only when status == Valid.
  mrt::MrtMessage msg;

  // Peer index table of the originating TABLE_DUMP_V2 file, shared by all
  // RIB records of that dump; needed to resolve (peer index -> VP).
  std::shared_ptr<const mrt::PeerIndexTable> peer_index;

  // Elems extracted (and elem-filtered) ahead of time on a prefetch worker
  // thread (Options::extract_elems_in_workers). nullopt = not extracted;
  // an engaged empty vector means extraction ran and every elem was
  // filtered out. BgpStream::Elems moves the contents out.
  std::optional<std::vector<Elem>> prefetched_elems;
};

}  // namespace bgps::core
