#include "core/strand.hpp"

#include <utility>

namespace bgps::core {

void Strand::Post(std::function<void()> fn) {
  bool submit = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(fn));
    // Only the transition idle -> active submits a drain task; an active
    // drain picks the new closure up itself. This keeps at most one
    // drain task of this strand inside the tenant at any moment — the
    // serialization guarantee.
    if (!active_) {
      active_ = true;
      submit = true;
    }
  }
  if (submit) tenant_->Submit([this] { RunLoop(); });
}

void Strand::RunLoop() {
  for (;;) {
    std::function<void()> fn;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (queue_.empty()) {
        active_ = false;
        idle_cv_.notify_all();
        return;
      }
      fn = std::move(queue_.front());
      queue_.pop_front();
    }
    fn();
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++completed_;
    }
  }
}

void Strand::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && !active_; });
}

size_t Strand::completed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return completed_;
}

}  // namespace bgps::core
