// Serial execution context ("strand") on top of an Executor tenant.
//
// A tenant's queue is strictly FIFO, but nothing stops two of its tasks
// from *running* concurrently on different workers — the executor hands a
// new task to the next free worker as soon as the previous one is
// claimed. The sharded RoutingTables apply-loops need the stronger
// guarantee "at most one task of this shard in flight", so each shard
// owns a Strand: closures Post()ed to it run one at a time, in post
// order, on the underlying tenant's workers. This is the classic actor /
// asio-strand shape — the strand submits at most one drain task to the
// tenant at any moment and re-submits itself while work remains.
//
// Drain() blocks the calling thread until every closure posted before
// the call has finished — the bin-end barrier. Post() never blocks.
//
// Lifetime: the tenant (and its executor) must outlive the Strand; the
// destructor drains so queued closures never touch a dead owner.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>

#include "core/executor.hpp"

namespace bgps::core {

class Strand {
 public:
  // `tenant` must outlive this strand and must not be destroyed while
  // closures are pending (destroying a tenant discards queued tasks,
  // which would leave the strand's drain task lost and Drain() stuck).
  explicit Strand(Executor::Tenant* tenant) : tenant_(tenant) {}
  ~Strand() { Drain(); }

  Strand(const Strand&) = delete;
  Strand& operator=(const Strand&) = delete;

  // Enqueues `fn` to run after every previously posted closure. Never
  // blocks; never runs `fn` inline.
  void Post(std::function<void()> fn);

  // Blocks until all closures posted before this call have run. Safe to
  // call concurrently from multiple threads; new Post()s during a drain
  // extend the wait.
  void Drain();

  // Closures executed so far (stats for tests).
  size_t completed() const;

 private:
  void RunLoop();

  Executor::Tenant* tenant_;
  mutable std::mutex mu_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  bool active_ = false;  // a drain task is submitted or running
  size_t completed_ = 0;
};

}  // namespace bgps::core
