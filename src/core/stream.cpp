#include "core/stream.hpp"

#include <chrono>
#include <thread>

namespace bgps::core {

Status BgpStream::Start() {
  if (data_interface_ == nullptr)
    return InvalidArgument("no data interface configured");
  if (filters_.interval.start < 0)
    return InvalidArgument("interval start must be >= 0");
  if (!options_.poll_wait) {
    options_.poll_wait = [] {
      std::this_thread::sleep_for(std::chrono::seconds(1));
    };
  }
  if (options_.prefetch_subsets > 0 && !decoder_) {
    PrefetchDecoder::Options popt;
    popt.threads = options_.decode_threads;
    popt.file_open_hook = options_.file_open_hook;
    decoder_ = std::make_unique<PrefetchDecoder>(std::move(popt));
  }
  started_ = true;
  ended_ = false;
  return OkStatus();
}

void BgpStream::TopUpPrefetch() {
  while (decoder_ && decoder_->outstanding() < options_.prefetch_subsets &&
         next_subset_ < pending_subsets_.size()) {
    decoder_->Submit(std::move(pending_subsets_[next_subset_++]));
  }
}

bool BgpStream::Refill() {
  size_t consecutive_polls = 0;
  while (true) {
    // 1. Drain remaining subsets of the current batch.
    if (decoder_) {
      TopUpPrefetch();
      if (decoder_->outstanding() > 0) {
        std::vector<DecodedDump> dumps = decoder_->WaitNext();
        // Re-fill the slot just vacated before merging, so workers stay
        // busy while the consumer processes this subset.
        TopUpPrefetch();
        current_merge_ = std::make_unique<MultiWayMerge>(std::move(dumps));
        ++subsets_merged_;
        max_open_files_ =
            std::max(max_open_files_, current_merge_->open_files());
        return true;
      }
    } else if (next_subset_ < pending_subsets_.size()) {
      current_merge_ = std::make_unique<MultiWayMerge>(
          pending_subsets_[next_subset_++], options_.file_open_hook);
      ++subsets_merged_;
      max_open_files_ = std::max(max_open_files_, current_merge_->open_files());
      return true;
    }
    // 2. Pull the next batch from the data interface (client-pull model).
    DataBatch batch = data_interface_->NextBatch(filters_);
    ++batches_fetched_;
    if (!batch.files.empty()) {
      pending_subsets_ = GroupOverlapping(std::move(batch.files));
      next_subset_ = 0;
      continue;
    }
    if (batch.retry_later) {
      // Live mode: block until data may be available, then re-scrape.
      ++consecutive_polls;
      if (options_.max_consecutive_polls != 0 &&
          consecutive_polls >= options_.max_consecutive_polls) {
        return false;
      }
      options_.poll_wait();
      data_interface_->Refresh();
      continue;
    }
    // end_of_stream
    return false;
  }
}

std::optional<Record> BgpStream::NextRecord() {
  if (!started_ || ended_) return std::nullopt;
  while (true) {
    if (!current_merge_) {
      if (!Refill()) {
        ended_ = true;
        return std::nullopt;
      }
    }
    std::optional<Record> rec = current_merge_->Next();
    if (!rec) {
      current_merge_.reset();
      continue;
    }
    if (!filters_.MatchesRecord(*rec)) continue;
    ++records_emitted_;
    return rec;
  }
}

std::vector<Elem> BgpStream::Elems(const Record& record) const {
  std::vector<Elem> elems = ExtractElems(record);
  if (!filters_.HasElemFilters()) return elems;
  std::vector<Elem> out;
  out.reserve(elems.size());
  for (auto& e : elems) {
    if (filters_.MatchesElem(e)) out.push_back(std::move(e));
  }
  return out;
}

}  // namespace bgps::core
