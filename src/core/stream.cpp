#include "core/stream.hpp"

#include <chrono>
#include <thread>

namespace bgps::core {

BgpStream::~BgpStream() {
  // The merge may hold chunked sources backed by the decoder; drop it
  // first, then the decoder joins its workers. The future (if any)
  // blocks in its destructor until the background fetch returns.
  decoder_for_stats_.store(nullptr, std::memory_order_release);
  current_merge_.reset();
  decoder_.reset();
}

Status BgpStream::Start() {
  if (data_interface_ == nullptr)
    return InvalidArgument("no data interface configured");
  if (filters_.interval.start < 0)
    return InvalidArgument("interval start must be >= 0");
  if (options_.prefetch_subsets == 0) {
    if (options_.extract_elems_in_workers)
      return InvalidArgument(
          "extract_elems_in_workers requires prefetch_subsets > 0");
    if (options_.max_records_in_flight > 0)
      return InvalidArgument(
          "max_records_in_flight requires prefetch_subsets > 0 (the "
          "synchronous path already streams with bounded memory)");
    if (options_.executor)
      return InvalidArgument(
          "Options::executor requires prefetch_subsets > 0 (the "
          "synchronous path never decodes off-thread)");
    if (options_.governor)
      return InvalidArgument("Options::governor requires prefetch_subsets > 0");
  }
  if (options_.executor && options_.executor->threads() == 0)
    return InvalidArgument(
        "Options::executor has no worker threads (decode tasks would "
        "never run)");
  if (options_.governor) {
    if (options_.max_records_in_flight == 0)
      return InvalidArgument(
          "Options::governor requires max_records_in_flight > 0 (the "
          "governor leases chunked-decode buffer slots)");
    if (options_.governor->capacity() == 0)
      return InvalidArgument(
          "Options::governor budget must be > 0 records");
  }
  if (options_.tenant_weight == 0)
    return InvalidArgument(
        "Options::tenant_weight must be >= 1 (a zero-weight tenant "
        "would never be dispatched)");
  if (options_.idle_reclaim_rounds > 0 && options_.max_records_in_flight == 0)
    return InvalidArgument(
        "Options::idle_reclaim_rounds requires max_records_in_flight > 0 "
        "(only chunked-decode buffers can be reclaimed)");
  if (!options_.poll_wait) {
    options_.poll_wait = [] {
      std::this_thread::sleep_for(std::chrono::seconds(1));
    };
  }
  if (options_.prefetch_subsets > 0 && !decoder_) {
    PrefetchDecoder::Options popt;
    popt.threads = options_.decode_threads;
    popt.executor = options_.executor;
    popt.governor = options_.governor;
    popt.decode.file_open_hook = options_.file_open_hook;
    popt.decode.extract_elems = options_.extract_elems_in_workers;
    // filters_ is frozen once reading starts, so the workers can read it
    // without synchronization.
    popt.decode.filters = &filters_;
    popt.max_records_in_flight = options_.max_records_in_flight;
    popt.tenant_weight = options_.tenant_weight;
    popt.tenant_deadline = options_.tenant_deadline;
    popt.idle_reclaim_rounds = options_.idle_reclaim_rounds;
    decoder_ = std::make_unique<PrefetchDecoder>(std::move(popt));
    decoder_for_stats_.store(decoder_.get(), std::memory_order_release);
  }
  started_ = true;
  ended_ = false;
  status_ = OkStatus();
  return OkStatus();
}

void BgpStream::StartBatchPrefetch() {
  if (!options_.prefetch_batches || filters_.interval.live()) return;
  if (next_batch_.valid()) return;  // one fetch in flight at a time
  ++batches_prefetched_;
  next_batch_ = std::async(std::launch::async,
                           [this] { return data_interface_->NextBatch(filters_); });
}

bool BgpStream::AcquireSubsetFloors(size_t files, bool may_block) {
  if (!options_.governor || options_.max_records_in_flight == 0) return true;
  MemoryGovernor& gov = *options_.governor;
  if (files > gov.capacity()) {
    status_ = InvalidArgument(
        "memory governor budget (" + std::to_string(gov.capacity()) +
        " records) is smaller than the subset file count (" +
        std::to_string(files) +
        " files); chunked decode needs one buffered record per file");
    return false;
  }
  if (!may_block) return gov.TryAcquire(files);
  Status st = gov.Acquire(files);
  if (!st.ok()) {
    status_ = st;
    return false;
  }
  return true;
}

void BgpStream::TopUpPrefetch() {
  while (decoder_ && decoder_->in_flight() < options_.prefetch_subsets) {
    if (next_subset_ < pending_subsets_.size()) {
      // Opportunistic work-ahead: when the shared budget cannot cover
      // this subset's floor slots right now, just stop topping up —
      // Refill falls back to a fair blocking wait once it has nothing
      // else to do.
      if (!AcquireSubsetFloors(pending_subsets_[next_subset_].size(),
                               /*may_block=*/false)) {
        return;
      }
      decoder_->Submit(std::move(pending_subsets_[next_subset_++]));
      continue;
    }
    // Every subset of the current batch is submitted: harvest the next
    // batch if its eager fetch already completed, so the workers roll
    // straight into it without a broker-latency gap.
    if (!next_batch_.valid() || deferred_batch_.has_value()) return;
    if (next_batch_.wait_for(std::chrono::seconds(0)) !=
        std::future_status::ready)
      return;
    DataBatch batch = next_batch_.get();
    ++batches_fetched_;
    if (!batch.files.empty()) {
      pending_subsets_ = GroupOverlapping(std::move(batch.files));
      next_subset_ = 0;
      StartBatchPrefetch();
      continue;
    }
    // Terminal or retry batch: park it for Refill to act on.
    deferred_batch_ = std::move(batch);
    return;
  }
}

bool BgpStream::Refill() {
  size_t consecutive_polls = 0;
  while (true) {
    // A poisoned governor ledger (double-release accounting bug) can
    // never grant again; surface the latched diagnostic instead of
    // blocking forever in the fair Acquire below.
    if (options_.governor) {
      if (Status h = options_.governor->health(); !h.ok()) {
        status_ = h;
        return false;
      }
    }
    // 1. Drain remaining subsets of the current batch.
    if (decoder_) {
      TopUpPrefetch();
      if (!status_.ok()) return false;
      if (decoder_->outstanding() == 0 &&
          next_subset_ < pending_subsets_.size()) {
        // Work is pending but the shared governor's budget is spent on
        // other tenants. We hold no undrained buffers here (everything
        // handed out was fully merged), so a fair blocking wait is
        // safe: the capacity we wait for is releasable without us.
        if (!AcquireSubsetFloors(pending_subsets_[next_subset_].size(),
                                 /*may_block=*/true)) {
          return false;
        }
        decoder_->Submit(std::move(pending_subsets_[next_subset_++]));
      }
      if (decoder_->outstanding() > 0) {
        std::vector<std::unique_ptr<RecordSource>> sources =
            decoder_->WaitNextSources();
        // Re-fill the slot just vacated before merging, so workers stay
        // busy while the consumer processes this subset.
        TopUpPrefetch();
        current_merge_ = std::make_unique<MultiWayMerge>(std::move(sources));
        ++subsets_merged_;
        max_open_files_ =
            std::max(max_open_files_, current_merge_->open_files());
        return true;
      }
    } else if (next_subset_ < pending_subsets_.size()) {
      current_merge_ = std::make_unique<MultiWayMerge>(
          pending_subsets_[next_subset_++], options_.file_open_hook);
      ++subsets_merged_;
      max_open_files_ = std::max(max_open_files_, current_merge_->open_files());
      return true;
    }
    // 2. Pull the next batch from the data interface (client-pull model,
    // possibly already fetched — or harvested — in the background).
    DataBatch batch;
    if (deferred_batch_.has_value()) {
      batch = std::move(*deferred_batch_);
      deferred_batch_.reset();
    } else if (next_batch_.valid()) {
      batch = next_batch_.get();
      ++batches_fetched_;
    } else {
      batch = data_interface_->NextBatch(filters_);
      ++batches_fetched_;
    }
    if (!batch.files.empty()) {
      pending_subsets_ = GroupOverlapping(std::move(batch.files));
      next_subset_ = 0;
      StartBatchPrefetch();
      continue;
    }
    if (batch.retry_later) {
      // Live mode: block until data may be available, then re-scrape.
      ++consecutive_polls;
      if (options_.max_consecutive_polls != 0 &&
          consecutive_polls >= options_.max_consecutive_polls) {
        return false;
      }
      options_.poll_wait();
      data_interface_->Refresh();
      continue;
    }
    // end_of_stream
    return false;
  }
}

std::optional<Record> BgpStream::NextRecord() {
  if (!started_ || ended_) return std::nullopt;
  while (true) {
    if (!current_merge_) {
      if (!Refill()) {
        ended_ = true;
        return std::nullopt;
      }
    }
    std::optional<Record> rec = current_merge_->Next();
    if (!rec) {
      current_merge_.reset();
      continue;
    }
    if (!filters_.MatchesRecord(*rec)) continue;
    ++records_emitted_;
    return rec;
  }
}

BgpStream::RuntimeStats BgpStream::stats() const {
  RuntimeStats out;
  out.records_emitted = records_emitted_.load();
  // Not decoder_ itself: a sampler thread may call this while the
  // consumer thread is inside Start(); the atomic is only published
  // once the decoder is fully constructed.
  if (PrefetchDecoder* d =
          decoder_for_stats_.load(std::memory_order_acquire)) {
    out.queue_depth = d->queued_tasks();
    out.tasks_executed = d->tenant_tasks_run();
    out.files_decoded = d->files_decoded();
    out.records_buffered = d->buffered_records();
    out.reclaims = d->reclaims();
  }
  return out;
}

std::vector<Elem> BgpStream::Elems(Record& record) const {
  if (record.prefetched_elems.has_value()) {
    // Extracted (and elem-filtered) ahead of time on a worker thread.
    std::vector<Elem> out = std::move(*record.prefetched_elems);
    record.prefetched_elems.reset();
    return out;
  }
  return filters_.FilterElems(ExtractElems(record));
}

}  // namespace bgps::core
