// BgpStream — the libBGPStream user API (paper §3.3.1).
//
// Usage mirrors the C API: a configuration phase (AddFilter /
// SetInterval / SetDataInterface), then Start(), then an iteration phase
// pulling records (and decomposing them into elems). Setting the interval
// end to kLiveEnd turns the same program into a live monitor.
//
//   core::BgpStream stream;
//   stream.AddFilter("collector", "rrc00");
//   stream.AddFilter("type", "updates");
//   stream.SetInterval(t0, t1);                  // or SetLive(t0)
//   stream.SetDataInterface(&broker_interface);
//   stream.Start();
//   while (auto rec = stream.NextRecord()) {
//     for (const auto& elem : stream.Elems(*rec)) { ... }
//   }
#pragma once

#include <future>

#include "core/data_interface.hpp"
#include "core/merge.hpp"
#include "core/prefetch.hpp"

namespace bgps::core {

class BgpStream {
 public:
  struct Options {
    // Called in live mode when the broker has no new data; should block
    // (wall clock) or advance virtual time, then return. Default sleeps
    // one second of wall time.
    std::function<void()> poll_wait;
    // Safety valve for tests/simulations: stop a live stream after this
    // many consecutive empty polls (0 = poll forever).
    size_t max_consecutive_polls = 0;
    // Asynchronous prefetching decode stage (paper §3.1): number of
    // overlapping-subsets decoded ahead of the consumer by a worker
    // pool. 0 = decode synchronously on the consumer thread. Both paths
    // emit the identical record sequence.
    size_t prefetch_subsets = 0;
    // Worker-pool size for the prefetch stage (ignored when
    // prefetch_subsets == 0).
    size_t decode_threads = 2;
    // Invoked just before each dump file is opened, on whichever thread
    // performs the decode. See FileOpenHook.
    FileOpenHook file_open_hook;
    // Cross-batch prefetch: while the current DataBatch is being
    // consumed, fetch the next one from the DataInterface on a
    // background thread so broker round-trips overlap with decode and
    // merge. Ignored in live mode, which keeps strict client-pull
    // semantics (§3.3.2: data is only retrieved when the user is ready
    // to process it). At most one fetch is in flight, so DataInterface
    // implementations never see concurrent calls.
    bool prefetch_batches = false;
    // Extract elems (and apply the elem-level filters) on the prefetch
    // workers; Elems() then just moves the result out on the consumer
    // thread. Requires prefetch_subsets > 0 (there are no workers
    // otherwise); output is identical to inline extraction.
    bool extract_elems_in_workers = false;
    // Chunked decode: cap on records buffered in RAM per in-flight
    // subset (split across its files, floor of one record per file)
    // instead of materializing whole files — bounds memory for huge RIB
    // subsets (§3.3.4, ~500 files). 0 = whole-file decode. Requires
    // prefetch_subsets > 0; the synchronous path already streams with
    // O(1) records per open file. Note the subset being merged counts
    // toward prefetch_subsets while any of its files still decode, so
    // prefetch_subsets >= 2 is needed to actually work ahead.
    size_t max_records_in_flight = 0;
    // Shared decode pool (runtime layer): run this stream's decode
    // tasks on a process-wide Executor instead of a private pool of
    // decode_threads workers. The stream gets its own FIFO tenant
    // queue, dispatched round-robin against every other tenant.
    // Injected by bgps::StreamPool; null = private pool (the PR-2
    // behavior, byte-for-byte).
    std::shared_ptr<Executor> executor;
    // Global record-budget ledger (runtime layer): chunked buffers
    // lease slots from this process-wide governor instead of budgeting
    // independently, so the *sum* of records buffered across all
    // streams sharing it stays under one hard cap. Requires
    // prefetch_subsets > 0 and max_records_in_flight > 0. Injected by
    // bgps::StreamPool; null = per-stream bound only.
    std::shared_ptr<MemoryGovernor> governor;
  };

  BgpStream() = default;
  explicit BgpStream(Options options) : options_(std::move(options)) {}
  // Blocks until any in-flight background work (decode workers, a
  // cross-batch fetch) has finished.
  ~BgpStream();

  // --- configuration phase ---
  Status AddFilter(const std::string& key, const std::string& value) {
    return filters_.AddOption(key, value);
  }
  FilterSet& filters() { return filters_; }
  void SetInterval(Timestamp start, Timestamp end) {
    filters_.interval = {start, end};
  }
  void SetLive(Timestamp start) { filters_.interval = {start, kLiveEnd}; }
  void SetDataInterface(DataInterface* di) { data_interface_ = di; }

  // --- reading phase ---
  Status Start();

  // Next record passing the record-level filters. nullopt = end of stream
  // (historical exhaustion, the live poll limit, or a runtime error —
  // check status() to distinguish).
  std::optional<Record> NextRecord();

  // OK while the stream is healthy (including normal end-of-stream);
  // non-OK when the stream terminated abnormally, e.g. the shared
  // memory governor's budget is smaller than a subset's file count.
  const Status& status() const { return status_; }

  // Elems of `record` passing the elem-level filters. When the workers
  // pre-extracted them (Options::extract_elems_in_workers) this is a
  // move-out: the record's cached elems are consumed, so a second call
  // on the same record falls back to inline extraction.
  std::vector<Elem> Elems(Record& record) const;

  // Stats (used by the sorting/throughput benches and the tests).
  size_t records_emitted() const { return records_emitted_; }
  size_t batches_fetched() const { return batches_fetched_; }
  size_t subsets_merged() const { return subsets_merged_; }
  size_t max_open_files() const { return max_open_files_; }
  // DataBatches fetched eagerly on the background thread.
  size_t batches_prefetched() const { return batches_prefetched_; }
  // High watermark of records buffered by chunked decode (0 unless
  // max_records_in_flight > 0).
  size_t max_records_buffered() const {
    return decoder_ ? decoder_->max_buffered_records() : 0;
  }

 private:
  // Ensures current_merge_ has data; pulls subsets/batches as needed.
  // Returns false when the stream has ended.
  bool Refill();

  // Keeps the decode pipeline full: submits pending subsets until
  // prefetch_subsets are in flight, harvesting an eagerly fetched next
  // batch when the current one is fully submitted (no-op when prefetch
  // is disabled). Stops early (without error) when the shared memory
  // governor cannot currently cover a subset's floor slots.
  void TopUpPrefetch();

  // Acquires one governor floor slot per file of `subset` before it may
  // be submitted for chunked decode (no-op without a governor).
  // may_block=false is the opportunistic work-ahead path (TryAcquire);
  // may_block=true waits FIFO-fair — only safe when this stream holds
  // no undrained buffers, i.e. Refill with nothing outstanding. Returns
  // false when the slots were not acquired; sets status_ on a demand
  // that can never be satisfied (subset larger than the whole budget).
  bool AcquireSubsetFloors(size_t files, bool may_block);

  // Kicks off the background fetch of the next DataBatch if cross-batch
  // prefetch applies (historical mode, none already in flight).
  void StartBatchPrefetch();

  FilterSet filters_;
  DataInterface* data_interface_ = nullptr;
  Options options_;
  bool started_ = false;
  bool ended_ = false;
  Status status_;  // non-OK only on abnormal termination

  std::vector<std::vector<broker::DumpFileMeta>> pending_subsets_;
  size_t next_subset_ = 0;
  // decoder_ is declared before current_merge_: the merge may hold live
  // chunked sources backed by the decoder, so it must be destroyed
  // first (members destruct in reverse declaration order).
  std::unique_ptr<PrefetchDecoder> decoder_;
  std::unique_ptr<MultiWayMerge> current_merge_;
  // Cross-batch prefetch: at most one eager NextBatch call in flight.
  std::future<DataBatch> next_batch_;
  // A harvested batch with no files (end-of-stream / retry) parked for
  // Refill to act on.
  std::optional<DataBatch> deferred_batch_;

  size_t records_emitted_ = 0;
  size_t batches_fetched_ = 0;
  size_t subsets_merged_ = 0;
  size_t max_open_files_ = 0;
  size_t batches_prefetched_ = 0;
};

}  // namespace bgps::core
