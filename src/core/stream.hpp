// BgpStream — the libBGPStream user API (paper §3.3.1).
//
// Usage mirrors the C API: a configuration phase (AddFilter /
// SetInterval / SetDataInterface), then Start(), then an iteration phase
// pulling records (and decomposing them into elems). Setting the interval
// end to kLiveEnd turns the same program into a live monitor.
//
//   core::BgpStream stream;
//   stream.AddFilter("collector", "rrc00");
//   stream.AddFilter("type", "updates");
//   stream.SetInterval(t0, t1);                  // or SetLive(t0)
//   stream.SetDataInterface(&broker_interface);
//   stream.Start();
//   while (auto rec = stream.NextRecord()) {
//     for (const auto& elem : stream.Elems(*rec)) { ... }
//   }
#pragma once

#include <atomic>
#include <future>

#include "core/data_interface.hpp"
#include "core/merge.hpp"
#include "core/prefetch.hpp"

namespace bgps::core {

class BgpStream {
 public:
  struct Options {
    // Called in live mode when the broker has no new data; should block
    // (wall clock) or advance virtual time, then return. Default sleeps
    // one second of wall time.
    std::function<void()> poll_wait;
    // Safety valve for tests/simulations: stop a live stream after this
    // many consecutive empty polls (0 = poll forever).
    size_t max_consecutive_polls = 0;
    // Asynchronous prefetching decode stage (paper §3.1): number of
    // overlapping-subsets decoded ahead of the consumer by a worker
    // pool. 0 = decode synchronously on the consumer thread. Both paths
    // emit the identical record sequence.
    size_t prefetch_subsets = 0;
    // Worker-pool size for the prefetch stage (ignored when
    // prefetch_subsets == 0).
    size_t decode_threads = 2;
    // Invoked just before each dump file is opened, on whichever thread
    // performs the decode. See FileOpenHook.
    FileOpenHook file_open_hook;
    // Cross-batch prefetch: while the current DataBatch is being
    // consumed, fetch the next one from the DataInterface on a
    // background thread so broker round-trips overlap with decode and
    // merge. Ignored in live mode, which keeps strict client-pull
    // semantics (§3.3.2: data is only retrieved when the user is ready
    // to process it). At most one fetch is in flight, so DataInterface
    // implementations never see concurrent calls.
    bool prefetch_batches = false;
    // Extract elems (and apply the elem-level filters) on the prefetch
    // workers; Elems() then just moves the result out on the consumer
    // thread. Requires prefetch_subsets > 0 (there are no workers
    // otherwise); output is identical to inline extraction.
    bool extract_elems_in_workers = false;
    // Chunked decode: cap on records buffered in RAM per in-flight
    // subset (split across its files, floor of one record per file)
    // instead of materializing whole files — bounds memory for huge RIB
    // subsets (§3.3.4, ~500 files). 0 = whole-file decode. Requires
    // prefetch_subsets > 0; the synchronous path already streams with
    // O(1) records per open file. Note the subset being merged counts
    // toward prefetch_subsets while any of its files still decode, so
    // prefetch_subsets >= 2 is needed to actually work ahead.
    size_t max_records_in_flight = 0;
    // Shared decode pool (runtime layer): run this stream's decode
    // tasks on a process-wide Executor instead of a private pool of
    // decode_threads workers. The stream gets its own FIFO tenant
    // queue, dispatched round-robin against every other tenant.
    // Injected by bgps::StreamPool; null = private pool (the PR-2
    // behavior, byte-for-byte).
    std::shared_ptr<Executor> executor;
    // Global record-budget ledger (runtime layer): chunked buffers
    // lease slots from this process-wide governor instead of budgeting
    // independently, so the *sum* of records buffered across all
    // streams sharing it stays under one hard cap. Requires
    // prefetch_subsets > 0 and max_records_in_flight > 0. Injected by
    // bgps::StreamPool; null = per-stream bound only.
    std::shared_ptr<MemoryGovernor> governor;
    // Scheduling weight of this stream's executor tenant: decode tasks
    // drained per dispatch visit relative to other tenants (a weight-4
    // live monitor drains ~4 tasks per visit of a weight-1 backfill).
    // Must be >= 1; meaningful with a shared executor. Injected by
    // bgps::StreamPool::CreateStream's TenantOptions.
    size_t tenant_weight = 1;
    // Deadline-class membership: this stream's decode tasks dispatch
    // earliest-enqueued-first across every same-weight deadline tenant
    // of the shared executor, so a live consumer's refill wait tracks
    // enqueue order instead of round-robin cursor position. Emitted
    // sequences are identical either way (per-tenant FIFO is
    // untouched). Injected by StreamPool's TenantOptions::deadline.
    bool tenant_deadline = false;
    // Idle-tenant reclaim: when this stream's consumer has not drained
    // a record for this many executor dispatch rounds, its chunked
    // buffers are dropped (governor leases released down to one floor
    // slot per file) and re-decoded on resume — so a paused consumer
    // cannot pin the shared budget. Requires max_records_in_flight > 0.
    // 0 = never reclaim. Output is identical either way.
    size_t idle_reclaim_rounds = 0;
  };

  // Runtime introspection snapshot (see stats()). Each field is read
  // under its owning component's lock, so every value is internally
  // consistent; fields from different components may be skewed by
  // in-flight work.
  struct RuntimeStats {
    size_t records_emitted = 0;
    // Decode tasks queued on this stream's tenant, not yet claimed.
    size_t queue_depth = 0;
    // Decode tasks completed for this stream's tenant.
    size_t tasks_executed = 0;
    // Dump files fully decoded (a reclaimed file counts again when its
    // re-decode completes).
    size_t files_decoded = 0;
    // Records currently buffered by chunked decode.
    size_t records_buffered = 0;
    // Chunked files whose buffers idle-reclaim dropped so far.
    size_t reclaims = 0;
  };

  BgpStream() = default;
  explicit BgpStream(Options options) : options_(std::move(options)) {}
  // Blocks until any in-flight background work (decode workers, a
  // cross-batch fetch) has finished. Virtual so pool-vended handles
  // (which deregister from the pool's stats registry) destroy cleanly
  // through a BgpStream pointer.
  virtual ~BgpStream();

  // --- configuration phase ---
  Status AddFilter(const std::string& key, const std::string& value) {
    return filters_.AddOption(key, value);
  }
  FilterSet& filters() { return filters_; }
  void SetInterval(Timestamp start, Timestamp end) {
    filters_.interval = {start, end};
  }
  void SetLive(Timestamp start) { filters_.interval = {start, kLiveEnd}; }
  void SetDataInterface(DataInterface* di) { data_interface_ = di; }

  // --- reading phase ---
  Status Start();

  // Next record passing the record-level filters. nullopt = end of stream
  // (historical exhaustion, the live poll limit, or a runtime error —
  // check status() to distinguish).
  std::optional<Record> NextRecord();

  // OK while the stream is healthy (including normal end-of-stream);
  // non-OK when the stream terminated abnormally, e.g. the shared
  // memory governor's budget is smaller than a subset's file count.
  const Status& status() const { return status_; }

  // Elems of `record` passing the elem-level filters. When the workers
  // pre-extracted them (Options::extract_elems_in_workers) this is a
  // move-out: the record's cached elems are consumed, so a second call
  // on the same record falls back to inline extraction.
  std::vector<Elem> Elems(Record& record) const;

  // Stats (used by the sorting/throughput benches and the tests).
  size_t records_emitted() const { return records_emitted_.load(); }
  size_t batches_fetched() const { return batches_fetched_; }
  size_t subsets_merged() const { return subsets_merged_; }
  size_t max_open_files() const { return max_open_files_; }
  // DataBatches fetched eagerly on the background thread.
  size_t batches_prefetched() const { return batches_prefetched_; }
  // High watermark of records buffered by chunked decode (0 unless
  // max_records_in_flight > 0).
  size_t max_records_buffered() const {
    return decoder_ ? decoder_->max_buffered_records() : 0;
  }

  // Runtime introspection: queue depth, tasks executed, files decoded,
  // records buffered, reclaims. All zeros without a prefetch decoder
  // (including while Start() is still constructing it — the snapshot
  // is safe from any thread at any time, racing Start() included).
  // StreamPool::Stats() aggregates this per tenant.
  RuntimeStats stats() const;

 private:
  // Ensures current_merge_ has data; pulls subsets/batches as needed.
  // Returns false when the stream has ended.
  bool Refill();

  // Keeps the decode pipeline full: submits pending subsets until
  // prefetch_subsets are in flight, harvesting an eagerly fetched next
  // batch when the current one is fully submitted (no-op when prefetch
  // is disabled). Stops early (without error) when the shared memory
  // governor cannot currently cover a subset's floor slots.
  void TopUpPrefetch();

  // Acquires one governor floor slot per file of `subset` before it may
  // be submitted for chunked decode (no-op without a governor).
  // may_block=false is the opportunistic work-ahead path (TryAcquire);
  // may_block=true waits FIFO-fair — only safe when this stream holds
  // no undrained buffers, i.e. Refill with nothing outstanding. Returns
  // false when the slots were not acquired; sets status_ on a demand
  // that can never be satisfied (subset larger than the whole budget).
  bool AcquireSubsetFloors(size_t files, bool may_block);

  // Kicks off the background fetch of the next DataBatch if cross-batch
  // prefetch applies (historical mode, none already in flight).
  void StartBatchPrefetch();

  FilterSet filters_;
  DataInterface* data_interface_ = nullptr;
  Options options_;
  bool started_ = false;
  bool ended_ = false;
  Status status_;  // non-OK only on abnormal termination

  std::vector<std::vector<broker::DumpFileMeta>> pending_subsets_;
  size_t next_subset_ = 0;
  // decoder_ is declared before current_merge_: the merge may hold live
  // chunked sources backed by the decoder, so it must be destroyed
  // first (members destruct in reverse declaration order).
  std::unique_ptr<PrefetchDecoder> decoder_;
  // Published (release) only after the decoder is fully constructed,
  // cleared before it is destroyed: stats() may race Start() from a
  // StreamPool::Stats() sampler thread, and reading decoder_ itself
  // there would be a data race.
  std::atomic<PrefetchDecoder*> decoder_for_stats_{nullptr};
  std::unique_ptr<MultiWayMerge> current_merge_;
  // Cross-batch prefetch: at most one eager NextBatch call in flight.
  std::future<DataBatch> next_batch_;
  // A harvested batch with no files (end-of-stream / retry) parked for
  // Refill to act on.
  std::optional<DataBatch> deferred_batch_;

  // Atomic: stats() may be read from another thread (StreamPool
  // introspection) while the consumer thread emits.
  std::atomic<size_t> records_emitted_{0};
  size_t batches_fetched_ = 0;
  size_t subsets_merged_ = 0;
  size_t max_open_files_ = 0;
  size_t batches_prefetched_ = 0;
};

}  // namespace bgps::core
