// BgpStream — the libBGPStream user API (paper §3.3.1).
//
// Usage mirrors the C API: a configuration phase (AddFilter /
// SetInterval / SetDataInterface), then Start(), then an iteration phase
// pulling records (and decomposing them into elems). Setting the interval
// end to kLiveEnd turns the same program into a live monitor.
//
//   core::BgpStream stream;
//   stream.AddFilter("collector", "rrc00");
//   stream.AddFilter("type", "updates");
//   stream.SetInterval(t0, t1);                  // or SetLive(t0)
//   stream.SetDataInterface(&broker_interface);
//   stream.Start();
//   while (auto rec = stream.NextRecord()) {
//     for (const auto& elem : stream.Elems(*rec)) { ... }
//   }
#pragma once

#include "core/data_interface.hpp"
#include "core/merge.hpp"
#include "core/prefetch.hpp"

namespace bgps::core {

class BgpStream {
 public:
  struct Options {
    // Called in live mode when the broker has no new data; should block
    // (wall clock) or advance virtual time, then return. Default sleeps
    // one second of wall time.
    std::function<void()> poll_wait;
    // Safety valve for tests/simulations: stop a live stream after this
    // many consecutive empty polls (0 = poll forever).
    size_t max_consecutive_polls = 0;
    // Asynchronous prefetching decode stage (paper §3.1): number of
    // overlapping-subsets decoded ahead of the consumer by a worker
    // pool. 0 = decode synchronously on the consumer thread. Both paths
    // emit the identical record sequence.
    size_t prefetch_subsets = 0;
    // Worker-pool size for the prefetch stage (ignored when
    // prefetch_subsets == 0).
    size_t decode_threads = 2;
    // Invoked just before each dump file is opened, on whichever thread
    // performs the decode. See FileOpenHook.
    FileOpenHook file_open_hook;
  };

  BgpStream() = default;
  explicit BgpStream(Options options) : options_(std::move(options)) {}

  // --- configuration phase ---
  Status AddFilter(const std::string& key, const std::string& value) {
    return filters_.AddOption(key, value);
  }
  FilterSet& filters() { return filters_; }
  void SetInterval(Timestamp start, Timestamp end) {
    filters_.interval = {start, end};
  }
  void SetLive(Timestamp start) { filters_.interval = {start, kLiveEnd}; }
  void SetDataInterface(DataInterface* di) { data_interface_ = di; }

  // --- reading phase ---
  Status Start();

  // Next record passing the record-level filters. nullopt = end of stream
  // (historical exhaustion, or the live poll limit was hit).
  std::optional<Record> NextRecord();

  // Elems of `record` passing the elem-level filters.
  std::vector<Elem> Elems(const Record& record) const;

  // Stats (used by the sorting/throughput benches).
  size_t records_emitted() const { return records_emitted_; }
  size_t batches_fetched() const { return batches_fetched_; }
  size_t subsets_merged() const { return subsets_merged_; }
  size_t max_open_files() const { return max_open_files_; }

 private:
  // Ensures current_merge_ has data; pulls subsets/batches as needed.
  // Returns false when the stream has ended.
  bool Refill();

  // Keeps the decode pipeline full: submits pending subsets until
  // prefetch_subsets are in flight (no-op when prefetch is disabled).
  void TopUpPrefetch();

  FilterSet filters_;
  DataInterface* data_interface_ = nullptr;
  Options options_;
  bool started_ = false;
  bool ended_ = false;

  std::vector<std::vector<broker::DumpFileMeta>> pending_subsets_;
  size_t next_subset_ = 0;
  std::unique_ptr<MultiWayMerge> current_merge_;
  std::unique_ptr<PrefetchDecoder> decoder_;

  size_t records_emitted_ = 0;
  size_t batches_fetched_ = 0;
  size_t subsets_merged_ = 0;
  size_t max_open_files_ = 0;
};

}  // namespace bgps::core
