#include "corsaro/corsaro.hpp"

namespace bgps::corsaro {

BgpCorsaro::BgpCorsaro(core::BgpStream* stream, Timestamp bin_size)
    : stream_(stream), bin_size_(bin_size) {}

void BgpCorsaro::AddPlugin(std::unique_ptr<Plugin> plugin) {
  plugins_.push_back(std::move(plugin));
}

void BgpCorsaro::AdvanceBinsTo(Timestamp t) {
  if (bin_start_ < 0) {
    bin_start_ = AlignToBin(t, bin_size_);
    for (auto& p : plugins_) p->OnBinStart(bin_start_);
    return;
  }
  while (t >= bin_start_ + bin_size_) {
    for (auto& p : plugins_) p->OnBinEnd(bin_start_, bin_start_ + bin_size_);
    bin_start_ += bin_size_;
    for (auto& p : plugins_) p->OnBinStart(bin_start_);
  }
}

bool BgpCorsaro::Step(size_t max_records) {
  if (finished_) return false;
  size_t n = 0;
  while (max_records == 0 || n < max_records) {
    auto rec = stream_->NextRecord();
    if (!rec) {
      if (bin_start_ >= 0) {
        for (auto& p : plugins_)
          p->OnBinEnd(bin_start_, bin_start_ + bin_size_);
      }
      for (auto& p : plugins_) p->OnFinish();
      finished_ = true;
      return false;
    }
    AdvanceBinsTo(rec->timestamp);
    std::vector<core::Elem> elems = stream_->Elems(*rec);
    RecordContext ctx{*rec, elems, {}};
    for (auto& p : plugins_) p->OnRecord(ctx);
    ++records_;
    ++n;
  }
  return true;
}

size_t BgpCorsaro::Run() {
  Step(0);
  return records_;
}

}  // namespace bgps::corsaro
