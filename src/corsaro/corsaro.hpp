// BGPCorsaro engine (paper §6.1): drives a plugin pipeline over a sorted
// BGP stream in regular time bins.
//
// Because libBGPStream delivers records sorted by timestamp, the engine
// can close a time bin the moment it sees a record at/after the bin's end
// — even when mixing collectors — exactly the property §6.1 calls out.
#pragma once

#include <memory>

#include "corsaro/plugin.hpp"

namespace bgps::corsaro {

class BgpCorsaro {
 public:
  // `bin_size` in seconds; bins are aligned (start % bin_size == 0).
  BgpCorsaro(core::BgpStream* stream, Timestamp bin_size);

  void AddPlugin(std::unique_ptr<Plugin> plugin);

  // Consumes the whole stream. Returns records processed.
  size_t Run();

  // Incremental variant: processes up to `max_records` records (0 = all);
  // returns false when the stream ended.
  bool Step(size_t max_records);

  Timestamp current_bin() const { return bin_start_; }
  size_t records_processed() const { return records_; }

 private:
  void AdvanceBinsTo(Timestamp t);

  core::BgpStream* stream_;
  Timestamp bin_size_;
  Timestamp bin_start_ = -1;  // -1 = no bin opened yet
  std::vector<std::unique_ptr<Plugin>> plugins_;
  size_t records_ = 0;
  bool finished_ = false;
};

}  // namespace bgps::corsaro
