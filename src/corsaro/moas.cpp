#include "corsaro/moas.hpp"

namespace bgps::corsaro {

void MoasDetector::Reevaluate(Timestamp t, const Prefix& prefix) {
  auto it = table_.find(prefix);
  std::set<bgp::Asn> origins;
  if (it != table_.end()) {
    for (const auto& [vp, origin] : it->second) origins.insert(origin);
  }
  bool was_moas = moas_now_.count(prefix) != 0;
  bool is_moas = origins.size() >= 2;
  if (is_moas == was_moas) return;

  MoasEvent event;
  event.time = t;
  event.prefix = prefix;
  event.origins = origins;
  event.started = is_moas;
  if (is_moas) {
    moas_now_.insert(prefix);
    sets_seen_.insert(origins);
  } else {
    moas_now_.erase(prefix);
  }
  events_.push_back(event);
  if (on_event_) on_event_(event);
}

void MoasDetector::OnRecord(RecordContext& ctx) {
  for (const auto& elem : ctx.elems) {
    if (!elem.has_prefix()) continue;
    VpKeyLocal vp{ctx.record.collector, elem.peer_asn};
    switch (elem.type) {
      case core::ElemType::RibEntry:
      case core::ElemType::Announcement: {
        auto origin = elem.as_path.origin_asn();
        if (!origin) break;
        table_[elem.prefix][vp] = *origin;
        Reevaluate(elem.time, elem.prefix);
        break;
      }
      case core::ElemType::Withdrawal: {
        auto it = table_.find(elem.prefix);
        if (it != table_.end()) {
          it->second.erase(vp);
          if (it->second.empty()) table_.erase(it);
        }
        Reevaluate(elem.time, elem.prefix);
        break;
      }
      case core::ElemType::PeerState:
        break;
    }
  }
}

void MoasDetector::OnBinEnd(Timestamp /*bin_start*/, Timestamp /*bin_end*/) {}

std::vector<Prefix> MoasDetector::current_moas() const {
  return {moas_now_.begin(), moas_now_.end()};
}

}  // namespace bgps::corsaro
