// moas — BGPCorsaro plugin detecting Multi-Origin-AS prefixes live.
//
// The paper motivates maintaining a continuously updated global view for
// "detecting BGP-based traffic hijacking: most common hijacks manifest as
// two or more ASes announcing exactly the same prefix" (§6.2) and studies
// MOAS longitudinally in Fig. 5b. This plugin tracks, per prefix, the set
// of origin ASes currently announced across all VPs and emits an event
// whenever a prefix becomes MOAS (and when it stops being MOAS).
#pragma once

#include <map>

#include "corsaro/plugin.hpp"

namespace bgps::corsaro {

struct MoasEvent {
  Timestamp time = 0;
  Prefix prefix;
  std::set<bgp::Asn> origins;  // >= 2 on start, 1 on end
  bool started = false;        // true: became MOAS; false: back to single
};

class MoasDetector : public Plugin {
 public:
  using EventCallback = std::function<void(const MoasEvent&)>;

  explicit MoasDetector(EventCallback on_event = nullptr)
      : on_event_(std::move(on_event)) {}

  std::string_view name() const override { return "moas"; }
  void OnRecord(RecordContext& ctx) override;
  void OnBinEnd(Timestamp bin_start, Timestamp bin_end) override;

  const std::vector<MoasEvent>& events() const { return events_; }
  // Prefixes currently announced by more than one origin AS.
  std::vector<Prefix> current_moas() const;
  // Unique MOAS origin-sets seen so far (the Fig. 5b metric).
  std::set<std::set<bgp::Asn>> moas_sets() const { return sets_seen_; }

 private:
  struct VpKeyLocal {
    std::string collector;
    bgp::Asn peer;
    auto operator<=>(const VpKeyLocal&) const = default;
  };

  void Reevaluate(Timestamp t, const Prefix& prefix);

  // prefix -> VP -> origin ASN currently announced by that VP.
  std::map<Prefix, std::map<VpKeyLocal, bgp::Asn>> table_;
  std::set<Prefix> moas_now_;
  std::set<std::set<bgp::Asn>> sets_seen_;
  std::vector<MoasEvent> events_;
  EventCallback on_event_;
};

}  // namespace bgps::corsaro
