#include "corsaro/pfxmonitor.hpp"

namespace bgps::corsaro {

PfxMonitor::PfxMonitor(const std::vector<Prefix>& ranges, RowCallback on_row)
    : ranges_snap_(ranges_.snapshot()), on_row_(std::move(on_row)) {
  for (const auto& r : ranges) ranges_.insert(r, 1);
  ranges_snap_ = ranges_.snapshot();
}

void PfxMonitor::OnRecord(RecordContext& ctx) {
  for (const auto& elem : ctx.elems) {
    if (!elem.has_prefix()) continue;
    if (!ranges_snap_.overlaps(elem.prefix)) continue;
    VpKey vp{ctx.record.collector, elem.peer_asn};
    auto key = std::make_pair(elem.prefix, vp);
    switch (elem.type) {
      case core::ElemType::RibEntry:
      case core::ElemType::Announcement: {
        auto origin = elem.as_path.origin_asn();
        if (origin) table_[key] = *origin;
        break;
      }
      case core::ElemType::Withdrawal:
        table_.erase(key);
        break;
      case core::ElemType::PeerState:
        break;
    }
  }
}

void PfxMonitor::OnBinEnd(Timestamp bin_start, Timestamp /*bin_end*/) {
  std::set<Prefix> prefixes;
  std::set<bgp::Asn> origins;
  for (const auto& [key, origin] : table_) {
    prefixes.insert(key.first);
    origins.insert(origin);
  }
  BinRow row{bin_start, prefixes.size(), origins.size()};
  rows_.push_back(row);
  if (on_row_) on_row_(row);
}

std::set<bgp::Asn> PfxMonitor::origins(const Prefix& prefix) const {
  std::set<bgp::Asn> out;
  for (const auto& [key, origin] : table_) {
    if (key.first == prefix) out.insert(origin);
  }
  return out;
}

}  // namespace bgps::corsaro
