// pfxmonitor — the stateful sample plugin of §6.1.
//
// Monitors prefixes overlapping a configured set of IP ranges. For each
// record it (1) selects RIB/updates elems overlapping the ranges, and
// (2) tracks, per <prefix, VP>, the origin ASN of the route. At the end
// of each bin it emits (timestamp, #unique prefixes, #unique origin
// ASNs) — the two time series of Figure 6 (GARR hijack detection).
#pragma once

#include <map>

#include "corsaro/plugin.hpp"
#include "util/patricia.hpp"

namespace bgps::corsaro {

class PfxMonitor : public Plugin {
 public:
  struct BinRow {
    Timestamp bin_start = 0;
    size_t unique_prefixes = 0;
    size_t unique_origins = 0;
  };
  using RowCallback = std::function<void(const BinRow&)>;

  explicit PfxMonitor(const std::vector<Prefix>& ranges,
                      RowCallback on_row = nullptr);

  std::string_view name() const override { return "pfxmonitor"; }
  void OnRecord(RecordContext& ctx) override;
  void OnBinEnd(Timestamp bin_start, Timestamp bin_end) override;

  const std::vector<BinRow>& rows() const { return rows_; }

  // Origin ASNs currently observed for a monitored prefix (MOAS check).
  std::set<bgp::Asn> origins(const Prefix& prefix) const;

 private:
  struct VpKey {
    std::string collector;
    bgp::Asn peer;
    auto operator<=>(const VpKey&) const = default;
  };

  PrefixTable<char> ranges_;
  // Immutable epoch of ranges_, captured once at construction (the range
  // set never changes afterwards): the per-elem overlap queries run on
  // pinned shared_ptr roots, so they stay valid and lock-free even if a
  // future writer republishes ranges_ concurrently.
  PrefixTable<char>::Snapshot ranges_snap_;
  // <prefix, VP> -> origin ASN of the current route (erased on withdrawal).
  std::map<std::pair<Prefix, VpKey>, bgp::Asn> table_;
  std::vector<BinRow> rows_;
  RowCallback on_row_;
};

}  // namespace bgps::corsaro
