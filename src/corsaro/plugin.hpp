// BGPCorsaro plugin interface (paper §6.1).
//
// Plugins form a pipeline over the sorted record stream. Stateless
// plugins classify/tag records (later plugins can read the tags);
// stateful plugins aggregate and emit at the end of each time bin.
#pragma once

#include <set>
#include <string_view>

#include "core/stream.hpp"

namespace bgps::corsaro {

// Mutable per-record context passed down the plugin chain.
struct RecordContext {
  const core::Record& record;
  // Elems extracted once by the engine (post elem-filters) and shared by
  // all plugins.
  const std::vector<core::Elem>& elems;
  // Tags set by classification plugins for downstream plugins.
  std::set<std::string> tags;
};

class Plugin {
 public:
  virtual ~Plugin() = default;

  virtual std::string_view name() const = 0;

  // Called for every record, in stream (timestamp) order.
  virtual void OnRecord(RecordContext& ctx) = 0;

  // Bin lifecycle; [bin_start, bin_end) in aligned UTC seconds. OnBinEnd
  // fires before the first record at/after bin_end is delivered.
  virtual void OnBinStart(Timestamp /*bin_start*/) {}
  virtual void OnBinEnd(Timestamp /*bin_start*/, Timestamp /*bin_end*/) {}

  // Called once when the stream ends, after a final OnBinEnd.
  virtual void OnFinish() {}
};

}  // namespace bgps::corsaro
