#include "corsaro/rt.hpp"

namespace bgps::corsaro {

const char* VpStateName(VpState s) {
  switch (s) {
    case VpState::Down: return "down";
    case VpState::DownRibApplication: return "down-rib-application";
    case VpState::Up: return "up";
    case VpState::UpRibApplication: return "up-rib-application";
  }
  return "?";
}

RoutingTables::RoutingTables(Options options) : options_(options) {}

RoutingTables::VpTable& RoutingTables::Vp(const VpKey& key) {
  auto it = vps_.find(key);
  if (it == vps_.end()) {
    it = vps_.emplace(key, VpTable{}).first;
    // A VP discovered mid-stream joins an in-progress RIB dump, if any.
    auto rp = rib_progress_.find(key.collector);
    if (rp != rib_progress_.end() && rp->second.active)
      it->second.state = VpNextState(it->second.state, VpInput::RibStart);
  }
  return it->second;
}

void RoutingTables::Transition(VpTable& vp, VpInput input) {
  vp.state = VpNextState(vp.state, input);
}

void RoutingTables::ApplyUpdateElem(const std::string& collector,
                                    const core::Elem& elem) {
  ++bin_elems_;
  VpTable& vp = Vp(VpKey{collector, elem.peer_asn});
  if (elem.type == core::ElemType::PeerState) {
    Transition(vp, elem.new_state == bgp::FsmState::Established
                       ? VpInput::StateEstablished
                       : VpInput::StateDown);
    return;
  }
  // Announcements/withdrawals modify main cells in every state (during
  // down-RIB-application the paper applies updates to main cells while
  // the RIB stages into shadows), gated on timestamp monotonicity.
  auto& cell = vp.main[elem.prefix];
  if (elem.time < cell.last_modified) return;
  Touch(vp, elem.prefix);
  RtCell updated;
  updated.last_modified = elem.time;
  if (elem.type == core::ElemType::Announcement) {
    updated.announced = true;
    updated.as_path = elem.as_path;
    updated.communities = elem.communities;
  } else {
    updated.announced = false;  // withdrawal
  }
  cell = std::move(updated);
  Transition(vp, VpInput::Update);
}

void RoutingTables::ApplyRibElem(const std::string& collector,
                                 const core::Elem& elem) {
  VpTable& vp = Vp(VpKey{collector, elem.peer_asn});
  vp.in_current_rib = true;
  RtCell cell;
  cell.announced = true;
  cell.as_path = elem.as_path;
  cell.communities = elem.communities;
  cell.last_modified = elem.time;
  vp.shadow[elem.prefix] = std::move(cell);
}

void RoutingTables::BeginRib(const std::string& collector) {
  auto& rp = rib_progress_[collector];
  rp.active = true;
  rp.corrupt = false;
  for (auto& [key, vp] : vps_) {
    if (key.collector != collector) continue;
    vp.shadow.clear();
    vp.in_current_rib = false;
    Transition(vp, VpInput::RibStart);
  }
}

void RoutingTables::AbortRib(const std::string& collector) {
  // E1: at least one record of the dump was corrupted — ignore it all.
  auto& rp = rib_progress_[collector];
  rp.active = false;
  for (auto& [key, vp] : vps_) {
    if (key.collector != collector) continue;
    vp.shadow.clear();
    vp.in_current_rib = false;
    Transition(vp, VpInput::RibCorrupt);
  }
}

void RoutingTables::EndRib(const std::string& collector) {
  auto& rp = rib_progress_[collector];
  rp.active = false;
  for (auto& [key, vp] : vps_) {
    if (key.collector != collector) continue;
    if (!vp.in_current_rib) {
      // The paper's RouteViews mitigation: a VP absent from the RIB dump
      // is presumed down (stale cells would otherwise linger forever).
      if (options_.down_if_absent_from_rib && !vp.main.empty()) {
        Transition(vp, VpInput::StateDown);
        for (auto& [prefix, cell] : vp.main) {
          if (!cell.announced) continue;
          Touch(vp, prefix);
          cell.announced = false;
        }
      }
      Transition(vp, VpInput::RibEnd);
      continue;
    }
    // Accuracy check (§6.2.1): where both an evolved main cell and a
    // shadow cell exist and the main cell was updated *after* this RIB's
    // records, the evolved state should match the dump's ground truth.
    for (const auto& [prefix, shadow_cell] : vp.shadow) {
      auto it = vp.main.find(prefix);
      if (it == vp.main.end()) continue;
      const RtCell& main_cell = it->second;
      ++rib_compared_;
      // E2 with tie tolerance: a cell updated at or after the RIB record's
      // timestamp already reflects (at least) the dump's knowledge.
      if (main_cell.last_modified >= shadow_cell.last_modified) continue;
      if (!main_cell.announced || main_cell.as_path != shadow_cell.as_path)
        ++rib_mismatches_;
    }
    // Merge: shadow replaces main unless main is at least as new (E2).
    for (auto& [prefix, shadow_cell] : vp.shadow) {
      auto it = vp.main.find(prefix);
      if (it == vp.main.end()) {
        Touch(vp, prefix);
        vp.main[prefix] = std::move(shadow_cell);
        continue;
      }
      if (it->second.last_modified >= shadow_cell.last_modified) continue;
      Touch(vp, prefix);
      it->second = std::move(shadow_cell);
    }
    // Prefixes in main but absent from the dump: if not touched by newer
    // updates, the VP no longer routes them.
    for (auto& [prefix, cell] : vp.main) {
      if (!cell.announced) continue;
      if (vp.shadow.count(prefix)) continue;
      // Keep cells modified after the dump started.
      Timestamp dump_floor = 0;
      if (!vp.shadow.empty())
        dump_floor = vp.shadow.begin()->second.last_modified;
      if (cell.last_modified > dump_floor) continue;
      Touch(vp, prefix);
      cell.announced = false;
    }
    vp.shadow.clear();
    vp.in_current_rib = false;
    Transition(vp, VpInput::RibEnd);
  }
}

void RoutingTables::CollectorUpdateCorrupt(const std::string& collector) {
  for (auto& [key, vp] : vps_) {
    if (key.collector != collector) continue;
    Transition(vp, VpInput::UpdateCorrupt);
  }
}

void RoutingTables::OnRecord(RecordContext& ctx) {
  const core::Record& rec = ctx.record;
  const std::string& collector = rec.collector;

  if (rec.status != core::RecordStatus::Valid) {
    if (rec.status == core::RecordStatus::Unsupported) return;
    if (rec.dump_type == core::DumpType::Rib) {
      AbortRib(collector);  // E1
    } else {
      CollectorUpdateCorrupt(collector);  // E3
    }
    return;
  }

  if (rec.dump_type == core::DumpType::Rib) {
    if (rec.position == core::DumpPosition::Start) BeginRib(collector);
    for (const auto& elem : ctx.elems) {
      if (elem.type == core::ElemType::RibEntry) ApplyRibElem(collector, elem);
    }
    if (rec.position == core::DumpPosition::End) EndRib(collector);
    return;
  }

  for (const auto& elem : ctx.elems) ApplyUpdateElem(collector, elem);
}

void RoutingTables::Touch(VpTable& vp, const Prefix& prefix) {
  if (vp.dirty.count(prefix)) return;  // keep the earliest pre-bin value
  auto it = vp.main.find(prefix);
  vp.dirty.emplace(prefix, it == vp.main.end() ? RtCell{} : it->second);
}

namespace {
// Content equality ignoring the bookkeeping timestamp: a cell whose route
// did not actually change publishes no diff.
bool SameContent(const RtCell& a, const RtCell& b) {
  if (a.announced != b.announced) return false;
  if (!a.announced) return true;  // two withdrawn cells are equivalent
  return a.as_path == b.as_path && a.communities == b.communities;
}
}  // namespace

void RoutingTables::OnBinEnd(Timestamp bin_start, Timestamp /*bin_end*/) {
  std::vector<DiffCell> diffs;
  for (auto& [key, vp] : vps_) {
    for (const auto& [prefix, old_cell] : vp.dirty) {
      auto it = vp.main.find(prefix);
      if (it == vp.main.end()) continue;
      if (SameContent(old_cell, it->second)) continue;  // reverted in-bin
      diffs.push_back(DiffCell{key, prefix, it->second});
    }
    vp.dirty.clear();
  }
  bin_stats_.push_back(RtBinStats{bin_start, bin_elems_, diffs.size()});
  bin_elems_ = 0;
  ++bins_seen_;

  if (on_diffs_) on_diffs_(bin_start, diffs);
  if (on_snapshot_ && options_.snapshot_every_bins != 0 &&
      bins_seen_ % options_.snapshot_every_bins == 0) {
    for (const auto& [key, vp] : vps_) {
      on_snapshot_(bin_start, key, table(key));
    }
  }
}

VpState RoutingTables::state(const VpKey& vp) const {
  auto it = vps_.find(vp);
  return it == vps_.end() ? VpState::Down : it->second.state;
}

std::map<Prefix, RtCell> RoutingTables::table(const VpKey& vp) const {
  std::map<Prefix, RtCell> out;
  auto it = vps_.find(vp);
  if (it == vps_.end()) return out;
  for (const auto& [prefix, cell] : it->second.main) {
    if (cell.announced) out.emplace(prefix, cell);
  }
  return out;
}

std::vector<VpKey> RoutingTables::vps() const {
  std::vector<VpKey> out;
  out.reserve(vps_.size());
  for (const auto& [key, _] : vps_) out.push_back(key);
  return out;
}

}  // namespace bgps::corsaro
