#include "corsaro/rt.hpp"

#include <algorithm>
#include <tuple>

namespace bgps::corsaro {

const char* VpStateName(VpState s) {
  switch (s) {
    case VpState::Down: return "down";
    case VpState::DownRibApplication: return "down-rib-application";
    case VpState::Up: return "up";
    case VpState::UpRibApplication: return "up-rib-application";
  }
  return "?";
}

RoutingTables::RoutingTables(Options options)
    : options_(options), shard_count_(options.shards == 0 ? 1 : options.shards) {
  shards_.reserve(shard_count_);
  for (size_t i = 0; i < shard_count_; ++i)
    shards_.push_back(std::make_unique<Shard>());
  if (options_.executor != nullptr && options_.executor->threads() > 0) {
    pending_.resize(shard_count_);
    tenants_.reserve(shard_count_);
    strands_.reserve(shard_count_);
    for (size_t i = 0; i < shard_count_; ++i) {
      tenants_.push_back(options_.executor->CreateTenant());
      strands_.push_back(std::make_unique<core::Strand>(tenants_[i].get()));
    }
  }
}

RoutingTables::~RoutingTables() { Drain(); }

size_t RoutingTables::ShardOf(const std::string& collector,
                              bgp::Asn peer) const {
  if (shard_count_ == 1) return 0;
  // FNV-1a over the VpKey bytes: stable across runs and platforms, so a
  // given VP always lands on the same shard (the determinism anchor).
  uint64_t h = 1469598103934665603ull;
  for (char c : collector) {
    h ^= uint8_t(c);
    h *= 1099511628211ull;
  }
  for (int i = 0; i < 4; ++i) {
    h ^= uint8_t(peer >> (8 * i));
    h *= 1099511628211ull;
  }
  return size_t(h % shard_count_);
}

RoutingTables::VpTable& RoutingTables::Vp(Shard& shard, const VpKey& key) {
  auto it = shard.vps.find(key);
  if (it == shard.vps.end()) {
    it = shard.vps.emplace(key, VpTable{}).first;
    shard.collector_vps[key.collector].insert(key);
    // A VP discovered mid-stream joins an in-progress RIB dump, if any.
    auto rp = shard.rib_progress.find(key.collector);
    if (rp != shard.rib_progress.end() && rp->second.active)
      it->second.state = VpNextState(it->second.state, VpInput::RibStart);
  }
  return it->second;
}

void RoutingTables::Transition(VpTable& vp, VpInput input) {
  vp.state = VpNextState(vp.state, input);
}

void RoutingTables::ApplyUpdateElem(Shard& shard, const std::string& collector,
                                    const core::Elem& elem) {
  ++shard.applied_elems;
  VpKey key{collector, elem.peer_asn};
  VpTable& vp = Vp(shard, key);
  if (elem.type == core::ElemType::PeerState) {
    Transition(vp, elem.new_state == bgp::FsmState::Established
                       ? VpInput::StateEstablished
                       : VpInput::StateDown);
    return;
  }
  // Announcements/withdrawals modify main cells in every state (during
  // down-RIB-application the paper applies updates to main cells while
  // the RIB stages into shadows), gated on timestamp monotonicity.
  auto& cell = vp.main[elem.prefix];
  if (elem.time < cell.last_modified) return;
  Touch(shard, key, vp, elem.prefix);
  RtCell updated;
  updated.last_modified = elem.time;
  if (elem.type == core::ElemType::Announcement) {
    updated.announced = true;
    updated.as_path = elem.as_path;
    updated.communities = elem.communities;
  } else {
    updated.announced = false;  // withdrawal
  }
  cell = std::move(updated);
  Transition(vp, VpInput::Update);
}

void RoutingTables::ApplyRibElem(Shard& shard, const std::string& collector,
                                 const core::Elem& elem) {
  ++shard.applied_elems;
  VpTable& vp = Vp(shard, VpKey{collector, elem.peer_asn});
  vp.in_current_rib = true;
  RtCell cell;
  cell.announced = true;
  cell.as_path = elem.as_path;
  cell.communities = elem.communities;
  cell.last_modified = elem.time;
  vp.shadow[elem.prefix] = std::move(cell);
}

void RoutingTables::BeginRib(Shard& shard, const std::string& collector) {
  auto& rp = shard.rib_progress[collector];
  rp.active = true;
  rp.corrupt = false;
  auto ci = shard.collector_vps.find(collector);
  if (ci == shard.collector_vps.end()) return;
  for (const VpKey& key : ci->second) {
    VpTable& vp = shard.vps.at(key);
    ++shard.boundary_visits;
    vp.shadow.clear();
    vp.in_current_rib = false;
    Transition(vp, VpInput::RibStart);
  }
}

void RoutingTables::AbortRib(Shard& shard, const std::string& collector) {
  // E1: at least one record of the dump was corrupted — ignore it all.
  auto& rp = shard.rib_progress[collector];
  rp.active = false;
  auto ci = shard.collector_vps.find(collector);
  if (ci == shard.collector_vps.end()) return;
  for (const VpKey& key : ci->second) {
    VpTable& vp = shard.vps.at(key);
    ++shard.boundary_visits;
    vp.shadow.clear();
    vp.in_current_rib = false;
    Transition(vp, VpInput::RibCorrupt);
  }
}

void RoutingTables::EndRib(Shard& shard, const std::string& collector) {
  auto& rp = shard.rib_progress[collector];
  rp.active = false;
  auto ci = shard.collector_vps.find(collector);
  if (ci == shard.collector_vps.end()) return;
  for (const VpKey& key : ci->second) {
    VpTable& vp = shard.vps.at(key);
    ++shard.boundary_visits;
    if (!vp.in_current_rib) {
      // The paper's RouteViews mitigation: a VP absent from the RIB dump
      // is presumed down (stale cells would otherwise linger forever).
      if (options_.down_if_absent_from_rib && !vp.main.empty()) {
        Transition(vp, VpInput::StateDown);
        for (auto& [prefix, cell] : vp.main) {
          if (!cell.announced) continue;
          Touch(shard, key, vp, prefix);
          cell.announced = false;
        }
      }
      Transition(vp, VpInput::RibEnd);
      continue;
    }
    // Accuracy check (§6.2.1): where both an evolved main cell and a
    // shadow cell exist and the main cell was updated *after* this RIB's
    // records, the evolved state should match the dump's ground truth.
    for (const auto& [prefix, shadow_cell] : vp.shadow) {
      auto it = vp.main.find(prefix);
      if (it == vp.main.end()) continue;
      const RtCell& main_cell = it->second;
      ++shard.rib_compared;
      // E2 with tie tolerance: a cell updated at or after the RIB record's
      // timestamp already reflects (at least) the dump's knowledge.
      if (main_cell.last_modified >= shadow_cell.last_modified) continue;
      if (!main_cell.announced || main_cell.as_path != shadow_cell.as_path)
        ++shard.rib_mismatches;
    }
    // Merge: shadow replaces main unless main is at least as new (E2).
    for (auto& [prefix, shadow_cell] : vp.shadow) {
      auto it = vp.main.find(prefix);
      if (it == vp.main.end()) {
        Touch(shard, key, vp, prefix);
        vp.main[prefix] = std::move(shadow_cell);
        continue;
      }
      if (it->second.last_modified >= shadow_cell.last_modified) continue;
      Touch(shard, key, vp, prefix);
      it->second = std::move(shadow_cell);
    }
    // Prefixes in main but absent from the dump: if not touched by newer
    // updates, the VP no longer routes them.
    for (auto& [prefix, cell] : vp.main) {
      if (!cell.announced) continue;
      if (vp.shadow.count(prefix)) continue;
      // Keep cells modified after the dump started.
      Timestamp dump_floor = 0;
      if (!vp.shadow.empty())
        dump_floor = vp.shadow.begin()->second.last_modified;
      if (cell.last_modified > dump_floor) continue;
      Touch(shard, key, vp, prefix);
      cell.announced = false;
    }
    vp.shadow.clear();
    vp.in_current_rib = false;
    Transition(vp, VpInput::RibEnd);
  }
}

void RoutingTables::CollectorUpdateCorrupt(Shard& shard,
                                           const std::string& collector) {
  auto ci = shard.collector_vps.find(collector);
  if (ci == shard.collector_vps.end()) return;
  for (const VpKey& key : ci->second) {
    ++shard.boundary_visits;
    Transition(shard.vps.at(key), VpInput::UpdateCorrupt);
  }
}

void RoutingTables::ApplyOp(Shard& shard, const Op& op) {
  switch (op.kind) {
    case Op::Kind::kUpdateElem:
      ApplyUpdateElem(shard, op.collector, op.elem);
      break;
    case Op::Kind::kRibElem:
      ApplyRibElem(shard, op.collector, op.elem);
      break;
    case Op::Kind::kBeginRib:
      BeginRib(shard, op.collector);
      break;
    case Op::Kind::kEndRib:
      EndRib(shard, op.collector);
      break;
    case Op::Kind::kAbortRib:
      AbortRib(shard, op.collector);
      break;
    case Op::Kind::kUpdateCorrupt:
      CollectorUpdateCorrupt(shard, op.collector);
      break;
  }
}

void RoutingTables::RouteElem(Op::Kind kind, const std::string& collector,
                              const core::Elem& elem) {
  size_t s = ShardOf(collector, elem.peer_asn);
  if (!threaded()) {
    if (kind == Op::Kind::kUpdateElem) {
      ApplyUpdateElem(*shards_[s], collector, elem);
    } else {
      ApplyRibElem(*shards_[s], collector, elem);
    }
    return;
  }
  pending_[s].push_back(Op{kind, collector, elem});
  size_t batch = options_.batch_elems == 0 ? 1 : options_.batch_elems;
  if (pending_[s].size() >= batch) FlushShard(s);
}

void RoutingTables::Broadcast(Op::Kind kind, const std::string& collector) {
  for (size_t s = 0; s < shard_count_; ++s) {
    if (!threaded()) {
      ApplyOp(*shards_[s], Op{kind, collector, {}});
    } else {
      pending_[s].push_back(Op{kind, collector, {}});
      size_t batch = options_.batch_elems == 0 ? 1 : options_.batch_elems;
      if (pending_[s].size() >= batch) FlushShard(s);
    }
  }
}

void RoutingTables::FlushShard(size_t shard) {
  if (pending_[shard].empty()) return;
  std::vector<Op> batch;
  batch.swap(pending_[shard]);
  Shard* target = shards_[shard].get();
  strands_[shard]->Post([this, target, batch = std::move(batch)]() {
    for (const Op& op : batch) ApplyOp(*target, op);
    ++target->batches;
  });
}

void RoutingTables::Drain() const {
  if (strands_.empty()) return;
  auto* self = const_cast<RoutingTables*>(this);
  for (size_t s = 0; s < self->shard_count_; ++s) self->FlushShard(s);
  for (auto& strand : self->strands_) strand->Drain();
}

void RoutingTables::OnRecord(RecordContext& ctx) {
  const core::Record& rec = ctx.record;
  const std::string& collector = rec.collector;

  if (rec.status != core::RecordStatus::Valid) {
    if (rec.status == core::RecordStatus::Unsupported) return;
    if (rec.dump_type == core::DumpType::Rib) {
      Broadcast(Op::Kind::kAbortRib, collector);  // E1
    } else {
      Broadcast(Op::Kind::kUpdateCorrupt, collector);  // E3
    }
    return;
  }

  if (rec.dump_type == core::DumpType::Rib) {
    if (rec.position == core::DumpPosition::Start)
      Broadcast(Op::Kind::kBeginRib, collector);
    for (const auto& elem : ctx.elems) {
      if (elem.type == core::ElemType::RibEntry)
        RouteElem(Op::Kind::kRibElem, collector, elem);
    }
    if (rec.position == core::DumpPosition::End)
      Broadcast(Op::Kind::kEndRib, collector);
    return;
  }

  // The bin elem counter tracks every elem of valid updates records —
  // counted on the driver thread so bin stats never wait on shards.
  bin_elems_ += ctx.elems.size();
  for (const auto& elem : ctx.elems)
    RouteElem(Op::Kind::kUpdateElem, collector, elem);
}

void RoutingTables::Touch(Shard& shard, const VpKey& key, VpTable& vp,
                          const Prefix& prefix) {
  if (vp.dirty.count(prefix)) return;  // keep the earliest pre-bin value
  if (vp.dirty.empty()) shard.dirty_vps.insert(key);
  auto it = vp.main.find(prefix);
  vp.dirty.emplace(prefix, it == vp.main.end() ? RtCell{} : it->second);
}

namespace {
// Content equality ignoring the bookkeeping timestamp: a cell whose route
// did not actually change publishes no diff.
bool SameContent(const RtCell& a, const RtCell& b) {
  if (a.announced != b.announced) return false;
  if (!a.announced) return true;  // two withdrawn cells are equivalent
  return a.as_path == b.as_path && a.communities == b.communities;
}
}  // namespace

std::vector<DiffCell> RoutingTables::CollectDiffs() {
  Drain();
  auto collect = [](Shard& shard) {
    shard.bin_diffs.clear();
    for (const VpKey& key : shard.dirty_vps) {
      VpTable& vp = shard.vps.at(key);
      for (const auto& [prefix, old_cell] : vp.dirty) {
        auto it = vp.main.find(prefix);
        if (it == vp.main.end()) continue;
        if (SameContent(old_cell, it->second)) continue;  // reverted in-bin
        shard.bin_diffs.push_back(DiffCell{key, prefix, it->second});
      }
      vp.dirty.clear();
    }
    shard.dirty_vps.clear();
  };

  if (threaded() && shard_count_ > 1) {
    // Fan the collection out to the shards' own strands (the barrier's
    // parallel reduce step), then wait for all of them.
    for (size_t s = 0; s < shard_count_; ++s) {
      Shard* shard = shards_[s].get();
      strands_[s]->Post([collect, shard] { collect(*shard); });
    }
    for (auto& strand : strands_) strand->Drain();
  } else {
    for (auto& shard : shards_) collect(*shard);
  }

  if (shard_count_ == 1) return std::move(shards_[0]->bin_diffs);

  // K-way merge back into global (VpKey, Prefix) order. Shards partition
  // the VP space, so keys never tie across shards.
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->bin_diffs.size();
  std::vector<DiffCell> out;
  out.reserve(total);
  std::vector<size_t> idx(shard_count_, 0);
  while (out.size() < total) {
    size_t best = shard_count_;
    for (size_t s = 0; s < shard_count_; ++s) {
      if (idx[s] >= shards_[s]->bin_diffs.size()) continue;
      if (best == shard_count_) {
        best = s;
        continue;
      }
      const DiffCell& a = shards_[s]->bin_diffs[idx[s]];
      const DiffCell& b = shards_[best]->bin_diffs[idx[best]];
      if (std::tie(a.vp, a.prefix) < std::tie(b.vp, b.prefix)) best = s;
    }
    out.push_back(std::move(shards_[best]->bin_diffs[idx[best]]));
    ++idx[best];
  }
  for (auto& shard : shards_) shard->bin_diffs.clear();
  return out;
}

void RoutingTables::OnBinEnd(Timestamp bin_start, Timestamp /*bin_end*/) {
  std::vector<DiffCell> diffs = CollectDiffs();
  bin_stats_.push_back(RtBinStats{bin_start, bin_elems_, diffs.size()});
  bin_elems_ = 0;
  ++bins_seen_;

  if (on_diffs_) on_diffs_(bin_start, diffs);
  if (on_snapshot_ && options_.snapshot_every_bins != 0 &&
      bins_seen_ % options_.snapshot_every_bins == 0) {
    for (const VpKey& key : vps()) {
      on_snapshot_(bin_start, key, table(key));
    }
  }
}

void RoutingTables::OnFinish() { Drain(); }

VpState RoutingTables::state(const VpKey& vp) const {
  Drain();
  const Shard& shard = *shards_[ShardOf(vp.collector, vp.peer)];
  auto it = shard.vps.find(vp);
  return it == shard.vps.end() ? VpState::Down : it->second.state;
}

std::map<Prefix, RtCell> RoutingTables::table(const VpKey& vp) const {
  Drain();
  std::map<Prefix, RtCell> out;
  const Shard& shard = *shards_[ShardOf(vp.collector, vp.peer)];
  auto it = shard.vps.find(vp);
  if (it == shard.vps.end()) return out;
  for (const auto& [prefix, cell] : it->second.main) {
    if (cell.announced) out.emplace(prefix, cell);
  }
  return out;
}

std::vector<VpKey> RoutingTables::vps() const {
  Drain();
  std::vector<VpKey> out;
  for (const auto& shard : shards_) {
    for (const auto& [key, _] : shard->vps) out.push_back(key);
  }
  std::sort(out.begin(), out.end());
  return out;
}

size_t RoutingTables::rib_compared_prefixes() const {
  Drain();
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->rib_compared;
  return total;
}

size_t RoutingTables::rib_mismatches() const {
  Drain();
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->rib_mismatches;
  return total;
}

std::vector<RtShardStats> RoutingTables::shard_stats() const {
  Drain();
  std::vector<RtShardStats> out;
  out.reserve(shard_count_);
  for (const auto& shard : shards_) {
    RtShardStats s;
    s.vps = shard->vps.size();
    s.applied_elems = shard->applied_elems;
    s.batches = shard->batches;
    out.push_back(s);
  }
  return out;
}

size_t RoutingTables::rib_boundary_visits() const {
  Drain();
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->boundary_visits;
  return total;
}

}  // namespace bgps::corsaro
