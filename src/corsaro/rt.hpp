// routing-tables (RT) plugin (paper §6.2.1–6.2.2).
//
// Reconstructs the observable Loc-RIB of every VP at fine time
// granularity: a RIB dump seeds the table, Updates dumps evolve it, and
// subsequent RIB dumps sanity-check and correct it. State and routes live
// in a prefix × VP "matrix"; each cell carries the reachability
// attributes, the last-modified timestamp and an A/W flag. A shadow cell
// stages records of an in-progress RIB dump until its last record is seen
// (events E1–E4 of the paper are all implemented; see rt_fsm.hpp for the
// per-VP FSM).
//
// At the end of each time bin the plugin emits diff cells — only the
// changed portion of each VP's table (§6.2.2) — plus periodic full
// snapshots consumers can bootstrap from.
//
// Sharded execution (§5's shard-by-independent-key shape on our own
// Executor): per-(collector, peer) state is independent between bin
// boundaries, so with Options::shards > 1 and an Options::executor each
// elem is routed by a stable hash of its VpKey to one of N shards, whose
// apply-loops run as serialized Executor tasks (core::Strand — one task
// of a shard in flight at a time, in stream order). RIB begin/end/abort
// and corrupt events are broadcast to every shard in stream position, so
// each shard sees exactly the global op sequence filtered to its own
// VPs. OnBinEnd is a barrier: it drains all shards, collects each
// shard's diffs (its dirty VPs in VpKey order), and k-way-merges them
// back into global (VpKey, Prefix) order — the emitted diff stream,
// bin stats, accuracy counters and per-VP tables are byte-identical to
// the sequential path at any shard count. With shards == 1 or no
// executor, ops apply inline with no queueing overhead.
#pragma once

#include <map>
#include <memory>
#include <set>

#include "core/strand.hpp"
#include "corsaro/plugin.hpp"
#include "corsaro/rt_fsm.hpp"

namespace bgps::corsaro {

struct VpKey {
  std::string collector;
  bgp::Asn peer = 0;
  auto operator<=>(const VpKey&) const = default;
};

// One cell of the prefix × VP matrix.
struct RtCell {
  bgp::AsPath as_path;
  bgp::Communities communities;
  Timestamp last_modified = 0;
  bool announced = false;  // A/W flag

  bool operator==(const RtCell&) const = default;
};

// A changed cell published at the end of a bin.
struct DiffCell {
  VpKey vp;
  Prefix prefix;
  RtCell cell;  // announced == false -> the prefix was withdrawn

  bool operator==(const DiffCell&) const = default;
};

struct RtBinStats {
  Timestamp bin_start = 0;
  size_t elems = 0;       // announcement/withdrawal elems seen in the bin
  size_t diff_cells = 0;  // cells that changed in the bin

  bool operator==(const RtBinStats&) const = default;
};

// Per-shard observability (scaling counters for the benches).
struct RtShardStats {
  size_t vps = 0;            // VPs owned by this shard
  size_t applied_elems = 0;  // update + RIB elems this shard applied
  size_t batches = 0;        // apply batches its strand executed
};

struct RoutingTablesOptions {
  // Emit a full snapshot every N bins (0 = never) — consumers use these
  // to (re)synchronize before applying diffs (§6.2.2).
  size_t snapshot_every_bins = 0;
  // Declare a VP down when a RIB dump contains none of its routes
  // (the paper's mitigation for RouteViews' missing state messages).
  bool down_if_absent_from_rib = true;
  // VP-partitioned shards. 1 = classic sequential apply on the caller's
  // thread. N > 1 requires `executor`; output is identical at any value.
  size_t shards = 1;
  // Pool running the shard apply-loops (one serialized tenant per
  // shard). Not owned; must outlive the plugin. nullptr forces inline
  // application regardless of `shards`.
  core::Executor* executor = nullptr;
  // Elems buffered per shard before a batch is posted to its strand
  // (amortizes queue traffic; flushed at every bin/introspection point).
  size_t batch_elems = 512;
};

class RoutingTables : public Plugin {
 public:
  using Options = RoutingTablesOptions;

  using DiffCallback =
      std::function<void(Timestamp bin_start, const std::vector<DiffCell>&)>;
  using SnapshotCallback = std::function<void(
      Timestamp bin_start, const VpKey&, const std::map<Prefix, RtCell>&)>;

  explicit RoutingTables(Options options = {});
  ~RoutingTables() override;

  std::string_view name() const override { return "routing-tables"; }
  void OnRecord(RecordContext& ctx) override;
  void OnBinEnd(Timestamp bin_start, Timestamp bin_end) override;
  void OnFinish() override;

  void set_diff_callback(DiffCallback cb) { on_diffs_ = std::move(cb); }
  void set_snapshot_callback(SnapshotCallback cb) { on_snapshot_ = std::move(cb); }

  // --- introspection (consumers, tests, benches) ---
  // All introspection drains in-flight shard work first, so values are
  // consistent as of every record handed to OnRecord so far.
  VpState state(const VpKey& vp) const;
  // Announced cells only (the reconstructed routing table).
  std::map<Prefix, RtCell> table(const VpKey& vp) const;
  std::vector<VpKey> vps() const;
  const std::vector<RtBinStats>& bin_stats() const { return bin_stats_; }

  // Accuracy counters (§6.2.1): mismatches between the table evolved from
  // updates and the ground truth of the next RIB dump, over all compared
  // prefixes.
  size_t rib_compared_prefixes() const;
  size_t rib_mismatches() const;

  // Per-shard work distribution (size == shard count).
  std::vector<RtShardStats> shard_stats() const;
  // VP-table visits performed by RIB begin/end/abort and update-corrupt
  // events, across all shards. With the per-collector VP index this is
  // O(VPs of the event's collector) per event, not O(all VPs) — pinned
  // by a regression test.
  size_t rib_boundary_visits() const;

 private:
  struct VpTable {
    VpState state = VpState::Down;
    std::map<Prefix, RtCell> main;
    std::map<Prefix, RtCell> shadow;
    bool in_current_rib = false;  // saw entries in the in-progress RIB dump
    // Cells touched this bin, with their value at the start of the bin —
    // a diff is emitted only if the content actually changed, so a flap
    // that reverts within one bin publishes nothing (§6.2.2 redundancy
    // elimination).
    std::map<Prefix, RtCell> dirty;
  };

  // Per-collector bookkeeping for the in-progress RIB dump.
  struct RibProgress {
    bool active = false;
    bool corrupt = false;  // E1 latch
  };

  // One VP partition. Only its strand (or the caller's thread, inline
  // mode / after a drain) touches it, so no per-shard locking is needed.
  struct Shard {
    std::map<VpKey, VpTable> vps;
    // Each shard tracks every collector's RIB progress independently
    // (broadcast ops keep the copies in sync) so Vp() creation works
    // without cross-shard reads.
    std::map<std::string, RibProgress> rib_progress;
    // Per-collector VP index: RIB boundary events visit exactly the
    // collector's own VPs instead of scanning the whole table.
    std::map<std::string, std::set<VpKey>> collector_vps;
    // VPs touched this bin — bin-end diff collection visits only these.
    std::set<VpKey> dirty_vps;
    size_t rib_compared = 0;
    size_t rib_mismatches = 0;
    size_t applied_elems = 0;
    size_t batches = 0;
    size_t boundary_visits = 0;
    // Bin-end scratch: this shard's diffs, already in (VpKey, Prefix)
    // order, awaiting the global merge.
    std::vector<DiffCell> bin_diffs;
  };

  // One buffered operation of a shard's apply stream.
  struct Op {
    enum class Kind : uint8_t {
      kUpdateElem,      // announcement / withdrawal / peer-state elem
      kRibElem,         // RIB_*_UNICAST entry
      kBeginRib,        // broadcast
      kEndRib,          // broadcast
      kAbortRib,        // broadcast (E1)
      kUpdateCorrupt,   // broadcast (E3)
    };
    Kind kind;
    std::string collector;
    core::Elem elem;  // valid for kUpdateElem / kRibElem
  };

  // Marks `prefix` as touched, remembering its pre-bin value.
  static void Touch(Shard& shard, const VpKey& key, VpTable& vp,
                    const Prefix& prefix);

  VpTable& Vp(Shard& shard, const VpKey& key);
  static void Transition(VpTable& vp, VpInput input);
  void ApplyUpdateElem(Shard& shard, const std::string& collector,
                       const core::Elem& elem);
  void ApplyRibElem(Shard& shard, const std::string& collector,
                    const core::Elem& elem);
  void BeginRib(Shard& shard, const std::string& collector);
  void EndRib(Shard& shard, const std::string& collector);
  void AbortRib(Shard& shard, const std::string& collector);
  void CollectorUpdateCorrupt(Shard& shard, const std::string& collector);
  void ApplyOp(Shard& shard, const Op& op);

  size_t ShardOf(const std::string& collector, bgp::Asn peer) const;
  bool threaded() const { return !strands_.empty(); }
  // Routes one elem op to its shard (inline apply or batch buffer).
  void RouteElem(Op::Kind kind, const std::string& collector,
                 const core::Elem& elem);
  // Queues a collector-scoped event on every shard, in stream position.
  void Broadcast(Op::Kind kind, const std::string& collector);
  void FlushShard(size_t shard);
  // Flushes every pending batch and waits for all strands to go idle —
  // after this the caller's thread may touch any shard.
  void Drain() const;
  // Collects per-shard diffs (on the shards' own strands when threaded)
  // and merges them into global (VpKey, Prefix) order.
  std::vector<DiffCell> CollectDiffs();

  Options options_;
  size_t shard_count_;
  std::vector<std::unique_ptr<Shard>> shards_;
  // Driver-thread batch buffers, one per shard (threaded mode only).
  std::vector<std::vector<Op>> pending_;
  // Destruction order matters: strands drain against live tenants, so
  // strands_ (declared last) is destroyed first, then tenants_.
  std::vector<std::unique_ptr<core::Executor::Tenant>> tenants_;
  std::vector<std::unique_ptr<core::Strand>> strands_;

  std::vector<RtBinStats> bin_stats_;
  size_t bin_elems_ = 0;
  size_t bins_seen_ = 0;
  DiffCallback on_diffs_;
  SnapshotCallback on_snapshot_;
};

}  // namespace bgps::corsaro
