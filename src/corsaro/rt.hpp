// routing-tables (RT) plugin (paper §6.2.1–6.2.2).
//
// Reconstructs the observable Loc-RIB of every VP at fine time
// granularity: a RIB dump seeds the table, Updates dumps evolve it, and
// subsequent RIB dumps sanity-check and correct it. State and routes live
// in a prefix × VP "matrix"; each cell carries the reachability
// attributes, the last-modified timestamp and an A/W flag. A shadow cell
// stages records of an in-progress RIB dump until its last record is seen
// (events E1–E4 of the paper are all implemented; see rt_fsm.hpp for the
// per-VP FSM).
//
// At the end of each time bin the plugin emits diff cells — only the
// changed portion of each VP's table (§6.2.2) — plus periodic full
// snapshots consumers can bootstrap from.
#pragma once

#include <map>

#include "corsaro/plugin.hpp"
#include "corsaro/rt_fsm.hpp"

namespace bgps::corsaro {

struct VpKey {
  std::string collector;
  bgp::Asn peer = 0;
  auto operator<=>(const VpKey&) const = default;
};

// One cell of the prefix × VP matrix.
struct RtCell {
  bgp::AsPath as_path;
  bgp::Communities communities;
  Timestamp last_modified = 0;
  bool announced = false;  // A/W flag

  bool operator==(const RtCell&) const = default;
};

// A changed cell published at the end of a bin.
struct DiffCell {
  VpKey vp;
  Prefix prefix;
  RtCell cell;  // announced == false -> the prefix was withdrawn
};

struct RtBinStats {
  Timestamp bin_start = 0;
  size_t elems = 0;       // announcement/withdrawal elems seen in the bin
  size_t diff_cells = 0;  // cells that changed in the bin
};

struct RoutingTablesOptions {
  // Emit a full snapshot every N bins (0 = never) — consumers use these
  // to (re)synchronize before applying diffs (§6.2.2).
  size_t snapshot_every_bins = 0;
  // Declare a VP down when a RIB dump contains none of its routes
  // (the paper's mitigation for RouteViews' missing state messages).
  bool down_if_absent_from_rib = true;
};

class RoutingTables : public Plugin {
 public:
  using Options = RoutingTablesOptions;

  using DiffCallback =
      std::function<void(Timestamp bin_start, const std::vector<DiffCell>&)>;
  using SnapshotCallback = std::function<void(
      Timestamp bin_start, const VpKey&, const std::map<Prefix, RtCell>&)>;

  explicit RoutingTables(Options options = {});

  std::string_view name() const override { return "routing-tables"; }
  void OnRecord(RecordContext& ctx) override;
  void OnBinEnd(Timestamp bin_start, Timestamp bin_end) override;

  void set_diff_callback(DiffCallback cb) { on_diffs_ = std::move(cb); }
  void set_snapshot_callback(SnapshotCallback cb) { on_snapshot_ = std::move(cb); }

  // --- introspection (consumers, tests, benches) ---
  VpState state(const VpKey& vp) const;
  // Announced cells only (the reconstructed routing table).
  std::map<Prefix, RtCell> table(const VpKey& vp) const;
  std::vector<VpKey> vps() const;
  const std::vector<RtBinStats>& bin_stats() const { return bin_stats_; }

  // Accuracy counters (§6.2.1): mismatches between the table evolved from
  // updates and the ground truth of the next RIB dump, over all compared
  // prefixes.
  size_t rib_compared_prefixes() const { return rib_compared_; }
  size_t rib_mismatches() const { return rib_mismatches_; }

 private:
  struct VpTable {
    VpState state = VpState::Down;
    std::map<Prefix, RtCell> main;
    std::map<Prefix, RtCell> shadow;
    bool in_current_rib = false;  // saw entries in the in-progress RIB dump
    // Cells touched this bin, with their value at the start of the bin —
    // a diff is emitted only if the content actually changed, so a flap
    // that reverts within one bin publishes nothing (§6.2.2 redundancy
    // elimination).
    std::map<Prefix, RtCell> dirty;
  };

  // Marks `prefix` as touched, remembering its pre-bin value.
  static void Touch(VpTable& vp, const Prefix& prefix);

  // Per-collector bookkeeping for the in-progress RIB dump.
  struct RibProgress {
    bool active = false;
    bool corrupt = false;  // E1 latch
  };

  VpTable& Vp(const VpKey& key);
  void Transition(VpTable& vp, VpInput input);
  void ApplyUpdateElem(const std::string& collector, const core::Elem& elem);
  void ApplyRibElem(const std::string& collector, const core::Elem& elem);
  void BeginRib(const std::string& collector);
  void EndRib(const std::string& collector);
  void AbortRib(const std::string& collector);
  void CollectorUpdateCorrupt(const std::string& collector);

  Options options_;
  std::map<VpKey, VpTable> vps_;
  std::map<std::string, RibProgress> rib_progress_;
  std::vector<RtBinStats> bin_stats_;
  size_t bin_elems_ = 0;
  size_t bins_seen_ = 0;
  size_t rib_compared_ = 0;
  size_t rib_mismatches_ = 0;
  DiffCallback on_diffs_;
  SnapshotCallback on_snapshot_;
};

}  // namespace bgps::corsaro
