// Finite state machine for VP routing-table reconstruction
// (paper §6.2.1, Figure 8).
//
// Two macro-states: "consistent routing table" (up, up-RIB-application)
// and "unavailable routing table" (down, down-RIB-application). Kept as a
// standalone pure function so the transition table is exhaustively
// testable.
#pragma once

#include <cstdint>

namespace bgps::corsaro {

enum class VpState : uint8_t {
  Down,                // (1) no consistent table
  DownRibApplication,  // (2) first RIB dump being applied
  Up,                  // (3) table consistent
  UpRibApplication,    // (4) table consistent, new RIB staging into shadow
};

enum class VpInput : uint8_t {
  RibStart,          // a RIB dump including this VP began
  RibEnd,            // that RIB dump ended cleanly (shadow merged)
  RibCorrupt,        // E1: a record of the RIB dump was corrupted
  UpdateCorrupt,     // E3: a corrupted Updates dump record was received
  StateEstablished,  // E4: state message with the Established code
  StateDown,         // E4: any other state message
  Update,            // ordinary announcement/withdrawal
};

const char* VpStateName(VpState s);

// Transition function of Figure 8.
constexpr VpState VpNextState(VpState state, VpInput input) {
  switch (input) {
    case VpInput::UpdateCorrupt:
      return VpState::Down;  // E3: stop applying updates, wait for a RIB
    case VpInput::StateEstablished:
      // E4: session (re-)established. A table is only *consistent* once a
      // RIB has been applied, so from Down this starts a fresh wait; from
      // RIB-application states the dump keeps staging.
      return state == VpState::Down ? VpState::Up : state;
    case VpInput::StateDown:
      return VpState::Down;
    case VpInput::RibStart:
      switch (state) {
        case VpState::Down: return VpState::DownRibApplication;
        case VpState::Up: return VpState::UpRibApplication;
        default: return state;  // nested RIB starts are idempotent
      }
    case VpInput::RibEnd:
      switch (state) {
        case VpState::DownRibApplication:
        case VpState::UpRibApplication:
          return VpState::Up;
        default:
          return state;
      }
    case VpInput::RibCorrupt:
      // E1: discard the staged dump; fall back to the macro-state the VP
      // was in before the dump began.
      switch (state) {
        case VpState::DownRibApplication: return VpState::Down;
        case VpState::UpRibApplication: return VpState::Up;
        default: return state;
      }
    case VpInput::Update:
      return state;
  }
  return state;
}

// True when the reconstructed table is usable (macro-state "consistent").
constexpr bool VpTableConsistent(VpState s) {
  return s == VpState::Up || s == VpState::UpRibApplication;
}

}  // namespace bgps::corsaro
