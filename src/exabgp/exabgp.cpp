#include "exabgp/exabgp.hpp"

#include <fstream>

#include "mrt/encode.hpp"
#include "mrt/file.hpp"

namespace bgps::exabgp {
namespace {

const char* AfiName(IpFamily f) {
  return f == IpFamily::V4 ? "ipv4 unicast" : "ipv6 unicast";
}

Json EncodeAttributes(const bgp::PathAttributes& attrs) {
  Json a = Json::MakeObject();
  a.Set("origin", Json::MakeString(
                      attrs.origin == bgp::Origin::Igp       ? "igp"
                      : attrs.origin == bgp::Origin::Egp     ? "egp"
                                                             : "incomplete"));
  Json path = Json::MakeArray();
  for (bgp::Asn asn : attrs.as_path.hops())
    path.Append(Json::MakeNumber(double(asn)));
  a.Set("as-path", std::move(path));
  if (attrs.local_pref)
    a.Set("local-preference", Json::MakeNumber(double(*attrs.local_pref)));
  if (attrs.med) a.Set("med", Json::MakeNumber(double(*attrs.med)));
  if (!attrs.communities.empty()) {
    Json comms = Json::MakeArray();
    for (bgp::Community c : attrs.communities) {
      Json pair = Json::MakeArray();
      pair.Append(Json::MakeNumber(c.asn()));
      pair.Append(Json::MakeNumber(c.value()));
      comms.Append(std::move(pair));
    }
    a.Set("community", std::move(comms));
  }
  return a;
}

Status DecodeAttributes(const Json& a, bgp::PathAttributes* attrs) {
  const std::string& origin = a["origin"].as_string();
  attrs->origin = origin == "egp"          ? bgp::Origin::Egp
                  : origin == "incomplete" ? bgp::Origin::Incomplete
                                           : bgp::Origin::Igp;
  if (a["as-path"].is_array()) {
    std::vector<bgp::Asn> hops;
    for (const Json& hop : a["as-path"].array()) {
      if (!hop.is_number()) return CorruptError("non-numeric as-path hop");
      hops.push_back(bgp::Asn(hop.as_int()));
    }
    attrs->as_path = bgp::AsPath::Sequence(std::move(hops));
  }
  if (a["local-preference"].is_number())
    attrs->local_pref = uint32_t(a["local-preference"].as_int());
  if (a["med"].is_number()) attrs->med = uint32_t(a["med"].as_int());
  if (a["community"].is_array()) {
    for (const Json& pair : a["community"].array()) {
      if (!pair.is_array() || pair.size() != 2)
        return CorruptError("bad community pair");
      attrs->communities.push_back(
          bgp::Community(uint16_t(pair.array()[0].as_int()),
                         uint16_t(pair.array()[1].as_int())));
    }
  }
  return OkStatus();
}

}  // namespace

std::string EncodeLine(const ExaBgpMessage& msg) {
  Json root = Json::MakeObject();
  root.Set("exabgp", Json::MakeString("4.0.1"));
  root.Set("time", Json::MakeNumber(double(msg.time)));
  Json neighbor = Json::MakeObject();
  {
    Json address = Json::MakeObject();
    address.Set("local", Json::MakeString(msg.local_address.ToString()));
    address.Set("peer", Json::MakeString(msg.peer_address.ToString()));
    neighbor.Set("address", std::move(address));
    Json asn = Json::MakeObject();
    asn.Set("local", Json::MakeNumber(double(msg.local_asn)));
    asn.Set("peer", Json::MakeNumber(double(msg.peer_asn)));
    neighbor.Set("asn", std::move(asn));
  }

  if (msg.kind == ExaBgpMessage::Kind::State) {
    root.Set("type", Json::MakeString("state"));
    neighbor.Set("state",
                 Json::MakeString(msg.state == bgp::FsmState::Established
                                      ? "up"
                                      : "down"));
    root.Set("neighbor", std::move(neighbor));
    return root.Dump();
  }

  root.Set("type", Json::MakeString("update"));
  Json update = Json::MakeObject();
  update.Set("attribute", EncodeAttributes(msg.update.attrs));

  // Announcements grouped by family and next hop, ExaBGP-style.
  Json announce = Json::MakeObject();
  auto add_announce = [&](IpFamily family, const IpAddress& next_hop,
                          const bgp::PrefixVec& prefixes) {
    if (prefixes.empty()) return;
    Json nlris = Json::MakeArray();
    for (const Prefix& p : prefixes) {
      Json entry = Json::MakeObject();
      entry.Set("nlri", Json::MakeString(p.ToString()));
      nlris.Append(std::move(entry));
    }
    Json by_nh = Json::MakeObject();
    by_nh.Set(next_hop.ToString(), std::move(nlris));
    announce.Set(AfiName(family), std::move(by_nh));
  };
  if (!msg.update.announced.empty()) {
    IpAddress nh = msg.update.attrs.next_hop.value_or(msg.peer_address);
    add_announce(IpFamily::V4, nh, msg.update.announced);
  }
  if (msg.update.attrs.mp_reach) {
    add_announce(IpFamily::V6, msg.update.attrs.mp_reach->next_hop,
                 msg.update.attrs.mp_reach->nlri);
  }
  if (announce.size() > 0) update.Set("announce", std::move(announce));

  Json withdraw = Json::MakeObject();
  auto add_withdraw = [&](IpFamily family, const bgp::PrefixVec& prefixes) {
    if (prefixes.empty()) return;
    Json nlris = Json::MakeArray();
    for (const Prefix& p : prefixes) {
      Json entry = Json::MakeObject();
      entry.Set("nlri", Json::MakeString(p.ToString()));
      nlris.Append(std::move(entry));
    }
    withdraw.Set(AfiName(family), std::move(nlris));
  };
  add_withdraw(IpFamily::V4, msg.update.withdrawn);
  if (msg.update.attrs.mp_unreach)
    add_withdraw(IpFamily::V6, msg.update.attrs.mp_unreach->withdrawn);
  if (withdraw.size() > 0) update.Set("withdraw", std::move(withdraw));

  Json message = Json::MakeObject();
  message.Set("update", std::move(update));
  neighbor.Set("message", std::move(message));
  root.Set("neighbor", std::move(neighbor));
  return root.Dump();
}

Result<ExaBgpMessage> DecodeLine(const std::string& line) {
  BGPS_ASSIGN_OR_RETURN(Json root, Json::Parse(line));
  if (!root.is_object()) return CorruptError("ExaBGP line is not an object");
  ExaBgpMessage msg;
  msg.time = Timestamp(root["time"].as_number());
  const Json& neighbor = root["neighbor"];
  BGPS_ASSIGN_OR_RETURN(
      msg.peer_address,
      IpAddress::Parse(neighbor["address"]["peer"].as_string()));
  if (neighbor["address"]["local"].is_string()) {
    BGPS_ASSIGN_OR_RETURN(
        msg.local_address,
        IpAddress::Parse(neighbor["address"]["local"].as_string()));
  }
  msg.peer_asn = bgp::Asn(neighbor["asn"]["peer"].as_int());
  msg.local_asn = bgp::Asn(neighbor["asn"]["local"].as_int());

  const std::string& type = root["type"].as_string();
  if (type == "state") {
    msg.kind = ExaBgpMessage::Kind::State;
    msg.state = neighbor["state"].as_string() == "up"
                    ? bgp::FsmState::Established
                    : bgp::FsmState::Idle;
    return msg;
  }
  if (type != "update") return UnsupportedError("ExaBGP type " + type);

  msg.kind = ExaBgpMessage::Kind::Update;
  const Json& update = neighbor["message"]["update"];
  BGPS_RETURN_IF_ERROR(DecodeAttributes(update["attribute"], &msg.update.attrs));

  const Json& announce = update["announce"];
  if (announce["ipv4 unicast"].is_object()) {
    for (const auto& [next_hop, nlris] : announce["ipv4 unicast"].object()) {
      BGPS_ASSIGN_OR_RETURN(IpAddress nh, IpAddress::Parse(next_hop));
      msg.update.attrs.next_hop = nh;
      for (const Json& entry : nlris.array()) {
        BGPS_ASSIGN_OR_RETURN(Prefix p,
                              Prefix::Parse(entry["nlri"].as_string()));
        msg.update.announced.push_back(p);
      }
    }
  }
  if (announce["ipv6 unicast"].is_object()) {
    bgp::MpReach mp;
    for (const auto& [next_hop, nlris] : announce["ipv6 unicast"].object()) {
      BGPS_ASSIGN_OR_RETURN(mp.next_hop, IpAddress::Parse(next_hop));
      for (const Json& entry : nlris.array()) {
        BGPS_ASSIGN_OR_RETURN(Prefix p,
                              Prefix::Parse(entry["nlri"].as_string()));
        mp.nlri.push_back(p);
      }
    }
    if (!mp.nlri.empty()) msg.update.attrs.mp_reach = std::move(mp);
  }

  const Json& withdraw = update["withdraw"];
  if (withdraw["ipv4 unicast"].is_array()) {
    for (const Json& entry : withdraw["ipv4 unicast"].array()) {
      BGPS_ASSIGN_OR_RETURN(Prefix p,
                            Prefix::Parse(entry["nlri"].as_string()));
      msg.update.withdrawn.push_back(p);
    }
  }
  if (withdraw["ipv6 unicast"].is_array()) {
    bgp::MpUnreach mp;
    for (const Json& entry : withdraw["ipv6 unicast"].array()) {
      BGPS_ASSIGN_OR_RETURN(Prefix p,
                            Prefix::Parse(entry["nlri"].as_string()));
      mp.withdrawn.push_back(p);
    }
    if (!mp.withdrawn.empty()) msg.update.attrs.mp_unreach = std::move(mp);
  }
  return msg;
}

mrt::MrtMessage ToMrt(const ExaBgpMessage& msg) {
  mrt::MrtMessage out;
  out.timestamp = msg.time;
  if (msg.kind == ExaBgpMessage::Kind::State) {
    mrt::Bgp4mpStateChange sc;
    sc.peer_asn = msg.peer_asn;
    sc.local_asn = msg.local_asn;
    sc.peer_address = msg.peer_address;
    sc.local_address = msg.local_address;
    sc.old_state = msg.state == bgp::FsmState::Established
                       ? bgp::FsmState::OpenConfirm
                       : bgp::FsmState::Established;
    sc.new_state = msg.state;
    out.body = sc;
    return out;
  }
  mrt::Bgp4mpMessage m;
  m.peer_asn = msg.peer_asn;
  m.local_asn = msg.local_asn;
  m.peer_address = msg.peer_address;
  m.local_address = msg.local_address;
  m.message_type = bgp::MessageType::Update;
  m.update = msg.update;
  out.body = std::move(m);
  return out;
}

std::optional<ExaBgpMessage> FromMrt(const mrt::MrtMessage& msg) {
  ExaBgpMessage out;
  out.time = msg.timestamp;
  if (msg.is_message()) {
    const auto& m = std::get<mrt::Bgp4mpMessage>(msg.body);
    if (m.message_type != bgp::MessageType::Update) return std::nullopt;
    out.kind = ExaBgpMessage::Kind::Update;
    out.peer_address = m.peer_address;
    out.local_address = m.local_address;
    out.peer_asn = m.peer_asn;
    out.local_asn = m.local_asn;
    out.update = m.update;
    return out;
  }
  if (msg.is_state_change()) {
    const auto& sc = std::get<mrt::Bgp4mpStateChange>(msg.body);
    out.kind = ExaBgpMessage::Kind::State;
    out.peer_address = sc.peer_address;
    out.local_address = sc.local_address;
    out.peer_asn = sc.peer_asn;
    out.local_asn = sc.local_asn;
    out.state = sc.new_state == bgp::FsmState::Established
                    ? bgp::FsmState::Established
                    : bgp::FsmState::Idle;
    return out;
  }
  return std::nullopt;  // RIB / PEER_INDEX_TABLE
}

Bytes EncodeAsMrt(const ExaBgpMessage& msg) {
  if (msg.kind == ExaBgpMessage::Kind::State) {
    return mrt::EncodeBgp4mpStateChange(
        msg.time, std::get<mrt::Bgp4mpStateChange>(ToMrt(msg).body));
  }
  return mrt::EncodeBgp4mpUpdate(msg.time,
                                 std::get<mrt::Bgp4mpMessage>(ToMrt(msg).body));
}

Result<TranscodeStats> TranscodeExaBgpToMrt(const std::string& json_path,
                                            const std::string& mrt_path) {
  std::ifstream in(json_path);
  if (!in.is_open()) return IoError("cannot open " + json_path);
  mrt::MrtFileWriter writer;
  BGPS_RETURN_IF_ERROR(writer.Open(mrt_path));
  TranscodeStats stats;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto msg = DecodeLine(line);
    if (!msg.ok()) {
      ++stats.skipped;
      continue;
    }
    BGPS_RETURN_IF_ERROR(writer.Write(EncodeAsMrt(*msg)));
    ++stats.converted;
  }
  BGPS_RETURN_IF_ERROR(writer.Close());
  return stats;
}

}  // namespace bgps::exabgp
