// ExaBGP JSON data format (paper §7: "We plan to release new features in
// the near future, including support for more data formats (e.g., JSON
// exports from ExaBGP)").
//
// Implements the ExaBGP v4-style per-line JSON encoding of BGP updates
// and session state changes, a decoder into the same UpdateMessage /
// FsmState model the MRT path uses, and a transcoder to MRT so every
// downstream component (stream, BGPCorsaro, RT plugin) consumes ExaBGP
// feeds unchanged.
//
// Message shapes handled (one JSON object per line):
//   {"exabgp":"4.0.1","time":T,"type":"update","neighbor":{
//      "address":{"local":L,"peer":P},"asn":{"local":LA,"peer":PA},
//      "message":{"update":{
//        "attribute":{"origin":"igp","as-path":[..],"local-preference":N,
//                     "med":N,"community":[[a,b],..]},
//        "announce":{"ipv4 unicast":{"<next-hop>":[{"nlri":"p/len"},..]},
//                    "ipv6 unicast":{...}},
//        "withdraw":{"ipv4 unicast":[{"nlri":"p/len"},..]}}}}}
//   {"exabgp":"4.0.1","time":T,"type":"state","neighbor":{...,
//      "state":"up"|"down"}}
#pragma once

#include "exabgp/json.hpp"
#include "mrt/mrt.hpp"

namespace bgps::exabgp {

struct ExaBgpMessage {
  enum class Kind { Update, State };

  Kind kind = Kind::Update;
  Timestamp time = 0;
  IpAddress peer_address;
  IpAddress local_address;
  bgp::Asn peer_asn = 0;
  bgp::Asn local_asn = 0;
  // Update messages:
  bgp::UpdateMessage update;
  // State messages ("up" -> Established, "down" -> Idle):
  bgp::FsmState state = bgp::FsmState::Unknown;
};

// One JSON line per message.
std::string EncodeLine(const ExaBgpMessage& msg);
Result<ExaBgpMessage> DecodeLine(const std::string& line);

// Converts to the MRT record model (BGP4MP MESSAGE_AS4 / STATE_CHANGE_AS4)
// so ExaBGP feeds flow through the standard pipeline.
mrt::MrtMessage ToMrt(const ExaBgpMessage& msg);
Bytes EncodeAsMrt(const ExaBgpMessage& msg);

// The reverse bridge, for replaying archived MRT as a live exabgp feed:
// BGP4MP updates become "update" lines, state changes become "state"
// lines (Established -> "up", anything else -> "down"). RIB/PEER_INDEX
// records and non-UPDATE messages have no line equivalent and return
// nullopt. Lossy where the line format is; round-tripping the *produced
// lines* through DecodeLine + ToMrt is what the live-path conformance
// tests pin.
std::optional<ExaBgpMessage> FromMrt(const mrt::MrtMessage& msg);

// Transcodes a file of JSON lines into an MRT dump file. Returns the
// number of messages converted; malformed lines are counted and skipped
// (consistent with the tolerant-parse policy of §3.3.3).
struct TranscodeStats {
  size_t converted = 0;
  size_t skipped = 0;
};
Result<TranscodeStats> TranscodeExaBgpToMrt(const std::string& json_path,
                                            const std::string& mrt_path);

}  // namespace bgps::exabgp
