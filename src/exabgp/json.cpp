#include "exabgp/json.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace bgps::exabgp {
namespace {

const Json& NullJson() {
  static const Json null;
  return null;
}

// Containers deeper than this are rejected as Corrupt. The parser
// recurses once per nesting level, so without a cap a line of a few
// hundred KB of '[' characters overflows the stack — a crash a malformed
// (or hostile) exabgp feed must never be able to cause. Real exabgp
// output nests ~6 levels; 128 is orders of magnitude of headroom.
constexpr int kMaxJsonDepth = 128;

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<Json> Parse() {
    SkipWs();
    BGPS_ASSIGN_OR_RETURN(Json v, Value());
    SkipWs();
    if (pos_ != text_.size()) return CorruptError("trailing JSON content");
    return v;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() && std::isspace(uint8_t(text_[pos_]))) ++pos_;
  }
  bool Eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<Json> Value() {
    if (pos_ >= text_.size()) return CorruptError("unexpected end of JSON");
    char c = text_[pos_];
    if (c == '{' || c == '[') {
      if (depth_ >= kMaxJsonDepth)
        return CorruptError("JSON nesting deeper than " +
                            std::to_string(kMaxJsonDepth));
      ++depth_;
      Result<Json> v = c == '{' ? Object() : Array();
      --depth_;
      return v;
    }
    if (c == '"') {
      BGPS_ASSIGN_OR_RETURN(std::string s, String());
      return Json::MakeString(std::move(s));
    }
    if (c == 't' || c == 'f') return Bool();
    if (c == 'n') {
      if (text_.compare(pos_, 4, "null") == 0) {
        pos_ += 4;
        return Json();
      }
      return CorruptError("bad JSON literal");
    }
    return Number();
  }

  Result<Json> Object() {
    ++pos_;  // '{'
    Json obj = Json::MakeObject();
    SkipWs();
    if (Eat('}')) return obj;
    while (true) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"')
        return CorruptError("expected object key");
      BGPS_ASSIGN_OR_RETURN(std::string key, String());
      SkipWs();
      if (!Eat(':')) return CorruptError("expected ':'");
      SkipWs();
      BGPS_ASSIGN_OR_RETURN(Json value, Value());
      obj.Set(key, std::move(value));
      SkipWs();
      if (Eat(',')) continue;
      if (Eat('}')) return obj;
      return CorruptError("expected ',' or '}'");
    }
  }

  Result<Json> Array() {
    ++pos_;  // '['
    Json arr = Json::MakeArray();
    SkipWs();
    if (Eat(']')) return arr;
    while (true) {
      SkipWs();
      BGPS_ASSIGN_OR_RETURN(Json value, Value());
      arr.Append(std::move(value));
      SkipWs();
      if (Eat(',')) continue;
      if (Eat(']')) return arr;
      return CorruptError("expected ',' or ']'");
    }
  }

  Result<std::string> String() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          // BMP escapes only (enough for ExaBGP output: ASCII hostnames).
          if (pos_ + 4 > text_.size()) return CorruptError("bad \\u escape");
          unsigned code = 0;
          auto [p, ec] = std::from_chars(text_.data() + pos_,
                                         text_.data() + pos_ + 4, code, 16);
          if (ec != std::errc() || p != text_.data() + pos_ + 4)
            return CorruptError("bad \\u escape");
          pos_ += 4;
          if (code < 0x80) {
            out += char(code);
          } else if (code < 0x800) {
            out += char(0xC0 | (code >> 6));
            out += char(0x80 | (code & 0x3F));
          } else {
            out += char(0xE0 | (code >> 12));
            out += char(0x80 | ((code >> 6) & 0x3F));
            out += char(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return CorruptError("bad escape");
      }
    }
    return CorruptError("unterminated string");
  }

  Result<Json> Bool() {
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return Json::MakeBool(true);
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return Json::MakeBool(false);
    }
    return CorruptError("bad JSON literal");
  }

  Result<Json> Number() {
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
      ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(uint8_t(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '-' ||
            text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return CorruptError("bad number");
    double value = 0;
    std::string token = text_.substr(start, pos_ - start);
    try {
      value = std::stod(token);
    } catch (...) {
      return CorruptError("bad number: " + token);
    }
    return Json::MakeNumber(value);
  }

  const std::string& text_;
  size_t pos_ = 0;
  int depth_ = 0;  // current container nesting, capped at kMaxJsonDepth
};

void DumpString(const std::string& s, std::string& out) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (uint8_t(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

Json Json::MakeBool(bool b) {
  Json j;
  j.type_ = Type::Bool;
  j.bool_ = b;
  return j;
}
Json Json::MakeNumber(double n) {
  Json j;
  j.type_ = Type::Number;
  j.number_ = n;
  return j;
}
Json Json::MakeString(std::string s) {
  Json j;
  j.type_ = Type::String;
  j.string_ = std::move(s);
  return j;
}
Json Json::MakeArray() {
  Json j;
  j.type_ = Type::Array;
  return j;
}
Json Json::MakeObject() {
  Json j;
  j.type_ = Type::Object;
  return j;
}

const Json& Json::operator[](const std::string& key) const {
  auto it = object_.find(key);
  return it == object_.end() ? NullJson() : it->second;
}

Json& Json::Set(const std::string& key, Json value) {
  object_[key] = std::move(value);
  return *this;
}

bool Json::has(const std::string& key) const {
  return object_.count(key) != 0;
}

std::string Json::Dump() const {
  std::string out;
  switch (type_) {
    case Type::Null: out = "null"; break;
    case Type::Bool: out = bool_ ? "true" : "false"; break;
    case Type::Number: {
      char buf[32];
      // Integers render without a decimal point (ASNs, timestamps).
      if (number_ == double(int64_t(number_))) {
        std::snprintf(buf, sizeof(buf), "%lld", (long long)(number_));
      } else {
        std::snprintf(buf, sizeof(buf), "%.6f", number_);
      }
      out = buf;
      break;
    }
    case Type::String: DumpString(string_, out); break;
    case Type::Array: {
      out = "[";
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i) out += ',';
        out += array_[i].Dump();
      }
      out += ']';
      break;
    }
    case Type::Object: {
      out = "{";
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out += ',';
        first = false;
        DumpString(key, out);
        out += ':';
        out += value.Dump();
      }
      out += '}';
      break;
    }
  }
  return out;
}

Result<Json> Json::Parse(const std::string& text) {
  return Parser(text).Parse();
}

}  // namespace bgps::exabgp
