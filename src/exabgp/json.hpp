// Minimal JSON value model + parser/writer.
//
// Supports the subset ExaBGP's JSON encoder emits (objects, arrays,
// strings with escapes, numbers, booleans, null). No external
// dependencies; parse errors surface as Status like every other decoder
// in this codebase.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/result.hpp"

namespace bgps::exabgp {

class Json {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  Json() : type_(Type::Null) {}
  static Json MakeBool(bool b);
  static Json MakeNumber(double n);
  static Json MakeString(std::string s);
  static Json MakeArray();
  static Json MakeObject();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::Null; }
  bool is_object() const { return type_ == Type::Object; }
  bool is_array() const { return type_ == Type::Array; }
  bool is_string() const { return type_ == Type::String; }
  bool is_number() const { return type_ == Type::Number; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  int64_t as_int() const { return int64_t(number_); }
  const std::string& as_string() const { return string_; }

  // Object access; returns a shared null for missing keys so chained
  // lookups are safe: msg["neighbor"]["asn"]["peer"].
  const Json& operator[](const std::string& key) const;
  Json& Set(const std::string& key, Json value);
  bool has(const std::string& key) const;
  const std::map<std::string, Json>& object() const { return object_; }

  // Array access.
  const std::vector<Json>& array() const { return array_; }
  void Append(Json value) { array_.push_back(std::move(value)); }
  size_t size() const {
    return type_ == Type::Array ? array_.size() : object_.size();
  }

  // Compact serialization (stable key order: std::map).
  std::string Dump() const;

  static Result<Json> Parse(const std::string& text);

 private:
  Type type_;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<Json> array_;
  std::map<std::string, Json> object_;
};

}  // namespace bgps::exabgp
