#include "mq/consumers.hpp"

#include <algorithm>

namespace bgps::mq {

GlobalViewConsumer::GlobalViewConsumer(Cluster* cluster,
                                       std::vector<std::string> collectors,
                                       std::string ready_topic, GeoFn geo,
                                       Options options)
    : cluster_(cluster),
      geo_(std::move(geo)),
      options_(options),
      ready_(cluster, std::move(ready_topic)) {
  rt_consumers_.reserve(collectors.size());
  for (const auto& c : collectors)
    rt_consumers_.emplace_back(cluster, RtTopic(c));
  pending_.resize(rt_consumers_.size());
}

void GlobalViewConsumer::Apply(const Message& msg) {
  auto kind = PeekKind(msg.value);
  if (!kind.ok()) return;
  if (*kind == RtMessageKind::Snapshot) {
    auto snap = DecodeSnapshotMessage(msg.value);
    if (!snap.ok()) return;
    view_[snap->vp] = std::move(snap->table);
    return;
  }
  auto diff = DecodeDiffMessage(msg.value);
  if (!diff.ok()) return;
  for (const auto& cell : diff->diffs) {
    auto& table = view_[cell.vp];
    if (cell.cell.announced) {
      table[cell.prefix] = cell.cell;
    } else {
      table.erase(cell.prefix);
    }
  }
}

void GlobalViewConsumer::DetectChange(Timestamp bin, const std::string& key,
                                      size_t value) {
  auto& h = history_[key];
  if (h.size() >= 3) {  // need some baseline before alarming
    size_t window = std::min(h.size(), options_.median_window);
    std::vector<size_t> recent(h.end() - long(window), h.end());
    std::nth_element(recent.begin(), recent.begin() + long(window / 2),
                     recent.end());
    double median = double(recent[window / 2]);
    if (median > 0 && double(value) < options_.drop_fraction * median) {
      alarms_.push_back(OutageAlarm{bin, key, value, median});
    }
  }
  h.push_back(value);
  if (h.size() > 4 * options_.median_window) h.erase(h.begin());
}

void GlobalViewConsumer::ProcessBin(Timestamp bin_start) {
  // Full-feed inference (Fig. 5a definition).
  size_t max_table = 0;
  for (const auto& [vp, table] : view_)
    max_table = std::max(max_table, table.size());
  if (max_table == 0) return;
  std::vector<const std::map<Prefix, corsaro::RtCell>*> full_feeds;
  for (const auto& [vp, table] : view_) {
    if (double(table.size()) >=
        (1.0 - options_.full_feed_tolerance) * double(max_table))
      full_feeds.push_back(&table);
  }
  if (full_feeds.empty()) return;

  // Per-prefix visibility and origin across full-feed VPs.
  std::map<Prefix, size_t> seen_by;
  std::map<Prefix, bgp::Asn> origin_of;
  for (const auto* table : full_feeds) {
    for (const auto& [prefix, cell] : *table) {
      ++seen_by[prefix];
      if (auto o = cell.as_path.origin_asn()) origin_of[prefix] = *o;
    }
  }
  const size_t quorum = std::max<size_t>(
      1, size_t(options_.visibility_quorum * double(full_feeds.size())));

  std::map<std::string, size_t> per_country;
  std::map<bgp::Asn, size_t> per_as;
  for (const auto& [prefix, count] : seen_by) {
    if (count < quorum) continue;
    auto it = origin_of.find(prefix);
    if (it == origin_of.end()) continue;
    ++per_as[it->second];
    if (geo_) ++per_country[geo_(it->second)];
  }

  // Keys seen in past bins but absent now dropped to zero — an outage must
  // produce an explicit zero point, not a hole in the series.
  for (const auto& [key, _] : history_) {
    bool is_as = key.rfind("AS", 0) == 0;
    if (is_as) {
      bgp::Asn asn = bgp::Asn(std::stoul(key.substr(2)));
      per_as.emplace(asn, 0);
    } else {
      per_country.emplace(key, 0);
    }
  }

  for (const auto& [country, n] : per_country) {
    country_rows_.push_back(VisibilityRow{bin_start, country, n});
    DetectChange(bin_start, country, n);
  }
  for (const auto& [asn, n] : per_as) {
    std::string key = "AS" + std::to_string(asn);
    as_rows_.push_back(VisibilityRow{bin_start, key, n});
    DetectChange(bin_start, key, n);
  }
}

size_t GlobalViewConsumer::Poll() {
  size_t processed = 0;
  // RT topics are unbounded (no retention), so the polls cannot fail.
  for (const auto& marker_msg : ready_.Poll().value_or({})) {
    auto marker = DecodeReadyMarker(marker_msg->value);
    if (!marker.ok()) continue;
    // Advance the view exactly to the ready bin: per-topic order is bin
    // order, so apply messages stamped at or before the bin and keep the
    // rest for later markers.
    for (size_t i = 0; i < rt_consumers_.size(); ++i) {
      for (auto& msg : rt_consumers_[i].Poll().value_or({}))
        pending_[i].push_back(std::move(msg));
      while (!pending_[i].empty() &&
             pending_[i].front()->timestamp <= marker->bin_start) {
        Apply(*pending_[i].front());
        pending_[i].pop_front();
      }
    }
    ProcessBin(marker->bin_start);
    ++processed;
  }
  return processed;
}

const std::map<Prefix, corsaro::RtCell>* GlobalViewConsumer::vp_table(
    const corsaro::VpKey& vp) const {
  auto it = view_.find(vp);
  return it == view_.end() ? nullptr : &it->second;
}

}  // namespace bgps::mq
