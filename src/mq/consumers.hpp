// Consumers (paper §6.2.4): near-realtime per-country and per-AS outage
// detection over the reconstructed global view.
//
// A GlobalViewConsumer applies snapshots/diffs from the per-collector RT
// topics, waits for its sync server's ready markers, and per ready bin
// computes the number of prefixes visible per country and per origin AS
// (only prefixes observed by full-feed VPs are counted, with full-feed
// inferred as in Fig. 5a: within 20 percentage points of the largest
// table). A change-point detector raises outage alarms on sharp drops —
// the Fig. 10 Iraq timeline is exactly this consumer's output.
#pragma once

#include <deque>
#include <functional>

#include "mq/sync.hpp"

namespace bgps::mq {

// Maps an origin ASN to a country code (the sim's geolocation stand-in).
using GeoFn = std::function<std::string(bgp::Asn)>;

struct VisibilityRow {
  Timestamp bin_start = 0;
  std::string key;     // country code or "AS<asn>"
  size_t visible_prefixes = 0;
};

struct OutageAlarm {
  Timestamp bin_start = 0;
  std::string key;
  size_t value = 0;
  double baseline = 0;  // median of the trailing window
};

struct GlobalViewOptions {
  // A prefix counts as visible when at least this fraction of full-feed
  // VPs currently announce it.
  double visibility_quorum = 0.5;
  // Full-feed inference: table size >= (1 - 0.20) * max table size.
  double full_feed_tolerance = 0.20;
  // Change-point: alarm when value < drop_fraction * trailing median.
  double drop_fraction = 0.5;
  size_t median_window = 12;  // bins
};

class GlobalViewConsumer {
 public:
  using Options = GlobalViewOptions;

  GlobalViewConsumer(Cluster* cluster, std::vector<std::string> collectors,
                     std::string ready_topic, GeoFn geo, Options options = {});

  // Drains ready markers and processes each ready bin. Returns the number
  // of bins processed.
  size_t Poll();

  const std::vector<VisibilityRow>& country_rows() const {
    return country_rows_;
  }
  const std::vector<VisibilityRow>& as_rows() const { return as_rows_; }
  const std::vector<OutageAlarm>& alarms() const { return alarms_; }

  // Current reconstructed table of one VP (for tests).
  const std::map<Prefix, corsaro::RtCell>* vp_table(
      const corsaro::VpKey& vp) const;

 private:
  void Apply(const Message& msg);
  void ProcessBin(Timestamp bin_start);
  void DetectChange(Timestamp bin, const std::string& key, size_t value);

  Cluster* cluster_;
  GeoFn geo_;
  Options options_;
  std::vector<Consumer> rt_consumers_;
  // Fetched but not-yet-applied messages per collector topic: the view is
  // advanced only up to the bin being processed, so a consumer lagging
  // behind the producers still computes each bin's true snapshot.
  std::vector<std::deque<MessagePtr>> pending_;
  Consumer ready_;
  std::map<corsaro::VpKey, std::map<Prefix, corsaro::RtCell>> view_;
  std::vector<VisibilityRow> country_rows_;
  std::vector<VisibilityRow> as_rows_;
  std::vector<OutageAlarm> alarms_;
  std::map<std::string, std::vector<size_t>> history_;
};

}  // namespace bgps::mq
