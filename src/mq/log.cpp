#include "mq/log.hpp"

namespace bgps::mq {

Cluster::Topic& Cluster::GetOrCreate(const std::string& topic,
                                     size_t partitions) {
  auto it = topics_.find(topic);
  if (it == topics_.end()) {
    Topic t;
    t.parts.resize(partitions == 0 ? 1 : partitions);
    it = topics_.emplace(topic, std::move(t)).first;
  }
  return it->second;
}

void Cluster::CreateTopic(const std::string& topic, size_t partitions) {
  std::lock_guard lock(mu_);
  GetOrCreate(topic, partitions);
}

uint64_t Cluster::Publish(const std::string& topic, size_t partition,
                          Message message) {
  std::lock_guard lock(mu_);
  Topic& t = GetOrCreate(topic, 1);
  Partition& p = t.parts.at(partition);
  message.offset = p.log.size();
  p.log.push_back(std::move(message));
  return p.log.back().offset;
}

std::vector<Message> Cluster::Fetch(const std::string& topic, size_t partition,
                                    uint64_t from_offset, size_t max) const {
  std::lock_guard lock(mu_);
  std::vector<Message> out;
  auto it = topics_.find(topic);
  if (it == topics_.end()) return out;
  if (partition >= it->second.parts.size()) return out;
  const auto& log = it->second.parts[partition].log;
  for (uint64_t i = from_offset; i < log.size(); ++i) {
    out.push_back(log[size_t(i)]);
    if (max != 0 && out.size() >= max) break;
  }
  return out;
}

uint64_t Cluster::EndOffset(const std::string& topic, size_t partition) const {
  std::lock_guard lock(mu_);
  auto it = topics_.find(topic);
  if (it == topics_.end()) return 0;
  if (partition >= it->second.parts.size()) return 0;
  return it->second.parts[partition].log.size();
}

size_t Cluster::partitions(const std::string& topic) const {
  std::lock_guard lock(mu_);
  auto it = topics_.find(topic);
  return it == topics_.end() ? 0 : it->second.parts.size();
}

std::vector<std::string> Cluster::topics() const {
  std::lock_guard lock(mu_);
  std::vector<std::string> out;
  for (const auto& [name, _] : topics_) out.push_back(name);
  return out;
}

std::vector<Message> Consumer::Poll(size_t max) {
  auto msgs = cluster_->Fetch(topic_, partition_, offset_, max);
  if (!msgs.empty()) offset_ = msgs.back().offset + 1;
  return msgs;
}

}  // namespace bgps::mq
