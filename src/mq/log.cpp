#include "mq/log.hpp"

#include <algorithm>
#include <limits>

namespace bgps::mq {
namespace {

void RunEvictionHooks(std::vector<MessagePtr>& evicted) {
  for (const auto& m : evicted) {
    if (m->on_evict) m->on_evict();
  }
  evicted.clear();
}

}  // namespace

uint64_t Cluster::Partition::MinPinLocked() const {
  uint64_t min_pin = std::numeric_limits<uint64_t>::max();
  for (const auto& p : pins) min_pin = std::min(min_pin, p.offset);
  return min_pin;
}

void Cluster::Partition::EnforceRetentionLocked(
    std::vector<MessagePtr>& evicted) {
  if (retention.max_messages == 0 && retention.max_bytes == 0) return;
  const uint64_t min_pin = MinPinLocked();
  while (log.size() > 1 && first_offset < min_pin &&
         ((retention.max_messages != 0 && log.size() > retention.max_messages) ||
          (retention.max_bytes != 0 && bytes > retention.max_bytes))) {
    bytes -= log.front()->value.size();
    evicted.push_back(std::move(log.front()));
    log.pop_front();
    ++first_offset;
  }
}

Cluster::Topic& Cluster::GetOrCreateLocked(const std::string& topic,
                                           size_t partitions,
                                           RetentionOptions retention) {
  auto it = topics_.find(topic);
  if (it == topics_.end()) {
    Topic t;
    size_t n = partitions == 0 ? 1 : partitions;
    t.parts.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      t.parts.push_back(std::make_unique<Partition>());
      t.parts.back()->retention = retention;
    }
    it = topics_.emplace(topic, std::move(t)).first;
  }
  return it->second;
}

Cluster::Partition* Cluster::Find(const std::string& topic,
                                  size_t partition) const {
  std::lock_guard lock(mu_);
  auto it = topics_.find(topic);
  if (it == topics_.end()) return nullptr;
  if (partition >= it->second.parts.size()) return nullptr;
  return it->second.parts[partition].get();
}

Cluster::~Cluster() {
  // No consumers may be live at this point; fire the eviction hooks of
  // everything still retained so publisher-side leases balance to zero.
  std::vector<MessagePtr> evicted;
  for (auto& [name, topic] : topics_) {
    for (auto& part : topic.parts) {
      for (auto& m : part->log) evicted.push_back(std::move(m));
      part->log.clear();
    }
  }
  RunEvictionHooks(evicted);
}

void Cluster::CreateTopic(const std::string& topic, size_t partitions) {
  CreateTopic(topic, partitions, default_retention_);
}

void Cluster::CreateTopic(const std::string& topic, size_t partitions,
                          RetentionOptions retention) {
  std::lock_guard lock(mu_);
  GetOrCreateLocked(topic, partitions, retention);
}

uint64_t Cluster::Publish(const std::string& topic, size_t partition,
                          Message message) {
  Partition* p;
  {
    std::lock_guard lock(mu_);
    Topic& t = GetOrCreateLocked(topic, 1, default_retention_);
    p = t.parts.at(partition).get();
  }
  std::vector<MessagePtr> evicted;
  uint64_t offset;
  {
    std::lock_guard lock(p->mu);
    offset = p->next_offset++;
    message.offset = offset;
    p->bytes += message.value.size();
    p->log.push_back(std::make_shared<const Message>(std::move(message)));
    p->EnforceRetentionLocked(evicted);
  }
  RunEvictionHooks(evicted);
  return offset;
}

Result<std::vector<MessagePtr>> Cluster::Fetch(const std::string& topic,
                                               size_t partition,
                                               uint64_t from_offset,
                                               size_t max,
                                               size_t max_bytes) const {
  std::vector<MessagePtr> out;
  Partition* p = Find(topic, partition);
  if (p == nullptr) return out;
  std::lock_guard lock(p->mu);
  if (from_offset < p->first_offset) {
    return TruncatedError("offset " + std::to_string(from_offset) +
                          " below retention low-watermark " +
                          std::to_string(p->first_offset) + " of " + topic +
                          "/" + std::to_string(partition));
  }
  size_t budget = 0;
  for (uint64_t off = from_offset; off < p->next_offset; ++off) {
    const MessagePtr& m = p->log[size_t(off - p->first_offset)];
    if (max_bytes != 0 && !out.empty() &&
        budget + m->value.size() > max_bytes) {
      break;
    }
    budget += m->value.size();
    out.push_back(m);  // shared handle — no payload copy
    if (max != 0 && out.size() >= max) break;
  }
  return out;
}

uint64_t Cluster::EndOffset(const std::string& topic, size_t partition) const {
  Partition* p = Find(topic, partition);
  if (p == nullptr) return 0;
  std::lock_guard lock(p->mu);
  return p->next_offset;
}

uint64_t Cluster::FirstOffset(const std::string& topic,
                              size_t partition) const {
  Partition* p = Find(topic, partition);
  if (p == nullptr) return 0;
  std::lock_guard lock(p->mu);
  return p->first_offset;
}

size_t Cluster::RetainedBytes(const std::string& topic,
                              size_t partition) const {
  Partition* p = Find(topic, partition);
  if (p == nullptr) return 0;
  std::lock_guard lock(p->mu);
  return p->bytes;
}

size_t Cluster::partitions(const std::string& topic) const {
  std::lock_guard lock(mu_);
  auto it = topics_.find(topic);
  return it == topics_.end() ? 0 : it->second.parts.size();
}

std::vector<std::string> Cluster::topics() const {
  std::lock_guard lock(mu_);
  std::vector<std::string> out;
  for (const auto& [name, _] : topics_) out.push_back(name);
  return out;
}

Cluster::Pin Cluster::CreatePin(const std::string& topic, size_t partition,
                                uint64_t offset) {
  Partition* p;
  {
    std::lock_guard lock(mu_);
    Topic& t = GetOrCreateLocked(topic, partition + 1, default_retention_);
    p = t.parts.at(partition).get();
  }
  std::lock_guard lock(p->mu);
  uint64_t id = p->next_pin_id++;
  p->pins.push_back({id, std::max(offset, p->first_offset)});
  return Pin(p, id);
}

Cluster::Pin& Cluster::Pin::operator=(Pin&& o) noexcept {
  if (this != &o) {
    Release();
    part_ = o.part_;
    id_ = o.id_;
    o.part_ = nullptr;
    o.id_ = 0;
  }
  return *this;
}

void Cluster::Pin::Advance(uint64_t offset) {
  if (part_ == nullptr) return;
  std::vector<MessagePtr> evicted;
  {
    std::lock_guard lock(part_->mu);
    for (auto& p : part_->pins) {
      if (p.id == id_) {
        p.offset = std::max(p.offset, offset);
        break;
      }
    }
    part_->EnforceRetentionLocked(evicted);
  }
  RunEvictionHooks(evicted);
}

void Cluster::Pin::Release() {
  if (part_ == nullptr) return;
  std::vector<MessagePtr> evicted;
  {
    std::lock_guard lock(part_->mu);
    auto& pins = part_->pins;
    pins.erase(std::remove_if(pins.begin(), pins.end(),
                              [this](const PinEntry& p) { return p.id == id_; }),
               pins.end());
    part_->EnforceRetentionLocked(evicted);
  }
  RunEvictionHooks(evicted);
  part_ = nullptr;
  id_ = 0;
}

Result<std::vector<MessagePtr>> Consumer::Poll(size_t max, size_t max_bytes) {
  auto msgs = cluster_->Fetch(topic_, partition_, offset_, max, max_bytes);
  if (msgs.ok() && !msgs->empty()) offset_ = msgs->back()->offset + 1;
  return msgs;
}

}  // namespace bgps::mq
