// In-process Kafka stand-in (paper §6.2): named topics of partitioned,
// offset-addressed, append-only message logs.
//
// Preserves the properties the architecture relies on: per-partition
// ordering, offset-based consumption (many independent consumers), and
// thread safety (producers and consumers may run on different threads).
// Durability/replication are out of scope — the cluster lives in memory.
//
// Record-plane fan-out additions (the mq layer is the shared transport
// between one decoding publisher and N cheap subscribers):
//  * Per-partition locking. The cluster-wide mutex only guards topic
//    creation/lookup; appends and fetches on different partitions never
//    contend, and a slow fetch never stalls an unrelated publish.
//  * Zero-copy hand-off. The log stores shared immutable messages and
//    Fetch/Poll return `MessagePtr` handles — a fetch copies shared_ptrs
//    under the partition lock, never the payload bytes, so fanning one
//    batch out to N consumers costs N refcounts, not N byte copies.
//  * Bounded retention. A topic may cap its per-partition log by message
//    count and/or payload bytes (high-watermarks); exceeding either
//    truncates from the front and advances the `first_offset`
//    low-watermark. A Fetch from below the low-watermark reports an
//    explicit Truncated status instead of silently returning nothing.
//  * Retention pins. A consumer that must be able to replay (a fan-out
//    subscriber) pins its cursor: truncation never advances past the
//    smallest pinned offset, so a pinned-but-slow consumer converts
//    retention pressure into publisher backpressure (via the eviction
//    hook + MemoryGovernor wiring in pool/record_fanout) instead of
//    data loss.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/result.hpp"
#include "util/time.hpp"

namespace bgps::mq {

struct Message {
  std::string key;
  Bytes value;
  Timestamp timestamp = 0;
  uint64_t offset = 0;  // assigned by the partition on append
  // Invoked exactly once when the message leaves retention (truncation
  // or cluster destruction), with no cluster/partition lock held. The
  // record-plane publisher uses this to return its MemoryGovernor lease
  // for the batch; most producers leave it empty.
  std::function<void()> on_evict;
};

// Shared immutable handle to an appended message. The log and every
// consumer share one copy of the payload bytes.
using MessagePtr = std::shared_ptr<const Message>;

// Per-partition retention high-watermarks. 0 = unbounded (the default:
// RT-plugin topics and the existing consumers keep full history).
// Truncation always keeps at least the newest message and never passes
// a retention pin.
struct RetentionOptions {
  size_t max_messages = 0;
  size_t max_bytes = 0;  // sum of Message::value sizes
};

class Cluster {
 public:
  Cluster() = default;
  // Default retention applied to topics auto-created by Publish and to
  // CreateTopic calls without an explicit override.
  explicit Cluster(RetentionOptions default_retention)
      : default_retention_(default_retention) {}
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;
  // Fires every retained message's eviction hook.
  ~Cluster();

  // Creates the topic if needed. Partition counts and retention are
  // fixed at first use.
  void CreateTopic(const std::string& topic, size_t partitions = 1);
  void CreateTopic(const std::string& topic, size_t partitions,
                   RetentionOptions retention);

  // Appends and returns the assigned offset. Auto-creates 1-partition
  // topics (like Kafka's auto.create.topics). May truncate the front of
  // the partition to enforce its retention watermarks.
  uint64_t Publish(const std::string& topic, size_t partition,
                   Message message);

  // Messages with offset >= `from_offset`, up to `max` messages and
  // `max_bytes` payload bytes (0 = unbounded; at least one message is
  // returned when any is available, so a byte budget smaller than one
  // message still makes progress). Shared handles — the payload is
  // never copied. A missing topic/partition or a `from_offset` at or
  // past the end yields an empty vector; a `from_offset` below the
  // truncation low-watermark yields StatusCode::Truncated.
  Result<std::vector<MessagePtr>> Fetch(const std::string& topic,
                                        size_t partition,
                                        uint64_t from_offset, size_t max = 0,
                                        size_t max_bytes = 0) const;

  // Next offset to be assigned (== number of messages ever appended).
  uint64_t EndOffset(const std::string& topic, size_t partition) const;

  // Truncation low-watermark: smallest offset still retained (==
  // EndOffset when the partition is empty). 0 for unknown topics.
  uint64_t FirstOffset(const std::string& topic, size_t partition) const;

  // Payload bytes currently retained in the partition (stats/tests).
  size_t RetainedBytes(const std::string& topic, size_t partition) const;

  size_t partitions(const std::string& topic) const;
  std::vector<std::string> topics() const;

 private:
  struct Partition;

 public:
  // Retention pin handle: while live, truncation of its partition never
  // advances past the pinned offset. Movable, auto-releasing; must not
  // outlive the Cluster. Advancing (monotonic) may trigger the
  // truncation the pin was holding back.
  class Pin {
   public:
    Pin() = default;
    Pin(Pin&& o) noexcept { *this = std::move(o); }
    Pin& operator=(Pin&& o) noexcept;
    ~Pin() { Release(); }

    void Advance(uint64_t offset);
    void Release();
    explicit operator bool() const { return part_ != nullptr; }

   private:
    friend class Cluster;
    Pin(Partition* part, uint64_t id) : part_(part), id_(id) {}
    Partition* part_ = nullptr;
    uint64_t id_ = 0;
  };

  // Pins `offset` (clamped up to the current low-watermark) in the
  // topic's partition, creating the topic if needed.
  Pin CreatePin(const std::string& topic, size_t partition, uint64_t offset);

 private:
  struct PinEntry {
    uint64_t id = 0;
    uint64_t offset = 0;
  };

  struct Partition {
    mutable std::mutex mu;
    std::deque<MessagePtr> log;  // dense offsets [first_offset, next)
    uint64_t first_offset = 0;    // truncation low-watermark
    uint64_t next_offset = 0;     // end offset
    size_t bytes = 0;             // retained payload bytes
    RetentionOptions retention;
    std::vector<PinEntry> pins;
    uint64_t next_pin_id = 1;

    // Pops front messages until the watermarks hold (respecting pins,
    // always keeping the newest message); the evicted messages are
    // moved into `evicted` so their hooks run with `mu` released.
    void EnforceRetentionLocked(std::vector<MessagePtr>& evicted);
    uint64_t MinPinLocked() const;
  };
  struct Topic {
    // unique_ptr: Partition holds a mutex and must stay address-stable
    // so callers can operate on it after releasing the cluster mutex.
    std::vector<std::unique_ptr<Partition>> parts;
  };

  Topic& GetOrCreateLocked(const std::string& topic, size_t partitions,
                           RetentionOptions retention);
  // nullptr when the topic/partition does not exist.
  Partition* Find(const std::string& topic, size_t partition) const;

  // Guards the topic map only; per-partition state is under Partition::mu.
  mutable std::mutex mu_;
  std::map<std::string, Topic> topics_;
  RetentionOptions default_retention_;
};

// Offset-tracking consumer handle for one (topic, partition).
class Consumer {
 public:
  Consumer(const Cluster* cluster, std::string topic, size_t partition = 0)
      : cluster_(cluster), topic_(std::move(topic)), partition_(partition) {}

  // Fetches messages new since the last Poll, bounded by `max` messages
  // and `max_bytes` payload bytes (0 = unbounded). On success the
  // cursor advances past the returned messages. When the cursor fell
  // below the partition's truncation low-watermark the Truncated error
  // is returned and the cursor does not move — the caller decides
  // between failing and SeekToFirst().
  Result<std::vector<MessagePtr>> Poll(size_t max = 0, size_t max_bytes = 0);

  uint64_t position() const { return offset_; }
  void Seek(uint64_t offset) { offset_ = offset; }
  // Repositions at the retention low-watermark (accepting the gap).
  void SeekToFirst() { offset_ = cluster_->FirstOffset(topic_, partition_); }

  const std::string& topic() const { return topic_; }
  size_t partition() const { return partition_; }

 private:
  const Cluster* cluster_;
  std::string topic_;
  size_t partition_;
  uint64_t offset_ = 0;
};

}  // namespace bgps::mq
