// In-process Kafka stand-in (paper §6.2): named topics of partitioned,
// offset-addressed, append-only message logs.
//
// Preserves the properties the architecture relies on: per-partition
// ordering, offset-based consumption (many independent consumers), and
// thread safety (BGPCorsaro producers and consumers may run on different
// threads). Durability/replication are out of scope — the cluster lives
// in memory.
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/time.hpp"

namespace bgps::mq {

struct Message {
  std::string key;
  Bytes value;
  Timestamp timestamp = 0;
  uint64_t offset = 0;  // assigned by the partition on append
};

class Cluster {
 public:
  Cluster() = default;
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // Creates the topic if needed. Partition counts are fixed at first use.
  void CreateTopic(const std::string& topic, size_t partitions = 1);

  // Appends and returns the assigned offset. Auto-creates 1-partition
  // topics (like Kafka's auto.create.topics).
  uint64_t Publish(const std::string& topic, size_t partition,
                   Message message);

  // Messages with offset >= `from_offset`, up to `max` (0 = all).
  std::vector<Message> Fetch(const std::string& topic, size_t partition,
                             uint64_t from_offset, size_t max = 0) const;

  // Next offset to be assigned (== number of messages appended).
  uint64_t EndOffset(const std::string& topic, size_t partition) const;

  size_t partitions(const std::string& topic) const;
  std::vector<std::string> topics() const;

 private:
  struct Partition {
    std::vector<Message> log;
  };
  struct Topic {
    std::vector<Partition> parts;
  };

  Topic& GetOrCreate(const std::string& topic, size_t partitions);

  mutable std::mutex mu_;
  std::map<std::string, Topic> topics_;
};

// Offset-tracking consumer handle for one (topic, partition).
class Consumer {
 public:
  Consumer(const Cluster* cluster, std::string topic, size_t partition = 0)
      : cluster_(cluster), topic_(std::move(topic)), partition_(partition) {}

  // Fetches everything new since the last Poll.
  std::vector<Message> Poll(size_t max = 0);

  uint64_t position() const { return offset_; }
  void Seek(uint64_t offset) { offset_ = offset; }

 private:
  const Cluster* cluster_;
  std::string topic_;
  size_t partition_;
  uint64_t offset_ = 0;
};

}  // namespace bgps::mq
