#include "mq/serialize.hpp"

#include "bgp/attrs.hpp"

namespace bgps::mq {
namespace {

void WriteString(BufWriter& w, const std::string& s) {
  w.u16(uint16_t(s.size()));
  w.str(s);
}

Result<std::string> ReadString(BufReader& r) {
  BGPS_ASSIGN_OR_RETURN(uint16_t len, r.u16());
  return r.str(len);
}

void WritePrefix(BufWriter& w, const Prefix& p) {
  w.u8(p.family() == IpFamily::V4 ? 4 : 6);
  bgp::EncodeNlriPrefix(w, p);
}

Result<Prefix> ReadPrefix(BufReader& r) {
  BGPS_ASSIGN_OR_RETURN(uint8_t fam, r.u8());
  if (fam != 4 && fam != 6) return CorruptError("bad prefix family");
  return bgp::DecodeNlriPrefix(r, fam == 4 ? IpFamily::V4 : IpFamily::V6);
}

void WriteCell(BufWriter& w, const corsaro::RtCell& cell) {
  w.u8(cell.announced ? 1 : 0);
  w.u64(uint64_t(cell.last_modified));
  // AS path as a flat hop list (the sim never emits sets in RT context,
  // but sets survive via the bgpdump text form).
  WriteString(w, cell.as_path.ToString());
  w.u16(uint16_t(cell.communities.size()));
  for (auto c : cell.communities) w.u32(c.raw());
}

Result<corsaro::RtCell> ReadCell(BufReader& r) {
  corsaro::RtCell cell;
  BGPS_ASSIGN_OR_RETURN(uint8_t announced, r.u8());
  cell.announced = announced != 0;
  BGPS_ASSIGN_OR_RETURN(uint64_t ts, r.u64());
  cell.last_modified = Timestamp(ts);
  BGPS_ASSIGN_OR_RETURN(std::string path, ReadString(r));
  BGPS_ASSIGN_OR_RETURN(cell.as_path, bgp::AsPath::Parse(path));
  BGPS_ASSIGN_OR_RETURN(uint16_t ncomm, r.u16());
  for (int i = 0; i < ncomm; ++i) {
    BGPS_ASSIGN_OR_RETURN(uint32_t raw, r.u32());
    cell.communities.push_back(bgp::Community(raw));
  }
  return cell;
}

}  // namespace

std::string RtTopic(const std::string& collector) { return "rt." + collector; }

Bytes EncodeDiffMessage(const RtDiffMessage& msg) {
  BufWriter w;
  w.u8(uint8_t(RtMessageKind::Diff));
  WriteString(w, msg.collector);
  w.u64(uint64_t(msg.bin_start));
  w.u32(uint32_t(msg.diffs.size()));
  for (const auto& d : msg.diffs) {
    WriteString(w, d.vp.collector);
    w.u32(d.vp.peer);
    WritePrefix(w, d.prefix);
    WriteCell(w, d.cell);
  }
  return w.take();
}

Result<RtDiffMessage> DecodeDiffMessage(const Bytes& data) {
  BufReader r(data);
  BGPS_ASSIGN_OR_RETURN(uint8_t kind, r.u8());
  if (kind != uint8_t(RtMessageKind::Diff))
    return CorruptError("not a diff message");
  RtDiffMessage msg;
  BGPS_ASSIGN_OR_RETURN(msg.collector, ReadString(r));
  BGPS_ASSIGN_OR_RETURN(uint64_t ts, r.u64());
  msg.bin_start = Timestamp(ts);
  BGPS_ASSIGN_OR_RETURN(uint32_t n, r.u32());
  msg.diffs.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    corsaro::DiffCell d;
    BGPS_ASSIGN_OR_RETURN(d.vp.collector, ReadString(r));
    BGPS_ASSIGN_OR_RETURN(d.vp.peer, r.u32());
    BGPS_ASSIGN_OR_RETURN(d.prefix, ReadPrefix(r));
    BGPS_ASSIGN_OR_RETURN(d.cell, ReadCell(r));
    msg.diffs.push_back(std::move(d));
  }
  return msg;
}

Bytes EncodeSnapshotMessage(const RtSnapshotMessage& msg) {
  BufWriter w;
  w.u8(uint8_t(RtMessageKind::Snapshot));
  WriteString(w, msg.collector);
  w.u64(uint64_t(msg.bin_start));
  WriteString(w, msg.vp.collector);
  w.u32(msg.vp.peer);
  w.u32(uint32_t(msg.table.size()));
  for (const auto& [prefix, cell] : msg.table) {
    WritePrefix(w, prefix);
    WriteCell(w, cell);
  }
  return w.take();
}

Result<RtSnapshotMessage> DecodeSnapshotMessage(const Bytes& data) {
  BufReader r(data);
  BGPS_ASSIGN_OR_RETURN(uint8_t kind, r.u8());
  if (kind != uint8_t(RtMessageKind::Snapshot))
    return CorruptError("not a snapshot message");
  RtSnapshotMessage msg;
  BGPS_ASSIGN_OR_RETURN(msg.collector, ReadString(r));
  BGPS_ASSIGN_OR_RETURN(uint64_t ts, r.u64());
  msg.bin_start = Timestamp(ts);
  BGPS_ASSIGN_OR_RETURN(msg.vp.collector, ReadString(r));
  BGPS_ASSIGN_OR_RETURN(msg.vp.peer, r.u32());
  BGPS_ASSIGN_OR_RETURN(uint32_t n, r.u32());
  for (uint32_t i = 0; i < n; ++i) {
    BGPS_ASSIGN_OR_RETURN(Prefix p, ReadPrefix(r));
    BGPS_ASSIGN_OR_RETURN(corsaro::RtCell cell, ReadCell(r));
    msg.table.emplace(p, std::move(cell));
  }
  return msg;
}

Bytes EncodeMetaMessage(const RtMetaMessage& msg) {
  BufWriter w;
  WriteString(w, msg.collector);
  w.u64(uint64_t(msg.bin_start));
  w.u32(uint32_t(msg.diff_cells));
  return w.take();
}

Result<RtMetaMessage> DecodeMetaMessage(const Bytes& data) {
  BufReader r(data);
  RtMetaMessage msg;
  BGPS_ASSIGN_OR_RETURN(msg.collector, ReadString(r));
  BGPS_ASSIGN_OR_RETURN(uint64_t ts, r.u64());
  msg.bin_start = Timestamp(ts);
  BGPS_ASSIGN_OR_RETURN(uint32_t n, r.u32());
  msg.diff_cells = n;
  return msg;
}

Result<RtMessageKind> PeekKind(const Bytes& data) {
  if (data.empty()) return CorruptError("empty message");
  uint8_t k = data[0];
  if (k != 1 && k != 2) return CorruptError("bad message kind");
  return RtMessageKind(k);
}

void PublishRtToCluster(corsaro::RoutingTables& rt, Cluster& cluster,
                        const std::string& collector) {
  rt.set_diff_callback([&cluster, collector](
                           Timestamp bin_start,
                           const std::vector<corsaro::DiffCell>& diffs) {
    RtDiffMessage msg;
    msg.collector = collector;
    msg.bin_start = bin_start;
    msg.diffs = diffs;
    Message m;
    m.key = collector;
    m.timestamp = bin_start;
    m.value = EncodeDiffMessage(msg);
    cluster.Publish(RtTopic(collector), 0, std::move(m));

    RtMetaMessage meta{collector, bin_start, diffs.size()};
    Message mm;
    mm.key = collector;
    mm.timestamp = bin_start;
    mm.value = EncodeMetaMessage(meta);
    cluster.Publish(kRtMetaTopic, 0, std::move(mm));
  });
  rt.set_snapshot_callback(
      [&cluster, collector](Timestamp bin_start, const corsaro::VpKey& vp,
                            const std::map<Prefix, corsaro::RtCell>& table) {
        RtSnapshotMessage msg;
        msg.collector = collector;
        msg.bin_start = bin_start;
        msg.vp = vp;
        msg.table = table;
        Message m;
        m.key = collector;
        m.timestamp = bin_start;
        m.value = EncodeSnapshotMessage(msg);
        cluster.Publish(RtTopic(collector), 0, std::move(m));
      });
}

}  // namespace bgps::mq
