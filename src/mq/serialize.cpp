#include "mq/serialize.hpp"

#include <algorithm>

#include "bgp/attrs.hpp"

namespace bgps::mq {
namespace {

void WriteString(BufWriter& w, const std::string& s) {
  w.u16(uint16_t(s.size()));
  w.str(s);
}

Result<std::string> ReadString(BufReader& r) {
  BGPS_ASSIGN_OR_RETURN(uint16_t len, r.u16());
  return r.str(len);
}

void WritePrefix(BufWriter& w, const Prefix& p) {
  w.u8(p.family() == IpFamily::V4 ? 4 : 6);
  bgp::EncodeNlriPrefix(w, p);
}

Result<Prefix> ReadPrefix(BufReader& r) {
  BGPS_ASSIGN_OR_RETURN(uint8_t fam, r.u8());
  if (fam != 4 && fam != 6) return CorruptError("bad prefix family");
  return bgp::DecodeNlriPrefix(r, fam == 4 ? IpFamily::V4 : IpFamily::V6);
}

void WriteCell(BufWriter& w, const corsaro::RtCell& cell) {
  w.u8(cell.announced ? 1 : 0);
  w.u64(uint64_t(cell.last_modified));
  // AS path as a flat hop list (the sim never emits sets in RT context,
  // but sets survive via the bgpdump text form).
  WriteString(w, cell.as_path.ToString());
  w.u16(uint16_t(cell.communities.size()));
  for (auto c : cell.communities) w.u32(c.raw());
}

Result<corsaro::RtCell> ReadCell(BufReader& r) {
  corsaro::RtCell cell;
  BGPS_ASSIGN_OR_RETURN(uint8_t announced, r.u8());
  cell.announced = announced != 0;
  BGPS_ASSIGN_OR_RETURN(uint64_t ts, r.u64());
  cell.last_modified = Timestamp(ts);
  BGPS_ASSIGN_OR_RETURN(std::string path, ReadString(r));
  BGPS_ASSIGN_OR_RETURN(cell.as_path, bgp::AsPath::Parse(path));
  BGPS_ASSIGN_OR_RETURN(uint16_t ncomm, r.u16());
  for (int i = 0; i < ncomm; ++i) {
    BGPS_ASSIGN_OR_RETURN(uint32_t raw, r.u32());
    cell.communities.push_back(bgp::Community(raw));
  }
  return cell;
}

}  // namespace

std::string RtTopic(const std::string& collector) { return "rt." + collector; }

Bytes EncodeDiffMessage(const RtDiffMessage& msg) {
  BufWriter w;
  w.u8(uint8_t(RtMessageKind::Diff));
  WriteString(w, msg.collector);
  w.u64(uint64_t(msg.bin_start));
  w.u32(uint32_t(msg.diffs.size()));
  for (const auto& d : msg.diffs) {
    WriteString(w, d.vp.collector);
    w.u32(d.vp.peer);
    WritePrefix(w, d.prefix);
    WriteCell(w, d.cell);
  }
  return w.take();
}

Result<RtDiffMessage> DecodeDiffMessage(const Bytes& data) {
  BufReader r(data);
  BGPS_ASSIGN_OR_RETURN(uint8_t kind, r.u8());
  if (kind != uint8_t(RtMessageKind::Diff))
    return CorruptError("not a diff message");
  RtDiffMessage msg;
  BGPS_ASSIGN_OR_RETURN(msg.collector, ReadString(r));
  BGPS_ASSIGN_OR_RETURN(uint64_t ts, r.u64());
  msg.bin_start = Timestamp(ts);
  BGPS_ASSIGN_OR_RETURN(uint32_t n, r.u32());
  msg.diffs.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    corsaro::DiffCell d;
    BGPS_ASSIGN_OR_RETURN(d.vp.collector, ReadString(r));
    BGPS_ASSIGN_OR_RETURN(d.vp.peer, r.u32());
    BGPS_ASSIGN_OR_RETURN(d.prefix, ReadPrefix(r));
    BGPS_ASSIGN_OR_RETURN(d.cell, ReadCell(r));
    msg.diffs.push_back(std::move(d));
  }
  return msg;
}

Bytes EncodeSnapshotMessage(const RtSnapshotMessage& msg) {
  BufWriter w;
  w.u8(uint8_t(RtMessageKind::Snapshot));
  WriteString(w, msg.collector);
  w.u64(uint64_t(msg.bin_start));
  WriteString(w, msg.vp.collector);
  w.u32(msg.vp.peer);
  w.u32(uint32_t(msg.table.size()));
  for (const auto& [prefix, cell] : msg.table) {
    WritePrefix(w, prefix);
    WriteCell(w, cell);
  }
  return w.take();
}

Result<RtSnapshotMessage> DecodeSnapshotMessage(const Bytes& data) {
  BufReader r(data);
  BGPS_ASSIGN_OR_RETURN(uint8_t kind, r.u8());
  if (kind != uint8_t(RtMessageKind::Snapshot))
    return CorruptError("not a snapshot message");
  RtSnapshotMessage msg;
  BGPS_ASSIGN_OR_RETURN(msg.collector, ReadString(r));
  BGPS_ASSIGN_OR_RETURN(uint64_t ts, r.u64());
  msg.bin_start = Timestamp(ts);
  BGPS_ASSIGN_OR_RETURN(msg.vp.collector, ReadString(r));
  BGPS_ASSIGN_OR_RETURN(msg.vp.peer, r.u32());
  BGPS_ASSIGN_OR_RETURN(uint32_t n, r.u32());
  for (uint32_t i = 0; i < n; ++i) {
    BGPS_ASSIGN_OR_RETURN(Prefix p, ReadPrefix(r));
    BGPS_ASSIGN_OR_RETURN(corsaro::RtCell cell, ReadCell(r));
    msg.table.emplace(p, std::move(cell));
  }
  return msg;
}

Bytes EncodeMetaMessage(const RtMetaMessage& msg) {
  BufWriter w;
  WriteString(w, msg.collector);
  w.u64(uint64_t(msg.bin_start));
  w.u32(uint32_t(msg.diff_cells));
  return w.take();
}

Result<RtMetaMessage> DecodeMetaMessage(const Bytes& data) {
  BufReader r(data);
  RtMetaMessage msg;
  BGPS_ASSIGN_OR_RETURN(msg.collector, ReadString(r));
  BGPS_ASSIGN_OR_RETURN(uint64_t ts, r.u64());
  msg.bin_start = Timestamp(ts);
  BGPS_ASSIGN_OR_RETURN(uint32_t n, r.u32());
  msg.diff_cells = n;
  return msg;
}

Result<RtMessageKind> PeekKind(const Bytes& data) {
  if (data.empty()) return CorruptError("empty message");
  uint8_t k = data[0];
  if (k != 1 && k != 2) return CorruptError("bad message kind");
  return RtMessageKind(k);
}

// --- Record-plane fan-out codec -------------------------------------------

namespace {

void WriteIp(BufWriter& w, const IpAddress& ip) {
  w.u8(ip.is_v4() ? 4 : 6);
  w.bytes(std::span<const uint8_t>(ip.bytes().data(), ip.is_v4() ? 4u : 16u));
}

Result<IpAddress> ReadIp(BufReader& r) {
  BGPS_ASSIGN_OR_RETURN(uint8_t fam, r.u8());
  if (fam == 4) {
    BGPS_ASSIGN_OR_RETURN(auto raw, r.view(4));
    return IpAddress::V4(raw[0], raw[1], raw[2], raw[3]);
  }
  if (fam == 6) {
    BGPS_ASSIGN_OR_RETURN(auto raw, r.view(16));
    std::array<uint8_t, 16> bytes;
    std::copy(raw.begin(), raw.end(), bytes.begin());
    return IpAddress::V6(bytes);
  }
  return CorruptError("bad address family");
}

// AS path serialized segment-exact (type + member list per segment):
// the text form would merge adjacent sequences, and round-trip
// exactness is part of the codec's contract.
void WriteAsPath(BufWriter& w, const bgp::AsPath& path) {
  w.u8(uint8_t(path.segments().size()));
  for (const auto& seg : path.segments()) {
    w.u8(uint8_t(seg.type));
    w.u16(uint16_t(seg.asns.size()));
    for (bgp::Asn asn : seg.asns) w.u32(asn);
  }
}

Result<bgp::AsPath> ReadAsPath(BufReader& r) {
  bgp::AsPath path;
  BGPS_ASSIGN_OR_RETURN(uint8_t nseg, r.u8());
  for (int s = 0; s < nseg; ++s) {
    bgp::AsPathSegment seg;
    BGPS_ASSIGN_OR_RETURN(uint8_t type, r.u8());
    if (type != uint8_t(bgp::SegmentType::AsSet) &&
        type != uint8_t(bgp::SegmentType::AsSequence)) {
      return CorruptError("bad AS-path segment type");
    }
    seg.type = bgp::SegmentType(type);
    BGPS_ASSIGN_OR_RETURN(uint16_t nasn, r.u16());
    for (int i = 0; i < nasn; ++i) {
      BGPS_ASSIGN_OR_RETURN(uint32_t asn, r.u32());
      seg.asns.push_back(asn);
    }
    path.append_segment(std::move(seg));
  }
  return path;
}

void WriteElem(BufWriter& w, const core::Elem& e) {
  w.u8(uint8_t(e.type));
  w.u64(uint64_t(e.time));
  WriteIp(w, e.peer_address);
  w.u32(e.peer_asn);
  WriteIp(w, e.prefix.address());
  w.u8(uint8_t(e.prefix.length()));
  WriteIp(w, e.next_hop);
  WriteAsPath(w, e.as_path);
  w.u16(uint16_t(e.communities.size()));
  for (auto c : e.communities) w.u32(c.raw());
  w.u16(uint16_t(e.old_state));
  w.u16(uint16_t(e.new_state));
}

Status ReadElemInto(BufReader& r, core::Elem& e) {
  BGPS_ASSIGN_OR_RETURN(uint8_t type, r.u8());
  e.type = core::ElemType(type);
  BGPS_ASSIGN_OR_RETURN(uint64_t time, r.u64());
  e.time = Timestamp(time);
  BGPS_ASSIGN_OR_RETURN(e.peer_address, ReadIp(r));
  BGPS_ASSIGN_OR_RETURN(e.peer_asn, r.u32());
  BGPS_ASSIGN_OR_RETURN(IpAddress pfx_addr, ReadIp(r));
  BGPS_ASSIGN_OR_RETURN(uint8_t pfx_len, r.u8());
  e.prefix = Prefix(pfx_addr, pfx_len);
  BGPS_ASSIGN_OR_RETURN(e.next_hop, ReadIp(r));
  BGPS_ASSIGN_OR_RETURN(e.as_path, ReadAsPath(r));
  BGPS_ASSIGN_OR_RETURN(uint16_t ncomm, r.u16());
  e.communities.clear();
  for (int i = 0; i < ncomm; ++i) {
    BGPS_ASSIGN_OR_RETURN(uint32_t raw, r.u32());
    e.communities.push_back(bgp::Community(raw));
  }
  BGPS_ASSIGN_OR_RETURN(uint16_t old_state, r.u16());
  e.old_state = bgp::FsmState(old_state);
  BGPS_ASSIGN_OR_RETURN(uint16_t new_state, r.u16());
  e.new_state = bgp::FsmState(new_state);
  return OkStatus();
}

}  // namespace

std::string RecordTopic(const std::string& collector) {
  return kRecordTopicPrefix + collector;
}

Bytes EncodeRecordBatch(const RecordBatchMessage& msg) {
  BufWriter w;
  w.u8(uint8_t(RecordMessageKind::Batch));
  w.u8(kRecordBatchVersion);
  WriteString(w, msg.project);
  WriteString(w, msg.collector);
  w.u32(uint32_t(msg.records.size()));
  for (const auto& pr : msg.records) {
    const core::Record& rec = pr.record;
    w.u64(pr.seq);
    w.u8(uint8_t(rec.dump_type));
    w.u64(uint64_t(rec.dump_time));
    w.u8(uint8_t(rec.status));
    w.u8(uint8_t(rec.position));
    w.u64(uint64_t(rec.timestamp));
    const auto& elems = rec.prefetched_elems;
    w.u32(elems ? uint32_t(elems->size()) : 0u);
    if (elems) {
      for (const auto& e : *elems) WriteElem(w, e);
    }
  }
  return w.take();
}

Status DecodeRecordBatchInto(const Bytes& data, RecordBatchMessage& out) {
  BufReader r(data);
  BGPS_ASSIGN_OR_RETURN(uint8_t kind, r.u8());
  if (kind != uint8_t(RecordMessageKind::Batch))
    return CorruptError("not a record batch");
  BGPS_ASSIGN_OR_RETURN(uint8_t version, r.u8());
  if (version != kRecordBatchVersion)
    return UnsupportedError("record batch version " + std::to_string(version));
  BGPS_ASSIGN_OR_RETURN(out.project, ReadString(r));
  BGPS_ASSIGN_OR_RETURN(out.collector, ReadString(r));
  const InternedString project(out.project);
  const InternedString collector(out.collector);
  BGPS_ASSIGN_OR_RETURN(uint32_t n, r.u32());
  out.records.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    PublishedRecord& pr = out.records[i];
    core::Record& rec = pr.record;
    BGPS_ASSIGN_OR_RETURN(pr.seq, r.u64());
    rec.project = project;
    rec.collector = collector;
    BGPS_ASSIGN_OR_RETURN(uint8_t dump_type, r.u8());
    rec.dump_type = core::DumpType(dump_type);
    BGPS_ASSIGN_OR_RETURN(uint64_t dump_time, r.u64());
    rec.dump_time = Timestamp(dump_time);
    BGPS_ASSIGN_OR_RETURN(uint8_t status, r.u8());
    rec.status = core::RecordStatus(status);
    BGPS_ASSIGN_OR_RETURN(uint8_t position, r.u8());
    rec.position = core::DumpPosition(position);
    BGPS_ASSIGN_OR_RETURN(uint64_t ts, r.u64());
    rec.timestamp = Timestamp(ts);
    BGPS_ASSIGN_OR_RETURN(uint32_t nelems, r.u32());
    if (!rec.prefetched_elems) rec.prefetched_elems.emplace();
    rec.prefetched_elems->resize(nelems);
    for (uint32_t e = 0; e < nelems; ++e) {
      BGPS_RETURN_IF_ERROR(ReadElemInto(r, (*rec.prefetched_elems)[e]));
    }
  }
  if (!r.empty()) return CorruptError("trailing bytes after record batch");
  return OkStatus();
}

Result<RecordBatchMessage> DecodeRecordBatch(const Bytes& data) {
  RecordBatchMessage msg;
  BGPS_RETURN_IF_ERROR(DecodeRecordBatchInto(data, msg));
  return msg;
}

Bytes EncodeRecordWatermark(const RecordWatermarkMessage& msg) {
  BufWriter w;
  w.u8(uint8_t(RecordMessageKind::Watermark));
  w.u8(kRecordBatchVersion);
  w.u64(msg.published_through);
  w.u8(msg.closed ? 1 : 0);
  return w.take();
}

Result<RecordWatermarkMessage> DecodeRecordWatermark(const Bytes& data) {
  BufReader r(data);
  BGPS_ASSIGN_OR_RETURN(uint8_t kind, r.u8());
  if (kind != uint8_t(RecordMessageKind::Watermark))
    return CorruptError("not a record watermark");
  BGPS_ASSIGN_OR_RETURN(uint8_t version, r.u8());
  if (version != kRecordBatchVersion)
    return UnsupportedError("watermark version " + std::to_string(version));
  RecordWatermarkMessage msg;
  BGPS_ASSIGN_OR_RETURN(msg.published_through, r.u64());
  BGPS_ASSIGN_OR_RETURN(uint8_t closed, r.u8());
  msg.closed = closed != 0;
  return msg;
}

void PublishRtToCluster(corsaro::RoutingTables& rt, Cluster& cluster,
                        const std::string& collector) {
  rt.set_diff_callback([&cluster, collector](
                           Timestamp bin_start,
                           const std::vector<corsaro::DiffCell>& diffs) {
    RtDiffMessage msg;
    msg.collector = collector;
    msg.bin_start = bin_start;
    msg.diffs = diffs;
    Message m;
    m.key = collector;
    m.timestamp = bin_start;
    m.value = EncodeDiffMessage(msg);
    cluster.Publish(RtTopic(collector), 0, std::move(m));

    RtMetaMessage meta{collector, bin_start, diffs.size()};
    Message mm;
    mm.key = collector;
    mm.timestamp = bin_start;
    mm.value = EncodeMetaMessage(meta);
    cluster.Publish(kRtMetaTopic, 0, std::move(mm));
  });
  rt.set_snapshot_callback(
      [&cluster, collector](Timestamp bin_start, const corsaro::VpKey& vp,
                            const std::map<Prefix, corsaro::RtCell>& table) {
        RtSnapshotMessage msg;
        msg.collector = collector;
        msg.bin_start = bin_start;
        msg.vp = vp;
        msg.table = table;
        Message m;
        m.key = collector;
        m.timestamp = bin_start;
        m.value = EncodeSnapshotMessage(msg);
        cluster.Publish(RtTopic(collector), 0, std::move(m));
      });
}

}  // namespace bgps::mq
