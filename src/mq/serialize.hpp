// (De)serialization of RT plugin output for the message queue
// (paper §6.2.2: "IO routines: diffs, (de)serialization, Kafka").
//
// Two message kinds flow through the per-collector "rt.<collector>"
// topics: full per-VP table snapshots (periodic, for consumer sync) and
// per-bin diff-cell batches. A lightweight meta record accompanies each
// bin on the "rt-meta" topic for the sync servers.
#pragma once

#include "core/record.hpp"
#include "corsaro/rt.hpp"
#include "mq/log.hpp"

namespace bgps::mq {

enum class RtMessageKind : uint8_t { Diff = 1, Snapshot = 2 };

struct RtDiffMessage {
  std::string collector;
  Timestamp bin_start = 0;
  std::vector<corsaro::DiffCell> diffs;
};

struct RtSnapshotMessage {
  std::string collector;
  Timestamp bin_start = 0;
  corsaro::VpKey vp;
  std::map<Prefix, corsaro::RtCell> table;
};

// Per-bin availability note consumed by sync servers (§6.2.3).
struct RtMetaMessage {
  std::string collector;
  Timestamp bin_start = 0;
  size_t diff_cells = 0;
};

Bytes EncodeDiffMessage(const RtDiffMessage& msg);
Result<RtDiffMessage> DecodeDiffMessage(const Bytes& data);

Bytes EncodeSnapshotMessage(const RtSnapshotMessage& msg);
Result<RtSnapshotMessage> DecodeSnapshotMessage(const Bytes& data);

Bytes EncodeMetaMessage(const RtMetaMessage& msg);
Result<RtMetaMessage> DecodeMetaMessage(const Bytes& data);

// Peeks the kind byte of an rt.<collector> topic message.
Result<RtMessageKind> PeekKind(const Bytes& data);

// Standard topic names.
std::string RtTopic(const std::string& collector);
inline constexpr const char* kRtMetaTopic = "rt-meta";

// ---------------------------------------------------------------------------
// Record-plane fan-out codec: serialized Record/Elem batches, the wire
// format between one decoding RecordPublisher and N RecordSubscribers
// (see pool/record_fanout.hpp). Versioned and round-trip exact: every
// header field and every elem field (AS-path segments included, not the
// text rendering) survives encode/decode bit-for-bit, which is what the
// fan-out identity pin rests on.
// ---------------------------------------------------------------------------

// Wire kinds of the record-plane topics, disjoint from RtMessageKind so
// a misrouted message fails its kind check instead of mis-decoding.
enum class RecordMessageKind : uint8_t { Batch = 3, Watermark = 4 };

inline constexpr uint8_t kRecordBatchVersion = 1;

// One published record: the provenance/annotation header of a
// core::Record plus its fully-extracted (unfiltered) elems in
// Record::prefetched_elems. The MRT body and peer index are *not*
// carried — extraction already happened, exactly once, at the
// publisher. `seq` is the publisher-global stream ordinal; subscribers
// re-merge their collector topics by it to reconstruct the publisher's
// total order.
struct PublishedRecord {
  uint64_t seq = 0;
  core::Record record;
};

struct RecordBatchMessage {
  std::string project;
  std::string collector;
  std::vector<PublishedRecord> records;
};

Bytes EncodeRecordBatch(const RecordBatchMessage& msg);
Result<RecordBatchMessage> DecodeRecordBatch(const Bytes& data);
// Arena-friendly decode: reuses `out`'s vectors (records and their elem
// buffers keep their capacity across batches), so a steady-state
// subscriber re-materializes records without reallocating per batch.
Status DecodeRecordBatchInto(const Bytes& data, RecordBatchMessage& out);

// Publisher progress marker on the kRecordWatermarkTopic: every record
// with seq < `published_through` has been published to its collector
// topic, so subscribers may emit up to (exclusive) that ordinal without
// waiting on quiet topics. `closed` marks the end of the publisher run.
struct RecordWatermarkMessage {
  uint64_t published_through = 0;
  bool closed = false;
};

Bytes EncodeRecordWatermark(const RecordWatermarkMessage& msg);
Result<RecordWatermarkMessage> DecodeRecordWatermark(const Bytes& data);

// Record-plane topic names.
std::string RecordTopic(const std::string& collector);  // "records.<collector>"
inline constexpr const char* kRecordTopicPrefix = "records.";
inline constexpr const char* kRecordWatermarkTopic = "records-watermark";
// Periodic StreamPool::Stats() JSON snapshots (plain UTF-8 payloads).
inline constexpr const char* kStatsTopic = "stats";

// Glue: wires a RoutingTables plugin to a Cluster — diffs, periodic
// snapshots and meta all published to the right topics.
void PublishRtToCluster(corsaro::RoutingTables& rt, Cluster& cluster,
                        const std::string& collector);

}  // namespace bgps::mq
