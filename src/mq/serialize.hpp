// (De)serialization of RT plugin output for the message queue
// (paper §6.2.2: "IO routines: diffs, (de)serialization, Kafka").
//
// Two message kinds flow through the per-collector "rt.<collector>"
// topics: full per-VP table snapshots (periodic, for consumer sync) and
// per-bin diff-cell batches. A lightweight meta record accompanies each
// bin on the "rt-meta" topic for the sync servers.
#pragma once

#include "corsaro/rt.hpp"
#include "mq/log.hpp"

namespace bgps::mq {

enum class RtMessageKind : uint8_t { Diff = 1, Snapshot = 2 };

struct RtDiffMessage {
  std::string collector;
  Timestamp bin_start = 0;
  std::vector<corsaro::DiffCell> diffs;
};

struct RtSnapshotMessage {
  std::string collector;
  Timestamp bin_start = 0;
  corsaro::VpKey vp;
  std::map<Prefix, corsaro::RtCell> table;
};

// Per-bin availability note consumed by sync servers (§6.2.3).
struct RtMetaMessage {
  std::string collector;
  Timestamp bin_start = 0;
  size_t diff_cells = 0;
};

Bytes EncodeDiffMessage(const RtDiffMessage& msg);
Result<RtDiffMessage> DecodeDiffMessage(const Bytes& data);

Bytes EncodeSnapshotMessage(const RtSnapshotMessage& msg);
Result<RtSnapshotMessage> DecodeSnapshotMessage(const Bytes& data);

Bytes EncodeMetaMessage(const RtMetaMessage& msg);
Result<RtMetaMessage> DecodeMetaMessage(const Bytes& data);

// Peeks the kind byte of an rt.<collector> topic message.
Result<RtMessageKind> PeekKind(const Bytes& data);

// Standard topic names.
std::string RtTopic(const std::string& collector);
inline constexpr const char* kRtMetaTopic = "rt-meta";

// Glue: wires a RoutingTables plugin to a Cluster — diffs, periodic
// snapshots and meta all published to the right topics.
void PublishRtToCluster(corsaro::RoutingTables& rt, Cluster& cluster,
                        const std::string& collector);

}  // namespace bgps::mq
