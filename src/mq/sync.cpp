#include "mq/sync.hpp"

namespace bgps::mq {

Bytes EncodeReadyMarker(const ReadyMarker& m) {
  BufWriter w;
  w.u64(uint64_t(m.bin_start));
  w.u16(uint16_t(m.collectors_present.size()));
  for (const auto& c : m.collectors_present) {
    w.u16(uint16_t(c.size()));
    w.str(c);
  }
  return w.take();
}

Result<ReadyMarker> DecodeReadyMarker(const Bytes& data) {
  BufReader r(data);
  ReadyMarker m;
  BGPS_ASSIGN_OR_RETURN(uint64_t ts, r.u64());
  m.bin_start = Timestamp(ts);
  BGPS_ASSIGN_OR_RETURN(uint16_t n, r.u16());
  for (int i = 0; i < n; ++i) {
    BGPS_ASSIGN_OR_RETURN(uint16_t len, r.u16());
    BGPS_ASSIGN_OR_RETURN(std::string c, r.str(len));
    m.collectors_present.push_back(std::move(c));
  }
  return m;
}

size_t SyncServer::Poll() {
  // The meta topic is unbounded (no retention), so Poll cannot fail.
  for (const auto& msg : meta_.Poll().value_or({})) {
    auto meta = DecodeMetaMessage(msg->value);
    if (!meta.ok()) continue;
    pending_[meta->bin_start].insert(meta->collector);
    newest_seen_ = std::max(newest_seen_, meta->bin_start);
  }
  size_t published = 0;
  for (Timestamp bin : ReadyBins()) {
    auto it = pending_.find(bin);
    if (it == pending_.end()) continue;
    ReadyMarker marker;
    marker.bin_start = bin;
    marker.collectors_present.assign(it->second.begin(), it->second.end());
    Message m;
    m.timestamp = bin;
    m.value = EncodeReadyMarker(marker);
    cluster_->Publish(ready_topic_, 0, std::move(m));
    pending_.erase(it);
    ++published;
  }
  return published;
}

std::vector<Timestamp> CompletenessSyncServer::ReadyBins() {
  std::vector<Timestamp> ready;
  for (const auto& [bin, collectors] : pending_) {
    bool complete = true;
    for (const auto& want : expected_) {
      if (!collectors.count(want)) {
        complete = false;
        break;
      }
    }
    if (complete) ready.push_back(bin);
  }
  return ready;
}

std::vector<Timestamp> TimeoutSyncServer::ReadyBins() {
  // "Data time" stands in for the wall clock: a bin times out once meta
  // for a bin at least `timeout_` newer has been observed.
  std::vector<Timestamp> ready;
  for (const auto& [bin, _] : pending_) {
    if (newest_seen_ >= bin + timeout_) ready.push_back(bin);
  }
  return ready;
}

}  // namespace bgps::mq
