// Sync servers (paper §6.2.3).
//
// Different applications need different trade-offs between latency and
// completeness when aligning per-collector data. Each sync server watches
// the lightweight rt-meta topic and publishes "bin ready" markers to its
// own topic once its criterion is met:
//   * CompletenessSyncServer — all expected collectors reported the bin
//     (the IODA configuration: completeness over latency);
//   * TimeoutSyncServer — a bin becomes ready once a newer bin appears
//     `timeout` seconds later, whether or not everyone reported (the
//     realtime-hijack-detection configuration).
#pragma once

#include "mq/serialize.hpp"

namespace bgps::mq {

struct ReadyMarker {
  Timestamp bin_start = 0;
  std::vector<std::string> collectors_present;
};

Bytes EncodeReadyMarker(const ReadyMarker& m);
Result<ReadyMarker> DecodeReadyMarker(const Bytes& data);

class SyncServer {
 public:
  SyncServer(Cluster* cluster, std::string ready_topic)
      : cluster_(cluster),
        ready_topic_(std::move(ready_topic)),
        meta_(cluster, kRtMetaTopic) {}
  virtual ~SyncServer() = default;

  const std::string& ready_topic() const { return ready_topic_; }

  // Drains new meta messages and publishes any newly-ready bins.
  // Returns the number of bins marked ready.
  size_t Poll();

 protected:
  // Subclass decides which pending bins are ready.
  virtual std::vector<Timestamp> ReadyBins() = 0;

  Cluster* cluster_;
  std::string ready_topic_;
  Consumer meta_;
  // bin -> collectors that reported it
  std::map<Timestamp, std::set<std::string>> pending_;
  Timestamp newest_seen_ = 0;
};

class CompletenessSyncServer : public SyncServer {
 public:
  CompletenessSyncServer(Cluster* cluster, std::string ready_topic,
                         std::set<std::string> expected)
      : SyncServer(cluster, std::move(ready_topic)),
        expected_(std::move(expected)) {}

 protected:
  std::vector<Timestamp> ReadyBins() override;

 private:
  std::set<std::string> expected_;
};

class TimeoutSyncServer : public SyncServer {
 public:
  TimeoutSyncServer(Cluster* cluster, std::string ready_topic,
                    Timestamp timeout)
      : SyncServer(cluster, std::move(ready_topic)), timeout_(timeout) {}

 protected:
  std::vector<Timestamp> ReadyBins() override;

 private:
  Timestamp timeout_;
};

}  // namespace bgps::mq
