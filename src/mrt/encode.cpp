#include "mrt/encode.hpp"

namespace bgps::mrt {
namespace {

constexpr uint8_t kPeerTypeIpv6 = 0x01;
constexpr uint8_t kPeerTypeAs4 = 0x02;
// RFC 6793: stand-in ASN a 2-byte-only speaker uses for 4-byte ASNs.
constexpr uint16_t kAsTrans = 23456;

void WriteIp(BufWriter& w, const IpAddress& a) {
  w.bytes(std::span<const uint8_t>(a.bytes().data(), size_t(a.width()) / 8));
}

uint16_t AfiFromFamily(IpFamily f) {
  return f == IpFamily::V4 ? bgp::kAfiIpv4 : bgp::kAfiIpv6;
}

uint16_t Narrow(bgp::Asn asn) {
  return asn > 0xFFFF ? kAsTrans : uint16_t(asn);
}

// Encodes the 12-byte common header followed by `body`.
Bytes Frame(Timestamp ts, MrtType type, uint16_t subtype, const Bytes& body) {
  BufWriter w;
  w.u32(uint32_t(ts));
  w.u16(uint16_t(type));
  w.u16(subtype);
  w.u32(uint32_t(body.size()));
  w.bytes(body);
  return w.take();
}

}  // namespace

Bytes EncodePeerIndexTable(Timestamp ts, const PeerIndexTable& pit,
                           bgp::AsnEncoding enc) {
  BufWriter w;
  w.u32(pit.collector_bgp_id);
  w.u16(uint16_t(pit.view_name.size()));
  w.str(pit.view_name);
  w.u16(uint16_t(pit.peers.size()));
  for (const auto& pe : pit.peers) {
    // Per-entry width: a 2-byte table still stores wide ASNs as AS4
    // entries (the type octet is per peer, RFC 6396 §4.3.1).
    bool as4 = enc == bgp::AsnEncoding::FourByte || pe.asn > 0xFFFF;
    uint8_t type = as4 ? kPeerTypeAs4 : 0;
    if (pe.address.is_v6()) type |= kPeerTypeIpv6;
    w.u8(type);
    w.u32(pe.bgp_id);
    WriteIp(w, pe.address);
    if (as4) {
      w.u32(pe.asn);
    } else {
      w.u16(uint16_t(pe.asn));
    }
  }
  return Frame(ts, MrtType::TableDumpV2,
               uint16_t(TableDumpV2Subtype::PeerIndexTable), w.take());
}

Bytes EncodeRibPrefix(Timestamp ts, const RibPrefix& rib, IpFamily family) {
  BufWriter w;
  w.u32(rib.sequence);
  bgp::EncodeNlriPrefix(w, rib.prefix);
  w.u16(uint16_t(rib.entries.size()));
  for (const auto& e : rib.entries) {
    w.u16(e.peer_index);
    w.u32(uint32_t(e.originated_time));
    // TABLE_DUMP_V2 attributes are always 4-byte (RFC 6396 §4.3.4).
    Bytes attrs =
        bgp::EncodePathAttributes(e.attrs, bgp::AsnEncoding::FourByte);
    w.u16(uint16_t(attrs.size()));
    w.bytes(attrs);
  }
  auto subtype = family == IpFamily::V4 ? TableDumpV2Subtype::RibIpv4Unicast
                                        : TableDumpV2Subtype::RibIpv6Unicast;
  return Frame(ts, MrtType::TableDumpV2, uint16_t(subtype), w.take());
}

Bytes EncodeBgp4mpUpdate(Timestamp ts, const Bgp4mpMessage& msg,
                         bgp::AsnEncoding enc) {
  BufWriter w;
  if (enc == bgp::AsnEncoding::FourByte) {
    w.u32(msg.peer_asn);
    w.u32(msg.local_asn);
  } else {
    w.u16(Narrow(msg.peer_asn));
    w.u16(Narrow(msg.local_asn));
  }
  w.u16(msg.interface_index);
  w.u16(AfiFromFamily(msg.peer_address.family()));
  WriteIp(w, msg.peer_address);
  WriteIp(w, msg.local_address);
  w.bytes(bgp::EncodeUpdate(msg.update, enc));
  auto subtype = enc == bgp::AsnEncoding::FourByte ? Bgp4mpSubtype::MessageAs4
                                                   : Bgp4mpSubtype::Message;
  return Frame(ts, MrtType::Bgp4mp, uint16_t(subtype), w.take());
}

Bytes EncodeBgp4mpStateChange(Timestamp ts, const Bgp4mpStateChange& sc,
                              bgp::AsnEncoding enc) {
  BufWriter w;
  if (enc == bgp::AsnEncoding::FourByte) {
    w.u32(sc.peer_asn);
    w.u32(sc.local_asn);
  } else {
    w.u16(Narrow(sc.peer_asn));
    w.u16(Narrow(sc.local_asn));
  }
  w.u16(sc.interface_index);
  w.u16(AfiFromFamily(sc.peer_address.family()));
  WriteIp(w, sc.peer_address);
  WriteIp(w, sc.local_address);
  w.u16(uint16_t(sc.old_state));
  w.u16(uint16_t(sc.new_state));
  auto subtype = enc == bgp::AsnEncoding::FourByte
                     ? Bgp4mpSubtype::StateChangeAs4
                     : Bgp4mpSubtype::StateChange;
  return Frame(ts, MrtType::Bgp4mp, uint16_t(subtype), w.take());
}

}  // namespace bgps::mrt
