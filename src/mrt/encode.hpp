// MRT record encoders (RFC 6396): the write side of the MRT layer.
//
// Produces the same record set the decoder in mrt.hpp accepts —
// TABLE_DUMP_V2 (PEER_INDEX_TABLE, RIB_IPV4/IPV6_UNICAST) and BGP4MP
// updates / state changes — so anything encoded here round-trips through
// DecodeRawRecord + DecodeRecord byte-for-semantics. Used by the
// simulator's collectors (real MRT files on disk feed the whole decode
// pipeline unmodified), by the BMP/exabgp normalizers, and by tests.
//
// BGP4MP records support both ASN encodings (RFC 6396 §4.4):
//   * AsnEncoding::FourByte -> MESSAGE_AS4 / STATE_CHANGE_AS4, u32 header
//     ASNs, 4-byte AS_PATH;
//   * AsnEncoding::TwoByte  -> MESSAGE / STATE_CHANGE, u16 header ASNs,
//     2-byte AS_PATH. ASNs above 0xFFFF are written as AS_TRANS (23456,
//     RFC 6793) — lossy by design, exactly like a pre-AS4 speaker.
// TABLE_DUMP_V2 RIB attributes are always 4-byte (RFC 6396 §4.3.4); the
// `enc` parameter of EncodePeerIndexTable only selects the peer-entry
// ASN width (entries that do not fit u16 stay 4-byte per entry).
#pragma once

#include "mrt/mrt.hpp"

namespace bgps::mrt {

Bytes EncodePeerIndexTable(Timestamp ts, const PeerIndexTable& pit,
                           bgp::AsnEncoding enc = bgp::AsnEncoding::FourByte);

Bytes EncodeRibPrefix(Timestamp ts, const RibPrefix& rib, IpFamily family);

Bytes EncodeBgp4mpUpdate(Timestamp ts, const Bgp4mpMessage& msg,
                         bgp::AsnEncoding enc = bgp::AsnEncoding::FourByte);

Bytes EncodeBgp4mpStateChange(Timestamp ts, const Bgp4mpStateChange& sc,
                              bgp::AsnEncoding enc = bgp::AsnEncoding::FourByte);

}  // namespace bgps::mrt
