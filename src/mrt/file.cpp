#include "mrt/file.hpp"

namespace bgps::mrt {

Status MrtFileReader::Open(const std::string& path) {
  path_ = path;
  corrupt_ = false;
  records_read_ = 0;
  offset_ = 0;
  file_.open(path, std::ios::binary);
  if (!file_.is_open()) return IoError("cannot open " + path);
  return OkStatus();
}

Status MrtFileReader::Open(const std::string& path, uint64_t offset) {
  BGPS_RETURN_IF_ERROR(Open(path));
  if (offset > 0) {
    file_.seekg(std::streamoff(offset));
    if (file_.fail()) {
      // Seekable past-EOF positions are legal for ifstreams; a hard
      // fail means the stream is unusable.
      corrupt_ = true;
      return CorruptError("cannot seek to offset " + std::to_string(offset) +
                          " in " + path);
    }
    offset_ = offset;
  }
  return OkStatus();
}

Result<RawRecord> MrtFileReader::Next() {
  if (corrupt_) return EndOfStream();
  if (!file_.is_open()) return IoError("reader not open");

  uint8_t header[kMrtHeaderSize];
  file_.read(reinterpret_cast<char*>(header), kMrtHeaderSize);
  std::streamsize got = file_.gcount();
  if (got == 0) return EndOfStream();
  if (got < std::streamsize(kMrtHeaderSize)) {
    corrupt_ = true;
    return CorruptError("truncated MRT header in " + path_);
  }

  BufReader hr(header, kMrtHeaderSize);
  RawRecord raw;
  raw.timestamp = hr.u32().value();
  raw.type = hr.u16().value();
  raw.subtype = hr.u16().value();
  uint32_t len = hr.u32().value();

  // Framing sanity: a record body larger than 64 MiB means the length
  // field is garbage (real RIB records are < 1 MiB).
  if (len > (64u << 20)) {
    corrupt_ = true;
    return CorruptError("implausible MRT record length in " + path_);
  }

  // Read into the reusable buffer and hand out a view: no per-record
  // allocation once buf_ has grown to the file's largest record.
  if (buf_.size() < len) buf_.resize(len);
  file_.read(reinterpret_cast<char*>(buf_.data()), std::streamsize(len));
  if (file_.gcount() < std::streamsize(len)) {
    corrupt_ = true;
    return CorruptError("truncated MRT body in " + path_);
  }
  raw.body = std::span<const uint8_t>(buf_.data(), len);

  if (raw.type == uint16_t(MrtType::Bgp4mpEt)) {
    if (raw.body.size() < 4) {
      corrupt_ = true;
      return CorruptError("BGP4MP_ET record too short in " + path_);
    }
    BufReader br(raw.body);
    raw.microseconds = br.u32().value();
    raw.body = raw.body.subspan(4);
  }

  ++records_read_;
  offset_ += kMrtHeaderSize + len;  // the BGP4MP_ET body trim is in-memory
  return raw;
}

Status MrtFileWriter::Open(const std::string& path) {
  file_.open(path, std::ios::binary | std::ios::trunc);
  if (!file_.is_open()) return IoError("cannot open " + path + " for write");
  return OkStatus();
}

Status MrtFileWriter::Write(const Bytes& encoded_record) {
  return WriteRaw(encoded_record);
}

Status MrtFileWriter::WriteRaw(const Bytes& bytes) {
  if (!file_.is_open()) return IoError("writer not open");
  file_.write(reinterpret_cast<const char*>(bytes.data()),
              std::streamsize(bytes.size()));
  if (!file_.good()) return IoError("write failed");
  return OkStatus();
}

Status MrtFileWriter::Close() {
  if (file_.is_open()) file_.close();
  return OkStatus();
}

Result<FileScan> ScanFile(const std::string& path) {
  MrtFileReader reader;
  BGPS_RETURN_IF_ERROR(reader.Open(path));
  FileScan scan;
  while (true) {
    auto raw = reader.Next();
    if (!raw.ok()) {
      if (raw.status().code() == StatusCode::EndOfStream) break;
      ++scan.corrupt;
      continue;  // reader yields EndOfStream next
    }
    auto msg = DecodeRecord(*raw);
    if (!msg.ok()) {
      if (msg.status().code() == StatusCode::Unsupported) {
        ++scan.unsupported;
      } else {
        ++scan.corrupt;
      }
      continue;
    }
    scan.messages.push_back(std::move(*msg));
  }
  return scan;
}

}  // namespace bgps::mrt
