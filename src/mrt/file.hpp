// MRT dump-file reader and writer.
//
// A dump file is a plain concatenation of MRT records. The reader streams
// records one at a time (the paper's libBGPStream streams dumps straight
// from the HTTP connection; here the archive is a local directory, so we
// stream from disk with a fixed-size read buffer instead of slurping).
//
// Corruption handling mirrors the paper's extended libBGPdump: a framing
// error is unrecoverable for the rest of the file (there is no resync
// marker in MRT), so the reader reports Corrupt once and then EndOfStream.
#pragma once

#include <fstream>

#include "mrt/mrt.hpp"

namespace bgps::mrt {

class MrtFileReader {
 public:
  MrtFileReader() = default;

  Status Open(const std::string& path);
  // Opens and seeks straight to `offset` — a byte position previously
  // read from offset(), i.e. a record-frame boundary. The O(1) resume
  // path of idle-tenant reclaim: re-framing continues mid-file without
  // re-reading the prefix. An offset past EOF just yields EndOfStream.
  Status Open(const std::string& path, uint64_t offset);
  bool is_open() const { return file_.is_open(); }
  const std::string& path() const { return path_; }

  // Returns the next framed record; EndOfStream at EOF; Corrupt exactly
  // once if framing breaks, then EndOfStream.
  //
  // Zero-copy: the record's `body` views this reader's internal buffer
  // and is valid only until the next Next() call (or reader
  // destruction). The streaming decode path consumes each record before
  // framing the next one; callers that keep bodies must copy them.
  Result<RawRecord> Next();

  // Total records framed so far (for stats / tests).
  size_t records_read() const { return records_read_; }

  // Byte position of the next frame Next() will read — stable across
  // EOF, so it can be captured per record and handed back to
  // Open(path, offset) later.
  uint64_t offset() const { return offset_; }

 private:
  std::string path_;
  std::ifstream file_;
  // Reusable body buffer: grows to the largest record seen, so framing
  // a record costs zero heap allocations at steady state.
  Bytes buf_;
  bool corrupt_ = false;
  size_t records_read_ = 0;
  uint64_t offset_ = 0;
};

class MrtFileWriter {
 public:
  MrtFileWriter() = default;

  Status Open(const std::string& path);
  bool is_open() const { return file_.is_open(); }

  // Appends an already-encoded record (output of the mrt::Encode* family).
  Status Write(const Bytes& encoded_record);
  // Appends raw garbage — used by the simulator's corruption injection.
  Status WriteRaw(const Bytes& bytes);

  Status Close();

 private:
  std::ofstream file_;
};

// Convenience: reads and fully decodes every record in a file. Corrupt or
// unsupported records are skipped and counted. Intended for tests/tools,
// not the streaming path.
struct FileScan {
  std::vector<MrtMessage> messages;
  size_t corrupt = 0;
  size_t unsupported = 0;
};
Result<FileScan> ScanFile(const std::string& path);

}  // namespace bgps::mrt
