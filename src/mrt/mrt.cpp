#include "mrt/mrt.hpp"

#include <algorithm>

namespace bgps::mrt {
namespace {

constexpr uint8_t kPeerTypeIpv6 = 0x01;
constexpr uint8_t kPeerTypeAs4 = 0x02;

Result<IpAddress> ReadIp(BufReader& r, IpFamily family) {
  if (family == IpFamily::V4) {
    BGPS_ASSIGN_OR_RETURN(uint32_t v, r.u32());
    return IpAddress::V4(v);
  }
  BGPS_ASSIGN_OR_RETURN(Bytes b, r.bytes(16));
  std::array<uint8_t, 16> arr{};
  std::copy(b.begin(), b.end(), arr.begin());
  return IpAddress::V6(arr);
}

Result<IpFamily> FamilyFromAfi(uint16_t afi) {
  if (afi == bgp::kAfiIpv4) return IpFamily::V4;
  if (afi == bgp::kAfiIpv6) return IpFamily::V6;
  return CorruptError("bad AFI " + std::to_string(afi));
}

Result<PeerIndexTable> DecodePeerIndexTable(BufReader& r) {
  PeerIndexTable pit;
  BGPS_ASSIGN_OR_RETURN(pit.collector_bgp_id, r.u32());
  BGPS_ASSIGN_OR_RETURN(uint16_t name_len, r.u16());
  BGPS_ASSIGN_OR_RETURN(pit.view_name, r.str(name_len));
  BGPS_ASSIGN_OR_RETURN(uint16_t count, r.u16());
  pit.peers.reserve(count);
  for (int i = 0; i < count; ++i) {
    BGPS_ASSIGN_OR_RETURN(uint8_t type, r.u8());
    PeerEntry pe;
    BGPS_ASSIGN_OR_RETURN(pe.bgp_id, r.u32());
    IpFamily fam = (type & kPeerTypeIpv6) ? IpFamily::V6 : IpFamily::V4;
    BGPS_ASSIGN_OR_RETURN(pe.address, ReadIp(r, fam));
    if (type & kPeerTypeAs4) {
      BGPS_ASSIGN_OR_RETURN(pe.asn, r.u32());
    } else {
      BGPS_ASSIGN_OR_RETURN(uint16_t a, r.u16());
      pe.asn = a;
    }
    pit.peers.push_back(std::move(pe));
  }
  return pit;
}

Result<RibPrefix> DecodeRibPrefix(BufReader& r, IpFamily family,
                                  bgp::AttrDecodeCtx* ctx) {
  RibPrefix rib;
  BGPS_ASSIGN_OR_RETURN(rib.sequence, r.u32());
  BGPS_ASSIGN_OR_RETURN(rib.prefix, bgp::DecodeNlriPrefix(r, family));
  BGPS_ASSIGN_OR_RETURN(uint16_t count, r.u16());
  rib.entries.reserve(count);
  for (int i = 0; i < count; ++i) {
    RibEntry e;
    BGPS_ASSIGN_OR_RETURN(e.peer_index, r.u16());
    BGPS_ASSIGN_OR_RETURN(uint32_t otime, r.u32());
    e.originated_time = otime;
    BGPS_ASSIGN_OR_RETURN(uint16_t attr_len, r.u16());
    BGPS_ASSIGN_OR_RETURN(
        e.attrs, bgp::DecodePathAttributes(r, attr_len,
                                           bgp::AsnEncoding::FourByte, ctx));
    rib.entries.push_back(std::move(e));
  }
  return rib;
}

Result<Bgp4mpMessage> DecodeBgp4mpMessage(BufReader& r, bool as4,
                                          bgp::AttrDecodeCtx* ctx) {
  Bgp4mpMessage msg;
  if (as4) {
    BGPS_ASSIGN_OR_RETURN(msg.peer_asn, r.u32());
    BGPS_ASSIGN_OR_RETURN(msg.local_asn, r.u32());
  } else {
    BGPS_ASSIGN_OR_RETURN(uint16_t pa, r.u16());
    BGPS_ASSIGN_OR_RETURN(uint16_t la, r.u16());
    msg.peer_asn = pa;
    msg.local_asn = la;
  }
  BGPS_ASSIGN_OR_RETURN(msg.interface_index, r.u16());
  BGPS_ASSIGN_OR_RETURN(uint16_t afi, r.u16());
  BGPS_ASSIGN_OR_RETURN(IpFamily fam, FamilyFromAfi(afi));
  BGPS_ASSIGN_OR_RETURN(msg.peer_address, ReadIp(r, fam));
  BGPS_ASSIGN_OR_RETURN(msg.local_address, ReadIp(r, fam));
  // Peek the BGP header to learn the message type before full decode.
  {
    BufReader peek = r;
    BGPS_ASSIGN_OR_RETURN(auto hdr, bgp::DecodeBgpHeader(peek));
    msg.message_type = hdr.first;
  }
  if (msg.message_type == bgp::MessageType::Update) {
    BGPS_ASSIGN_OR_RETURN(
        msg.update,
        bgp::DecodeUpdate(r, as4 ? bgp::AsnEncoding::FourByte
                                 : bgp::AsnEncoding::TwoByte, ctx));
  }
  return msg;
}

Result<Bgp4mpStateChange> DecodeBgp4mpStateChange(BufReader& r, bool as4) {
  Bgp4mpStateChange sc;
  if (as4) {
    BGPS_ASSIGN_OR_RETURN(sc.peer_asn, r.u32());
    BGPS_ASSIGN_OR_RETURN(sc.local_asn, r.u32());
  } else {
    BGPS_ASSIGN_OR_RETURN(uint16_t pa, r.u16());
    BGPS_ASSIGN_OR_RETURN(uint16_t la, r.u16());
    sc.peer_asn = pa;
    sc.local_asn = la;
  }
  BGPS_ASSIGN_OR_RETURN(sc.interface_index, r.u16());
  BGPS_ASSIGN_OR_RETURN(uint16_t afi, r.u16());
  BGPS_ASSIGN_OR_RETURN(IpFamily fam, FamilyFromAfi(afi));
  BGPS_ASSIGN_OR_RETURN(sc.peer_address, ReadIp(r, fam));
  BGPS_ASSIGN_OR_RETURN(sc.local_address, ReadIp(r, fam));
  BGPS_ASSIGN_OR_RETURN(uint16_t old_s, r.u16());
  BGPS_ASSIGN_OR_RETURN(uint16_t new_s, r.u16());
  if (old_s > 6 || new_s > 6) return CorruptError("bad FSM state code");
  sc.old_state = bgp::FsmState(old_s);
  sc.new_state = bgp::FsmState(new_s);
  return sc;
}

}  // namespace

Result<RawRecord> DecodeRawRecord(BufReader& r) {
  if (r.empty()) return EndOfStream();
  RawRecord raw;
  BGPS_ASSIGN_OR_RETURN(uint32_t ts, r.u32());
  raw.timestamp = ts;
  BGPS_ASSIGN_OR_RETURN(raw.type, r.u16());
  BGPS_ASSIGN_OR_RETURN(raw.subtype, r.u16());
  BGPS_ASSIGN_OR_RETURN(uint32_t len, r.u32());
  // Zero-copy: the body is a view into the caller's buffer, which
  // outlives the record in every framing path (see RawRecord).
  BGPS_ASSIGN_OR_RETURN(raw.body, r.view(len));
  if (raw.type == uint16_t(MrtType::Bgp4mpEt)) {
    // Extended timestamp: first 4 body bytes are microseconds.
    BufReader br(raw.body);
    BGPS_ASSIGN_OR_RETURN(raw.microseconds, br.u32());
    raw.body = raw.body.subspan(4);
  }
  return raw;
}

Result<MrtMessage> DecodeRecord(const RawRecord& raw, bgp::AttrDecodeCtx* ctx) {
  MrtMessage msg;
  msg.timestamp = raw.timestamp;
  msg.microseconds = raw.microseconds;
  BufReader r(raw.body);

  if (raw.type == uint16_t(MrtType::TableDumpV2)) {
    switch (TableDumpV2Subtype(raw.subtype)) {
      case TableDumpV2Subtype::PeerIndexTable: {
        BGPS_ASSIGN_OR_RETURN(auto pit, DecodePeerIndexTable(r));
        msg.body = std::move(pit);
        return msg;
      }
      case TableDumpV2Subtype::RibIpv4Unicast: {
        BGPS_ASSIGN_OR_RETURN(auto rib, DecodeRibPrefix(r, IpFamily::V4, ctx));
        msg.body = std::move(rib);
        return msg;
      }
      case TableDumpV2Subtype::RibIpv6Unicast: {
        BGPS_ASSIGN_OR_RETURN(auto rib, DecodeRibPrefix(r, IpFamily::V6, ctx));
        msg.body = std::move(rib);
        return msg;
      }
    }
    return UnsupportedError("TABLE_DUMP_V2 subtype " +
                            std::to_string(raw.subtype));
  }

  if (raw.type == uint16_t(MrtType::Bgp4mp) ||
      raw.type == uint16_t(MrtType::Bgp4mpEt)) {
    switch (Bgp4mpSubtype(raw.subtype)) {
      case Bgp4mpSubtype::Message:
      case Bgp4mpSubtype::MessageAs4: {
        bool as4 = Bgp4mpSubtype(raw.subtype) == Bgp4mpSubtype::MessageAs4;
        BGPS_ASSIGN_OR_RETURN(auto m, DecodeBgp4mpMessage(r, as4, ctx));
        msg.body = std::move(m);
        return msg;
      }
      case Bgp4mpSubtype::StateChange:
      case Bgp4mpSubtype::StateChangeAs4: {
        bool as4 =
            Bgp4mpSubtype(raw.subtype) == Bgp4mpSubtype::StateChangeAs4;
        BGPS_ASSIGN_OR_RETURN(auto sc, DecodeBgp4mpStateChange(r, as4));
        msg.body = std::move(sc);
        return msg;
      }
    }
    return UnsupportedError("BGP4MP subtype " + std::to_string(raw.subtype));
  }

  return UnsupportedError("MRT type " + std::to_string(raw.type));
}

}  // namespace bgps::mrt
