// MRT routing-information export format (RFC 6396).
//
// Implements the record types produced by RouteViews and RIPE RIS dumps,
// exactly the set libBGPdump handles for the paper:
//   TABLE_DUMP_V2 (13): PEER_INDEX_TABLE, RIB_IPV4_UNICAST, RIB_IPV6_UNICAST
//   BGP4MP (16):        STATE_CHANGE, MESSAGE, MESSAGE_AS4, STATE_CHANGE_AS4
//   BGP4MP_ET (17):     same subtypes with an extended (µs) timestamp
//
// Parsing is two-stage: a raw framing layer (header + body bytes) and a
// typed decode. The split lets the stream layer mark individual records
// Corrupt/Unsupported without losing framing (paper §3.3.3).
#pragma once

#include <variant>

#include "bgp/update.hpp"
#include "util/time.hpp"

namespace bgps::mrt {

enum class MrtType : uint16_t {
  TableDumpV2 = 13,
  Bgp4mp = 16,
  Bgp4mpEt = 17,
};

enum class TableDumpV2Subtype : uint16_t {
  PeerIndexTable = 1,
  RibIpv4Unicast = 2,
  RibIpv6Unicast = 4,
};

enum class Bgp4mpSubtype : uint16_t {
  StateChange = 0,
  Message = 1,
  MessageAs4 = 4,
  StateChangeAs4 = 5,
};

inline constexpr size_t kMrtHeaderSize = 12;

// Raw framed record: header fields + undecoded body.
//
// `body` is a zero-copy view into whatever buffer the record was framed
// from — the caller's Bytes for DecodeRawRecord, or MrtFileReader's
// reusable read buffer (valid only until its next Next() call). Framing
// a record no longer heap-allocates; decode the body (or copy it) before
// the backing buffer moves on.
struct RawRecord {
  Timestamp timestamp = 0;
  uint32_t microseconds = 0;  // only for BGP4MP_ET
  uint16_t type = 0;
  uint16_t subtype = 0;
  std::span<const uint8_t> body;
};

// --- Typed bodies -----------------------------------------------------------

struct PeerEntry {
  uint32_t bgp_id = 0;
  IpAddress address;
  bgp::Asn asn = 0;
};

// TABLE_DUMP_V2 PEER_INDEX_TABLE (RFC 6396 §4.3.1).
struct PeerIndexTable {
  uint32_t collector_bgp_id = 0;
  std::string view_name;
  std::vector<PeerEntry> peers;
};

// One route in a RIB record (RFC 6396 §4.3.4). Attributes always use
// 4-byte ASNs in TABLE_DUMP_V2.
struct RibEntry {
  uint16_t peer_index = 0;
  Timestamp originated_time = 0;
  bgp::PathAttributes attrs;
};

// TABLE_DUMP_V2 RIB_IPV4_UNICAST / RIB_IPV6_UNICAST (RFC 6396 §4.3.2).
struct RibPrefix {
  uint32_t sequence = 0;
  Prefix prefix;
  std::vector<RibEntry> entries;
};

// BGP4MP_MESSAGE / _AS4 (RFC 6396 §4.4.2): a BGP message between the VP
// ("peer") and the collector ("local").
struct Bgp4mpMessage {
  bgp::Asn peer_asn = 0;
  bgp::Asn local_asn = 0;
  uint16_t interface_index = 0;
  IpAddress peer_address;
  IpAddress local_address;
  // Only UPDATE messages carry routing data; others are kept as type only.
  bgp::MessageType message_type = bgp::MessageType::Update;
  bgp::UpdateMessage update;  // valid when message_type == Update
};

// BGP4MP_STATE_CHANGE / _AS4 (RFC 6396 §4.4.1).
struct Bgp4mpStateChange {
  bgp::Asn peer_asn = 0;
  bgp::Asn local_asn = 0;
  uint16_t interface_index = 0;
  IpAddress peer_address;
  IpAddress local_address;
  bgp::FsmState old_state = bgp::FsmState::Unknown;
  bgp::FsmState new_state = bgp::FsmState::Unknown;
};

using MrtBody =
    std::variant<PeerIndexTable, RibPrefix, Bgp4mpMessage, Bgp4mpStateChange>;

struct MrtMessage {
  Timestamp timestamp = 0;
  uint32_t microseconds = 0;
  MrtBody body;

  bool is_peer_index() const {
    return std::holds_alternative<PeerIndexTable>(body);
  }
  bool is_rib() const { return std::holds_alternative<RibPrefix>(body); }
  bool is_message() const { return std::holds_alternative<Bgp4mpMessage>(body); }
  bool is_state_change() const {
    return std::holds_alternative<Bgp4mpStateChange>(body);
  }
};

// --- Decode -----------------------------------------------------------------

// Frames one record out of `r` (which may hold many concatenated records).
Result<RawRecord> DecodeRawRecord(BufReader& r);

// Decodes the body of a framed record. Unknown (type, subtype) pairs yield
// StatusCode::Unsupported; malformed bodies yield Corrupt. `ctx`, when
// given, is threaded into the attribute decoder (per-dump AS-path intern
// cache — see bgp::AttrDecodeCtx).
Result<MrtMessage> DecodeRecord(const RawRecord& raw,
                                bgp::AttrDecodeCtx* ctx = nullptr);

// The write side (TABLE_DUMP_V2 + BGP4MP encoders, both ASN encodings)
// lives in mrt/encode.hpp.

}  // namespace bgps::mrt
