#include "pool/fanout_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>

namespace bgps::pool {

namespace {

// Output flushed to the socket once this much is buffered — large
// replays must not pay one send() per line.
constexpr size_t kSendChunk = 64 * 1024;

std::string ErrnoString(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

Status FanoutServer::Start() {
  if (!options_.cluster) return InvalidArgument("FanoutServer requires a cluster");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return IoError(ErrnoString("socket"));
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return IoError(ErrnoString("bind"));
  }
  if (::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return IoError(ErrnoString("listen"));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  stop_.store(false);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return OkStatus();
}

void FanoutServer::Stop() {
  stop_.store(true);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  std::vector<std::thread> conns;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    conns.swap(conn_threads_);
  }
  for (auto& t : conns) t.join();
}

void FanoutServer::AcceptLoop() {
  while (!stop_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    int rc = ::poll(&pfd, 1, 100);  // bounded wait, so Stop() is prompt
    if (rc <= 0) continue;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_threads_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void FanoutServer::ServeConnection(int fd) {
  ++connections_served_;
  // Bounded recv so a silent client cannot outlive Stop().
  timeval tv{};
  tv.tv_usec = 200 * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

  auto send_all = [&](const std::string& data) -> bool {
    size_t off = 0;
    while (off < data.size()) {
      ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                         MSG_NOSIGNAL);
      if (n < 0 && (errno == EINTR || errno == EAGAIN ||
                    errno == EWOULDBLOCK)) {
        if (stop_.load()) return false;
        continue;
      }
      if (n <= 0) return false;
      off += size_t(n);
    }
    return true;
  };

  RecordSubscriber::Options sopt;
  sopt.cluster = options_.cluster;
  sopt.max_consecutive_polls = options_.max_consecutive_polls;
  sopt.poll_max_bytes = options_.poll_max_bytes;
  sopt.cancel = [this] { return stop_.load(); };

  // --- command phase ---
  std::string buf;
  bool go = false;
  bool dead = false;
  while (!go && !dead && !stop_.load()) {
    auto nl = buf.find('\n');
    if (nl == std::string::npos) {
      char tmp[4096];
      ssize_t n = ::recv(fd, tmp, sizeof(tmp), 0);
      if (n == 0) {
        dead = true;
      } else if (n < 0) {
        if (errno != EINTR && errno != EAGAIN && errno != EWOULDBLOCK)
          dead = true;
      } else {
        buf.append(tmp, size_t(n));
      }
      continue;
    }
    std::string line = buf.substr(0, nl);
    buf.erase(0, nl + 1);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd == "GO") {
      go = true;
    } else if (cmd == "FROM") {
      uint64_t seq = 0;
      if (!(in >> seq)) {
        send_all("ERR FROM needs a sequence number\n");
        dead = true;
        break;
      }
      sopt.from_seq = seq;
    } else if (cmd == "FILTER") {
      std::string key, value;
      in >> key;
      std::getline(in, value);
      auto first = value.find_first_not_of(' ');
      value = first == std::string::npos ? "" : value.substr(first);
      // Some option parsers call std::stoul and throw on garbage; a
      // remote client's bad value must come back as ERR, not take the
      // connection thread down.
      Status st;
      try {
        st = sopt.filters.AddOption(key, value);
      } catch (const std::exception& e) {
        st = InvalidArgument(std::string("bad filter value: ") + e.what());
      }
      if (!st.ok()) {
        send_all("ERR " + st.message() + "\n");
        dead = true;
        break;
      }
    } else if (cmd == "STATS") {
      // Most recent stats-topic snapshot (the daemon publishes
      // StreamPool::Stats() JSON there periodically); "-" when none.
      std::string payload = "-";
      uint64_t end = options_.cluster->EndOffset(mq::kStatsTopic, 0);
      if (end > options_.cluster->FirstOffset(mq::kStatsTopic, 0)) {
        auto msgs = options_.cluster->Fetch(mq::kStatsTopic, 0, end - 1, 1);
        if (msgs.ok() && !msgs->empty())
          payload.assign((*msgs)[0]->value.begin(), (*msgs)[0]->value.end());
      }
      if (!send_all("STATS " + payload + "\n")) dead = true;
    } else {
      send_all("ERR unknown command " + cmd + "\n");
      dead = true;
    }
  }
  if (!go || dead || stop_.load()) {
    ::close(fd);
    return;
  }

  // --- streaming phase ---
  RecordSubscriber sub(std::move(sopt));
  if (Status st = sub.Start(); !st.ok()) {
    send_all("ERR " + st.ToString() + "\n");
    ::close(fd);
    return;
  }
  std::string out;
  out.reserve(kSendChunk + 4096);
  bool sendable = true;
  while (auto rec = sub.NextRecord()) {
    auto elems = sub.Elems(*rec);
    out += "REC ";
    out += std::to_string(sub.next_seq() - 1);
    out += ' ';
    out += std::to_string(int64_t(rec->timestamp));
    out += ' ';
    out += rec->collector.str();
    out += ' ';
    out += std::to_string(int(rec->dump_type));
    out += ' ';
    out += std::to_string(int(rec->status));
    out += ' ';
    out += std::to_string(int(rec->position));
    out += ' ';
    out += std::to_string(elems.size());
    out += '\n';
    for (const auto& e : elems) {
      out += "ELEM ";
      out += std::to_string(int(e.type));
      out += '|';
      out += std::to_string(int64_t(e.time));
      out += '|';
      out += std::to_string(e.peer_asn);
      out += '|';
      out += e.has_prefix() ? e.prefix.ToString() : "-";
      out += '|';
      out += e.as_path.ToString();
      out += '\n';
    }
    if (out.size() >= kSendChunk) {
      if (!send_all(out)) {
        sendable = false;
        break;
      }
      out.clear();
    }
  }
  if (sendable) {
    out += sub.status().ok() ? "END ok\n" : "ERR " + sub.status().ToString() + "\n";
    send_all(out);
  }
  ::close(fd);
}

}  // namespace bgps::pool
