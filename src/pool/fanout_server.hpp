// Line-protocol TCP front end of the record-plane fan-out tier: the
// reusable server behind the bgpfanout daemon (tools/bgpfanout.cpp),
// kept as a library class so tests drive real sockets in-process.
//
// One connection = one subscription. The client configures, then
// streams:
//
//   client: FILTER <key> <value...>     (0+ times; bgpreader filter keys)
//           FROM <seq>                  (optional replay start ordinal)
//           STATS                       (optional; latest stats snapshot)
//           GO                          (start streaming)
//   server: REC <seq> <ts> <collector> <dump_type> <status> <position> <n>
//           ELEM <type>|<time>|<peer_asn>|<prefix-or-->|<as_path>   (n per REC)
//           ...
//           END ok                      (clean end of stream)
//       or  ERR <message>               (bad command, or stream error —
//                                        e.g. TRUNCATED when retention
//                                        overran the requested replay)
//
// REC and ELEM carry exactly the record/elem fingerprint fields the
// identity pin compares, so a TCP subscriber's transcript is
// fingerprint-equal to a direct BgpStream run with the same filters.
// ELEM fields are '|'-separated because an AS path contains spaces (and
// may be empty).
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "pool/record_fanout.hpp"

namespace bgps::pool {

class FanoutServer {
 public:
  struct Options {
    mq::Cluster* cluster = nullptr;  // required
    // Port to bind on 127.0.0.1 (0 = ephemeral; see port()).
    uint16_t port = 0;
    // Forwarded to each connection's RecordSubscriber.
    size_t max_consecutive_polls = 0;
    size_t poll_max_bytes = 0;
  };

  explicit FanoutServer(Options options) : options_(options) {}
  ~FanoutServer() { Stop(); }

  FanoutServer(const FanoutServer&) = delete;
  FanoutServer& operator=(const FanoutServer&) = delete;

  // Binds, listens, and starts the accept loop.
  Status Start();
  // Stops accepting, cancels live tails, and joins every thread.
  // Idempotent.
  void Stop();

  // Bound port (after Start(); resolves an ephemeral bind).
  uint16_t port() const { return port_; }
  size_t connections_served() const { return connections_served_.load(); }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  Options options_;
  std::atomic<bool> stop_{false};
  std::atomic<size_t> connections_served_{0};
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::mutex conn_mu_;
  std::vector<std::thread> conn_threads_;
};

}  // namespace bgps::pool
