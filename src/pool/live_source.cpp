#include "pool/live_source.hpp"

#include <filesystem>

#include "bmp/bmp.hpp"
#include "exabgp/exabgp.hpp"
#include "mrt/encode.hpp"
#include "mrt/file.hpp"

namespace bgps::pool {

LiveSource::LiveSource(Options options) : options_(std::move(options)) {
  reclaim_share_ =
      core::ReclaimTickRegistry::Acquire(options_.governor, options_.executor);
}

LiveSource::~LiveSource() {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.governor && leases_ > 0) options_.governor->Release(leases_);
  leases_ = 0;
}

Result<std::unique_ptr<LiveSource>> LiveSource::Create(Options options) {
  if (options.spool_dir.empty())
    return InvalidArgument("LiveSource: spool_dir is required");
  if (options.flush_records == 0)
    return InvalidArgument("LiveSource: flush_records must be >= 1");
  std::error_code ec;
  std::filesystem::create_directories(options.spool_dir, ec);
  if (ec)
    return IoError("LiveSource: cannot create spool dir " +
                   options.spool_dir + ": " + ec.message());
  return std::unique_ptr<LiveSource>(new LiveSource(std::move(options)));
}

Status LiveSource::FlushLocked() {
  if (pending_.empty()) return OkStatus();

  std::string path = options_.spool_dir + "/live-" +
                     std::to_string(dump_seq_++) + ".mrt";
  mrt::MrtFileWriter writer;
  BGPS_RETURN_IF_ERROR(writer.Open(path));
  Timestamp first = pending_.front().first;
  Timestamp last = first;
  for (const auto& [ts, encoded] : pending_) {
    if (ts < first) first = ts;
    if (ts > last) last = ts;
    BGPS_RETURN_IF_ERROR(writer.Write(encoded));
  }
  BGPS_RETURN_IF_ERROR(writer.Close());

  broker::DumpFileMeta meta;
  meta.project = options_.project;
  meta.collector = options_.collector;
  meta.type = broker::DumpType::Updates;
  meta.start = first;
  meta.duration = last - first;
  meta.publish_time = last;
  meta.path = std::move(path);
  feed_.Push(std::move(meta));

  records_spooled_.fetch_add(pending_.size(), std::memory_order_relaxed);
  dumps_published_.fetch_add(1, std::memory_order_relaxed);
  pending_.clear();
  // The records now live on disk, not in RAM: return their leases. The
  // consuming stream re-accounts them slot-by-slot as it decodes the
  // published file.
  if (options_.governor && leases_ > 0) {
    options_.governor->Release(leases_);
    leases_ = 0;
  }
  return OkStatus();
}

Status LiveSource::SpoolRecord(Timestamp ts, Bytes encoded) {
  if (options_.governor) {
    if (!options_.governor->TryAcquire(1)) {
      // Budget exhausted. First hand the consumers everything we hold
      // (publishing releases our leases, so downstream can always make
      // progress), then park fair-FIFO until a slot frees — this is the
      // socket backpressure. The blocked Acquire's contention hook
      // drives the executor's reclaim tick, peeling budget off idle
      // tenants.
      {
        std::lock_guard<std::mutex> lock(mu_);
        BGPS_RETURN_IF_ERROR(FlushLocked());
      }
      parks_.fetch_add(1, std::memory_order_relaxed);
      BGPS_RETURN_IF_ERROR(options_.governor->Acquire(1));
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.governor) ++leases_;
  pending_.emplace_back(ts, std::move(encoded));
  if (pending_.size() >= options_.flush_records) return FlushLocked();
  return OkStatus();
}

Status LiveSource::HandleBmp(const bmp::BmpMessage& msg) {
  messages_decoded_.fetch_add(1, std::memory_order_relaxed);

  bgp::Asn hint = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const bmp::PeerHeader* ph = nullptr;
    if (msg.is_route_monitoring())
      ph = &std::get<bmp::RouteMonitoring>(msg.body).peer;
    else if (msg.is_peer_down())
      ph = &std::get<bmp::PeerDown>(msg.body).peer;
    else if (msg.is_peer_up())
      ph = &std::get<bmp::PeerUp>(msg.body).peer;
    if (ph != nullptr) {
      auto key = std::make_pair(ph->peer_address.ToString(),
                                uint32_t(ph->peer_asn));
      if (msg.is_peer_up()) {
        // Learn this peer's local ASN from its Peer Up OPEN; it becomes
        // the local_asn hint of every later record from the same peer.
        peer_local_asn_[key] = uint32_t(std::get<bmp::PeerUp>(msg.body).local_asn);
      }
      auto it = peer_local_asn_.find(key);
      if (it != peer_local_asn_.end()) hint = it->second;
    }
  }

  auto mrt_msg = bmp::ToMrt(msg, hint);
  if (!mrt_msg) return OkStatus();  // Initiation/Termination: no record
  if (mrt_msg->is_state_change())
    fsm_records_.fetch_add(1, std::memory_order_relaxed);

  Bytes encoded =
      mrt_msg->is_message()
          ? mrt::EncodeBgp4mpUpdate(
                mrt_msg->timestamp,
                std::get<mrt::Bgp4mpMessage>(mrt_msg->body))
          : mrt::EncodeBgp4mpStateChange(
                mrt_msg->timestamp,
                std::get<mrt::Bgp4mpStateChange>(mrt_msg->body));
  return SpoolRecord(mrt_msg->timestamp, std::move(encoded));
}

Status LiveSource::IngestBmp(std::span<const uint8_t> bytes) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return InvalidArgument("LiveSource: ingest after Close");
    if (framing_lost_) {
      // The frame boundary is gone; nothing in this connection's byte
      // stream can be trusted until the transport reconnects.
      return OkStatus();
    }
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }

  // Frame-and-decode loop. The buffer is only appended to by this
  // (single) ingest thread, so working on a snapshot reader while
  // releasing mu_ around HandleBmp (which may block in the governor) is
  // safe: nobody else mutates buf_ underneath us except NoteDisconnect,
  // which the session reader itself calls.
  Bytes working;
  {
    std::lock_guard<std::mutex> lock(mu_);
    working = std::move(buf_);
    buf_.clear();
  }
  BufReader r(working);
  size_t consumed = 0;
  Status result = OkStatus();
  while (true) {
    size_t before = r.position();
    auto msg = bmp::Decode(r);
    if (msg.ok()) {
      consumed = r.position();
      result = HandleBmp(*msg);
      if (!result.ok()) break;
      continue;
    }
    StatusCode code = msg.status().code();
    if (code == StatusCode::EndOfStream) {
      consumed = r.position();
      break;
    }
    if (code == StatusCode::OutOfRange) {
      // Partial frame: keep the prefix for the next chunk.
      consumed = before;
      break;
    }
    if (r.position() > before) {
      // Well-framed but undecodable (garbled body) or unsupported type:
      // the framer is still aligned — count and continue.
      consumed = r.position();
      corrupt_frames_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    // Framing-level corruption (bad version, implausible length): the
    // boundary is lost and there is no resync marker. Drop the rest of
    // this connection's bytes; NoteDisconnect clears the desync.
    framing_losses_.fetch_add(1, std::memory_order_relaxed);
    corrupt_frames_.fetch_add(1, std::memory_order_relaxed);
    consumed = working.size();
    {
      std::lock_guard<std::mutex> lock(mu_);
      framing_lost_ = true;
    }
    break;
  }

  std::lock_guard<std::mutex> lock(mu_);
  // Unconsumed tail, then anything a concurrent-looking append left in
  // buf_ (none in the single-ingest-thread contract, but cheap).
  Bytes rest(working.begin() + consumed, working.end());
  rest.insert(rest.end(), buf_.begin(), buf_.end());
  buf_ = std::move(rest);
  if (framing_lost_) buf_.clear();
  return result;
}

Status LiveSource::IngestExaBgpLine(const std::string& line) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return InvalidArgument("LiveSource: ingest after Close");
  }
  if (line.empty()) return OkStatus();
  auto msg = exabgp::DecodeLine(line);
  if (!msg.ok()) {
    // Tolerant parse (§3.3.3): a malformed line is data to count, not a
    // reason to kill the session.
    corrupt_frames_.fetch_add(1, std::memory_order_relaxed);
    return OkStatus();
  }
  messages_decoded_.fetch_add(1, std::memory_order_relaxed);
  if (msg->kind == exabgp::ExaBgpMessage::Kind::State)
    fsm_records_.fetch_add(1, std::memory_order_relaxed);
  return SpoolRecord(msg->time, exabgp::EncodeAsMrt(*msg));
}

void LiveSource::NoteDisconnect() {
  std::lock_guard<std::mutex> lock(mu_);
  buf_.clear();
  framing_lost_ = false;
}

Status LiveSource::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  return FlushLocked();
}

Status LiveSource::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return OkStatus();
  Status flushed = FlushLocked();
  closed_ = true;
  feed_.Close();
  return flushed;
}

LiveSource::Stats LiveSource::stats() const {
  Stats s;
  s.messages_decoded = messages_decoded_.load(std::memory_order_relaxed);
  s.fsm_records = fsm_records_.load(std::memory_order_relaxed);
  s.corrupt_frames = corrupt_frames_.load(std::memory_order_relaxed);
  s.framing_losses = framing_losses_.load(std::memory_order_relaxed);
  s.records_spooled = records_spooled_.load(std::memory_order_relaxed);
  s.dumps_published = dumps_published_.load(std::memory_order_relaxed);
  s.parks = parks_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  s.pending_records = pending_.size();
  s.buffered_bytes = buf_.size();
  return s;
}

}  // namespace bgps::pool
