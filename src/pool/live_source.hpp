// LiveSource — the live ingestion tier (paper §2/§7: BGPStream serves
// historical archives and live feeds through one client API; OpenBMP
// and exabgp are the live formats it names).
//
// A LiveSource turns a live session's wire traffic into the exact
// record plane the rest of the system already speaks:
//
//   socket bytes ──IngestBmp──▶ frame ▶ decode ▶ per-peer state ▶ MRT
//   json lines ──IngestExaBgpLine──▶ decode ─────────────────────┘
//                     │ 1 governor slot per pending record
//                     ▼
//            micro-dump spool (real MRT files, flush_records each)
//                     │ Push(DumpFileMeta)
//                     ▼
//            core::LiveFeedInterface ──▶ live-mode BgpStream tenant
//
// The consuming stream is an ordinary StreamPool deadline tenant, so
// filters, fan-out and analytics consume live data unchanged, and the
// emitted records/elems are byte-identical to directly decoding the
// same payloads (pinned by tests/live_source_test.cpp).
//
// Backpressure (never OOM): every record held in RAM between decode and
// flush leases one slot from the shared MemoryGovernor. When the budget
// is exhausted the source first flushes its pending records (releasing
// the leases and publishing the data, so consumers can always make
// progress), then *parks* in a fair-FIFO Acquire — exactly the "govern
// the socket instead of growing a buffer" behavior ROADMAP direction 4
// asks for. A blocked park fires the governor's contention hooks, which
// drive Executor::RequestReclaimTick — so budget pinned by idle tenants
// is reclaimed by the waiter, not by a timer.
//
// Fault tolerance (pinned by tests/live_fault_test.cpp):
//   * arbitrary chunk boundaries — partial frames are buffered until
//     the rest arrives (bmp::Decode consumes nothing on OutOfRange);
//   * garbled-but-well-framed messages are counted and skipped, the
//     framer stays aligned;
//   * framing-level garbage (bad version / implausible length) loses
//     the frame boundary: the connection's remaining bytes are dropped
//     and ingestion resumes after NoteDisconnect() (reconnect);
//   * disconnect/reconnect at a frame boundary is seamless — per-peer
//     state survives, and the record sequence matches an uninterrupted
//     session.
//
// Threading: the Ingest*/NoteDisconnect/Flush/Close calls must come
// from ONE session-reader thread (a TCP session delivers bytes in
// order; two writers would interleave frames). stats() and the
// consuming stream may run on any other threads.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/data_interface.hpp"
#include "core/executor.hpp"
#include "core/governor.hpp"

namespace bgps::bmp {
struct BmpMessage;
}  // namespace bgps::bmp

namespace bgps::pool {

class LiveSource {
 public:
  struct Options {
    // Directory receiving the micro-dump MRT files (created if absent).
    std::string spool_dir;
    // Provenance stamped on every published dump file.
    std::string project = "live";
    std::string collector = "live";
    // Records per micro-dump: the flush threshold. Smaller = lower
    // publication latency, more files; larger = fewer, bigger files.
    size_t flush_records = 64;
    // Shared record-budget ledger (null = unbounded pending buffer; a
    // production live tenant always passes the pool's governor).
    std::shared_ptr<core::MemoryGovernor> governor;
    // The pool executor, for the waiter-driven reclaim tick wiring
    // (ignored when null or when governor is null).
    std::shared_ptr<core::Executor> executor;
  };

  struct Stats {
    size_t messages_decoded = 0;  // well-formed BMP messages / JSON lines
    size_t fsm_records = 0;       // Peer Up/Down -> STATE_CHANGE records
    size_t corrupt_frames = 0;    // garbled frames / malformed lines skipped
    size_t framing_losses = 0;    // byte-stream desyncs (connection dropped)
    size_t records_spooled = 0;   // MRT records written to micro-dumps
    size_t dumps_published = 0;   // micro-dumps pushed to the feed
    size_t parks = 0;             // times ingestion blocked on the governor
    size_t pending_records = 0;   // decoded records not yet flushed
    size_t buffered_bytes = 0;    // partial-frame bytes awaiting more input
  };

  // Validates options (spool_dir required, flush_records >= 1) and
  // creates the spool directory.
  static Result<std::unique_ptr<LiveSource>> Create(Options options);

  LiveSource(const LiveSource&) = delete;
  LiveSource& operator=(const LiveSource&) = delete;
  // Releases any still-pending governor leases (micro-dump files on
  // disk are the caller's to clean up, like any archive).
  ~LiveSource();

  // The data interface to hand to the live tenant's BgpStream
  // (SetLive + SetDataInterface). Owned by this source; valid for the
  // source's lifetime.
  core::LiveFeedInterface* feed() { return &feed_; }

  // BMP byte-feed ingestion at arbitrary chunk boundaries (a socket
  // read loop calls this with whatever recv returned). Blocks while the
  // governor budget is exhausted — that is the backpressure. Errors are
  // spool I/O or a poisoned governor; wire garbage is *not* an error
  // (counted in stats instead).
  Status IngestBmp(std::span<const uint8_t> bytes);

  // exabgp JSON line ingestion (one line, without the trailing '\n').
  // Malformed lines are counted and skipped (§3.3.3 tolerant parse).
  Status IngestExaBgpLine(const std::string& line);

  // Transport-level disconnect: drops a buffered partial frame and
  // clears a framing desync. Per-peer state survives (a reconnecting
  // session re-sends Peer Up anyway); records already decoded are kept.
  void NoteDisconnect();

  // Publishes pending records as a micro-dump now (no-op when none).
  Status Flush();

  // Flush + close the feed: the consuming stream ends once it drains.
  // Idempotent; ingestion after Close is rejected.
  Status Close();

  Stats stats() const;

 private:
  explicit LiveSource(Options options);

  // Decoded message -> MRT record bytes -> governed pending buffer.
  // Called on the ingest thread with mu_ NOT held.
  Status SpoolRecord(Timestamp ts, Bytes encoded);
  Status HandleBmp(const bmp::BmpMessage& msg);
  // Writes pending_ to a micro-dump and publishes it; mu_ held.
  Status FlushLocked();

  Options options_;
  core::LiveFeedInterface feed_;
  core::ReclaimTickRegistry::Share reclaim_share_;

  mutable std::mutex mu_;
  Bytes buf_;            // undecoded partial-frame bytes (BMP mode)
  bool framing_lost_ = false;  // drop bytes until NoteDisconnect
  bool closed_ = false;
  // (timestamp, encoded MRT record) pending the next flush, in
  // ingestion order. Each entry holds one governor lease.
  std::vector<std::pair<Timestamp, Bytes>> pending_;
  size_t leases_ = 0;    // governor slots held for pending_
  size_t dump_seq_ = 0;  // micro-dump filename counter
  // local ASN learned from each peer's Peer Up OPEN, keyed by
  // (address, asn) — applied as the local_asn hint of subsequent
  // Route Monitoring / Peer Down records from that peer.
  std::map<std::pair<std::string, uint32_t>, uint32_t> peer_local_asn_;

  std::atomic<size_t> messages_decoded_{0};
  std::atomic<size_t> fsm_records_{0};
  std::atomic<size_t> corrupt_frames_{0};
  std::atomic<size_t> framing_losses_{0};
  std::atomic<size_t> records_spooled_{0};
  std::atomic<size_t> dumps_published_{0};
  std::atomic<size_t> parks_{0};
};

}  // namespace bgps::pool
