#include "pool/record_fanout.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

namespace bgps::pool {

// --- RecordPublisher -------------------------------------------------------

Status RecordPublisher::FlushBatch(mq::RecordBatchMessage& batch) {
  if (batch.records.empty()) return OkStatus();
  const size_t n = batch.records.size();
  mq::Message m;
  m.key = batch.collector;
  m.timestamp = batch.records.back().record.timestamp;
  m.value = mq::EncodeRecordBatch(batch);
  if (options_.governor) {
    // One slot per record, blocking (FIFO-fair): a full ledger means
    // retention is pinned by a lagging subscriber, and publication must
    // wait for it, not outgrow the budget. Released by the message's
    // eviction hook (truncation or cluster teardown).
    BGPS_RETURN_IF_ERROR(options_.governor->Acquire(n));
    m.on_evict = [gov = options_.governor, n] { gov->Release(n); };
  }
  options_.cluster->Publish(mq::RecordTopic(batch.collector), 0, std::move(m));
  stats_.records_published += n;
  ++stats_.batches_published;
  batch.records.clear();
  return OkStatus();
}

Status RecordPublisher::FlushAll(bool closed) {
  // Every open batch flushes before the watermark does — that ordering
  // is what makes `published_through = next_seq_` true when it lands.
  for (auto& batch : open_) BGPS_RETURN_IF_ERROR(FlushBatch(batch));
  mq::RecordWatermarkMessage wm;
  wm.published_through = next_seq_;
  wm.closed = closed;
  mq::Message m;
  m.value = mq::EncodeRecordWatermark(wm);
  options_.cluster->Publish(mq::kRecordWatermarkTopic, 0, std::move(m));
  ++stats_.watermarks_published;
  return OkStatus();
}

Result<RecordPublisher::Stats> RecordPublisher::Run(core::BgpStream& stream) {
  if (!options_.cluster)
    return InvalidArgument("RecordPublisher requires a cluster");
  // Progress markers must never truncate away under a bounded cluster
  // default — pin the watermark topic to unbounded retention up front.
  options_.cluster->CreateTopic(mq::kRecordWatermarkTopic, 1,
                                mq::RetentionOptions{});
  const size_t flush_at = std::max<size_t>(1, options_.batch_records);
  while (auto rec = stream.NextRecord()) {
    // The one and only extraction of this record's elems, whole
    // pipeline wide. The publisher stream carries no elem filters, so
    // this is the full decomposition.
    rec->prefetched_elems = stream.Elems(*rec);
    const std::string& collector = rec->collector.str();
    mq::RecordBatchMessage* batch = nullptr;
    for (auto& b : open_) {
      if (b.collector == collector) {
        batch = &b;
        break;
      }
    }
    if (!batch) {
      if (options_.topic_retention) {
        options_.cluster->CreateTopic(mq::RecordTopic(collector), 1,
                                      *options_.topic_retention);
      }
      open_.emplace_back();
      batch = &open_.back();
      batch->project = rec->project.str();
      batch->collector = collector;
      ++stats_.collectors_seen;
    }
    mq::PublishedRecord pr;
    pr.seq = next_seq_++;
    stats_.elems_published += rec->prefetched_elems->size();
    pr.record = std::move(*rec);
    batch->records.push_back(std::move(pr));
    if (batch->records.size() >= flush_at) {
      BGPS_RETURN_IF_ERROR(FlushAll(false));
    }
  }
  Status run_status = stream.status();
  Status flush_status = FlushAll(true);
  if (!flush_status.ok()) {
    // The close must reach subscribers even when the final flush could
    // not (poisoned governor): publish a bare closed watermark — they
    // are never leased — so every tail terminates.
    mq::Message m;
    m.value = mq::EncodeRecordWatermark(
        mq::RecordWatermarkMessage{next_seq_, true});
    options_.cluster->Publish(mq::kRecordWatermarkTopic, 0, std::move(m));
    ++stats_.watermarks_published;
    return flush_status;
  }
  if (!run_status.ok()) return run_status;
  return stats_;
}

// --- RecordSubscriber ------------------------------------------------------

RecordSubscriber::RecordSubscriber(Options options)
    : options_(std::move(options)) {}

Status RecordSubscriber::Start() {
  if (!options_.cluster)
    return InvalidArgument("RecordSubscriber requires a cluster");
  watermark_.emplace(options_.cluster, mq::kRecordWatermarkTopic);
  DiscoverTopics();
  return OkStatus();
}

void RecordSubscriber::DiscoverTopics() {
  const size_t prefix_len = std::strlen(mq::kRecordTopicPrefix);
  for (const auto& name : options_.cluster->topics()) {
    if (name.rfind(mq::kRecordTopicPrefix, 0) != 0) continue;
    const std::string collector = name.substr(prefix_len);
    const auto& want = options_.filters.collectors;
    if (!want.empty() &&
        std::find(want.begin(), want.end(), collector) == want.end())
      continue;
    bool known = false;
    for (const auto& t : topics_) {
      if (t.consumer.topic() == name) {
        known = true;
        break;
      }
    }
    if (known) continue;
    Topic t{mq::Consumer(options_.cluster, name),
            // Pin first (it clamps to the retained low-watermark and
            // freezes it), then park the cursor on the pinned offset —
            // truncation cannot race past us in between.
            options_.cluster->CreatePin(name, 0, 0),
            {}};
    t.consumer.SeekToFirst();
    topics_.push_back(std::move(t));
  }
}

bool RecordSubscriber::PollOnce() {
  bool progress = false;
  // Watermarks are cumulative, so if retention somehow overran the
  // cursor (the publisher creates the topic unbounded, but an operator
  // may pre-create it tighter), skipping to the retained suffix loses
  // nothing.
  auto wm_msgs = watermark_->Poll();
  if (!wm_msgs.ok()) {
    watermark_->SeekToFirst();
    wm_msgs = watermark_->Poll();
  }
  for (const auto& msg : wm_msgs.value_or({})) {
    auto wm = mq::DecodeRecordWatermark(msg->value);
    if (!wm.ok()) continue;
    if (wm->published_through > watermark_seq_) {
      watermark_seq_ = wm->published_through;
      progress = true;
    }
    if (wm->closed && !closed_) {
      closed_ = true;
      progress = true;
    }
  }
  DiscoverTopics();
  // Every topic is polled every round — even one whose pending head is
  // still above the watermark. Skipping it would park its pin, which
  // holds the publisher's governor leases, which blocks the very flush
  // whose watermark would make that head emittable: deadlock. Polling
  // unconditionally keeps pins current; pending stays bounded because
  // the log itself is bounded (retention high-watermark or the
  // publisher's governor budget).
  for (auto& t : topics_) {
    auto msgs = t.consumer.Poll(0, options_.poll_max_bytes);
    if (!msgs.ok()) {
      // Truncated: retention overran this cursor (it was created before
      // the pin, or re-seeked below the low-watermark). Surfaced, not
      // papered over — a silent gap would break the identity guarantee.
      status_ = msgs.status();
      return progress;
    }
    for (const auto& m : *msgs) {
      if (Status st = mq::DecodeRecordBatchInto(m->value, scratch_);
          !st.ok()) {
        status_ = st;
        return progress;
      }
      for (auto& pr : scratch_.records) {
        if (pr.seq < options_.from_seq) continue;
        t.pending.push_back(std::move(pr));
        progress = true;
      }
    }
    // Everything below the cursor is now re-materialized in `pending`;
    // let retention have it (which fires evictions, which releases the
    // publisher's governor leases).
    t.pin.Advance(t.consumer.position());
  }
  return progress;
}

std::optional<core::Record> RecordSubscriber::NextRecord() {
  if (!status_.ok()) return std::nullopt;
  size_t idle_polls = 0;
  for (;;) {
    if (options_.cancel && options_.cancel()) return std::nullopt;
    const bool progress = PollOnce();
    if (!status_.ok()) return std::nullopt;
    // Emit loop: the smallest pending seq, once the watermark (or the
    // close) proves no smaller seq can still arrive on a quiet topic.
    for (;;) {
      Topic* best = nullptr;
      for (auto& t : topics_) {
        if (t.pending.empty()) continue;
        if (!best || t.pending.front().seq < best->pending.front().seq)
          best = &t;
      }
      if (!best) break;
      if (best->pending.front().seq >= watermark_seq_ && !closed_) break;
      mq::PublishedRecord pr = std::move(best->pending.front());
      best->pending.pop_front();
      next_seq_ = pr.seq + 1;
      if (!options_.filters.MatchesRecord(pr.record)) continue;
      return std::move(pr.record);
    }
    if (closed_) {
      // The final watermark covers every published seq, so the emit
      // loop above drains everything; nothing pending means the end.
      return std::nullopt;
    }
    if (progress) {
      idle_polls = 0;
      continue;
    }
    ++idle_polls;
    if (options_.max_consecutive_polls &&
        idle_polls >= options_.max_consecutive_polls)
      return std::nullopt;
    if (options_.poll_wait) {
      options_.poll_wait();
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
}

std::vector<core::Elem> RecordSubscriber::Elems(core::Record& record) const {
  // Mirror of BgpStream::Elems on the worker-extraction path: move the
  // cached elems out, except here they arrive unfiltered off the wire,
  // so this subscriber's elem filters apply now — same predicate, same
  // order, same output as the direct stream.
  std::vector<core::Elem> elems;
  if (record.prefetched_elems.has_value()) {
    elems = std::move(*record.prefetched_elems);
    record.prefetched_elems.reset();
  }
  options_.filters.FilterElemsInPlace(elems);
  return elems;
}

}  // namespace bgps::pool
