// Record-plane fan-out tier: decode once, publish to the mq log, serve
// N subscribers byte-identically.
//
// The paper's deployment (§6.1) runs ONE BGPStream process per
// collector that decodes the MRT firehose and republishes it through
// Kafka so that any number of downstream consumers — per-country
// monitors, per-AS monitors, research taps — read the same stream
// without re-decoding MRT N times. This header is that tier:
//
//   BgpStream ──> RecordPublisher ──> mq::Cluster topics
//                                       "records.<collector>"  (batches)
//                                       "records-watermark"    (progress)
//                                         │
//            RecordSubscriber(filter A) <─┼─> RecordSubscriber(filter B)
//
// RecordPublisher drains a stream exactly once, carrying each record's
// fully-extracted, UNFILTERED elems (the publisher stream must be
// configured with meta filters only). RecordSubscriber re-materializes
// a stream with BgpStream semantics — NextRecord()/Elems()/status() —
// evaluating the full filter language at fan-out, so a subscriber's
// output is byte-identical to a direct BgpStream run with the same
// filters: records are gated by FilterSet::MatchesRecord, elems by
// FilterElemsInPlace, exactly the two predicates the direct path uses.
//
// Ordering: records carry a publisher-global `seq`; a subscriber merges
// its collector topics by seq, emitting a head only once the publisher
// watermark passes it (so a quiet topic cannot be overtaken during a
// live tail). The watermark is published on every flush — and all open
// batches flush together, which is what makes it valid.
//
// Backpressure: with a MemoryGovernor, the publisher leases one slot
// per record before publishing a batch and hands the release to the
// message's eviction hook. Subscribers hold retention pins at their
// cursor; a stalled subscriber therefore stops truncation, which stops
// eviction, which stops releases, which blocks the publisher — cluster
// bytes stay bounded by retention and publication resumes, losslessly,
// when the subscriber catches up.
#pragma once

#include <deque>
#include <optional>

#include "core/filter.hpp"
#include "core/stream.hpp"
#include "mq/serialize.hpp"

namespace bgps::pool {

class RecordPublisher {
 public:
  struct Options {
    // Required. Topics are auto-created with the cluster's default
    // retention; pre-create them for per-topic retention.
    mq::Cluster* cluster = nullptr;
    // Optional backpressure ledger: one slot leased per published
    // record, released when the message is evicted from retention (or
    // at cluster teardown). Sizing rule: retained messages hold their
    // leases for as long as retention keeps them, so the capacity must
    // exceed the steady-state retention floor (per-topic max_messages x
    // batch_records, summed over collectors) plus one in-flight batch —
    // otherwise the publisher wedges on a budget that can never free
    // up. Batches larger than the capacity can never be granted at all.
    std::shared_ptr<core::MemoryGovernor> governor;
    // Per-collector batch flush threshold, in records.
    size_t batch_records = 64;
    // Retention for the per-collector record topics (the high-watermark
    // knobs of the fan-out tier). nullopt = the cluster's default. The
    // watermark topic is always created unbounded — its messages are a
    // few bytes and subscribers recover from its truncation anyway by
    // re-seeking (watermarks are cumulative).
    std::optional<mq::RetentionOptions> topic_retention;
  };

  struct Stats {
    uint64_t records_published = 0;
    uint64_t elems_published = 0;
    uint64_t batches_published = 0;
    uint64_t watermarks_published = 0;
    uint64_t collectors_seen = 0;
  };

  explicit RecordPublisher(Options options) : options_(options) {}

  // Drains `stream` (already Start()ed) to completion, publishing every
  // record it emits. The stream must carry meta filters only — the
  // published elems are the record's full extraction, and it is the
  // subscribers that filter. Publishes a closed watermark on success
  // AND on error (subscribers must terminate either way); surfaces the
  // stream's abnormal status, a governor failure, or both.
  Result<Stats> Run(core::BgpStream& stream);

 private:
  // Flushes every open batch, then the watermark covering them.
  Status FlushAll(bool closed);
  Status FlushBatch(mq::RecordBatchMessage& batch);

  Options options_;
  Stats stats_;
  uint64_t next_seq_ = 0;
  // Open (unflushed) batch per collector, insertion-ordered.
  std::vector<mq::RecordBatchMessage> open_;
};

class RecordSubscriber {
 public:
  struct Options {
    mq::Cluster* cluster = nullptr;  // required
    // Full bgpreader filter language, evaluated at fan-out. Collector
    // filters also restrict which topics are subscribed.
    core::FilterSet filters;
    // Replay start: skip records with seq < from_seq. The subscription
    // itself starts at each topic's retained low-watermark, so a
    // from_seq inside the retained window replays exactly the
    // publisher's suffix from that ordinal.
    uint64_t from_seq = 0;
    // Invoked when a live tail has no publishable data yet; should
    // block briefly or advance time, then return. Default sleeps 2ms.
    std::function<void()> poll_wait;
    // Safety valve: end the stream (status stays OK) after this many
    // consecutive empty waits (0 = tail forever).
    size_t max_consecutive_polls = 0;
    // Checked once per poll round: returning true ends the stream
    // (status stays OK). Lets a server shut down a live tail.
    std::function<bool()> cancel;
    // Per-poll fetch byte budget per topic (0 = unbounded).
    size_t poll_max_bytes = 0;
  };

  explicit RecordSubscriber(Options options);

  // Subscribes to the record topics present now (topics appearing later
  // are picked up during polling) and installs retention pins.
  Status Start();

  // Next record passing the record-level filters, in publisher order.
  // nullopt = end of stream (closed watermark drained, the poll limit,
  // or an error — check status(), Truncated when retention overran this
  // subscriber's cursor before it pinned/caught up).
  std::optional<core::Record> NextRecord();

  // Elems of `record` passing the elem-level filters (move-out of the
  // prefetched elems, like the worker-extraction stream path).
  std::vector<core::Elem> Elems(core::Record& record) const;

  const Status& status() const { return status_; }
  // Largest seq emitted so far + 1 (0 before the first record).
  uint64_t next_seq() const { return next_seq_; }

 private:
  struct Topic {
    mq::Consumer consumer;
    mq::Cluster::Pin pin;
    std::deque<mq::PublishedRecord> pending;
  };

  // Subscribes to any "records.*" topic not yet tracked (subject to the
  // collector filter). New topics join at their retained low-watermark.
  void DiscoverTopics();
  // Drains ready batches/watermarks into the per-topic queues. Returns
  // true if any progress was made (new records, watermark advance, or
  // stream close).
  bool PollOnce();

  Options options_;
  Status status_;
  std::vector<Topic> topics_;
  std::optional<mq::Consumer> watermark_;
  mq::RecordBatchMessage scratch_;  // capacity-reusing decode buffer
  uint64_t watermark_seq_ = 0;
  bool closed_ = false;
  uint64_t next_seq_ = 0;
};

}  // namespace bgps::pool
