#include "pool/stream_pool.hpp"

namespace bgps {

StreamPool::StreamPool(Options options) : options_(options) {
  core::Executor::Options eopt;
  eopt.threads = options_.threads;
  executor_ = std::make_shared<core::Executor>(eopt);
  governor_ = std::make_shared<core::MemoryGovernor>(options_.record_budget);
}

Result<std::unique_ptr<StreamPool>> StreamPool::Create(Options options) {
  if (options.threads == 0)
    return InvalidArgument("StreamPool requires threads > 0");
  if (options.record_budget == 0)
    return InvalidArgument("StreamPool requires record_budget > 0");
  if (options.prefetch_subsets == 0)
    return InvalidArgument(
        "StreamPool requires prefetch_subsets > 0 (vended streams decode "
        "on the shared pool)");
  return std::unique_ptr<StreamPool>(new StreamPool(options));
}

std::unique_ptr<core::BgpStream> StreamPool::CreateStream(
    core::BgpStream::Options options) {
  options.executor = executor_;
  options.governor = governor_;
  if (options.prefetch_subsets == 0) {
    options.prefetch_subsets = options_.prefetch_subsets;
  }
  if (options.max_records_in_flight == 0) {
    options.max_records_in_flight = options_.max_records_in_flight > 0
                                        ? options_.max_records_in_flight
                                        : options_.record_budget;
  }
  streams_created_.fetch_add(1);
  return std::make_unique<core::BgpStream>(std::move(options));
}

}  // namespace bgps
