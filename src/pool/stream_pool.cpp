#include "pool/stream_pool.hpp"

#include <algorithm>
#include <mutex>

namespace bgps {

namespace pool_internal {

// Live vended streams. Shared by the pool and every vended handle so
// Stats() works no matter which side is destroyed first.
struct TenantRegistry {
  struct Entry {
    const core::BgpStream* stream;
    std::string name;
    size_t weight;
    bool deadline;
  };

  std::mutex mu;
  std::vector<Entry> entries;

  void Add(const core::BgpStream* stream, std::string name, size_t weight,
           bool deadline) {
    std::lock_guard<std::mutex> lock(mu);
    entries.push_back({stream, std::move(name), weight, deadline});
  }
  void Remove(const core::BgpStream* stream) {
    std::lock_guard<std::mutex> lock(mu);
    entries.erase(std::remove_if(entries.begin(), entries.end(),
                                 [stream](const Entry& e) {
                                   return e.stream == stream;
                                 }),
                  entries.end());
  }
};

namespace {

// A vended handle: a plain BgpStream that additionally deregisters
// from the pool's stats registry on destruction — *before* ~BgpStream
// joins the decode work, so Stats() never reads a dying stream.
class PooledStream final : public core::BgpStream {
 public:
  PooledStream(core::BgpStream::Options options,
               std::shared_ptr<TenantRegistry> registry)
      : core::BgpStream(std::move(options)), registry_(std::move(registry)) {}

  ~PooledStream() override { registry_->Remove(this); }

 private:
  std::shared_ptr<TenantRegistry> registry_;
};

}  // namespace

}  // namespace pool_internal

StreamPool::StreamPool(Options options) : options_(options) {
  core::Executor::Options eopt;
  eopt.threads = options_.threads;
  executor_ = std::make_shared<core::Executor>(eopt);
  governor_ = std::make_shared<core::MemoryGovernor>(options_.record_budget);
  registry_ = std::make_shared<pool_internal::TenantRegistry>();
  // No contention-hook wiring here: each reclaim-enabled vended
  // stream's PrefetchDecoder registers (and on destruction removes)
  // its own governor hook, so a pool whose streams never enable
  // reclaim keeps blocked Acquires on the untimed no-poll path.
}

Result<std::unique_ptr<StreamPool>> StreamPool::Create(Options options) {
  if (options.threads == 0)
    return InvalidArgument("StreamPool requires threads > 0");
  if (options.record_budget == 0)
    return InvalidArgument("StreamPool requires record_budget > 0");
  if (options.prefetch_subsets == 0)
    return InvalidArgument(
        "StreamPool requires prefetch_subsets > 0 (vended streams decode "
        "on the shared pool)");
  return std::unique_ptr<StreamPool>(new StreamPool(options));
}

std::unique_ptr<core::BgpStream> StreamPool::CreateStream(
    core::BgpStream::Options options, TenantOptions tenant) {
  options.executor = executor_;
  options.governor = governor_;
  if (options.prefetch_subsets == 0) {
    options.prefetch_subsets = options_.prefetch_subsets;
  }
  if (options.max_records_in_flight == 0) {
    options.max_records_in_flight = options_.max_records_in_flight > 0
                                        ? options_.max_records_in_flight
                                        : options_.record_budget;
  }
  options.tenant_weight = tenant.weight;
  options.tenant_deadline = tenant.deadline;
  options.idle_reclaim_rounds =
      tenant.idle_reclaim_rounds.value_or(options_.idle_reclaim_rounds);
  size_t ordinal = streams_created_.fetch_add(1) + 1;
  std::string name = tenant.name.empty()
                         ? "tenant-" + std::to_string(ordinal)
                         : std::move(tenant.name);
  auto stream = std::make_unique<pool_internal::PooledStream>(
      std::move(options), registry_);
  registry_->Add(stream.get(), std::move(name), tenant.weight,
                 tenant.deadline);
  return stream;
}

StreamPool::Snapshot StreamPool::Stats() const {
  Snapshot snap;
  {
    std::lock_guard<std::mutex> lock(registry_->mu);
    snap.tenants.reserve(registry_->entries.size());
    for (const auto& entry : registry_->entries) {
      snap.tenants.push_back({entry.name, entry.weight, entry.deadline,
                              entry.stream->stats()});
    }
  }
  snap.governor = governor_->snapshot();
  snap.executor = {executor_->threads(), executor_->tasks_run(),
                   executor_->dispatch_rounds(), executor_->tenants()};
  snap.streams_created = streams_created_.load();
  return snap;
}

}  // namespace bgps
