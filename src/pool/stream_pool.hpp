// StreamPool — the multi-tenant service layer (runtime layer).
//
// The paper positions BGPStream as a framework that many concurrent
// consumers run on top of: monitoring plugins, timely analyses, live
// dashboards (§4–6). With per-stream pipelines, N tenants means N×
// decode threads and N× worst-case buffer memory. A StreamPool owns the
// two shared resources instead — one core::Executor (fixed worker pool,
// per-tenant FIFO queues, round-robin dispatch) and one
// core::MemoryGovernor (hard process-wide cap on buffered records,
// demand-driven leases) — and vends BgpStream handles wired to them.
//
//   auto pool = bgps::StreamPool::Create({.threads = 4,
//                                         .record_budget = 4096});
//   auto monitor = (*pool)->CreateStream();   // tenant 1
//   auto dashboard = (*pool)->CreateStream(); // tenant 2 ... tenant K
//   // configure + Start() + NextRecord() each handle as usual,
//   // from any thread (one thread per stream).
//
// Every vended stream emits exactly the record/elem sequence it would
// with a private pipeline — the pool only changes *where* decode work
// runs and *who* accounts the buffers. Streams may outlive the pool
// (they share ownership of the Executor/Governor), but the intended
// shape is pool-owns-lifetime.
#pragma once

#include <atomic>
#include <memory>

#include "core/stream.hpp"

namespace bgps {

class StreamPool {
 public:
  struct Options {
    // Shared decode workers serving every vended stream.
    size_t threads = 4;
    // Hard cap on chunked-decode records buffered in RAM across all
    // vended streams together (the MemoryGovernor capacity).
    size_t record_budget = 4096;
    // Defaults applied by CreateStream when the caller's own options
    // leave the knobs unset (0):
    size_t prefetch_subsets = 3;       // decode-ahead depth per stream
    size_t max_records_in_flight = 0;  // per-subset split; 0 = record_budget
  };

  // Validates the options; error on a zero thread count, budget, or
  // prefetch depth (a pool of never-running streams).
  static Result<std::unique_ptr<StreamPool>> Create(Options options);

  StreamPool(const StreamPool&) = delete;
  StreamPool& operator=(const StreamPool&) = delete;

  // Vends a stream wired to the shared Executor and MemoryGovernor.
  // `options` may pre-set any BgpStream knob; executor/governor are
  // overwritten with the pool's, and prefetch_subsets /
  // max_records_in_flight fall back to the pool defaults when 0. The
  // handle is configured, started, and consumed exactly like a
  // standalone BgpStream; destroying it detaches the tenant.
  // Thread-safe.
  std::unique_ptr<core::BgpStream> CreateStream(
      core::BgpStream::Options options = {}) ;

  const std::shared_ptr<core::Executor>& executor() const {
    return executor_;
  }
  const std::shared_ptr<core::MemoryGovernor>& governor() const {
    return governor_;
  }

  size_t threads() const { return options_.threads; }
  size_t record_budget() const { return options_.record_budget; }
  // Streams vended so far (not necessarily still alive).
  size_t streams_created() const { return streams_created_.load(); }
  // Governor passthroughs: the live and high-watermark counts of
  // buffered records across all tenants.
  size_t records_in_use() const { return governor_->in_use(); }
  size_t max_records_in_use() const { return governor_->max_in_use(); }

 private:
  explicit StreamPool(Options options);

  Options options_;
  std::shared_ptr<core::Executor> executor_;
  std::shared_ptr<core::MemoryGovernor> governor_;
  std::atomic<size_t> streams_created_{0};
};

}  // namespace bgps
