// StreamPool — the multi-tenant service layer (runtime layer).
//
// The paper positions BGPStream as a framework that many concurrent
// consumers run on top of: monitoring plugins, timely analyses, live
// dashboards (§4–6). With per-stream pipelines, N tenants means N×
// decode threads and N× worst-case buffer memory. A StreamPool owns the
// two shared resources instead — one core::Executor (fixed worker pool,
// per-tenant FIFO queues, deficit-weighted round-robin dispatch) and
// one core::MemoryGovernor (hard process-wide cap on buffered records,
// demand-driven leases) — and vends BgpStream handles wired to them.
//
//   auto pool = bgps::StreamPool::Create({.threads = 4,
//                                         .record_budget = 4096});
//   auto monitor = (*pool)->CreateStream(
//       {}, {.weight = 4, .name = "live-monitor"});   // priority tenant
//   auto backfill = (*pool)->CreateStream();          // weight-1 tenant
//   // configure + Start() + NextRecord() each handle as usual,
//   // from any thread (one thread per stream).
//
// Operability: Stats() returns a snapshot of every live tenant (queue
// depth, tasks executed, files decoded, records buffered, reclaims)
// plus the governor ledger and executor counters — the introspection a
// multi-tenant service needs. Options::idle_reclaim_rounds (or the
// per-tenant override) bounds the damage a paused consumer can do: its
// parked buffers are dropped and re-decoded on resume, so one stalled
// tenant cannot pin the shared budget.
//
// Every vended stream emits exactly the record/elem sequence it would
// with a private pipeline — the pool only changes *where* decode work
// runs and *who* accounts the buffers. Streams may outlive the pool
// (they share ownership of the Executor/Governor), but the intended
// shape is pool-owns-lifetime.
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/stream.hpp"

namespace bgps {

namespace pool_internal {
struct TenantRegistry;  // live vended streams, for Stats()
}  // namespace pool_internal

class StreamPool {
 public:
  struct Options {
    // Shared decode workers serving every vended stream.
    size_t threads = 4;
    // Hard cap on chunked-decode records buffered in RAM across all
    // vended streams together (the MemoryGovernor capacity).
    size_t record_budget = 4096;
    // Defaults applied by CreateStream when the caller's own options
    // leave the knobs unset (0):
    size_t prefetch_subsets = 3;       // decode-ahead depth per stream
    size_t max_records_in_flight = 0;  // per-subset split; 0 = record_budget
    // Default idle-tenant reclaim threshold, in executor dispatch
    // rounds, applied to vended streams (TenantOptions can override
    // per tenant). 0 = paused consumers keep their buffers forever.
    size_t idle_reclaim_rounds = 0;
  };

  // Per-tenant scheduling identity for CreateStream.
  struct TenantOptions {
    // Tasks this tenant's decode queue drains per dispatch visit,
    // relative to other tenants (deficit-weighted round-robin). Must be
    // >= 1 — a vended stream's Start() rejects 0 with an exact message.
    size_t weight = 1;
    // Deadline-class dispatch: this tenant's decode tasks drain
    // earliest-enqueued-first across every same-weight deadline tenant,
    // instead of strict cursor order — for live monitors whose record
    // latency should track load, not round-robin position. Output is
    // identical either way.
    bool deadline = false;
    // Display name in Stats(); empty = "tenant-<n>".
    std::string name;
    // Per-tenant override of Options::idle_reclaim_rounds (nullopt =
    // use the pool default; 0 = never reclaim this tenant).
    std::optional<size_t> idle_reclaim_rounds;
  };

  // Lock-consistent introspection snapshot (see Stats()). The
  // per-tenant and governor sections reuse the owning components' own
  // stats structs rather than mirroring their fields.
  struct Snapshot {
    struct Tenant {
      std::string name;
      size_t weight = 0;
      bool deadline = false;
      // queue_depth, tasks_executed, files_decoded, records_buffered,
      // records_emitted, reclaims.
      core::BgpStream::RuntimeStats stats;
    };
    struct Executor {
      size_t threads = 0;
      size_t tasks_run = 0;
      size_t dispatch_rounds = 0;
      size_t tenants = 0;
    };
    std::vector<Tenant> tenants;  // live vended streams, creation order
    core::MemoryGovernor::Stats governor;
    Executor executor;
    size_t streams_created = 0;
  };

  // Validates the options; error on a zero thread count, budget, or
  // prefetch depth (a pool of never-running streams).
  static Result<std::unique_ptr<StreamPool>> Create(Options options);

  StreamPool(const StreamPool&) = delete;
  StreamPool& operator=(const StreamPool&) = delete;

  // Vends a stream wired to the shared Executor and MemoryGovernor.
  // `options` may pre-set any BgpStream knob; executor/governor are
  // overwritten with the pool's, and prefetch_subsets /
  // max_records_in_flight fall back to the pool defaults when 0.
  // `tenant` names and weights the stream's executor queue for
  // scheduling and Stats(). The handle is configured, started, and
  // consumed exactly like a standalone BgpStream; destroying it
  // detaches the tenant and drops it from Stats(). Thread-safe.
  // (Overloads instead of a `TenantOptions tenant = {}` default
  // argument: the nested struct's member initializers are not parsed
  // yet at this point of the enclosing class.)
  std::unique_ptr<core::BgpStream> CreateStream(
      core::BgpStream::Options options, TenantOptions tenant);
  std::unique_ptr<core::BgpStream> CreateStream(
      core::BgpStream::Options options = {}) {
    return CreateStream(std::move(options), TenantOptions{});
  }

  // Snapshot of every live tenant plus the governor ledger and
  // executor counters. Each component is read under one acquisition of
  // its own lock (values are internally consistent); components are
  // not frozen against each other, so cross-component sums may be
  // skewed by in-flight work. Thread-safe, any time.
  Snapshot Stats() const;

  const std::shared_ptr<core::Executor>& executor() const {
    return executor_;
  }
  const std::shared_ptr<core::MemoryGovernor>& governor() const {
    return governor_;
  }

  size_t threads() const { return options_.threads; }
  size_t record_budget() const { return options_.record_budget; }
  // Streams vended so far (not necessarily still alive).
  size_t streams_created() const { return streams_created_.load(); }
  // Governor passthroughs: the live and high-watermark counts of
  // buffered records across all tenants.
  size_t records_in_use() const { return governor_->in_use(); }
  size_t max_records_in_use() const { return governor_->max_in_use(); }

 private:
  explicit StreamPool(Options options);

  Options options_;
  std::shared_ptr<core::Executor> executor_;
  std::shared_ptr<core::MemoryGovernor> governor_;
  std::shared_ptr<pool_internal::TenantRegistry> registry_;
  std::atomic<size_t> streams_created_{0};
};

}  // namespace bgps
