#include "reader/ascii.hpp"

#include <ostream>

namespace bgps::reader {
namespace {

std::string ElemTypeWord(core::ElemType t) {
  switch (t) {
    case core::ElemType::RibEntry: return "R";
    case core::ElemType::Announcement: return "A";
    case core::ElemType::Withdrawal: return "W";
    case core::ElemType::PeerState: return "S";
  }
  return "?";
}

}  // namespace

std::string FormatElem(const core::Record& record, const core::Elem& elem,
                       OutputFormat format) {
  std::string out;
  if (format == OutputFormat::Bgpdump) {
    // bgpdump -m: TYPE|ts|A/W/B|peer-ip|peer-asn|prefix|path|origin|
    //             next-hop|localpref|med|communities|agg|aggregator|
    const char* table = record.dump_type == core::DumpType::Rib ? "TABLE_DUMP2"
                                                                : "BGP4MP";
    out += table;
    out += '|';
    out += std::to_string(elem.time);
    out += '|';
    switch (elem.type) {
      case core::ElemType::RibEntry: out += 'B'; break;
      case core::ElemType::Announcement: out += 'A'; break;
      case core::ElemType::Withdrawal: out += 'W'; break;
      case core::ElemType::PeerState: out += "STATE"; break;
    }
    out += '|';
    out += elem.peer_address.ToString();
    out += '|';
    out += std::to_string(elem.peer_asn);
    out += '|';
    if (elem.type == core::ElemType::PeerState) {
      out += bgp::FsmStateName(elem.old_state);
      out += '|';
      out += bgp::FsmStateName(elem.new_state);
      return out;
    }
    out += elem.prefix.ToString();
    if (elem.type == core::ElemType::Withdrawal) return out;
    out += '|';
    out += elem.as_path.ToString();
    out += "|IGP|";
    out += elem.next_hop.ToString();
    out += "|0|0|";
    out += bgp::CommunitiesToString(elem.communities);
    out += "|NAG||";
    return out;
  }

  // Native format.
  out += ElemTypeWord(elem.type);
  out += '|';
  out += std::to_string(elem.time);
  out += '|';
  out += record.project;
  out += '|';
  out += record.collector;
  out += '|';
  out += std::to_string(elem.peer_asn);
  out += '|';
  out += elem.peer_address.ToString();
  out += '|';
  if (elem.has_prefix()) out += elem.prefix.ToString();
  out += '|';
  if (elem.type == core::ElemType::RibEntry ||
      elem.type == core::ElemType::Announcement) {
    out += elem.next_hop.ToString();
    out += '|';
    out += elem.as_path.ToString();
    out += '|';
    out += bgp::CommunitiesToString(elem.communities);
  } else {
    out += "||";
  }
  out += '|';
  if (elem.type == core::ElemType::PeerState) {
    out += bgp::FsmStateName(elem.old_state);
    out += '|';
    out += bgp::FsmStateName(elem.new_state);
  } else {
    out += '|';
  }
  return out;
}

std::string FormatRecord(const core::Record& record) {
  std::string out;
  out += std::to_string(record.timestamp);
  out += '|';
  out += record.project;
  out += '|';
  out += record.collector;
  out += '|';
  out += broker::DumpTypeName(record.dump_type);
  out += '|';
  out += core::RecordStatusName(record.status);
  out += '|';
  out += core::DumpPositionName(record.position);
  return out;
}

size_t RunBgpReader(core::BgpStream& stream, std::ostream& out,
                    const BgpReaderOptions& options) {
  size_t printed = 0;
  while (auto rec = stream.NextRecord()) {
    if (options.show_records) out << FormatRecord(*rec) << '\n';
    for (const auto& elem : stream.Elems(*rec)) {
      out << FormatElem(*rec, elem, options.format) << '\n';
      ++printed;
      if (options.max_elems != 0 && printed >= options.max_elems)
        return printed;
    }
  }
  return printed;
}

}  // namespace bgps::reader
