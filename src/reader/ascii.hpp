// BGPReader — ASCII rendering of records and elems (paper §4.1).
//
// BGPReader is the drop-in replacement for the bgpdump CLI: it renders a
// (sorted, multi-collector, filtered) stream as pipe-separated lines, and
// a compatibility mode emits the exact field layout of `bgpdump -m`.
#pragma once

#include <iosfwd>

#include "core/stream.hpp"

namespace bgps::reader {

enum class OutputFormat {
  BgpReader,  // native: provenance-rich lines
  Bgpdump,    // bgpdump -m compatible field layout
};

// Native elem line:
//   <R|A|W|S>|<ts>|<project>|<collector>|<peer-asn>|<peer-ip>|<prefix>|
//   <next-hop>|<as-path>|<communities>|<old-state>|<new-state>
std::string FormatElem(const core::Record& record, const core::Elem& elem,
                       OutputFormat format);

// Record header line (used with --show-records):
//   <ts>|<project>|<collector>|<ribs|updates>|<status>|<dump-pos>
std::string FormatRecord(const core::Record& record);

// Drives a configured stream and prints matching elems to `out`.
// Returns the number of elems printed.
struct BgpReaderOptions {
  OutputFormat format = OutputFormat::BgpReader;
  bool show_records = false;  // also print one line per record
  size_t max_elems = 0;       // stop after this many elems (0 = unlimited)
};

size_t RunBgpReader(core::BgpStream& stream, std::ostream& out,
                    const BgpReaderOptions& options = {});

}  // namespace bgps::reader
