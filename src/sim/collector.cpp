#include "sim/collector.hpp"

#include <algorithm>
#include <filesystem>

#include "broker/archive.hpp"
#include "mrt/encode.hpp"

namespace fs = std::filesystem;

namespace bgps::sim {

IpAddress VpAddressFor(Asn asn) {
  // 10.x.y.1 with x.y derived from the ASN: unique per AS in our range.
  return IpAddress::V4(10, uint8_t(asn >> 8), uint8_t(asn), 1);
}

IpAddress VpAddressV6For(Asn asn) {
  std::array<uint8_t, 16> b{};
  b[0] = 0x20;
  b[1] = 0x01;
  b[2] = 0x0d;
  b[3] = 0xb8;
  b[4] = uint8_t(asn >> 8);
  b[5] = uint8_t(asn);
  b[15] = 1;
  return IpAddress::V6(b);
}

CollectorSim::CollectorSim(CollectorConfig config, std::string archive_root,
                           uint64_t seed)
    : config_(std::move(config)),
      archive_root_(std::move(archive_root)),
      rng_(seed) {
  for (size_t i = 0; i < config_.vps.size(); ++i)
    vp_index_[config_.vps[i].asn] = i;
}

const VpSpec* CollectorSim::Find(Asn vp) const {
  auto it = vp_index_.find(vp);
  return it == vp_index_.end() ? nullptr : &config_.vps[it->second];
}

std::optional<Route> CollectorSim::ExportFor(
    const VpSpec& vp, const std::optional<Route>& route) const {
  if (!route) return std::nullopt;
  if (!vp.full_feed && route->source != RouteSource::Origin &&
      route->source != RouteSource::Customer)
    return std::nullopt;
  return route;
}

void CollectorSim::BufferUpdate(Timestamp t, const VpSpec& vp,
                                const Prefix& prefix,
                                const std::optional<Route>& route) {
  if (config_.update_loss_probability > 0 &&
      std::uniform_real_distribution<>(0, 1)(rng_) <
          config_.update_loss_probability) {
    ++updates_lost_;
    return;
  }
  mrt::Bgp4mpMessage msg;
  msg.peer_asn = vp.asn;
  msg.local_asn = config_.collector_asn;
  msg.peer_address = vp.address;
  msg.local_address = config_.collector_address;

  if (!route) {
    // Withdrawal.
    if (prefix.family() == IpFamily::V4) {
      msg.update.withdrawn.push_back(prefix);
    } else {
      bgp::MpUnreach mp;
      mp.withdrawn.push_back(prefix);
      msg.update.attrs.mp_unreach = std::move(mp);
    }
  } else {
    // Announcement: the VP prepends itself when exporting to the collector.
    std::vector<Asn> path;
    path.reserve(route->path.size() + 1);
    path.push_back(vp.asn);
    path.insert(path.end(), route->path.begin(), route->path.end());
    msg.update.attrs.as_path = bgp::AsPath::Sequence(std::move(path));
    msg.update.attrs.origin = bgp::Origin::Igp;
    msg.update.attrs.communities = route->communities;
    if (prefix.family() == IpFamily::V4) {
      msg.update.attrs.next_hop = vp.address;
      msg.update.announced.push_back(prefix);
    } else {
      bgp::MpReach mp;
      mp.next_hop = VpAddressV6For(vp.asn);
      mp.nlri.push_back(prefix);
      msg.update.attrs.mp_reach = std::move(mp);
    }
  }
  pending_.push_back({t, mrt::EncodeBgp4mpUpdate(t, msg, config_.asn_encoding)});
  ++total_messages_;
}

void CollectorSim::OnDelta(Timestamp t, const VpDelta& delta) {
  const VpSpec* vp = Find(delta.vp);
  if (vp == nullptr || down_.count(delta.vp)) return;
  auto before = ExportFor(*vp, delta.before);
  auto after = ExportFor(*vp, delta.after);
  if (before == after) return;  // invisible through this VP's feed policy
  BufferUpdate(t, *vp, delta.prefix, after);
}

void CollectorSim::VpDown(Timestamp t, Asn vp_asn, bool silent) {
  const VpSpec* vp = Find(vp_asn);
  if (vp == nullptr || down_.count(vp_asn)) return;
  down_.insert(vp_asn);
  if (config_.state_messages && !silent) {
    mrt::Bgp4mpStateChange sc;
    sc.peer_asn = vp_asn;
    sc.local_asn = config_.collector_asn;
    sc.peer_address = vp->address;
    sc.local_address = config_.collector_address;
    sc.old_state = bgp::FsmState::Established;
    sc.new_state = bgp::FsmState::Idle;
    pending_.push_back(
        {t, mrt::EncodeBgp4mpStateChange(t, sc, config_.asn_encoding)});
  }
}

void CollectorSim::VpUp(Timestamp t, Asn vp_asn, const World& world) {
  const VpSpec* vp = Find(vp_asn);
  if (vp == nullptr || !down_.count(vp_asn)) return;
  down_.erase(vp_asn);
  if (config_.state_messages) {
    mrt::Bgp4mpStateChange sc;
    sc.peer_asn = vp_asn;
    sc.local_asn = config_.collector_asn;
    sc.peer_address = vp->address;
    sc.local_address = config_.collector_address;
    sc.old_state = bgp::FsmState::OpenConfirm;
    sc.new_state = bgp::FsmState::Established;
    pending_.push_back(
        {t, mrt::EncodeBgp4mpStateChange(t, sc, config_.asn_encoding)});
  }
  // Session re-establishment: the VP re-advertises its full table.
  for (const auto& [prefix, route] : world.ExportedTable(vp_asn, vp->full_feed))
    BufferUpdate(t, *vp, prefix, route);
}

std::string CollectorSim::DumpPath(broker::DumpType type, Timestamp start,
                                   Timestamp duration,
                                   Timestamp delay) const {
  fs::path dir = fs::path(archive_root_) / config_.project / config_.name /
                 broker::DumpTypeName(type);
  std::error_code ec;
  fs::create_directories(dir, ec);
  return (dir / broker::ArchiveFileName(start, duration, delay)).string();
}

Status CollectorSim::WriteRib(Timestamp t, const World& world) {
  Timestamp delay = config_.publish_delay;
  if (config_.publish_jitter > 0)
    delay += Timestamp(rng_() % uint64_t(config_.publish_jitter));
  mrt::MrtFileWriter writer;
  BGPS_RETURN_IF_ERROR(
      writer.Open(DumpPath(broker::DumpType::Rib, t, config_.rib_period, delay)));

  // Peer index table lists every configured VP (down ones simply have no
  // entries in the body, like a real collector).
  mrt::PeerIndexTable pit;
  pit.collector_bgp_id = uint32_t(config_.collector_asn);
  pit.view_name = config_.name;
  for (const auto& vp : config_.vps)
    pit.peers.push_back({uint32_t(vp.asn), vp.address, vp.asn});
  BGPS_RETURN_IF_ERROR(
      writer.Write(mrt::EncodePeerIndexTable(t, pit, config_.asn_encoding)));

  // One RIB record per announced prefix with at least one live-VP route.
  // All records carry the snapshot instant `t`: the dumped content is the
  // collector's state at t, so a later timestamp would fabricate the
  // "collector applied updates after assigning the dump timestamp"
  // anomaly the paper blames for (rare) RT mismatches (§6.2.1). That
  // anomaly is exercised separately in the RT unit tests (event E2).
  uint32_t seq = 0;
  size_t written = 0;
  for (const auto& [prefix, _] : world.announced()) {
    mrt::RibPrefix rib;
    rib.prefix = prefix;
    rib.sequence = seq;
    Timestamp record_time = t;
    for (size_t i = 0; i < config_.vps.size(); ++i) {
      const auto& vp = config_.vps[i];
      if (down_.count(vp.asn)) continue;
      auto route = world.ExportedRoute(vp.asn, prefix, vp.full_feed);
      if (!route) continue;
      mrt::RibEntry entry;
      entry.peer_index = uint16_t(i);
      entry.originated_time = record_time;
      std::vector<Asn> path;
      path.push_back(vp.asn);
      path.insert(path.end(), route->path.begin(), route->path.end());
      entry.attrs.as_path = bgp::AsPath::Sequence(std::move(path));
      entry.attrs.communities = route->communities;
      if (prefix.family() == IpFamily::V4) {
        entry.attrs.next_hop = vp.address;
      } else {
        bgp::MpReach mp;
        mp.next_hop = VpAddressV6For(vp.asn);
        entry.attrs.mp_reach = std::move(mp);
      }
      rib.entries.push_back(std::move(entry));
    }
    if (rib.entries.empty()) continue;
    ++seq;
    ++written;
    BGPS_RETURN_IF_ERROR(
        writer.Write(mrt::EncodeRibPrefix(record_time, rib, prefix.family())));
  }
  ++ribs_written_;
  return writer.Close();
}

Status CollectorSim::FlushUpdates(Timestamp window_start) {
  Timestamp delay = config_.publish_delay;
  if (config_.publish_jitter > 0)
    delay += Timestamp(rng_() % uint64_t(config_.publish_jitter));
  const Timestamp window_end = window_start + config_.update_period;

  std::stable_sort(pending_.begin(), pending_.end(),
                   [](const PendingRecord& a, const PendingRecord& b) {
                     return a.time < b.time;
                   });
  // Records in [window_start, window_end) go into this dump.
  size_t count = 0;
  while (count < pending_.size() && pending_[count].time < window_end) ++count;

  mrt::MrtFileWriter writer;
  BGPS_RETURN_IF_ERROR(writer.Open(DumpPath(
      broker::DumpType::Updates, window_start, config_.update_period, delay)));

  // Corruption injection: truncate the dump mid-record with the configured
  // probability (exercises the Corrupt record path end-to-end).
  bool corrupt = config_.corrupt_probability > 0 &&
                 std::uniform_real_distribution<>(0, 1)(rng_) <
                     config_.corrupt_probability &&
                 count > 0;
  if (corrupt) {
    Bytes blob;
    for (size_t i = 0; i < count; ++i)
      blob.insert(blob.end(), pending_[i].encoded.begin(),
                  pending_[i].encoded.end());
    size_t cut = blob.size() - std::min<size_t>(blob.size() / 2 + 1,
                                                1 + rng_() % 32);
    blob.resize(std::max<size_t>(cut, mrt::kMrtHeaderSize + 1));
    BGPS_RETURN_IF_ERROR(writer.WriteRaw(blob));
  } else {
    for (size_t i = 0; i < count; ++i)
      BGPS_RETURN_IF_ERROR(writer.Write(pending_[i].encoded));
  }
  pending_.erase(pending_.begin(), pending_.begin() + long(count));
  ++updates_written_;
  return writer.Close();
}

}  // namespace bgps::sim
