// Route-collector emulation: the stand-in for RouteViews / RIPE RIS
// collector hosts (paper §2, Figure 1).
//
// A CollectorSim maintains BGP sessions with its VPs, buffers the update
// messages implied by world deltas, and periodically dumps:
//   * RIB dumps   — a TABLE_DUMP_V2 snapshot of all VP Adj-RIB-out tables
//                   (every 2 h RouteViews-style, 8 h RIS-style);
//   * Updates dumps — the BGP4MP messages received in the last window
//                   (15 min RouteViews-style, 5 min RIS-style).
// RIS-style collectors also dump session state changes; RouteViews-style
// ones do not (the exact asymmetry behind the paper's §6.2.1 accuracy
// numbers).
#pragma once

#include <random>

#include "bgp/attrs.hpp"
#include "broker/archive.hpp"
#include "mrt/file.hpp"
#include "sim/world.hpp"

namespace bgps::sim {

struct VpSpec {
  Asn asn = 0;
  IpAddress address;     // IPv4 session address
  bool full_feed = true; // partial feeds export own+customer routes only
};

struct CollectorConfig {
  std::string project;   // "routeviews" | "ris"
  std::string name;      // e.g. "route-views2", "rrc00"
  std::vector<VpSpec> vps;
  Timestamp rib_period = 2 * 3600;
  Timestamp update_period = 15 * 60;
  bool state_messages = false;      // RIS dumps session FSM transitions
  Timestamp publish_delay = 120;    // seconds after dump end until visible
  Timestamp publish_jitter = 0;     // uniform extra delay (live realism)
  double corrupt_probability = 0.0; // chance an updates dump is truncated
  // Probability that an individual update message is lost in the
  // collection pipeline (unresponsive VPs / dropped messages). The paper
  // attributes RouteViews' higher RT error (1e-5 vs RIS 1e-8) mostly to
  // such VPs; RIB dumps still carry the fresh state, so each lost message
  // becomes a shadow-vs-main mismatch at the next RIB.
  double update_loss_probability = 0.0;
  Asn collector_asn = 64512;
  IpAddress collector_address = IpAddress::V4(192, 0, 2, 1);
  // ASN width of the BGP4MP records this collector writes (MESSAGE_AS4 /
  // STATE_CHANGE_AS4 vs their 2-byte variants; >16-bit ASNs become
  // AS_TRANS under TwoByte). TABLE_DUMP_V2 RIB attributes are always
  // 4-byte per RFC 6396, independent of this knob.
  bgp::AsnEncoding asn_encoding = bgp::AsnEncoding::FourByte;
};

// Deterministic VP session address for an AS.
IpAddress VpAddressFor(Asn asn);
IpAddress VpAddressV6For(Asn asn);

class CollectorSim {
 public:
  CollectorSim(CollectorConfig config, std::string archive_root,
               uint64_t seed);

  const CollectorConfig& config() const { return config_; }

  bool monitors(Asn vp) const { return vp_index_.count(vp) != 0; }
  bool vp_is_down(Asn vp) const { return down_.count(vp) != 0; }

  // Feeds one world delta (timestamped `t`) into the VP's session buffer.
  // Applies the VP's feed policy; ignores VPs not monitored or down.
  void OnDelta(Timestamp t, const VpDelta& delta);

  // Session control. `silent` models a VP that stops talking without a
  // NOTIFICATION (RouteViews-style staleness). On Up, the VP re-announces
  // its full exported table (drawn from `world`).
  void VpDown(Timestamp t, Asn vp, bool silent);
  void VpUp(Timestamp t, Asn vp, const World& world);

  // Dump writers. WriteRib snapshots all live VPs' exported tables.
  Status WriteRib(Timestamp t, const World& world);
  // Flushes buffered updates with timestamp in [window_start,
  // window_start + update_period) into one updates dump file.
  Status FlushUpdates(Timestamp window_start);

  size_t ribs_written() const { return ribs_written_; }
  size_t updates_files_written() const { return updates_written_; }
  size_t update_messages_buffered() const { return total_messages_; }
  size_t updates_lost() const { return updates_lost_; }

 private:
  struct PendingRecord {
    Timestamp time;
    Bytes encoded;
  };

  std::optional<Route> ExportFor(const VpSpec& vp,
                                 const std::optional<Route>& route) const;
  void BufferUpdate(Timestamp t, const VpSpec& vp, const Prefix& prefix,
                    const std::optional<Route>& route);
  std::string DumpPath(broker::DumpType type, Timestamp start,
                       Timestamp duration, Timestamp delay) const;
  const VpSpec* Find(Asn vp) const;

  CollectorConfig config_;
  std::string archive_root_;
  std::unordered_map<Asn, size_t> vp_index_;  // ASN -> index in config_.vps
  std::set<Asn> down_;
  std::vector<PendingRecord> pending_;  // kept sorted by time on flush
  std::mt19937_64 rng_;
  size_t ribs_written_ = 0;
  size_t updates_written_ = 0;
  size_t total_messages_ = 0;
  size_t updates_lost_ = 0;
};

}  // namespace bgps::sim
