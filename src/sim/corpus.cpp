#include "sim/corpus.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>

#include "broker/archive.hpp"
#include "mrt/encode.hpp"
#include "mrt/file.hpp"

namespace fs = std::filesystem;

namespace bgps::sim {
namespace {

// First `count` stub ASes (ascending ASN) that originate at least one
// IPv4 prefix — deterministic scenario actors.
std::vector<Asn> PickStubs(const Topology& topo, size_t count) {
  std::vector<Asn> out;
  for (Asn asn : topo.asns_sorted()) {
    const AsNode& node = topo.node(asn);
    if (node.tier != AsTier::Stub || node.prefixes.empty()) continue;
    out.push_back(asn);
    if (out.size() == count) break;
  }
  return out;
}

std::vector<Asn> PickTransits(const Topology& topo, size_t count) {
  std::vector<Asn> out;
  for (Asn asn : topo.asns_sorted()) {
    if (topo.node(asn).tier != AsTier::Transit) continue;
    out.push_back(asn);
    if (out.size() == count) break;
  }
  return out;
}

}  // namespace

const std::vector<std::string>& CorpusScenarioNames() {
  static const std::vector<std::string> names = {
      "baseline", "flap",        "hijack", "leak",
      "outage",   "reset-storm", "rtbh",   "mixed"};
  return names;
}

Result<CorpusStats> GenerateCorpus(const CorpusOptions& options,
                                   const std::string& root) {
  const std::string& name = options.scenario;
  const auto& known = CorpusScenarioNames();
  if (std::find(known.begin(), known.end(), name) == known.end()) {
    std::string all;
    for (const auto& n : known) {
      if (!all.empty()) all += ", ";
      all += n;
    }
    return InvalidArgument("unknown corpus scenario '" + name +
                           "' (expected one of: " + all + ")");
  }

  fs::remove_all(root);

  StandardSimOptions sim_opts;
  sim_opts.topo = options.topo;
  sim_opts.topo.seed = options.seed * 1009 + 1;
  sim_opts.rv_collectors = options.rv_collectors;
  sim_opts.ris_collectors = options.ris_collectors;
  sim_opts.vps_per_collector = options.vps_per_collector;
  sim_opts.partial_feed_fraction = options.partial_feed_fraction;
  sim_opts.publish_delay = 0;
  sim_opts.asn_encoding = options.asn_encoding;
  sim_opts.seed = options.seed;
  auto driver = MakeStandardSim(sim_opts, root);

  const Topology& topo = driver->topology();
  CorpusStats stats;
  stats.start = options.start != 0
                    ? options.start
                    : TimestampFromYmdHms(2016, 1, 1, 0, 0, 0);
  stats.end = stats.start + options.duration;
  const Timestamp start = stats.start, end = stats.end;
  const Timestamp span = options.duration;

  // Scenario composition. Generator registration order is part of the
  // corpus definition: it fixes the RNG draw order and the event-queue
  // tie-break, hence the bytes on disk.
  std::set<Prefix> avoid;

  if (name == "hijack" || name == "mixed") {
    auto stubs = PickStubs(topo, 2);
    if (stubs.size() == 2) {
      HijackGenerator gen;
      gen.victim = stubs[0];
      gen.attacker = stubs[1];
      gen.prefixes = topo.node(stubs[0]).prefixes;
      for (int w = 0; w < 3; ++w) {
        Timestamp t0 = start + span * (2 * w + 1) / 8;
        Timestamp t1 = t0 + span / 10;
        if (t1 < end) gen.windows.emplace_back(t0, t1);
      }
      driver->AddGenerator(gen);
      for (const auto& p : gen.prefixes) avoid.insert(p);
    }
  }

  if (name == "leak" || name == "mixed") {
    auto transits = PickTransits(topo, 1);
    if (!transits.empty()) {
      RouteLeakGenerator gen;
      gen.leaker = transits[0];
      gen.start = start + span / 4;
      gen.end = start + span / 2;
      gen.max_prefixes = 40;
      driver->AddGenerator(gen);
    }
  }

  if (name == "outage") {
    CountryOutageGenerator gen;
    gen.isps = PickTransits(topo, 3);
    Timestamp t0 = start + span / 4;
    gen.windows.emplace_back(t0, t0 + span / 4);
    std::set<Prefix> cone = ConePrefixes(topo, gen.isps);
    avoid.insert(cone.begin(), cone.end());
    driver->AddGenerator(gen);
  }

  if (name == "reset-storm" || name == "mixed") {
    SessionResetGenerator gen;
    gen.vps = driver->all_vps();
    gen.start = start + span / 8;
    gen.end = end - span / 8;
    gen.resets = int(gen.vps.size()) * (name == "mixed" ? 2 : 4);
    driver->AddGenerator(gen);
  }

  if (name == "rtbh" || name == "mixed") {
    auto victims = PickStubs(topo, 3);
    int i = 0;
    for (Asn victim : victims) {
      const AsNode& vnode = topo.node(victim);
      RtbhGenerator gen;
      gen.victim = victim;
      gen.target = Prefix(vnode.prefixes.front().address(), 32);
      for (Asn p : vnode.providers)
        gen.tags.push_back(bgp::Community(uint16_t(p), kBlackholeValue));
      gen.start = start + span * (i + 1) / 6;
      gen.end = gen.start + span / 8;
      driver->AddGenerator(gen);
      avoid.insert(gen.target);
      ++i;
    }
  }

  if (name == "flap") {
    auto stubs = PickStubs(topo, 1);
    if (!stubs.empty()) {
      FlapOscillationGenerator gen;
      gen.prefix = topo.node(stubs[0]).prefixes.front();
      gen.origin = stubs[0];
      gen.start = start + span / 16;
      gen.last = end - span / 16;
      gen.period = std::max<Timestamp>(60, span / 16);
      gen.downtime = std::max<Timestamp>(30, span / 64);
      driver->AddGenerator(gen);
      avoid.insert(gen.prefix);
    }
  }

  // Background churn everywhere ("baseline" is nothing but this).
  double churn = options.flaps_per_hour;
  if (name == "baseline") churn = std::min(churn, 200.0);
  driver->AddFlapNoise(start, end, churn, 120, avoid);

  BGPS_RETURN_IF_ERROR(driver->Run(start, end));

  for (const auto& c : driver->collectors()) {
    stats.rib_dumps += c.ribs_written();
    stats.updates_dumps += c.updates_files_written();
    stats.update_messages += c.update_messages_buffered();
  }
  broker::ArchiveIndex index(root);
  BGPS_RETURN_IF_ERROR(index.Rescan());
  stats.files = index.files().size();
  return stats;
}

// --------------------------------------------------------------------------
// Synthetic million-prefix RIB archive.
// --------------------------------------------------------------------------
namespace {

// Everything that defines the corpus bytes, one token per option — the
// marker file's cache key.
std::string SyntheticSignature(const SyntheticRibOptions& o) {
  std::ostringstream sig;
  sig << "v1 " << o.project << ' ' << o.collector << ' ' << o.prefixes << ' '
      << o.vps << ' ' << o.extra_entry_probability << ' ' << o.start << ' '
      << o.update_windows << ' ' << o.update_period << ' ' << o.churn_fraction
      << ' ' << o.final_rib << ' ' << o.seed;
  return sig.str();
}

std::string SyntheticMarkerPath(const std::string& root) {
  return (fs::path(root) / "synthetic_rib.meta").string();
}

Prefix SyntheticPrefix(size_t i) {
  // Unique /24s from 1.0.0.0 upward — room for ~16.6M before wrapping.
  return Prefix(IpAddress::V4(uint32_t(0x01000000u + i * 256u)), 24);
}

}  // namespace

Result<SyntheticRibStats> GenerateSyntheticRib(
    const SyntheticRibOptions& options, const std::string& root) {
  if (options.prefixes == 0) return InvalidArgument("prefixes must be > 0");
  if (options.vps < 1 || options.vps > 256)
    return InvalidArgument("vps must be in [1, 256]");
  if (options.update_windows < 0)
    return InvalidArgument("update_windows must be >= 0");
  fs::remove_all(root);

  const size_t n_prefixes = options.prefixes;
  const size_t n_vps = size_t(options.vps);
  const Timestamp start = options.start != 0
                              ? options.start
                              : TimestampFromYmdHms(2016, 1, 1, 0, 0, 0);
  const Timestamp period = std::max<Timestamp>(1, options.update_period);
  const Timestamp final_t = start + Timestamp(options.update_windows) * period;
  std::mt19937_64 rng(options.seed * 6364136223846793005ull + 1442695040888963407ull);

  // A pooled set of AS paths (without the VP hop) keeps the generator's
  // memory at one uint32 per (prefix, VP) cell instead of a full path.
  constexpr size_t kPathPool = 1024;
  std::vector<std::vector<Asn>> pool(kPathPool);
  for (auto& path : pool) {
    size_t hops = 2 + rng() % 3;
    path.reserve(hops);
    for (size_t h = 0; h < hops; ++h) path.push_back(Asn(1000 + rng() % 63000));
  }

  std::vector<Asn> vp_asns(n_vps);
  std::vector<IpAddress> vp_addrs(n_vps);
  for (size_t v = 0; v < n_vps; ++v) {
    vp_asns[v] = Asn(65001 + v);
    vp_addrs[v] = IpAddress::V4(0xC0000200u + uint32_t(v) + 1);  // 192.0.2.x
  }

  // Current collector state, cell (p, v) at p * n_vps + v.
  std::vector<uint8_t> announced(n_prefixes * n_vps, 0);
  std::vector<uint32_t> path_id(n_prefixes * n_vps, 0);
  for (size_t p = 0; p < n_prefixes; ++p) {
    for (size_t v = 0; v < n_vps; ++v) {
      bool primary = v == p % n_vps;
      bool carried =
          primary || (options.extra_entry_probability > 0 &&
                      double(rng() % 1000000) / 1000000.0 <
                          options.extra_entry_probability);
      size_t cell = p * n_vps + v;
      announced[cell] = carried ? 1 : 0;
      path_id[cell] = uint32_t(rng() % kPathPool);
    }
  }

  SyntheticRibStats stats;
  stats.start = start;
  stats.end = final_t + (options.final_rib ? period : 0);

  auto dump_path = [&](broker::DumpType type, Timestamp t,
                       Timestamp duration) {
    fs::path dir = fs::path(root) / options.project / options.collector /
                   broker::DumpTypeName(type);
    std::error_code ec;
    fs::create_directories(dir, ec);
    return (dir / broker::ArchiveFileName(t, duration, 0)).string();
  };

  auto entry_attrs = [&](size_t v, uint32_t pid) {
    bgp::PathAttributes attrs;
    std::vector<Asn> path;
    path.reserve(1 + pool[pid].size());
    path.push_back(vp_asns[v]);
    path.insert(path.end(), pool[pid].begin(), pool[pid].end());
    attrs.as_path = bgp::AsPath::Sequence(std::move(path));
    attrs.next_hop = vp_addrs[v];
    return attrs;
  };

  auto write_rib = [&](Timestamp t) -> Status {
    mrt::MrtFileWriter writer;
    Timestamp rib_span = options.update_windows > 0
                             ? Timestamp(options.update_windows) * period
                             : period;
    BGPS_RETURN_IF_ERROR(
        writer.Open(dump_path(broker::DumpType::Rib, t, rib_span)));
    mrt::PeerIndexTable pit;
    pit.collector_bgp_id = 64512;
    pit.view_name = options.collector;
    for (size_t v = 0; v < n_vps; ++v)
      pit.peers.push_back({uint32_t(vp_asns[v]), vp_addrs[v], vp_asns[v]});
    BGPS_RETURN_IF_ERROR(writer.Write(mrt::EncodePeerIndexTable(t, pit)));
    uint32_t seq = 0;
    for (size_t p = 0; p < n_prefixes; ++p) {
      mrt::RibPrefix rib;
      rib.prefix = SyntheticPrefix(p);
      for (size_t v = 0; v < n_vps; ++v) {
        size_t cell = p * n_vps + v;
        if (!announced[cell]) continue;
        mrt::RibEntry entry;
        entry.peer_index = uint16_t(v);
        entry.originated_time = t;
        entry.attrs = entry_attrs(v, path_id[cell]);
        rib.entries.push_back(std::move(entry));
      }
      if (rib.entries.empty()) continue;
      rib.sequence = seq++;
      ++stats.rib_entries;
      stats.rib_entries += rib.entries.size() - 1;
      BGPS_RETURN_IF_ERROR(
          writer.Write(mrt::EncodeRibPrefix(t, rib, rib.prefix.family())));
    }
    return writer.Close();
  };

  BGPS_RETURN_IF_ERROR(write_rib(start));

  const IpAddress collector_addr = IpAddress::V4(0xC00002FEu);  // 192.0.2.254
  size_t churn_per_window = size_t(double(n_prefixes) * options.churn_fraction);
  for (int w = 0; w < options.update_windows; ++w) {
    Timestamp wstart = start + Timestamp(w) * period;
    mrt::MrtFileWriter writer;
    BGPS_RETURN_IF_ERROR(
        writer.Open(dump_path(broker::DumpType::Updates, wstart, period)));
    for (size_t e = 0; e < churn_per_window; ++e) {
      // Strictly inside (wstart, wstart + period), ascending — records
      // land pre-sorted and never tie with the RIB records at `start`.
      Timestamp t =
          wstart + Timestamp((uint64_t(e) + 1) * uint64_t(period) /
                             (uint64_t(churn_per_window) + 1));
      size_t p = rng() % n_prefixes;
      size_t v = p % n_vps;  // churn the primary VP's cell
      size_t cell = p * n_vps + v;
      mrt::Bgp4mpMessage msg;
      msg.peer_asn = vp_asns[v];
      msg.local_asn = 64512;
      msg.peer_address = vp_addrs[v];
      msg.local_address = collector_addr;
      msg.message_type = bgp::MessageType::Update;
      bool withdraw = announced[cell] && rng() % 100 < 30;
      if (withdraw) {
        announced[cell] = 0;
        msg.update.withdrawn.push_back(SyntheticPrefix(p));
      } else {
        announced[cell] = 1;
        path_id[cell] = uint32_t(rng() % kPathPool);
        msg.update.announced.push_back(SyntheticPrefix(p));
        msg.update.attrs = entry_attrs(v, path_id[cell]);
      }
      ++stats.update_messages;
      BGPS_RETURN_IF_ERROR(writer.Write(mrt::EncodeBgp4mpUpdate(t, msg)));
    }
    BGPS_RETURN_IF_ERROR(writer.Close());
  }

  if (options.final_rib) BGPS_RETURN_IF_ERROR(write_rib(final_t));

  broker::ArchiveIndex index(root);
  BGPS_RETURN_IF_ERROR(index.Rescan());
  stats.files = index.files().size();

  std::ofstream marker(SyntheticMarkerPath(root));
  marker << SyntheticSignature(options) << '\n'
         << stats.start << ' ' << stats.end << ' ' << stats.rib_entries << ' '
         << stats.update_messages << ' ' << stats.files << '\n';
  if (!marker) return IoError("cannot write synthetic corpus marker");
  return stats;
}

Result<SyntheticRibStats> EnsureSyntheticRib(const SyntheticRibOptions& options,
                                             const std::string& root) {
  std::ifstream marker(SyntheticMarkerPath(root));
  if (marker) {
    std::string signature;
    SyntheticRibStats stats;
    if (std::getline(marker, signature) &&
        signature == SyntheticSignature(options) &&
        (marker >> stats.start >> stats.end >> stats.rib_entries >>
         stats.update_messages >> stats.files)) {
      return stats;
    }
  }
  return GenerateSyntheticRib(options, root);
}

}  // namespace bgps::sim
