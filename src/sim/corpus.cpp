#include "sim/corpus.hpp"

#include <algorithm>
#include <filesystem>

#include "broker/archive.hpp"

namespace fs = std::filesystem;

namespace bgps::sim {
namespace {

// First `count` stub ASes (ascending ASN) that originate at least one
// IPv4 prefix — deterministic scenario actors.
std::vector<Asn> PickStubs(const Topology& topo, size_t count) {
  std::vector<Asn> out;
  for (Asn asn : topo.asns_sorted()) {
    const AsNode& node = topo.node(asn);
    if (node.tier != AsTier::Stub || node.prefixes.empty()) continue;
    out.push_back(asn);
    if (out.size() == count) break;
  }
  return out;
}

std::vector<Asn> PickTransits(const Topology& topo, size_t count) {
  std::vector<Asn> out;
  for (Asn asn : topo.asns_sorted()) {
    if (topo.node(asn).tier != AsTier::Transit) continue;
    out.push_back(asn);
    if (out.size() == count) break;
  }
  return out;
}

}  // namespace

const std::vector<std::string>& CorpusScenarioNames() {
  static const std::vector<std::string> names = {
      "baseline", "flap",        "hijack", "leak",
      "outage",   "reset-storm", "rtbh",   "mixed"};
  return names;
}

Result<CorpusStats> GenerateCorpus(const CorpusOptions& options,
                                   const std::string& root) {
  const std::string& name = options.scenario;
  const auto& known = CorpusScenarioNames();
  if (std::find(known.begin(), known.end(), name) == known.end()) {
    std::string all;
    for (const auto& n : known) {
      if (!all.empty()) all += ", ";
      all += n;
    }
    return InvalidArgument("unknown corpus scenario '" + name +
                           "' (expected one of: " + all + ")");
  }

  fs::remove_all(root);

  StandardSimOptions sim_opts;
  sim_opts.topo = options.topo;
  sim_opts.topo.seed = options.seed * 1009 + 1;
  sim_opts.rv_collectors = options.rv_collectors;
  sim_opts.ris_collectors = options.ris_collectors;
  sim_opts.vps_per_collector = options.vps_per_collector;
  sim_opts.partial_feed_fraction = options.partial_feed_fraction;
  sim_opts.publish_delay = 0;
  sim_opts.asn_encoding = options.asn_encoding;
  sim_opts.seed = options.seed;
  auto driver = MakeStandardSim(sim_opts, root);

  const Topology& topo = driver->topology();
  CorpusStats stats;
  stats.start = options.start != 0
                    ? options.start
                    : TimestampFromYmdHms(2016, 1, 1, 0, 0, 0);
  stats.end = stats.start + options.duration;
  const Timestamp start = stats.start, end = stats.end;
  const Timestamp span = options.duration;

  // Scenario composition. Generator registration order is part of the
  // corpus definition: it fixes the RNG draw order and the event-queue
  // tie-break, hence the bytes on disk.
  std::set<Prefix> avoid;

  if (name == "hijack" || name == "mixed") {
    auto stubs = PickStubs(topo, 2);
    if (stubs.size() == 2) {
      HijackGenerator gen;
      gen.victim = stubs[0];
      gen.attacker = stubs[1];
      gen.prefixes = topo.node(stubs[0]).prefixes;
      for (int w = 0; w < 3; ++w) {
        Timestamp t0 = start + span * (2 * w + 1) / 8;
        Timestamp t1 = t0 + span / 10;
        if (t1 < end) gen.windows.emplace_back(t0, t1);
      }
      driver->AddGenerator(gen);
      for (const auto& p : gen.prefixes) avoid.insert(p);
    }
  }

  if (name == "leak" || name == "mixed") {
    auto transits = PickTransits(topo, 1);
    if (!transits.empty()) {
      RouteLeakGenerator gen;
      gen.leaker = transits[0];
      gen.start = start + span / 4;
      gen.end = start + span / 2;
      gen.max_prefixes = 40;
      driver->AddGenerator(gen);
    }
  }

  if (name == "outage") {
    CountryOutageGenerator gen;
    gen.isps = PickTransits(topo, 3);
    Timestamp t0 = start + span / 4;
    gen.windows.emplace_back(t0, t0 + span / 4);
    std::set<Prefix> cone = ConePrefixes(topo, gen.isps);
    avoid.insert(cone.begin(), cone.end());
    driver->AddGenerator(gen);
  }

  if (name == "reset-storm" || name == "mixed") {
    SessionResetGenerator gen;
    gen.vps = driver->all_vps();
    gen.start = start + span / 8;
    gen.end = end - span / 8;
    gen.resets = int(gen.vps.size()) * (name == "mixed" ? 2 : 4);
    driver->AddGenerator(gen);
  }

  if (name == "rtbh" || name == "mixed") {
    auto victims = PickStubs(topo, 3);
    int i = 0;
    for (Asn victim : victims) {
      const AsNode& vnode = topo.node(victim);
      RtbhGenerator gen;
      gen.victim = victim;
      gen.target = Prefix(vnode.prefixes.front().address(), 32);
      for (Asn p : vnode.providers)
        gen.tags.push_back(bgp::Community(uint16_t(p), kBlackholeValue));
      gen.start = start + span * (i + 1) / 6;
      gen.end = gen.start + span / 8;
      driver->AddGenerator(gen);
      avoid.insert(gen.target);
      ++i;
    }
  }

  if (name == "flap") {
    auto stubs = PickStubs(topo, 1);
    if (!stubs.empty()) {
      FlapOscillationGenerator gen;
      gen.prefix = topo.node(stubs[0]).prefixes.front();
      gen.origin = stubs[0];
      gen.start = start + span / 16;
      gen.last = end - span / 16;
      gen.period = std::max<Timestamp>(60, span / 16);
      gen.downtime = std::max<Timestamp>(30, span / 64);
      driver->AddGenerator(gen);
      avoid.insert(gen.prefix);
    }
  }

  // Background churn everywhere ("baseline" is nothing but this).
  double churn = options.flaps_per_hour;
  if (name == "baseline") churn = std::min(churn, 200.0);
  driver->AddFlapNoise(start, end, churn, 120, avoid);

  BGPS_RETURN_IF_ERROR(driver->Run(start, end));

  for (const auto& c : driver->collectors()) {
    stats.rib_dumps += c.ribs_written();
    stats.updates_dumps += c.updates_files_written();
    stats.update_messages += c.update_messages_buffered();
  }
  broker::ArchiveIndex index(root);
  BGPS_RETURN_IF_ERROR(index.Rescan());
  stats.files = index.files().size();
  return stats;
}

}  // namespace bgps::sim
