// Seeded corpus generation: one call that builds a topology, composes
// event generators for a named scenario, runs the driver and leaves a
// real multi-file MRT archive on disk. Shared by the bgpsim CLI, the
// stress tests and the generated-corpus benches — all three must agree
// on what "the corpus for (scenario, seed)" means, and replaying the
// same options must yield byte-identical files.
#pragma once

#include <string>
#include <vector>

#include "sim/scenario.hpp"

namespace bgps::sim {

struct CorpusOptions {
  // One of CorpusScenarioNames():
  //   baseline    announce-all plus light background churn
  //   flap        heavy churn plus a deterministic oscillating prefix
  //   hijack      MOAS hijack windows over a victim stub's prefixes
  //   leak        a transit re-originates foreign prefixes for a window
  //   outage      country-style outage of transit cones
  //   reset-storm VP sessions bounce (some silently)
  //   rtbh        blackhole /32 announcements with provider communities
  //   mixed       hijack + leak + reset-storm + rtbh over shared churn
  std::string scenario = "mixed";

  // Small-but-real topology by default: big enough for distinct VP
  // views, small enough that route propagation stays fast.
  TopologyConfig topo = [] {
    TopologyConfig t;
    t.num_tier1 = 4;
    t.num_transit = 12;
    t.num_stub = 40;
    return t;
  }();
  int rv_collectors = 1;
  int ris_collectors = 1;
  int vps_per_collector = 5;
  double partial_feed_fraction = 0.3;

  Timestamp start = 0;  // 0 => 2016-01-01 00:00:00 UTC
  Timestamp duration = 2 * 3600;
  double flaps_per_hour = 2000.0;

  bgp::AsnEncoding asn_encoding = bgp::AsnEncoding::FourByte;
  uint64_t seed = 1;
};

struct CorpusStats {
  Timestamp start = 0;
  Timestamp end = 0;
  size_t rib_dumps = 0;
  size_t updates_dumps = 0;
  size_t update_messages = 0;  // BGP4MP messages buffered across collectors
  size_t files = 0;            // MRT files on disk under the root
};

const std::vector<std::string>& CorpusScenarioNames();

// Wipes `root`, generates the archive, returns its stats.
// InvalidArgument for an unknown scenario name.
Result<CorpusStats> GenerateCorpus(const CorpusOptions& options,
                                   const std::string& root);

}  // namespace bgps::sim
