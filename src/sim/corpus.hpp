// Seeded corpus generation: one call that builds a topology, composes
// event generators for a named scenario, runs the driver and leaves a
// real multi-file MRT archive on disk. Shared by the bgpsim CLI, the
// stress tests and the generated-corpus benches — all three must agree
// on what "the corpus for (scenario, seed)" means, and replaying the
// same options must yield byte-identical files.
#pragma once

#include <string>
#include <vector>

#include "sim/scenario.hpp"

namespace bgps::sim {

struct CorpusOptions {
  // One of CorpusScenarioNames():
  //   baseline    announce-all plus light background churn
  //   flap        heavy churn plus a deterministic oscillating prefix
  //   hijack      MOAS hijack windows over a victim stub's prefixes
  //   leak        a transit re-originates foreign prefixes for a window
  //   outage      country-style outage of transit cones
  //   reset-storm VP sessions bounce (some silently)
  //   rtbh        blackhole /32 announcements with provider communities
  //   mixed       hijack + leak + reset-storm + rtbh over shared churn
  std::string scenario = "mixed";

  // Small-but-real topology by default: big enough for distinct VP
  // views, small enough that route propagation stays fast.
  TopologyConfig topo = [] {
    TopologyConfig t;
    t.num_tier1 = 4;
    t.num_transit = 12;
    t.num_stub = 40;
    return t;
  }();
  int rv_collectors = 1;
  int ris_collectors = 1;
  int vps_per_collector = 5;
  double partial_feed_fraction = 0.3;

  Timestamp start = 0;  // 0 => 2016-01-01 00:00:00 UTC
  Timestamp duration = 2 * 3600;
  double flaps_per_hour = 2000.0;

  bgp::AsnEncoding asn_encoding = bgp::AsnEncoding::FourByte;
  uint64_t seed = 1;
};

struct CorpusStats {
  Timestamp start = 0;
  Timestamp end = 0;
  size_t rib_dumps = 0;
  size_t updates_dumps = 0;
  size_t update_messages = 0;  // BGP4MP messages buffered across collectors
  size_t files = 0;            // MRT files on disk under the root
};

const std::vector<std::string>& CorpusScenarioNames();

// Wipes `root`, generates the archive, returns its stats.
// InvalidArgument for an unknown scenario name.
Result<CorpusStats> GenerateCorpus(const CorpusOptions& options,
                                   const std::string& root);

// Synthetic million-prefix RIB archive (sharded-analytics scale tier).
//
// The scenario corpus above routes everything through the full routing
// World, which keeps a per-prefix route map over all ASes — perfect for
// behavioral fidelity, hopeless at 10^6 prefixes. This generator writes
// the archive directly with the MRT encode layer instead: one collector,
// a RIB dump over `prefixes` unique IPv4 /24s (each carried by its
// primary VP plus each other VP with `extra_entry_probability`), then
// `update_windows` updates dumps of seeded churn, then (optionally) a
// closing RIB dump reflecting the churned state — so RoutingTables'
// §6.2.1 compare/merge path runs at full scale too. Deterministic per
// options: replaying the same options yields byte-identical files.
struct SyntheticRibOptions {
  std::string project = "routeviews";
  std::string collector = "mega";
  size_t prefixes = 1'000'000;
  int vps = 4;
  double extra_entry_probability = 0.25;
  Timestamp start = 0;  // 0 => 2016-01-01 00:00:00 UTC
  int update_windows = 4;
  Timestamp update_period = 900;
  // Fraction of prefixes touched per window (announce with a new path or
  // withdraw, on the prefix's primary VP).
  double churn_fraction = 0.01;
  bool final_rib = true;
  uint64_t seed = 1;
};

struct SyntheticRibStats {
  Timestamp start = 0;
  Timestamp end = 0;  // end of the covered interval (last window / final RIB)
  size_t rib_entries = 0;       // RIB entries across all RIB dumps
  size_t update_messages = 0;   // BGP4MP messages across all windows
  size_t files = 0;
};

// Wipes `root` and writes the synthetic archive.
Result<SyntheticRibStats> GenerateSyntheticRib(const SyntheticRibOptions& options,
                                               const std::string& root);

// Lazily-built variant for benches and stress tests: generates only when
// `root` does not already hold an archive built from identical options
// (recorded in a marker file), so the ~1M-record corpus is paid for once
// per machine, not once per run.
Result<SyntheticRibStats> EnsureSyntheticRib(const SyntheticRibOptions& options,
                                             const std::string& root);

}  // namespace bgps::sim
