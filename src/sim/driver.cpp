#include "sim/driver.hpp"

#include <algorithm>

namespace bgps::sim {

SimDriver::SimDriver(Topology topo, std::string archive_root, uint64_t seed)
    : topo_(std::move(topo)),
      world_(&topo_),
      archive_root_(std::move(archive_root)),
      rng_(seed) {}

CollectorSim& SimDriver::AddCollector(CollectorConfig config) {
  collectors_.emplace_back(std::move(config), archive_root_, rng_());
  return collectors_.back();
}

std::vector<Asn> SimDriver::all_vps() const {
  std::set<Asn> set;
  for (const auto& c : collectors_) {
    for (const auto& vp : c.config().vps) set.insert(vp.asn);
  }
  return {set.begin(), set.end()};
}

void SimDriver::AddFlapNoise(Timestamp start, Timestamp end,
                             double flaps_per_hour, Timestamp mean_downtime,
                             const std::set<Prefix>& avoid) {
  // Candidate prefixes: static topology origins not in the avoid set.
  std::vector<std::pair<Asn, Prefix>> candidates;
  for (const auto& [asn, prefix] : topo_.all_origins()) {
    if (!avoid.count(prefix)) candidates.emplace_back(asn, prefix);
  }
  if (candidates.empty() || flaps_per_hour <= 0) return;

  const double mean_gap = 3600.0 / flaps_per_hour;
  std::exponential_distribution<double> gap(1.0 / mean_gap);
  std::exponential_distribution<double> down(1.0 / double(mean_downtime));
  double t = double(start) + gap(rng_);
  while (t < double(end)) {
    const auto& [asn, prefix] = candidates[rng_() % candidates.size()];
    Timestamp td = Timestamp(t);
    Timestamp tu = td + std::max<Timestamp>(1, Timestamp(down(rng_)));
    AddEvent(SimEvent::WithdrawAt(td, prefix));
    if (tu < end) {
      AddEvent(SimEvent::Announce(tu, prefix, {OriginSpec{asn, {}}}));
    }
    t += gap(rng_);
  }
}

void SimDriver::Apply(const SimEvent& event) {
  switch (event.kind) {
    case SimEvent::Kind::SetOrigins:
    case SimEvent::Kind::Withdraw: {
      auto origins = event.kind == SimEvent::Kind::Withdraw
                         ? std::vector<OriginSpec>{}
                         : event.origins;
      auto deltas = world_.SetOrigins(event.prefix, std::move(origins),
                                      all_vps());
      for (auto& c : collectors_) {
        for (const auto& d : deltas) c.OnDelta(event.time, d);
      }
      break;
    }
    case SimEvent::Kind::VpDown:
      for (auto& c : collectors_) c.VpDown(event.time, event.vp, event.silent);
      break;
    case SimEvent::Kind::VpUp:
      for (auto& c : collectors_) c.VpUp(event.time, event.vp, world_);
      break;
  }
}

Status SimDriver::Run(Timestamp start, Timestamp end) {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const SimEvent& a, const SimEvent& b) {
                     return a.time < b.time;
                   });

  struct Schedule {
    Timestamp next_rib;
    Timestamp next_flush;  // flushes the window ending at this time
  };
  std::vector<Schedule> sched;
  sched.reserve(collectors_.size());
  for (const auto& c : collectors_) {
    sched.push_back(
        {start, start + c.config().update_period});
  }

  size_t ei = 0;
  while (true) {
    // Next dump boundary across all collectors.
    Timestamp tb = end;
    for (const auto& s : sched)
      tb = std::min({tb, s.next_rib, s.next_flush});

    // Apply all events up to and including the boundary instant, so a RIB
    // dump written at tb reflects events that fired exactly at tb (their
    // update messages carry timestamp tb and land in the *next* updates
    // window, which FlushUpdates selects by timestamp).
    while (ei < events_.size() && events_[ei].time <= tb) Apply(events_[ei++]);

    if (tb >= end) break;

    for (size_t i = 0; i < collectors_.size(); ++i) {
      auto& c = collectors_[i];
      auto& s = sched[i];
      if (s.next_rib == tb) {
        BGPS_RETURN_IF_ERROR(c.WriteRib(tb, world_));
        s.next_rib += c.config().rib_period;
      }
      if (s.next_flush == tb) {
        BGPS_RETURN_IF_ERROR(
            c.FlushUpdates(tb - c.config().update_period));
        s.next_flush += c.config().update_period;
      }
    }
  }

  // Final partial flush so trailing messages are not lost.
  for (size_t i = 0; i < collectors_.size(); ++i) {
    auto& c = collectors_[i];
    Timestamp last_window = sched[i].next_flush - c.config().update_period;
    if (last_window < end) {
      BGPS_RETURN_IF_ERROR(c.FlushUpdates(last_window));
    }
  }
  return OkStatus();
}

}  // namespace bgps::sim
