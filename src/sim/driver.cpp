#include "sim/driver.hpp"

#include <algorithm>

namespace bgps::sim {

SimDriver::SimDriver(Topology topo, std::string archive_root, uint64_t seed)
    : topo_(std::move(topo)),
      world_(&topo_),
      archive_root_(std::move(archive_root)),
      rng_(seed) {}

CollectorSim& SimDriver::AddCollector(CollectorConfig config) {
  collectors_.emplace_back(std::move(config), archive_root_, rng_());
  return collectors_.back();
}

std::vector<Asn> SimDriver::all_vps() const {
  std::set<Asn> set;
  for (const auto& c : collectors_) {
    for (const auto& vp : c.config().vps) set.insert(vp.asn);
  }
  return {set.begin(), set.end()};
}

void SimDriver::AddFlapNoise(Timestamp start, Timestamp end,
                             double flaps_per_hour, Timestamp mean_downtime,
                             const std::set<Prefix>& avoid) {
  FlapNoiseGenerator gen;
  gen.start = start;
  gen.end = end;
  gen.flaps_per_hour = flaps_per_hour;
  gen.mean_downtime = mean_downtime;
  gen.avoid = avoid;
  AddGenerator(gen);
}

void SimDriver::Apply(const SimEvent& event) {
  switch (event.kind) {
    case SimEvent::Kind::SetOrigins:
    case SimEvent::Kind::Withdraw: {
      auto origins = event.kind == SimEvent::Kind::Withdraw
                         ? std::vector<OriginSpec>{}
                         : event.origins;
      auto deltas = world_.SetOrigins(event.prefix, std::move(origins),
                                      all_vps());
      for (auto& c : collectors_) {
        for (const auto& d : deltas) c.OnDelta(event.time, d);
      }
      break;
    }
    case SimEvent::Kind::VpDown:
      for (auto& c : collectors_) c.VpDown(event.time, event.vp, event.silent);
      break;
    case SimEvent::Kind::VpUp:
      for (auto& c : collectors_) c.VpUp(event.time, event.vp, world_);
      break;
  }
}

Status SimDriver::Run(Timestamp start, Timestamp end) {
  struct Schedule {
    Timestamp next_rib;
    Timestamp next_flush;  // flushes the window ending at this time
  };
  std::vector<Schedule> sched;
  sched.reserve(collectors_.size());
  for (const auto& c : collectors_) {
    sched.push_back(
        {start, start + c.config().update_period});
  }

  while (true) {
    // Next dump boundary across all collectors.
    Timestamp tb = end;
    for (const auto& s : sched)
      tb = std::min({tb, s.next_rib, s.next_flush});

    // Apply all events up to and including the boundary instant, so a RIB
    // dump written at tb reflects events that fired exactly at tb (their
    // update messages carry timestamp tb and land in the *next* updates
    // window, which FlushUpdates selects by timestamp). Events are
    // popped destructively, so a later Run() segment never re-fires them.
    while (!queue_.empty() && queue_.next_time() <= tb) Apply(queue_.Pop());

    if (tb >= end) break;

    for (size_t i = 0; i < collectors_.size(); ++i) {
      auto& c = collectors_[i];
      auto& s = sched[i];
      if (s.next_rib == tb) {
        BGPS_RETURN_IF_ERROR(c.WriteRib(tb, world_));
        s.next_rib += c.config().rib_period;
      }
      if (s.next_flush == tb) {
        BGPS_RETURN_IF_ERROR(
            c.FlushUpdates(tb - c.config().update_period));
        s.next_flush += c.config().update_period;
      }
    }
  }

  // Final partial flush so trailing messages are not lost.
  for (size_t i = 0; i < collectors_.size(); ++i) {
    auto& c = collectors_[i];
    Timestamp last_window = sched[i].next_flush - c.config().update_period;
    if (last_window < end) {
      BGPS_RETURN_IF_ERROR(c.FlushUpdates(last_window));
    }
  }
  return OkStatus();
}

}  // namespace bgps::sim
