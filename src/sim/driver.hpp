// SimDriver: runs a scripted timeline against the World and makes the
// collectors dump MRT files into an archive — the complete stand-in for
// "the Internet + RouteViews + RIPE RIS" that the rest of the stack
// consumes through the Broker.
#pragma once

#include <deque>

#include "sim/collector.hpp"

namespace bgps::sim {

struct SimEvent {
  enum class Kind { SetOrigins, Withdraw, VpDown, VpUp };

  Timestamp time = 0;
  Kind kind = Kind::SetOrigins;
  // SetOrigins / Withdraw:
  Prefix prefix;
  std::vector<OriginSpec> origins;
  // VpDown / VpUp:
  Asn vp = 0;
  bool silent = false;  // down without a state message (RouteViews-style)

  static SimEvent Announce(Timestamp t, const Prefix& p,
                           std::vector<OriginSpec> origins) {
    SimEvent e;
    e.time = t;
    e.kind = Kind::SetOrigins;
    e.prefix = p;
    e.origins = std::move(origins);
    return e;
  }
  static SimEvent WithdrawAt(Timestamp t, const Prefix& p) {
    SimEvent e;
    e.time = t;
    e.kind = Kind::Withdraw;
    e.prefix = p;
    return e;
  }
  static SimEvent Down(Timestamp t, Asn vp, bool silent) {
    SimEvent e;
    e.time = t;
    e.kind = Kind::VpDown;
    e.vp = vp;
    e.silent = silent;
    return e;
  }
  static SimEvent Up(Timestamp t, Asn vp) {
    SimEvent e;
    e.time = t;
    e.kind = Kind::VpUp;
    e.vp = vp;
    return e;
  }
};

class SimDriver {
 public:
  SimDriver(Topology topo, std::string archive_root, uint64_t seed = 1);

  const Topology& topology() const { return topo_; }
  World& world() { return world_; }
  const std::string& archive_root() const { return archive_root_; }

  CollectorSim& AddCollector(CollectorConfig config);
  std::deque<CollectorSim>& collectors() { return collectors_; }

  void AddEvent(SimEvent event) { events_.push_back(std::move(event)); }

  // Schedules background churn: random announced prefixes flap (withdraw,
  // then re-announce after `mean_downtime`), `flaps_per_hour` on average
  // across the whole table. Prefixes in `avoid` are left alone so scripted
  // events keep a clean signal.
  void AddFlapNoise(Timestamp start, Timestamp end, double flaps_per_hour,
                    Timestamp mean_downtime = 120,
                    const std::set<Prefix>& avoid = {});

  // Executes the timeline over [start, end): applies events in time order
  // and triggers each collector's periodic RIB / updates dumps. Call after
  // world().AnnounceAll() (or manual announcements).
  Status Run(Timestamp start, Timestamp end);

  // Union of all collectors' VP ASNs (deltas are computed for these).
  std::vector<Asn> all_vps() const;

 private:
  void Apply(const SimEvent& event);

  Topology topo_;
  World world_;
  std::string archive_root_;
  std::deque<CollectorSim> collectors_;
  std::vector<SimEvent> events_;
  std::mt19937_64 rng_;
};

}  // namespace bgps::sim
