// SimDriver: runs a scripted timeline against the World and makes the
// collectors dump MRT files into an archive — the complete stand-in for
// "the Internet + RouteViews + RIPE RIS" that the rest of the stack
// consumes through the Broker.
//
// The timeline is a discrete-event queue (sim/event.hpp) populated
// either with raw SimEvents or by composable EventGenerators
// (sim/generators.hpp). Generators draw from the driver's seeded RNG in
// registration order, so a given (seed, generator sequence) replays to
// a byte-identical archive.
#pragma once

#include <deque>

#include "sim/collector.hpp"
#include "sim/event.hpp"
#include "sim/generators.hpp"

namespace bgps::sim {

class SimDriver {
 public:
  SimDriver(Topology topo, std::string archive_root, uint64_t seed = 1);

  const Topology& topology() const { return topo_; }
  World& world() { return world_; }
  const std::string& archive_root() const { return archive_root_; }

  CollectorSim& AddCollector(CollectorConfig config);
  std::deque<CollectorSim>& collectors() { return collectors_; }

  void AddEvent(SimEvent event) { queue_.Push(std::move(event)); }

  // Expands `generator` into the event queue using the driver's RNG.
  void AddGenerator(const EventGenerator& generator) {
    generator.Generate(topo_, rng_, queue_);
  }

  // Schedules background churn: random announced prefixes flap (withdraw,
  // then re-announce after `mean_downtime`), `flaps_per_hour` on average
  // across the whole table. Prefixes in `avoid` are left alone so scripted
  // events keep a clean signal. (Thin wrapper over FlapNoiseGenerator.)
  void AddFlapNoise(Timestamp start, Timestamp end, double flaps_per_hour,
                    Timestamp mean_downtime = 120,
                    const std::set<Prefix>& avoid = {});

  // Executes the timeline over [start, end): pops pending events in time
  // order and triggers each collector's periodic RIB / updates dumps.
  // Call after world().AnnounceAll() (or manual announcements). Events
  // are consumed — a later Run() segment continues where the previous
  // one stopped.
  Status Run(Timestamp start, Timestamp end);

  size_t pending_events() const { return queue_.size(); }

  // Union of all collectors' VP ASNs (deltas are computed for these).
  std::vector<Asn> all_vps() const;

 private:
  void Apply(const SimEvent& event);

  Topology topo_;
  World world_;
  std::string archive_root_;
  std::deque<CollectorSim> collectors_;
  EventQueue queue_;
  std::mt19937_64 rng_;
};

}  // namespace bgps::sim
