// Discrete-event core of the simulator.
//
// A SimEvent is one timestamped control-plane action (announce/withdraw
// a prefix, take a VP session down/up). The EventQueue orders them by
// (time, insertion sequence): events fire in timestamp order, and events
// sharing a timestamp fire in the order they were scheduled — the same
// semantics as a stable sort over the insertion order, so a scenario is
// reproducible no matter how its generators interleave their pushes.
#pragma once

#include <map>
#include <vector>

#include "sim/routing.hpp"
#include "util/time.hpp"

namespace bgps::sim {

struct SimEvent {
  enum class Kind { SetOrigins, Withdraw, VpDown, VpUp };

  Timestamp time = 0;
  Kind kind = Kind::SetOrigins;
  // SetOrigins / Withdraw:
  Prefix prefix;
  std::vector<OriginSpec> origins;
  // VpDown / VpUp:
  Asn vp = 0;
  bool silent = false;  // down without a state message (RouteViews-style)

  static SimEvent Announce(Timestamp t, const Prefix& p,
                           std::vector<OriginSpec> origins) {
    SimEvent e;
    e.time = t;
    e.kind = Kind::SetOrigins;
    e.prefix = p;
    e.origins = std::move(origins);
    return e;
  }
  static SimEvent WithdrawAt(Timestamp t, const Prefix& p) {
    SimEvent e;
    e.time = t;
    e.kind = Kind::Withdraw;
    e.prefix = p;
    return e;
  }
  static SimEvent Down(Timestamp t, Asn vp, bool silent) {
    SimEvent e;
    e.time = t;
    e.kind = Kind::VpDown;
    e.vp = vp;
    e.silent = silent;
    return e;
  }
  static SimEvent Up(Timestamp t, Asn vp) {
    SimEvent e;
    e.time = t;
    e.kind = Kind::VpUp;
    e.vp = vp;
    return e;
  }
};

// Deterministically ordered event queue. Pop() removes the earliest
// event; ties break by push order (a monotonic sequence number, never
// reused, so replaying the same pushes yields the same pops).
class EventQueue {
 public:
  void Push(SimEvent event) {
    Timestamp t = event.time;
    events_.emplace(std::make_pair(t, next_seq_++), std::move(event));
  }

  bool empty() const { return events_.empty(); }
  size_t size() const { return events_.size(); }

  // Timestamp of the earliest pending event. Requires !empty().
  Timestamp next_time() const { return events_.begin()->first.first; }

  // Removes and returns the earliest pending event. Requires !empty().
  SimEvent Pop() {
    auto it = events_.begin();
    SimEvent e = std::move(it->second);
    events_.erase(it);
    return e;
  }

 private:
  std::map<std::pair<Timestamp, uint64_t>, SimEvent> events_;
  uint64_t next_seq_ = 0;
};

}  // namespace bgps::sim
