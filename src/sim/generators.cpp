#include "sim/generators.hpp"

#include <algorithm>

namespace bgps::sim {

void FlapNoiseGenerator::Generate(const Topology& topo, std::mt19937_64& rng,
                                  EventQueue& queue) const {
  // Candidate prefixes: static topology origins not in the avoid set.
  std::vector<std::pair<Asn, Prefix>> candidates;
  for (const auto& [asn, prefix] : topo.all_origins()) {
    if (!avoid.count(prefix)) candidates.emplace_back(asn, prefix);
  }
  if (candidates.empty() || flaps_per_hour <= 0) return;

  const double mean_gap = 3600.0 / flaps_per_hour;
  std::exponential_distribution<double> gap(1.0 / mean_gap);
  std::exponential_distribution<double> down(1.0 / double(mean_downtime));
  double t = double(start) + gap(rng);
  while (t < double(end)) {
    const auto& [asn, prefix] = candidates[rng() % candidates.size()];
    Timestamp td = Timestamp(t);
    Timestamp tu = td + std::max<Timestamp>(1, Timestamp(down(rng)));
    queue.Push(SimEvent::WithdrawAt(td, prefix));
    if (tu < end) {
      queue.Push(SimEvent::Announce(tu, prefix, {OriginSpec{asn, {}}}));
    }
    t += gap(rng);
  }
}

void FlapOscillationGenerator::Generate(const Topology& /*topo*/,
                                        std::mt19937_64& /*rng*/,
                                        EventQueue& queue) const {
  for (Timestamp t = start; t < last; t += period) {
    queue.Push(SimEvent::WithdrawAt(t, prefix));
    queue.Push(
        SimEvent::Announce(t + downtime, prefix, {OriginSpec{origin, {}}}));
  }
}

void HijackGenerator::Generate(const Topology& /*topo*/,
                               std::mt19937_64& /*rng*/,
                               EventQueue& queue) const {
  for (const auto& [t0, t1] : windows) {
    for (const auto& p : prefixes) {
      queue.Push(SimEvent::Announce(
          t0, p, {OriginSpec{victim, {}}, OriginSpec{attacker, {}}}));
      queue.Push(SimEvent::Announce(t1, p, {OriginSpec{victim, {}}}));
    }
  }
}

void RouteLeakGenerator::Generate(const Topology& topo, std::mt19937_64& rng,
                                  EventQueue& queue) const {
  // Foreign prefixes only: a leaker re-exporting its own space is just an
  // announcement.
  std::vector<std::pair<Asn, Prefix>> foreign;
  for (const auto& [asn, prefix] : topo.all_origins()) {
    if (asn != leaker) foreign.emplace_back(asn, prefix);
  }
  if (foreign.empty() || max_prefixes == 0) return;

  // Draw a distinct sample; a bounded number of attempts keeps the draw
  // count (and thus the RNG stream) finite even when max_prefixes is
  // close to the pool size.
  std::set<Prefix> picked;
  std::vector<std::pair<Asn, Prefix>> leaked;
  size_t want = std::min(max_prefixes, foreign.size());
  for (size_t attempts = 0; leaked.size() < want && attempts < want * 8;
       ++attempts) {
    const auto& cand = foreign[rng() % foreign.size()];
    if (picked.insert(cand.second).second) leaked.push_back(cand);
  }
  for (const auto& [owner, prefix] : leaked) {
    queue.Push(SimEvent::Announce(
        start, prefix, {OriginSpec{owner, {}}, OriginSpec{leaker, {}}}));
    queue.Push(SimEvent::Announce(end, prefix, {OriginSpec{owner, {}}}));
  }
}

void CountryOutageGenerator::Generate(const Topology& topo,
                                      std::mt19937_64& /*rng*/,
                                      EventQueue& queue) const {
  std::set<Prefix> dark = ConePrefixes(topo, isps);
  for (const auto& [t0, t1] : windows) {
    for (const auto& p : dark) {
      queue.Push(SimEvent::WithdrawAt(t0, p));
    }
    // Restore: each prefix re-announced by its owner.
    for (Asn isp : isps) {
      std::vector<Asn> cone{isp};
      for (Asn c : topo.node(isp).customers) cone.push_back(c);
      for (Asn member : cone) {
        for (const auto& p : topo.node(member).prefixes) {
          queue.Push(SimEvent::Announce(t1, p, {OriginSpec{member, {}}}));
        }
      }
    }
  }
}

void SessionResetGenerator::Generate(const Topology& /*topo*/,
                                     std::mt19937_64& rng,
                                     EventQueue& queue) const {
  if (vps.empty() || resets <= 0 || end <= start) return;
  for (int i = 0; i < resets; ++i) {
    Asn vp = vps[rng() % vps.size()];
    Timestamp td = start + Timestamp(rng() % uint64_t(end - start));
    Timestamp tu =
        td + std::max<Timestamp>(1, Timestamp(rng() % uint64_t(
                                                  2 * mean_downtime + 1)));
    bool silent = double(rng() % 1000) < silent_fraction * 1000.0;
    queue.Push(SimEvent::Down(td, vp, silent));
    if (tu < end) queue.Push(SimEvent::Up(tu, vp));
  }
}

void RtbhGenerator::Generate(const Topology& /*topo*/,
                             std::mt19937_64& /*rng*/,
                             EventQueue& queue) const {
  bgp::Communities c = tags;
  queue.Push(SimEvent::Announce(start, target, {OriginSpec{victim, c}}));
  queue.Push(SimEvent::WithdrawAt(end, target));
}

std::set<Prefix> ConePrefixes(const Topology& topo,
                              const std::vector<Asn>& isps) {
  std::set<Prefix> prefixes;
  for (Asn isp : isps) {
    std::vector<Asn> cone{isp};
    for (Asn c : topo.node(isp).customers) cone.push_back(c);
    for (Asn member : cone) {
      for (const auto& p : topo.node(member).prefixes) prefixes.insert(p);
    }
  }
  return prefixes;
}

}  // namespace bgps::sim
