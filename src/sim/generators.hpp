// Composable event generators: scenarios as programs over events.
//
// A generator expands into SimEvents pushed onto an EventQueue. The
// driver owns the RNG and feeds the same stream to every generator in
// registration order, so a scenario built from N generators is exactly
// as deterministic as one hand-rolled event list: same seed, same
// generators, same order => identical event sequence => byte-identical
// MRT output. Generators compose by timestamp — two generators whose
// windows overlap simply interleave in the queue.
//
// The presets in presets.hpp are thin wrappers constructing these; the
// bgpsim CLI exposes them as named scenarios.
#pragma once

#include <random>
#include <set>

#include "sim/event.hpp"

namespace bgps::sim {

class EventGenerator {
 public:
  virtual ~EventGenerator() = default;

  // Expands this generator into `queue`. All randomness must come from
  // `rng` (the driver's seeded stream) so replay is deterministic.
  virtual void Generate(const Topology& topo, std::mt19937_64& rng,
                        EventQueue& queue) const = 0;
};

// Background churn: random announced prefixes flap (withdraw, then
// re-announce after ~mean_downtime), flaps_per_hour on average across
// the whole table. Prefixes in `avoid` are left alone so scripted
// events keep a clean signal.
struct FlapNoiseGenerator : EventGenerator {
  Timestamp start = 0;
  Timestamp end = 0;
  double flaps_per_hour = 0;
  Timestamp mean_downtime = 120;
  std::set<Prefix> avoid;

  void Generate(const Topology& topo, std::mt19937_64& rng,
                EventQueue& queue) const override;
};

// One prefix oscillating on a fixed period: withdrawn at t, re-announced
// by `origin` at t + downtime, for t = start, start + period, ... while
// t < last (exclusive). The deterministic single-prefix counterpart of
// FlapNoiseGenerator (Fig. 6's green line).
struct FlapOscillationGenerator : EventGenerator {
  Prefix prefix;
  Asn origin = 0;
  Timestamp start = 0;
  Timestamp last = 0;
  Timestamp period = 86400 / 2;
  Timestamp downtime = 1800;

  void Generate(const Topology& topo, std::mt19937_64& rng,
                EventQueue& queue) const override;
};

// Same-prefix MOAS hijack: during each [t0, t1) window the attacker
// co-announces every prefix in `prefixes`; at t1 the victim-only origin
// set is restored (the GARR / TehnoGrup pattern of Fig. 6).
struct HijackGenerator : EventGenerator {
  Asn victim = 0;
  Asn attacker = 0;
  std::vector<Prefix> prefixes;
  std::vector<std::pair<Timestamp, Timestamp>> windows;

  void Generate(const Topology& topo, std::mt19937_64& rng,
                EventQueue& queue) const override;
};

// Route leak, modeled at the control-plane-visibility level: the leaker
// re-originates up to `max_prefixes` foreign prefixes (drawn from the
// topology's origins) for [start, end), then the true origins are
// restored. The propagation model is strictly valley-free, so the leak
// appears as a burst of origin changes through the leaker — the
// signature monitors actually alert on — rather than as an export-policy
// violation along the path.
struct RouteLeakGenerator : EventGenerator {
  Asn leaker = 0;
  Timestamp start = 0;
  Timestamp end = 0;
  size_t max_prefixes = 50;

  void Generate(const Topology& topo, std::mt19937_64& rng,
                EventQueue& queue) const override;
};

// Country-wide outage: during each [t0, t1) window every prefix of the
// listed ISPs and their customer cones is withdrawn; at t1 each prefix
// is re-announced by its owner (the Iraq exam shutdowns of Fig. 10).
struct CountryOutageGenerator : EventGenerator {
  std::vector<Asn> isps;
  std::vector<std::pair<Timestamp, Timestamp>> windows;

  void Generate(const Topology& topo, std::mt19937_64& rng,
                EventQueue& queue) const override;
};

// Session reset storm: `resets` VP sessions bounce (down at a random
// instant in [start, end), up again after ~mean_downtime). A fraction
// of the downs are silent — the VP stops talking without a NOTIFICATION
// (the RouteViews-style staleness of §6.2.1); the rest emit FSM state
// messages on collectors that dump them.
struct SessionResetGenerator : EventGenerator {
  std::vector<Asn> vps;
  Timestamp start = 0;
  Timestamp end = 0;
  int resets = 0;
  Timestamp mean_downtime = 300;
  double silent_fraction = 0.25;

  void Generate(const Topology& topo, std::mt19937_64& rng,
                EventQueue& queue) const override;
};

// RTBH event: the victim announces `target` (a /32) tagged with the
// given blackhole communities for [start, end), then withdraws it
// (§4.3; supporting providers null-route while it is announced).
struct RtbhGenerator : EventGenerator {
  Asn victim = 0;
  Prefix target;
  bgp::Communities tags;
  Timestamp start = 0;
  Timestamp end = 0;

  void Generate(const Topology& topo, std::mt19937_64& rng,
                EventQueue& queue) const override;
};

// All prefixes originated by `isps` or their customer cones (the set a
// CountryOutageGenerator takes down). Exposed for avoid-lists.
std::set<Prefix> ConePrefixes(const Topology& topo,
                              const std::vector<Asn>& isps);

}  // namespace bgps::sim
