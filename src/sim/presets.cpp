#include "sim/presets.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "mrt/encode.hpp"

namespace fs = std::filesystem;

namespace bgps::sim {
namespace {

// Common mid-size world for the event-driven scenarios.
TopologyConfig EventTopoConfig(uint64_t seed) {
  TopologyConfig cfg;
  cfg.num_tier1 = 5;
  cfg.num_transit = 18;
  cfg.num_stub = 70;
  cfg.seed = seed;
  return cfg;
}

Asn SomeTransit(const Topology& topo, uint64_t salt) {
  std::vector<Asn> transits;
  for (Asn asn : topo.asns_sorted()) {
    if (topo.node(asn).tier == AsTier::Transit) transits.push_back(asn);
  }
  return transits[salt % transits.size()];
}

}  // namespace

GarrScenario BuildGarrScenario(const std::string& archive_root, int days,
                               uint64_t seed) {
  GarrScenario sc;
  fs::remove_all(archive_root);

  Topology topo = Topology::Generate(EventTopoConfig(seed));
  // Plant the victim: a stub with a block of /24s under one /16 (GARR
  // announced 78 prefixes; we scale to 12, 7 of which get hijacked).
  std::vector<Prefix> victim_prefixes;
  for (int i = 0; i < 12; ++i) {
    victim_prefixes.push_back(
        Prefix(IpAddress::V4(193, 206, uint8_t(i), 0), 24));
  }
  sc.victim_prefixes = victim_prefixes;
  topo.AddStub(sc.victim, "IT", victim_prefixes,
               {SomeTransit(topo, 1), SomeTransit(topo, 3)});
  // The attacker: a stub in a different corner of the topology.
  topo.AddStub(sc.attacker, "RO", {Prefix(IpAddress::V4(89, 33, 0, 0), 20)},
               {SomeTransit(topo, 7)});

  auto driver = std::make_unique<SimDriver>(std::move(topo), archive_root,
                                            seed);
  // One RouteViews-style and one RIS-style collector (the paper used all;
  // Fig. 6 needs several topologically distinct VPs, which these supply).
  for (int kind = 0; kind < 2; ++kind) {
    CollectorConfig cfg;
    if (kind == 0) {
      cfg.project = "routeviews";
      cfg.name = RouteViewsName(0);
      cfg.rib_period = 2 * 3600;
      cfg.update_period = 15 * 60;
      cfg.state_messages = false;
    } else {
      cfg.project = "ris";
      cfg.name = RisName(12);  // RRC12, as in §4.3/§5
      cfg.rib_period = 8 * 3600;
      cfg.update_period = 5 * 60;
      cfg.state_messages = true;
    }
    cfg.publish_delay = 0;
    cfg.vps = PickVps(driver->topology(), 6, 0.25, seed * 31 + kind);
    driver->AddCollector(std::move(cfg));
  }

  driver->world().AnnounceAll();

  sc.start = TimestampFromYmdHms(2015, 1, 1, 0, 0, 0);
  sc.end = sc.start + Timestamp(days) * 86400;

  // Hijack windows: days 1, 5, 7 and 8 of the window (paper: Jan 1, 5, 7,
  // 8 2015), each ~1 h, clipped to the simulated duration.
  sc.hijacked.assign(victim_prefixes.begin(), victim_prefixes.begin() + 7);
  for (int day : {0, 4, 6, 7}) {
    Timestamp t0 = sc.start + Timestamp(day) * 86400 + 11 * 3600;
    Timestamp t1 = t0 + 3600;
    if (t1 >= sc.end) continue;
    sc.hijack_windows.emplace_back(t0, t1);
  }
  HijackGenerator hijack;
  hijack.victim = sc.victim;
  hijack.attacker = sc.attacker;
  hijack.prefixes = sc.hijacked;
  hijack.windows = sc.hijack_windows;
  driver->AddGenerator(hijack);

  // Background churn away from the monitored space.
  std::set<Prefix> avoid(victim_prefixes.begin(), victim_prefixes.end());
  driver->AddFlapNoise(sc.start, sc.end, 60.0, 120, avoid);
  // Mild oscillation *inside* the monitored space (Fig. 6's green line):
  // the victim occasionally de-aggregates / re-aggregates one prefix.
  FlapOscillationGenerator osc;
  osc.prefix = victim_prefixes.back();
  osc.origin = sc.victim;
  osc.start = sc.start + 7200;
  osc.last = sc.end - 7200;
  osc.period = 86400 / 2;
  osc.downtime = 1800;
  driver->AddGenerator(osc);

  (void)driver->Run(sc.start, sc.end);
  sc.driver = std::move(driver);
  return sc;
}

CountryOutageScenario BuildCountryOutageScenario(
    const std::string& archive_root, int days, uint64_t seed) {
  CountryOutageScenario sc;
  fs::remove_all(archive_root);

  TopologyConfig topo_cfg = EventTopoConfig(seed + 1);
  Topology topo = Topology::Generate(topo_cfg);

  // Plant five ISPs in the target country, each with a customer cone of
  // local stubs (EarthLink/ScopeSky/... in the paper's Fig. 10).
  std::vector<std::pair<Asn, int>> isp_sizes = {
      {50710, 14}, {50597, 9}, {197893, 6}, {57588, 5}, {198735, 4}};
  Asn upstream1 = SomeTransit(topo, 2), upstream2 = SomeTransit(topo, 5);
  Asn next_stub_asn = 90000;
  for (auto [asn, prefix_count] : isp_sizes) {
    std::vector<Prefix> prefixes;
    for (int i = 0; i < prefix_count; ++i) {
      prefixes.push_back(Prefix(
          IpAddress::V4(uint8_t(91), uint8_t(asn >> 8), uint8_t(i * 4), 0),
          22));
    }
    AsNode& isp = topo.AddStub(asn, sc.country, prefixes,
                               {upstream1, upstream2});
    // ISPs are transit for local stubs.
    isp.tier = AsTier::Transit;
    for (int c = 0; c < 2; ++c) {
      topo.AddStub(next_stub_asn, sc.country,
                   {Prefix(IpAddress::V4(uint8_t(92), uint8_t(next_stub_asn),
                                         0, 0),
                           20)},
                   {asn});
      ++next_stub_asn;
    }
    sc.isps.push_back(asn);
  }

  auto driver =
      std::make_unique<SimDriver>(std::move(topo), archive_root, seed + 1);
  for (int kind = 0; kind < 2; ++kind) {
    CollectorConfig cfg;
    if (kind == 0) {
      cfg.project = "routeviews";
      cfg.name = RouteViewsName(0);
      cfg.rib_period = 2 * 3600;
      cfg.update_period = 15 * 60;
      cfg.state_messages = false;
    } else {
      cfg.project = "ris";
      cfg.name = RisName(0);
      cfg.rib_period = 8 * 3600;
      cfg.update_period = 5 * 60;
      cfg.state_messages = true;
    }
    cfg.publish_delay = 0;
    cfg.vps = PickVps(driver->topology(), 7, 0.3, seed * 17 + kind);
    driver->AddCollector(std::move(cfg));
  }
  driver->world().AnnounceAll();

  sc.start = TimestampFromYmdHms(2015, 6, 20, 0, 0, 0);
  sc.end = sc.start + Timestamp(days) * 86400;

  // Government-ordered shutdowns: ~3 h every morning within a middle
  // stretch of the window (paper: Jun 27 - Jul 15, starting ~daily).
  Timestamp shutdown_first = sc.start + 7 * 86400;
  Timestamp shutdown_last = std::min(sc.end, sc.start + 25 * 86400);
  // The ISPs and their customer cones go dark.
  std::set<Prefix> country_prefixes = ConePrefixes(driver->topology(), sc.isps);
  CountryOutageGenerator outage;
  outage.isps = sc.isps;
  for (Timestamp day = shutdown_first; day + 4 * 3600 < shutdown_last;
       day += 86400) {
    Timestamp t0 = day + 5 * 3600;  // 05:00 local-ish
    Timestamp t1 = t0 + 3 * 3600;
    sc.outage_windows.emplace_back(t0, t1);
    outage.windows.emplace_back(t0, t1);
  }
  driver->AddGenerator(outage);

  driver->AddFlapNoise(sc.start, sc.end, 40.0, 120, country_prefixes);
  (void)driver->Run(sc.start, sc.end);
  sc.driver = std::move(driver);
  return sc;
}

RtbhScenario BuildRtbhScenario(const std::string& archive_root, int events,
                               int probes_per_event, uint64_t seed) {
  RtbhScenario sc;
  fs::remove_all(archive_root);
  std::mt19937_64 rng(seed);

  TopologyConfig cfg = EventTopoConfig(seed + 9);
  cfg.blackholing_fraction = 0.65;
  Topology topo = Topology::Generate(cfg);
  auto driver =
      std::make_unique<SimDriver>(std::move(topo), archive_root, seed + 9);
  for (int kind = 0; kind < 2; ++kind) {
    CollectorConfig ccfg;
    if (kind == 0) {
      ccfg.project = "routeviews";
      ccfg.name = RouteViewsName(0);
      ccfg.rib_period = 2 * 3600;
      ccfg.update_period = 15 * 60;
    } else {
      ccfg.project = "ris";
      ccfg.name = RisName(12);
      ccfg.rib_period = 8 * 3600;
      ccfg.update_period = 5 * 60;
      ccfg.state_messages = true;
    }
    ccfg.publish_delay = 0;
    ccfg.vps = PickVps(driver->topology(), 5, 0.2, seed * 13 + kind);
    driver->AddCollector(std::move(ccfg));
  }
  driver->world().AnnounceAll();

  sc.start = TimestampFromYmdHms(2016, 4, 20, 0, 0, 0);

  // Victim pool: stubs with at least one blackholing-capable provider.
  const Topology& t = driver->topology();
  std::vector<Asn> victims;
  for (Asn asn : t.asns_sorted()) {
    const AsNode& node = t.node(asn);
    if (node.tier != AsTier::Stub) continue;
    for (Asn p : node.providers) {
      if (t.node(p).supports_blackholing) {
        victims.push_back(asn);
        break;
      }
    }
  }
  // Probe pool: everything else (the paper selects Atlas probes near the
  // origin; we draw from the whole AS population per event below).
  std::vector<Asn> all = t.asns_sorted();

  Timestamp cursor = sc.start + 1800;
  World& world = driver->world();
  for (int e = 0; e < events && !victims.empty(); ++e) {
    RtbhEvent ev;
    ev.victim = victims[rng() % victims.size()];
    const AsNode& vnode = t.node(ev.victim);
    ev.target = Prefix(vnode.prefixes.front().address(), 32);
    // Tag the communities of all blackholing-capable providers: the
    // multi-homed-customer case of §4.3 (some providers may still not
    // support RTBH -> partial reachability).
    bgp::Communities tags;
    for (Asn p : vnode.providers) {
      tags.push_back(bgp::Community(uint16_t(p), kBlackholeValue));
      if (t.node(p).supports_blackholing) ev.tagged_providers.push_back(p);
    }
    // 80% of RTBH requests < 1 day, 20% < 40 min (paper's durations);
    // scale down so many events fit one simulated day.
    Timestamp duration = (rng() % 5 == 0) ? Timestamp(1200 + rng() % 1200)
                                          : Timestamp(3600 + rng() % 7200);
    ev.start = cursor;
    ev.end = cursor + duration;
    cursor = ev.end + 1800 + Timestamp(rng() % 1800);

    // Apply the announcement now, measure "during", then withdraw and
    // measure "after" — the sim timeline is advanced segment-wise by the
    // caller-visible driver below.
    RtbhGenerator rtbh;
    rtbh.victim = ev.victim;
    rtbh.target = ev.target;
    rtbh.tags = tags;
    rtbh.start = ev.start;
    rtbh.end = ev.end;
    driver->AddGenerator(rtbh);

    // Probes: neighbors of the origin, plus random ASes (stand-in for
    // same-IXP / same-country Atlas probes).
    std::set<Asn> probe_set(vnode.providers.begin(), vnode.providers.end());
    while (int(probe_set.size()) < probes_per_event) {
      Asn cand = all[rng() % all.size()];
      if (cand != ev.victim) probe_set.insert(cand);
    }
    for (Asn src : probe_set) {
      RtbhEvent::Probe probe;
      probe.source = src;
      ev.probes.push_back(probe);
    }
    sc.events.push_back(std::move(ev));
  }
  sc.end = cursor + 1800;

  // Execute segment-wise: pause exactly inside and right after each event
  // to take the traceroute measurements (the paper's live-triggered
  // probing; >90% of real events were probed in time, here always).
  Timestamp segment_start = sc.start;
  for (auto& ev : sc.events) {
    Status st = driver->Run(segment_start, ev.start + 1);
    (void)st;
    for (auto& probe : ev.probes) {
      auto r = world.Traceroute(probe.source, ev.target.address());
      probe.during_reached_origin = r.reached_origin;
      // During the event the DoS itself may keep the host down even on
      // clear paths (paper Fig. 4a counts end-host responses).
      probe.during_reached_host = r.reached_origin && (rng() % 100 < 70);
    }
    st = driver->Run(ev.start + 1, ev.end + 1);
    for (auto& probe : ev.probes) {
      auto r = world.Traceroute(probe.source, ev.target.address());
      probe.after_reached_origin = r.reached_origin;
      probe.after_reached_host = r.reached_origin && (rng() % 100 < 97);
    }
    segment_start = ev.end + 1;
  }
  (void)driver->Run(segment_start, sc.end);

  sc.driver = std::move(driver);
  return sc;
}

LongitudinalArchive BuildLongitudinalArchive(
    const std::string& archive_root, const LongitudinalOptions& options) {
  LongitudinalArchive arch;
  arch.root = archive_root;

  // Completion marker: lets the figure-5 benches share one archive.
  const std::string marker_text =
      "v1 months=" + std::to_string(options.months) +
      " collectors=" + std::to_string(options.collectors) +
      " vps=" + std::to_string(options.vps_per_collector) +
      " seed=" + std::to_string(options.seed);
  const fs::path marker_path = fs::path(archive_root) / ".complete";
  bool skip_write = false;
  if (options.reuse_existing && fs::exists(marker_path)) {
    std::ifstream in(marker_path);
    std::string existing((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    skip_write = existing == marker_text;
  }
  if (!skip_write) fs::remove_all(archive_root);

  std::mt19937_64 rng(options.seed);

  TopologyConfig topo_cfg = options.topo;
  if (topo_cfg.num_stub == 200 && topo_cfg.num_transit == 40) {
    // Default scale for the fig5 benches if the caller did not override.
    topo_cfg.num_tier1 = 6;
    topo_cfg.num_transit = 30;
    topo_cfg.num_stub = 160;
  }
  topo_cfg.seed = options.seed;
  arch.topo = Topology::Generate(topo_cfg);

  // Birth months: interleave transits and stubs so the transit fraction
  // stays roughly constant as the graph grows (the paper's IPv4 finding).
  // A fifth of the ASes exist from month 0.
  std::vector<Asn> asns = arch.topo.asns_sorted();
  for (Asn asn : asns) {
    const AsNode& node = arch.topo.node(asn);
    if (node.tier == AsTier::Tier1) {
      arch.birth_month[asn] = 0;
      continue;
    }
    // Providers must exist before their customers: bias birth by ASN
    // order (generation order respects the hierarchy) plus jitter.
    double frac = double(asn - asns.front()) / double(asns.size());
    int base = int(frac * 0.85 * options.months);
    int jitter = int(rng() % 13);
    arch.birth_month[asn] = std::max(0, base - jitter);
  }
  // Enforce provider-before-customer.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& link : arch.topo.links()) {
      if (link.type != LinkType::CustomerProvider) continue;
      if (arch.birth_month[link.b] < arch.birth_month[link.a]) {
        arch.birth_month[link.b] = arch.birth_month[link.a];
        changed = true;
      }
    }
  }

  // IPv6 adoption: transit ASes early (first third), stubs late (after
  // ~60% of the window) — reproduces Fig. 5c's transit-heavy early IPv6.
  for (Asn asn : asns) {
    const AsNode& node = arch.topo.node(asn);
    if (node.prefixes_v6.empty()) {
      arch.v6_month[asn] = -1;
      continue;
    }
    int birth = arch.birth_month[asn];
    int adopt;
    if (node.is_transit()) {
      adopt = int(rng() % std::max(1, options.months / 3));
    } else {
      adopt = int(options.months * 3 / 5 + rng() % std::max(1, options.months / 3));
    }
    arch.v6_month[asn] = std::max(birth, adopt);
  }

  // MOAS assignments (Fig. 5b): a slowly growing set of prefixes gains a
  // second origin once both ASes exist.
  struct Moas {
    Prefix prefix;
    Asn owner;
    Asn second;
    int month;
  };
  std::vector<Moas> moas;
  {
    auto origins = arch.topo.all_origins();
    size_t target = origins.size() / 12;  // ~8% of prefixes eventually MOAS
    for (size_t i = 0; i < target; ++i) {
      const auto& [owner, prefix] = origins[rng() % origins.size()];
      if (prefix.family() != IpFamily::V4) continue;
      Asn second = asns[rng() % asns.size()];
      if (second == owner) continue;
      int month = std::max(
          {arch.birth_month[owner], arch.birth_month[second],
           int(rng() % options.months)});
      moas.push_back({prefix, owner, second, month});
    }
  }

  // Collectors and their VPs (VPs join over the years — Fig. 5a heatmap).
  for (int c = 0; c < options.collectors; ++c) {
    bool rv = c % 2 == 0;
    std::string name = rv ? RouteViewsName(c / 2) : RisName(c / 2);
    arch.collector_project[name] = rv ? "routeviews" : "ris";
    auto vps = PickVps(arch.topo, options.vps_per_collector,
                       options.partial_feed_fraction,
                       options.seed * 101 + uint64_t(c));
    std::vector<LongitudinalArchive::VpInfo> infos;
    for (auto& vp : vps) {
      LongitudinalArchive::VpInfo info;
      info.spec = vp;
      info.join_month = std::max(arch.birth_month[vp.asn],
                                 int(rng() % (options.months * 2 / 3)));
      infos.push_back(info);
    }
    arch.collectors[name] = std::move(infos);
  }

  // Monthly snapshots: midnight on the 15th (see §5: the 1st is missing
  // ~34 dumps/year in the real archives, so the paper uses the 15th).
  for (int m = 0; m < options.months; ++m) {
    int year = options.first_year + m / 12;
    int month = 1 + m % 12;
    Timestamp ts = TimestampFromYmdHms(year, month, 15, 0, 0, 0);
    arch.snapshot_times.push_back(ts);
    if (skip_write) continue;  // archive already on disk; metadata only

    // Active subgraph for this month.
    std::unordered_map<Asn, bool> active;
    for (Asn asn : asns) active[asn] = arch.birth_month[asn] <= m;

    // Routes for every active prefix (with MOAS overlays).
    std::map<Prefix, RouteMap> routes;
    for (const auto& [asn, prefix] : arch.topo.all_origins()) {
      if (!active[asn]) continue;
      if (prefix.family() == IpFamily::V6 &&
          (arch.v6_month[asn] < 0 || arch.v6_month[asn] > m))
        continue;
      std::vector<OriginSpec> origins{{asn, {}}};
      for (const auto& mo : moas) {
        if (mo.prefix == prefix && mo.month <= m && active[mo.second]) {
          origins.push_back({mo.second, {}});
        }
      }
      routes.emplace(prefix, PropagateRoutes(arch.topo, origins, &active));
    }

    // One RIB dump per collector.
    for (const auto& [name, vps] : arch.collectors) {
      const std::string& project = arch.collector_project[name];
      fs::path dir = fs::path(archive_root) / project / name / "ribs";
      std::error_code ec;
      fs::create_directories(dir, ec);
      // Duration matches the project's real RIB cadence.
      Timestamp duration = project == "routeviews" ? 7200 : 28800;
      fs::path file = dir / broker::ArchiveFileName(ts, duration, 0);

      mrt::MrtFileWriter writer;
      if (!writer.Open(file.string()).ok()) continue;
      mrt::PeerIndexTable pit;
      pit.view_name = name;
      std::vector<int> joined;  // indices of joined VPs
      for (size_t i = 0; i < vps.size(); ++i) {
        pit.peers.push_back({uint32_t(vps[i].spec.asn), vps[i].spec.address,
                             vps[i].spec.asn});
        if (vps[i].join_month <= m) joined.push_back(int(i));
      }
      (void)writer.Write(mrt::EncodePeerIndexTable(ts, pit));

      uint32_t seq = 0;
      for (const auto& [prefix, rmap] : routes) {
        mrt::RibPrefix rib;
        rib.prefix = prefix;
        rib.sequence = seq;
        for (int i : joined) {
          const VpSpec& vp = vps[size_t(i)].spec;
          auto rit = rmap.find(vp.asn);
          if (rit == rmap.end()) continue;
          const Route& route = rit->second;
          if (!vp.full_feed && route.source != RouteSource::Origin &&
              route.source != RouteSource::Customer)
            continue;
          mrt::RibEntry entry;
          entry.peer_index = uint16_t(i);
          entry.originated_time = ts;
          std::vector<Asn> path{vp.asn};
          path.insert(path.end(), route.path.begin(), route.path.end());
          entry.attrs.as_path = bgp::AsPath::Sequence(std::move(path));
          entry.attrs.communities = route.communities;
          if (prefix.family() == IpFamily::V4) {
            entry.attrs.next_hop = vp.address;
          } else {
            bgp::MpReach mp;
            mp.next_hop = VpAddressV6For(vp.asn);
            entry.attrs.mp_reach = std::move(mp);
          }
          rib.entries.push_back(std::move(entry));
        }
        if (rib.entries.empty()) continue;
        ++seq;
        (void)writer.Write(mrt::EncodeRibPrefix(ts, rib, prefix.family()));
      }
      (void)writer.Close();
    }
  }

  if (!skip_write) {
    std::ofstream out(marker_path);
    out << marker_text;
  }
  return arch;
}

}  // namespace bgps::sim
