// Named scenarios reproducing the paper's case studies. Shared by the
// examples and the figure benches (see DESIGN.md §3 for the mapping).
#pragma once

#include "sim/scenario.hpp"

namespace bgps::sim {

// --- Fig. 6: GARR hijack ----------------------------------------------------
// A victim stub (AS137-like) originates a block of prefixes; a foreign
// stub (AS198596-like) announces `hijacked_count` of them (same-prefix
// MOAS) in several ~1 h windows, like the Jan 2015 TehnoGrup events.
struct GarrScenario {
  std::unique_ptr<SimDriver> driver;
  Asn victim = 137;
  Asn attacker = 198596;
  std::vector<Prefix> victim_prefixes;
  std::vector<Prefix> hijacked;  // subset also announced by the attacker
  Timestamp start = 0;
  Timestamp end = 0;
  std::vector<std::pair<Timestamp, Timestamp>> hijack_windows;
};

GarrScenario BuildGarrScenario(const std::string& archive_root, int days,
                               uint64_t seed = 2015);

// --- Fig. 10: country-wide outages ------------------------------------------
// Five ISPs of one country withdraw everything in recurring ~3 h windows
// (the Iraq exam shutdowns of Jun-Jul 2015).
struct CountryOutageScenario {
  std::unique_ptr<SimDriver> driver;
  std::string country = "IQ";
  std::vector<Asn> isps;         // the five monitored providers
  Timestamp start = 0;
  Timestamp end = 0;
  std::vector<std::pair<Timestamp, Timestamp>> outage_windows;
};

CountryOutageScenario BuildCountryOutageScenario(const std::string& archive_root,
                                                 int days, uint64_t seed = 2015);

// --- Fig. 4: RTBH study ------------------------------------------------------
// Victim stubs announce /32s tagged with their providers' blackhole
// communities for short windows. Traceroute measurements are taken from
// Atlas-like probe ASes during and after each event (the sim is paused at
// the right instants, mirroring the paper's live-triggered probing).
struct RtbhEvent {
  Asn victim = 0;
  Prefix target;                       // the black-holed /32
  std::vector<Asn> tagged_providers;   // providers whose community was set
  Timestamp start = 0;
  Timestamp end = 0;
  // Per-probe outcomes (one entry per probe AS).
  struct Probe {
    Asn source = 0;
    bool during_reached_host = false;
    bool during_reached_origin = false;
    bool after_reached_host = false;
    bool after_reached_origin = false;
  };
  std::vector<Probe> probes;
};

struct RtbhScenario {
  std::unique_ptr<SimDriver> driver;
  Timestamp start = 0;
  Timestamp end = 0;
  std::vector<RtbhEvent> events;
};

RtbhScenario BuildRtbhScenario(const std::string& archive_root, int events,
                               int probes_per_event, uint64_t seed = 416);

// --- Fig. 5a-d: longitudinal archive ----------------------------------------
// Monthly midnight RIB dumps (15th of the month, like the paper after its
// missing-dump finding) over `months` months, with the topology growing
// over time: ASes and VPs have birth months, IPv6 adoption ramps up.
struct LongitudinalOptions {
  int months = 15 * 12;       // Jan 2001 .. Jan 2016
  int first_year = 2001;
  int collectors = 4;         // 2 routeviews-style + 2 ris-style
  int vps_per_collector = 6;
  double partial_feed_fraction = 0.35;
  TopologyConfig topo;        // final (fully grown) topology
  uint64_t seed = 501;
  // If true and a completion marker matching these options exists under
  // the archive root, skip the (expensive) dump generation and only
  // recompute the in-memory metadata. Figure-5 benches share one archive.
  bool reuse_existing = false;
};

struct LongitudinalArchive {
  std::string root;
  Topology topo;
  std::vector<Timestamp> snapshot_times;  // one per month
  std::unordered_map<Asn, int> birth_month;     // AS appears at this month
  std::unordered_map<Asn, int> v6_month;        // -1 = never originates v6
  // collector -> VP specs with join month.
  struct VpInfo {
    VpSpec spec;
    int join_month = 0;
  };
  std::map<std::string, std::vector<VpInfo>> collectors;  // name -> VPs
  std::map<std::string, std::string> collector_project;   // name -> project
};

LongitudinalArchive BuildLongitudinalArchive(const std::string& archive_root,
                                             const LongitudinalOptions& options);

}  // namespace bgps::sim
