#include "sim/replay.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "bmp/bmp.hpp"
#include "broker/archive.hpp"
#include "exabgp/exabgp.hpp"
#include "mrt/file.hpp"
#include "mrt/mrt.hpp"

namespace bgps::sim {

namespace {

// One open archive file with its decoded look-ahead record. The merge
// needs every head decoded up front: RawRecord bodies view the reader's
// reusable buffer, so a record must be fully decoded before the next
// Next() on the same reader.
struct FileCursor {
  mrt::MrtFileReader reader;
  mrt::MrtMessage head;
  bool exhausted = false;
};

// Advances `cursor` to its next decodable record, counting undecodable
// ones into `stats`.
void AdvanceCursor(FileCursor& cursor, ReplayStats& stats) {
  while (true) {
    auto raw = cursor.reader.Next();
    if (!raw.ok()) {
      if (raw.status().code() != StatusCode::EndOfStream) ++stats.corrupt;
      cursor.exhausted = true;
      return;
    }
    auto msg = mrt::DecodeRecord(*raw);
    if (!msg.ok()) {
      ++stats.corrupt;
      continue;
    }
    cursor.head = std::move(*msg);
    return;
  }
}

int64_t VirtualMicros(const mrt::MrtMessage& msg) {
  return int64_t(msg.timestamp) * 1'000'000 + msg.microseconds;
}

}  // namespace

Result<ReplayStats> ReplayArchive(const ReplayOptions& options,
                                  const ReplaySink& sink) {
  if (options.archive_root.empty())
    return InvalidArgument("ReplayArchive: archive_root is required");
  if (options.clock == nullptr && options.speedup <= 0)
    return InvalidArgument("ReplayArchive: speedup must be > 0");

  broker::ArchiveIndex index(options.archive_root);
  BGPS_RETURN_IF_ERROR(index.Rescan());
  if (index.files().empty())
    return NotFoundError("ReplayArchive: no MRT files under " +
                         options.archive_root);

  ReplayStats stats;
  std::vector<std::unique_ptr<FileCursor>> cursors;
  for (const auto& meta : index.files()) {
    auto cursor = std::make_unique<FileCursor>();
    BGPS_RETURN_IF_ERROR(cursor->reader.Open(meta.path));
    AdvanceCursor(*cursor, stats);
    if (!cursor->exhausted) cursors.push_back(std::move(cursor));
  }

  // Internal clock when none is injected. speedup lives in the clock.
  core::AcceleratedClock own_clock(options.clock ? 1.0 : options.speedup);
  core::ReplayClock* clock = options.clock ? options.clock : &own_clock;

  bool anchored = false;
  while (!cursors.empty()) {
    // K-way merge by (virtual time, file order). The file list is small
    // (dozens); a linear min scan beats heap bookkeeping here and keeps
    // the tie-break trivially stable.
    size_t best = 0;
    for (size_t i = 1; i < cursors.size(); ++i) {
      if (VirtualMicros(cursors[i]->head) <
          VirtualMicros(cursors[best]->head))
        best = i;
    }
    mrt::MrtMessage msg = std::move(cursors[best]->head);
    AdvanceCursor(*cursors[best], stats);
    if (cursors[best]->exhausted)
      cursors.erase(cursors.begin() + ptrdiff_t(best));

    // Convert to the wire format; records with no equivalent are the
    // corpus's RIB/PEER_INDEX rows and non-UPDATE messages.
    Bytes payload;
    if (options.format == ReplayFormat::Bmp) {
      auto frame = bmp::FromMrt(msg);
      if (!frame) {
        ++stats.skipped;
        continue;
      }
      payload = bmp::Encode(*frame);
    } else {
      auto line = exabgp::FromMrt(msg);
      if (!line) {
        ++stats.skipped;
        continue;
      }
      std::string text = exabgp::EncodeLine(*line);
      payload.assign(text.begin(), text.end());
    }

    int64_t due = VirtualMicros(msg);
    if (!anchored) {
      clock->Anchor(due);
      stats.first_ts = msg.timestamp;
      anchored = true;
    }
    clock->SleepUntilMicros(due);

    BGPS_RETURN_IF_ERROR(sink(msg.timestamp, payload));
    ++stats.records_replayed;
    stats.last_ts = msg.timestamp;
    if (msg.is_message())
      ++stats.updates;
    else if (msg.is_state_change())
      ++stats.state_changes;
    if (options.max_records && stats.records_replayed >= options.max_records)
      break;
  }
  return stats;
}

}  // namespace bgps::sim
