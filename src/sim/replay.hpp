// Accelerated-clock replay: turns an archived MRT corpus (simulated or
// real) back into live wire traffic — BMP frames or exabgp JSON lines —
// paced by a ReplayClock. This is the test generator for the live
// ingestion tier: a 2-hour corpus replayed at 256x exercises the same
// framing, per-peer state and backpressure paths a real session would,
// in seconds, and deterministically (same corpus + same speedup + a
// virtual clock => the identical frame sequence, pinned by
// tests/live_replay_test.cpp).
//
// The driver k-way merges every file in the archive by record timestamp
// (stable tie-break: file index, then arrival order within a file), so
// the emitted sequence is a single global timeline regardless of how the
// corpus was sharded into dump files. Records with no wire equivalent in
// the chosen format (RIB/PEER_INDEX rows, non-UPDATE messages) are
// counted and skipped — the same records a real router would never have
// put on a BMP session.
#pragma once

#include <functional>
#include <string>

#include "core/clock.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"
#include "util/time.hpp"

namespace bgps::sim {

enum class ReplayFormat {
  Bmp,     // emit encoded BMP frames (RFC 7854 wire bytes)
  ExaBgp,  // emit exabgp v4 JSON lines (no trailing newline)
};

struct ReplayOptions {
  std::string archive_root;
  ReplayFormat format = ReplayFormat::Bmp;
  // Virtual-seconds-per-wall-second pacing factor, used only when
  // `clock` is null (an internal AcceleratedClock is created).
  double speedup = 1.0;
  // Injected pacing clock. Not owned; null => internal
  // AcceleratedClock(speedup). Tests inject an AcceleratedClock with a
  // no-op sleeper (all the pacing arithmetic, zero wall time) or a
  // ManualClock.
  core::ReplayClock* clock = nullptr;
  // Stop after this many emitted payloads (0 = the whole corpus).
  size_t max_records = 0;
};

struct ReplayStats {
  size_t records_replayed = 0;  // payloads handed to the sink
  size_t updates = 0;           // of which BGP4MP updates
  size_t state_changes = 0;     // of which state changes
  size_t skipped = 0;           // no wire equivalent (RIBs, non-UPDATE)
  size_t corrupt = 0;           // undecodable archive records skipped
  Timestamp first_ts = 0;       // timestamp of the first emitted payload
  Timestamp last_ts = 0;        // timestamp of the last emitted payload
};

// One emitted payload: BMP frame bytes or an exabgp line (UTF-8 bytes,
// no '\n'), with the record's virtual timestamp. The sink returning an
// error aborts the replay with that status (a parked LiveSource ingest
// simply blocks — backpressure pauses the replay, like a real socket).
using ReplaySink = std::function<Status(Timestamp ts, const Bytes& payload)>;

// Replays the archive under options.archive_root through `sink`. The
// clock is anchored at the first record's timestamp, then each payload
// waits for its virtual due time before emission.
Result<ReplayStats> ReplayArchive(const ReplayOptions& options,
                                  const ReplaySink& sink);

}  // namespace bgps::sim
