#include "sim/routing.hpp"

#include <algorithm>
#include <queue>

namespace bgps::sim {
namespace {

// A candidate route offered to `target` by neighbor `via`.
struct Offer {
  size_t path_len;
  Asn via;
  Asn target;
  std::vector<Asn> path;  // path as seen by target (starts with via)
  bgp::Communities communities;

  // Min-heap order: shortest path first, then lowest next-hop ASN.
  bool operator>(const Offer& o) const {
    return std::tie(path_len, via, target) > std::tie(o.path_len, o.via, o.target);
  }
};

using OfferQueue = std::priority_queue<Offer, std::vector<Offer>, std::greater<>>;

// Communities as exported by `node`: strip, then tag.
bgp::Communities ExportCommunities(const AsNode& node,
                                   const bgp::Communities& in) {
  bgp::Communities out = node.strips_communities ? bgp::Communities{} : in;
  if (node.adds_communities) {
    out.push_back(bgp::Community(uint16_t(node.asn & 0xFFFF), kTransitTagValue));
  }
  return out;
}

}  // namespace

RouteMap PropagateRoutes(const Topology& topo,
                         const std::vector<OriginSpec>& origins,
                         const std::unordered_map<Asn, bool>* active) {
  RouteMap routes;
  auto is_active = [&](Asn a) {
    if (!topo.has_node(a)) return false;
    if (!active) return true;
    auto it = active->find(a);
    return it != active->end() && it->second;
  };

  // Seed origins.
  for (const auto& spec : origins) {
    if (!is_active(spec.asn)) continue;
    Route r;
    r.source = RouteSource::Origin;
    bgp::Communities cs = spec.communities;
    cs.push_back(bgp::Community(uint16_t(spec.asn & 0xFFFF), kOriginTagValue));
    r.communities = std::move(cs);
    // An origin with multiple OriginSpec entries keeps the first.
    routes.emplace(spec.asn, std::move(r));
  }
  if (routes.empty()) return routes;

  // --- Phase 1: customer routes climb to providers (valley-free "up"). ---
  {
    OfferQueue queue;
    auto offer_up = [&](Asn from) {
      const AsNode& n = topo.node(from);
      const Route& r = routes.at(from);
      for (Asn provider : n.providers) {
        if (!is_active(provider)) continue;
        Offer o;
        o.via = from;
        o.target = provider;
        o.path.reserve(r.path.size() + 1);
        o.path.push_back(from);
        o.path.insert(o.path.end(), r.path.begin(), r.path.end());
        o.path_len = o.path.size();
        o.communities = ExportCommunities(n, r.communities);
        queue.push(std::move(o));
      }
    };
    for (const auto& [asn, _] : routes) offer_up(asn);
    while (!queue.empty()) {
      Offer o = queue.top();
      queue.pop();
      if (routes.count(o.target)) continue;  // already has a (better) route
      Route r;
      r.path = std::move(o.path);
      r.source = RouteSource::Customer;
      r.communities = std::move(o.communities);
      routes.emplace(o.target, std::move(r));
      offer_up(o.target);
    }
  }

  // --- Phase 2: customer/own routes cross peering links (one hop). ---
  {
    OfferQueue queue;
    for (const auto& [asn, r] : routes) {
      if (r.source != RouteSource::Origin && r.source != RouteSource::Customer)
        continue;
      const AsNode& n = topo.node(asn);
      for (Asn peer : n.peers) {
        if (!is_active(peer)) continue;
        Offer o;
        o.via = asn;
        o.target = peer;
        o.path.push_back(asn);
        o.path.insert(o.path.end(), r.path.begin(), r.path.end());
        o.path_len = o.path.size();
        o.communities = ExportCommunities(n, r.communities);
        queue.push(std::move(o));
      }
    }
    while (!queue.empty()) {
      Offer o = queue.top();
      queue.pop();
      if (routes.count(o.target)) continue;
      Route r;
      r.path = std::move(o.path);
      r.source = RouteSource::Peer;
      r.communities = std::move(o.communities);
      routes.emplace(o.target, std::move(r));
      // Peer routes do not propagate to other peers/providers.
    }
  }

  // --- Phase 3: all routes descend to customers (valley-free "down"). ---
  {
    OfferQueue queue;
    auto offer_down = [&](Asn from) {
      const AsNode& n = topo.node(from);
      const Route& r = routes.at(from);
      for (Asn customer : n.customers) {
        if (!is_active(customer)) continue;
        Offer o;
        o.via = from;
        o.target = customer;
        o.path.push_back(from);
        o.path.insert(o.path.end(), r.path.begin(), r.path.end());
        o.path_len = o.path.size();
        o.communities = ExportCommunities(n, r.communities);
        queue.push(std::move(o));
      }
    };
    for (const auto& [asn, _] : routes) offer_down(asn);
    while (!queue.empty()) {
      Offer o = queue.top();
      queue.pop();
      if (routes.count(o.target)) continue;
      Route r;
      r.path = std::move(o.path);
      r.source = RouteSource::Provider;
      r.communities = std::move(o.communities);
      routes.emplace(o.target, std::move(r));
      offer_down(o.target);
    }
  }

  return routes;
}

}  // namespace bgps::sim
