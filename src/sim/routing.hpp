// Gao–Rexford route propagation over the synthetic topology.
//
// Computes, for one prefix and its origin set (several origins = MOAS /
// hijack), the best route in every AS's Loc-RIB under standard policy:
//   export:  customer routes (and own routes) go to everyone;
//            peer/provider-learned routes go to customers only
//            (valley-free routing);
//   select:  customer > peer > provider, then shortest AS path, then
//            lowest next-hop ASN (deterministic tie-break).
//
// Communities accumulate hop by hop per the AS policies (taggers add
// <asn>:<tag>, strippers clear), reproducing the propagation behaviour
// analyzed in Fig. 5d.
#pragma once

#include "sim/topology.hpp"

namespace bgps::sim {

enum class RouteSource : uint8_t { Origin, Customer, Peer, Provider };

struct Route {
  // AS-level path from this AS to the origin, *excluding* this AS itself
  // and ending at the origin; empty when this AS originates the prefix.
  // A VP exporting to a collector prepends its own ASN.
  std::vector<Asn> path;
  RouteSource source = RouteSource::Origin;
  bgp::Communities communities;

  Asn origin(Asn self) const { return path.empty() ? self : path.back(); }
  size_t length() const { return path.size(); }

  bool operator==(const Route&) const = default;
};

struct OriginSpec {
  Asn asn = 0;
  bgp::Communities communities;  // attached at origination (e.g. RTBH tag)
};

// Best route per AS. ASes with no entry have no route to the prefix.
using RouteMap = std::unordered_map<Asn, Route>;

// `active` restricts propagation to a subgraph (longitudinal growth);
// nullptr = all ASes. Origins not in the topology/active set are ignored.
RouteMap PropagateRoutes(const Topology& topo,
                         const std::vector<OriginSpec>& origins,
                         const std::unordered_map<Asn, bool>* active = nullptr);

// Community tag value transit taggers attach (value half of <asn>:<tag>).
inline constexpr uint16_t kTransitTagValue = 100;
// Tag origins attach to their own announcements.
inline constexpr uint16_t kOriginTagValue = 1;

}  // namespace bgps::sim
