#include "sim/scenario.hpp"

#include <algorithm>

namespace bgps::sim {

std::string RouteViewsName(int index) {
  if (index == 0) return "route-views2";
  return "route-views" + std::to_string(index + 2);
}

std::string RisName(int index) {
  char buf[8];
  std::snprintf(buf, sizeof(buf), "rrc%02d", index);
  return buf;
}

std::vector<VpSpec> PickVps(const Topology& topo, int count,
                            double partial_fraction, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<Asn> transit, stub;
  for (Asn asn : topo.asns_sorted()) {
    (topo.node(asn).is_transit() ? transit : stub).push_back(asn);
  }
  std::shuffle(transit.begin(), transit.end(), rng);
  std::shuffle(stub.begin(), stub.end(), rng);

  std::vector<VpSpec> vps;
  size_t ti = 0, si = 0;
  for (int i = 0; i < count; ++i) {
    Asn asn;
    // ~2/3 transit VPs, ~1/3 stubs (stub VPs are natural partial feeds).
    if (i % 3 != 2 && ti < transit.size()) {
      asn = transit[ti++];
    } else if (si < stub.size()) {
      asn = stub[si++];
    } else if (ti < transit.size()) {
      asn = transit[ti++];
    } else {
      break;
    }
    VpSpec vp;
    vp.asn = asn;
    vp.address = VpAddressFor(asn);
    vp.full_feed =
        std::uniform_real_distribution<>(0, 1)(rng) >= partial_fraction;
    vps.push_back(vp);
  }
  return vps;
}

std::unique_ptr<SimDriver> MakeStandardSim(const StandardSimOptions& options,
                                           const std::string& archive_root) {
  Topology topo = Topology::Generate(options.topo);
  auto driver = std::make_unique<SimDriver>(std::move(topo), archive_root,
                                            options.seed);

  uint64_t vp_seed = options.seed * 7919 + 13;
  for (int i = 0; i < options.rv_collectors; ++i) {
    CollectorConfig cfg;
    cfg.project = "routeviews";
    cfg.name = RouteViewsName(i);
    cfg.rib_period = 2 * 3600;
    cfg.update_period = 15 * 60;
    cfg.state_messages = false;
    cfg.publish_delay = options.publish_delay;
    cfg.publish_jitter = options.publish_jitter;
    cfg.corrupt_probability = options.corrupt_probability;
    cfg.asn_encoding = options.asn_encoding;
    cfg.vps = PickVps(driver->topology(), options.vps_per_collector,
                      options.partial_feed_fraction, vp_seed++);
    driver->AddCollector(std::move(cfg));
  }
  for (int i = 0; i < options.ris_collectors; ++i) {
    CollectorConfig cfg;
    cfg.project = "ris";
    cfg.name = RisName(i);
    cfg.rib_period = 8 * 3600;
    cfg.update_period = 5 * 60;
    cfg.state_messages = true;
    cfg.publish_delay = options.publish_delay;
    cfg.publish_jitter = options.publish_jitter;
    cfg.corrupt_probability = options.corrupt_probability;
    cfg.asn_encoding = options.asn_encoding;
    cfg.vps = PickVps(driver->topology(), options.vps_per_collector,
                      options.partial_feed_fraction, vp_seed++);
    driver->AddCollector(std::move(cfg));
  }

  driver->world().AnnounceAll();
  return driver;
}

}  // namespace bgps::sim
