// Prebuilt simulation scenarios shared by examples, tests and benches.
#pragma once

#include <memory>

#include "sim/driver.hpp"

namespace bgps::sim {

struct StandardSimOptions {
  TopologyConfig topo;
  int rv_collectors = 1;            // "routeviews" project, 2h RIB / 15min upd
  int ris_collectors = 1;           // "ris" project, 8h RIB / 5min upd
  int vps_per_collector = 6;
  double partial_feed_fraction = 0.3;
  Timestamp publish_delay = 120;
  Timestamp publish_jitter = 0;
  double corrupt_probability = 0.0;
  bgp::AsnEncoding asn_encoding = bgp::AsnEncoding::FourByte;
  uint64_t seed = 7;
};

// Builds a topology and a driver with RouteViews-style and RIS-style
// collectors whose VPs are drawn from the transit tier (plus some stubs,
// some partial-feed). World is announced and ready; add events and Run().
std::unique_ptr<SimDriver> MakeStandardSim(const StandardSimOptions& options,
                                           const std::string& archive_root);

// Collector naming helpers ("route-views2", "rrc00", ...).
std::string RouteViewsName(int index);
std::string RisName(int index);

// Picks `count` VP specs from the topology (deterministic per seed):
// transit-heavy mix, `partial_fraction` of them partial-feed.
std::vector<VpSpec> PickVps(const Topology& topo, int count,
                            double partial_fraction, uint64_t seed);

}  // namespace bgps::sim
