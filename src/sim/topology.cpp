#include "sim/topology.hpp"

#include <algorithm>
#include <cassert>

namespace bgps::sim {
namespace {

// Deterministic IPv4 prefix allocator: hands out /16s under 10 distinct
// /8s so prefixes from different ASes never collide, then lets ASes
// de-aggregate into /20s//24s. Public-looking space (1..99 /8s).
class PrefixAllocator {
 public:
  Prefix NextV4(int len) {
    // Allocate sequentially within a /8-per-256-ASes plan.
    uint32_t base = (uint32_t(1 + next_slash16_ / 256) << 24) |
                    (uint32_t(next_slash16_ % 256) << 16);
    ++next_slash16_;
    return Prefix(IpAddress::V4(base), len);
  }

  Prefix NextV6(int len) {
    std::array<uint8_t, 16> b{};
    b[0] = 0x20;
    b[1] = 0x01;
    b[2] = uint8_t(next_v6_ >> 8);
    b[3] = uint8_t(next_v6_);
    ++next_v6_;
    return Prefix(IpAddress::V6(b), len);
  }

 private:
  uint32_t next_slash16_ = 0;
  uint32_t next_v6_ = 1;
};

}  // namespace

void Topology::Link(Asn provider, Asn customer) {
  nodes_[provider].customers.push_back(customer);
  nodes_[customer].providers.push_back(provider);
  links_.push_back({provider, customer, LinkType::CustomerProvider});
}

void Topology::Peer(Asn a, Asn b) {
  nodes_[a].peers.push_back(b);
  nodes_[b].peers.push_back(a);
  links_.push_back({a, b, LinkType::PeerPeer});
}

Topology Topology::Generate(const TopologyConfig& config) {
  Topology topo;
  std::mt19937_64 rng(config.seed);
  PrefixAllocator alloc;

  auto pick_country = [&](AsTier tier) -> std::string {
    // Tier-1s cluster in the first few countries; stubs spread everywhere.
    if (config.countries.empty()) return "ZZ";
    if (tier == AsTier::Tier1)
      return config.countries[rng() % std::min<size_t>(
                                  3, config.countries.size())];
    return config.countries[rng() % config.countries.size()];
  };

  // Generated ASNs start at 1000 so scenario scripts can plant actors
  // with real-world-flavoured low ASNs (AS137, ...) without collisions.
  Asn next_asn = 1000;
  std::vector<Asn> tier1s, transits, stubs;

  auto make_node = [&](AsTier tier) -> AsNode& {
    Asn asn = next_asn++;
    AsNode node;
    node.asn = asn;
    node.tier = tier;
    node.country = pick_country(tier);
    auto [it, _] = topo.nodes_.emplace(asn, std::move(node));
    return it->second;
  };

  auto assign_prefixes = [&](AsNode& node, int mean_count) {
    int count = 1 + int(rng() % size_t(2 * mean_count - 1));
    for (int i = 0; i < count; ++i) {
      // Mostly /16..../20; occasionally a /24 de-aggregate.
      int len = 16 + int(rng() % 5);
      if (rng() % 8 == 0) len = 24;
      node.prefixes.push_back(alloc.NextV4(len));
    }
    bool v6 = std::uniform_real_distribution<>(0, 1)(rng) < config.v6_fraction;
    if (v6) {
      int count6 = 1 + int(rng() % 2);
      for (int i = 0; i < count6; ++i) node.prefixes_v6.push_back(alloc.NextV6(32));
    }
  };

  auto assign_policies = [&](AsNode& node) {
    if (node.tier == AsTier::Stub) return;
    std::uniform_real_distribution<> uni(0, 1);
    node.adds_communities = uni(rng) < config.community_tagger_fraction;
    node.strips_communities = uni(rng) < config.community_stripper_fraction;
    node.supports_blackholing = uni(rng) < config.blackholing_fraction;
  };

  // Tier-1 clique.
  for (int i = 0; i < config.num_tier1; ++i) {
    AsNode& n = make_node(AsTier::Tier1);
    assign_prefixes(n, 4);
    assign_policies(n);
    tier1s.push_back(n.asn);
  }
  for (size_t i = 0; i < tier1s.size(); ++i) {
    for (size_t j = i + 1; j < tier1s.size(); ++j) topo.Peer(tier1s[i], tier1s[j]);
  }

  // Transit tier: providers drawn from tier1 + earlier transits.
  for (int i = 0; i < config.num_transit; ++i) {
    AsNode& n = make_node(AsTier::Transit);
    assign_prefixes(n, config.prefixes_per_transit);
    assign_policies(n);
    std::vector<Asn> candidates = tier1s;
    candidates.insert(candidates.end(), transits.begin(), transits.end());
    int np = config.min_providers +
             int(rng() % size_t(config.max_providers - config.min_providers + 1));
    std::shuffle(candidates.begin(), candidates.end(), rng);
    for (int p = 0; p < np && p < int(candidates.size()); ++p)
      topo.Link(candidates[size_t(p)], n.asn);
    transits.push_back(n.asn);
  }
  // Extra transit-transit peerings (skipping pairs already related).
  std::uniform_real_distribution<> uni(0, 1);
  for (size_t i = 0; i < transits.size(); ++i) {
    for (size_t j = i + 1; j < transits.size(); ++j) {
      if (topo.relationship(transits[i], transits[j]) != Rel::None) continue;
      if (uni(rng) < config.peer_fraction /
                         std::max(1.0, double(transits.size()) / 10.0)) {
        topo.Peer(transits[i], transits[j]);
      }
    }
  }

  // Stubs: 1-2 providers from the transit tier (some multihomed to T1).
  for (int i = 0; i < config.num_stub; ++i) {
    AsNode& n = make_node(AsTier::Stub);
    assign_prefixes(n, config.prefixes_per_stub);
    int np = 1 + int(rng() % 2);
    for (int p = 0; p < np; ++p) {
      Asn provider;
      if (!transits.empty() && (rng() % 10 != 0 || tier1s.empty())) {
        provider = transits[rng() % transits.size()];
      } else {
        provider = tier1s[rng() % tier1s.size()];
      }
      // Avoid duplicate provider links.
      if (std::find(n.providers.begin(), n.providers.end(), provider) !=
          n.providers.end())
        continue;
      topo.Link(provider, n.asn);
    }
    stubs.push_back(n.asn);
  }

  return topo;
}

std::vector<Asn> Topology::asns_sorted() const {
  std::vector<Asn> out;
  out.reserve(nodes_.size());
  for (const auto& [asn, _] : nodes_) out.push_back(asn);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Asn> Topology::asns_in_country(const std::string& country) const {
  std::vector<Asn> out;
  for (const auto& [asn, node] : nodes_) {
    if (node.country == country) out.push_back(asn);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Topology::Rel Topology::relationship(Asn asn, Asn neighbor) const {
  const AsNode& n = nodes_.at(asn);
  if (std::find(n.providers.begin(), n.providers.end(), neighbor) !=
      n.providers.end())
    return Rel::Provider;
  if (std::find(n.customers.begin(), n.customers.end(), neighbor) !=
      n.customers.end())
    return Rel::Customer;
  if (std::find(n.peers.begin(), n.peers.end(), neighbor) != n.peers.end())
    return Rel::Peer;
  return Rel::None;
}

AsNode& Topology::AddStub(Asn asn, const std::string& country,
                          std::vector<Prefix> prefixes,
                          std::vector<Asn> providers) {
  assert(!has_node(asn) && "AddStub ASN collides with an existing node");
  AsNode node;
  node.asn = asn;
  node.tier = AsTier::Stub;
  node.country = country;
  node.prefixes = std::move(prefixes);
  auto [it, _] = nodes_.emplace(asn, std::move(node));
  for (Asn p : providers) Link(p, asn);
  return it->second;
}

std::vector<std::pair<Asn, Prefix>> Topology::all_origins() const {
  std::vector<std::pair<Asn, Prefix>> out;
  for (const auto& [asn, node] : nodes_) {
    for (const auto& p : node.prefixes) out.emplace_back(asn, p);
    for (const auto& p : node.prefixes_v6) out.emplace_back(asn, p);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace bgps::sim
