// Synthetic AS-level Internet topology.
//
// Replaces the real BGP ecosystem the paper observes through RouteViews /
// RIPE RIS. The generator builds a three-tier topology (Tier-1 clique,
// transit ISPs, stub/edge ASes) with customer-provider and peer-peer
// links, assigns IPv4/IPv6 prefixes, countries (for the per-country outage
// analysis, Fig. 10) and per-AS community policies (for the community
// propagation analysis, Fig. 5d).
#pragma once

#include <cstdint>
#include <random>
#include <unordered_map>

#include "bgp/aspath.hpp"
#include "bgp/community.hpp"
#include "util/ip.hpp"

namespace bgps::sim {

using bgp::Asn;

enum class AsTier : uint8_t { Tier1, Transit, Stub };

enum class LinkType : uint8_t { CustomerProvider, PeerPeer };

struct AsLink {
  Asn a = 0;  // provider for CustomerProvider links
  Asn b = 0;  // customer for CustomerProvider links
  LinkType type = LinkType::CustomerProvider;
};

struct AsNode {
  Asn asn = 0;
  AsTier tier = AsTier::Stub;
  std::string country;          // ISO-like 2-letter code
  std::vector<Prefix> prefixes;      // IPv4 prefixes originated
  std::vector<Prefix> prefixes_v6;   // IPv6 prefixes (empty if not v6-enabled)
  std::vector<Asn> providers;
  std::vector<Asn> customers;
  std::vector<Asn> peers;

  // Community behaviour (drives Fig. 5d): transit ASes may tag routes they
  // propagate; some ASes strip communities before exporting.
  bool adds_communities = false;
  bool strips_communities = false;
  // Providers supporting RTBH advertise a blackhole community
  // (<asn>:666) their customers can attach (§4.3).
  bool supports_blackholing = false;

  bool is_transit() const { return tier != AsTier::Stub; }
};

struct TopologyConfig {
  int num_tier1 = 8;
  int num_transit = 40;
  int num_stub = 200;
  int min_providers = 1;
  int max_providers = 3;
  double peer_fraction = 0.15;     // extra transit-transit peerings
  double v6_fraction = 0.35;       // ASes originating IPv6 too
  double community_tagger_fraction = 0.6;   // transit ASes tagging routes
  double community_stripper_fraction = 0.15;
  double blackholing_fraction = 0.5;        // transit ASes supporting RTBH
  int prefixes_per_stub = 3;       // mean, geometric-ish
  int prefixes_per_transit = 6;
  std::vector<std::string> countries = {"US", "DE", "JP", "BR", "IQ",
                                        "IT", "RO", "FR", "GB", "IN"};
  uint64_t seed = 42;
};

class Topology {
 public:
  // Generates a topology per config; deterministic for a given seed.
  static Topology Generate(const TopologyConfig& config);

  const AsNode& node(Asn asn) const { return nodes_.at(asn); }
  AsNode& node(Asn asn) { return nodes_.at(asn); }
  bool has_node(Asn asn) const { return nodes_.count(asn) != 0; }
  const std::unordered_map<Asn, AsNode>& nodes() const { return nodes_; }
  const std::vector<AsLink>& links() const { return links_; }

  std::vector<Asn> asns_sorted() const;
  std::vector<Asn> asns_in_country(const std::string& country) const;

  // Relationship of `neighbor` from `asn`'s point of view.
  enum class Rel { Provider, Customer, Peer, None };
  Rel relationship(Asn asn, Asn neighbor) const;

  // Adds a stub AS with explicit attributes (used by scenario scripts to
  // plant actors like the GARR-style victim and its hijacker).
  AsNode& AddStub(Asn asn, const std::string& country,
                  std::vector<Prefix> prefixes, std::vector<Asn> providers);

  // All (origin AS, prefix) pairs, both families.
  std::vector<std::pair<Asn, Prefix>> all_origins() const;

 private:
  void Link(Asn provider, Asn customer);
  void Peer(Asn a, Asn b);

  std::unordered_map<Asn, AsNode> nodes_;
  std::vector<AsLink> links_;
};

}  // namespace bgps::sim
