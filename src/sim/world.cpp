#include "sim/world.hpp"

#include <algorithm>

namespace bgps::sim {

void World::Recompute(const Prefix& prefix) {
  auto it = announced_.find(prefix);
  if (it == announced_.end() || it->second.empty()) {
    routes_.erase(prefix);
    blackhole_.erase(prefix);
    index_.erase(prefix);
    return;
  }
  routes_[prefix] = PropagateRoutes(*topo_, it->second);
  index_.insert(prefix, 1);

  // RTBH: an AS null-routes the prefix if it supports blackholing and any
  // origin attached that AS's <asn>:666 community.
  std::set<Asn> bh;
  for (const auto& spec : it->second) {
    for (const auto& c : spec.communities) {
      if (c.value() != kBlackholeValue) continue;
      Asn asn = c.asn();
      if (topo_->has_node(asn) && topo_->node(asn).supports_blackholing)
        bh.insert(asn);
    }
  }
  if (bh.empty()) {
    blackhole_.erase(prefix);
  } else {
    blackhole_[prefix] = std::move(bh);
  }
}

std::optional<Route> World::Export(Asn vp, const RouteMap& routes,
                                   bool full_feed) const {
  auto it = routes.find(vp);
  if (it == routes.end()) return std::nullopt;
  if (!full_feed && it->second.source != RouteSource::Origin &&
      it->second.source != RouteSource::Customer)
    return std::nullopt;
  return it->second;
}

std::vector<VpDelta> World::SetOrigins(const Prefix& prefix,
                                       std::vector<OriginSpec> origins,
                                       const std::vector<Asn>& vps) {
  // Snapshot old exported views (full-feed view; collectors re-filter for
  // partial feeds — deltas carry the raw route, filtering happens there).
  RouteMap old_routes;
  if (auto it = routes_.find(prefix); it != routes_.end())
    old_routes = it->second;

  if (origins.empty()) {
    announced_.erase(prefix);
  } else {
    announced_[prefix] = std::move(origins);
  }
  Recompute(prefix);

  const RouteMap* new_routes = nullptr;
  if (auto it = routes_.find(prefix); it != routes_.end())
    new_routes = &it->second;

  std::vector<VpDelta> deltas;
  for (Asn vp : vps) {
    std::optional<Route> before, after;
    if (auto it = old_routes.find(vp); it != old_routes.end())
      before = it->second;
    if (new_routes) {
      if (auto it = new_routes->find(vp); it != new_routes->end())
        after = it->second;
    }
    if (before == after) continue;
    deltas.push_back(VpDelta{vp, prefix, std::move(before), std::move(after)});
  }
  return deltas;
}

std::vector<VpDelta> World::Withdraw(const Prefix& prefix,
                                     const std::vector<Asn>& vps) {
  return SetOrigins(prefix, {}, vps);
}

void World::AnnounceAll() {
  for (const auto& [asn, node] : topo_->nodes()) {
    for (const auto& p : node.prefixes) {
      announced_[p] = {OriginSpec{asn, {}}};
    }
    for (const auto& p : node.prefixes_v6) {
      announced_[p] = {OriginSpec{asn, {}}};
    }
  }
  for (const auto& [prefix, _] : announced_) Recompute(prefix);
}

std::vector<OriginSpec> World::origins(const Prefix& prefix) const {
  auto it = announced_.find(prefix);
  return it == announced_.end() ? std::vector<OriginSpec>{} : it->second;
}

std::optional<Route> World::ExportedRoute(Asn vp, const Prefix& prefix,
                                          bool full_feed) const {
  auto it = routes_.find(prefix);
  if (it == routes_.end()) return std::nullopt;
  return Export(vp, it->second, full_feed);
}

std::map<Prefix, Route> World::ExportedTable(Asn vp, bool full_feed) const {
  std::map<Prefix, Route> out;
  for (const auto& [prefix, routes] : routes_) {
    if (auto r = Export(vp, routes, full_feed)) out.emplace(prefix, *r);
  }
  return out;
}

std::set<Asn> World::blackholers(const Prefix& prefix) const {
  auto it = blackhole_.find(prefix);
  return it == blackhole_.end() ? std::set<Asn>{} : it->second;
}

World::TracerouteResult World::Traceroute(Asn src_asn,
                                          const IpAddress& dst) const {
  TracerouteResult result;
  Asn current = src_asn;
  // TTL guard: AS paths in the sim are < 16 hops.
  for (int ttl = 0; ttl < 32; ++ttl) {
    result.hops.push_back(current);

    // Null-route check at this hop.
    bool dropped = false;
    index_.visit_matches(dst, [&](const Prefix& p, char) {
      auto bh = blackhole_.find(p);
      if (bh != blackhole_.end() && bh->second.count(current)) dropped = true;
    });
    if (dropped) {
      result.blackholed = true;
      return result;
    }

    // Longest-prefix-match forwarding: most specific announced prefix
    // containing dst for which this hop has a route.
    std::vector<Prefix> candidates;
    index_.visit_matches(dst, [&](const Prefix& p, char) {
      candidates.push_back(p);
    });
    // visit_matches yields least->most specific; walk from the back.
    const Route* route = nullptr;
    for (auto it = candidates.rbegin(); it != candidates.rend(); ++it) {
      auto rm = routes_.find(*it);
      if (rm == routes_.end()) continue;
      auto r = rm->second.find(current);
      if (r != rm->second.end()) {
        route = &r->second;
        break;
      }
    }
    if (route == nullptr) {
      result.no_route = true;
      return result;
    }
    if (route->path.empty()) {
      // This AS originates the best-matching prefix: delivered.
      result.reached_origin = true;
      return result;
    }
    current = route->path.front();
  }
  result.no_route = true;  // loop guard tripped
  return result;
}

}  // namespace bgps::sim
