// World: dynamic routing state of the simulated Internet.
//
// Holds the per-prefix control plane (which origins announce what, with
// which communities, and the resulting per-AS best routes), applies
// events (announce / withdraw / hijack / RTBH), reports per-VP deltas so
// collectors can emit update messages, and answers data-plane forwarding
// queries (the RIPE-Atlas-traceroute stand-in for Fig. 4).
#pragma once

#include <map>
#include <set>

#include "sim/routing.hpp"
#include "util/patricia.hpp"

namespace bgps::sim {

// The per-VP consequence of a control-plane change: the VP's exported
// route for `prefix` changed from `before` to `after` (nullopt = no
// route / withdrawn). Collectors translate these into update messages.
struct VpDelta {
  Asn vp = 0;
  Prefix prefix;
  std::optional<Route> before;
  std::optional<Route> after;
};

class World {
 public:
  explicit World(const Topology* topo) : topo_(topo) {}

  const Topology& topology() const { return *topo_; }

  // (Re)announces `prefix` from the given origin set, recomputes routes
  // and returns the per-VP deltas for `vps` (their *exported* view, which
  // for partial-feed VPs covers only own/customer routes).
  std::vector<VpDelta> SetOrigins(const Prefix& prefix,
                                  std::vector<OriginSpec> origins,
                                  const std::vector<Asn>& vps);

  // Withdraws `prefix` everywhere.
  std::vector<VpDelta> Withdraw(const Prefix& prefix,
                                const std::vector<Asn>& vps);

  // Convenience: announce every prefix of every AS from its owner, with
  // no deltas reported (initial world bring-up).
  void AnnounceAll();

  // Current origin set of a prefix (empty = not announced).
  std::vector<OriginSpec> origins(const Prefix& prefix) const;
  const std::map<Prefix, std::vector<OriginSpec>>& announced() const {
    return announced_;
  }

  // The route `vp` exports to a collector (nullopt if none, or if the VP
  // is partial-feed and the route is peer/provider-learned).
  std::optional<Route> ExportedRoute(Asn vp, const Prefix& prefix,
                                     bool full_feed) const;

  // Full exported table of a VP: prefix -> route.
  std::map<Prefix, Route> ExportedTable(Asn vp, bool full_feed) const;

  // --- data plane -----------------------------------------------------

  struct TracerouteResult {
    std::vector<Asn> hops;        // ASes traversed, starting at the source
    bool reached_origin = false;  // packet arrived at the origin AS
    bool blackholed = false;      // dropped by an RTBH null-route
    bool no_route = false;        // a hop had no route toward the target
  };

  // Forwards a packet from `src_asn` toward `dst`, following each hop's
  // best route (most-specific announced prefix with a route at that hop).
  // RTBH null-routes drop the packet at the blackholing AS (§4.3).
  TracerouteResult Traceroute(Asn src_asn, const IpAddress& dst) const;

  // ASes currently null-routing `prefix` (providers whose blackhole
  // community was attached and that support RTBH).
  std::set<Asn> blackholers(const Prefix& prefix) const;

 private:
  void Recompute(const Prefix& prefix);
  std::optional<Route> Export(Asn vp, const RouteMap& routes,
                              bool full_feed) const;

  const Topology* topo_;
  std::map<Prefix, std::vector<OriginSpec>> announced_;
  std::map<Prefix, RouteMap> routes_;
  std::map<Prefix, std::set<Asn>> blackhole_;
  PrefixTable<char> index_;  // announced prefixes, for LPM forwarding
};

// Standard RTBH community value (<provider>:666), as used by many real
// providers and the paper's compiled blackholing-community list.
inline constexpr uint16_t kBlackholeValue = 666;

}  // namespace bgps::sim
