// Bump arena + string interning for the decode hot path.
//
// Arena generalizes the ElemArena idea from core/dump_reader.hpp: instead
// of predicting one vector's capacity, it services many small, same-
// lifetime allocations (AS-path intern keys, scratch spans) from large
// blocks that are freed wholesale when the owning dump / chunked file is
// destroyed. Allocation is a pointer bump; there is no per-object free.
//
// InternedString is a process-wide, never-freed string pool for low-
// cardinality provenance strings (project/collector names): each distinct
// value is stored once, and a Record carries a pointer — copying a record
// no longer copies (or allocates) its provenance strings. Pointer
// equality is value equality.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace bgps {

class Arena {
 public:
  explicit Arena(size_t block_bytes = 16 * 1024) : block_bytes_(block_bytes) {}
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Bump-allocates `bytes` with `align` alignment. Never returns null;
  // memory is freed only when the arena is destroyed (or Reset).
  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t)) {
    size_t base = (used_ + align - 1) & ~(align - 1);
    if (blocks_.empty() || base + bytes > blocks_.back().size) {
      NewBlock(bytes + align);
      base = (used_ + align - 1) & ~(align - 1);
    }
    void* p = blocks_.back().data.get() + base;
    used_ = base + bytes;
    bytes_allocated_ += bytes;
    return p;
  }

  // Copies `s` into the arena; the view stays valid for the arena's
  // lifetime.
  std::string_view Intern(std::string_view s) {
    if (s.empty()) return {};
    char* p = static_cast<char*>(Allocate(s.size(), 1));
    std::memcpy(p, s.data(), s.size());
    return {p, s.size()};
  }

  // Total user bytes handed out (stats / tests).
  size_t bytes_allocated() const { return bytes_allocated_; }
  // Total block bytes reserved from the heap.
  size_t bytes_reserved() const {
    size_t total = 0;
    for (const auto& b : blocks_) total += b.size;
    return total;
  }

  // Drops every block: all views/pointers into the arena are invalidated.
  void Reset() {
    blocks_.clear();
    used_ = 0;
    bytes_allocated_ = 0;
  }

 private:
  struct Block {
    std::unique_ptr<uint8_t[]> data;
    size_t size = 0;
  };

  void NewBlock(size_t at_least) {
    size_t size = std::max(block_bytes_, at_least);
    blocks_.push_back({std::make_unique<uint8_t[]>(size), size});
    used_ = 0;
  }

  size_t block_bytes_;
  std::vector<Block> blocks_;
  size_t used_ = 0;  // bytes consumed in blocks_.back()
  size_t bytes_allocated_ = 0;
};

// A pointer into the process-wide provenance-string pool. Implicitly
// converts to const std::string&; interning (the only allocation) happens
// once per distinct value for the process lifetime.
class InternedString {
 public:
  InternedString() : s_(&EmptyString()) {}
  InternedString(std::string_view s) : s_(&Intern(s)) {}
  InternedString(const std::string& s) : s_(&Intern(s)) {}
  InternedString(const char* s) : s_(&Intern(s)) {}

  operator const std::string&() const { return *s_; }
  const std::string& str() const { return *s_; }
  const char* c_str() const { return s_->c_str(); }
  size_t size() const { return s_->size(); }
  bool empty() const { return s_->empty(); }
  auto begin() const { return s_->begin(); }
  auto end() const { return s_->end(); }

  // Pointer equality is value equality: each value is stored once.
  // C++20 synthesizes the reversed and != forms; the exact-match
  // overloads below keep mixed comparisons unambiguous despite the
  // implicit conversions both ways.
  friend bool operator==(const InternedString& a, const InternedString& b) {
    return a.s_ == b.s_;
  }
  friend bool operator==(const InternedString& a, const std::string& b) {
    return *a.s_ == b;
  }
  friend bool operator==(const InternedString& a, const char* b) {
    return *a.s_ == b;
  }
  friend bool operator==(const InternedString& a, std::string_view b) {
    return *a.s_ == b;
  }
  friend bool operator<(const InternedString& a, const InternedString& b) {
    return *a.s_ < *b.s_;
  }

 private:
  struct Hash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>()(s);
    }
    size_t operator()(const std::string& s) const {
      return std::hash<std::string_view>()(s);
    }
  };

  static const std::string& EmptyString() {
    static const std::string empty;
    return empty;
  }

  static const std::string& Intern(std::string_view s) {
    if (s.empty()) return EmptyString();
    // Node-based set: element addresses survive rehashing. Entries are
    // never erased (provenance names are low-cardinality).
    static std::mutex mu;
    static std::unordered_set<std::string, Hash, std::equal_to<>> pool;
    std::lock_guard<std::mutex> lock(mu);
    auto it = pool.find(s);
    if (it == pool.end()) it = pool.emplace(s).first;
    return *it;
  }

  const std::string* s_;
};

}  // namespace bgps

template <>
struct std::hash<bgps::InternedString> {
  size_t operator()(bgps::InternedString s) const {
    return std::hash<const std::string*>()(&s.str());
  }
};
