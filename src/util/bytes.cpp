#include "util/bytes.hpp"

namespace bgps {

Result<uint8_t> BufReader::u8() {
  if (remaining() < 1) return OutOfRange("u8 past end");
  return data_[pos_++];
}

Result<uint16_t> BufReader::u16() {
  if (remaining() < 2) return OutOfRange("u16 past end");
  uint16_t v = (uint16_t(data_[pos_]) << 8) | uint16_t(data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

Result<uint32_t> BufReader::u32() {
  if (remaining() < 4) return OutOfRange("u32 past end");
  uint32_t v = (uint32_t(data_[pos_]) << 24) | (uint32_t(data_[pos_ + 1]) << 16) |
               (uint32_t(data_[pos_ + 2]) << 8) | uint32_t(data_[pos_ + 3]);
  pos_ += 4;
  return v;
}

Result<uint64_t> BufReader::u64() {
  if (remaining() < 8) return OutOfRange("u64 past end");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | data_[pos_ + i];
  pos_ += 8;
  return v;
}

Result<Bytes> BufReader::bytes(size_t n) {
  if (remaining() < n) return OutOfRange("bytes past end");
  Bytes out(data_.begin() + pos_, data_.begin() + pos_ + n);
  pos_ += n;
  return out;
}

Result<std::span<const uint8_t>> BufReader::view(size_t n) {
  if (remaining() < n) return OutOfRange("view past end");
  auto out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

Result<std::string> BufReader::str(size_t n) {
  if (remaining() < n) return OutOfRange("str past end");
  std::string out(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return out;
}

Status BufReader::skip(size_t n) {
  if (remaining() < n) return OutOfRange("skip past end");
  pos_ += n;
  return OkStatus();
}

Result<BufReader> BufReader::sub(size_t n) {
  if (remaining() < n) return OutOfRange("sub past end");
  BufReader r(data_.subspan(pos_, n));
  pos_ += n;
  return r;
}

void BufWriter::u8(uint8_t v) { out_.push_back(v); }

void BufWriter::u16(uint16_t v) {
  out_.push_back(uint8_t(v >> 8));
  out_.push_back(uint8_t(v));
}

void BufWriter::u32(uint32_t v) {
  out_.push_back(uint8_t(v >> 24));
  out_.push_back(uint8_t(v >> 16));
  out_.push_back(uint8_t(v >> 8));
  out_.push_back(uint8_t(v));
}

void BufWriter::u64(uint64_t v) {
  for (int i = 7; i >= 0; --i) out_.push_back(uint8_t(v >> (8 * i)));
}

void BufWriter::bytes(std::span<const uint8_t> data) {
  out_.insert(out_.end(), data.begin(), data.end());
}

void BufWriter::str(const std::string& s) {
  out_.insert(out_.end(), s.begin(), s.end());
}

void BufWriter::patch_u16(size_t offset, uint16_t v) {
  out_[offset] = uint8_t(v >> 8);
  out_[offset + 1] = uint8_t(v);
}

void BufWriter::patch_u32(size_t offset, uint32_t v) {
  out_[offset] = uint8_t(v >> 24);
  out_[offset + 1] = uint8_t(v >> 16);
  out_[offset + 2] = uint8_t(v >> 8);
  out_[offset + 3] = uint8_t(v);
}

}  // namespace bgps
