// Bounds-checked big-endian buffer reader/writer.
//
// All BGP and MRT wire formats are network byte order (RFC 4271 §4,
// RFC 6396 §2). Every read is bounds-checked and failures surface as
// Status, never as UB — a truncated MRT file must yield a Corrupt record,
// not a crash (paper §3.3.3).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "util/result.hpp"

namespace bgps {

using Bytes = std::vector<uint8_t>;

class BufReader {
 public:
  explicit BufReader(std::span<const uint8_t> data) : data_(data) {}
  BufReader(const uint8_t* data, size_t size) : data_(data, size) {}

  size_t remaining() const { return data_.size() - pos_; }
  size_t position() const { return pos_; }
  bool empty() const { return remaining() == 0; }

  Result<uint8_t> u8();
  Result<uint16_t> u16();
  Result<uint32_t> u32();
  Result<uint64_t> u64();

  // Copies `n` bytes out of the buffer.
  Result<Bytes> bytes(size_t n);
  // Zero-copy view of the next `n` bytes.
  Result<std::span<const uint8_t>> view(size_t n);
  // Reads `n` bytes as a (not necessarily NUL-terminated) string.
  Result<std::string> str(size_t n);

  Status skip(size_t n);

  // Sub-reader over the next `n` bytes; advances this reader past them.
  // Used for length-delimited structures (MRT record body, attribute TLVs).
  Result<BufReader> sub(size_t n);

 private:
  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

class BufWriter {
 public:
  BufWriter() = default;

  void u8(uint8_t v);
  void u16(uint16_t v);
  void u32(uint32_t v);
  void u64(uint64_t v);
  void bytes(std::span<const uint8_t> data);
  void str(const std::string& s);

  // Patch a previously written big-endian u16/u32 at `offset` — used to
  // backfill length fields after writing a variable-size body.
  void patch_u16(size_t offset, uint16_t v);
  void patch_u32(size_t offset, uint32_t v);

  size_t size() const { return out_.size(); }
  const Bytes& data() const { return out_; }
  Bytes take() { return std::move(out_); }

 private:
  Bytes out_;
};

}  // namespace bgps
