#include "util/ip.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>

namespace bgps {
namespace {

// FNV-1a over a byte range; cheap and adequate for hash containers.
size_t FnvHash(const uint8_t* data, size_t n, size_t seed) {
  size_t h = seed ^ 1469598103934665603ull;
  for (size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 1099511628211ull;
  }
  return h;
}

Result<uint16_t> ParseHexGroup(const std::string& s) {
  if (s.empty() || s.size() > 4) return InvalidArgument("bad v6 group: " + s);
  uint16_t v = 0;
  auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v, 16);
  if (ec != std::errc() || p != s.data() + s.size())
    return InvalidArgument("bad v6 group: " + s);
  return v;
}

}  // namespace

IpAddress IpAddress::V4(uint32_t host_order) {
  IpAddress a;
  a.family_ = IpFamily::V4;
  a.bytes_[0] = uint8_t(host_order >> 24);
  a.bytes_[1] = uint8_t(host_order >> 16);
  a.bytes_[2] = uint8_t(host_order >> 8);
  a.bytes_[3] = uint8_t(host_order);
  return a;
}

IpAddress IpAddress::V4(uint8_t a, uint8_t b, uint8_t c, uint8_t d) {
  return V4((uint32_t(a) << 24) | (uint32_t(b) << 16) | (uint32_t(c) << 8) | d);
}

IpAddress IpAddress::V6(const std::array<uint8_t, 16>& bytes) {
  IpAddress a;
  a.family_ = IpFamily::V6;
  a.bytes_ = bytes;
  return a;
}

Result<IpAddress> IpAddress::Parse(const std::string& text) {
  if (text.find(':') == std::string::npos) {
    // IPv4 dotted quad.
    uint32_t parts[4];
    int idx = 0;
    size_t pos = 0;
    bool consumed_all = false;
    while (idx < 4) {
      size_t dot = text.find('.', pos);
      std::string part = text.substr(pos, dot == std::string::npos
                                              ? std::string::npos
                                              : dot - pos);
      if (part.empty() || part.size() > 3) return InvalidArgument("bad IPv4: " + text);
      uint32_t v = 0;
      auto [p, ec] = std::from_chars(part.data(), part.data() + part.size(), v);
      if (ec != std::errc() || p != part.data() + part.size() || v > 255)
        return InvalidArgument("bad IPv4: " + text);
      parts[idx++] = v;
      if (dot == std::string::npos) {
        consumed_all = true;
        break;
      }
      pos = dot + 1;
    }
    if (idx != 4 || !consumed_all)
      return InvalidArgument("bad IPv4: " + text);
    return V4(uint8_t(parts[0]), uint8_t(parts[1]), uint8_t(parts[2]),
              uint8_t(parts[3]));
  }

  // IPv6: split on ':' handling one '::'.
  std::vector<std::string> head, tail;
  bool seen_gap = false;
  size_t i = 0;
  const size_t n = text.size();
  std::string cur;
  // Normalize: iterate chars, track "::".
  while (i < n) {
    if (text[i] == ':') {
      if (i + 1 < n && text[i + 1] == ':') {
        if (seen_gap) return InvalidArgument("multiple :: in " + text);
        if (!cur.empty()) {
          head.push_back(cur);
          cur.clear();
        }
        seen_gap = true;
        i += 2;
        continue;
      }
      if (!cur.empty()) {
        (seen_gap ? tail : head).push_back(cur);
        cur.clear();
      } else {
        // A lone ':' with no group before it is only legal as part of
        // '::', which the branch above consumes.
        return InvalidArgument("empty group in " + text);
      }
      ++i;
      continue;
    }
    cur += text[i++];
  }
  if (!cur.empty()) (seen_gap ? tail : head).push_back(cur);

  size_t groups = head.size() + tail.size();
  if ((!seen_gap && groups != 8) || (seen_gap && groups > 7))
    return InvalidArgument("bad IPv6 group count: " + text);

  std::array<uint8_t, 16> bytes{};
  size_t gi = 0;
  for (const auto& g : head) {
    BGPS_ASSIGN_OR_RETURN(uint16_t v, ParseHexGroup(g));
    bytes[gi * 2] = uint8_t(v >> 8);
    bytes[gi * 2 + 1] = uint8_t(v);
    ++gi;
  }
  gi = 8 - tail.size();
  for (const auto& g : tail) {
    BGPS_ASSIGN_OR_RETURN(uint16_t v, ParseHexGroup(g));
    bytes[gi * 2] = uint8_t(v >> 8);
    bytes[gi * 2 + 1] = uint8_t(v);
    ++gi;
  }
  return V6(bytes);
}

uint32_t IpAddress::v4() const {
  return (uint32_t(bytes_[0]) << 24) | (uint32_t(bytes_[1]) << 16) |
         (uint32_t(bytes_[2]) << 8) | uint32_t(bytes_[3]);
}

bool IpAddress::bit(int i) const {
  return (bytes_[size_t(i) / 8] >> (7 - (i % 8))) & 1;
}

IpAddress IpAddress::masked(int len) const {
  IpAddress out = *this;
  const int w = width();
  if (len < 0) len = 0;
  if (len > w) len = w;
  int full = len / 8;
  int rem = len % 8;
  int nbytes = w / 8;
  if (full < nbytes && rem > 0) {
    out.bytes_[size_t(full)] &= uint8_t(0xFF << (8 - rem));
    ++full;
  }
  for (int b = full; b < nbytes; ++b) out.bytes_[size_t(b)] = 0;
  return out;
}

int IpAddress::common_prefix_len(const IpAddress& other) const {
  const int w = std::min(width(), other.width());
  for (int i = 0; i < w / 8; ++i) {
    uint8_t diff = bytes_[size_t(i)] ^ other.bytes_[size_t(i)];
    if (diff != 0) {
      int lead = 0;
      while (!(diff & 0x80)) {
        diff <<= 1;
        ++lead;
      }
      return i * 8 + lead;
    }
  }
  return w;
}

std::string IpAddress::ToString() const {
  char buf[64];
  if (is_v4()) {
    std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", bytes_[0], bytes_[1],
                  bytes_[2], bytes_[3]);
    return buf;
  }
  // RFC 5952-ish: compress the longest zero run (len >= 2).
  uint16_t groups[8];
  for (int i = 0; i < 8; ++i)
    groups[i] = uint16_t((bytes_[size_t(i) * 2] << 8) | bytes_[size_t(i) * 2 + 1]);
  int best_start = -1, best_len = 0;
  for (int i = 0; i < 8;) {
    if (groups[i] == 0) {
      int j = i;
      while (j < 8 && groups[j] == 0) ++j;
      if (j - i > best_len) {
        best_len = j - i;
        best_start = i;
      }
      i = j;
    } else {
      ++i;
    }
  }
  if (best_len < 2) best_start = -1;
  std::string out;
  for (int i = 0; i < 8;) {
    if (i == best_start) {
      out += "::";  // the gap renders as two colons wherever it sits
      i += best_len;
      continue;
    }
    if (!out.empty() && out.back() != ':') out += ':';
    std::snprintf(buf, sizeof(buf), "%x", groups[i]);
    out += buf;
    ++i;
  }
  if (out.empty()) out = "::";
  return out;
}

std::strong_ordering IpAddress::operator<=>(const IpAddress& o) const {
  if (family_ != o.family_)
    return family_ == IpFamily::V4 ? std::strong_ordering::less
                                   : std::strong_ordering::greater;
  const int nbytes = width() / 8;
  for (int i = 0; i < nbytes; ++i) {
    if (bytes_[size_t(i)] != o.bytes_[size_t(i)])
      return bytes_[size_t(i)] <=> o.bytes_[size_t(i)];
  }
  return std::strong_ordering::equal;
}

size_t IpAddress::hash() const {
  return FnvHash(bytes_.data(), size_t(width()) / 8,
                 family_ == IpFamily::V4 ? 4 : 6);
}

Prefix::Prefix(IpAddress addr, int len) : addr_(addr.masked(len)), len_(len) {
  if (len_ < 0) len_ = 0;
  if (len_ > addr_.width()) len_ = addr_.width();
}

Result<Prefix> Prefix::Parse(const std::string& text) {
  size_t slash = text.find('/');
  if (slash == std::string::npos)
    return InvalidArgument("prefix missing '/': " + text);
  BGPS_ASSIGN_OR_RETURN(IpAddress addr, IpAddress::Parse(text.substr(0, slash)));
  std::string lenpart = text.substr(slash + 1);
  int len = 0;
  auto [p, ec] = std::from_chars(lenpart.data(), lenpart.data() + lenpart.size(), len);
  if (ec != std::errc() || p != lenpart.data() + lenpart.size())
    return InvalidArgument("bad prefix length: " + text);
  if (len < 0 || len > addr.width())
    return InvalidArgument("prefix length out of range: " + text);
  return Prefix(addr, len);
}

bool Prefix::contains(const IpAddress& addr) const {
  if (addr.family() != family()) return false;
  return addr.common_prefix_len(addr_) >= len_;
}

bool Prefix::contains(const Prefix& other) const {
  if (other.family() != family()) return false;
  return other.len_ >= len_ && other.addr_.common_prefix_len(addr_) >= len_;
}

bool Prefix::overlaps(const Prefix& other) const {
  return contains(other) || other.contains(*this);
}

std::string Prefix::ToString() const {
  return addr_.ToString() + "/" + std::to_string(len_);
}

std::strong_ordering Prefix::operator<=>(const Prefix& o) const {
  if (auto c = addr_ <=> o.addr_; c != std::strong_ordering::equal) return c;
  return len_ <=> o.len_;
}

size_t Prefix::hash() const { return addr_.hash() * 31 + size_t(len_); }

}  // namespace bgps
