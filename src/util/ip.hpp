// IP addresses and prefixes (IPv4 + IPv6) — the vocabulary types of the
// whole stack (Table 1: peer address, prefix, next hop).
//
// Both families share one 16-byte representation; IPv4 uses the first 4
// bytes. All bit-level operations (masking, containment, common-prefix
// length) are family-aware.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "util/result.hpp"

namespace bgps {

enum class IpFamily : uint8_t { V4 = 4, V6 = 6 };

class IpAddress {
 public:
  IpAddress() : family_(IpFamily::V4), bytes_{} {}

  static IpAddress V4(uint32_t host_order);
  static IpAddress V4(uint8_t a, uint8_t b, uint8_t c, uint8_t d);
  static IpAddress V6(const std::array<uint8_t, 16>& bytes);
  // Parses dotted-quad or RFC 4291 textual IPv6 (with '::' compression).
  static Result<IpAddress> Parse(const std::string& text);

  IpFamily family() const { return family_; }
  bool is_v4() const { return family_ == IpFamily::V4; }
  bool is_v6() const { return family_ == IpFamily::V6; }

  // Address width in bits: 32 or 128.
  int width() const { return is_v4() ? 32 : 128; }

  // Raw bytes (4 meaningful for v4, 16 for v6).
  const std::array<uint8_t, 16>& bytes() const { return bytes_; }
  uint32_t v4() const;  // host-order u32; only valid for v4

  // Bit `i` counted from the most significant bit of the address.
  bool bit(int i) const;

  // Returns a copy with all bits after `len` cleared.
  IpAddress masked(int len) const;

  // Length of the common leading-bit run with `other` (same family).
  int common_prefix_len(const IpAddress& other) const;

  std::string ToString() const;

  std::strong_ordering operator<=>(const IpAddress& o) const;
  bool operator==(const IpAddress& o) const = default;

  size_t hash() const;

 private:
  IpFamily family_;
  std::array<uint8_t, 16> bytes_;
};

class Prefix {
 public:
  Prefix() : addr_(), len_(0) {}
  // The address is masked to `len` bits so equal prefixes compare equal.
  Prefix(IpAddress addr, int len);

  // Parses "a.b.c.d/len" or "v6addr/len".
  static Result<Prefix> Parse(const std::string& text);

  const IpAddress& address() const { return addr_; }
  int length() const { return len_; }
  IpFamily family() const { return addr_.family(); }
  int max_length() const { return addr_.width(); }

  bool contains(const IpAddress& addr) const;
  // True if `other` is equal to or more specific than *this.
  bool contains(const Prefix& other) const;
  // True if the two prefixes share any address (one contains the other).
  bool overlaps(const Prefix& other) const;

  std::string ToString() const;

  std::strong_ordering operator<=>(const Prefix& o) const;
  bool operator==(const Prefix& o) const = default;

  size_t hash() const;

 private:
  IpAddress addr_;
  int len_;
};

}  // namespace bgps

namespace std {
template <>
struct hash<bgps::IpAddress> {
  size_t operator()(const bgps::IpAddress& a) const { return a.hash(); }
};
template <>
struct hash<bgps::Prefix> {
  size_t operator()(const bgps::Prefix& p) const { return p.hash(); }
};
}  // namespace std
