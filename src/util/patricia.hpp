// Binary patricia (radix) trie keyed by IP prefixes.
//
// Used by the pfxmonitor plugin (§6.1: "selects only the ... records
// related to prefixes that overlap with the given IP address ranges")
// and by prefix filters in the core library. Supports exact match,
// longest-prefix match, and overlap queries (any stored prefix that
// contains, or is contained by, the query prefix).
//
// Concurrency model (the pfxmonitor-style read path): nodes are
// immutable once published — every mutation path-copies the spine from
// the root to the changed node and swaps in a new root under a small
// mutex (copy-on-write publish). snapshot() hands out the current root
// as an immutable epoch: queries against a Snapshot — or against the
// trie itself, whose const queries pin the root once per call — run
// concurrently with a writer and always see a consistent trie, never a
// torn one. The contract is single-writer / many-readers: mutations
// must not race each other, reads are safe from any thread.
//
// Traversals are iterative with an explicit stack (a million-node trie
// must not recurse per node), and erase() prunes now-valueless glue
// chains so long-running monitors don't leak nodes.
//
// One trie holds a single address family; PrefixTable below pairs a
// v4 and a v6 trie behind one interface.
#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "util/ip.hpp"

namespace bgps {

template <typename V>
class PatriciaTrie {
  struct Node;
  using NodePtr = std::shared_ptr<const Node>;

 public:
  explicit PatriciaTrie(IpFamily family) : family_(family) {}

  PatriciaTrie(const PatriciaTrie&) = delete;
  PatriciaTrie& operator=(const PatriciaTrie&) = delete;
  PatriciaTrie(PatriciaTrie&& other) noexcept : family_(other.family_) {
    std::lock_guard<std::mutex> lock(other.mu_);
    root_ = std::move(other.root_);
    size_ = other.size_;
    other.size_ = 0;
  }

  IpFamily family() const { return family_; }
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return size_;
  }
  bool empty() const { return size() == 0; }

  // An immutable epoch of the trie: the root captured at snapshot()
  // time plus the query algorithms. Reads cost the same as on the live
  // trie and are unaffected by concurrent writers (which publish new
  // roots without touching shared nodes).
  class Snapshot {
   public:
    IpFamily family() const { return family_; }
    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    const V* find(const Prefix& p) const {
      if (p.family() != family_) return nullptr;
      const Node* n = Locate(root_.get(), p);
      return (n && n->value) ? &*n->value : nullptr;
    }

    std::optional<std::pair<Prefix, V>> longest_match(
        const IpAddress& addr) const {
      if (addr.family() != family_) return std::nullopt;
      return LongestMatch(root_.get(), addr);
    }

    bool overlaps(const Prefix& q) const {
      bool hit = false;
      visit_overlaps(q, [&](const Prefix&, const V&) { hit = true; });
      return hit;
    }

    template <typename Fn>
    void visit_overlaps(const Prefix& q, Fn&& fn) const {
      if (q.family() != family_) return;
      VisitOverlaps(root_.get(), q, fn);
    }

    template <typename Fn>
    void visit_matches(const IpAddress& addr, Fn&& fn) const {
      if (addr.family() != family_) return;
      VisitMatches(root_.get(), addr, fn);
    }

    template <typename Fn>
    void visit_all(Fn&& fn) const {
      VisitAll(root_.get(), fn);
    }

    std::vector<Prefix> keys() const {
      std::vector<Prefix> out;
      out.reserve(size_);
      visit_all([&](const Prefix& p, const V&) { out.push_back(p); });
      return out;
    }

   private:
    friend class PatriciaTrie;
    Snapshot(IpFamily family, NodePtr root, size_t size)
        : family_(family), root_(std::move(root)), size_(size) {}

    IpFamily family_;
    NodePtr root_;
    size_t size_ = 0;
  };

  // Captures the current epoch. O(1); safe concurrently with a writer.
  Snapshot snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return Snapshot(family_, root_, size_);
  }

  // Inserts or overwrites. Returns true if the prefix was newly added.
  bool insert(const Prefix& p, V value) {
    NodePtr root;
    size_t size;
    {
      std::lock_guard<std::mutex> lock(mu_);
      root = root_;
      size = size_;
    }
    bool fresh = false;
    NodePtr next = Insert(root, p, std::move(value), &fresh);
    Publish(std::move(next), size + (fresh ? 1 : 0));
    return fresh;
  }

  // Removes an exact prefix, splicing out nodes that carry neither a
  // value nor two children afterwards (glue pruning). Returns true if
  // the prefix was present.
  bool erase(const Prefix& p) {
    if (p.family() != family_) return false;
    NodePtr root;
    size_t size;
    {
      std::lock_guard<std::mutex> lock(mu_);
      root = root_;
      size = size_;
    }
    bool erased = false;
    NodePtr next = Erase(root, p, &erased);
    if (!erased) return false;
    Publish(std::move(next), size - 1);
    return true;
  }

  const V* find(const Prefix& p) const {
    if (p.family() != family_) return nullptr;
    NodePtr root = Root();
    const Node* n = Locate(root.get(), p);
    return (n && n->value) ? &*n->value : nullptr;
  }

  // Longest stored prefix containing `addr` (classic routing lookup).
  std::optional<std::pair<Prefix, V>> longest_match(
      const IpAddress& addr) const {
    if (addr.family() != family_) return std::nullopt;
    NodePtr root = Root();
    return LongestMatch(root.get(), addr);
  }

  // True if any stored prefix overlaps `q` (contains it or is inside it).
  bool overlaps(const Prefix& q) const {
    bool hit = false;
    visit_overlaps(q, [&](const Prefix&, const V&) { hit = true; });
    return hit;
  }

  // Invokes `fn(prefix, value)` for every stored prefix overlapping `q`.
  template <typename Fn>
  void visit_overlaps(const Prefix& q, Fn&& fn) const {
    if (q.family() != family_) return;
    NodePtr root = Root();
    VisitOverlaps(root.get(), q, fn);
  }

  // Invokes `fn(prefix, value)` for every stored prefix containing `addr`,
  // from least to most specific (the path down the trie).
  template <typename Fn>
  void visit_matches(const IpAddress& addr, Fn&& fn) const {
    if (addr.family() != family_) return;
    NodePtr root = Root();
    VisitMatches(root.get(), addr, fn);
  }

  // Invokes `fn(prefix, value)` for every stored entry, in trie order.
  template <typename Fn>
  void visit_all(Fn&& fn) const {
    NodePtr root = Root();
    VisitAll(root.get(), fn);
  }

  std::vector<Prefix> keys() const {
    std::vector<Prefix> out;
    NodePtr root;
    size_t size;
    {
      std::lock_guard<std::mutex> lock(mu_);
      root = root_;
      size = size_;
    }
    out.reserve(size);
    VisitAll(root.get(), [&](const Prefix& p, const V&) { out.push_back(p); });
    return out;
  }

  // Total nodes in the current epoch, including valueless glue nodes —
  // observability for the erase-prunes-glue guarantee.
  size_t node_count() const {
    NodePtr root = Root();
    size_t count = 0;
    std::vector<const Node*> stack;
    if (root) stack.push_back(root.get());
    while (!stack.empty()) {
      const Node* n = stack.back();
      stack.pop_back();
      ++count;
      if (n->right) stack.push_back(n->right.get());
      if (n->left) stack.push_back(n->left.get());
    }
    return count;
  }

 private:
  struct Node {
    explicit Node(Prefix p) : prefix(p) {}
    Node(const Node&) = default;
    Prefix prefix;                 // masked; internal nodes have no value
    std::optional<V> value;
    NodePtr left;                  // next bit == 0
    NodePtr right;                 // next bit == 1
  };

  NodePtr Root() const {
    std::lock_guard<std::mutex> lock(mu_);
    return root_;
  }

  void Publish(NodePtr root, size_t size) {
    std::lock_guard<std::mutex> lock(mu_);
    root_ = std::move(root);
    size_ = size;
  }

  static std::shared_ptr<Node> Clone(const Node& n) {
    return std::make_shared<Node>(n);
  }

  // Path-copying insert: returns the root of a trie with `p -> value`,
  // sharing every untouched subtree with the input. Recursion depth is
  // bounded by the strictly-increasing prefix lengths along the spine
  // (<= 129 levels), not by node count.
  static NodePtr Insert(const NodePtr& n, const Prefix& p, V&& value,
                        bool* fresh) {
    if (!n) {
      auto leaf = Clone(Node(p));
      leaf->value = std::move(value);
      *fresh = true;
      return leaf;
    }
    if (n->prefix == p) {
      auto copy = Clone(*n);
      *fresh = !copy->value.has_value();
      copy->value = std::move(value);
      return copy;
    }
    if (n->prefix.contains(p)) {
      // Descend.
      auto copy = Clone(*n);
      bool bit = p.address().bit(n->prefix.length());
      NodePtr& slot = bit ? copy->right : copy->left;
      slot = Insert(slot, p, std::move(value), fresh);
      return copy;
    }
    if (p.contains(n->prefix)) {
      // p becomes an ancestor of n; n's subtree is shared as-is.
      auto fresh_node = Clone(Node(p));
      fresh_node->value = std::move(value);
      bool bit = n->prefix.address().bit(p.length());
      (bit ? fresh_node->right : fresh_node->left) = n;
      *fresh = true;
      return fresh_node;
    }
    // Diverge: insert a glue node at the longest common prefix.
    int common = p.address().common_prefix_len(n->prefix.address());
    int glue_len = std::min({common, p.length(), n->prefix.length()});
    auto glue = Clone(Node(Prefix(p.address(), glue_len)));
    bool nbit = n->prefix.address().bit(glue_len);
    (nbit ? glue->right : glue->left) = n;
    auto leaf = Clone(Node(p));
    leaf->value = std::move(value);
    (nbit ? glue->left : glue->right) = std::move(leaf);
    *fresh = true;
    return glue;
  }

  // A node that lost its value keeps the trie connected only while it
  // has both children; with one child it is spliced out (the child keeps
  // its full prefix, so bit-descent through the grandparent still works
  // — every query re-checks contains() at each node), with none it
  // vanishes.
  static NodePtr PruneValueless(std::shared_ptr<Node> n) {
    if (n->value) return n;
    if (n->left && n->right) return n;
    if (n->left) return n->left;
    if (n->right) return n->right;
    return nullptr;
  }

  static NodePtr Erase(const NodePtr& n, const Prefix& p, bool* erased) {
    if (!n) return n;
    if (n->prefix.length() > p.length() || !n->prefix.contains(p)) return n;
    if (n->prefix == p) {
      if (!n->value) return n;
      *erased = true;
      auto copy = Clone(*n);
      copy->value.reset();
      return PruneValueless(std::move(copy));
    }
    bool bit = p.address().bit(n->prefix.length());
    const NodePtr& child = bit ? n->right : n->left;
    NodePtr next = Erase(child, p, erased);
    if (!*erased) return n;
    auto copy = Clone(*n);
    (bit ? copy->right : copy->left) = std::move(next);
    return PruneValueless(std::move(copy));
  }

  // Descends the trie along p's bits; returns the node whose prefix equals
  // p, or nullptr. Handles patricia bit-skipping by re-checking prefixes.
  static const Node* Locate(const Node* n, const Prefix& p) {
    while (n) {
      if (n->prefix.length() > p.length()) return nullptr;
      if (!n->prefix.contains(p)) return nullptr;
      if (n->prefix.length() == p.length() && n->prefix == p) return n;
      n = p.address().bit(n->prefix.length()) ? n->right.get() : n->left.get();
    }
    return nullptr;
  }

  static std::optional<std::pair<Prefix, V>> LongestMatch(
      const Node* n, const IpAddress& addr) {
    std::optional<std::pair<Prefix, V>> best;
    int depth = 0;
    while (n) {
      // Verify the node's full prefix really covers addr (patricia skips bits).
      if (n->value && n->prefix.contains(addr)) best = {n->prefix, *n->value};
      if (n->prefix.length() > depth) depth = n->prefix.length();
      if (depth >= addr.width()) break;
      n = addr.bit(n->prefix.length()) ? n->right.get() : n->left.get();
    }
    return best;
  }

  template <typename Fn>
  static void VisitMatches(const Node* n, const IpAddress& addr, Fn& fn) {
    while (n) {
      if (n->value && n->prefix.contains(addr)) fn(n->prefix, *n->value);
      if (n->prefix.length() >= addr.width()) break;
      if (!n->prefix.contains(addr) && n->prefix.length() > 0) break;
      n = addr.bit(n->prefix.length()) ? n->right.get() : n->left.get();
    }
  }

  // Iterative pre-order (node, left subtree, right subtree) with an
  // explicit stack: pushing right before left makes the stack pop the
  // left subtree first, matching the recursive visit order.
  template <typename Fn>
  static void VisitAll(const Node* root, Fn&& fn) {
    std::vector<const Node*> stack;
    if (root) stack.push_back(root);
    while (!stack.empty()) {
      const Node* n = stack.back();
      stack.pop_back();
      if (n->value) fn(n->prefix, *n->value);
      if (n->right) stack.push_back(n->right.get());
      if (n->left) stack.push_back(n->left.get());
    }
  }

  template <typename Fn>
  static void VisitOverlaps(const Node* root, const Prefix& q, Fn& fn) {
    std::vector<const Node*> stack;
    if (root) stack.push_back(root);
    while (!stack.empty()) {
      const Node* n = stack.back();
      stack.pop_back();
      if (!n->prefix.overlaps(q)) {
        // A node not overlapping q can still have descendants that do
        // only if q is *inside* the node's subtree span — impossible when
        // they don't share the node's prefix. Prune.
        if (!q.contains(n->prefix) && !n->prefix.contains(q)) continue;
      }
      if (n->value && n->prefix.overlaps(q)) fn(n->prefix, *n->value);
      if (n->prefix.length() >= q.length()) {
        // Everything below is more specific than q; all descendants that
        // share q's prefix overlap. Walk both children, left first.
        if (n->right) stack.push_back(n->right.get());
        if (n->left) stack.push_back(n->left.get());
      } else {
        // Follow q's bit to stay on its path.
        const Node* next = q.address().bit(n->prefix.length())
                               ? n->right.get()
                               : n->left.get();
        if (next) stack.push_back(next);
      }
    }
  }

  IpFamily family_;
  mutable std::mutex mu_;  // guards root_/size_ publication only
  NodePtr root_;
  size_t size_ = 0;
};

// Dual-family prefix table: one patricia trie per family.
template <typename V>
class PrefixTable {
 public:
  PrefixTable() : v4_(IpFamily::V4), v6_(IpFamily::V6) {}

  bool insert(const Prefix& p, V value) {
    return trie(p.family()).insert(p, std::move(value));
  }
  const V* find(const Prefix& p) const {
    return p.family() == IpFamily::V4 ? v4_.find(p) : v6_.find(p);
  }
  bool erase(const Prefix& p) { return trie(p.family()).erase(p); }
  size_t size() const { return v4_.size() + v6_.size(); }
  bool empty() const { return size() == 0; }

  // One immutable epoch across both families (each family's root is
  // captured atomically; the pair is captured v4-then-v6).
  class Snapshot {
   public:
    size_t size() const { return v4_.size() + v6_.size(); }
    bool empty() const { return size() == 0; }
    const V* find(const Prefix& p) const {
      return p.family() == IpFamily::V4 ? v4_.find(p) : v6_.find(p);
    }
    std::optional<std::pair<Prefix, V>> longest_match(
        const IpAddress& a) const {
      return a.family() == IpFamily::V4 ? v4_.longest_match(a)
                                        : v6_.longest_match(a);
    }
    bool overlaps(const Prefix& q) const {
      return q.family() == IpFamily::V4 ? v4_.overlaps(q) : v6_.overlaps(q);
    }
    template <typename Fn>
    void visit_overlaps(const Prefix& q, Fn&& fn) const {
      if (q.family() == IpFamily::V4) v4_.visit_overlaps(q, fn);
      else v6_.visit_overlaps(q, fn);
    }
    template <typename Fn>
    void visit_matches(const IpAddress& a, Fn&& fn) const {
      if (a.family() == IpFamily::V4) v4_.visit_matches(a, fn);
      else v6_.visit_matches(a, fn);
    }
    template <typename Fn>
    void visit_all(Fn&& fn) const {
      v4_.visit_all(fn);
      v6_.visit_all(fn);
    }

   private:
    friend class PrefixTable;
    Snapshot(typename PatriciaTrie<V>::Snapshot v4,
             typename PatriciaTrie<V>::Snapshot v6)
        : v4_(std::move(v4)), v6_(std::move(v6)) {}
    typename PatriciaTrie<V>::Snapshot v4_;
    typename PatriciaTrie<V>::Snapshot v6_;
  };

  Snapshot snapshot() const { return Snapshot(v4_.snapshot(), v6_.snapshot()); }

  std::optional<std::pair<Prefix, V>> longest_match(const IpAddress& a) const {
    return a.family() == IpFamily::V4 ? v4_.longest_match(a)
                                      : v6_.longest_match(a);
  }
  bool overlaps(const Prefix& q) const {
    return q.family() == IpFamily::V4 ? v4_.overlaps(q) : v6_.overlaps(q);
  }
  template <typename Fn>
  void visit_overlaps(const Prefix& q, Fn&& fn) const {
    if (q.family() == IpFamily::V4) v4_.visit_overlaps(q, fn);
    else v6_.visit_overlaps(q, fn);
  }
  template <typename Fn>
  void visit_matches(const IpAddress& a, Fn&& fn) const {
    if (a.family() == IpFamily::V4) v4_.visit_matches(a, fn);
    else v6_.visit_matches(a, fn);
  }
  template <typename Fn>
  void visit_all(Fn&& fn) const {
    v4_.visit_all(fn);
    v6_.visit_all(fn);
  }

 private:
  PatriciaTrie<V>& trie(IpFamily f) { return f == IpFamily::V4 ? v4_ : v6_; }
  PatriciaTrie<V> v4_;
  PatriciaTrie<V> v6_;
};

}  // namespace bgps
