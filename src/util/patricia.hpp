// Binary patricia (radix) trie keyed by IP prefixes.
//
// Used by the pfxmonitor plugin (§6.1: "selects only the ... records
// related to prefixes that overlap with the given IP address ranges")
// and by prefix filters in the core library. Supports exact match,
// longest-prefix match, and overlap queries (any stored prefix that
// contains, or is contained by, the query prefix).
//
// One trie holds a single address family; PrefixTable below pairs a
// v4 and a v6 trie behind one interface.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "util/ip.hpp"

namespace bgps {

template <typename V>
class PatriciaTrie {
 public:
  explicit PatriciaTrie(IpFamily family) : family_(family) {}

  IpFamily family() const { return family_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Inserts or overwrites. Returns true if the prefix was newly added.
  bool insert(const Prefix& p, V value) {
    Node* n = find_or_create(p);
    bool fresh = !n->value.has_value();
    n->value = std::move(value);
    if (fresh) ++size_;
    return fresh;
  }

  V* find(const Prefix& p) {
    Node* n = locate(p);
    return (n && n->value) ? &*n->value : nullptr;
  }
  const V* find(const Prefix& p) const {
    return const_cast<PatriciaTrie*>(this)->find(p);
  }

  // Removes an exact prefix. Returns true if it was present.
  bool erase(const Prefix& p) {
    Node* n = locate(p);
    if (!n || !n->value) return false;
    n->value.reset();
    --size_;
    return true;
  }

  // Longest stored prefix containing `addr` (classic routing lookup).
  std::optional<std::pair<Prefix, V>> longest_match(const IpAddress& addr) const {
    if (addr.family() != family_) return std::nullopt;
    const Node* n = root_.get();
    std::optional<std::pair<Prefix, V>> best;
    int depth = 0;
    while (n) {
      // Verify the node's full prefix really covers addr (patricia skips bits).
      if (n->value && n->prefix.contains(addr)) best = {n->prefix, *n->value};
      if (n->prefix.length() > depth) depth = n->prefix.length();
      if (depth >= addr.width()) break;
      n = addr.bit(n->prefix.length()) ? n->right.get() : n->left.get();
    }
    return best;
  }

  // True if any stored prefix overlaps `q` (contains it or is inside it).
  bool overlaps(const Prefix& q) const {
    bool hit = false;
    visit_overlaps(q, [&](const Prefix&, const V&) { hit = true; });
    return hit;
  }

  // Invokes `fn(prefix, value)` for every stored prefix overlapping `q`.
  template <typename Fn>
  void visit_overlaps(const Prefix& q, Fn&& fn) const {
    if (q.family() != family_) return;
    visit_overlaps_rec(root_.get(), q, fn);
  }

  // Invokes `fn(prefix, value)` for every stored prefix containing `addr`,
  // from least to most specific (the path down the trie).
  template <typename Fn>
  void visit_matches(const IpAddress& addr, Fn&& fn) const {
    if (addr.family() != family_) return;
    const Node* n = root_.get();
    while (n) {
      if (n->value && n->prefix.contains(addr)) fn(n->prefix, *n->value);
      if (n->prefix.length() >= addr.width()) break;
      if (!n->prefix.contains(addr) && n->prefix.length() > 0) break;
      n = addr.bit(n->prefix.length()) ? n->right.get() : n->left.get();
    }
  }

  // Invokes `fn(prefix, value)` for every stored entry, in trie order.
  template <typename Fn>
  void visit_all(Fn&& fn) const {
    visit_all_rec(root_.get(), fn);
  }

  std::vector<Prefix> keys() const {
    std::vector<Prefix> out;
    visit_all([&](const Prefix& p, const V&) { out.push_back(p); });
    return out;
  }

 private:
  struct Node {
    explicit Node(Prefix p) : prefix(p) {}
    Prefix prefix;                 // masked; internal nodes have no value
    std::optional<V> value;
    std::unique_ptr<Node> left;    // next bit == 0
    std::unique_ptr<Node> right;   // next bit == 1
  };

  // Descends the trie along p's bits; returns the node whose prefix equals
  // p, or nullptr. Handles patricia bit-skipping by re-checking prefixes.
  Node* locate(const Prefix& p) const {
    if (p.family() != family_) return nullptr;
    Node* n = root_.get();
    while (n) {
      if (n->prefix.length() > p.length()) return nullptr;
      if (!n->prefix.contains(p)) return nullptr;
      if (n->prefix.length() == p.length() && n->prefix == p) return n;
      n = p.address().bit(n->prefix.length()) ? n->right.get() : n->left.get();
    }
    return nullptr;
  }

  Node* find_or_create(const Prefix& p) {
    std::unique_ptr<Node>* slot = &root_;
    while (true) {
      Node* n = slot->get();
      if (!n) {
        *slot = std::make_unique<Node>(p);
        return slot->get();
      }
      if (n->prefix == p) return n;
      if (n->prefix.contains(p)) {
        // Descend.
        slot = p.address().bit(n->prefix.length()) ? &n->right : &n->left;
        continue;
      }
      if (p.contains(n->prefix)) {
        // p becomes an ancestor of n.
        auto fresh = std::make_unique<Node>(p);
        bool bit = n->prefix.address().bit(p.length());
        (bit ? fresh->right : fresh->left) = std::move(*slot);
        *slot = std::move(fresh);
        return slot->get();
      }
      // Diverge: insert a glue node at the longest common prefix.
      int common = p.address().common_prefix_len(n->prefix.address());
      int glue_len = std::min({common, p.length(), n->prefix.length()});
      Prefix glue(p.address(), glue_len);
      auto glue_node = std::make_unique<Node>(glue);
      bool nbit = n->prefix.address().bit(glue_len);
      (nbit ? glue_node->right : glue_node->left) = std::move(*slot);
      *slot = std::move(glue_node);
      Node* g = slot->get();
      std::unique_ptr<Node>* pslot = p.address().bit(glue_len) ? &g->right : &g->left;
      *pslot = std::make_unique<Node>(p);
      return pslot->get();
    }
  }

  template <typename Fn>
  static void visit_overlaps_rec(const Node* n, const Prefix& q, Fn& fn) {
    if (!n) return;
    if (!n->prefix.overlaps(q)) {
      // A node not overlapping q can still have descendants that do only
      // if q is *inside* the node's subtree span — impossible when they
      // don't share the node's prefix. Prune.
      if (!q.contains(n->prefix) && !n->prefix.contains(q)) return;
    }
    if (n->value && n->prefix.overlaps(q)) fn(n->prefix, *n->value);
    if (n->prefix.length() >= q.length()) {
      // Everything below is more specific than q; all descendants that
      // share q's prefix overlap. Recurse into both children.
      visit_overlaps_rec(n->left.get(), q, fn);
      visit_overlaps_rec(n->right.get(), q, fn);
    } else {
      // Follow q's bit to stay on its path.
      const Node* next = q.address().bit(n->prefix.length()) ? n->right.get()
                                                             : n->left.get();
      visit_overlaps_rec(next, q, fn);
    }
  }

  template <typename Fn>
  static void visit_all_rec(const Node* n, Fn& fn) {
    if (!n) return;
    if (n->value) fn(n->prefix, *n->value);
    visit_all_rec(n->left.get(), fn);
    visit_all_rec(n->right.get(), fn);
  }

  IpFamily family_;
  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

// Dual-family prefix table: one patricia trie per family.
template <typename V>
class PrefixTable {
 public:
  PrefixTable() : v4_(IpFamily::V4), v6_(IpFamily::V6) {}

  bool insert(const Prefix& p, V value) {
    return trie(p.family()).insert(p, std::move(value));
  }
  V* find(const Prefix& p) { return trie(p.family()).find(p); }
  const V* find(const Prefix& p) const {
    return p.family() == IpFamily::V4 ? v4_.find(p) : v6_.find(p);
  }
  bool erase(const Prefix& p) { return trie(p.family()).erase(p); }
  size_t size() const { return v4_.size() + v6_.size(); }
  bool empty() const { return size() == 0; }

  std::optional<std::pair<Prefix, V>> longest_match(const IpAddress& a) const {
    return a.family() == IpFamily::V4 ? v4_.longest_match(a)
                                      : v6_.longest_match(a);
  }
  bool overlaps(const Prefix& q) const {
    return q.family() == IpFamily::V4 ? v4_.overlaps(q) : v6_.overlaps(q);
  }
  template <typename Fn>
  void visit_overlaps(const Prefix& q, Fn&& fn) const {
    if (q.family() == IpFamily::V4) v4_.visit_overlaps(q, fn);
    else v6_.visit_overlaps(q, fn);
  }
  template <typename Fn>
  void visit_matches(const IpAddress& a, Fn&& fn) const {
    if (a.family() == IpFamily::V4) v4_.visit_matches(a, fn);
    else v6_.visit_matches(a, fn);
  }
  template <typename Fn>
  void visit_all(Fn&& fn) const {
    v4_.visit_all(fn);
    v6_.visit_all(fn);
  }

 private:
  PatriciaTrie<V>& trie(IpFamily f) { return f == IpFamily::V4 ? v4_ : v6_; }
  PatriciaTrie<V> v4_;
  PatriciaTrie<V> v6_;
};

}  // namespace bgps
