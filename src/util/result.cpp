#include "util/result.hpp"

namespace bgps {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::Ok: return "OK";
    case StatusCode::InvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::OutOfRange: return "OUT_OF_RANGE";
    case StatusCode::Corrupt: return "CORRUPT";
    case StatusCode::NotFound: return "NOT_FOUND";
    case StatusCode::Unsupported: return "UNSUPPORTED";
    case StatusCode::IoError: return "IO_ERROR";
    case StatusCode::EndOfStream: return "END_OF_STREAM";
    case StatusCode::Truncated: return "TRUNCATED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace bgps
