// Lightweight Status / Result<T> error-handling vocabulary.
//
// The BGPStream stack never throws for data errors: malformed MRT bytes,
// truncated dumps and bad user filters are expected inputs (paper §3.3.3
// requires corrupt records to surface as flagged records, not aborts).
// Exceptions are reserved for programming errors (via assertions).
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace bgps {

enum class StatusCode {
  Ok,
  InvalidArgument,   // caller passed something malformed (filter string, ...)
  OutOfRange,        // read past the end of a buffer
  Corrupt,           // wire data violates the format spec
  NotFound,          // file / key / resource absent
  Unsupported,       // recognized but unimplemented MRT type/subtype
  IoError,           // filesystem-level failure
  EndOfStream,       // clean end of data (not an error for callers that loop)
  Truncated,         // requested position fell below a retention low-watermark
};

// Human-readable name for a status code (stable, used in logs and tests).
const char* StatusCodeName(StatusCode code);

// A Status is a code plus an optional context message.
class Status {
 public:
  Status() : code_(StatusCode::Ok) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::Ok; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "CODE: message" rendering for diagnostics.
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }
inline Status InvalidArgument(std::string m) {
  return Status(StatusCode::InvalidArgument, std::move(m));
}
inline Status OutOfRange(std::string m) {
  return Status(StatusCode::OutOfRange, std::move(m));
}
inline Status CorruptError(std::string m) {
  return Status(StatusCode::Corrupt, std::move(m));
}
inline Status NotFoundError(std::string m) {
  return Status(StatusCode::NotFound, std::move(m));
}
inline Status UnsupportedError(std::string m) {
  return Status(StatusCode::Unsupported, std::move(m));
}
inline Status IoError(std::string m) {
  return Status(StatusCode::IoError, std::move(m));
}
inline Status EndOfStream() { return Status(StatusCode::EndOfStream, ""); }
inline Status TruncatedError(std::string m) {
  return Status(StatusCode::Truncated, std::move(m));
}
inline bool IsTruncated(const Status& s) {
  return s.code() == StatusCode::Truncated;
}

// Result<T>: either a value or a non-OK Status.
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : data_(std::move(status)) {
    assert(!std::get<Status>(data_).ok() && "Result from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(data_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // value_or: convenience for tests and defaults.
  T value_or(T fallback) const& { return ok() ? value() : std::move(fallback); }

 private:
  std::variant<T, Status> data_;
};

// Propagate a non-OK status from an expression producing Status.
#define BGPS_RETURN_IF_ERROR(expr)                 \
  do {                                             \
    ::bgps::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                     \
  } while (0)

// Assign from a Result<T>, propagating errors. Usage:
//   BGPS_ASSIGN_OR_RETURN(auto v, ParseThing(buf));
#define BGPS_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()
#define BGPS_ASSIGN_CONCAT_(a, b) a##b
#define BGPS_ASSIGN_CONCAT(a, b) BGPS_ASSIGN_CONCAT_(a, b)
#define BGPS_ASSIGN_OR_RETURN(lhs, rexpr) \
  BGPS_ASSIGN_OR_RETURN_IMPL(BGPS_ASSIGN_CONCAT(_res_, __LINE__), lhs, rexpr)

}  // namespace bgps
