// Small-vector with inline storage: the first N elements live inside the
// object, so containers that are almost always short (AS-path segments,
// community lists, NLRI prefix runs) cost zero heap allocations on the
// decode hot path. Spills to the heap transparently past N, keeping
// std::vector semantics for the rare long case.
//
// Deliberately minimal: the subset of the std::vector API the decode and
// analysis layers use. Iterators are plain pointers and invalidate on any
// growth, exactly like std::vector.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <new>
#include <utility>

namespace bgps {

template <typename T, size_t N>
class SmallVec {
 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;
  using size_type = size_t;

  SmallVec() = default;
  SmallVec(std::initializer_list<T> init) {
    reserve(init.size());
    for (const T& v : init) emplace_back(v);
  }
  SmallVec(const SmallVec& o) {
    reserve(o.size_);
    std::uninitialized_copy(o.begin(), o.end(), data());
    size_ = o.size_;
  }
  SmallVec(SmallVec&& o) noexcept {
    if (o.is_inline()) {
      std::uninitialized_move(o.begin(), o.end(), inline_data());
      size_ = o.size_;
      o.clear();
    } else {
      // Steal the heap block; o reverts to its (empty) inline storage.
      heap_ = o.heap_;
      capacity_ = o.capacity_;
      size_ = o.size_;
      o.heap_ = nullptr;
      o.capacity_ = N;
      o.size_ = 0;
    }
  }
  SmallVec& operator=(const SmallVec& o) {
    if (this != &o) {
      clear();
      reserve(o.size_);
      std::uninitialized_copy(o.begin(), o.end(), data());
      size_ = o.size_;
    }
    return *this;
  }
  SmallVec& operator=(SmallVec&& o) noexcept {
    if (this != &o) {
      release();
      new (this) SmallVec(std::move(o));
    }
    return *this;
  }
  SmallVec& operator=(std::initializer_list<T> init) {
    clear();
    reserve(init.size());
    for (const T& v : init) emplace_back(v);
    return *this;
  }
  ~SmallVec() { release(); }

  T* data() { return is_inline() ? inline_data() : heap_; }
  const T* data() const { return is_inline() ? inline_data() : heap_; }
  iterator begin() { return data(); }
  iterator end() { return data() + size_; }
  const_iterator begin() const { return data(); }
  const_iterator end() const { return data() + size_; }
  const_iterator cbegin() const { return begin(); }
  const_iterator cend() const { return end(); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return capacity_; }

  T& operator[](size_t i) { return data()[i]; }
  const T& operator[](size_t i) const { return data()[i]; }
  T& front() { return data()[0]; }
  const T& front() const { return data()[0]; }
  T& back() { return data()[size_ - 1]; }
  const T& back() const { return data()[size_ - 1]; }

  void reserve(size_t n) {
    if (n <= capacity_) return;
    Grow(n);
  }

  void clear() {
    std::destroy(begin(), end());
    size_ = 0;
  }

  void push_back(const T& v) { emplace_back(v); }
  void push_back(T&& v) { emplace_back(std::move(v)); }
  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity_) Grow(capacity_ * 2);
    T* slot = data() + size_;
    new (slot) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }
  void pop_back() {
    --size_;
    std::destroy_at(data() + size_);
  }

  // Single-element insert (AsPath::prepend). Returns the new element.
  iterator insert(const_iterator pos, T v) {
    size_t idx = size_t(pos - begin());
    emplace_back(std::move(v));  // may reallocate; v is safe in the temp
    std::rotate(begin() + idx, end() - 1, end());
    return begin() + idx;
  }

  void resize(size_t n) {
    if (n < size_) {
      std::destroy(begin() + n, end());
      size_ = n;
    } else {
      reserve(n);
      while (size_ < n) emplace_back();
    }
  }

  friend bool operator==(const SmallVec& a, const SmallVec& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }

 private:
  bool is_inline() const { return heap_ == nullptr; }
  T* inline_data() { return std::launder(reinterpret_cast<T*>(inline_)); }
  const T* inline_data() const {
    return std::launder(reinterpret_cast<const T*>(inline_));
  }

  void Grow(size_t want) {
    size_t cap = std::max(want, std::max<size_t>(capacity_ * 2, N ? N : 4));
    T* block = static_cast<T*>(::operator new(cap * sizeof(T), align()));
    std::uninitialized_move(begin(), end(), block);
    std::destroy(begin(), end());
    if (!is_inline()) ::operator delete(heap_, align());
    heap_ = block;
    capacity_ = cap;
  }

  void release() {
    std::destroy(begin(), end());
    if (!is_inline()) ::operator delete(heap_, align());
    heap_ = nullptr;
    capacity_ = N;
    size_ = 0;
  }

  static constexpr std::align_val_t align() {
    return std::align_val_t(alignof(T));
  }

  alignas(T) unsigned char inline_[N > 0 ? N * sizeof(T) : 1];
  T* heap_ = nullptr;  // null = elements live in inline_
  size_t size_ = 0;
  size_t capacity_ = N;
};

}  // namespace bgps
