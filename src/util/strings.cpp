#include "util/strings.hpp"

namespace bgps {

std::vector<std::string> SplitString(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t pos = 0;
  while (true) {
    size_t next = s.find(sep, pos);
    if (next == std::string_view::npos) {
      out.emplace_back(s.substr(pos));
      return out;
    }
    out.emplace_back(s.substr(pos, next - pos));
    pos = next + 1;
  }
}

std::vector<std::string> SplitSkipEmpty(std::string_view s, char sep) {
  std::vector<std::string> out;
  for (auto& tok : SplitString(s, sep)) {
    if (!tok.empty()) out.push_back(std::move(tok));
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

}  // namespace bgps
