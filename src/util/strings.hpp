// Small string helpers shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace bgps {

std::vector<std::string> SplitString(std::string_view s, char sep);
// Like SplitString but drops empty tokens (for whitespace-ish splitting).
std::vector<std::string> SplitSkipEmpty(std::string_view s, char sep);
std::string JoinStrings(const std::vector<std::string>& parts,
                        const std::string& sep);
bool StartsWith(std::string_view s, std::string_view prefix);

}  // namespace bgps
