#include "util/time.hpp"

#include <cstdio>

namespace bgps {

int64_t DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = unsigned(y - era * 400);
  const unsigned doy = (153u * unsigned(m + (m > 2 ? -3 : 9)) + 2) / 5 + unsigned(d) - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + int64_t(doe) - 719468;
}

CivilTime CivilFromTimestamp(Timestamp ts) {
  int64_t days = ts / 86400;
  int64_t secs = ts % 86400;
  if (secs < 0) {
    secs += 86400;
    --days;
  }
  // Inverse of DaysFromCivil.
  days += 719468;
  const int64_t era = (days >= 0 ? days : days - 146096) / 146097;
  const unsigned doe = unsigned(days - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = int64_t(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp < 10 ? mp + 3 : mp - 9;
  CivilTime c;
  c.year = int(y + (m <= 2));
  c.month = int(m);
  c.day = int(d);
  c.hour = int(secs / 3600);
  c.minute = int((secs % 3600) / 60);
  c.second = int(secs % 60);
  return c;
}

Timestamp TimestampFromCivil(const CivilTime& c) {
  return DaysFromCivil(c.year, c.month, c.day) * 86400 + c.hour * 3600 +
         c.minute * 60 + c.second;
}

Timestamp TimestampFromYmdHms(int y, int mo, int d, int h, int mi, int s) {
  return TimestampFromCivil({y, mo, d, h, mi, s});
}

std::string FormatTimestamp(Timestamp ts) {
  CivilTime c = CivilFromTimestamp(ts);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d", c.year,
                c.month, c.day, c.hour, c.minute, c.second);
  return buf;
}

}  // namespace bgps
