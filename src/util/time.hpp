// Civil-time helpers for UNIX timestamps.
//
// The archive layout, broker queries and BGPCorsaro time bins all work in
// UTC epoch seconds. These helpers convert to/from civil dates without
// relying on the C locale machinery (no timezones: everything is UTC,
// like MRT timestamps).
#pragma once

#include <cstdint>
#include <string>

namespace bgps {

using Timestamp = int64_t;  // UTC epoch seconds

struct CivilTime {
  int year;
  int month;  // 1..12
  int day;    // 1..31
  int hour;   // 0..23
  int minute; // 0..59
  int second; // 0..59
};

// Days since 1970-01-01 for a civil date (Howard Hinnant's algorithm).
int64_t DaysFromCivil(int y, int m, int d);
CivilTime CivilFromTimestamp(Timestamp ts);
Timestamp TimestampFromCivil(const CivilTime& c);
Timestamp TimestampFromYmdHms(int y, int mo, int d, int h, int mi, int s);

// "YYYY-MM-DD HH:MM:SS" (UTC).
std::string FormatTimestamp(Timestamp ts);

// Half-open interval [start, end). end == kLiveEnd means "live mode".
inline constexpr Timestamp kLiveEnd = -1;

struct TimeInterval {
  Timestamp start = 0;
  Timestamp end = 0;  // exclusive; kLiveEnd for live mode

  bool live() const { return end == kLiveEnd; }
  bool contains(Timestamp t) const {
    return t >= start && (live() || t < end);
  }
  bool overlaps(Timestamp s, Timestamp e) const {
    // [s, e) vs [start, end)
    if (live()) return e > start;
    return s < end && e > start;
  }
};

// Aligns `ts` down to a multiple of `bin` seconds.
inline Timestamp AlignToBin(Timestamp ts, Timestamp bin) {
  return (ts / bin) * bin;
}

}  // namespace bgps
