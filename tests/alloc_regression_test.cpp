// Allocation-count regression tests for the arena / zero-copy decode
// hot path: this binary overrides global operator new/delete with a
// counting shim, decodes real MRT bytes, and pins the steady-state heap
// traffic at (near) zero. A change that re-introduces per-record
// allocations — a std::vector where a SmallVec belongs, an owning
// string where a view over the raw buffer belongs, a lost AS-path cache
// hit — fails here long before it would show up in a benchmark.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <new>
#include <random>

#include "bgp/attrs.hpp"
#include "core/prefetch.hpp"
#include "mrt/encode.hpp"
#include "mrt/file.hpp"

namespace {

std::atomic<size_t> g_allocs{0};

size_t AllocCount() { return g_allocs.load(std::memory_order_relaxed); }

}  // namespace

// Counting shim over malloc/free. Every allocating form funnels through
// these two; the aligned forms exist because standard containers may
// over-align nodes.
void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  size_t align = std::max(sizeof(void*), static_cast<size_t>(al));
  if (posix_memalign(&p, align, n ? n : 1) == 0) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return ::operator new(n, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace bgps::core {
namespace {

using broker::DumpFileMeta;
using broker::DumpType;

// A realistic update file: every record announces one prefix with a
// short AS path and a couple of communities — all within the SmallVec
// inline capacities, and with the AS-path bytes repeating so the
// per-dump intern cache hits after the first record.
std::string WriteUpdatesFile(const std::filesystem::path& dir, size_t n) {
  std::string path = (dir / "updates.mrt").string();
  mrt::MrtFileWriter w;
  EXPECT_TRUE(w.Open(path).ok());
  for (size_t i = 0; i < n; ++i) {
    mrt::Bgp4mpMessage m;
    m.peer_asn = 65001;
    m.local_asn = 64512;
    m.peer_address = IpAddress::V4(10, 0, 0, 1);
    m.local_address = IpAddress::V4(192, 0, 2, 1);
    m.update.attrs.as_path = bgp::AsPath::Sequence({65001, 3356, 15169});
    m.update.attrs.next_hop = IpAddress::V4(10, 0, 0, 1);
    m.update.attrs.communities.push_back(bgp::Community{65001, 100});
    m.update.attrs.communities.push_back(bgp::Community{65001, 200});
    m.update.announced.push_back(
        Prefix(IpAddress::V4(10, uint8_t(i >> 8), uint8_t(i & 0xff), 0), 24));
    EXPECT_TRUE(
        w.Write(mrt::EncodeBgp4mpUpdate(1458000000 + Timestamp(i), m)).ok());
  }
  EXPECT_TRUE(w.Close().ok());
  return path;
}

// The tight frame+decode loop — MrtFileReader::Next into DecodeRecord
// with the per-dump AS-path cache — must be allocation-free at steady
// state: the reader's frame buffer is reused, the record body is a view
// into it, every decoded container stays within its inline capacity,
// and repeated AS-path bytes copy out of the cache instead of being
// re-decoded. A warmed second pass over the whole file is allowed only
// a small constant slack (frame-buffer regrowth), NOT per-record heap
// traffic.
TEST(AllocRegressionTest, SteadyStateDecodeLoopIsAllocationFree) {
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() /
                 ("bgps_alloc_decode_test_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  constexpr size_t kRecords = 500;
  std::string path = WriteUpdatesFile(dir, kRecords);

  Arena arena;
  bgp::AsPathCache cache(&arena);
  bgp::AttrDecodeCtx ctx{&cache};

  // Warm-up pass: grows the frame buffer to the largest record and
  // populates the AS-path cache.
  {
    mrt::MrtFileReader reader;
    ASSERT_TRUE(reader.Open(path).ok());
    size_t decoded = 0;
    while (true) {
      auto raw = reader.Next();
      if (!raw.ok()) break;
      auto msg = mrt::DecodeRecord(*raw, &ctx);
      ASSERT_TRUE(msg.ok());
      ++decoded;
    }
    ASSERT_EQ(decoded, kRecords);
  }

  // Measured pass: a fresh reader over the same file with the warmed
  // cache. Opening the reader (ifstream internals) is excluded; the
  // loop itself must not allocate per record.
  mrt::MrtFileReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  size_t before = AllocCount();
  size_t decoded = 0;
  uint64_t checksum = 0;
  while (true) {
    auto raw = reader.Next();
    if (!raw.ok()) break;
    auto msg = mrt::DecodeRecord(*raw, &ctx);
    ASSERT_TRUE(msg.ok());
    checksum += uint64_t(msg->timestamp);
    ++decoded;
  }
  size_t allocs = AllocCount() - before;
  EXPECT_EQ(decoded, kRecords);
  EXPECT_NE(checksum, 0u);
  // ~0 per record: the only tolerated allocations are the one-time
  // frame-buffer growth of the fresh reader.
  EXPECT_LE(allocs, 16u) << "steady-state decode allocated " << allocs
                         << " times for " << kRecords << " records";
  // The cache actually served the repeats — the zero-allocation claim
  // above rests on it.
  EXPECT_GE(cache.hits(), kRecords - 1);

  std::error_code ec;
  fs::remove_all(dir, ec);
}

// Same property over a *generated* corpus: seeded-random records drawn
// from a pool of 64 distinct AS paths (2-8 hops) with varying prefixes,
// communities and withdrawals — realistic churn diversity instead of
// one repeated record. The pool is what a real dump looks like to the
// intern cache (a few hundred distinct paths serving millions of
// records), so the steady-state loop must still be allocation-free once
// every pool entry has been seen. Everything stays within SmallVec
// inline capacities by construction: diversity, not blow-ups, is what
// this case adds.
std::string WriteGeneratedCorpusFile(const std::filesystem::path& dir,
                                     size_t n) {
  std::mt19937_64 rng(4242);
  std::vector<bgp::AsPath> pool;
  for (int p = 0; p < 64; ++p) {
    std::vector<bgp::Asn> hops;
    size_t len = 2 + rng() % 7;  // 2..8 hops, within AsnVec's inline 8
    for (size_t h = 0; h < len; ++h) hops.push_back(64512 + rng() % 1000);
    pool.push_back(bgp::AsPath::Sequence(std::move(hops)));
  }

  std::string path = (dir / "generated.mrt").string();
  mrt::MrtFileWriter w;
  EXPECT_TRUE(w.Open(path).ok());
  for (size_t i = 0; i < n; ++i) {
    mrt::Bgp4mpMessage m;
    m.peer_asn = 65001 + bgp::Asn(rng() % 4);
    m.local_asn = 64512;
    m.peer_address = IpAddress::V4(10, 0, 0, uint8_t(1 + rng() % 4));
    m.local_address = IpAddress::V4(192, 0, 2, 1);
    if (rng() % 8 == 0) {  // occasional pure withdrawal
      m.update.withdrawn.push_back(
          Prefix(IpAddress::V4(uint32_t(rng()) & 0xFFFFFF00u), 24));
    } else {
      m.update.attrs.as_path = pool[rng() % pool.size()];
      m.update.attrs.next_hop = IpAddress::V4(10, 0, 0, 1);
      size_t ncomm = rng() % 4;  // within Communities' inline 8
      for (size_t c = 0; c < ncomm; ++c)
        m.update.attrs.communities.push_back(
            bgp::Community(uint16_t(65001 + rng() % 4), uint16_t(rng() % 500)));
      size_t nprefix = 1 + rng() % 2;
      for (size_t p = 0; p < nprefix; ++p)
        m.update.announced.push_back(
            Prefix(IpAddress::V4(uint32_t(rng()) & 0xFFFFFF00u), 24));
    }
    EXPECT_TRUE(
        w.Write(mrt::EncodeBgp4mpUpdate(1458000000 + Timestamp(i), m)).ok());
  }
  EXPECT_TRUE(w.Close().ok());
  return path;
}

TEST(AllocRegressionTest, GeneratedCorpusDecodeLoopIsAllocationFree) {
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() /
                 ("bgps_alloc_corpus_test_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  constexpr size_t kRecords = 2000;
  std::string path = WriteGeneratedCorpusFile(dir, kRecords);

  Arena arena;
  bgp::AsPathCache cache(&arena);
  bgp::AttrDecodeCtx ctx{&cache};

  // Warm-up: sees all 64 pool paths, grows the frame buffer.
  {
    mrt::MrtFileReader reader;
    ASSERT_TRUE(reader.Open(path).ok());
    size_t decoded = 0;
    while (true) {
      auto raw = reader.Next();
      if (!raw.ok()) break;
      auto msg = mrt::DecodeRecord(*raw, &ctx);
      ASSERT_TRUE(msg.ok());
      ++decoded;
    }
    ASSERT_EQ(decoded, kRecords);
  }

  mrt::MrtFileReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  size_t before = AllocCount();
  size_t decoded = 0;
  uint64_t checksum = 0;
  while (true) {
    auto raw = reader.Next();
    if (!raw.ok()) break;
    auto msg = mrt::DecodeRecord(*raw, &ctx);
    ASSERT_TRUE(msg.ok());
    checksum += uint64_t(msg->timestamp);
    ++decoded;
  }
  size_t allocs = AllocCount() - before;
  EXPECT_EQ(decoded, kRecords);
  EXPECT_NE(checksum, 0u);
  EXPECT_LE(allocs, 16u) << "generated-corpus decode allocated " << allocs
                         << " times for " << kRecords << " records";

  std::error_code ec;
  fs::remove_all(dir, ec);
}

// The full chunked pipeline — fill tasks decoding into the bounded
// buffer, the consumer popping — is allowed bounded bookkeeping (task
// objects, deque blocks), but nothing per-record-proportional beyond
// it. Pre-arena this path paid several container/string allocations on
// every single record.
TEST(AllocRegressionTest, ChunkedStreamPathAllocatesBoundedPerRecord) {
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() /
                 ("bgps_alloc_stream_test_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  constexpr size_t kRecords = 2000;
  std::string path = WriteUpdatesFile(dir, kRecords);
  DumpFileMeta meta;
  meta.project = "test";
  meta.collector = "alloc";
  meta.type = DumpType::Updates;
  meta.start = 1458000000;
  meta.duration = 3600;
  meta.path = path;

  PrefetchDecoder::Options opt;
  opt.threads = 1;
  opt.max_records_in_flight = 64;
  PrefetchDecoder decoder(std::move(opt));

  size_t before = AllocCount();
  decoder.Submit({meta});
  auto sources = decoder.WaitNextSources();
  ASSERT_EQ(sources.size(), 1u);
  size_t drained = 0;
  while (auto rec = sources[0]->Next()) {
    ASSERT_EQ(rec->status, RecordStatus::Valid);
    ++drained;
  }
  size_t allocs = AllocCount() - before;
  ASSERT_EQ(drained, kRecords);
  double per_record = double(allocs) / double(kRecords);
  EXPECT_LT(per_record, 4.0)
      << allocs << " allocations for " << kRecords
      << " records end to end (" << per_record << " per record)";

  std::error_code ec;
  fs::remove_all(dir, ec);
}

}  // namespace
}  // namespace bgps::core
