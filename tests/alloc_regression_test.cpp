// Allocation-count regression tests for the arena / zero-copy decode
// hot path: this binary overrides global operator new/delete with a
// counting shim, decodes real MRT bytes, and pins the steady-state heap
// traffic at (near) zero. A change that re-introduces per-record
// allocations — a std::vector where a SmallVec belongs, an owning
// string where a view over the raw buffer belongs, a lost AS-path cache
// hit — fails here long before it would show up in a benchmark.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <new>

#include "bgp/attrs.hpp"
#include "core/prefetch.hpp"
#include "mrt/file.hpp"

namespace {

std::atomic<size_t> g_allocs{0};

size_t AllocCount() { return g_allocs.load(std::memory_order_relaxed); }

}  // namespace

// Counting shim over malloc/free. Every allocating form funnels through
// these two; the aligned forms exist because standard containers may
// over-align nodes.
void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  size_t align = std::max(sizeof(void*), static_cast<size_t>(al));
  if (posix_memalign(&p, align, n ? n : 1) == 0) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return ::operator new(n, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace bgps::core {
namespace {

using broker::DumpFileMeta;
using broker::DumpType;

// A realistic update file: every record announces one prefix with a
// short AS path and a couple of communities — all within the SmallVec
// inline capacities, and with the AS-path bytes repeating so the
// per-dump intern cache hits after the first record.
std::string WriteUpdatesFile(const std::filesystem::path& dir, size_t n) {
  std::string path = (dir / "updates.mrt").string();
  mrt::MrtFileWriter w;
  EXPECT_TRUE(w.Open(path).ok());
  for (size_t i = 0; i < n; ++i) {
    mrt::Bgp4mpMessage m;
    m.peer_asn = 65001;
    m.local_asn = 64512;
    m.peer_address = IpAddress::V4(10, 0, 0, 1);
    m.local_address = IpAddress::V4(192, 0, 2, 1);
    m.update.attrs.as_path = bgp::AsPath::Sequence({65001, 3356, 15169});
    m.update.attrs.next_hop = IpAddress::V4(10, 0, 0, 1);
    m.update.attrs.communities.push_back(bgp::Community{65001, 100});
    m.update.attrs.communities.push_back(bgp::Community{65001, 200});
    m.update.announced.push_back(
        Prefix(IpAddress::V4(10, uint8_t(i >> 8), uint8_t(i & 0xff), 0), 24));
    EXPECT_TRUE(
        w.Write(mrt::EncodeBgp4mpUpdate(1458000000 + Timestamp(i), m)).ok());
  }
  EXPECT_TRUE(w.Close().ok());
  return path;
}

// The tight frame+decode loop — MrtFileReader::Next into DecodeRecord
// with the per-dump AS-path cache — must be allocation-free at steady
// state: the reader's frame buffer is reused, the record body is a view
// into it, every decoded container stays within its inline capacity,
// and repeated AS-path bytes copy out of the cache instead of being
// re-decoded. A warmed second pass over the whole file is allowed only
// a small constant slack (frame-buffer regrowth), NOT per-record heap
// traffic.
TEST(AllocRegressionTest, SteadyStateDecodeLoopIsAllocationFree) {
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() /
                 ("bgps_alloc_decode_test_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  constexpr size_t kRecords = 500;
  std::string path = WriteUpdatesFile(dir, kRecords);

  Arena arena;
  bgp::AsPathCache cache(&arena);
  bgp::AttrDecodeCtx ctx{&cache};

  // Warm-up pass: grows the frame buffer to the largest record and
  // populates the AS-path cache.
  {
    mrt::MrtFileReader reader;
    ASSERT_TRUE(reader.Open(path).ok());
    size_t decoded = 0;
    while (true) {
      auto raw = reader.Next();
      if (!raw.ok()) break;
      auto msg = mrt::DecodeRecord(*raw, &ctx);
      ASSERT_TRUE(msg.ok());
      ++decoded;
    }
    ASSERT_EQ(decoded, kRecords);
  }

  // Measured pass: a fresh reader over the same file with the warmed
  // cache. Opening the reader (ifstream internals) is excluded; the
  // loop itself must not allocate per record.
  mrt::MrtFileReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  size_t before = AllocCount();
  size_t decoded = 0;
  uint64_t checksum = 0;
  while (true) {
    auto raw = reader.Next();
    if (!raw.ok()) break;
    auto msg = mrt::DecodeRecord(*raw, &ctx);
    ASSERT_TRUE(msg.ok());
    checksum += uint64_t(msg->timestamp);
    ++decoded;
  }
  size_t allocs = AllocCount() - before;
  EXPECT_EQ(decoded, kRecords);
  EXPECT_NE(checksum, 0u);
  // ~0 per record: the only tolerated allocations are the one-time
  // frame-buffer growth of the fresh reader.
  EXPECT_LE(allocs, 16u) << "steady-state decode allocated " << allocs
                         << " times for " << kRecords << " records";
  // The cache actually served the repeats — the zero-allocation claim
  // above rests on it.
  EXPECT_GE(cache.hits(), kRecords - 1);

  std::error_code ec;
  fs::remove_all(dir, ec);
}

// The full chunked pipeline — fill tasks decoding into the bounded
// buffer, the consumer popping — is allowed bounded bookkeeping (task
// objects, deque blocks), but nothing per-record-proportional beyond
// it. Pre-arena this path paid several container/string allocations on
// every single record.
TEST(AllocRegressionTest, ChunkedStreamPathAllocatesBoundedPerRecord) {
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() /
                 ("bgps_alloc_stream_test_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  constexpr size_t kRecords = 2000;
  std::string path = WriteUpdatesFile(dir, kRecords);
  DumpFileMeta meta;
  meta.project = "test";
  meta.collector = "alloc";
  meta.type = DumpType::Updates;
  meta.start = 1458000000;
  meta.duration = 3600;
  meta.path = path;

  PrefetchDecoder::Options opt;
  opt.threads = 1;
  opt.max_records_in_flight = 64;
  PrefetchDecoder decoder(std::move(opt));

  size_t before = AllocCount();
  decoder.Submit({meta});
  auto sources = decoder.WaitNextSources();
  ASSERT_EQ(sources.size(), 1u);
  size_t drained = 0;
  while (auto rec = sources[0]->Next()) {
    ASSERT_EQ(rec->status, RecordStatus::Valid);
    ++drained;
  }
  size_t allocs = AllocCount() - before;
  ASSERT_EQ(drained, kRecords);
  double per_record = double(allocs) / double(kRecords);
  EXPECT_LT(per_record, 4.0)
      << allocs << " allocations for " << kRecords
      << " records end to end (" << per_record << " per record)";

  std::error_code ec;
  fs::remove_all(dir, ec);
}

}  // namespace
}  // namespace bgps::core
