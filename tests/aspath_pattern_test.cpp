#include <gtest/gtest.h>

#include <random>

#include "core/filter.hpp"

namespace bgps::core {
namespace {

bgp::AsPath Path(std::initializer_list<bgp::Asn> hops) {
  return bgp::AsPath::Sequence(hops);
}

AsPathPattern Pat(const std::string& s) {
  auto p = AsPathPattern::Parse(s);
  EXPECT_TRUE(p.ok()) << s;
  return *p;
}

TEST(AsPathPattern, ExactSequence) {
  auto p = Pat("^65001 3356 15169$");
  EXPECT_TRUE(p.matches(Path({65001, 3356, 15169})));
  EXPECT_FALSE(p.matches(Path({65001, 3356, 15169, 1})));
  EXPECT_FALSE(p.matches(Path({2, 65001, 3356, 15169})));
  EXPECT_FALSE(p.matches(Path({65001, 15169})));
}

TEST(AsPathPattern, UnanchoredSubsequence) {
  auto p = Pat("3356 15169");
  EXPECT_TRUE(p.matches(Path({1, 2, 3356, 15169, 4})));
  EXPECT_TRUE(p.matches(Path({3356, 15169})));
  EXPECT_FALSE(p.matches(Path({3356, 1, 15169})));  // must be contiguous
}

TEST(AsPathPattern, StartAnchor) {
  auto p = Pat("^65001");
  EXPECT_TRUE(p.matches(Path({65001, 1, 2})));
  EXPECT_FALSE(p.matches(Path({1, 65001})));
}

TEST(AsPathPattern, EndAnchorMatchesOrigin) {
  auto p = Pat("15169$");
  EXPECT_TRUE(p.matches(Path({1, 2, 15169})));
  EXPECT_FALSE(p.matches(Path({15169, 1})));
}

TEST(AsPathPattern, AnyOneHop) {
  auto p = Pat("^65001 * 15169$");
  EXPECT_TRUE(p.matches(Path({65001, 3356, 15169})));
  EXPECT_FALSE(p.matches(Path({65001, 15169})));           // * needs one hop
  EXPECT_FALSE(p.matches(Path({65001, 1, 2, 15169})));     // exactly one
}

TEST(AsPathPattern, AnyRun) {
  auto p = Pat("^65001 % 15169$");
  EXPECT_TRUE(p.matches(Path({65001, 15169})));             // empty run
  EXPECT_TRUE(p.matches(Path({65001, 1, 2, 3, 15169})));
  EXPECT_FALSE(p.matches(Path({1, 65001, 15169})));
}

TEST(AsPathPattern, ThroughAs) {
  auto p = Pat("% 3356 %");
  EXPECT_TRUE(p.matches(Path({1, 3356, 2})));
  EXPECT_TRUE(p.matches(Path({3356})));
  EXPECT_FALSE(p.matches(Path({1, 2, 3})));
}

TEST(AsPathPattern, StandaloneAnchors) {
  auto p = Pat("^ 65001 % $");
  EXPECT_TRUE(p.matches(Path({65001, 9})));
  EXPECT_FALSE(p.matches(Path({9, 65001})));
}

TEST(AsPathPattern, ParseErrors) {
  EXPECT_FALSE(AsPathPattern::Parse("").ok());
  EXPECT_FALSE(AsPathPattern::Parse("^$").ok());
  EXPECT_FALSE(AsPathPattern::Parse("abc").ok());
  EXPECT_FALSE(AsPathPattern::Parse("1 2x").ok());
}

TEST(AsPathPattern, EmptyPathOnlyMatchesPureRun) {
  EXPECT_TRUE(Pat("%").matches(Path({})));
  EXPECT_FALSE(Pat("*").matches(Path({})));
  EXPECT_FALSE(Pat("1").matches(Path({})));
}

TEST(AsPathPattern, FilterSetIntegration) {
  FilterSet f;
  ASSERT_TRUE(f.AddOption("aspath", "% 3356 15169$").ok());
  EXPECT_TRUE(f.HasElemFilters());
  Elem e;
  e.type = ElemType::Announcement;
  e.prefix = *Prefix::Parse("10.0.0.0/8");
  e.as_path = Path({65001, 3356, 15169});
  EXPECT_TRUE(f.MatchesElem(e));
  e.as_path = Path({65001, 15169});
  EXPECT_FALSE(f.MatchesElem(e));
  EXPECT_FALSE(f.AddOption("aspath", "bogus pattern").ok());
}

// Property sweep: "% <asn> %" agrees with AsPath::contains on random paths.
class AsPathPatternRandom : public ::testing::TestWithParam<uint32_t> {};

TEST_P(AsPathPatternRandom, ContainsEquivalence) {
  std::mt19937 rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<bgp::Asn> hops;
    size_t len = rng() % 8;
    for (size_t i = 0; i < len; ++i) hops.push_back(1 + rng() % 16);
    bgp::AsPath path = bgp::AsPath::Sequence(hops);
    bgp::Asn target = 1 + rng() % 16;
    auto p = AsPathPattern::Parse("% " + std::to_string(target) + " %");
    ASSERT_TRUE(p.ok());
    EXPECT_EQ(p->matches(path), path.contains(target))
        << path.ToString() << " ~ " << target;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AsPathPatternRandom,
                         ::testing::Values(11u, 22u, 33u));

}  // namespace
}  // namespace bgps::core
