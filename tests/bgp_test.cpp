#include <gtest/gtest.h>

#include "bgp/update.hpp"

namespace bgps::bgp {
namespace {

Prefix P(const std::string& s) { return *Prefix::Parse(s); }

TEST(AsPath, SequenceBasics) {
  AsPath p = AsPath::Sequence({701, 3356, 65001});
  EXPECT_EQ(p.length(), 3u);
  EXPECT_EQ(p.ToString(), "701 3356 65001");
  EXPECT_EQ(p.first_asn().value(), 701u);
  EXPECT_EQ(p.origin_asn().value(), 65001u);
  EXPECT_TRUE(p.contains(3356));
  EXPECT_FALSE(p.contains(1));
}

TEST(AsPath, EmptyPath) {
  AsPath p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.length(), 0u);
  EXPECT_FALSE(p.first_asn().has_value());
  EXPECT_FALSE(p.origin_asn().has_value());
  EXPECT_EQ(p.ToString(), "");
}

TEST(AsPath, SetCountsOnceInLength) {
  AsPath p({{SegmentType::AsSequence, {701, 3356}},
            {SegmentType::AsSet, {7018, 209}},
            {SegmentType::AsSequence, {65001}}});
  EXPECT_EQ(p.length(), 4u);  // 2 + 1 (set) + 1
  EXPECT_EQ(p.ToString(), "701 3356 {7018,209} 65001");
}

TEST(AsPath, HopsFlattenSets) {
  AsPath p({{SegmentType::AsSequence, {1}},
            {SegmentType::AsSet, {2, 3}}});
  EXPECT_EQ(p.hops(), (std::vector<Asn>{1, 2, 3}));
}

TEST(AsPath, OriginOfTrailingSet) {
  AsPath p({{SegmentType::AsSequence, {1}},
            {SegmentType::AsSet, {30, 20}}});
  EXPECT_EQ(p.origin_asn().value(), 20u);  // smallest member, deterministic
  EXPECT_EQ(p.origin_set(), (std::vector<Asn>{30, 20}));
}

TEST(AsPath, Prepend) {
  AsPath p = AsPath::Sequence({3356, 65001});
  p.prepend(701);
  EXPECT_EQ(p.ToString(), "701 3356 65001");
  AsPath q({{SegmentType::AsSet, {5, 6}}});
  q.prepend(1);
  EXPECT_EQ(q.ToString(), "1 {5,6}");
}

TEST(AsPath, ParseRoundTrip) {
  for (const char* text :
       {"701 3356 65001", "1", "", "701 {1,2,3} 99", "{4,5}"}) {
    auto p = AsPath::Parse(text);
    ASSERT_TRUE(p.ok()) << text;
    EXPECT_EQ(p->ToString(), text);
  }
}

TEST(AsPath, ParseInvalid) {
  EXPECT_FALSE(AsPath::Parse("abc").ok());
  EXPECT_FALSE(AsPath::Parse("1 {2,3").ok());
  EXPECT_FALSE(AsPath::Parse("{}").ok());
}

TEST(AsPath, FourByteAsn) {
  AsPath p = AsPath::Sequence({4200000001, 65001});
  EXPECT_EQ(p.ToString(), "4200000001 65001");
}

TEST(Community, Basics) {
  Community c(65535, 666);
  EXPECT_EQ(c.asn(), 65535);
  EXPECT_EQ(c.value(), 666);
  EXPECT_EQ(c.raw(), 0xFFFF029Au);
  EXPECT_EQ(c.ToString(), "65535:666");
}

TEST(Community, Parse) {
  auto c = Community::Parse("3356:100");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->asn(), 3356);
  EXPECT_EQ(c->value(), 100);
  EXPECT_FALSE(Community::Parse("3356").ok());
  EXPECT_FALSE(Community::Parse("99999:1").ok());
  EXPECT_FALSE(Community::Parse("a:b").ok());
}

TEST(CommunityMatcher, Wildcards) {
  auto exact = *CommunityMatcher::Parse("3356:666");
  auto any_value = *CommunityMatcher::Parse("3356:*");
  auto any_asn = *CommunityMatcher::Parse("*:666");
  auto all = *CommunityMatcher::Parse("*:*");
  Community c(3356, 666), d(3356, 100), e(701, 666);
  EXPECT_TRUE(exact.matches(c));
  EXPECT_FALSE(exact.matches(d));
  EXPECT_TRUE(any_value.matches(d));
  EXPECT_FALSE(any_value.matches(e));
  EXPECT_TRUE(any_asn.matches(e));
  EXPECT_FALSE(any_asn.matches(d));
  EXPECT_TRUE(all.matches(d));
  EXPECT_TRUE(any_asn.matches_any({d, e}));
  EXPECT_FALSE(any_asn.matches_any({d}));
}

PathAttributes MakeAttrs() {
  PathAttributes attrs;
  attrs.origin = Origin::Igp;
  attrs.as_path = AsPath({{SegmentType::AsSequence, {701, 3356}},
                          {SegmentType::AsSet, {7018, 209}}});
  attrs.next_hop = IpAddress::V4(10, 0, 0, 1);
  attrs.med = 50;
  attrs.local_pref = 120;
  attrs.communities = {Community(3356, 100), Community(65535, 666)};
  return attrs;
}

TEST(PathAttributes, RoundTripFourByte) {
  PathAttributes attrs = MakeAttrs();
  Bytes wire = EncodePathAttributes(attrs, AsnEncoding::FourByte);
  BufReader r(wire);
  auto decoded = DecodePathAttributes(r, wire.size(), AsnEncoding::FourByte);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, attrs);
}

TEST(PathAttributes, RoundTripTwoByte) {
  PathAttributes attrs = MakeAttrs();
  Bytes wire = EncodePathAttributes(attrs, AsnEncoding::TwoByte);
  BufReader r(wire);
  auto decoded = DecodePathAttributes(r, wire.size(), AsnEncoding::TwoByte);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, attrs);
}

TEST(PathAttributes, TwoByteEncodingUsesAsTrans) {
  PathAttributes attrs;
  attrs.as_path = AsPath::Sequence({4200000001, 65001});
  Bytes wire = EncodePathAttributes(attrs, AsnEncoding::TwoByte);
  BufReader r(wire);
  auto decoded = DecodePathAttributes(r, wire.size(), AsnEncoding::TwoByte);
  ASSERT_TRUE(decoded.ok());
  // 32-bit ASN collapses to AS_TRANS 23456 (RFC 6793).
  EXPECT_EQ(decoded->as_path.ToString(), "23456 65001");
}

TEST(PathAttributes, AggregatorAndAtomic) {
  PathAttributes attrs;
  attrs.as_path = AsPath::Sequence({1});
  attrs.atomic_aggregate = true;
  attrs.aggregator = Aggregator{65001, IpAddress::V4(192, 0, 2, 1)};
  Bytes wire = EncodePathAttributes(attrs, AsnEncoding::FourByte);
  BufReader r(wire);
  auto decoded = DecodePathAttributes(r, wire.size(), AsnEncoding::FourByte);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->atomic_aggregate);
  ASSERT_TRUE(decoded->aggregator.has_value());
  EXPECT_EQ(decoded->aggregator->asn, 65001u);
}

TEST(PathAttributes, MpReachV6RoundTrip) {
  PathAttributes attrs;
  attrs.as_path = AsPath::Sequence({1, 2});
  MpReach mp;
  mp.next_hop = *IpAddress::Parse("2001:db8::1");
  mp.nlri = {P("2001:db8:100::/48"), P("2001:db8:200::/40")};
  attrs.mp_reach = mp;
  Bytes wire = EncodePathAttributes(attrs, AsnEncoding::FourByte);
  BufReader r(wire);
  auto decoded = DecodePathAttributes(r, wire.size(), AsnEncoding::FourByte);
  ASSERT_TRUE(decoded.ok());
  ASSERT_TRUE(decoded->mp_reach.has_value());
  EXPECT_EQ(decoded->mp_reach->next_hop.ToString(), "2001:db8::1");
  EXPECT_EQ(decoded->mp_reach->nlri, mp.nlri);
}

TEST(PathAttributes, MpUnreachRoundTrip) {
  PathAttributes attrs;
  MpUnreach mp;
  mp.withdrawn = {P("2001:db8::/32")};
  attrs.mp_unreach = mp;
  attrs.as_path = AsPath::Sequence({1});
  Bytes wire = EncodePathAttributes(attrs, AsnEncoding::FourByte);
  BufReader r(wire);
  auto decoded = DecodePathAttributes(r, wire.size(), AsnEncoding::FourByte);
  ASSERT_TRUE(decoded.ok());
  ASSERT_TRUE(decoded->mp_unreach.has_value());
  EXPECT_EQ(decoded->mp_unreach->withdrawn, mp.withdrawn);
}

TEST(PathAttributes, CorruptOriginRejected) {
  BufWriter w;
  w.u8(0x40);  // transitive
  w.u8(1);     // ORIGIN
  w.u8(1);     // length
  w.u8(9);     // invalid origin value
  BufReader r(w.data());
  auto decoded = DecodePathAttributes(r, w.size(), AsnEncoding::FourByte);
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::Corrupt);
}

TEST(PathAttributes, TruncatedAttributeRejected) {
  PathAttributes attrs = MakeAttrs();
  Bytes wire = EncodePathAttributes(attrs, AsnEncoding::FourByte);
  wire.resize(wire.size() - 3);
  BufReader r(wire);
  auto decoded = DecodePathAttributes(r, wire.size(), AsnEncoding::FourByte);
  EXPECT_FALSE(decoded.ok());
}

TEST(PathAttributes, UnknownAttributeSkipped) {
  BufWriter w;
  w.u8(0xC0);  // optional transitive
  w.u8(99);    // unknown type
  w.u8(2);
  w.u16(0xBEEF);
  // Then a valid ORIGIN.
  w.u8(0x40);
  w.u8(1);
  w.u8(1);
  w.u8(2);
  BufReader r(w.data());
  auto decoded = DecodePathAttributes(r, w.size(), AsnEncoding::FourByte);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->origin, Origin::Incomplete);
}

TEST(NlriPrefix, RoundTripLengths) {
  for (int len : {0, 1, 7, 8, 9, 15, 16, 17, 23, 24, 25, 31, 32}) {
    Prefix p(IpAddress::V4(0xC0A85A5Au), len);
    BufWriter w;
    EncodeNlriPrefix(w, p);
    // Wire size is minimal: 1 + ceil(len/8).
    EXPECT_EQ(w.size(), 1 + (size_t(len) + 7) / 8);
    BufReader r(w.data());
    auto q = DecodeNlriPrefix(r, IpFamily::V4);
    ASSERT_TRUE(q.ok());
    EXPECT_EQ(*q, p) << len;
  }
}

TEST(NlriPrefix, BadLengthRejected) {
  BufWriter w;
  w.u8(33);  // too long for v4
  w.u32(0);
  w.u8(0);
  BufReader r(w.data());
  EXPECT_FALSE(DecodeNlriPrefix(r, IpFamily::V4).ok());
}

UpdateMessage MakeUpdate() {
  UpdateMessage u;
  u.withdrawn = {P("10.9.0.0/16")};
  u.attrs = MakeAttrs();
  u.announced = {P("192.168.0.0/16"), P("192.169.0.0/17")};
  return u;
}

TEST(Update, RoundTrip) {
  UpdateMessage u = MakeUpdate();
  Bytes wire = EncodeUpdate(u, AsnEncoding::FourByte);
  BufReader r(wire);
  auto decoded = DecodeUpdate(r, AsnEncoding::FourByte);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, u);
  EXPECT_TRUE(r.empty());  // consumed exactly the message length
}

TEST(Update, PureWithdrawalOmitsAttributes) {
  UpdateMessage u;
  u.withdrawn = {P("10.0.0.0/8")};
  Bytes wire = EncodeUpdate(u, AsnEncoding::FourByte);
  BufReader r(wire);
  auto decoded = DecodeUpdate(r, AsnEncoding::FourByte);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->withdrawn, u.withdrawn);
  EXPECT_TRUE(decoded->announced.empty());
}

TEST(Update, HeaderValidation) {
  UpdateMessage u = MakeUpdate();
  Bytes wire = EncodeUpdate(u, AsnEncoding::FourByte);
  // Break the marker.
  Bytes bad = wire;
  bad[3] = 0x00;
  BufReader r1(bad);
  EXPECT_FALSE(DecodeUpdate(r1, AsnEncoding::FourByte).ok());
  // Break the length.
  bad = wire;
  bad[16] = 0xFF;
  bad[17] = 0xFF;
  BufReader r2(bad);
  EXPECT_FALSE(DecodeUpdate(r2, AsnEncoding::FourByte).ok());
  // Break the type.
  bad = wire;
  bad[18] = 7;
  BufReader r3(bad);
  EXPECT_FALSE(DecodeUpdate(r3, AsnEncoding::FourByte).ok());
}

TEST(Update, V6OnlyUpdateViaMp) {
  UpdateMessage u;
  u.attrs.as_path = AsPath::Sequence({1, 2, 3});
  MpReach mp;
  mp.next_hop = *IpAddress::Parse("2001:db8::99");
  mp.nlri = {P("2001:db8:42::/48")};
  u.attrs.mp_reach = mp;
  Bytes wire = EncodeUpdate(u, AsnEncoding::FourByte);
  BufReader r(wire);
  auto decoded = DecodeUpdate(r, AsnEncoding::FourByte);
  ASSERT_TRUE(decoded.ok());
  ASSERT_TRUE(decoded->attrs.mp_reach.has_value());
  EXPECT_EQ(decoded->attrs.mp_reach->nlri, mp.nlri);
}

// Property sweep: update with N announced prefixes round-trips.
class UpdateFanout : public ::testing::TestWithParam<int> {};

TEST_P(UpdateFanout, RoundTrip) {
  UpdateMessage u;
  u.attrs.as_path = AsPath::Sequence({100, 200});
  u.attrs.next_hop = IpAddress::V4(10, 0, 0, 1);
  for (int i = 0; i < GetParam(); ++i) {
    u.announced.push_back(
        Prefix(IpAddress::V4(uint32_t(i) << 12), 24));
  }
  Bytes wire = EncodeUpdate(u, AsnEncoding::FourByte);
  BufReader r(wire);
  auto decoded = DecodeUpdate(r, AsnEncoding::FourByte);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->announced.size(), size_t(GetParam()));
  EXPECT_EQ(*decoded, u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, UpdateFanout,
                         ::testing::Values(0, 1, 2, 10, 100, 500));

TEST(FsmState, Names) {
  EXPECT_STREQ(FsmStateName(FsmState::Established), "ESTABLISHED");
  EXPECT_STREQ(FsmStateName(FsmState::Idle), "IDLE");
}

}  // namespace
}  // namespace bgps::bgp
