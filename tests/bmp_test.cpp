#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <random>

#include "bmp/bmp.hpp"
#include "mrt/file.hpp"

namespace bgps::bmp {
namespace {

Prefix P(const std::string& s) { return *Prefix::Parse(s); }

PeerHeader MakePeer() {
  PeerHeader ph;
  ph.peer_address = IpAddress::V4(10, 0, 0, 9);
  ph.peer_asn = 65009;
  ph.peer_bgp_id = 0x0A000009;
  ph.timestamp = 1466000000;
  ph.microseconds = 123456;
  return ph;
}

BmpMessage MakeRouteMonitoring() {
  RouteMonitoring rm;
  rm.peer = MakePeer();
  rm.update.attrs.as_path = bgp::AsPath::Sequence({65009, 3356, 15169});
  rm.update.attrs.next_hop = IpAddress::V4(10, 0, 0, 9);
  rm.update.attrs.communities = {bgp::Community(3356, 100)};
  rm.update.announced = {P("198.18.0.0/15")};
  BmpMessage msg;
  msg.body = std::move(rm);
  return msg;
}

TEST(Bmp, RouteMonitoringRoundTrip) {
  BmpMessage msg = MakeRouteMonitoring();
  Bytes wire = Encode(msg);
  BufReader r(wire);
  auto decoded = Decode(r);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_TRUE(decoded->is_route_monitoring());
  const auto& rm = std::get<RouteMonitoring>(decoded->body);
  EXPECT_EQ(rm.peer.peer_asn, 65009u);
  EXPECT_EQ(rm.peer.peer_address.ToString(), "10.0.0.9");
  EXPECT_EQ(rm.peer.timestamp, 1466000000);
  EXPECT_EQ(rm.peer.microseconds, 123456u);
  EXPECT_EQ(rm.update, std::get<RouteMonitoring>(msg.body).update);
  EXPECT_TRUE(r.empty());
}

TEST(Bmp, V6PeerRoundTrip) {
  RouteMonitoring rm;
  rm.peer = MakePeer();
  rm.peer.peer_address = *IpAddress::Parse("2001:db8::9");
  rm.update.attrs.as_path = bgp::AsPath::Sequence({65009});
  bgp::MpReach mp;
  mp.next_hop = *IpAddress::Parse("2001:db8::9");
  mp.nlri = {P("2001:db8:5::/48")};
  rm.update.attrs.mp_reach = mp;
  BmpMessage msg;
  msg.body = rm;
  Bytes wire = Encode(msg);
  BufReader r(wire);
  auto decoded = Decode(r);
  ASSERT_TRUE(decoded.ok());
  const auto& d = std::get<RouteMonitoring>(decoded->body);
  EXPECT_EQ(d.peer.peer_address.ToString(), "2001:db8::9");
  ASSERT_TRUE(d.update.attrs.mp_reach.has_value());
}

TEST(Bmp, PeerUpDownRoundTrip) {
  PeerUp pu;
  pu.peer = MakePeer();
  pu.local_address = IpAddress::V4(192, 0, 2, 1);
  pu.local_asn = 64512;
  pu.local_port = 41000;
  BmpMessage up;
  up.body = pu;
  Bytes wire = Encode(up);
  BufReader r(wire);
  auto decoded = Decode(r);
  ASSERT_TRUE(decoded.ok());
  ASSERT_TRUE(decoded->is_peer_up());
  const auto& d = std::get<PeerUp>(decoded->body);
  EXPECT_EQ(d.local_asn, 64512u);
  EXPECT_EQ(d.local_port, 41000);
  EXPECT_EQ(d.local_address.ToString(), "192.0.2.1");

  PeerDown pd;
  pd.peer = MakePeer();
  pd.reason = PeerDownReason::LocalNoNotification;
  BmpMessage down;
  down.body = pd;
  wire = Encode(down);
  BufReader r2(wire);
  decoded = Decode(r2);
  ASSERT_TRUE(decoded.ok());
  ASSERT_TRUE(decoded->is_peer_down());
  EXPECT_EQ(std::get<PeerDown>(decoded->body).reason,
            PeerDownReason::LocalNoNotification);
}

TEST(Bmp, InitiationTlvsRoundTrip) {
  InfoTlvs info;
  info.type = MessageType::Initiation;
  info.sys_name = "edge-router-1";
  info.sys_descr = "test descr";
  BmpMessage msg;
  msg.body = info;
  Bytes wire = Encode(msg);
  BufReader r(wire);
  auto decoded = Decode(r);
  ASSERT_TRUE(decoded.ok());
  ASSERT_TRUE(decoded->is_info());
  const auto& d = std::get<InfoTlvs>(decoded->body);
  EXPECT_EQ(d.sys_name, "edge-router-1");
  EXPECT_EQ(d.sys_descr, "test descr");
}

TEST(Bmp, DecodeErrors) {
  Bytes wire = Encode(MakeRouteMonitoring());
  // Bad version.
  Bytes bad = wire;
  bad[0] = 2;
  BufReader r1(bad);
  EXPECT_EQ(Decode(r1).status().code(), StatusCode::Corrupt);
  // Truncated body.
  bad = wire;
  bad.resize(bad.size() - 4);
  BufReader r2(bad);
  EXPECT_FALSE(Decode(r2).ok());
  // Clean end.
  BufReader r3(Bytes{});
  EXPECT_EQ(Decode(r3).status().code(), StatusCode::EndOfStream);
}

TEST(Bmp, StreamOfMessages) {
  BufWriter w;
  InfoTlvs init;
  init.sys_name = "r1";
  BmpMessage im;
  im.body = init;
  w.bytes(Encode(im));
  PeerUp pu;
  pu.peer = MakePeer();
  pu.local_address = IpAddress::V4(192, 0, 2, 1);
  pu.local_asn = 64512;
  BmpMessage um;
  um.body = pu;
  w.bytes(Encode(um));
  w.bytes(Encode(MakeRouteMonitoring()));
  Bytes blob = w.take();
  BufReader r(blob);
  int count = 0;
  while (true) {
    auto msg = Decode(r);
    if (!msg.ok()) break;
    ++count;
  }
  EXPECT_EQ(count, 3);
}

TEST(Bmp, ToMrtMapping) {
  auto rm_mrt = ToMrt(MakeRouteMonitoring(), 64512);
  ASSERT_TRUE(rm_mrt.has_value());
  ASSERT_TRUE(rm_mrt->is_message());
  const auto& m = std::get<mrt::Bgp4mpMessage>(rm_mrt->body);
  EXPECT_EQ(m.peer_asn, 65009u);
  EXPECT_EQ(m.local_asn, 64512u);
  EXPECT_EQ(rm_mrt->timestamp, 1466000000);

  PeerDown pd;
  pd.peer = MakePeer();
  BmpMessage down;
  down.body = pd;
  auto down_mrt = ToMrt(down, 64512);
  ASSERT_TRUE(down_mrt.has_value());
  ASSERT_TRUE(down_mrt->is_state_change());
  EXPECT_EQ(std::get<mrt::Bgp4mpStateChange>(down_mrt->body).new_state,
            bgp::FsmState::Idle);

  InfoTlvs info;
  BmpMessage im;
  im.body = info;
  EXPECT_FALSE(ToMrt(im).has_value());
}

TEST(Bmp, TranscodeStreamToMrt) {
  namespace fs = std::filesystem;
  fs::path bmp_path = fs::temp_directory_path() /
                      ("bmp_" + std::to_string(::getpid()) + ".bin");
  fs::path mrt_path = fs::temp_directory_path() /
                      ("bmp_" + std::to_string(::getpid()) + ".mrt");
  {
    std::ofstream out(bmp_path, std::ios::binary);
    auto write = [&](const BmpMessage& m) {
      Bytes b = Encode(m);
      out.write(reinterpret_cast<const char*>(b.data()),
                std::streamsize(b.size()));
    };
    InfoTlvs init;
    init.sys_name = "r1";
    BmpMessage im;
    im.body = init;
    write(im);  // skipped (no MRT equivalent)
    PeerUp pu;
    pu.peer = MakePeer();
    pu.local_address = IpAddress::V4(192, 0, 2, 1);
    pu.local_asn = 64512;
    BmpMessage um;
    um.body = pu;
    write(um);  // -> STATE_CHANGE Established
    write(MakeRouteMonitoring());  // -> BGP4MP update
    PeerDown pd;
    pd.peer = MakePeer();
    BmpMessage dm;
    dm.body = pd;
    write(dm);  // -> STATE_CHANGE Idle
  }

  auto stats = TranscodeBmpToMrt(bmp_path.string(), mrt_path.string());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->converted, 3u);
  EXPECT_EQ(stats->skipped, 1u);

  auto scan = mrt::ScanFile(mrt_path.string());
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->messages.size(), 3u);
  EXPECT_TRUE(scan->messages[0].is_state_change());
  EXPECT_TRUE(scan->messages[1].is_message());
  // The transcoder learned the local ASN from the Peer Up OPEN.
  EXPECT_EQ(std::get<mrt::Bgp4mpMessage>(scan->messages[1].body).local_asn,
            64512u);
  EXPECT_TRUE(scan->messages[2].is_state_change());
  fs::remove(bmp_path);
  fs::remove(mrt_path);
}

// ---------------------------------------------------------------------------
// Wire-level property tests (fixed seed: failures reproduce exactly).
// ---------------------------------------------------------------------------

// Random-but-valid message generator for the round-trip property.
BmpMessage RandomMessage(std::mt19937& rng) {
  auto u = [&](uint32_t lo, uint32_t hi) {
    return std::uniform_int_distribution<uint32_t>(lo, hi)(rng);
  };
  PeerHeader ph;
  ph.peer_address =
      IpAddress::V4(10, uint8_t(u(0, 255)), uint8_t(u(0, 255)), 1);
  ph.peer_asn = u(1, 4200000000u);  // exercises 4-byte ASNs
  ph.peer_bgp_id = u(1, 0xffffffffu);
  ph.timestamp = 1451606400 + Timestamp(u(0, 86400));
  ph.microseconds = u(0, 999999);

  switch (u(0, 9)) {
    case 0: {  // peer up
      PeerUp pu;
      pu.peer = ph;
      pu.local_address = IpAddress::V4(192, 0, 2, uint8_t(u(1, 254)));
      pu.local_asn = u(1, 4200000000u);
      pu.local_port = uint16_t(u(1024, 65535));
      pu.remote_port = uint16_t(u(1024, 65535));
      return BmpMessage{pu};
    }
    case 1: {  // peer down
      PeerDown pd;
      pd.peer = ph;
      pd.reason = PeerDownReason(u(1, 4));
      return BmpMessage{pd};
    }
    case 2: {  // initiation / termination
      InfoTlvs info;
      info.type = u(0, 1) ? MessageType::Initiation : MessageType::Termination;
      info.sys_name = "r" + std::to_string(u(0, 9999));
      if (u(0, 1)) info.sys_descr = std::string(u(0, 64), 'x');
      return BmpMessage{info};
    }
    default: {  // route monitoring (the hot path gets the weight)
      RouteMonitoring rm;
      rm.peer = ph;
      size_t announced = u(0, 3);
      size_t withdrawn = announced == 0 ? u(1, 2) : u(0, 2);
      if (announced > 0) {
        std::vector<bgp::Asn> path;
        for (size_t i = 0, n = u(1, 5); i < n; ++i)
          path.push_back(u(1, 4200000000u));
        rm.update.attrs.as_path = bgp::AsPath::Sequence(path);
        rm.update.attrs.next_hop = ph.peer_address;
        for (size_t i = 0, n = u(0, 2); i < n; ++i)
          rm.update.attrs.communities.push_back(
              bgp::Community(uint16_t(u(1, 65535)), uint16_t(u(0, 65535))));
      }
      auto pfx = [&] {
        // Host bits kept zero so decode -> re-encode is the identity.
        switch (u(0, 2)) {
          case 0:
            return P(std::to_string(u(1, 223)) + ".0.0.0/8");
          case 1:
            return P(std::to_string(u(1, 223)) + "." +
                     std::to_string(u(0, 255)) + ".0.0/16");
          default:
            return P(std::to_string(u(1, 223)) + "." +
                     std::to_string(u(0, 255)) + "." +
                     std::to_string(u(0, 255)) + ".0/24");
        }
      };
      for (size_t i = 0; i < announced; ++i)
        rm.update.announced.push_back(pfx());
      for (size_t i = 0; i < withdrawn; ++i)
        rm.update.withdrawn.push_back(pfx());
      return BmpMessage{rm};
    }
  }
}

TEST(BmpProperty, SeededEncodeDecodeReencodeIsTheIdentity) {
  std::mt19937 rng(20160112);  // fixed: any failure reproduces exactly
  for (int i = 0; i < 300; ++i) {
    BmpMessage msg = RandomMessage(rng);
    Bytes wire = Encode(msg);
    BufReader r(wire);
    auto decoded = Decode(r);
    ASSERT_TRUE(decoded.ok()) << "iteration " << i << ": "
                              << decoded.status().ToString();
    EXPECT_TRUE(r.empty()) << "iteration " << i;
    EXPECT_EQ(Encode(*decoded), wire) << "iteration " << i;
  }
}

TEST(BmpProperty, SeededMutationFuzzNeverCrashesAndKeepsPositionSane) {
  std::mt19937 rng(7854);
  std::vector<Bytes> seeds;
  for (int i = 0; i < 8; ++i) seeds.push_back(Encode(RandomMessage(rng)));

  auto u = [&](size_t lo, size_t hi) {
    return std::uniform_int_distribution<size_t>(lo, hi)(rng);
  };
  for (int round = 0; round < 500; ++round) {
    // A stream of 1-3 frames with one mutation: byte flips, a
    // truncation, or an insertion of pure garbage.
    Bytes stream;
    for (size_t i = 0, n = u(1, 3); i < n; ++i) {
      const Bytes& s = seeds[u(0, seeds.size() - 1)];
      stream.insert(stream.end(), s.begin(), s.end());
    }
    switch (u(0, 2)) {
      case 0:
        for (size_t i = 0, n = u(1, 8); i < n; ++i)
          stream[u(0, stream.size() - 1)] ^= uint8_t(u(1, 255));
        break;
      case 1:
        stream.resize(u(0, stream.size() - 1));
        break;
      default: {
        Bytes junk(u(1, 32));
        for (auto& b : junk) b = uint8_t(u(0, 255));
        stream.insert(stream.begin() + long(u(0, stream.size())),
                      junk.begin(), junk.end());
        break;
      }
    }

    // Run the framer contract over the mutated stream: Decode must
    // always return (never crash/throw), never move the cursor
    // backwards or past the end, and only ever report known codes.
    BufReader r(stream);
    while (true) {
      size_t before = r.position();
      auto msg = Decode(r);
      ASSERT_GE(r.position(), before);
      ASSERT_LE(r.position(), stream.size());
      if (msg.ok()) continue;
      StatusCode code = msg.status().code();
      ASSERT_TRUE(code == StatusCode::EndOfStream ||
                  code == StatusCode::OutOfRange ||
                  code == StatusCode::Corrupt ||
                  code == StatusCode::Unsupported)
          << msg.status().ToString();
      if (code == StatusCode::EndOfStream || code == StatusCode::OutOfRange)
        break;  // drained / partial tail
      if (r.position() == before) break;  // framing lost: stop, resync
    }
  }
}

// Regression (found by the seeded round-trip property): a 4-byte local
// ASN in a Peer Up used to decode as AS_TRANS (23456) because the
// decoder read only the OPEN's 2-byte ASN field; it must come back via
// the RFC 6793 capability.
TEST(BmpRegression, FourByteLocalAsnSurvivesThePeerUpOpen) {
  PeerUp pu;
  pu.peer = MakePeer();
  pu.local_address = IpAddress::V4(192, 0, 2, 1);
  pu.local_asn = 4200000001u;  // > 0xFFFF: 2-byte field carries AS_TRANS
  BmpMessage msg;
  msg.body = pu;
  Bytes wire = Encode(msg);
  BufReader r(wire);
  auto decoded = Decode(r);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(std::get<PeerUp>(decoded->body).local_asn, 4200000001u);
}

// Regression: a declared frame length shorter than the per-peer header
// used to let the body decoder read past the frame into the next one.
// It must fail as Corrupt, consume exactly the declared frame, and
// leave the following frame decodable.
TEST(BmpRegression, ShortPerPeerHeaderIsCorruptAndStaysAligned) {
  Bytes next = Encode(MakeRouteMonitoring());
  Bytes short_frame = {3 /* version */, 0, 0, 0, kCommonHeaderSize + 10,
                       0 /* RouteMonitoring */};
  for (int i = 0; i < 10; ++i) short_frame.push_back(uint8_t(i));

  Bytes stream = short_frame;
  stream.insert(stream.end(), next.begin(), next.end());
  BufReader r(stream);
  auto bad = Decode(r);
  ASSERT_EQ(bad.status().code(), StatusCode::Corrupt);
  EXPECT_NE(bad.status().message().find("truncated BMP body"),
            std::string::npos)
      << bad.status().ToString();
  EXPECT_EQ(r.position(), short_frame.size());
  auto good = Decode(r);
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  EXPECT_TRUE(good->is_route_monitoring());
  EXPECT_TRUE(r.empty());
}

// Regression: an implausible declared length (> kMaxBmpFrameSize) must
// be Corrupt with nothing consumed — waiting for a megabyte that will
// never arrive would wedge the framer forever.
TEST(BmpRegression, ImplausibleLengthIsCorruptWithNothingConsumed) {
  Bytes frame = {3, 0xff, 0xff, 0xff, 0xff, 0};
  BufReader r(frame);
  EXPECT_EQ(Decode(r).status().code(), StatusCode::Corrupt);
  EXPECT_EQ(r.position(), 0u);
}

// A partial frame leaves the reader byte-for-byte untouched so a socket
// framer can retry the same buffer once more data arrives.
TEST(BmpRegression, PartialFrameLeavesTheReaderUntouched) {
  Bytes wire = Encode(MakeRouteMonitoring());
  for (size_t cut : {size_t(1), kCommonHeaderSize - 1, kCommonHeaderSize,
                     wire.size() - 1}) {
    Bytes partial(wire.begin(), wire.begin() + long(cut));
    BufReader r(partial);
    EXPECT_EQ(Decode(r).status().code(), StatusCode::OutOfRange)
        << "cut " << cut;
    EXPECT_EQ(r.position(), 0u) << "cut " << cut;
  }
  BufReader full(wire);
  EXPECT_TRUE(Decode(full).ok());
}

}  // namespace
}  // namespace bgps::bmp
