#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "bmp/bmp.hpp"
#include "mrt/file.hpp"

namespace bgps::bmp {
namespace {

Prefix P(const std::string& s) { return *Prefix::Parse(s); }

PeerHeader MakePeer() {
  PeerHeader ph;
  ph.peer_address = IpAddress::V4(10, 0, 0, 9);
  ph.peer_asn = 65009;
  ph.peer_bgp_id = 0x0A000009;
  ph.timestamp = 1466000000;
  ph.microseconds = 123456;
  return ph;
}

BmpMessage MakeRouteMonitoring() {
  RouteMonitoring rm;
  rm.peer = MakePeer();
  rm.update.attrs.as_path = bgp::AsPath::Sequence({65009, 3356, 15169});
  rm.update.attrs.next_hop = IpAddress::V4(10, 0, 0, 9);
  rm.update.attrs.communities = {bgp::Community(3356, 100)};
  rm.update.announced = {P("198.18.0.0/15")};
  BmpMessage msg;
  msg.body = std::move(rm);
  return msg;
}

TEST(Bmp, RouteMonitoringRoundTrip) {
  BmpMessage msg = MakeRouteMonitoring();
  Bytes wire = Encode(msg);
  BufReader r(wire);
  auto decoded = Decode(r);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_TRUE(decoded->is_route_monitoring());
  const auto& rm = std::get<RouteMonitoring>(decoded->body);
  EXPECT_EQ(rm.peer.peer_asn, 65009u);
  EXPECT_EQ(rm.peer.peer_address.ToString(), "10.0.0.9");
  EXPECT_EQ(rm.peer.timestamp, 1466000000);
  EXPECT_EQ(rm.peer.microseconds, 123456u);
  EXPECT_EQ(rm.update, std::get<RouteMonitoring>(msg.body).update);
  EXPECT_TRUE(r.empty());
}

TEST(Bmp, V6PeerRoundTrip) {
  RouteMonitoring rm;
  rm.peer = MakePeer();
  rm.peer.peer_address = *IpAddress::Parse("2001:db8::9");
  rm.update.attrs.as_path = bgp::AsPath::Sequence({65009});
  bgp::MpReach mp;
  mp.next_hop = *IpAddress::Parse("2001:db8::9");
  mp.nlri = {P("2001:db8:5::/48")};
  rm.update.attrs.mp_reach = mp;
  BmpMessage msg;
  msg.body = rm;
  Bytes wire = Encode(msg);
  BufReader r(wire);
  auto decoded = Decode(r);
  ASSERT_TRUE(decoded.ok());
  const auto& d = std::get<RouteMonitoring>(decoded->body);
  EXPECT_EQ(d.peer.peer_address.ToString(), "2001:db8::9");
  ASSERT_TRUE(d.update.attrs.mp_reach.has_value());
}

TEST(Bmp, PeerUpDownRoundTrip) {
  PeerUp pu;
  pu.peer = MakePeer();
  pu.local_address = IpAddress::V4(192, 0, 2, 1);
  pu.local_asn = 64512;
  pu.local_port = 41000;
  BmpMessage up;
  up.body = pu;
  Bytes wire = Encode(up);
  BufReader r(wire);
  auto decoded = Decode(r);
  ASSERT_TRUE(decoded.ok());
  ASSERT_TRUE(decoded->is_peer_up());
  const auto& d = std::get<PeerUp>(decoded->body);
  EXPECT_EQ(d.local_asn, 64512u);
  EXPECT_EQ(d.local_port, 41000);
  EXPECT_EQ(d.local_address.ToString(), "192.0.2.1");

  PeerDown pd;
  pd.peer = MakePeer();
  pd.reason = PeerDownReason::LocalNoNotification;
  BmpMessage down;
  down.body = pd;
  wire = Encode(down);
  BufReader r2(wire);
  decoded = Decode(r2);
  ASSERT_TRUE(decoded.ok());
  ASSERT_TRUE(decoded->is_peer_down());
  EXPECT_EQ(std::get<PeerDown>(decoded->body).reason,
            PeerDownReason::LocalNoNotification);
}

TEST(Bmp, InitiationTlvsRoundTrip) {
  InfoTlvs info;
  info.type = MessageType::Initiation;
  info.sys_name = "edge-router-1";
  info.sys_descr = "test descr";
  BmpMessage msg;
  msg.body = info;
  Bytes wire = Encode(msg);
  BufReader r(wire);
  auto decoded = Decode(r);
  ASSERT_TRUE(decoded.ok());
  ASSERT_TRUE(decoded->is_info());
  const auto& d = std::get<InfoTlvs>(decoded->body);
  EXPECT_EQ(d.sys_name, "edge-router-1");
  EXPECT_EQ(d.sys_descr, "test descr");
}

TEST(Bmp, DecodeErrors) {
  Bytes wire = Encode(MakeRouteMonitoring());
  // Bad version.
  Bytes bad = wire;
  bad[0] = 2;
  BufReader r1(bad);
  EXPECT_EQ(Decode(r1).status().code(), StatusCode::Corrupt);
  // Truncated body.
  bad = wire;
  bad.resize(bad.size() - 4);
  BufReader r2(bad);
  EXPECT_FALSE(Decode(r2).ok());
  // Clean end.
  BufReader r3(Bytes{});
  EXPECT_EQ(Decode(r3).status().code(), StatusCode::EndOfStream);
}

TEST(Bmp, StreamOfMessages) {
  BufWriter w;
  InfoTlvs init;
  init.sys_name = "r1";
  BmpMessage im;
  im.body = init;
  w.bytes(Encode(im));
  PeerUp pu;
  pu.peer = MakePeer();
  pu.local_address = IpAddress::V4(192, 0, 2, 1);
  pu.local_asn = 64512;
  BmpMessage um;
  um.body = pu;
  w.bytes(Encode(um));
  w.bytes(Encode(MakeRouteMonitoring()));
  Bytes blob = w.take();
  BufReader r(blob);
  int count = 0;
  while (true) {
    auto msg = Decode(r);
    if (!msg.ok()) break;
    ++count;
  }
  EXPECT_EQ(count, 3);
}

TEST(Bmp, ToMrtMapping) {
  auto rm_mrt = ToMrt(MakeRouteMonitoring(), 64512);
  ASSERT_TRUE(rm_mrt.has_value());
  ASSERT_TRUE(rm_mrt->is_message());
  const auto& m = std::get<mrt::Bgp4mpMessage>(rm_mrt->body);
  EXPECT_EQ(m.peer_asn, 65009u);
  EXPECT_EQ(m.local_asn, 64512u);
  EXPECT_EQ(rm_mrt->timestamp, 1466000000);

  PeerDown pd;
  pd.peer = MakePeer();
  BmpMessage down;
  down.body = pd;
  auto down_mrt = ToMrt(down, 64512);
  ASSERT_TRUE(down_mrt.has_value());
  ASSERT_TRUE(down_mrt->is_state_change());
  EXPECT_EQ(std::get<mrt::Bgp4mpStateChange>(down_mrt->body).new_state,
            bgp::FsmState::Idle);

  InfoTlvs info;
  BmpMessage im;
  im.body = info;
  EXPECT_FALSE(ToMrt(im).has_value());
}

TEST(Bmp, TranscodeStreamToMrt) {
  namespace fs = std::filesystem;
  fs::path bmp_path = fs::temp_directory_path() /
                      ("bmp_" + std::to_string(::getpid()) + ".bin");
  fs::path mrt_path = fs::temp_directory_path() /
                      ("bmp_" + std::to_string(::getpid()) + ".mrt");
  {
    std::ofstream out(bmp_path, std::ios::binary);
    auto write = [&](const BmpMessage& m) {
      Bytes b = Encode(m);
      out.write(reinterpret_cast<const char*>(b.data()),
                std::streamsize(b.size()));
    };
    InfoTlvs init;
    init.sys_name = "r1";
    BmpMessage im;
    im.body = init;
    write(im);  // skipped (no MRT equivalent)
    PeerUp pu;
    pu.peer = MakePeer();
    pu.local_address = IpAddress::V4(192, 0, 2, 1);
    pu.local_asn = 64512;
    BmpMessage um;
    um.body = pu;
    write(um);  // -> STATE_CHANGE Established
    write(MakeRouteMonitoring());  // -> BGP4MP update
    PeerDown pd;
    pd.peer = MakePeer();
    BmpMessage dm;
    dm.body = pd;
    write(dm);  // -> STATE_CHANGE Idle
  }

  auto stats = TranscodeBmpToMrt(bmp_path.string(), mrt_path.string());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->converted, 3u);
  EXPECT_EQ(stats->skipped, 1u);

  auto scan = mrt::ScanFile(mrt_path.string());
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->messages.size(), 3u);
  EXPECT_TRUE(scan->messages[0].is_state_change());
  EXPECT_TRUE(scan->messages[1].is_message());
  // The transcoder learned the local ASN from the Peer Up OPEN.
  EXPECT_EQ(std::get<mrt::Bgp4mpMessage>(scan->messages[1].body).local_asn,
            64512u);
  EXPECT_TRUE(scan->messages[2].is_state_change());
  fs::remove(bmp_path);
  fs::remove(mrt_path);
}

}  // namespace
}  // namespace bgps::bmp
