#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "broker/broker.hpp"
#include "tests/sim_fixture.hpp"

namespace bgps::broker {
namespace {

namespace fs = std::filesystem;

TEST(ArchiveNaming, RoundTrip) {
  std::string name = ArchiveFileName(1456790400, 900, 120);
  EXPECT_EQ(name, "1456790400.900.120.mrt");
  Timestamp start = 0, duration = 0, delay = 0;
  ASSERT_TRUE(ParseArchiveFileName(name, &start, &duration, &delay));
  EXPECT_EQ(start, 1456790400);
  EXPECT_EQ(duration, 900);
  EXPECT_EQ(delay, 120);
}

TEST(ArchiveNaming, RejectsForeignFiles) {
  Timestamp a, b, c;
  EXPECT_FALSE(ParseArchiveFileName("README.md", &a, &b, &c));
  EXPECT_FALSE(ParseArchiveFileName("x.y.z.mrt", &a, &b, &c));
  EXPECT_FALSE(ParseArchiveFileName("100.200.mrt", &a, &b, &c));
}

TEST(ArchiveRelPath, Layout) {
  EXPECT_EQ(ArchiveRelPath("ris", "rrc00", DumpType::Updates, 100, 300, 0),
            "ris/rrc00/updates/100.300.0.mrt");
  EXPECT_EQ(ArchiveRelPath("routeviews", "route-views2", DumpType::Rib, 0,
                           7200, 60),
            "routeviews/route-views2/ribs/0.7200.60.mrt");
}

class ArchiveIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto& a = testutil::GetSmallArchive();
    root_ = a.root;
    start_ = a.start;
    end_ = a.end;
  }
  std::string root_;
  Timestamp start_ = 0, end_ = 0;
};

TEST_F(ArchiveIndexTest, ScanFindsBothProjects) {
  ArchiveIndex index(root_);
  ASSERT_TRUE(index.Rescan().ok());
  EXPECT_FALSE(index.files().empty());
  auto projects = index.projects();
  ASSERT_EQ(projects.size(), 2u);
  EXPECT_EQ(projects[0], "ris");
  EXPECT_EQ(projects[1], "routeviews");
  EXPECT_EQ(index.collectors("ris"), std::vector<std::string>{"rrc00"});
}

TEST_F(ArchiveIndexTest, FilesSortedAndWellFormed) {
  ArchiveIndex index(root_);
  ASSERT_TRUE(index.Rescan().ok());
  Timestamp prev = 0;
  size_t ribs = 0, updates = 0;
  for (const auto& f : index.files()) {
    EXPECT_GE(f.start, prev);
    prev = f.start;
    EXPECT_GT(f.duration, 0);
    (f.type == DumpType::Rib ? ribs : updates) += 1;
    EXPECT_TRUE(fs::exists(f.path)) << f.path;
  }
  // 1 hour: RIS writes 12 updates dumps + 1 RIB; RV writes 4 + 1.
  EXPECT_EQ(ribs, 2u);
  EXPECT_EQ(updates, 16u);
}

TEST_F(ArchiveIndexTest, MissingRootIsError) {
  ArchiveIndex index("/nonexistent/archive");
  EXPECT_EQ(index.Rescan().code(), StatusCode::NotFound);
}

TEST_F(ArchiveIndexTest, BrokerHistoricalQueryWindowing) {
  Broker::Options opt;
  opt.window = 1800;  // 30-min windows
  opt.clock = [] { return Timestamp(4102444800); };  // far future: all published
  Broker broker(root_, opt);

  BrokerQuery q;
  q.interval = {start_, end_};
  auto r1 = broker.Query(q, start_);
  EXPECT_FALSE(r1.files.empty());
  EXPECT_FALSE(r1.exhausted);
  EXPECT_EQ(r1.next_cursor, start_ + 1800);
  for (const auto& f : r1.files) EXPECT_LT(f.start, start_ + 1800);

  auto r2 = broker.Query(q, r1.next_cursor);
  EXPECT_FALSE(r2.files.empty());
  for (const auto& f : r2.files) EXPECT_GE(f.start, start_ + 1800);

  // Eventually exhausts.
  auto r3 = broker.Query(q, r2.next_cursor);
  int guard = 0;
  while (!r3.exhausted && guard++ < 10) r3 = broker.Query(q, r3.next_cursor);
  EXPECT_TRUE(r3.exhausted);
}

TEST_F(ArchiveIndexTest, BrokerFiltersByProjectCollectorType) {
  Broker::Options opt;
  opt.clock = [] { return Timestamp(4102444800); };
  Broker broker(root_, opt);

  BrokerQuery q;
  q.projects = {"ris"};
  q.types = {DumpType::Rib};
  q.interval = {start_, end_};
  auto r = broker.Query(q, start_);
  ASSERT_EQ(r.files.size(), 1u);
  EXPECT_EQ(r.files[0].project, "ris");
  EXPECT_EQ(r.files[0].type, DumpType::Rib);

  q.projects = {"nonexistent"};
  r = broker.Query(q, start_);
  EXPECT_TRUE(r.files.empty());
}

TEST_F(ArchiveIndexTest, BrokerLiveModeHidesUnpublishedFiles) {
  // Virtual clock at start+10min: only dumps whose publish time has
  // passed are visible; querying beyond says retry_later.
  Timestamp now = start_ + 600;
  Broker::Options opt;
  opt.clock = [&now] { return now; };
  opt.window = 600;
  Broker broker(root_, opt);

  BrokerQuery q;
  q.projects = {"ris"};
  q.types = {DumpType::Updates};
  q.interval = {start_, kLiveEnd};

  auto r1 = broker.Query(q, start_);
  // First 5-min dump published at start+300 (delay 0), second at +600.
  ASSERT_FALSE(r1.files.empty());
  for (const auto& f : r1.files) EXPECT_LE(f.publish_time, now);

  // Ask for a window in the future of the virtual clock.
  auto r2 = broker.Query(q, start_ + 1200);
  EXPECT_TRUE(r2.files.empty());
  EXPECT_TRUE(r2.retry_later);
  EXPECT_FALSE(r2.exhausted);

  // Time advances; data appears.
  now = start_ + 2400;
  auto r3 = broker.Query(q, start_ + 1200);
  EXPECT_FALSE(r3.files.empty());
}

TEST_F(ArchiveIndexTest, BrokerMirrorRewriting) {
  Broker::Options opt;
  opt.clock = [] { return Timestamp(4102444800); };
  opt.mirrors = {"/mirror-a", "/mirror-b"};
  Broker broker(root_, opt);
  BrokerQuery q;
  q.interval = {start_, end_};
  auto r = broker.Query(q, start_);
  ASSERT_GE(r.files.size(), 2u);
  bool saw_a = false, saw_b = false;
  for (const auto& f : r.files) {
    saw_a |= f.path.rfind("/mirror-a", 0) == 0;
    saw_b |= f.path.rfind("/mirror-b", 0) == 0;
  }
  EXPECT_TRUE(saw_a);
  EXPECT_TRUE(saw_b);
}

TEST_F(ArchiveIndexTest, LivePublicationFrontierPerTrack) {
  // A RIB dump that publishes hours after its interval start must not
  // block the 5-minute updates dumps of the same or other collectors.
  // The small archive writes RIBs with duration 8h (RIS), published at
  // interval end: at now = start+30min, updates are published but the
  // RIBs are not.
  Timestamp now = start_ + 1800;
  Broker::Options opt;
  opt.clock = [&now] { return now; };
  Broker broker(root_, opt);

  BrokerQuery q;
  q.interval = {start_, kLiveEnd};
  auto r = broker.Query(q, start_);
  ASSERT_FALSE(r.files.empty());
  bool saw_updates = false;
  for (const auto& f : r.files) {
    EXPECT_LE(f.publish_time, now);
    if (f.type == DumpType::Updates) saw_updates = true;
    // The unpublished RIBs must not be served.
    if (f.type == DumpType::Rib) {
      EXPECT_LE(f.publish_time, now);
    }
  }
  EXPECT_TRUE(saw_updates);

  // Once the RIB publishes, a revisit from the (earlier) frontier serves
  // it; a client deduplicates re-offered updates dumps.
  now = start_ + 9 * 3600;
  auto r2 = broker.Query(q, r.next_cursor);
  bool saw_rib = false;
  for (const auto& f : r2.files) saw_rib |= f.type == DumpType::Rib;
  EXPECT_TRUE(saw_rib);
}

TEST_F(ArchiveIndexTest, FirstResponseIncludesCoveringRib) {
  // Query starting mid-RIB-interval must still return the covering RIB
  // dump so streams can bootstrap.
  Broker::Options opt;
  opt.clock = [] { return Timestamp(4102444800); };
  Broker broker(root_, opt);
  BrokerQuery q;
  q.types = {DumpType::Rib};
  q.interval = {start_ + 1800, end_};
  auto r = broker.Query(q, 0);
  bool found_rib_before_start = false;
  for (const auto& f : r.files) {
    if (f.start < start_ + 1800) found_rib_before_start = true;
  }
  EXPECT_TRUE(found_rib_before_start);
}

}  // namespace
}  // namespace bgps::broker
