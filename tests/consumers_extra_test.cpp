// Extra consumer/sync coverage: timeout-based sync feeding the consumer,
// snapshot-based late join, and full-feed quorum edge cases.
#include <gtest/gtest.h>

#include "mq/consumers.hpp"

namespace bgps::mq {
namespace {

Prefix P(const std::string& s) { return *Prefix::Parse(s); }

corsaro::DiffCell Cell(const std::string& collector, bgp::Asn peer,
                       const std::string& prefix, bool announced,
                       const std::string& path = "1 15169") {
  corsaro::DiffCell d;
  d.vp = {collector, peer};
  d.prefix = P(prefix);
  d.cell.announced = announced;
  d.cell.as_path = *bgp::AsPath::Parse(path);
  d.cell.last_modified = 1;
  return d;
}

void PublishDiffs(Cluster& cluster, const std::string& collector,
                  Timestamp bin, std::vector<corsaro::DiffCell> diffs) {
  RtDiffMessage msg{collector, bin, std::move(diffs)};
  Message m;
  m.timestamp = bin;
  m.value = EncodeDiffMessage(msg);
  cluster.Publish(RtTopic(collector), 0, std::move(m));
  Message meta;
  meta.timestamp = bin;
  meta.value = EncodeMetaMessage(RtMetaMessage{collector, bin, msg.diffs.size()});
  cluster.Publish(kRtMetaTopic, 0, std::move(meta));
}

TEST(TimeoutSyncConsumer, ProcessesBinsWithoutLaggard) {
  Cluster cluster;
  TimeoutSyncServer sync(&cluster, "ready", 600);
  GlobalViewConsumer consumer(&cluster, {"fast", "slow"}, "ready",
                              [](bgp::Asn) { return "XX"; });
  // Only "fast" ever reports; bins release via timeout.
  PublishDiffs(cluster, "fast", 0,
               {Cell("fast", 1, "10.0.0.0/8", true)});
  PublishDiffs(cluster, "fast", 300, {});
  PublishDiffs(cluster, "fast", 900, {});
  sync.Poll();
  size_t processed = consumer.Poll();
  // Bins 0 and 300 timed out (900 >= bin + 600); 900 still pending.
  EXPECT_EQ(processed, 2u);
  ASSERT_FALSE(consumer.country_rows().empty());
  EXPECT_EQ(consumer.country_rows().front().key, "XX");
  EXPECT_EQ(consumer.country_rows().front().visible_prefixes, 1u);
}

TEST(Consumer, SnapshotBootstrapsLateJoiner) {
  Cluster cluster;
  CompletenessSyncServer sync(&cluster, "ready", {"c1"});

  // A snapshot followed by a diff; the consumer joins after both exist.
  RtSnapshotMessage snap;
  snap.collector = "c1";
  snap.bin_start = 0;
  snap.vp = {"c1", 7};
  snap.table[P("10.0.0.0/8")] = Cell("c1", 7, "10.0.0.0/8", true).cell;
  snap.table[P("20.0.0.0/8")] = Cell("c1", 7, "20.0.0.0/8", true).cell;
  Message m;
  m.timestamp = 0;
  m.value = EncodeSnapshotMessage(snap);
  cluster.Publish(RtTopic("c1"), 0, std::move(m));
  PublishDiffs(cluster, "c1", 0, {Cell("c1", 7, "20.0.0.0/8", false)});

  GlobalViewConsumer consumer(&cluster, {"c1"}, "ready",
                              [](bgp::Asn) { return "XX"; });
  sync.Poll();
  EXPECT_EQ(consumer.Poll(), 1u);
  const auto* table = consumer.vp_table({"c1", 7});
  ASSERT_NE(table, nullptr);
  // Snapshot applied, then the withdrawal diff on top.
  EXPECT_EQ(table->size(), 1u);
  EXPECT_TRUE(table->count(P("10.0.0.0/8")));
}

TEST(Consumer, QuorumExcludesMinorityView) {
  Cluster cluster;
  CompletenessSyncServer sync(&cluster, "ready", {"c1"});
  GlobalViewConsumer::Options opt;
  opt.visibility_quorum = 0.75;  // needs 3 of 4 full-feed VPs
  GlobalViewConsumer consumer(&cluster, {"c1"}, "ready",
                              [](bgp::Asn) { return "XX"; }, opt);
  // Four VPs each see four common prefixes; one VP additionally claims a
  // fifth nobody else sees (below the 3-of-4 quorum -> not visible, but
  // its table is still within 20pp of the max so it stays full-feed).
  std::vector<corsaro::DiffCell> diffs;
  for (bgp::Asn vp = 1; vp <= 4; ++vp) {
    for (int i = 0; i < 4; ++i) {
      diffs.push_back(
          Cell("c1", vp, std::to_string(10 + i) + ".0.0.0/8", true));
    }
  }
  diffs.push_back(Cell("c1", 1, "99.0.0.0/8", true));
  PublishDiffs(cluster, "c1", 0, diffs);
  sync.Poll();
  consumer.Poll();
  ASSERT_EQ(consumer.country_rows().size(), 1u);
  EXPECT_EQ(consumer.country_rows()[0].visible_prefixes, 4u);
}

TEST(Consumer, FullFeedInferenceExcludesTinyTables) {
  Cluster cluster;
  CompletenessSyncServer sync(&cluster, "ready", {"c1"});
  GlobalViewConsumer consumer(&cluster, {"c1"}, "ready",
                              [](bgp::Asn) { return "XX"; });
  // VP 1 sees 10 prefixes; VP 2 (partial feed) sees only 1 of them. The
  // quorum must be computed over full-feed VPs only, so all 10 prefixes
  // stay visible.
  std::vector<corsaro::DiffCell> diffs;
  for (int i = 0; i < 10; ++i) {
    diffs.push_back(
        Cell("c1", 1, std::to_string(10 + i) + ".0.0.0/8", true));
  }
  diffs.push_back(Cell("c1", 2, "10.0.0.0/8", true));
  PublishDiffs(cluster, "c1", 0, diffs);
  sync.Poll();
  consumer.Poll();
  ASSERT_EQ(consumer.country_rows().size(), 1u);
  EXPECT_EQ(consumer.country_rows()[0].visible_prefixes, 10u);
}

}  // namespace
}  // namespace bgps::mq
