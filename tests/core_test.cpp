#include <gtest/gtest.h>

#include "core/elem.hpp"
#include "core/filter.hpp"
#include "core/merge.hpp"

namespace bgps::core {
namespace {

Prefix P(const std::string& s) { return *Prefix::Parse(s); }

Record MakeUpdateRecord() {
  mrt::Bgp4mpMessage msg;
  msg.peer_asn = 65001;
  msg.peer_address = IpAddress::V4(10, 0, 0, 1);
  msg.local_asn = 64512;
  msg.local_address = IpAddress::V4(192, 0, 2, 1);
  msg.update.withdrawn = {P("10.9.0.0/16")};
  msg.update.announced = {P("172.16.0.0/12"), P("172.32.0.0/16")};
  msg.update.attrs.as_path = bgp::AsPath::Sequence({65001, 3356, 15169});
  msg.update.attrs.next_hop = IpAddress::V4(10, 0, 0, 1);
  msg.update.attrs.communities = {bgp::Community(3356, 666)};
  bgp::MpReach mp;
  mp.next_hop = *IpAddress::Parse("2001:db8::1");
  mp.nlri = {P("2001:db8:7::/48")};
  msg.update.attrs.mp_reach = mp;
  bgp::MpUnreach mpu;
  mpu.withdrawn = {P("2001:db8:9::/48")};
  msg.update.attrs.mp_unreach = mpu;

  Record rec;
  rec.project = "ris";
  rec.collector = "rrc00";
  rec.dump_type = DumpType::Updates;
  rec.timestamp = 1000;
  rec.msg.timestamp = 1000;
  rec.msg.body = std::move(msg);
  return rec;
}

TEST(Elem, UpdateDecomposition) {
  Record rec = MakeUpdateRecord();
  auto elems = ExtractElems(rec);
  // 1 v4 withdrawal + 1 v6 withdrawal + 2 v4 announcements + 1 v6.
  ASSERT_EQ(elems.size(), 5u);
  size_t withdrawals = 0, announcements = 0;
  for (const auto& e : elems) {
    EXPECT_EQ(e.peer_asn, 65001u);
    EXPECT_EQ(e.time, 1000);
    if (e.type == ElemType::Withdrawal) ++withdrawals;
    if (e.type == ElemType::Announcement) {
      ++announcements;
      EXPECT_EQ(e.as_path.ToString(), "65001 3356 15169");
    }
  }
  EXPECT_EQ(withdrawals, 2u);
  EXPECT_EQ(announcements, 3u);
}

TEST(Elem, V6AnnouncementUsesMpNextHop) {
  Record rec = MakeUpdateRecord();
  auto elems = ExtractElems(rec);
  bool found = false;
  for (const auto& e : elems) {
    if (e.type == ElemType::Announcement && e.prefix.family() == IpFamily::V6) {
      EXPECT_EQ(e.next_hop.ToString(), "2001:db8::1");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Elem, StateChangeDecomposition) {
  mrt::Bgp4mpStateChange sc;
  sc.peer_asn = 65001;
  sc.peer_address = IpAddress::V4(10, 0, 0, 1);
  sc.old_state = bgp::FsmState::Established;
  sc.new_state = bgp::FsmState::Idle;
  Record rec;
  rec.timestamp = 5;
  rec.msg.timestamp = 5;
  rec.msg.body = sc;
  auto elems = ExtractElems(rec);
  ASSERT_EQ(elems.size(), 1u);
  EXPECT_EQ(elems[0].type, ElemType::PeerState);
  EXPECT_EQ(elems[0].old_state, bgp::FsmState::Established);
  EXPECT_EQ(elems[0].new_state, bgp::FsmState::Idle);
  EXPECT_FALSE(elems[0].has_prefix());
}

TEST(Elem, RibDecompositionUsesPeerIndex) {
  auto pit = std::make_shared<mrt::PeerIndexTable>();
  pit->peers.push_back({1, IpAddress::V4(10, 0, 0, 1), 65001});
  pit->peers.push_back({2, IpAddress::V4(10, 0, 0, 2), 65002});

  mrt::RibPrefix rib;
  rib.prefix = P("192.168.0.0/16");
  mrt::RibEntry e1;
  e1.peer_index = 0;
  e1.attrs.as_path = bgp::AsPath::Sequence({65001, 15169});
  mrt::RibEntry e2;
  e2.peer_index = 1;
  e2.attrs.as_path = bgp::AsPath::Sequence({65002, 3356, 15169});
  mrt::RibEntry e3;
  e3.peer_index = 99;  // dangling reference: skipped
  rib.entries = {e1, e2, e3};

  Record rec;
  rec.dump_type = DumpType::Rib;
  rec.msg.timestamp = 42;
  rec.msg.body = rib;
  rec.peer_index = pit;
  auto elems = ExtractElems(rec);
  ASSERT_EQ(elems.size(), 2u);
  EXPECT_EQ(elems[0].type, ElemType::RibEntry);
  EXPECT_EQ(elems[0].peer_asn, 65001u);
  EXPECT_EQ(elems[1].peer_asn, 65002u);
  EXPECT_EQ(elems[0].prefix, P("192.168.0.0/16"));
}

TEST(Elem, RibWithoutPeerIndexYieldsNothing) {
  mrt::RibPrefix rib;
  rib.prefix = P("192.168.0.0/16");
  rib.entries.push_back({});
  Record rec;
  rec.dump_type = DumpType::Rib;
  rec.msg.body = rib;
  EXPECT_TRUE(ExtractElems(rec).empty());
}

TEST(Elem, InvalidRecordYieldsNothing) {
  Record rec = MakeUpdateRecord();
  rec.status = RecordStatus::CorruptedRecord;
  EXPECT_TRUE(ExtractElems(rec).empty());
}

TEST(Filter, PrefixModes) {
  PrefixFilter exact{P("10.0.0.0/8"), PrefixMatchMode::Exact};
  PrefixFilter more{P("10.0.0.0/8"), PrefixMatchMode::MoreSpecific};
  PrefixFilter less{P("10.0.0.0/8"), PrefixMatchMode::LessSpecific};
  PrefixFilter any{P("10.0.0.0/8"), PrefixMatchMode::Any};

  EXPECT_TRUE(exact.matches(P("10.0.0.0/8")));
  EXPECT_FALSE(exact.matches(P("10.1.0.0/16")));

  EXPECT_TRUE(more.matches(P("10.1.0.0/16")));
  EXPECT_FALSE(more.matches(P("0.0.0.0/0")));

  EXPECT_TRUE(less.matches(P("0.0.0.0/0")));
  EXPECT_FALSE(less.matches(P("10.1.0.0/16")));

  EXPECT_TRUE(any.matches(P("10.1.0.0/16")));
  EXPECT_TRUE(any.matches(P("0.0.0.0/0")));
  EXPECT_FALSE(any.matches(P("11.0.0.0/8")));
}

TEST(Filter, AddOptionParsing) {
  FilterSet f;
  EXPECT_TRUE(f.AddOption("project", "ris").ok());
  EXPECT_TRUE(f.AddOption("collector", "rrc00").ok());
  EXPECT_TRUE(f.AddOption("type", "updates").ok());
  EXPECT_TRUE(f.AddOption("prefix", "more 10.0.0.0/8").ok());
  EXPECT_TRUE(f.AddOption("prefix", "192.0.0.0/8").ok());
  EXPECT_TRUE(f.AddOption("community", "65535:666").ok());
  EXPECT_TRUE(f.AddOption("community", "*:666").ok());
  EXPECT_TRUE(f.AddOption("peer", "65001").ok());
  EXPECT_TRUE(f.AddOption("elemtype", "announcements").ok());
  EXPECT_TRUE(f.AddOption("path", "3356").ok());
  EXPECT_TRUE(f.AddOption("ipversion", "4").ok());

  EXPECT_FALSE(f.AddOption("type", "bogus").ok());
  EXPECT_FALSE(f.AddOption("prefix", "nonsense").ok());
  EXPECT_FALSE(f.AddOption("unknown-key", "x").ok());
  EXPECT_FALSE(f.AddOption("elemtype", "bogus").ok());
  EXPECT_FALSE(f.AddOption("ipversion", "5").ok());
}

TEST(Filter, MetaMatching) {
  FilterSet f;
  ASSERT_TRUE(f.AddOption("project", "ris").ok());
  ASSERT_TRUE(f.AddOption("collector", "rrc00").ok());
  EXPECT_TRUE(f.MatchesMeta("ris", "rrc00", DumpType::Updates));
  EXPECT_FALSE(f.MatchesMeta("routeviews", "rrc00", DumpType::Updates));
  EXPECT_FALSE(f.MatchesMeta("ris", "rrc01", DumpType::Updates));

  FilterSet open;
  EXPECT_TRUE(open.MatchesMeta("anything", "goes", DumpType::Rib));
}

TEST(Filter, ElemMatching) {
  FilterSet f;
  ASSERT_TRUE(f.AddOption("prefix", "more 172.16.0.0/12").ok());
  ASSERT_TRUE(f.AddOption("community", "3356:666").ok());
  Record rec = MakeUpdateRecord();
  auto elems = ExtractElems(rec);
  size_t matched = 0;
  for (const auto& e : elems) {
    if (f.MatchesElem(e)) ++matched;
  }
  // Only v4 announcements within 172.16/12 carrying the community:
  // 172.16.0.0/12 itself qualifies, 172.32.0.0/16 is outside /12.
  EXPECT_EQ(matched, 1u);
}

TEST(Filter, PeerAndPathFilters) {
  FilterSet peer_f;
  ASSERT_TRUE(peer_f.AddOption("peer", "65002").ok());
  FilterSet path_f;
  ASSERT_TRUE(path_f.AddOption("path", "3356").ok());
  Record rec = MakeUpdateRecord();
  auto elems = ExtractElems(rec);
  for (const auto& e : elems) {
    EXPECT_FALSE(peer_f.MatchesElem(e));  // peer is 65001
    if (e.type == ElemType::Announcement) {
      EXPECT_TRUE(path_f.MatchesElem(e));
    } else {
      EXPECT_FALSE(path_f.MatchesElem(e));  // withdrawals have no path
    }
  }
}

TEST(Filter, ElemTypeFilter) {
  FilterSet f;
  ASSERT_TRUE(f.AddOption("elemtype", "withdrawals").ok());
  Record rec = MakeUpdateRecord();
  size_t matched = 0;
  for (const auto& e : ExtractElems(rec)) {
    if (f.MatchesElem(e)) {
      EXPECT_EQ(e.type, ElemType::Withdrawal);
      ++matched;
    }
  }
  EXPECT_EQ(matched, 2u);
}

TEST(Filter, IpVersionFilter) {
  FilterSet f;
  ASSERT_TRUE(f.AddOption("ipversion", "6").ok());
  Record rec = MakeUpdateRecord();
  for (const auto& e : ExtractElems(rec)) {
    if (f.MatchesElem(e) && e.has_prefix()) {
      EXPECT_EQ(e.prefix.family(), IpFamily::V6);
    }
  }
}

broker::DumpFileMeta Meta(Timestamp start, Timestamp duration,
                          const std::string& collector = "c") {
  broker::DumpFileMeta m;
  m.project = "p";
  m.collector = collector;
  m.start = start;
  m.duration = duration;
  m.path = "/dev/null/" + collector + std::to_string(start);
  return m;
}

TEST(GroupOverlapping, DisjointFilesSeparateSubsets) {
  auto subsets = GroupOverlapping({Meta(0, 100), Meta(100, 100), Meta(250, 50)});
  ASSERT_EQ(subsets.size(), 3u);  // [0,100) and [100,200) touch but no overlap
}

TEST(GroupOverlapping, OverlapMergesTransitively) {
  // A RIB spanning [0, 480) chains everything under it together.
  auto subsets = GroupOverlapping(
      {Meta(0, 480), Meta(0, 120), Meta(120, 120), Meta(240, 120),
       Meta(600, 120)});
  ASSERT_EQ(subsets.size(), 2u);
  EXPECT_EQ(subsets[0].size(), 4u);
  EXPECT_EQ(subsets[1].size(), 1u);
}

TEST(GroupOverlapping, PaperFigure3Shape) {
  // Fig. 3: RRC01 (5-min updates + one RIB) and RV2 (15-min updates)
  // split into two disjoint sets based on overlapping intervals.
  std::vector<broker::DumpFileMeta> files;
  // RRC01 updates 00:00-00:30 in 5-min dumps.
  for (int i = 0; i < 6; ++i) files.push_back(Meta(i * 300, 300, "rrc01"));
  // RV2 updates 00:00-00:30 in 15-min dumps.
  for (int i = 0; i < 2; ++i) files.push_back(Meta(i * 900, 900, "rv2"));
  auto subsets = GroupOverlapping(files);
  // Every file overlaps some other through the 15-min dumps: 2 subsets
  // (00:00-00:15 covers 3+1 files, 00:15-00:30 covers 3+1).
  ASSERT_EQ(subsets.size(), 2u);
  EXPECT_EQ(subsets[0].size(), 4u);
  EXPECT_EQ(subsets[1].size(), 4u);
}

TEST(GroupOverlapping, EmptyInput) {
  EXPECT_TRUE(GroupOverlapping({}).empty());
}

TEST(GroupOverlapping, SubsetsOrderedByStart) {
  auto subsets = GroupOverlapping({Meta(500, 10), Meta(0, 10), Meta(200, 10)});
  ASSERT_EQ(subsets.size(), 3u);
  EXPECT_EQ(subsets[0][0].start, 0);
  EXPECT_EQ(subsets[1][0].start, 200);
  EXPECT_EQ(subsets[2][0].start, 500);
}

TEST(RecordStatusNames, Stable) {
  EXPECT_STREQ(RecordStatusName(RecordStatus::Valid), "valid");
  EXPECT_STREQ(RecordStatusName(RecordStatus::CorruptedDump),
               "corrupted-dump");
  EXPECT_STREQ(DumpPositionName(DumpPosition::Start), "start");
}

}  // namespace
}  // namespace bgps::core
