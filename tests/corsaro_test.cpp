#include <gtest/gtest.h>

#include "corsaro/corsaro.hpp"
#include "corsaro/pfxmonitor.hpp"
#include "corsaro/rt.hpp"
#include "tests/sim_fixture.hpp"

namespace bgps::corsaro {
namespace {

Prefix P(const std::string& s) { return *Prefix::Parse(s); }

// --- FSM transition table (Figure 8), exhaustively ---

struct FsmCase {
  VpState from;
  VpInput input;
  VpState to;
};

class RtFsm : public ::testing::TestWithParam<FsmCase> {};

TEST_P(RtFsm, Transition) {
  const auto& c = GetParam();
  EXPECT_EQ(VpNextState(c.from, c.input), c.to)
      << VpStateName(c.from) << " + input " << int(c.input);
}

INSTANTIATE_TEST_SUITE_P(
    Figure8, RtFsm,
    ::testing::Values(
        // (1) down --RIB start--> (2) down-rib-application
        FsmCase{VpState::Down, VpInput::RibStart, VpState::DownRibApplication},
        // (2) --RIB end--> (3) up
        FsmCase{VpState::DownRibApplication, VpInput::RibEnd, VpState::Up},
        // (3) --RIB start--> (4) up-rib-application
        FsmCase{VpState::Up, VpInput::RibStart, VpState::UpRibApplication},
        // (4) --RIB end--> (3)
        FsmCase{VpState::UpRibApplication, VpInput::RibEnd, VpState::Up},
        // E1: corrupted RIB dump falls back to the pre-dump macro state.
        FsmCase{VpState::DownRibApplication, VpInput::RibCorrupt,
                VpState::Down},
        FsmCase{VpState::UpRibApplication, VpInput::RibCorrupt, VpState::Up},
        // E3: corrupted updates record forces down from anywhere.
        FsmCase{VpState::Up, VpInput::UpdateCorrupt, VpState::Down},
        FsmCase{VpState::UpRibApplication, VpInput::UpdateCorrupt,
                VpState::Down},
        FsmCase{VpState::DownRibApplication, VpInput::UpdateCorrupt,
                VpState::Down},
        // E4: Established state message.
        FsmCase{VpState::Down, VpInput::StateEstablished, VpState::Up},
        FsmCase{VpState::Up, VpInput::StateEstablished, VpState::Up},
        // E4: non-Established.
        FsmCase{VpState::Up, VpInput::StateDown, VpState::Down},
        FsmCase{VpState::UpRibApplication, VpInput::StateDown, VpState::Down},
        // Ordinary updates never change state.
        FsmCase{VpState::Down, VpInput::Update, VpState::Down},
        FsmCase{VpState::Up, VpInput::Update, VpState::Up}));

TEST(RtFsmHelpers, MacroStates) {
  EXPECT_TRUE(VpTableConsistent(VpState::Up));
  EXPECT_TRUE(VpTableConsistent(VpState::UpRibApplication));
  EXPECT_FALSE(VpTableConsistent(VpState::Down));
  EXPECT_FALSE(VpTableConsistent(VpState::DownRibApplication));
}

// --- engine + plugins over the simulated archive ---

class CorsaroTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto& a = testutil::GetSmallArchive();
    root_ = a.root;
    start_ = a.start;
    end_ = a.end;
    broker::Broker::Options opt;
    opt.clock = [] { return Timestamp(4102444800); };
    broker_ = std::make_unique<broker::Broker>(root_, opt);
    di_ = std::make_unique<core::BrokerDataInterface>(broker_.get());
  }

  std::unique_ptr<core::BgpStream> MakeStream(
      const std::string& collector = "") {
    auto stream = std::make_unique<core::BgpStream>();
    if (!collector.empty()) {
      EXPECT_TRUE(stream->AddFilter("collector", collector).ok());
    }
    stream->SetInterval(start_, end_);
    stream->SetDataInterface(di_.get());
    EXPECT_TRUE(stream->Start().ok());
    return stream;
  }

  std::string root_;
  Timestamp start_ = 0, end_ = 0;
  std::unique_ptr<broker::Broker> broker_;
  std::unique_ptr<core::BrokerDataInterface> di_;
};

class CountingPlugin : public Plugin {
 public:
  std::string_view name() const override { return "counting"; }
  void OnRecord(RecordContext& ctx) override {
    ++records;
    elems += ctx.elems.size();
    if (!ctx.record.collector.empty()) ctx.tags.insert("seen");
  }
  void OnBinStart(Timestamp t) override { bin_starts.push_back(t); }
  void OnBinEnd(Timestamp t, Timestamp) override { bin_ends.push_back(t); }
  void OnFinish() override { finished = true; }

  size_t records = 0;
  size_t elems = 0;
  std::vector<Timestamp> bin_starts, bin_ends;
  bool finished = false;
};

class TagReaderPlugin : public Plugin {
 public:
  std::string_view name() const override { return "tag-reader"; }
  void OnRecord(RecordContext& ctx) override {
    if (ctx.tags.count("seen")) ++tagged;
  }
  size_t tagged = 0;
};

TEST_F(CorsaroTest, BinsAreAlignedAndContiguous) {
  auto stream = MakeStream();
  BgpCorsaro engine(stream.get(), 300);
  auto counting = std::make_unique<CountingPlugin>();
  CountingPlugin* cp = counting.get();
  engine.AddPlugin(std::move(counting));
  size_t n = engine.Run();
  EXPECT_GT(n, 0u);
  EXPECT_TRUE(cp->finished);
  ASSERT_FALSE(cp->bin_ends.empty());
  for (Timestamp t : cp->bin_ends) EXPECT_EQ(t % 300, 0);
  for (size_t i = 1; i < cp->bin_ends.size(); ++i) {
    EXPECT_EQ(cp->bin_ends[i], cp->bin_ends[i - 1] + 300);
  }
  // Final bin end fired exactly once per bin start.
  EXPECT_EQ(cp->bin_starts.size(), cp->bin_ends.size());
}

TEST_F(CorsaroTest, PipelineTagsFlowDownstream) {
  auto stream = MakeStream();
  BgpCorsaro engine(stream.get(), 300);
  auto counting = std::make_unique<CountingPlugin>();
  auto reader = std::make_unique<TagReaderPlugin>();
  CountingPlugin* cp = counting.get();
  TagReaderPlugin* tp = reader.get();
  engine.AddPlugin(std::move(counting));  // upstream tagger
  engine.AddPlugin(std::move(reader));    // downstream consumer
  engine.Run();
  EXPECT_EQ(tp->tagged, cp->records);
}

TEST_F(CorsaroTest, PfxMonitorTracksMonitoredSpace) {
  // Monitor one origin's address space end-to-end.
  const auto& topo = testutil::GetSmallArchive().driver->topology();
  bgp::Asn victim = 0;
  std::vector<Prefix> ranges;
  for (const auto& [asn, node] : topo.nodes()) {
    if (node.tier == sim::AsTier::Stub && node.prefixes.size() >= 2) {
      victim = asn;
      ranges = node.prefixes;
      break;
    }
  }
  ASSERT_NE(victim, 0u);

  auto stream = MakeStream();
  BgpCorsaro engine(stream.get(), 300);
  auto monitor = std::make_unique<PfxMonitor>(ranges);
  PfxMonitor* pm = monitor.get();
  engine.AddPlugin(std::move(monitor));
  engine.Run();

  ASSERT_FALSE(pm->rows().empty());
  // After the RIB dumps are ingested, the monitored prefixes are visible
  // with exactly one origin.
  const auto& last = pm->rows().back();
  EXPECT_GE(last.unique_prefixes, ranges.size() - 1);  // flaps may hide one
  EXPECT_EQ(last.unique_origins, 1u);
  EXPECT_EQ(pm->origins(ranges.front()), std::set<bgp::Asn>{victim});
}

TEST_F(CorsaroTest, RoutingTablesReconstructsVpTables) {
  auto stream = MakeStream("rrc00");
  BgpCorsaro engine(stream.get(), 300);
  auto rt = std::make_unique<RoutingTables>();
  RoutingTables* rtp = rt.get();
  engine.AddPlugin(std::move(rt));
  engine.Run();

  auto vps = rtp->vps();
  ASSERT_FALSE(vps.empty());
  // All VPs should have consistent tables after the RIB was applied.
  size_t consistent = 0;
  for (const auto& vp : vps) {
    if (VpTableConsistent(rtp->state(vp))) {
      ++consistent;
      EXPECT_FALSE(rtp->table(vp).empty());
    }
  }
  EXPECT_GT(consistent, 0u);

  // Ground truth: the reconstructed table of a full-feed VP matches the
  // world's exported table at simulation end.
  const auto& arch = testutil::GetSmallArchive();
  const auto& cfg = arch.driver->collectors().back().config();
  ASSERT_EQ(cfg.name, "rrc00");
  for (const auto& vp_spec : cfg.vps) {
    VpKey key{"rrc00", vp_spec.asn};
    if (!VpTableConsistent(rtp->state(key))) continue;
    auto reconstructed = rtp->table(key);
    auto truth = arch.driver->world().ExportedTable(vp_spec.asn,
                                                    vp_spec.full_feed);
    // Withdrawn-at-end prefixes may be mid-flap; allow small slack.
    EXPECT_NEAR(double(reconstructed.size()), double(truth.size()),
                double(truth.size()) * 0.02 + 2);
    // Spot-check paths on common prefixes.
    size_t checked = 0, matched = 0;
    for (const auto& [prefix, cell] : reconstructed) {
      auto it = truth.find(prefix);
      if (it == truth.end()) continue;
      ++checked;
      std::vector<bgp::Asn> expect_path{vp_spec.asn};
      expect_path.insert(expect_path.end(), it->second.path.begin(),
                         it->second.path.end());
      if (cell.as_path.hops() == expect_path) ++matched;
    }
    ASSERT_GT(checked, 0u);
    EXPECT_GE(double(matched), 0.98 * double(checked));
  }
}

TEST_F(CorsaroTest, RtDiffsAreFewerThanElems) {
  auto stream = MakeStream("rrc00");
  BgpCorsaro engine(stream.get(), 300);
  auto rt = std::make_unique<RoutingTables>();
  RoutingTables* rtp = rt.get();
  engine.AddPlugin(std::move(rt));
  engine.Run();
  // Skip the seeding bins (the first RIB dump necessarily creates one
  // diff per cell); after that, Fig. 9's observation holds per bin:
  // diff cells never exceed update elems.
  const auto& stats = rtp->bin_stats();
  ASSERT_GT(stats.size(), 3u);
  size_t total_elems = 0, total_diffs = 0;
  for (size_t i = 2; i < stats.size(); ++i) {
    total_elems += stats[i].elems;
    total_diffs += stats[i].diff_cells;
    EXPECT_LE(stats[i].diff_cells, stats[i].elems) << "bin " << i;
  }
  EXPECT_GT(total_elems, 0u);
  EXPECT_GT(total_diffs, 0u);
  EXPECT_LE(total_diffs, total_elems);
}

TEST_F(CorsaroTest, RtAccuracyAgainstRibGroundTruth) {
  // Dedicated archive with frequent RIBs so the shadow-vs-main comparison
  // of §6.2.1 runs several times within the window.
  std::string root = root_ + "_acc";
  std::filesystem::remove_all(root);
  sim::StandardSimOptions options;
  options.topo.num_tier1 = 3;
  options.topo.num_transit = 8;
  options.topo.num_stub = 20;
  options.topo.seed = 17;
  options.rv_collectors = 0;
  options.ris_collectors = 1;
  options.vps_per_collector = 4;
  options.publish_delay = 0;
  options.seed = 3;
  auto driver = sim::MakeStandardSim(options, root);
  driver->collectors().front().config();  // (RIS periods by default)
  // Shrink the RIB period by rebuilding the collector list.
  auto cfg = driver->collectors().front().config();
  driver->collectors().clear();
  cfg.rib_period = 1200;  // RIB every 20 minutes
  driver->AddCollector(cfg);
  Timestamp t0 = TimestampFromYmdHms(2016, 4, 1, 0, 0, 0);
  driver->AddFlapNoise(t0 + 30, t0 + 3570, 90.0, 60);
  ASSERT_TRUE(driver->Run(t0, t0 + 3600).ok());

  broker::Broker::Options bopt;
  bopt.clock = [] { return Timestamp(4102444800); };
  broker::Broker b(root, bopt);
  core::BrokerDataInterface di(&b);
  core::BgpStream stream;
  stream.SetInterval(t0, t0 + 3600);
  stream.SetDataInterface(&di);
  ASSERT_TRUE(stream.Start().ok());

  BgpCorsaro engine(&stream, 300);
  auto rt = std::make_unique<RoutingTables>();
  RoutingTables* rtp = rt.get();
  engine.AddPlugin(std::move(rt));
  engine.Run();
  // The collector dumps state messages and nothing is corrupted: the
  // evolved tables must match the later RIB dumps with zero mismatches.
  EXPECT_GT(rtp->rib_compared_prefixes(), 0u);
  EXPECT_EQ(rtp->rib_mismatches(), 0u);
}

TEST(RtUnit, CorruptUpdatesForceDownAndRibRecovers) {
  RoutingTables rt;
  // Feed a synthetic stream via RecordContext.
  auto feed = [&](core::Record& rec, const std::vector<core::Elem>& elems) {
    RecordContext ctx{rec, elems, {}};
    rt.OnRecord(ctx);
  };

  // 1. Announcement creates the VP implicitly.
  core::Record upd;
  upd.project = "ris";
  upd.collector = "rrc99";
  upd.dump_type = core::DumpType::Updates;
  upd.timestamp = 100;
  core::Elem ann;
  ann.type = core::ElemType::Announcement;
  ann.time = 100;
  ann.peer_asn = 65001;
  ann.prefix = P("10.0.0.0/8");
  ann.as_path = bgp::AsPath::Sequence({65001, 15169});
  feed(upd, {ann});
  VpKey vp{"rrc99", 65001};
  EXPECT_EQ(rt.table(vp).size(), 1u);
  EXPECT_EQ(rt.state(vp), VpState::Down);  // no RIB yet: not consistent

  // 2. Corrupted updates record: E3.
  core::Record bad;
  bad.collector = "rrc99";
  bad.dump_type = core::DumpType::Updates;
  bad.status = core::RecordStatus::CorruptedRecord;
  feed(bad, {});
  EXPECT_EQ(rt.state(vp), VpState::Down);

  // 3. A clean RIB dump brings the VP up.
  core::Record rib_start;
  rib_start.collector = "rrc99";
  rib_start.dump_type = core::DumpType::Rib;
  rib_start.position = core::DumpPosition::Start;
  rib_start.timestamp = 200;
  core::Elem rib_elem;
  rib_elem.type = core::ElemType::RibEntry;
  rib_elem.time = 200;
  rib_elem.peer_asn = 65001;
  rib_elem.prefix = P("10.0.0.0/8");
  rib_elem.as_path = bgp::AsPath::Sequence({65001, 15169});
  feed(rib_start, {rib_elem});
  EXPECT_EQ(rt.state(vp), VpState::DownRibApplication);

  core::Record rib_end;
  rib_end.collector = "rrc99";
  rib_end.dump_type = core::DumpType::Rib;
  rib_end.position = core::DumpPosition::End;
  rib_end.timestamp = 201;
  feed(rib_end, {});
  EXPECT_EQ(rt.state(vp), VpState::Up);
  EXPECT_EQ(rt.table(vp).size(), 1u);
}

TEST(RtUnit, CorruptRibDumpIsDiscarded) {
  RoutingTables rt;
  auto feed = [&](core::Record& rec, const std::vector<core::Elem>& elems) {
    RecordContext ctx{rec, elems, {}};
    rt.OnRecord(ctx);
  };
  VpKey vp{"c", 65001};

  core::Record rib_start;
  rib_start.collector = "c";
  rib_start.dump_type = core::DumpType::Rib;
  rib_start.position = core::DumpPosition::Start;
  core::Elem rib_elem;
  rib_elem.type = core::ElemType::RibEntry;
  rib_elem.time = 100;
  rib_elem.peer_asn = 65001;
  rib_elem.prefix = P("10.0.0.0/8");
  rib_elem.as_path = bgp::AsPath::Sequence({65001, 15169});
  feed(rib_start, {rib_elem});

  // Corrupt record mid-dump: E1 discards everything staged.
  core::Record bad;
  bad.collector = "c";
  bad.dump_type = core::DumpType::Rib;
  bad.status = core::RecordStatus::CorruptedRecord;
  feed(bad, {});
  EXPECT_EQ(rt.state(vp), VpState::Down);
  EXPECT_TRUE(rt.table(vp).empty());
}

TEST(RtUnit, E2OlderRibRecordDoesNotOverwriteNewerUpdate) {
  RoutingTables rt;
  auto feed = [&](core::Record& rec, const std::vector<core::Elem>& elems) {
    RecordContext ctx{rec, elems, {}};
    rt.OnRecord(ctx);
  };
  VpKey vp{"c", 65001};

  // RIB dump starts; stages an old route for 10/8.
  core::Record rib_start;
  rib_start.collector = "c";
  rib_start.dump_type = core::DumpType::Rib;
  rib_start.position = core::DumpPosition::Start;
  rib_start.timestamp = 100;
  core::Elem rib_elem;
  rib_elem.type = core::ElemType::RibEntry;
  rib_elem.time = 100;
  rib_elem.peer_asn = 65001;
  rib_elem.prefix = P("10.0.0.0/8");
  rib_elem.as_path = bgp::AsPath::Sequence({65001, 111});
  feed(rib_start, {rib_elem});

  // Meanwhile (before the dump ends) a *newer* update rewrites the path.
  core::Record upd;
  upd.collector = "c";
  upd.dump_type = core::DumpType::Updates;
  upd.timestamp = 150;
  core::Elem ann;
  ann.type = core::ElemType::Announcement;
  ann.time = 150;
  ann.peer_asn = 65001;
  ann.prefix = P("10.0.0.0/8");
  ann.as_path = bgp::AsPath::Sequence({65001, 222});
  feed(upd, {ann});

  core::Record rib_end;
  rib_end.collector = "c";
  rib_end.dump_type = core::DumpType::Rib;
  rib_end.position = core::DumpPosition::End;
  feed(rib_end, {});

  auto table = rt.table(vp);
  ASSERT_EQ(table.size(), 1u);
  // E2: the newer update wins over the older RIB record.
  EXPECT_EQ(table.begin()->second.as_path.ToString(), "65001 222");
}

TEST(RtUnit, StateMessagesDriveFsm) {
  RoutingTables rt;
  auto feed = [&](core::Record& rec, const std::vector<core::Elem>& elems) {
    RecordContext ctx{rec, elems, {}};
    rt.OnRecord(ctx);
  };
  VpKey vp{"c", 65001};

  core::Record upd;
  upd.collector = "c";
  upd.dump_type = core::DumpType::Updates;
  core::Elem st;
  st.type = core::ElemType::PeerState;
  st.peer_asn = 65001;
  st.old_state = bgp::FsmState::OpenConfirm;
  st.new_state = bgp::FsmState::Established;
  feed(upd, {st});
  EXPECT_EQ(rt.state(vp), VpState::Up);

  st.old_state = bgp::FsmState::Established;
  st.new_state = bgp::FsmState::Idle;
  feed(upd, {st});
  EXPECT_EQ(rt.state(vp), VpState::Down);
}

}  // namespace
}  // namespace bgps::corsaro
