#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <random>

#include "exabgp/exabgp.hpp"
#include "mrt/file.hpp"

namespace bgps::exabgp {
namespace {

Prefix P(const std::string& s) { return *Prefix::Parse(s); }

// --- JSON layer ---

TEST(Json, ParsePrimitives) {
  EXPECT_TRUE(Json::Parse("null")->is_null());
  EXPECT_TRUE(Json::Parse("true")->as_bool());
  EXPECT_FALSE(Json::Parse("false")->as_bool());
  EXPECT_DOUBLE_EQ(Json::Parse("42")->as_number(), 42);
  EXPECT_DOUBLE_EQ(Json::Parse("-3.5")->as_number(), -3.5);
  EXPECT_DOUBLE_EQ(Json::Parse("1e3")->as_number(), 1000);
  EXPECT_EQ(Json::Parse("\"hi\"")->as_string(), "hi");
}

TEST(Json, ParseStructures) {
  auto j = Json::Parse(R"({"a":[1,2,{"b":"c"}],"d":{"e":null}})");
  ASSERT_TRUE(j.ok());
  EXPECT_EQ((*j)["a"].array().size(), 3u);
  EXPECT_EQ((*j)["a"].array()[2]["b"].as_string(), "c");
  EXPECT_TRUE((*j)["d"]["e"].is_null());
  // Missing keys chain safely.
  EXPECT_TRUE((*j)["x"]["y"]["z"].is_null());
}

TEST(Json, ParseEscapes) {
  auto j = Json::Parse(R"("a\"b\\c\ndA")");
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(j->as_string(), "a\"b\\c\ndA");
}

TEST(Json, ParseErrors) {
  EXPECT_FALSE(Json::Parse("").ok());
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("[1,]").ok());
  EXPECT_FALSE(Json::Parse("{\"a\":1,}").ok());
  EXPECT_FALSE(Json::Parse("\"unterminated").ok());
  EXPECT_FALSE(Json::Parse("nully").ok());
  EXPECT_FALSE(Json::Parse("1 2").ok());
}

TEST(Json, DumpParseRoundTrip) {
  const std::string text =
      R"({"arr":[1,2.500000,"x"],"num":7,"obj":{"nested":true},"s":"a\"b"})";
  auto j = Json::Parse(text);
  ASSERT_TRUE(j.ok());
  auto j2 = Json::Parse(j->Dump());
  ASSERT_TRUE(j2.ok());
  EXPECT_EQ(j->Dump(), j2->Dump());
}

// --- ExaBGP message layer ---

ExaBgpMessage MakeUpdate() {
  ExaBgpMessage msg;
  msg.kind = ExaBgpMessage::Kind::Update;
  msg.time = 1500898535;
  msg.peer_address = IpAddress::V4(10, 0, 0, 1);
  msg.local_address = IpAddress::V4(192, 0, 2, 1);
  msg.peer_asn = 65001;
  msg.local_asn = 64512;
  msg.update.attrs.as_path = bgp::AsPath::Sequence({65001, 3356, 15169});
  msg.update.attrs.next_hop = IpAddress::V4(10, 0, 0, 1);
  msg.update.attrs.communities = {bgp::Community(3356, 100),
                                  bgp::Community(65535, 666)};
  msg.update.attrs.local_pref = 100;
  msg.update.announced = {P("192.0.2.0/24"), P("198.51.100.0/24")};
  msg.update.withdrawn = {P("203.0.113.0/24")};
  return msg;
}

TEST(ExaBgp, UpdateLineRoundTrip) {
  ExaBgpMessage msg = MakeUpdate();
  std::string line = EncodeLine(msg);
  auto decoded = DecodeLine(line);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->kind, ExaBgpMessage::Kind::Update);
  EXPECT_EQ(decoded->time, msg.time);
  EXPECT_EQ(decoded->peer_asn, msg.peer_asn);
  EXPECT_EQ(decoded->update.announced, msg.update.announced);
  EXPECT_EQ(decoded->update.withdrawn, msg.update.withdrawn);
  EXPECT_EQ(decoded->update.attrs.as_path.ToString(), "65001 3356 15169");
  EXPECT_EQ(decoded->update.attrs.communities, msg.update.attrs.communities);
  EXPECT_EQ(decoded->update.attrs.local_pref, msg.update.attrs.local_pref);
}

TEST(ExaBgp, V6UpdateRoundTrip) {
  ExaBgpMessage msg;
  msg.kind = ExaBgpMessage::Kind::Update;
  msg.time = 100;
  msg.peer_address = IpAddress::V4(10, 0, 0, 2);
  msg.peer_asn = 65002;
  msg.update.attrs.as_path = bgp::AsPath::Sequence({65002, 1});
  bgp::MpReach mp;
  mp.next_hop = *IpAddress::Parse("2001:db8::1");
  mp.nlri = {P("2001:db8:1::/48")};
  msg.update.attrs.mp_reach = mp;
  bgp::MpUnreach mpu;
  mpu.withdrawn = {P("2001:db8:2::/48")};
  msg.update.attrs.mp_unreach = mpu;

  auto decoded = DecodeLine(EncodeLine(msg));
  ASSERT_TRUE(decoded.ok());
  ASSERT_TRUE(decoded->update.attrs.mp_reach.has_value());
  EXPECT_EQ(decoded->update.attrs.mp_reach->nlri, mp.nlri);
  ASSERT_TRUE(decoded->update.attrs.mp_unreach.has_value());
  EXPECT_EQ(decoded->update.attrs.mp_unreach->withdrawn, mpu.withdrawn);
}

TEST(ExaBgp, StateLineRoundTrip) {
  ExaBgpMessage msg;
  msg.kind = ExaBgpMessage::Kind::State;
  msg.time = 1500898536;
  msg.peer_address = IpAddress::V4(10, 0, 0, 1);
  msg.peer_asn = 65001;
  msg.state = bgp::FsmState::Established;
  auto decoded = DecodeLine(EncodeLine(msg));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->kind, ExaBgpMessage::Kind::State);
  EXPECT_EQ(decoded->state, bgp::FsmState::Established);

  msg.state = bgp::FsmState::Idle;
  decoded = DecodeLine(EncodeLine(msg));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->state, bgp::FsmState::Idle);
}

TEST(ExaBgp, DecodeHandwrittenLine) {
  // A line in the upstream shape (field order differs from our encoder).
  const std::string line = R"({"exabgp":"4.0.1","time":1500898535,)"
      R"("type":"update","neighbor":{"address":{"local":"192.0.2.1",)"
      R"("peer":"10.0.0.9"},"asn":{"local":64512,"peer":65009},)"
      R"("message":{"update":{"attribute":{"origin":"igp",)"
      R"("as-path":[65009,174]},"announce":{"ipv4 unicast":)"
      R"({"10.0.0.9":[{"nlri":"10.9.0.0/16"},{"nlri":"10.10.0.0/16"}]}}}}}})";
  auto decoded = DecodeLine(line);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->peer_asn, 65009u);
  ASSERT_EQ(decoded->update.announced.size(), 2u);
  EXPECT_EQ(decoded->update.attrs.next_hop->ToString(), "10.0.0.9");
}

TEST(ExaBgp, DecodeRejectsGarbage) {
  EXPECT_FALSE(DecodeLine("not json").ok());
  EXPECT_FALSE(DecodeLine("{}").ok());  // no neighbor/peer address
  EXPECT_FALSE(DecodeLine(R"({"type":"open","neighbor":{"address":)"
                          R"({"peer":"10.0.0.1"},"asn":{"peer":1}}})")
                   .ok());  // unsupported type
}

TEST(ExaBgp, ToMrtPreservesContent) {
  ExaBgpMessage msg = MakeUpdate();
  Bytes wire = EncodeAsMrt(msg);
  BufReader r(wire);
  auto raw = mrt::DecodeRawRecord(r);
  ASSERT_TRUE(raw.ok());
  auto decoded = mrt::DecodeRecord(*raw);
  ASSERT_TRUE(decoded.ok());
  ASSERT_TRUE(decoded->is_message());
  const auto& m = std::get<mrt::Bgp4mpMessage>(decoded->body);
  EXPECT_EQ(m.peer_asn, msg.peer_asn);
  EXPECT_EQ(m.update.announced, msg.update.announced);
  EXPECT_EQ(decoded->timestamp, msg.time);
}

TEST(ExaBgp, TranscodeFileToMrt) {
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path();
  fs::path json_path = dir / ("exabgp_" + std::to_string(::getpid()) + ".json");
  fs::path mrt_path = dir / ("exabgp_" + std::to_string(::getpid()) + ".mrt");

  {
    std::ofstream out(json_path);
    out << EncodeLine(MakeUpdate()) << "\n";
    out << "this line is broken\n";
    ExaBgpMessage st;
    st.kind = ExaBgpMessage::Kind::State;
    st.time = 1500898536;
    st.peer_address = IpAddress::V4(10, 0, 0, 1);
    st.peer_asn = 65001;
    st.state = bgp::FsmState::Idle;
    out << EncodeLine(st) << "\n";
  }

  auto stats = TranscodeExaBgpToMrt(json_path.string(), mrt_path.string());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->converted, 2u);
  EXPECT_EQ(stats->skipped, 1u);

  // The MRT file flows through the standard scanner.
  auto scan = mrt::ScanFile(mrt_path.string());
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->messages.size(), 2u);
  EXPECT_TRUE(scan->messages[0].is_message());
  EXPECT_TRUE(scan->messages[1].is_state_change());
  fs::remove(json_path);
  fs::remove(mrt_path);
}

// ---------------------------------------------------------------------------
// Adversarial-input layer (fixed seeds: failures reproduce exactly).
// ---------------------------------------------------------------------------

// Regression: the recursive-descent parser used to recurse once per
// nesting level with no cap, so a line of ~100k brackets — two bytes of
// input per stack frame — overflowed the stack. It must come back as a
// Corrupt Result, not a crash.
TEST(JsonRegression, DeepNestingIsAnErrorNotAStackOverflow) {
  for (size_t depth : {size_t(200), size_t(100000)}) {
    std::string bombs[] = {std::string(depth, '['),
                           [&] {
                             std::string s;
                             for (size_t i = 0; i < depth; ++i) s += "{\"a\":";
                             return s;
                           }()};
    for (const auto& bomb : bombs) {
      auto j = Json::Parse(bomb);
      ASSERT_FALSE(j.ok());
      EXPECT_EQ(j.status().code(), StatusCode::Corrupt);
      EXPECT_NE(j.status().message().find("nesting deeper"),
                std::string::npos)
          << j.status().ToString();
    }
  }
  // Balanced-but-deep input fails identically (it is the depth, not the
  // missing closers, that matters).
  std::string balanced =
      std::string(100000, '[') + std::string(100000, ']');
  EXPECT_FALSE(Json::Parse(balanced).ok());
  // ...while nesting under the cap still parses.
  std::string fine = std::string(100, '[') + "1" + std::string(100, ']');
  EXPECT_TRUE(Json::Parse(fine).ok());
  EXPECT_FALSE(DecodeLine(std::string(100000, '[')).ok());
}

TEST(ExaBgpFuzz, SeededMutationsAlwaysReturnAResult) {
  // Mutate valid encoder output plus handwritten-shape lines: the
  // decoder must always return a Result — tolerant-parse semantics
  // (paper §3.3.3) means errors, never exceptions or crashes.
  std::mt19937 rng(433);  // RFC 4271's number, reproducibly
  std::vector<std::string> seeds = {EncodeLine(MakeUpdate())};
  {
    ExaBgpMessage st;
    st.kind = ExaBgpMessage::Kind::State;
    st.time = 1500898536;
    st.peer_address = IpAddress::V4(10, 0, 0, 1);
    st.peer_asn = 65001;
    st.state = bgp::FsmState::Established;
    seeds.push_back(EncodeLine(st));
  }
  auto u = [&](size_t lo, size_t hi) {
    return std::uniform_int_distribution<size_t>(lo, hi)(rng);
  };
  size_t ok_lines = 0;
  for (int round = 0; round < 2000; ++round) {
    std::string line = seeds[u(0, seeds.size() - 1)];
    switch (u(0, 3)) {
      case 0:  // byte flips (may garble numbers, quotes, braces)
        for (size_t i = 0, n = u(1, 6); i < n; ++i)
          line[u(0, line.size() - 1)] ^= char(u(1, 255));
        break;
      case 1:  // truncation
        line.resize(u(0, line.size() - 1));
        break;
      case 2: {  // splice random printable garbage
        std::string junk(u(1, 24), ' ');
        for (auto& c : junk) c = char(u(0x20, 0x7e));
        line.insert(u(0, line.size()), junk);
        break;
      }
      default: {  // structural: drop a random brace/bracket/quote
        size_t at = u(0, line.size() - 1);
        line.erase(at, 1);
        break;
      }
    }
    auto decoded = DecodeLine(line);  // must not throw — Result only
    if (decoded.ok()) ++ok_lines;
  }
  // Some mutations keep the line valid (e.g. junk inside a string
  // value); most must not. Both outcomes occurring proves the fuzz
  // actually explores the boundary instead of one trivial regime.
  EXPECT_GT(ok_lines, 0u);
  EXPECT_LT(ok_lines, 2000u * 9 / 10);
}

TEST(ExaBgpFuzz, RandomGarbageNeverParses) {
  std::mt19937 rng(6793);
  auto u = [&](size_t lo, size_t hi) {
    return std::uniform_int_distribution<size_t>(lo, hi)(rng);
  };
  for (int round = 0; round < 500; ++round) {
    std::string junk(u(1, 200), '\0');
    for (auto& c : junk) c = char(u(0, 255));
    auto decoded = DecodeLine(junk);
    if (decoded.ok()) {
      // Astronomically unlikely: random bytes forming a full exabgp
      // envelope. Treat it as a bug in the decoder's strictness.
      ADD_FAILURE() << "random garbage parsed on round " << round;
    }
  }
}

}  // namespace
}  // namespace bgps::exabgp
