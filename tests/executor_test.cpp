// Tests of the process-wide decode executor (runtime layer): per-tenant
// FIFO ordering, round-robin dispatch across tenants, urgent
// front-of-queue submission, and tenant/executor lifecycle.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/executor.hpp"

namespace bgps::core {
namespace {

using namespace std::chrono_literals;

// Records task completions as "<tenant><index>" strings.
class CompletionLog {
 public:
  void Note(std::string id) {
    std::lock_guard<std::mutex> lock(mu_);
    order_.push_back(std::move(id));
  }
  std::vector<std::string> Get() {
    std::lock_guard<std::mutex> lock(mu_);
    return order_;
  }
  size_t IndexOf(const std::string& id) {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < order_.size(); ++i) {
      if (order_[i] == id) return i;
    }
    return size_t(-1);
  }

 private:
  std::mutex mu_;
  std::vector<std::string> order_;
};

// Waits (bounded) until `pred` holds.
template <typename Pred>
bool WaitFor(Pred pred, std::chrono::seconds deadline = 10s) {
  auto until = std::chrono::steady_clock::now() + deadline;
  while (!pred()) {
    if (std::chrono::steady_clock::now() > until) return false;
    std::this_thread::sleep_for(1ms);
  }
  return true;
}

TEST(ExecutorTest, TenantTasksRunInSubmissionOrder) {
  Executor ex({.threads = 1});
  auto tenant = ex.CreateTenant();
  CompletionLog log;

  // Gate the worker so all tasks are queued before any runs.
  std::promise<void> gate;
  std::promise<void> gate_running;
  std::shared_future<void> opened = gate.get_future().share();
  tenant->Submit([opened, &gate_running] {
    gate_running.set_value();
    opened.wait();
  });
  gate_running.get_future().wait();  // the worker holds the gate task
  for (int i = 0; i < 8; ++i) {
    tenant->Submit([&log, i] { log.Note("t" + std::to_string(i)); });
  }
  EXPECT_EQ(tenant->queued(), 8u);
  gate.set_value();
  ASSERT_TRUE(WaitFor([&] { return ex.tasks_run() == 9; }));
  std::vector<std::string> expect;
  for (int i = 0; i < 8; ++i) expect.push_back("t" + std::to_string(i));
  EXPECT_EQ(log.Get(), expect);
}

TEST(ExecutorTest, RoundRobinDispatchInterleavesTenants) {
  Executor ex({.threads = 1});
  auto gate_tenant = ex.CreateTenant();
  auto heavy = ex.CreateTenant();
  auto light = ex.CreateTenant();
  CompletionLog log;

  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  gate_tenant->Submit([opened] { opened.wait(); });

  // A heavy tenant floods its queue; a light one submits a handful.
  // Round-robin means the light tenant's tasks cannot be starved behind
  // the flood: its k-th task completes within ~2k+2 completions.
  for (int i = 0; i < 24; ++i) {
    heavy->Submit([&log, i] { log.Note("h" + std::to_string(i)); });
  }
  for (int i = 0; i < 4; ++i) {
    light->Submit([&log, i] { log.Note("l" + std::to_string(i)); });
  }
  gate.set_value();
  ASSERT_TRUE(WaitFor([&] { return ex.tasks_run() == 29; }));
  EXPECT_LT(log.IndexOf("l3"), 10u);
  // And FIFO holds within each tenant despite the interleave.
  EXPECT_LT(log.IndexOf("h0"), log.IndexOf("h1"));
  EXPECT_LT(log.IndexOf("l0"), log.IndexOf("l1"));
}

TEST(ExecutorTest, SubmitUrgentJumpsItsOwnQueueOnly) {
  Executor ex({.threads = 1});
  auto gate_tenant = ex.CreateTenant();
  auto tenant = ex.CreateTenant();
  CompletionLog log;

  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  gate_tenant->Submit([opened] { opened.wait(); });

  tenant->Submit([&log] { log.Note("a"); });
  tenant->Submit([&log] { log.Note("b"); });
  tenant->SubmitUrgent([&log] { log.Note("urgent"); });
  gate.set_value();
  ASSERT_TRUE(WaitFor([&] { return ex.tasks_run() == 4; }));
  EXPECT_EQ(log.Get(),
            (std::vector<std::string>{"urgent", "a", "b"}));
}

TEST(ExecutorTest, TenantDtorDiscardsQueuedAndWaitsForRunning) {
  Executor ex({.threads = 1});
  auto tenant = ex.CreateTenant();
  std::atomic<bool> long_task_done{false};
  std::atomic<int> discarded_ran{0};
  std::promise<void> started;

  tenant->Submit([&] {
    started.set_value();
    std::this_thread::sleep_for(50ms);
    long_task_done = true;
  });
  for (int i = 0; i < 5; ++i) {
    tenant->Submit([&] { ++discarded_ran; });
  }
  started.get_future().wait();  // the long task is running
  tenant.reset();               // must wait for it, discard the rest
  EXPECT_TRUE(long_task_done.load());
  EXPECT_EQ(discarded_ran.load(), 0);
  EXPECT_EQ(ex.tenants(), 0u);
}

TEST(ExecutorTest, ZeroThreadExecutorConstructsButRunsNothing) {
  Executor ex({.threads = 0});
  EXPECT_EQ(ex.threads(), 0u);
  auto tenant = ex.CreateTenant();
  std::atomic<int> ran{0};
  tenant->Submit([&] { ++ran; });
  std::this_thread::sleep_for(20ms);
  EXPECT_EQ(ran.load(), 0);
  EXPECT_EQ(tenant->queued(), 1u);
  // Dtor discards the queued task without hanging.
}

TEST(ExecutorTest, ManyThreadsRunTenantsConcurrently) {
  Executor ex({.threads = 4});
  EXPECT_EQ(ex.threads(), 4u);
  std::vector<std::unique_ptr<Executor::Tenant>> tenants;
  std::atomic<int> done{0};
  for (int t = 0; t < 4; ++t) {
    tenants.push_back(ex.CreateTenant());
    for (int i = 0; i < 16; ++i) {
      tenants.back()->Submit([&done] { ++done; });
    }
  }
  ASSERT_TRUE(WaitFor([&] { return done.load() == 64; }));
  EXPECT_EQ(ex.tasks_run(), 64u);
  EXPECT_EQ(ex.tenants(), 4u);
}

TEST(ExecutorTest, TenantsMayOutliveTheExecutor) {
  std::unique_ptr<Executor::Tenant> tenant;
  {
    Executor ex({.threads = 2});
    tenant = ex.CreateTenant();
    std::atomic<int> ran{0};
    tenant->Submit([&] { ++ran; });
    ASSERT_TRUE(WaitFor([&] { return ran.load() == 1; }));
  }
  // Executor gone: submissions queue forever but nothing crashes.
  tenant->Submit([] {});
  EXPECT_EQ(tenant->queued(), 1u);
  tenant.reset();
}

}  // namespace
}  // namespace bgps::core
