// Tests of the process-wide decode executor (runtime layer): per-tenant
// FIFO ordering, round-robin dispatch across tenants, urgent
// front-of-queue submission, and tenant/executor lifecycle.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/executor.hpp"

namespace bgps::core {
namespace {

using namespace std::chrono_literals;

// Records task completions as "<tenant><index>" strings.
class CompletionLog {
 public:
  void Note(std::string id) {
    std::lock_guard<std::mutex> lock(mu_);
    order_.push_back(std::move(id));
  }
  std::vector<std::string> Get() {
    std::lock_guard<std::mutex> lock(mu_);
    return order_;
  }
  size_t IndexOf(const std::string& id) {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < order_.size(); ++i) {
      if (order_[i] == id) return i;
    }
    return size_t(-1);
  }

 private:
  std::mutex mu_;
  std::vector<std::string> order_;
};

// Waits (bounded) until `pred` holds.
template <typename Pred>
bool WaitFor(Pred pred, std::chrono::seconds deadline = 10s) {
  auto until = std::chrono::steady_clock::now() + deadline;
  while (!pred()) {
    if (std::chrono::steady_clock::now() > until) return false;
    std::this_thread::sleep_for(1ms);
  }
  return true;
}

TEST(ExecutorTest, TenantTasksRunInSubmissionOrder) {
  Executor ex({.threads = 1});
  auto tenant = ex.CreateTenant();
  CompletionLog log;

  // Gate the worker so all tasks are queued before any runs.
  std::promise<void> gate;
  std::promise<void> gate_running;
  std::shared_future<void> opened = gate.get_future().share();
  tenant->Submit([opened, &gate_running] {
    gate_running.set_value();
    opened.wait();
  });
  gate_running.get_future().wait();  // the worker holds the gate task
  for (int i = 0; i < 8; ++i) {
    tenant->Submit([&log, i] { log.Note("t" + std::to_string(i)); });
  }
  EXPECT_EQ(tenant->queued(), 8u);
  gate.set_value();
  ASSERT_TRUE(WaitFor([&] { return ex.tasks_run() == 9; }));
  std::vector<std::string> expect;
  for (int i = 0; i < 8; ++i) expect.push_back("t" + std::to_string(i));
  EXPECT_EQ(log.Get(), expect);
}

TEST(ExecutorTest, RoundRobinDispatchInterleavesTenants) {
  Executor ex({.threads = 1});
  auto gate_tenant = ex.CreateTenant();
  auto heavy = ex.CreateTenant();
  auto light = ex.CreateTenant();
  CompletionLog log;

  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  gate_tenant->Submit([opened] { opened.wait(); });

  // A heavy tenant floods its queue; a light one submits a handful.
  // Round-robin means the light tenant's tasks cannot be starved behind
  // the flood: its k-th task completes within ~2k+2 completions.
  for (int i = 0; i < 24; ++i) {
    heavy->Submit([&log, i] { log.Note("h" + std::to_string(i)); });
  }
  for (int i = 0; i < 4; ++i) {
    light->Submit([&log, i] { log.Note("l" + std::to_string(i)); });
  }
  gate.set_value();
  ASSERT_TRUE(WaitFor([&] { return ex.tasks_run() == 29; }));
  EXPECT_LT(log.IndexOf("l3"), 10u);
  // And FIFO holds within each tenant despite the interleave.
  EXPECT_LT(log.IndexOf("h0"), log.IndexOf("h1"));
  EXPECT_LT(log.IndexOf("l0"), log.IndexOf("l1"));
}

TEST(ExecutorTest, WeightedTenantDrainsProportionallyPerVisit) {
  // Deficit-weighted round-robin: a weight-4 tenant drains ~4 tasks per
  // visit of a weight-1 tenant. With one worker and both queues loaded
  // before the gate opens, the interleave is deterministic up to visit
  // boundaries: before the light tenant's k-th task completes, the
  // heavy tenant must have completed ~4(k+1) tasks (tolerance ±4, one
  // visit).
  Executor ex({.threads = 1});
  auto gate_tenant = ex.CreateTenant();
  auto heavy = ex.CreateTenant({.weight = 4});
  auto light = ex.CreateTenant();  // weight 1
  EXPECT_EQ(heavy->weight(), 4u);
  EXPECT_EQ(light->weight(), 1u);
  CompletionLog log;

  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  gate_tenant->Submit([opened] { opened.wait(); });

  constexpr int kHeavy = 32, kLight = 8;
  for (int i = 0; i < kHeavy; ++i) {
    heavy->Submit([&log, i] { log.Note("h" + std::to_string(i)); });
  }
  for (int i = 0; i < kLight; ++i) {
    light->Submit([&log, i] { log.Note("l" + std::to_string(i)); });
  }
  gate.set_value();
  ASSERT_TRUE(
      WaitFor([&] { return ex.tasks_run() == 1 + kHeavy + kLight; }));

  std::vector<std::string> order = log.Get();
  for (int k = 0; k < kLight; ++k) {
    size_t pos = log.IndexOf("l" + std::to_string(k));
    ASSERT_NE(pos, size_t(-1));
    size_t heavies_before = 0;
    for (size_t i = 0; i < pos; ++i) {
      if (order[i][0] == 'h') ++heavies_before;
    }
    size_t want = size_t(4 * (k + 1));  // one full heavy visit per light task
    EXPECT_GE(heavies_before + 4, want) << "light task " << k;
    EXPECT_LE(heavies_before, want + 4) << "light task " << k;
  }
  // Per-tenant completion counters match.
  EXPECT_EQ(heavy->tasks_run(), size_t(kHeavy));
  EXPECT_EQ(light->tasks_run(), size_t(kLight));
  EXPECT_EQ(gate_tenant->tasks_run(), 1u);
}

TEST(ExecutorTest, SetWeightTakesEffectAtTheNextVisit) {
  // Re-weighting mid-flight: queue tasks under weight 1, bump to 3 —
  // tasks submitted after the bump drain 3-per-visit against a
  // competitor.
  Executor ex({.threads = 1});
  auto gate_tenant = ex.CreateTenant();
  auto a = ex.CreateTenant();
  auto b = ex.CreateTenant();
  CompletionLog log;

  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  gate_tenant->Submit([opened] { opened.wait(); });

  a->SetWeight(3);
  EXPECT_EQ(a->weight(), 3u);
  for (int i = 0; i < 9; ++i) {
    a->Submit([&log, i] { log.Note("a" + std::to_string(i)); });
  }
  for (int i = 0; i < 3; ++i) {
    b->Submit([&log, i] { log.Note("b" + std::to_string(i)); });
  }
  gate.set_value();
  ASSERT_TRUE(WaitFor([&] { return ex.tasks_run() == 13; }));
  // b0 cannot run before a's first full 3-task visit completed.
  EXPECT_GE(log.IndexOf("b0"), 3u);
  // And round-robin still guarantees b finishes well before a's flood.
  EXPECT_LT(log.IndexOf("b2"), 12u);
}

TEST(ExecutorTest, DispatchRoundsAdvanceWithRotations) {
  Executor ex({.threads = 1});
  auto tenant = ex.CreateTenant();
  size_t before = ex.dispatch_rounds();
  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i) {
    tenant->Submit([&ran] { ++ran; });
  }
  ASSERT_TRUE(WaitFor([&] { return ran.load() == 16; }));
  // A single weight-1 tenant forces a full rotation per task.
  EXPECT_GE(ex.dispatch_rounds(), before + 16);
}

TEST(ExecutorTest, IdleReclaimFiresAfterThresholdAndRearmsOnActivity) {
  Executor ex({.threads = 2});
  auto busy = ex.CreateTenant();
  auto idle = ex.CreateTenant();
  std::atomic<int> reclaimed{0};
  idle->SetIdleReclaim(3, [&reclaimed] { ++reclaimed; });

  // Other tenants' dispatch advances the round clock; after >= 3 rounds
  // without NoteActivity the callback fires — exactly once until
  // activity re-arms it.
  for (int i = 0; i < 64; ++i) busy->Submit([] {});
  ASSERT_TRUE(WaitFor([&] { return reclaimed.load() == 1; }));
  std::this_thread::sleep_for(100ms);
  EXPECT_EQ(reclaimed.load(), 1);  // does not re-fire while still idle

  idle->NoteActivity();  // re-arm; more dispatch crosses the threshold again
  for (int i = 0; i < 64; ++i) busy->Submit([] {});
  ASSERT_TRUE(WaitFor([&] { return reclaimed.load() == 2; }));

  // Clearing the policy stops further fires.
  idle->SetIdleReclaim(0, nullptr);
  int at_clear = reclaimed.load();
  for (int i = 0; i < 64; ++i) busy->Submit([] {});
  ASSERT_TRUE(WaitFor([&] { return ex.tasks_run() >= 192; }));
  EXPECT_EQ(reclaimed.load(), at_clear);
}

TEST(ExecutorTest, ReclaimTickSignalsFireStalestTenantAfterItsPatience) {
  // The waiter-driven trigger: with the pool fully stalled, rounds do
  // not advance on their own (no timer), so armed policies stay
  // dormant. Contention signals (RequestReclaimTick) stand in for
  // dispatch rounds: a tenant fires only after ~idle_rounds
  // consecutive signals without activity — the smaller-patience tenant
  // first, one tenant per signal, round clock untouched. A lone signal
  // can only mark, never fire.
  Executor ex({.threads = 1});
  auto stale = ex.CreateTenant();
  auto fresh = ex.CreateTenant();
  std::atomic<int> stale_reclaims{0};
  std::atomic<int> fresh_reclaims{0};
  stale->SetIdleReclaim(25, [&stale_reclaims] { ++stale_reclaims; });
  fresh->SetIdleReclaim(60, [&fresh_reclaims] { ++fresh_reclaims; });

  // Stalled pool: nothing fires without tick requests, and one request
  // alone only marks.
  size_t rounds_before = ex.dispatch_rounds();
  ex.RequestReclaimTick();
  std::this_thread::sleep_for(50ms);
  EXPECT_EQ(stale_reclaims.load(), 0);
  EXPECT_EQ(fresh_reclaims.load(), 0);

  // Repeated signals (what a blocked governor Acquire delivers in
  // production) cross the smaller patience first; the round clock
  // stays put throughout.
  auto signal_until = [&ex](auto fired) {
    auto until = std::chrono::steady_clock::now() + 10s;
    while (!fired()) {
      if (std::chrono::steady_clock::now() > until) return false;
      ex.RequestReclaimTick();
      std::this_thread::sleep_for(1ms);
    }
    return true;
  };
  ASSERT_TRUE(signal_until([&] { return stale_reclaims.load() == 1; }));
  EXPECT_EQ(ex.dispatch_rounds(), rounds_before);
  EXPECT_EQ(fresh_reclaims.load(), 0);  // patience 60 not yet met

  // Further signals eventually peel off the higher-patience tenant too.
  ASSERT_TRUE(signal_until([&] { return fresh_reclaims.load() == 1; }));
  EXPECT_EQ(stale_reclaims.load(), 1);  // still one-shot until re-armed

  // With every policy fired, further requests are no-ops.
  ex.RequestReclaimTick();
  std::this_thread::sleep_for(50ms);
  EXPECT_EQ(stale_reclaims.load(), 1);
  EXPECT_EQ(fresh_reclaims.load(), 1);
}

TEST(ExecutorTest, ReclaimTickNeverFiresTenantsActiveBetweenSignals) {
  // The mark/confirm protocol's point: a tenant that keeps draining
  // (NoteActivity between signals) resets its inactivity window and is
  // never reclaimed by contention — even with a far smaller patience —
  // while a genuinely idle one yields; once the active tenant stops,
  // it yields too.
  Executor ex({.threads = 1});
  auto stale = ex.CreateTenant();
  auto active = ex.CreateTenant();
  std::atomic<int> stale_reclaims{0};
  std::atomic<int> active_reclaims{0};
  stale->SetIdleReclaim(25, [&stale_reclaims] { ++stale_reclaims; });
  active->SetIdleReclaim(5, [&active_reclaims] { ++active_reclaims; });

  // Keep `active` draining across the whole signal storm: its mark can
  // never age 5 signals, so the idle `stale` tenant yields first
  // despite needing 5× the patience.
  auto until = std::chrono::steady_clock::now() + 10s;
  while (stale_reclaims.load() == 0 &&
         std::chrono::steady_clock::now() < until) {
    active->NoteActivity();
    ex.RequestReclaimTick();
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_EQ(stale_reclaims.load(), 1);
  EXPECT_EQ(active_reclaims.load(), 0);

  // Once `active` stops draining, its patience window can finally
  // elapse and it yields as well.
  while (active_reclaims.load() == 0 &&
         std::chrono::steady_clock::now() < until) {
    ex.RequestReclaimTick();
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_EQ(active_reclaims.load(), 1);
  EXPECT_EQ(stale_reclaims.load(), 1);
}

TEST(ExecutorTest, DeadlineClassDrainsEarliestEnqueuedFirst) {
  // Three same-weight deadline tenants plus a non-deadline bystander.
  // Within the class, claims follow global enqueue order regardless of
  // which queue the cursor anchors on; the bystander keeps plain
  // round-robin; per-tenant FIFO holds everywhere.
  Executor ex({.threads = 1});
  auto gate_tenant = ex.CreateTenant();
  auto a = ex.CreateTenant({.weight = 2, .deadline = true});
  auto b = ex.CreateTenant({.weight = 2, .deadline = true});
  auto c = ex.CreateTenant({.weight = 2, .deadline = true});
  auto plain = ex.CreateTenant();  // weight 1, no deadline
  CompletionLog log;

  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  gate_tenant->Submit([opened] { opened.wait(); });

  // Enqueue out of cursor order: c first, then b, then a.
  c->Submit([&log] { log.Note("c0"); });
  c->Submit([&log] { log.Note("c1"); });
  b->Submit([&log] { log.Note("b0"); });
  a->Submit([&log] { log.Note("a0"); });
  a->Submit([&log] { log.Note("a1"); });
  plain->Submit([&log] { log.Note("p0"); });
  gate.set_value();
  ASSERT_TRUE(WaitFor([&] { return ex.tasks_run() == 7; }));

  // EDF across the class: enqueue order c0 c1 b0 a0 a1 — even though
  // the cursor visits a's queue first.
  EXPECT_LT(log.IndexOf("c0"), log.IndexOf("c1"));
  EXPECT_LT(log.IndexOf("c1"), log.IndexOf("b0"));
  EXPECT_LT(log.IndexOf("b0"), log.IndexOf("a0"));
  EXPECT_LT(log.IndexOf("a0"), log.IndexOf("a1"));
}

TEST(ExecutorTest, DeadlineClassesSplitByWeight) {
  // Deadline tenants of different weights are different classes: a
  // weight-1 deadline tenant's older task does not jump into a
  // weight-2 class visit.
  Executor ex({.threads = 1});
  auto gate_tenant = ex.CreateTenant();
  auto w2a = ex.CreateTenant({.weight = 2, .deadline = true});
  auto w2b = ex.CreateTenant({.weight = 2, .deadline = true});
  auto w1 = ex.CreateTenant({.weight = 1, .deadline = true});
  CompletionLog log;

  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  gate_tenant->Submit([opened] { opened.wait(); });

  w1->Submit([&log] { log.Note("w1-0"); });    // oldest stamp overall
  w2b->Submit([&log] { log.Note("w2b-0"); });
  w2a->Submit([&log] { log.Note("w2a-0"); });
  gate.set_value();
  ASSERT_TRUE(WaitFor([&] { return ex.tasks_run() == 4; }));

  // The cursor reaches w2a first; its class = {w2a, w2b}, whose oldest
  // head is w2b's — w1's older task belongs to another class and waits
  // for its own visit.
  EXPECT_LT(log.IndexOf("w2b-0"), log.IndexOf("w2a-0"));
  EXPECT_LT(log.IndexOf("w2b-0"), log.IndexOf("w1-0"));
}

TEST(ExecutorTest, DeadlineClassFollowsWeightChange) {
  // SetWeight moves a deadline tenant into the new weight's class: its
  // tasks join that class's EDF pool and leave the old one. Pins the
  // per-class registry the O(class) claim scans — a stale entry would
  // either leak b's head into the w2 class or lose it from the w3 one.
  Executor ex({.threads = 1});
  auto gate_tenant = ex.CreateTenant();
  auto a = ex.CreateTenant({.weight = 2, .deadline = true});
  auto b = ex.CreateTenant({.weight = 2, .deadline = true});
  auto c = ex.CreateTenant({.weight = 3, .deadline = true});
  CompletionLog log;

  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  gate_tenant->Submit([opened] { opened.wait(); });

  b->SetWeight(3);  // b leaves {a, b} (w2) and joins {c} (w3)
  c->Submit([&log] { log.Note("c0"); });
  b->Submit([&log] { log.Note("b0"); });
  a->Submit([&log] { log.Note("a0"); });
  gate.set_value();
  ASSERT_TRUE(WaitFor([&] { return ex.tasks_run() == 4; }));

  // The cursor visits a first; its class is now {a} alone, so a0 runs
  // before the older c0/b0 (those belong to the w3 class, where EDF
  // still holds: c0's older stamp precedes b0).
  EXPECT_LT(log.IndexOf("a0"), log.IndexOf("c0"));
  EXPECT_LT(log.IndexOf("c0"), log.IndexOf("b0"));
}

TEST(ExecutorTest, DeadlineUrgentTasksLeadTheClass) {
  // Urgent submissions stamp ahead of every normal one, so a blocked
  // consumer's refill is the class's next claim even from the youngest
  // queue.
  Executor ex({.threads = 1});
  auto gate_tenant = ex.CreateTenant();
  auto a = ex.CreateTenant({.weight = 2, .deadline = true});
  auto b = ex.CreateTenant({.weight = 2, .deadline = true});
  CompletionLog log;

  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  gate_tenant->Submit([opened] { opened.wait(); });

  a->Submit([&log] { log.Note("a0"); });
  a->Submit([&log] { log.Note("a1"); });
  b->Submit([&log] { log.Note("b0"); });
  b->SubmitUrgent([&log] { log.Note("b-urgent"); });
  gate.set_value();
  ASSERT_TRUE(WaitFor([&] { return ex.tasks_run() == 5; }));

  // b-urgent outranks a0 despite a0's older normal stamp; b's own FIFO
  // then resumes (urgent still precedes b0 in its own queue).
  EXPECT_EQ(log.IndexOf("b-urgent"), 0u);
  EXPECT_LT(log.IndexOf("a0"), log.IndexOf("a1"));
  EXPECT_LT(log.IndexOf("b-urgent"), log.IndexOf("b0"));
}

TEST(ExecutorTest, SubmitUrgentJumpsItsOwnQueueOnly) {
  Executor ex({.threads = 1});
  auto gate_tenant = ex.CreateTenant();
  auto tenant = ex.CreateTenant();
  CompletionLog log;

  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  gate_tenant->Submit([opened] { opened.wait(); });

  tenant->Submit([&log] { log.Note("a"); });
  tenant->Submit([&log] { log.Note("b"); });
  tenant->SubmitUrgent([&log] { log.Note("urgent1"); });
  tenant->SubmitUrgent([&log] { log.Note("urgent2"); });
  gate.set_value();
  ASSERT_TRUE(WaitFor([&] { return ex.tasks_run() == 5; }));
  // The urgent band precedes every normal task and is FIFO within
  // itself — the queue front is always the oldest urgent stamp, which
  // is what deadline-class dispatch compares across tenants.
  EXPECT_EQ(log.Get(),
            (std::vector<std::string>{"urgent1", "urgent2", "a", "b"}));
}

TEST(ExecutorTest, TenantDtorDiscardsQueuedAndWaitsForRunning) {
  Executor ex({.threads = 1});
  auto tenant = ex.CreateTenant();
  std::atomic<bool> long_task_done{false};
  std::atomic<int> discarded_ran{0};
  std::promise<void> started;

  tenant->Submit([&] {
    started.set_value();
    std::this_thread::sleep_for(50ms);
    long_task_done = true;
  });
  for (int i = 0; i < 5; ++i) {
    tenant->Submit([&] { ++discarded_ran; });
  }
  started.get_future().wait();  // the long task is running
  tenant.reset();               // must wait for it, discard the rest
  EXPECT_TRUE(long_task_done.load());
  EXPECT_EQ(discarded_ran.load(), 0);
  EXPECT_EQ(ex.tenants(), 0u);
}

TEST(ExecutorTest, ZeroThreadExecutorConstructsButRunsNothing) {
  Executor ex({.threads = 0});
  EXPECT_EQ(ex.threads(), 0u);
  auto tenant = ex.CreateTenant();
  std::atomic<int> ran{0};
  tenant->Submit([&] { ++ran; });
  std::this_thread::sleep_for(20ms);
  EXPECT_EQ(ran.load(), 0);
  EXPECT_EQ(tenant->queued(), 1u);
  // Dtor discards the queued task without hanging.
}

TEST(ExecutorTest, ManyThreadsRunTenantsConcurrently) {
  Executor ex({.threads = 4});
  EXPECT_EQ(ex.threads(), 4u);
  std::vector<std::unique_ptr<Executor::Tenant>> tenants;
  std::atomic<int> done{0};
  for (int t = 0; t < 4; ++t) {
    tenants.push_back(ex.CreateTenant());
    for (int i = 0; i < 16; ++i) {
      tenants.back()->Submit([&done] { ++done; });
    }
  }
  ASSERT_TRUE(WaitFor([&] { return done.load() == 64; }));
  EXPECT_EQ(ex.tasks_run(), 64u);
  EXPECT_EQ(ex.tenants(), 4u);
}

TEST(ExecutorTest, TenantsMayOutliveTheExecutor) {
  std::unique_ptr<Executor::Tenant> tenant;
  {
    Executor ex({.threads = 2});
    tenant = ex.CreateTenant();
    std::atomic<int> ran{0};
    tenant->Submit([&] { ++ran; });
    ASSERT_TRUE(WaitFor([&] { return ran.load() == 1; }));
  }
  // Executor gone: submissions queue forever but nothing crashes.
  tenant->Submit([] {});
  EXPECT_EQ(tenant->queued(), 1u);
  tenant.reset();
}

}  // namespace
}  // namespace bgps::core
